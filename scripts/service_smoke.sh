#!/usr/bin/env bash
# Service smoke: the crash-survivability contract, end-to-end through the
# installed binaries (docs/SERVICE.md). Run from a build dir containing
# fixdd + fixdctl:
#
#   1. `fixdctl local` computes the uninterrupted baseline digests.
#   2. fixdd up → submit → SIGKILL the daemon mid-investigation.
#   3. fixdd restarted over the same state dir → the same request-id is
#      deduped against the recovered ledger → the resumed result's
#      digests must equal the baseline byte for byte.
#   4. A probe against a dead endpoint must exit 3 (degraded/unreachable,
#      distinct from error) — the graceful-degradation contract.
set -euo pipefail

BIN_DIR="${1:-.}"
FIXDD="$BIN_DIR/fixdd"
FIXDCTL="$BIN_DIR/fixdctl"
[ -x "$FIXDD" ] && [ -x "$FIXDCTL" ] || {
  echo "service_smoke: $FIXDD / $FIXDCTL not executable" >&2
  exit 2
}

WORK="$(mktemp -d "${TMPDIR:-/tmp}/fixd-smoke-XXXXXX")"
SOCK="$WORK/fixdd.sock"
STATE="$WORK/state"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SPEC=(--scenario two-pc --n 4 --version 1 --max-violations 100000
      --checkpoint-states 24)

digests() {  # extract "visited_digest=… trail_digest=…" from a RESULT line
  grep -o 'visited_digest=[0-9a-f]* trail_digest=[0-9a-f]*' <<<"$1"
}

start_daemon() {
  "$FIXDD" --endpoint "unix:$SOCK" --state-dir "$STATE" --workers 1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "service_smoke: daemon died during startup" >&2
      exit 1
    }
    sleep 0.1
  done
  echo "service_smoke: daemon never bound $SOCK" >&2
  exit 1
}

echo "== baseline (in-process)"
BASELINE="$("$FIXDCTL" local "${SPEC[@]}")"
echo "$BASELINE"
WANT="$(digests "$BASELINE")"

echo "== phase 1: daemon up, submit, kill -9 mid-investigation"
start_daemon
"$FIXDCTL" --endpoint "unix:$SOCK" --request-id 4242 submit "${SPEC[@]}"
sleep 0.2
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== phase 2: restart over the same state dir, resume, compare"
start_daemon
RESUB="$("$FIXDCTL" --endpoint "unix:$SOCK" --request-id 4242 submit "${SPEC[@]}")"
echo "$RESUB"
grep -q 'duplicate=1' <<<"$RESUB" || {
  echo "service_smoke: FAIL — request ledger did not survive the crash" >&2
  exit 1
}
JOB="$(sed -n 's/^SUBMITTED job=\([0-9]*\).*/\1/p' <<<"$RESUB")"
RESULT="$("$FIXDCTL" --endpoint "unix:$SOCK" --wait-budget-ms 120000 result "$JOB")"
echo "$RESULT"
GOT="$(digests "$RESULT")"
if [ "$GOT" != "$WANT" ]; then
  echo "service_smoke: FAIL — digest mismatch after crash-restart" >&2
  echo "  want: $WANT" >&2
  echo "  got:  $GOT" >&2
  exit 1
fi

echo "== phase 3: graceful shutdown"
"$FIXDCTL" --endpoint "unix:$SOCK" shutdown
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== phase 4: unreachable endpoint degrades (exit 3)"
set +e
"$FIXDCTL" --endpoint "unix:$WORK/nobody.sock" --retries 2 --budget-ms 1000 ping
RC=$?
set -e
if [ "$RC" != 3 ]; then
  echo "service_smoke: FAIL — expected exit 3 for unreachable, got $RC" >&2
  exit 1
fi

echo "service_smoke: PASS — resumed digests identical, degradation clean"
