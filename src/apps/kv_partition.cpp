#include "apps/kv_partition.hpp"

#include <optional>

namespace fixd::apps {

namespace {
struct VerBody {
  std::uint64_t ver = 0;
  void save(BinaryWriter& w) const { w.write_u64(ver); }
  void load(BinaryReader& r) { ver = r.read_u64(); }
};
}  // namespace

namespace detail {

void KvPartReplicaBase::on_start(rt::Context& ctx) {
  if (ctx.self() != 0) return;  // backups are passive until replication
  // The primary applies its whole write stream up front; each increment is
  // replicated separately so a partition can strand any prefix in flight.
  const ProcessId client = static_cast<ProcessId>(ctx.world_size() - 1);
  for (std::uint64_t v = 1; v <= cfg_.writes; ++v) {
    ver_ = v;
    for (ProcessId p = 1; p < client; ++p) {
      ctx.send_body(p, kReplTag, VerBody{v});
    }
  }
}

void KvPartReplicaBase::on_message(rt::Context& ctx,
                                   const net::Message& msg) {
  switch (msg.tag) {
    case kReplTag: {
      VerBody body = msg.decode<VerBody>();
      if (body.ver > ver_) ver_ = body.ver;
      break;
    }
    case kReadTag: {
      VerBody body = msg.decode<VerBody>();
      on_read(ctx, msg.src, body.ver);
      break;
    }
    default:
      ctx.report_fault("kv-part: unknown tag " + std::to_string(msg.tag));
  }
}

void KvPartReplicaBase::save_root(BinaryWriter& w) const {
  w.write_u32(cfg_.writes);
  w.write_u32(cfg_.reads);
  w.write_u64(ver_);
}

void KvPartReplicaBase::load_root(BinaryReader& r) {
  cfg_.writes = r.read_u32();
  cfg_.reads = r.read_u32();
  ver_ = r.read_u64();
}

}  // namespace detail

// --- v1: serve the local copy unconditionally -------------------------------

void KvPartReplicaV1::on_read(rt::Context& ctx, ProcessId client,
                              std::uint64_t floor) {
  (void)floor;
  // BUG: no freshness check — a lagging backup happily serves a version
  // the client has already moved past.
  ctx.send_body(client, kReadReplyTag, VerBody{ver_});
}

// --- v2: refuse reads below the client's floor ------------------------------

void KvPartReplicaV2::on_read(rt::Context& ctx, ProcessId client,
                              std::uint64_t floor) {
  if (ver_ >= floor) {
    ctx.send_body(client, kReadReplyTag, VerBody{ver_});
  } else {
    ctx.send_body(client, kStaleTag, VerBody{ver_});
  }
}

// --- client -----------------------------------------------------------------

void KvPartClient::send_read(rt::Context& ctx, ProcessId target) {
  ctx.send_body(target, kReadTag, VerBody{last_seen_});
}

void KvPartClient::on_start(rt::Context& ctx) {
  if (cfg_.reads == 0) {
    ctx.halt();
    return;
  }
  send_read(ctx, 0);  // first read goes to the primary
}

void KvPartClient::on_message(rt::Context& ctx, const net::Message& msg) {
  const std::size_t replicas = ctx.world_size() - 1;
  switch (msg.tag) {
    case kReadReplyTag: {
      VerBody body = msg.decode<VerBody>();
      if (body.ver < last_seen_) {
        monotonic_ok_ = false;  // time flowed backwards
      } else {
        last_seen_ = body.ver;
      }
      ++reads_done_;
      if (reads_done_ < cfg_.reads) {
        send_read(ctx, static_cast<ProcessId>(reads_done_ % replicas));
      } else {
        ctx.halt();
      }
      break;
    }
    case kStaleTag: {
      // v2 refusal: retry at the primary, which is authoritative.
      send_read(ctx, 0);
      break;
    }
    default:
      ctx.report_fault("kv-part client: unknown tag " +
                       std::to_string(msg.tag));
  }
}

void KvPartClient::save_root(BinaryWriter& w) const {
  w.write_u32(cfg_.writes);
  w.write_u32(cfg_.reads);
  w.write_u64(last_seen_);
  w.write_u32(reads_done_);
  w.write_bool(monotonic_ok_);
}

void KvPartClient::load_root(BinaryReader& r) {
  cfg_.writes = r.read_u32();
  cfg_.reads = r.read_u32();
  last_seen_ = r.read_u64();
  reads_done_ = r.read_u32();
  monotonic_ok_ = r.read_bool();
}

// --- helpers ----------------------------------------------------------------

std::unique_ptr<rt::World> make_kv_partition_world(std::size_t replicas,
                                                   int version,
                                                   KvPartitionConfig cfg,
                                                   rt::WorldOptions base) {
  FIXD_CHECK_MSG(replicas >= 2, "kv-partition needs a primary and a backup");
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < replicas; ++i) {
    if (version == 1) {
      w->add_process(std::make_unique<KvPartReplicaV1>(cfg));
    } else {
      w->add_process(std::make_unique<KvPartReplicaV2>(cfg));
    }
  }
  w->add_process(std::make_unique<KvPartClient>(cfg));
  w->seal();
  install_kv_partition_invariants(*w);
  return w;
}

void install_kv_partition_invariants(rt::World& w) {
  w.invariants().add_global(
      "kv-part/monotonic-reads",
      [](const rt::World& world) -> std::optional<std::string> {
        for (ProcessId p = 0; p < world.size(); ++p) {
          const auto* c =
              dynamic_cast<const IKvPartClient*>(&world.process(p));
          if (c && !c->monotonic_ok()) {
            return "client p" + std::to_string(p) +
                   " observed a read below its floor (" +
                   std::to_string(c->last_seen()) + ")";
          }
        }
        return std::nullopt;
      });
}

heal::UpdatePatch kv_partition_fix_patch(KvPartitionConfig cfg) {
  heal::UpdatePatch p;
  p.target_type = "kv-part-replica";
  p.from_version = 1;
  p.to_version = 2;
  p.factory = [cfg]() { return std::make_unique<KvPartReplicaV2>(cfg); };
  p.description = "kv-part v2: reads below the client's floor are refused";
  return p;
}

}  // namespace fixd::apps
