// Heartbeat-lease leader election that split-brains under a partition.
//
// Process 0 starts as leader and broadcasts a bounded stream of heartbeats;
// every follower runs a watchdog that suspects the leader when a whole
// watchdog window passes without a fresh beat.
//
//   v1 (buggy):  a suspicious follower fails over *unilaterally* — it
//                declares itself leader the moment its watchdog starves.
//                An asymmetric partition (leader→victim cut, victim→leader
//                open) starves exactly one watchdog while the old leader
//                keeps running: two leaders.
//   v2 (fixed):  a suspicious follower first asks the others for votes and
//                declares only with a majority behind it. Followers grant a
//                vote only while their own watchdog is starving, so a cut
//                that isolates a minority can never elect a second leader.
//
// Safety invariant (global): at most one process leading.
//
// In *timed* exploration the violation is unreachable without an
// environment action: beats (latency ~1, period beat_period) always land
// before the watchdog (watchdog > beat_period) fires. A kPartitionLinks
// cut deferring the beats is what unlocks it — this scenario is the
// partition analogue of kv_lag's delay-unlocked duplicate.
#pragma once

#include <memory>
#include <string>

#include "heal/patch.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

enum ElectSplitTag : net::Tag {
  kBeatTag = 411,
  kVoteReqTag = 412,
  kVoteAckTag = 413,
};

struct ElectSplitConfig {
  /// Leader heartbeat period (virtual time).
  VirtualTime beat_period = 4;
  /// Follower watchdog window; must exceed beat_period + delivery latency
  /// or followers suspect a healthy leader.
  VirtualTime watchdog = 10;
  /// Heartbeats the leader sends before going quiet (bounds the run).
  std::uint32_t max_beats = 6;
};

class IElectSplit {
 public:
  virtual ~IElectSplit() = default;
  virtual bool leading() const = 0;
  virtual bool suspicious() const = 0;
  virtual std::uint32_t beats_seen() const = 0;
};

namespace detail {
class ElectSplitBase : public rt::Process, public IElectSplit {
 public:
  static constexpr std::uint32_t kBeatKind = 6;
  static constexpr std::uint32_t kWatchKind = 7;

  explicit ElectSplitBase(ElectSplitConfig cfg) : cfg_(cfg) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;
  void on_timer(rt::Context& ctx, const rt::Timer& timer) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "elect-split"; }

  bool leading() const override { return leading_; }
  bool suspicious() const override { return suspicious_; }
  std::uint32_t beats_seen() const override { return beats_seen_; }

 protected:
  /// Version-specific failover reaction once the watchdog starves.
  virtual void on_suspect(rt::Context& ctx) = 0;

  void send_beat_round(rt::Context& ctx);

  ElectSplitConfig cfg_;
  bool leading_ = false;
  bool suspicious_ = false;
  std::uint32_t beats_sent_ = 0;
  std::uint32_t beats_seen_ = 0;
  std::uint32_t beats_at_arm_ = 0;
  std::uint32_t acks_ = 0;
};
}  // namespace detail

class ElectSplitV1 final : public detail::ElectSplitBase {
 public:
  explicit ElectSplitV1(ElectSplitConfig cfg = {}) : ElectSplitBase(cfg) {}
  std::uint32_t version() const override { return 1; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<ElectSplitV1>(*this);
  }

 protected:
  void on_suspect(rt::Context& ctx) override;
};

class ElectSplitV2 final : public detail::ElectSplitBase {
 public:
  explicit ElectSplitV2(ElectSplitConfig cfg = {}) : ElectSplitBase(cfg) {}
  std::uint32_t version() const override { return 2; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<ElectSplitV2>(*this);
  }

 protected:
  void on_suspect(rt::Context& ctx) override;
};

std::unique_ptr<rt::World> make_elect_split_world(std::size_t n, int version,
                                                  ElectSplitConfig cfg = {},
                                                  rt::WorldOptions base = {});

void install_elect_split_invariants(rt::World& w);

heal::UpdatePatch elect_split_fix_patch(ElectSplitConfig cfg = {});

}  // namespace fixd::apps
