// Two-phase commit with a presumed-outcome timeout bug.
//
// Pid 0 coordinates K sequential transactions across N-1 participants.
// A participant votes deterministically (a function of txn id and pid); a NO
// vote also aborts unilaterally on the spot, as 2PC allows.
//
//   v1 (buggy):  the coordinator's vote-collection timeout decides COMMIT
//                ("presumed commit" applied to the wrong phase — the classic
//                blunder). If a NO vote is still in flight when the timeout
//                fires, the coordinator commits a transaction a participant
//                has already aborted: atomicity is broken.
//   v2 (fixed):  the timeout decides ABORT (presumed abort), which is always
//                safe before the decision is announced.
//
// Safety invariant (global): for every transaction, no two parties record
// conflicting decisions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "heal/patch.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

enum TwoPcTag : net::Tag {
  kPrepareTag = 201,
  kVoteYesTag = 202,
  kVoteNoTag = 203,
  kCommitTag = 204,
  kAbortTag = 205,
  kAckTag = 206,
  kTpcStopTag = 207,
};

enum class TxnDecision : std::uint8_t { kNone = 0, kCommit = 1, kAbort = 2 };

/// Read-only view used by the invariant.
class ITwoPcParty {
 public:
  virtual ~ITwoPcParty() = default;
  virtual TxnDecision decision_of(std::uint64_t txn) const = 0;
  virtual std::uint64_t txn_count() const = 0;
};

struct TwoPcConfig {
  std::uint64_t total_txns = 3;
  VirtualTime vote_timeout = 400;
};

/// Deterministic vote function (shared so tests can predict outcomes).
/// Participant 1 votes NO on txn 0 (17 % 5 == 2), so the v1 timeout bug is
/// reachable within the first transaction.
inline bool two_pc_votes_yes(std::uint64_t txn, ProcessId pid) {
  return (txn * 31 + static_cast<std::uint64_t>(pid) * 17) % 5 != 2;
}

namespace detail {
class TwoPcBase : public rt::Process, public ITwoPcParty {
 public:
  explicit TwoPcBase(TwoPcConfig cfg) : cfg_(cfg) {
    decisions_.assign(cfg_.total_txns, TxnDecision::kNone);
  }

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;
  void on_timer(rt::Context& ctx, const rt::Timer& timer) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "two-phase-commit"; }

  TxnDecision decision_of(std::uint64_t txn) const override {
    return txn < decisions_.size() ? decisions_[txn] : TxnDecision::kNone;
  }
  std::uint64_t txn_count() const override { return cfg_.total_txns; }

  /// Transactions the coordinator has fully finished (acked by everyone).
  std::uint64_t completed_txns() const { return completed_; }

 protected:
  static constexpr std::uint32_t kVoteTimeoutKind = 2;

  bool is_coordinator(rt::Context& ctx) const { return ctx.self() == 0; }
  std::size_t participant_count(rt::Context& ctx) const {
    return ctx.world_size() - 1;
  }

  void begin_txn(rt::Context& ctx);
  void decide(rt::Context& ctx, TxnDecision d);
  void record(std::uint64_t txn, TxnDecision d) {
    if (txn < decisions_.size()) decisions_[txn] = d;
  }

  /// Version-specific: decision taken when the vote timeout fires.
  virtual TxnDecision timeout_decision() const = 0;

  TwoPcConfig cfg_;
  std::vector<TxnDecision> decisions_;
  // Coordinator-only state.
  std::uint64_t current_txn_ = 0;
  bool voting_ = false;
  std::uint32_t yes_votes_ = 0;
  std::uint32_t votes_received_ = 0;
  std::uint32_t acks_ = 0;
  std::uint64_t completed_ = 0;
};
}  // namespace detail

class TwoPcV1 final : public detail::TwoPcBase {
 public:
  explicit TwoPcV1(TwoPcConfig cfg = {}) : TwoPcBase(cfg) {}
  std::uint32_t version() const override { return 1; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<TwoPcV1>(*this);
  }

 protected:
  TxnDecision timeout_decision() const override {
    return TxnDecision::kCommit;  // BUG: presumed commit before decision
  }
};

class TwoPcV2 final : public detail::TwoPcBase {
 public:
  explicit TwoPcV2(TwoPcConfig cfg = {}) : TwoPcBase(cfg) {}
  std::uint32_t version() const override { return 2; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<TwoPcV2>(*this);
  }

 protected:
  TxnDecision timeout_decision() const override {
    return TxnDecision::kAbort;  // presumed abort: always safe pre-decision
  }
};

std::unique_ptr<rt::World> make_two_pc_world(std::size_t n, int version,
                                             TwoPcConfig cfg = {},
                                             rt::WorldOptions base = {});

void install_two_pc_invariants(rt::World& w);

heal::UpdatePatch two_pc_fix_patch(TwoPcConfig cfg = {});

}  // namespace fixd::apps
