// Primary–backup replicated key-value store.
//
// Pid 0 (the primary) generates a deterministic stream of put operations,
// applies each locally, and replicates it to every backup with a sequence
// number. All replica state lives in a PagedHeap-backed hash map, so this is
// the application whose checkpoints genuinely benefit from copy-on-write
// (bench/fig2) — megabytes of store, page-sized mutations.
//
//   v1 (buggy):  a backup applies replicated ops in arrival order, ignoring
//                sequence numbers. Correct on a FIFO network; on a
//                reordering network two writes to the same key can land in
//                the wrong order and the replicas silently diverge.
//   v2 (fixed):  a backup buffers out-of-order ops and applies strictly in
//                sequence.
//
// Safety invariant (global): when no replication traffic is in flight and
// the primary has finished, every replica has the same content digest.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "heal/patch.hpp"
#include "mem/heap_alloc.hpp"
#include "mem/paged_map.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

enum KvTag : net::Tag {
  kReplicateTag = 301,
  kKvStopTag = 302,
};

/// 64-byte values so the store is byte-heavy (realistic COW workload).
struct KvValue {
  std::uint64_t val = 0;
  std::uint64_t fill[7] = {0, 0, 0, 0, 0, 0, 0};

  static KvValue of(std::uint64_t v) {
    KvValue out;
    out.val = v;
    for (std::size_t i = 0; i < 7; ++i) out.fill[i] = v * (i + 2);
    return out;
  }
};
static_assert(sizeof(KvValue) == 64);

class IKvReplica {
 public:
  virtual ~IKvReplica() = default;
  /// Order-insensitive content digest of the replica's map.
  virtual std::uint64_t content_digest() const = 0;
  virtual std::uint64_t keys_stored() const = 0;
  virtual bool finished() const = 0;
  virtual std::uint64_t ops_applied() const = 0;
};

struct KvConfig {
  std::uint64_t total_ops = 64;
  std::uint64_t key_space = 16;  ///< small => write-write conflicts likely
};

namespace detail {
class KvReplicaBase : public rt::Process, public IKvReplica {
 public:
  explicit KvReplicaBase(KvConfig cfg);

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;
  void on_timer(rt::Context& ctx, const rt::Timer& timer) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  mem::PagedHeap* cow_heap() override { return &heap_; }

  std::string type_name() const override { return "kv-replica"; }

  std::uint64_t content_digest() const override;
  std::uint64_t keys_stored() const override;
  bool finished() const override { return finished_; }
  std::uint64_t ops_applied() const override { return applied_; }

  /// Direct access for benches/tests (primary-side writes).
  void apply_put(std::uint64_t key, std::uint64_t value);
  std::optional<std::uint64_t> get(std::uint64_t key) const;

 protected:
  static constexpr std::uint32_t kOpTimerKind = 3;

  bool is_primary(rt::Context& ctx) const { return ctx.self() == 0; }
  void primary_step(rt::Context& ctx);

  /// Version-specific replication apply at a backup.
  virtual void on_replicate(rt::Context& ctx, std::uint64_t seq,
                            std::uint64_t key, std::uint64_t value) = 0;

  mem::PagedMap<std::uint64_t, KvValue> map() const {
    // HeapAlloc/PagedMap are stateless views over the heap; reopening per
    // call keeps every byte of state in COW-checkpointable memory.
    mem::HeapAlloc alloc =
        mem::HeapAlloc::attach(const_cast<mem::PagedHeap&>(heap_));
    return mem::PagedMap<std::uint64_t, KvValue>::open(alloc, map_off_);
  }

  KvConfig cfg_;
  mem::PagedHeap heap_;
  std::uint64_t map_off_ = 0;
  std::uint64_t next_seq_ = 0;   ///< primary: next to assign; backup: v2 cursor
  std::uint64_t applied_ = 0;
  bool finished_ = false;
  /// v2 backup reorder buffer (root state; small).
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> pending_;
};
}  // namespace detail

class KvReplicaV1 final : public detail::KvReplicaBase {
 public:
  explicit KvReplicaV1(KvConfig cfg = {}) : KvReplicaBase(cfg) {}
  std::uint32_t version() const override { return 1; }
  std::unique_ptr<rt::Process> clone_behavior() const override;

 protected:
  void on_replicate(rt::Context& ctx, std::uint64_t seq, std::uint64_t key,
                    std::uint64_t value) override;
};

class KvReplicaV2 final : public detail::KvReplicaBase {
 public:
  explicit KvReplicaV2(KvConfig cfg = {}) : KvReplicaBase(cfg) {}
  std::uint32_t version() const override { return 2; }
  std::unique_ptr<rt::Process> clone_behavior() const override;

 protected:
  void on_replicate(rt::Context& ctx, std::uint64_t seq, std::uint64_t key,
                    std::uint64_t value) override;
};

std::unique_ptr<rt::World> make_kv_world(std::size_t n, int version,
                                         KvConfig cfg = {},
                                         rt::WorldOptions base = {});

void install_kv_invariants(rt::World& w);

heal::UpdatePatch kv_fix_patch(KvConfig cfg = {});

}  // namespace fixd::apps
