#include "apps/two_phase_commit.hpp"

namespace fixd::apps {

namespace {
struct TxnBody {
  std::uint64_t txn = 0;
  void save(BinaryWriter& w) const { w.write_u64(txn); }
  void load(BinaryReader& r) { txn = r.read_u64(); }
};
}  // namespace

namespace detail {

void TwoPcBase::on_start(rt::Context& ctx) {
  if (is_coordinator(ctx)) {
    if (cfg_.total_txns == 0) {
      for (ProcessId p = 1; p < ctx.world_size(); ++p)
        ctx.send(p, kTpcStopTag, {});
      ctx.halt();
      return;
    }
    begin_txn(ctx);
  }
}

void TwoPcBase::begin_txn(rt::Context& ctx) {
  voting_ = true;
  yes_votes_ = 0;
  votes_received_ = 0;
  acks_ = 0;
  TxnBody body{current_txn_};
  for (ProcessId p = 1; p < ctx.world_size(); ++p) {
    ctx.send_body(p, kPrepareTag, body);
  }
  ctx.set_timer(cfg_.vote_timeout, kVoteTimeoutKind);
}

void TwoPcBase::decide(rt::Context& ctx, TxnDecision d) {
  voting_ = false;
  ctx.cancel_timers(kVoteTimeoutKind);
  record(current_txn_, d);
  TxnBody body{current_txn_};
  net::Tag tag = (d == TxnDecision::kCommit) ? kCommitTag : kAbortTag;
  for (ProcessId p = 1; p < ctx.world_size(); ++p) {
    ctx.send_body(p, tag, body);
  }
}

void TwoPcBase::on_timer(rt::Context& ctx, const rt::Timer& timer) {
  if (timer.kind != kVoteTimeoutKind) return;
  if (!is_coordinator(ctx) || !voting_) return;
  ctx.annotate("vote timeout for txn " + std::to_string(current_txn_));
  decide(ctx, timeout_decision());
}

void TwoPcBase::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kPrepareTag: {
      TxnBody body = msg.decode<TxnBody>();
      if (two_pc_votes_yes(body.txn, ctx.self())) {
        ctx.send_body(msg.src, kVoteYesTag, body);
      } else {
        // A NO vote is a unilateral abort: record it immediately.
        record(body.txn, TxnDecision::kAbort);
        ctx.send_body(msg.src, kVoteNoTag, body);
      }
      break;
    }
    case kVoteYesTag:
    case kVoteNoTag: {
      if (!is_coordinator(ctx) || !voting_) break;  // stale vote
      TxnBody body = msg.decode<TxnBody>();
      if (body.txn != current_txn_) break;
      ++votes_received_;
      if (msg.tag == kVoteYesTag) ++yes_votes_;
      if (msg.tag == kVoteNoTag) {
        decide(ctx, TxnDecision::kAbort);
      } else if (votes_received_ == participant_count(ctx)) {
        decide(ctx, yes_votes_ == participant_count(ctx)
                        ? TxnDecision::kCommit
                        : TxnDecision::kAbort);
      }
      break;
    }
    case kCommitTag:
    case kAbortTag: {
      TxnBody body = msg.decode<TxnBody>();
      TxnDecision d = (msg.tag == kCommitTag) ? TxnDecision::kCommit
                                              : TxnDecision::kAbort;
      // A participant that already aborted unilaterally keeps its abort:
      // overwriting would *mask* the atomicity violation rather than cause
      // it — the conflicting records are exactly what the invariant checks.
      if (decision_of(body.txn) == TxnDecision::kNone) record(body.txn, d);
      ctx.send_body(msg.src, kAckTag, body);
      break;
    }
    case kAckTag: {
      if (!is_coordinator(ctx)) break;
      TxnBody body = msg.decode<TxnBody>();
      if (body.txn != current_txn_) break;
      ++acks_;
      if (acks_ == participant_count(ctx)) {
        ++completed_;
        ++current_txn_;
        if (current_txn_ >= cfg_.total_txns) {
          for (ProcessId p = 1; p < ctx.world_size(); ++p)
            ctx.send(p, kTpcStopTag, {});
          ctx.halt();
        } else {
          begin_txn(ctx);
        }
      }
      break;
    }
    case kTpcStopTag:
      ctx.halt();
      break;
    default:
      ctx.report_fault("2pc: unknown tag " + std::to_string(msg.tag));
  }
}

void TwoPcBase::save_root(BinaryWriter& w) const {
  w.write_u64(cfg_.total_txns);
  w.write_u64(cfg_.vote_timeout);
  w.write_varint(decisions_.size());
  for (TxnDecision d : decisions_) w.write_u8(static_cast<std::uint8_t>(d));
  w.write_u64(current_txn_);
  w.write_bool(voting_);
  w.write_u32(yes_votes_);
  w.write_u32(votes_received_);
  w.write_u32(acks_);
  w.write_u64(completed_);
}

void TwoPcBase::load_root(BinaryReader& r) {
  cfg_.total_txns = r.read_u64();
  cfg_.vote_timeout = r.read_u64();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  decisions_.assign(n, TxnDecision::kNone);
  for (std::size_t i = 0; i < n; ++i) {
    decisions_[i] = static_cast<TxnDecision>(r.read_u8());
  }
  current_txn_ = r.read_u64();
  voting_ = r.read_bool();
  yes_votes_ = r.read_u32();
  votes_received_ = r.read_u32();
  acks_ = r.read_u32();
  completed_ = r.read_u64();
}

}  // namespace detail

std::unique_ptr<rt::World> make_two_pc_world(std::size_t n, int version,
                                             TwoPcConfig cfg,
                                             rt::WorldOptions base) {
  FIXD_CHECK_MSG(n >= 2, "2pc needs a coordinator and a participant");
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    if (version == 1) {
      w->add_process(std::make_unique<TwoPcV1>(cfg));
    } else {
      w->add_process(std::make_unique<TwoPcV2>(cfg));
    }
  }
  w->seal();
  install_two_pc_invariants(*w);
  return w;
}

void install_two_pc_invariants(rt::World& w) {
  w.invariants().add_global(
      "2pc/atomicity",
      [](const rt::World& world) -> std::optional<std::string> {
        const auto* first =
            dynamic_cast<const ITwoPcParty*>(&world.process(0));
        if (!first) return std::nullopt;
        for (std::uint64_t txn = 0; txn < first->txn_count(); ++txn) {
          bool commit = false, abort = false;
          for (ProcessId p = 0; p < world.size(); ++p) {
            const auto* party =
                dynamic_cast<const ITwoPcParty*>(&world.process(p));
            if (!party) continue;
            switch (party->decision_of(txn)) {
              case TxnDecision::kCommit: commit = true; break;
              case TxnDecision::kAbort: abort = true; break;
              case TxnDecision::kNone: break;
            }
          }
          if (commit && abort) {
            return "txn " + std::to_string(txn) +
                   " has conflicting commit/abort records";
          }
        }
        return std::nullopt;
      });
}

heal::UpdatePatch two_pc_fix_patch(TwoPcConfig cfg) {
  heal::UpdatePatch p;
  p.target_type = "two-phase-commit";
  p.from_version = 1;
  p.to_version = 2;
  p.factory = [cfg]() { return std::make_unique<TwoPcV2>(cfg); };
  p.description = "2pc v2: vote timeout presumes abort, not commit";
  return p;
}

}  // namespace fixd::apps
