#include "apps/kv_store.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace fixd::apps {

namespace {
struct RepOpBody {
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  void save(BinaryWriter& w) const {
    w.write_u64(seq);
    w.write_u64(key);
    w.write_u64(value);
  }
  void load(BinaryReader& r) {
    seq = r.read_u64();
    key = r.read_u64();
    value = r.read_u64();
  }
};
}  // namespace

namespace detail {

KvReplicaBase::KvReplicaBase(KvConfig cfg) : cfg_(cfg) {
  mem::HeapAlloc alloc = mem::HeapAlloc::format(heap_);
  auto m = mem::PagedMap<std::uint64_t, KvValue>::create(alloc, 64);
  map_off_ = m.header_offset();
}

void KvReplicaBase::apply_put(std::uint64_t key, std::uint64_t value) {
  map().put(key, KvValue::of(value));
  ++applied_;
}

std::optional<std::uint64_t> KvReplicaBase::get(std::uint64_t key) const {
  auto v = map().get(key);
  if (!v) return std::nullopt;
  return v->val;
}

std::uint64_t KvReplicaBase::content_digest() const {
  // Order-insensitive: the same logical content must digest equally even if
  // insertion order (and thus heap layout) differed between replicas.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kvs;
  map().for_each([&](const std::uint64_t& k, const KvValue& v) {
    kvs.emplace_back(k, v.val);
  });
  std::sort(kvs.begin(), kvs.end());
  Hasher h;
  for (const auto& [k, v] : kvs) {
    h.update_u64(k);
    h.update_u64(v);
  }
  return h.digest();
}

std::uint64_t KvReplicaBase::keys_stored() const { return map().size(); }

void KvReplicaBase::on_start(rt::Context& ctx) {
  if (is_primary(ctx)) {
    if (cfg_.total_ops == 0) {
      finished_ = true;
      for (ProcessId p = 1; p < ctx.world_size(); ++p)
        ctx.send(p, kKvStopTag, {});
      ctx.halt();
      return;
    }
    ctx.set_timer(1, kOpTimerKind);
  }
}

void KvReplicaBase::primary_step(rt::Context& ctx) {
  std::uint64_t key = ctx.random_u64() % cfg_.key_space;
  std::uint64_t value = ctx.random_u64();
  apply_put(key, value);
  RepOpBody body{next_seq_++, key, value};
  for (ProcessId p = 1; p < ctx.world_size(); ++p) {
    ctx.send_body(p, kReplicateTag, body);
  }
  if (next_seq_ >= cfg_.total_ops) {
    finished_ = true;
    for (ProcessId p = 1; p < ctx.world_size(); ++p)
      ctx.send(p, kKvStopTag, {});
    ctx.halt();
  } else {
    ctx.set_timer(1, kOpTimerKind);
  }
}

void KvReplicaBase::on_timer(rt::Context& ctx, const rt::Timer& timer) {
  if (timer.kind != kOpTimerKind || !is_primary(ctx)) return;
  primary_step(ctx);
}

void KvReplicaBase::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kReplicateTag: {
      RepOpBody body = msg.decode<RepOpBody>();
      on_replicate(ctx, body.seq, body.key, body.value);
      break;
    }
    case kKvStopTag:
      finished_ = true;
      ctx.halt();
      break;
    default:
      ctx.report_fault("kv: unknown tag " + std::to_string(msg.tag));
  }
}

void KvReplicaBase::save_root(BinaryWriter& w) const {
  w.write_u64(cfg_.total_ops);
  w.write_u64(cfg_.key_space);
  w.write_u64(map_off_);
  w.write_u64(next_seq_);
  w.write_u64(applied_);
  w.write_bool(finished_);
  w.write_varint(pending_.size());
  for (const auto& [seq, kv] : pending_) {
    w.write_u64(seq);
    w.write_u64(kv.first);
    w.write_u64(kv.second);
  }
}

void KvReplicaBase::load_root(BinaryReader& r) {
  cfg_.total_ops = r.read_u64();
  cfg_.key_space = r.read_u64();
  map_off_ = r.read_u64();
  next_seq_ = r.read_u64();
  applied_ = r.read_u64();
  finished_ = r.read_bool();
  pending_.clear();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t seq = r.read_u64();
    std::uint64_t k = r.read_u64();
    std::uint64_t v = r.read_u64();
    pending_[seq] = {k, v};
  }
}

}  // namespace detail

// --- v1: apply in arrival order (diverges under reordering) -----------------

std::unique_ptr<rt::Process> KvReplicaV1::clone_behavior() const {
  return std::make_unique<KvReplicaV1>(*this);
}

void KvReplicaV1::on_replicate(rt::Context& ctx, std::uint64_t seq,
                               std::uint64_t key, std::uint64_t value) {
  (void)ctx;
  (void)seq;  // BUG: ordering metadata ignored
  apply_put(key, value);
}

// --- v2: strict sequence order ----------------------------------------------

std::unique_ptr<rt::Process> KvReplicaV2::clone_behavior() const {
  return std::make_unique<KvReplicaV2>(*this);
}

void KvReplicaV2::on_replicate(rt::Context& ctx, std::uint64_t seq,
                               std::uint64_t key, std::uint64_t value) {
  (void)ctx;
  pending_[seq] = {key, value};
  while (!pending_.empty() && pending_.begin()->first == next_seq_) {
    auto [k, v] = pending_.begin()->second;
    apply_put(k, v);
    pending_.erase(pending_.begin());
    ++next_seq_;
  }
}

// --- helpers -----------------------------------------------------------------

std::unique_ptr<rt::World> make_kv_world(std::size_t n, int version,
                                         KvConfig cfg,
                                         rt::WorldOptions base) {
  FIXD_CHECK_MSG(n >= 2, "kv needs a primary and a backup");
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    if (version == 1) {
      w->add_process(std::make_unique<KvReplicaV1>(cfg));
    } else {
      w->add_process(std::make_unique<KvReplicaV2>(cfg));
    }
  }
  w->seal();
  install_kv_invariants(*w);
  return w;
}

void install_kv_invariants(rt::World& w) {
  w.invariants().add_global(
      "kv/replica-consistency",
      [](const rt::World& world) -> std::optional<std::string> {
        // Only decidable at quiescence of the replication stream.
        const auto* primary =
            dynamic_cast<const IKvReplica*>(&world.process(0));
        if (!primary || !primary->finished()) return std::nullopt;
        for (const net::Message* m : world.network().pending()) {
          if (m->tag == kReplicateTag || m->tag == kKvStopTag)
            return std::nullopt;
        }
        std::uint64_t want = primary->content_digest();
        for (ProcessId p = 1; p < world.size(); ++p) {
          const auto* rep =
              dynamic_cast<const IKvReplica*>(&world.process(p));
          if (!rep) continue;
          if (rep->content_digest() != want) {
            return "replica p" + std::to_string(p) +
                   " diverged from the primary";
          }
        }
        return std::nullopt;
      });
}

heal::UpdatePatch kv_fix_patch(KvConfig cfg) {
  heal::UpdatePatch p;
  p.target_type = "kv-replica";
  p.from_version = 1;
  p.to_version = 2;
  p.factory = [cfg]() { return std::make_unique<KvReplicaV2>(cfg); };
  // v1 never tracked next_seq_ on backups; the transform must set the v2
  // cursor to the number of ops already applied — the best equivalent state.
  p.transform = [](BinaryReader& in, BinaryWriter& out) {
    std::uint64_t total_ops = in.read_u64();
    std::uint64_t key_space = in.read_u64();
    std::uint64_t map_off = in.read_u64();
    std::uint64_t next_seq = in.read_u64();
    std::uint64_t applied = in.read_u64();
    bool finished = in.read_bool();
    // pending_ is empty in v1 (never populated); drop the remainder.
    out.write_u64(total_ops);
    out.write_u64(key_space);
    out.write_u64(map_off);
    out.write_u64(next_seq == 0 ? applied : next_seq);
    out.write_u64(applied);
    out.write_bool(finished);
    out.write_varint(0);
    return true;
  };
  p.description = "kv v2: backups apply replicated ops in sequence order";
  return p;
}

}  // namespace fixd::apps
