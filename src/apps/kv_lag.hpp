// Replica-lag key-value store with a retransmit timeout: the timeout-bug
// scenario for the TimeoutTuner.
//
// Pid 0 (the primary) replicates a deterministic stream of *delta* ops to
// every backup and waits for acks. Each outstanding op is guarded by a
// retransmit timer: if the acks do not arrive within
// `retransmit_timeout`, the primary resends the op to the backups that
// have not acked yet. Backups apply ops NON-idempotently (slot += delta)
// and ack every copy they receive.
//
// The protocol is at-least-once delivery over non-idempotent state, so its
// correctness rests entirely on a *timing* assumption: the retransmit
// timeout must exceed the worst-case op+ack round trip. There is no code
// bug — with a conservative timeout every schedule is clean. With a
// timeout shorter than the network's worst case (the seeded configuration
// bug), a delayed delivery makes the primary retransmit prematurely, a
// backup applies the op twice, and the replicas silently diverge.
//
// The timeout is ordinary serialized configuration state, so the fix is a
// dynamic update whose StateTransform rewrites the stored value — exactly
// the patch shape the TimeoutTuner synthesizes (kv_lag_timeout_patch /
// kv_lag_timeout_site below).
//
// Safety invariant (global): when the primary has finished and no lag
// traffic is in flight, every replica's content digest matches the
// primary's (a duplicate apply breaks this: slot sums are too high).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "heal/timeout_tuner.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

enum KvLagTag : net::Tag {
  kLagOpTag = 311,
  kLagAckTag = 312,
  kLagStopTag = 313,
};

struct KvLagConfig {
  std::uint64_t total_ops = 2;
  std::uint64_t key_space = 4;  ///< slots; small => collisions irrelevant
  /// The tunable: how long the primary waits for acks before resending.
  /// The default is deliberately shorter than the worst-case round trip
  /// under the explorer's delay model — the seeded timeout bug.
  VirtualTime retransmit_timeout = 6;
};

/// Introspection surface for invariants / tests / benches.
class ILagReplica {
 public:
  virtual ~ILagReplica() = default;
  virtual std::uint64_t content_digest() const = 0;
  virtual std::uint64_t ops_applied() const = 0;
  virtual std::uint64_t retransmits() const = 0;
  virtual bool finished() const = 0;
  virtual VirtualTime retransmit_timeout() const = 0;
};

class KvLagReplica final : public rt::Process, public ILagReplica {
 public:
  /// `version` distinguishes timeout generations: the tuner's patch bumps
  /// it so a patched process is not re-patched (Healer::applies_to keys on
  /// (type, from_version)). Behaviour is identical across versions — only
  /// the configured timeout differs.
  explicit KvLagReplica(KvLagConfig cfg = {}, std::uint32_t version = 1)
      : cfg_(cfg), version_(version) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;
  void on_timer(rt::Context& ctx, const rt::Timer& timer) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "kv-lag-replica"; }
  std::uint32_t version() const override { return version_; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<KvLagReplica>(*this);
  }

  std::uint64_t content_digest() const override;
  std::uint64_t ops_applied() const override { return applied_; }
  std::uint64_t retransmits() const override { return retransmits_; }
  bool finished() const override { return finished_; }
  VirtualTime retransmit_timeout() const override {
    return cfg_.retransmit_timeout;
  }

  static constexpr std::uint32_t kRetransmitKind = 4;
  static constexpr std::size_t kSlots = 8;

 private:
  bool is_primary(rt::Context& ctx) const { return ctx.self() == 0; }
  /// Deterministic op stream: retransmission must resend the *same* op,
  /// so the op is a pure function of its sequence number (no RNG state to
  /// keep in sync across resends).
  static std::uint64_t op_key(std::uint64_t seq, std::uint64_t key_space) {
    return (seq * 7 + 3) % key_space;
  }
  static std::uint64_t op_delta(std::uint64_t seq) { return seq * 11 + 1; }

  void apply(std::uint64_t key, std::uint64_t delta) {
    slots_[key % kSlots] += delta;  // NON-idempotent by design
    ++applied_;
  }
  void send_op(rt::Context& ctx, bool first_send);
  void advance(rt::Context& ctx);

  KvLagConfig cfg_;
  std::uint32_t version_ = 1;
  std::array<std::uint64_t, kSlots> slots_{};
  std::uint64_t seq_ = 0;          ///< primary: current outstanding op
  std::uint64_t applied_ = 0;
  std::uint64_t retransmits_ = 0;  ///< primary: premature-timeout count
  bool finished_ = false;
  /// Primary: which backups acked the outstanding op (index 0 unused).
  std::vector<bool> acked_;
};

std::unique_ptr<rt::World> make_kv_lag_world(std::size_t n,
                                             KvLagConfig cfg = {},
                                             rt::WorldOptions base = {});

void install_kv_lag_invariants(rt::World& w);

/// The timeout fix as a dynamic update: same behaviour, new configured
/// retransmit timeout, version bumped so the patch is not re-applied.
heal::UpdatePatch kv_lag_timeout_patch(KvLagConfig cfg,
                                       VirtualTime new_timeout,
                                       std::uint32_t from_version = 1);

/// Where the tunable lives, for the TimeoutTuner.
heal::TimeoutSite kv_lag_timeout_site(KvLagConfig cfg,
                                      std::uint32_t from_version = 1);

}  // namespace fixd::apps
