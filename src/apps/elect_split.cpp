#include "apps/elect_split.hpp"

#include <optional>

namespace fixd::apps {

namespace detail {

void ElectSplitBase::on_start(rt::Context& ctx) {
  if (ctx.self() == 0) {
    leading_ = true;
    send_beat_round(ctx);
  } else {
    ctx.set_timer(cfg_.watchdog, kWatchKind);
  }
}

void ElectSplitBase::send_beat_round(rt::Context& ctx) {
  ++beats_sent_;
  for (ProcessId p = 0; p < ctx.world_size(); ++p) {
    if (p != ctx.self()) ctx.send(p, kBeatTag, {});
  }
  if (beats_sent_ < cfg_.max_beats) {
    ctx.set_timer(cfg_.beat_period, kBeatKind);
  }
}

void ElectSplitBase::on_timer(rt::Context& ctx, const rt::Timer& timer) {
  switch (timer.kind) {
    case kBeatKind: {
      if (leading_ && beats_sent_ < cfg_.max_beats) send_beat_round(ctx);
      break;
    }
    case kWatchKind: {
      if (leading_) break;  // already failed over
      if (beats_seen_ > beats_at_arm_) {
        // The leader showed signs of life inside the window; keep watching
        // until its bounded beat stream is complete, then go quiet.
        beats_at_arm_ = beats_seen_;
        if (beats_seen_ < cfg_.max_beats) {
          ctx.set_timer(cfg_.watchdog, kWatchKind);
        }
        break;
      }
      suspicious_ = true;
      ctx.annotate("watchdog starved after " + std::to_string(beats_seen_) +
                   " beats");
      on_suspect(ctx);
      break;
    }
    default:
      break;
  }
}

void ElectSplitBase::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kBeatTag: {
      ++beats_seen_;
      suspicious_ = false;  // fresh leader evidence
      break;
    }
    case kVoteReqTag: {
      // Grant a vote only while our own watchdog is starving too — the v2
      // quorum rule. (v1 never asks, but the grant side is version-free.)
      if (suspicious_ && !leading_) ctx.send(msg.src, kVoteAckTag, {});
      break;
    }
    case kVoteAckTag: {
      ++acks_;
      if (!leading_ && 2 * (acks_ + 1) > ctx.world_size()) {
        leading_ = true;  // majority behind the failover
      }
      break;
    }
    default:
      ctx.report_fault("elect-split: unknown tag " + std::to_string(msg.tag));
  }
}

void ElectSplitBase::save_root(BinaryWriter& w) const {
  w.write_u64(cfg_.beat_period);
  w.write_u64(cfg_.watchdog);
  w.write_u32(cfg_.max_beats);
  w.write_bool(leading_);
  w.write_bool(suspicious_);
  w.write_u32(beats_sent_);
  w.write_u32(beats_seen_);
  w.write_u32(beats_at_arm_);
  w.write_u32(acks_);
}

void ElectSplitBase::load_root(BinaryReader& r) {
  cfg_.beat_period = r.read_u64();
  cfg_.watchdog = r.read_u64();
  cfg_.max_beats = r.read_u32();
  leading_ = r.read_bool();
  suspicious_ = r.read_bool();
  beats_sent_ = r.read_u32();
  beats_seen_ = r.read_u32();
  beats_at_arm_ = r.read_u32();
  acks_ = r.read_u32();
}

}  // namespace detail

// --- v1: unilateral failover (split brain under a partition) ----------------

void ElectSplitV1::on_suspect(rt::Context& ctx) {
  (void)ctx;
  // BUG: "no beats means the leader is dead". Under an asymmetric cut the
  // leader is alive and still leading — it just can't reach us.
  leading_ = true;
}

// --- v2: majority-vote failover ---------------------------------------------

void ElectSplitV2::on_suspect(rt::Context& ctx) {
  for (ProcessId p = 0; p < ctx.world_size(); ++p) {
    if (p != ctx.self()) ctx.send(p, kVoteReqTag, {});
  }
}

// --- helpers ----------------------------------------------------------------

std::unique_ptr<rt::World> make_elect_split_world(std::size_t n, int version,
                                                  ElectSplitConfig cfg,
                                                  rt::WorldOptions base) {
  FIXD_CHECK_MSG(n >= 3, "elect-split needs a leader and a quorum");
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    if (version == 1) {
      w->add_process(std::make_unique<ElectSplitV1>(cfg));
    } else {
      w->add_process(std::make_unique<ElectSplitV2>(cfg));
    }
  }
  w->seal();
  install_elect_split_invariants(*w);
  return w;
}

void install_elect_split_invariants(rt::World& w) {
  w.invariants().add_global(
      "elect-split/single-leader",
      [](const rt::World& world) -> std::optional<std::string> {
        std::size_t leaders = 0;
        for (ProcessId p = 0; p < world.size(); ++p) {
          const auto* e = dynamic_cast<const IElectSplit*>(&world.process(p));
          if (e && e->leading()) ++leaders;
        }
        if (leaders > 1) {
          return std::to_string(leaders) + " processes leading";
        }
        return std::nullopt;
      });
}

heal::UpdatePatch elect_split_fix_patch(ElectSplitConfig cfg) {
  heal::UpdatePatch p;
  p.target_type = "elect-split";
  p.from_version = 1;
  p.to_version = 2;
  p.factory = [cfg]() { return std::make_unique<ElectSplitV2>(cfg); };
  p.description = "elect-split v2: failover requires a majority vote";
  return p;
}

}  // namespace fixd::apps
