#include "apps/kv_lag.hpp"

#include "common/hash.hpp"

namespace fixd::apps {

namespace {
struct LagOpBody {
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  std::uint64_t delta = 0;
  void save(BinaryWriter& w) const {
    w.write_u64(seq);
    w.write_u64(key);
    w.write_u64(delta);
  }
  void load(BinaryReader& r) {
    seq = r.read_u64();
    key = r.read_u64();
    delta = r.read_u64();
  }
};

struct LagAckBody {
  std::uint64_t seq = 0;
  void save(BinaryWriter& w) const { w.write_u64(seq); }
  void load(BinaryReader& r) { seq = r.read_u64(); }
};
}  // namespace

std::uint64_t KvLagReplica::content_digest() const {
  Hasher h;
  for (std::uint64_t s : slots_) h.update_u64(s);
  return h.digest();
}

void KvLagReplica::on_start(rt::Context& ctx) {
  if (!is_primary(ctx)) return;
  acked_.assign(ctx.world_size(), false);
  if (cfg_.total_ops == 0) {
    finished_ = true;
    for (ProcessId p = 1; p < ctx.world_size(); ++p)
      ctx.send(p, kLagStopTag, {});
    ctx.halt();
    return;
  }
  send_op(ctx, /*first_send=*/true);
}

void KvLagReplica::send_op(rt::Context& ctx, bool first_send) {
  const std::uint64_t key = op_key(seq_, cfg_.key_space);
  const std::uint64_t delta = op_delta(seq_);
  if (first_send) {
    apply(key, delta);  // the primary's own copy, exactly once
  } else {
    ++retransmits_;
  }
  LagOpBody body{seq_, key, delta};
  for (ProcessId p = 1; p < ctx.world_size(); ++p) {
    if (!acked_[p]) ctx.send_body(p, kLagOpTag, body);
  }
  ctx.set_timer(cfg_.retransmit_timeout, kRetransmitKind);
}

void KvLagReplica::advance(rt::Context& ctx) {
  ctx.cancel_timers(kRetransmitKind);
  ++seq_;
  acked_.assign(ctx.world_size(), false);
  if (seq_ >= cfg_.total_ops) {
    finished_ = true;
    for (ProcessId p = 1; p < ctx.world_size(); ++p)
      ctx.send(p, kLagStopTag, {});
    ctx.halt();
  } else {
    send_op(ctx, /*first_send=*/true);
  }
}

void KvLagReplica::on_timer(rt::Context& ctx, const rt::Timer& timer) {
  if (timer.kind != kRetransmitKind || !is_primary(ctx) || finished_) return;
  // The acks are late. If the timeout is conservative this never happens;
  // if it undercuts the real round trip, this resend is the duplicate that
  // diverges the replicas.
  ctx.annotate("retransmit timeout for op " + std::to_string(seq_));
  send_op(ctx, /*first_send=*/false);
}

void KvLagReplica::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kLagOpTag: {
      LagOpBody body = msg.decode<LagOpBody>();
      // At-least-once delivery applied non-idempotently: a second copy of
      // the same op lands here as a second += .
      apply(body.key, body.delta);
      ctx.send_body(msg.src, kLagAckTag, LagAckBody{body.seq});
      break;
    }
    case kLagAckTag: {
      if (!is_primary(ctx) || finished_) break;
      LagAckBody body = msg.decode<LagAckBody>();
      if (body.seq != seq_) break;              // stale ack
      if (msg.src >= acked_.size() || acked_[msg.src]) break;
      acked_[msg.src] = true;
      bool all = true;
      for (ProcessId p = 1; p < ctx.world_size(); ++p) {
        if (!acked_[p]) all = false;
      }
      if (all) advance(ctx);
      break;
    }
    case kLagStopTag:
      finished_ = true;
      ctx.halt();
      break;
    default:
      ctx.report_fault("kv-lag: unknown tag " + std::to_string(msg.tag));
  }
}

void KvLagReplica::save_root(BinaryWriter& w) const {
  // The tunable leads the layout (after the fixed config pair) so the
  // tuner's StateTransform can rewrite it and raw-copy the rest.
  w.write_u64(cfg_.total_ops);
  w.write_u64(cfg_.key_space);
  w.write_u64(cfg_.retransmit_timeout);
  for (std::uint64_t s : slots_) w.write_u64(s);
  w.write_u64(seq_);
  w.write_u64(applied_);
  w.write_u64(retransmits_);
  w.write_bool(finished_);
  w.write_varint(acked_.size());
  for (bool b : acked_) w.write_bool(b);
}

void KvLagReplica::load_root(BinaryReader& r) {
  cfg_.total_ops = r.read_u64();
  cfg_.key_space = r.read_u64();
  cfg_.retransmit_timeout = r.read_u64();
  for (std::uint64_t& s : slots_) s = r.read_u64();
  seq_ = r.read_u64();
  applied_ = r.read_u64();
  retransmits_ = r.read_u64();
  finished_ = r.read_bool();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  acked_.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) acked_[i] = r.read_bool();
}

std::unique_ptr<rt::World> make_kv_lag_world(std::size_t n, KvLagConfig cfg,
                                             rt::WorldOptions base) {
  FIXD_CHECK_MSG(n >= 2, "kv-lag needs a primary and a backup");
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    w->add_process(std::make_unique<KvLagReplica>(cfg));
  }
  w->seal();
  install_kv_lag_invariants(*w);
  return w;
}

void install_kv_lag_invariants(rt::World& w) {
  w.invariants().add_global(
      "kv-lag/exactly-once",
      [](const rt::World& world) -> std::optional<std::string> {
        // Only decidable at quiescence of the replication stream.
        const auto* primary =
            dynamic_cast<const ILagReplica*>(&world.process(0));
        if (!primary || !primary->finished()) return std::nullopt;
        for (const net::Message* m : world.network().pending()) {
          if (m->tag == kLagOpTag || m->tag == kLagAckTag ||
              m->tag == kLagStopTag) {
            return std::nullopt;
          }
        }
        std::uint64_t want = primary->content_digest();
        for (ProcessId p = 1; p < world.size(); ++p) {
          const auto* rep =
              dynamic_cast<const ILagReplica*>(&world.process(p));
          if (!rep) continue;
          if (rep->content_digest() != want) {
            return "replica p" + std::to_string(p) +
                   " diverged from the primary (duplicate apply)";
          }
        }
        return std::nullopt;
      });
}

heal::UpdatePatch kv_lag_timeout_patch(KvLagConfig cfg,
                                       VirtualTime new_timeout,
                                       std::uint32_t from_version) {
  heal::UpdatePatch p;
  p.target_type = "kv-lag-replica";
  p.from_version = from_version;
  p.to_version = from_version + 1;
  KvLagConfig fixed = cfg;
  fixed.retransmit_timeout = new_timeout;
  std::uint32_t to = from_version + 1;
  p.factory = [fixed, to]() {
    return std::make_unique<KvLagReplica>(fixed, to);
  };
  // Same behaviour, new configuration: rewrite the stored timeout, carry
  // everything else verbatim.
  p.transform = [new_timeout](BinaryReader& in, BinaryWriter& out) {
    out.write_u64(in.read_u64());  // total_ops
    out.write_u64(in.read_u64());  // key_space
    in.read_u64();                 // old retransmit_timeout, replaced:
    out.write_u64(new_timeout);
    out.write_raw(in.read_raw(in.remaining()));
    return true;
  };
  p.description = "kv-lag: retransmit timeout -> " +
                  std::to_string(new_timeout);
  return p;
}

heal::TimeoutSite kv_lag_timeout_site(KvLagConfig cfg,
                                      std::uint32_t from_version) {
  heal::TimeoutSite site;
  site.name = "kv-lag/retransmit-timeout";
  site.target_type = "kv-lag-replica";
  site.from_version = from_version;
  site.timer_kind = KvLagReplica::kRetransmitKind;
  site.current = cfg.retransmit_timeout;
  site.make_patch = [cfg, from_version](VirtualTime v) {
    return kv_lag_timeout_patch(cfg, v, from_version);
  };
  return site;
}

}  // namespace fixd::apps
