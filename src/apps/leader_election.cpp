#include "apps/leader_election.hpp"

namespace fixd::apps {

namespace {
struct ElectBody {
  std::uint64_t uid = 0;
  std::uint32_t origin = 0;
  void save(BinaryWriter& w) const {
    w.write_u64(uid);
    w.write_u32(origin);
  }
  void load(BinaryReader& r) {
    uid = r.read_u64();
    origin = r.read_u32();
  }
};

struct LeaderBody {
  std::uint32_t leader = 0;
  void save(BinaryWriter& w) const { w.write_u32(leader); }
  void load(BinaryReader& r) { leader = r.read_u32(); }
};
}  // namespace

namespace detail {

void ElectorBase::on_start(rt::Context& ctx) {
  uid_ = ctx.env_read("uid") % cfg_.uid_space;
  ElectBody body{uid_, static_cast<std::uint32_t>(ctx.self())};
  ctx.send_body(next_of(ctx), kElectTag, body);
}

void ElectorBase::declare(rt::Context& ctx) {
  is_leader_ = true;
  leader_ = ctx.self();
  LeaderBody body{static_cast<std::uint32_t>(ctx.self())};
  for (ProcessId p = 0; p < ctx.world_size(); ++p) {
    if (p != ctx.self()) ctx.send_body(p, kLeaderTag, body);
  }
  ctx.halt();
}

void ElectorBase::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kElectTag: {
      ElectBody body = msg.decode<ElectBody>();
      on_candidate(ctx, body.uid, body.origin);
      break;
    }
    case kLeaderTag: {
      LeaderBody body = msg.decode<LeaderBody>();
      leader_ = body.leader;
      ctx.halt();
      break;
    }
    default:
      ctx.report_fault("election: unknown tag " + std::to_string(msg.tag));
  }
}

void ElectorBase::save_root(BinaryWriter& w) const {
  w.write_u64(cfg_.uid_space);
  w.write_u64(uid_);
  w.write_bool(is_leader_);
  w.write_u32(leader_);
}

void ElectorBase::load_root(BinaryReader& r) {
  cfg_.uid_space = r.read_u64();
  uid_ = r.read_u64();
  is_leader_ = r.read_bool();
  leader_ = r.read_u32();
}

}  // namespace detail

// --- v1: compares bare uid values (split brain on collision) ---------------

void ElectorV1::on_candidate(rt::Context& ctx, std::uint64_t uid,
                             ProcessId origin) {
  (void)origin;
  if (uid > uid_) {
    ElectBody body{uid, origin};
    ctx.send_body(next_of(ctx), kElectTag, body);
  } else if (uid == uid_) {
    // BUG: "my value came back, I must be the maximum". With a shared
    // maximum value, every sharer's candidacy survives the full loop and
    // every sharer reaches this branch.
    declare(ctx);
  }
  // uid < uid_: swallow the weaker candidacy (our own is already out).
}

// --- v2: compares (uid, pid) — unique total order ---------------------------

void ElectorV2::on_candidate(rt::Context& ctx, std::uint64_t uid,
                             ProcessId origin) {
  if (uid == uid_ && origin == ctx.self()) {
    declare(ctx);  // provably our own candidacy: unique (uid, pid)
    return;
  }
  bool stronger = (uid > uid_) ||
                  (uid == uid_ && origin > ctx.self());
  if (stronger) {
    ElectBody body{uid, origin};
    ctx.send_body(next_of(ctx), kElectTag, body);
  }
}

// --- helpers -----------------------------------------------------------------

std::unique_ptr<rt::World> make_election_world(std::size_t n, int version,
                                               ElectionConfig cfg,
                                               rt::WorldOptions base) {
  FIXD_CHECK_MSG(n >= 2, "election needs at least two processes");
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    if (version == 1) {
      w->add_process(std::make_unique<ElectorV1>(cfg));
    } else {
      w->add_process(std::make_unique<ElectorV2>(cfg));
    }
  }
  w->seal();
  install_election_invariants(*w);
  return w;
}

void install_election_invariants(rt::World& w) {
  w.invariants().add_global(
      "election/single-leader",
      [](const rt::World& world) -> std::optional<std::string> {
        std::size_t leaders = 0;
        for (ProcessId p = 0; p < world.size(); ++p) {
          const auto* e = dynamic_cast<const IElector*>(&world.process(p));
          if (e && e->declared_leader()) ++leaders;
        }
        if (leaders > 1) {
          return std::to_string(leaders) + " processes declared leadership";
        }
        return std::nullopt;
      });
}

heal::UpdatePatch election_fix_patch(ElectionConfig cfg) {
  heal::UpdatePatch p;
  p.target_type = "leader-election";
  p.from_version = 1;
  p.to_version = 2;
  p.factory = [cfg]() { return std::make_unique<ElectorV2>(cfg); };
  p.description = "election v2: candidates ordered by (uid, pid), not uid";
  return p;
}

std::uint64_t find_colliding_env_seed(std::size_t n, ElectionConfig cfg,
                                      std::uint64_t from) {
  for (std::uint64_t seed = from; seed < from + 100000; ++seed) {
    std::uint64_t max_uid = 0;
    std::size_t holders = 0;
    for (ProcessId p = 0; p < n; ++p) {
      std::uint64_t uid =
          rt::default_env_value(seed, p, "uid", 0) % cfg.uid_space;
      if (uid > max_uid) {
        max_uid = uid;
        holders = 1;
      } else if (uid == max_uid) {
        ++holders;
      }
    }
    if (holders >= 2) return seed;
  }
  throw ConfigError("no colliding env seed found in scan range");
}

}  // namespace fixd::apps
