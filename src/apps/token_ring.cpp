#include "apps/token_ring.hpp"

namespace fixd::apps {

namespace {

struct TokenBody {
  std::uint64_t seq = 0;
  void save(BinaryWriter& w) const { w.write_u64(seq); }
  void load(BinaryReader& r) { seq = r.read_u64(); }
};

struct ProbeBody {
  std::uint32_t initiator = 0;
  bool token_seen = false;
  void save(BinaryWriter& w) const {
    w.write_u32(initiator);
    w.write_bool(token_seen);
  }
  void load(BinaryReader& r) {
    initiator = r.read_u32();
    token_seen = r.read_bool();
  }
};

}  // namespace

namespace detail {

void TokenRingBase::on_start(rt::Context& ctx) {
  rearm_timeout(ctx);
  if (ctx.self() == 0) {
    token_seq_ = 1;
    acquire_token(ctx);
    pass_token(ctx);
  }
}

void TokenRingBase::acquire_token(rt::Context& ctx) {
  has_token_ = true;
  token_seen_since_probe_ = true;
  ++work_;  // the critical section
  if (ctx.self() == 0) ++rounds_;
}

void TokenRingBase::pass_token(rt::Context& ctx) {
  if (!has_token_) return;
  has_token_ = false;
  TokenBody body{token_seq_};
  ctx.send_body(next_of(ctx), kTokenTag, body);
}

void TokenRingBase::regenerate_token(rt::Context& ctx) {
  ++token_seq_;
  ctx.annotate("regenerating token (seq " + std::to_string(token_seq_) + ")");
  acquire_token(ctx);
  pass_token(ctx);
}

void TokenRingBase::rearm_timeout(rt::Context& ctx) {
  ctx.cancel_timers(kTimeoutKind);
  ctx.set_timer(cfg_.timeout, kTimeoutKind);
}

void TokenRingBase::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kTokenTag: {
      TokenBody body = msg.decode<TokenBody>();
      if (done_) {
        // The ring has shut down; absorb stray tokens instead of keeping
        // them circulating through halted processes forever.
        break;
      }
      token_seq_ = std::max(token_seq_, body.seq);
      acquire_token(ctx);
      rearm_timeout(ctx);
      if (ctx.self() == 0 && rounds_ >= cfg_.target_rounds) {
        // Shut the ring down: absorb the token, stop everyone.
        has_token_ = false;
        done_ = true;
        for (ProcessId p = 0; p < ctx.world_size(); ++p) {
          if (p != ctx.self()) ctx.send(p, kStopTag, {});
        }
        ctx.halt();
        return;
      }
      pass_token(ctx);
      break;
    }
    case kProbeTag:
      on_probe(ctx, msg);
      break;
    case kStopTag:
      done_ = true;
      ctx.halt();
      break;
    default:
      ctx.report_fault("token-ring: unknown tag " + std::to_string(msg.tag));
  }
}

void TokenRingBase::on_timer(rt::Context& ctx, const rt::Timer& timer) {
  if (timer.kind != kTimeoutKind) return;
  on_timeout(ctx);
  rearm_timeout(ctx);
}

void TokenRingBase::on_probe(rt::Context& ctx, const net::Message& msg) {
  (void)ctx;
  (void)msg;
  // v1 never sends probes; ignore stray ones.
}

void TokenRingBase::save_root(BinaryWriter& w) const {
  w.write_u64(cfg_.target_rounds);
  w.write_u64(cfg_.timeout);
  w.write_bool(has_token_);
  w.write_bool(done_);
  w.write_u64(work_);
  w.write_u64(rounds_);
  w.write_u64(token_seq_);
  w.write_bool(token_seen_since_probe_);
  w.write_bool(probing_);
}

void TokenRingBase::load_root(BinaryReader& r) {
  cfg_.target_rounds = r.read_u64();
  cfg_.timeout = r.read_u64();
  has_token_ = r.read_bool();
  done_ = r.read_bool();
  work_ = r.read_u64();
  rounds_ = r.read_u64();
  token_seq_ = r.read_u64();
  token_seen_since_probe_ = r.read_bool();
  probing_ = r.read_bool();
}

}  // namespace detail

// --- v1: the bug ------------------------------------------------------------

void TokenRingV1::on_timeout(rt::Context& ctx) {
  // BUG: assumes timeout implies token loss. A slow hop (or an exploring
  // scheduler) fires this while the token is alive => two tokens.
  if (!has_token_) regenerate_token(ctx);
}

// --- v2: the fix ------------------------------------------------------------

void TokenRingV2::on_timeout(rt::Context& ctx) {
  // Only the ring monitor (pid 0) probes: concurrent probes from several
  // processes could each conclude "token lost" and each regenerate.
  if (ctx.self() != 0) return;
  if (has_token_ || probing_ || done_) return;
  probing_ = true;
  ProbeBody body{static_cast<std::uint32_t>(ctx.self()), false};
  ctx.send_body(next_of(ctx), kProbeTag, body);
}

void TokenRingV2::on_probe(rt::Context& ctx, const net::Message& msg) {
  ProbeBody body = msg.decode<ProbeBody>();
  if (body.initiator == ctx.self()) {
    probing_ = false;
    if (!body.token_seen && !has_token_ && !done_) {
      // FIFO ring: a live token would have been observed by some hop since
      // the probe epoch started. A clean probe means real loss.
      regenerate_token(ctx);
    }
    return;
  }
  if (has_token_ || token_seen_since_probe_) body.token_seen = true;
  token_seen_since_probe_ = false;  // reset this hop's probe epoch
  ctx.send_body(next_of(ctx), kProbeTag, body);
}

// --- helpers ---------------------------------------------------------------

std::unique_ptr<rt::World> make_token_ring_world(std::size_t n, int version,
                                                 TokenRingConfig cfg,
                                                 rt::WorldOptions base) {
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    if (version == 1) {
      w->add_process(std::make_unique<TokenRingV1>(cfg));
    } else {
      w->add_process(std::make_unique<TokenRingV2>(cfg));
    }
  }
  w->seal();
  install_token_ring_invariants(*w);
  return w;
}

void install_token_ring_invariants(rt::World& w) {
  w.invariants().add_global(
      "token-ring/mutual-exclusion",
      [](const rt::World& world) -> std::optional<std::string> {
        std::size_t tokens = 0;
        for (ProcessId p = 0; p < world.size(); ++p) {
          const auto* holder =
              dynamic_cast<const ITokenHolder*>(&world.process(p));
          if (holder && holder->holds_token()) ++tokens;
        }
        for (const net::Message* m : world.network().pending()) {
          if (m->tag == kTokenTag) ++tokens;
        }
        if (tokens > 1) {
          return std::to_string(tokens) +
                 " tokens in the system (holders + in flight)";
        }
        return std::nullopt;
      });
}

heal::UpdatePatch token_ring_fix_patch(TokenRingConfig cfg) {
  heal::UpdatePatch p;
  p.target_type = "token-ring";
  p.from_version = 1;
  p.to_version = 2;
  p.factory = [cfg]() { return std::make_unique<TokenRingV2>(cfg); };
  // v1 and v2 share the root layout: identity transform.
  p.description =
      "token-ring v2: timeout launches a ring probe instead of blind "
      "regeneration";
  return p;
}

std::uint64_t token_ring_total_work(const rt::World& w) {
  std::uint64_t total = 0;
  for (ProcessId p = 0; p < w.size(); ++p) {
    const auto* holder = dynamic_cast<const ITokenHolder*>(&w.process(p));
    if (holder) total += holder->work_done();
  }
  return total;
}

}  // namespace fixd::apps
