// Chang–Roberts ring leader election over environment-assigned ids.
//
// Each process reads its candidate id from the environment (ctx.env_read —
// the nondeterministic input the Scroll records and black-box replay feeds
// back) and circulates the maximum around the ring.
//
//   v1 (buggy):  a process declares itself leader when its *id value* comes
//                back around. Environment ids are drawn from a small space;
//                when two processes share the maximum value, both see "their"
//                id return and both declare: split brain.
//   v2 (fixed):  candidates are (id, pid) pairs — totally ordered and unique,
//                so exactly one process wins.
//
// Safety invariant (global): at most one self-declared leader.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "heal/patch.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

enum ElectionTag : net::Tag {
  kElectTag = 401,
  kLeaderTag = 402,
};

class IElector {
 public:
  virtual ~IElector() = default;
  virtual bool declared_leader() const = 0;
  virtual std::uint64_t candidate_uid() const = 0;
  virtual ProcessId known_leader() const = 0;
};

struct ElectionConfig {
  /// Ids are env values modulo this; small => collisions likely (the v1
  /// trigger). v2 is correct regardless.
  std::uint64_t uid_space = 4;
};

namespace detail {
class ElectorBase : public rt::Process, public IElector {
 public:
  explicit ElectorBase(ElectionConfig cfg) : cfg_(cfg) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "leader-election"; }

  bool declared_leader() const override { return is_leader_; }
  std::uint64_t candidate_uid() const override { return uid_; }
  ProcessId known_leader() const override { return leader_; }

 protected:
  ProcessId next_of(rt::Context& ctx) const {
    return static_cast<ProcessId>((ctx.self() + 1) % ctx.world_size());
  }
  void declare(rt::Context& ctx);

  /// Version-specific handling of a circulating candidacy.
  virtual void on_candidate(rt::Context& ctx, std::uint64_t uid,
                            ProcessId origin) = 0;

  ElectionConfig cfg_;
  std::uint64_t uid_ = 0;
  bool is_leader_ = false;
  ProcessId leader_ = kNoProcess;
};
}  // namespace detail

class ElectorV1 final : public detail::ElectorBase {
 public:
  explicit ElectorV1(ElectionConfig cfg = {}) : ElectorBase(cfg) {}
  std::uint32_t version() const override { return 1; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<ElectorV1>(*this);
  }

 protected:
  void on_candidate(rt::Context& ctx, std::uint64_t uid,
                    ProcessId origin) override;
};

class ElectorV2 final : public detail::ElectorBase {
 public:
  explicit ElectorV2(ElectionConfig cfg = {}) : ElectorBase(cfg) {}
  std::uint32_t version() const override { return 2; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<ElectorV2>(*this);
  }

 protected:
  void on_candidate(rt::Context& ctx, std::uint64_t uid,
                    ProcessId origin) override;
};

std::unique_ptr<rt::World> make_election_world(std::size_t n, int version,
                                               ElectionConfig cfg = {},
                                               rt::WorldOptions base = {});

void install_election_invariants(rt::World& w);

heal::UpdatePatch election_fix_patch(ElectionConfig cfg = {});

/// Find a world env seed for which at least two of `n` processes draw the
/// same maximal uid (the v1 trigger). Deterministic scan from `from`.
std::uint64_t find_colliding_env_seed(std::size_t n, ElectionConfig cfg,
                                      std::uint64_t from = 1);

}  // namespace fixd::apps
