// Primary/backup replication that serves stale reads across a partition.
//
// Process 0 is the primary: it applies a bounded write stream at start and
// pushes version updates to every backup. The last process is a client
// reading round-robin across the replicas, carrying the highest version it
// has observed.
//
//   v1 (buggy):  a replica answers reads from its local copy
//                unconditionally. A cut on the primary→backup link leaves
//                the backup at an old version; a client that has already
//                read the primary then observes time flowing backwards —
//                a monotonic-read violation.
//   v2 (fixed):  the read request carries the client's floor; a replica
//                behind it refuses (kStaleTag) and the client retries at
//                the primary, which is authoritative by construction.
//
// Safety invariant (global): the client's reads never regress.
#pragma once

#include <memory>
#include <string>

#include "heal/patch.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

enum KvPartTag : net::Tag {
  kReplTag = 421,
  kReadTag = 422,
  kReadReplyTag = 423,
  kStaleTag = 424,
};

struct KvPartitionConfig {
  /// Writes the primary applies (final authoritative version).
  std::uint32_t writes = 3;
  /// Reads the client issues, round-robin across the replicas.
  std::uint32_t reads = 3;
};

class IKvPartReplica {
 public:
  virtual ~IKvPartReplica() = default;
  virtual std::uint64_t data_version() const = 0;
};

class IKvPartClient {
 public:
  virtual ~IKvPartClient() = default;
  virtual bool monotonic_ok() const = 0;
  virtual std::uint64_t last_seen() const = 0;
  virtual std::uint32_t reads_done() const = 0;
};

namespace detail {
class KvPartReplicaBase : public rt::Process, public IKvPartReplica {
 public:
  explicit KvPartReplicaBase(KvPartitionConfig cfg) : cfg_(cfg) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "kv-part-replica"; }

  std::uint64_t data_version() const override { return ver_; }

 protected:
  /// Version-specific read handling.
  virtual void on_read(rt::Context& ctx, ProcessId client,
                       std::uint64_t floor) = 0;

  KvPartitionConfig cfg_;
  std::uint64_t ver_ = 0;
};
}  // namespace detail

class KvPartReplicaV1 final : public detail::KvPartReplicaBase {
 public:
  explicit KvPartReplicaV1(KvPartitionConfig cfg = {})
      : KvPartReplicaBase(cfg) {}
  std::uint32_t version() const override { return 1; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<KvPartReplicaV1>(*this);
  }

 protected:
  void on_read(rt::Context& ctx, ProcessId client,
               std::uint64_t floor) override;
};

class KvPartReplicaV2 final : public detail::KvPartReplicaBase {
 public:
  explicit KvPartReplicaV2(KvPartitionConfig cfg = {})
      : KvPartReplicaBase(cfg) {}
  std::uint32_t version() const override { return 2; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<KvPartReplicaV2>(*this);
  }

 protected:
  void on_read(rt::Context& ctx, ProcessId client,
               std::uint64_t floor) override;
};

class KvPartClient final : public rt::Process, public IKvPartClient {
 public:
  explicit KvPartClient(KvPartitionConfig cfg = {}) : cfg_(cfg) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "kv-part-client"; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<KvPartClient>(*this);
  }

  bool monotonic_ok() const override { return monotonic_ok_; }
  std::uint64_t last_seen() const override { return last_seen_; }
  std::uint32_t reads_done() const override { return reads_done_; }

 private:
  void send_read(rt::Context& ctx, ProcessId target);

  KvPartitionConfig cfg_;
  std::uint64_t last_seen_ = 0;
  std::uint32_t reads_done_ = 0;
  bool monotonic_ok_ = true;
};

/// `replicas` replica processes (pid 0 the primary) plus one client.
std::unique_ptr<rt::World> make_kv_partition_world(std::size_t replicas,
                                                   int version,
                                                   KvPartitionConfig cfg = {},
                                                   rt::WorldOptions base = {});

void install_kv_partition_invariants(rt::World& w);

heal::UpdatePatch kv_partition_fix_patch(KvPartitionConfig cfg = {});

}  // namespace fixd::apps
