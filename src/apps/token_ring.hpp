// Token-ring mutual exclusion with timeout-based token regeneration.
//
// N processes in a ring pass a token; only the holder may "work" (the
// critical section). Each process also runs a token-loss timeout.
//
//   v1 (buggy):  on timeout, the process simply regenerates the token. If
//                the timeout races with a token in flight — exactly the
//                schedule a model checker explores and a deployment hits
//                under load — two tokens circulate and mutual exclusion is
//                broken. In calm timed runs v1 looks correct.
//   v2 (fixed):  on timeout, the process circulates a probe around the ring;
//                every hop stamps whether it has seen the token since the
//                last probe epoch (FIFO channels guarantee a live token is
//                seen). Only a clean probe — possible only after genuine
//                token loss — triggers regeneration.
//
// Safety invariant (global): holders + in-flight token messages ≤ 1.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "heal/patch.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

/// Message tags used by the token ring.
enum TokenRingTag : net::Tag {
  kTokenTag = 101,
  kProbeTag = 102,
  kStopTag = 103,
};

/// Read-only view shared by both versions (invariants use it).
class ITokenHolder {
 public:
  virtual ~ITokenHolder() = default;
  virtual bool holds_token() const = 0;
  virtual std::uint64_t work_done() const = 0;
  virtual std::uint64_t rounds_completed() const = 0;
};

struct TokenRingConfig {
  std::uint64_t target_rounds = 3;  ///< full ring loops before shutdown
  VirtualTime timeout = 500;        ///< token-loss timeout
};

namespace detail {
/// State and behaviour shared between v1 and v2.
class TokenRingBase : public rt::Process, public ITokenHolder {
 public:
  explicit TokenRingBase(TokenRingConfig cfg) : cfg_(cfg) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;
  void on_timer(rt::Context& ctx, const rt::Timer& timer) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "token-ring"; }

  bool holds_token() const override { return has_token_; }
  std::uint64_t work_done() const override { return work_; }
  std::uint64_t rounds_completed() const override { return rounds_; }

 protected:
  /// Version-specific timeout reaction.
  virtual void on_timeout(rt::Context& ctx) = 0;
  /// Version-specific probe handling (v1 ignores probes).
  virtual void on_probe(rt::Context& ctx, const net::Message& msg);

  ProcessId next_of(rt::Context& ctx) const {
    return static_cast<ProcessId>((ctx.self() + 1) % ctx.world_size());
  }
  void acquire_token(rt::Context& ctx);
  void pass_token(rt::Context& ctx);
  void regenerate_token(rt::Context& ctx);
  void rearm_timeout(rt::Context& ctx);

  /// Timer kind used for the token-loss timeout (kind-based: no raw ids in
  /// state, so model-checker canonicalization stays effective).
  static constexpr std::uint32_t kTimeoutKind = 1;

  TokenRingConfig cfg_;
  bool has_token_ = false;
  bool done_ = false;             ///< ring shut down; absorb stray tokens
  std::uint64_t work_ = 0;
  std::uint64_t rounds_ = 0;      ///< meaningful at pid 0
  std::uint64_t token_seq_ = 0;
  bool token_seen_since_probe_ = false;
  bool probing_ = false;
};
}  // namespace detail

/// Buggy version: timeout => immediate regeneration.
class TokenRingV1 final : public detail::TokenRingBase {
 public:
  explicit TokenRingV1(TokenRingConfig cfg = {}) : TokenRingBase(cfg) {}
  std::uint32_t version() const override { return 1; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<TokenRingV1>(*this);
  }

 protected:
  void on_timeout(rt::Context& ctx) override;
};

/// Fixed version: timeout => ring probe; regenerate only on a clean probe.
class TokenRingV2 final : public detail::TokenRingBase {
 public:
  explicit TokenRingV2(TokenRingConfig cfg = {}) : TokenRingBase(cfg) {}
  std::uint32_t version() const override { return 2; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<TokenRingV2>(*this);
  }

 protected:
  void on_timeout(rt::Context& ctx) override;
  void on_probe(rt::Context& ctx, const net::Message& msg) override;
};

/// Build an N-process ring world (not sealed-started; caller runs it).
std::unique_ptr<rt::World> make_token_ring_world(
    std::size_t n, int version, TokenRingConfig cfg = {},
    rt::WorldOptions base = {});

/// Register the mutual-exclusion invariant on any token-ring world.
void install_token_ring_invariants(rt::World& w);

/// The v1 -> v2 dynamic update.
heal::UpdatePatch token_ring_fix_patch(TokenRingConfig cfg = {});

/// Total work completed across the ring (the Healer's "retained work").
std::uint64_t token_ring_total_work(const rt::World& w);

}  // namespace fixd::apps
