#include "apps/tpc_stall.hpp"

namespace fixd::apps {

namespace {
struct StallTxnBody {
  std::uint64_t txn = 0;
  void save(BinaryWriter& w) const { w.write_u64(txn); }
  void load(BinaryReader& r) { txn = r.read_u64(); }
};
}  // namespace

void TpcStallParty::on_start(rt::Context& ctx) {
  if (!is_coordinator(ctx)) return;
  if (cfg_.total_txns == 0) {
    for (ProcessId p = 1; p < ctx.world_size(); ++p)
      ctx.send(p, kStallStopTag, {});
    ctx.halt();
    return;
  }
  begin_txn(ctx);
}

void TpcStallParty::begin_txn(rt::Context& ctx) {
  votes_ = 0;
  acks_ = 0;
  StallTxnBody body{current_txn_};
  for (ProcessId p = 1; p < ctx.world_size(); ++p) {
    ctx.send_body(p, kStallPrepareTag, body);
  }
}

void TpcStallParty::on_timer(rt::Context& ctx, const rt::Timer& timer) {
  if (timer.kind != kDecisionTimerKind) return;
  if (is_coordinator(ctx) || !waiting_decision_) return;
  // The decision is late: presume abort unilaterally. Sound only if the
  // timeout dominates the worst-case vote->decision latency — this firing
  // while the coordinator decided COMMIT is the atomicity violation.
  waiting_decision_ = false;
  ++presumed_aborts_;
  ctx.annotate("decision timeout for txn " + std::to_string(current_txn_) +
               ": presuming abort");
  record(current_txn_, TxnDecision::kAbort);
}

void TpcStallParty::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kStallPrepareTag: {
      StallTxnBody body = msg.decode<StallTxnBody>();
      current_txn_ = body.txn;
      waiting_decision_ = true;
      ctx.send_body(msg.src, kStallVoteTag, body);
      ctx.set_timer(cfg_.decision_timeout, kDecisionTimerKind);
      break;
    }
    case kStallVoteTag: {
      if (!is_coordinator(ctx)) break;
      StallTxnBody body = msg.decode<StallTxnBody>();
      if (body.txn != current_txn_) break;
      ++votes_;
      if (votes_ == participant_count(ctx)) {
        // Everyone votes YES by construction: the decision is COMMIT.
        record(current_txn_, TxnDecision::kCommit);
        for (ProcessId p = 1; p < ctx.world_size(); ++p) {
          ctx.send_body(p, kStallCommitTag, body);
        }
      }
      break;
    }
    case kStallCommitTag: {
      StallTxnBody body = msg.decode<StallTxnBody>();
      waiting_decision_ = false;
      ctx.cancel_timers(kDecisionTimerKind);
      // A participant that already presumed abort keeps its abort record:
      // overwriting would *mask* the violation the invariant checks for.
      if (decision_of(body.txn) == TxnDecision::kNone) {
        record(body.txn, TxnDecision::kCommit);
      }
      ctx.send_body(msg.src, kStallAckTag, body);
      break;
    }
    case kStallAckTag: {
      if (!is_coordinator(ctx)) break;
      StallTxnBody body = msg.decode<StallTxnBody>();
      if (body.txn != current_txn_) break;
      ++acks_;
      if (acks_ == participant_count(ctx)) {
        ++current_txn_;
        if (current_txn_ >= cfg_.total_txns) {
          for (ProcessId p = 1; p < ctx.world_size(); ++p)
            ctx.send(p, kStallStopTag, {});
          ctx.halt();
        } else {
          begin_txn(ctx);
        }
      }
      break;
    }
    case kStallStopTag:
      ctx.halt();
      break;
    default:
      ctx.report_fault("tpc-stall: unknown tag " + std::to_string(msg.tag));
  }
}

void TpcStallParty::save_root(BinaryWriter& w) const {
  // The tunable leads the layout (after total_txns) so the tuner's
  // StateTransform can rewrite it and raw-copy the rest.
  w.write_u64(cfg_.total_txns);
  w.write_u64(cfg_.decision_timeout);
  w.write_varint(decisions_.size());
  for (TxnDecision d : decisions_) w.write_u8(static_cast<std::uint8_t>(d));
  w.write_u64(current_txn_);
  w.write_u64(presumed_aborts_);
  w.write_u32(votes_);
  w.write_u32(acks_);
  w.write_bool(waiting_decision_);
}

void TpcStallParty::load_root(BinaryReader& r) {
  cfg_.total_txns = r.read_u64();
  cfg_.decision_timeout = r.read_u64();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  decisions_.assign(n, TxnDecision::kNone);
  for (std::size_t i = 0; i < n; ++i) {
    decisions_[i] = static_cast<TxnDecision>(r.read_u8());
  }
  current_txn_ = r.read_u64();
  presumed_aborts_ = r.read_u64();
  votes_ = r.read_u32();
  acks_ = r.read_u32();
  waiting_decision_ = r.read_bool();
}

std::unique_ptr<rt::World> make_tpc_stall_world(std::size_t n,
                                                TpcStallConfig cfg,
                                                rt::WorldOptions base) {
  FIXD_CHECK_MSG(n >= 2, "tpc-stall needs a coordinator and a participant");
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    w->add_process(std::make_unique<TpcStallParty>(cfg));
  }
  w->seal();
  install_tpc_stall_invariants(*w);
  return w;
}

void install_tpc_stall_invariants(rt::World& w) {
  install_two_pc_invariants(w);
}

heal::UpdatePatch tpc_stall_timeout_patch(TpcStallConfig cfg,
                                          VirtualTime new_timeout,
                                          std::uint32_t from_version) {
  heal::UpdatePatch p;
  p.target_type = "tpc-stall-party";
  p.from_version = from_version;
  p.to_version = from_version + 1;
  TpcStallConfig fixed = cfg;
  fixed.decision_timeout = new_timeout;
  std::uint32_t to = from_version + 1;
  p.factory = [fixed, to]() {
    return std::make_unique<TpcStallParty>(fixed, to);
  };
  p.transform = [new_timeout](BinaryReader& in, BinaryWriter& out) {
    out.write_u64(in.read_u64());  // total_txns
    in.read_u64();                 // old decision_timeout, replaced:
    out.write_u64(new_timeout);
    out.write_raw(in.read_raw(in.remaining()));
    return true;
  };
  p.description = "tpc-stall: decision timeout -> " +
                  std::to_string(new_timeout);
  return p;
}

heal::TimeoutSite tpc_stall_timeout_site(TpcStallConfig cfg,
                                         std::uint32_t from_version) {
  heal::TimeoutSite site;
  site.name = "tpc-stall/decision-timeout";
  site.target_type = "tpc-stall-party";
  site.from_version = from_version;
  site.timer_kind = TpcStallParty::kDecisionTimerKind;
  site.current = cfg.decision_timeout;
  site.make_patch = [cfg, from_version](VirtualTime v) {
    return tpc_stall_timeout_patch(cfg, v, from_version);
  };
  return site;
}

}  // namespace fixd::apps
