#include "apps/rep_counter.hpp"

namespace fixd::apps {

namespace {
struct IncBody {
  std::uint64_t value = 0;
  void save(BinaryWriter& w) const { w.write_u64(value); }
  void load(BinaryReader& r) { value = r.read_u64(); }
};
}  // namespace

std::uint64_t counter_expected_sum(std::size_t n, CounterConfig cfg) {
  std::uint64_t sum = 0;
  for (ProcessId p = 0; p < n; ++p) {
    for (std::uint64_t i = 0; i < cfg.incs_per_proc; ++i) {
      sum += counter_inc_value(p, i);
    }
  }
  return sum;
}

namespace detail {

void CounterBase::on_start(rt::Context& ctx) {
  for (std::uint64_t i = 0; i < cfg_.incs_per_proc; ++i) {
    IncBody body{counter_inc_value(ctx.self(), i)};
    for (ProcessId p = 0; p < ctx.world_size(); ++p) {
      ctx.send_body(p, kIncTag, body);
    }
  }
  for (ProcessId p = 0; p < ctx.world_size(); ++p) {
    ctx.send(p, kDoneTag, {});
  }
}

void CounterBase::maybe_finish(rt::Context& ctx) {
  const std::uint64_t expected_applies =
      ctx.world_size() * cfg_.incs_per_proc;
  if (done_marks_ == ctx.world_size() && applied_ == expected_applies &&
      !done_) {
    done_ = true;
    std::uint64_t expected = 0;
    for (ProcessId p = 0; p < ctx.world_size(); ++p) {
      for (std::uint64_t i = 0; i < cfg_.incs_per_proc; ++i) {
        expected += counter_inc_value(p, i);
      }
    }
    if (sum_ != expected) {
      ctx.report_fault("counter sum " + std::to_string(sum_) +
                       " != expected " + std::to_string(expected));
    }
    ctx.halt();
  }
}

void CounterBase::on_message(rt::Context& ctx, const net::Message& msg) {
  switch (msg.tag) {
    case kIncTag: {
      BinaryReader r(msg.payload);
      std::uint64_t value = r.read_u64();
      apply_inc(value);
      maybe_finish(ctx);
      break;
    }
    case kDoneTag:
      ++done_marks_;
      maybe_finish(ctx);
      break;
    default:
      ctx.report_fault("counter: unknown tag " + std::to_string(msg.tag));
  }
}

void CounterBase::save_root(BinaryWriter& w) const {
  w.write_u64(cfg_.incs_per_proc);
  w.write_u64(sum_);
  w.write_u64(applied_);
  w.write_u32(done_marks_);
  w.write_bool(done_);
}

void CounterBase::load_root(BinaryReader& r) {
  cfg_.incs_per_proc = r.read_u64();
  sum_ = r.read_u64();
  applied_ = r.read_u64();
  done_marks_ = r.read_u32();
  done_ = r.read_bool();
}

}  // namespace detail

std::unique_ptr<rt::World> make_counter_world(std::size_t n, int version,
                                              CounterConfig cfg,
                                              rt::WorldOptions base) {
  auto w = std::make_unique<rt::World>(base);
  for (std::size_t i = 0; i < n; ++i) {
    if (version == 1) {
      w->add_process(std::make_unique<CounterV1>(cfg));
    } else {
      w->add_process(std::make_unique<CounterV2>(cfg));
    }
  }
  w->seal();
  install_counter_invariants(*w);
  return w;
}

void install_counter_invariants(rt::World& w) {
  const std::size_t n = w.size();
  w.invariants().add_global(
      "counter/agreement",
      [n](const rt::World& world) -> std::optional<std::string> {
        // Finished processes must agree on the total.
        std::uint64_t seen = 0;
        bool have = false;
        for (ProcessId p = 0; p < n; ++p) {
          const auto* c = dynamic_cast<const ICounter*>(&world.process(p));
          if (!c || !c->done()) continue;
          if (!have) {
            seen = c->total();
            have = true;
          } else if (c->total() != seen) {
            return "finished processes disagree on the total";
          }
        }
        return std::nullopt;
      });
}

heal::UpdatePatch counter_fix_patch(CounterConfig cfg) {
  heal::UpdatePatch p;
  p.target_type = "rep-counter";
  p.from_version = 1;
  p.to_version = 2;
  p.factory = [cfg]() { return std::make_unique<CounterV2>(cfg); };
  p.description = "rep-counter v2: apply each increment exactly once";
  return p;
}

}  // namespace fixd::apps
