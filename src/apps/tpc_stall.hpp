// Two-phase commit with a participant-side decision timeout: the second
// timeout-bug scenario for the TimeoutTuner.
//
// Unlike apps/two_phase_commit.hpp (where the *coordinator's* vote timeout
// presumes the wrong outcome — a code bug fixed by v2), here every process
// runs correct code and the hazard is purely a configuration value: after
// voting YES a participant arms a `decision_timeout`, and if the
// coordinator's COMMIT/ABORT has not arrived when it fires, the
// participant unilaterally presumes abort (the classic presumed-abort
// escape from 2PC blocking). That is sound only if the timeout exceeds
// the worst-case stall between vote and decision delivery. A coordinator
// stall or a delayed COMMIT that outlives the timeout yields a
// participant that recorded ABORT while the coordinator recorded COMMIT —
// an atomicity violation with no buggy line of code to patch.
//
// The decision timeout is serialized configuration, so the heal is the
// TimeoutTuner's patch shape: rewrite the stored value, bump the version.
//
// Everyone votes YES here (the vote function is constant), so every txn's
// correct outcome is COMMIT; the only path to ABORT is the timeout.
// Reuses ITwoPcParty and the 2pc/atomicity invariant installer from
// apps/two_phase_commit.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/two_phase_commit.hpp"
#include "heal/timeout_tuner.hpp"

namespace fixd::apps {

enum TpcStallTag : net::Tag {
  kStallPrepareTag = 211,
  kStallVoteTag = 212,
  kStallCommitTag = 213,
  kStallAckTag = 214,
  kStallStopTag = 215,
};

struct TpcStallConfig {
  std::uint64_t total_txns = 1;
  /// The tunable: how long a YES-voting participant waits for the
  /// coordinator's decision before presuming abort. The default undercuts
  /// the worst-case decision latency under the delay model — the seeded
  /// timeout bug.
  VirtualTime decision_timeout = 6;
};

class TpcStallParty final : public rt::Process, public ITwoPcParty {
 public:
  explicit TpcStallParty(TpcStallConfig cfg = {}, std::uint32_t version = 1)
      : cfg_(cfg), version_(version) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;
  void on_timer(rt::Context& ctx, const rt::Timer& timer) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "tpc-stall-party"; }
  std::uint32_t version() const override { return version_; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<TpcStallParty>(*this);
  }

  TxnDecision decision_of(std::uint64_t txn) const override {
    return txn < decisions_.size() ? decisions_[txn] : TxnDecision::kNone;
  }
  std::uint64_t txn_count() const override { return cfg_.total_txns; }

  VirtualTime decision_timeout() const { return cfg_.decision_timeout; }
  std::uint64_t presumed_aborts() const { return presumed_aborts_; }

  static constexpr std::uint32_t kDecisionTimerKind = 5;

 private:
  bool is_coordinator(rt::Context& ctx) const { return ctx.self() == 0; }
  std::uint32_t participant_count(rt::Context& ctx) const {
    return static_cast<std::uint32_t>(ctx.world_size() - 1);
  }
  void record(std::uint64_t txn, TxnDecision d) {
    if (txn >= decisions_.size()) {
      decisions_.resize(txn + 1, TxnDecision::kNone);
    }
    decisions_[txn] = d;
  }
  void begin_txn(rt::Context& ctx);

  TpcStallConfig cfg_;
  std::uint32_t version_ = 1;
  std::vector<TxnDecision> decisions_;
  std::uint64_t current_txn_ = 0;
  std::uint64_t presumed_aborts_ = 0;  ///< participant: timeout fired count
  std::uint32_t votes_ = 0;            ///< coordinator: YES votes this txn
  std::uint32_t acks_ = 0;             ///< coordinator: acks this txn
  bool waiting_decision_ = false;      ///< participant: voted, undecided
};

std::unique_ptr<rt::World> make_tpc_stall_world(std::size_t n,
                                                TpcStallConfig cfg = {},
                                                rt::WorldOptions base = {});

/// Registers the shared 2pc/atomicity invariant (the parties implement
/// ITwoPcParty, so apps/two_phase_commit.hpp's installer applies as-is).
void install_tpc_stall_invariants(rt::World& w);

heal::UpdatePatch tpc_stall_timeout_patch(TpcStallConfig cfg,
                                          VirtualTime new_timeout,
                                          std::uint32_t from_version = 1);

heal::TimeoutSite tpc_stall_timeout_site(TpcStallConfig cfg,
                                         std::uint32_t from_version = 1);

}  // namespace fixd::apps
