// Replicated counter: the quickstart application.
//
// Every process broadcasts a fixed number of increments and applies every
// increment it receives; after all DONE markers arrive, each process checks
// its total against the (deterministically known) expected sum and reports
// a local fault on mismatch — the simplest end-to-end FixD demo: local
// detection, rollback, investigation, heal.
//
//   v1 (buggy):  increments whose value is divisible by 5 are applied twice
//                (a copy-paste double-apply).
//   v2 (fixed):  every increment applied exactly once.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "heal/patch.hpp"
#include "rt/world.hpp"

namespace fixd::apps {

enum CounterTag : net::Tag {
  kIncTag = 501,
  kDoneTag = 502,
};

class ICounter {
 public:
  virtual ~ICounter() = default;
  virtual std::uint64_t total() const = 0;
  virtual bool done() const = 0;
};

struct CounterConfig {
  std::uint64_t incs_per_proc = 4;
};

/// The value process `pid` sends as its i-th increment (deterministic, so
/// every process knows the expected global sum).
inline std::uint64_t counter_inc_value(ProcessId pid, std::uint64_t i) {
  return static_cast<std::uint64_t>(pid) * 7 + i * 3 + 1;
}

/// Expected final sum for n processes.
std::uint64_t counter_expected_sum(std::size_t n, CounterConfig cfg);

namespace detail {
class CounterBase : public rt::Process, public ICounter {
 public:
  explicit CounterBase(CounterConfig cfg) : cfg_(cfg) {}

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "rep-counter"; }

  std::uint64_t total() const override { return sum_; }
  bool done() const override { return done_; }

 protected:
  virtual void apply_inc(std::uint64_t value) = 0;
  void maybe_finish(rt::Context& ctx);

  CounterConfig cfg_;
  std::uint64_t sum_ = 0;
  std::uint64_t applied_ = 0;
  std::uint32_t done_marks_ = 0;
  bool done_ = false;
};
}  // namespace detail

class CounterV1 final : public detail::CounterBase {
 public:
  explicit CounterV1(CounterConfig cfg = {}) : CounterBase(cfg) {}
  std::uint32_t version() const override { return 1; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<CounterV1>(*this);
  }

 protected:
  void apply_inc(std::uint64_t value) override {
    sum_ += value;
    if (value % 5 == 0) sum_ += value;  // BUG: double apply
    ++applied_;
  }
};

class CounterV2 final : public detail::CounterBase {
 public:
  explicit CounterV2(CounterConfig cfg = {}) : CounterBase(cfg) {}
  std::uint32_t version() const override { return 2; }
  std::unique_ptr<rt::Process> clone_behavior() const override {
    return std::make_unique<CounterV2>(*this);
  }

 protected:
  void apply_inc(std::uint64_t value) override {
    sum_ += value;
    ++applied_;
  }
};

std::unique_ptr<rt::World> make_counter_world(std::size_t n, int version,
                                              CounterConfig cfg = {},
                                              rt::WorldOptions base = {});

void install_counter_invariants(rt::World& w);

heal::UpdatePatch counter_fix_patch(CounterConfig cfg = {});

}  // namespace fixd::apps
