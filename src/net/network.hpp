// The simulated network connecting processes.
//
// The network is the system's central source of nondeterminism: *which*
// pending message is delivered next is the scheduler's choice, and the set
// of choices the network exposes is its delivery discipline:
//
//  - reliable FIFO:  per (src,dst) channel order is preserved; the
//    deliverable set is the head of each nonempty channel (MPI-like).
//  - reordering:     any pending message may be delivered (fully async).
//  - lossy:          seeded drop/duplicate applied at submit time, on top of
//    either discipline — deterministic given the seed, so runs replay.
//
// The Investigator model-checks over exactly this deliverable set, and can
// additionally install *environment models* (mc/sysmodel.hpp) that turn each
// pending message into deliver/drop/duplicate actions — the paper's "swap
// the real communication actions for models" (§4.3).
//
// All state (pending messages, channel queues, loss RNG) is serializable so
// world snapshots capture in-flight traffic.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "net/message.hpp"

namespace fixd::net {

struct NetStats {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_policy = 0;   ///< dropped by loss policy
  std::uint64_t dropped_forced = 0;   ///< dropped by fault injection / aborts
  std::uint64_t duplicated = 0;
  std::uint64_t bytes_submitted = 0;
  std::uint64_t bytes_delivered = 0;
};

/// Configuration for a simulated network.
struct NetworkOptions {
  bool fifo = true;        ///< per-channel FIFO vs arbitrary reorder
  double drop_prob = 0.0;  ///< iid drop probability at submit
  double dup_prob = 0.0;   ///< iid duplicate probability at submit
  /// Per-message delivery latency drawn uniformly from [min, max] (virtual
  /// time). Jitter makes timed-mode runs reorder across channels.
  VirtualTime latency_min = 1;
  VirtualTime latency_max = 1;
  std::uint64_t seed = 0x5eedf00dull;

  static NetworkOptions reliable_fifo() { return {}; }
  static NetworkOptions reordering(VirtualTime lat_min = 1,
                                   VirtualTime lat_max = 4) {
    NetworkOptions o;
    o.fifo = false;
    o.latency_min = lat_min;
    o.latency_max = lat_max;
    return o;
  }
  static NetworkOptions lossy(double drop, double dup, std::uint64_t seed,
                              bool fifo = true) {
    NetworkOptions o;
    o.fifo = fifo;
    o.drop_prob = drop;
    o.dup_prob = dup;
    o.seed = seed;
    return o;
  }
};

/// One deliverable message as tracked by the incremental deliverable
/// index: the ready time and control flag are cached in the entry so
/// enabled-set materialization needs no per-message map lookup.
struct DeliverableEntry {
  VirtualTime at = 0;    ///< sent_at + latency (refreshed by mutate)
  bool control = false;  ///< FixD control-plane traffic

  auto operator<=>(const DeliverableEntry&) const = default;
};

/// Per-destination bucket of currently deliverable messages. Stored flat:
/// `by_id` is a vector sorted by ascending id (the canonical
/// materialization order), so copying a bucket into/out of a snapshot is
/// one allocation plus a memcpy — this sits on the explorer's
/// restore-per-transition hot path. The ready-time ordering that
/// timed-mode time-warp selection iterates is derived lazily (`at_view`),
/// so abstract-time exploration never pays for maintaining it.
struct DeliverableBucket {
  /// (id, entry), ascending by id.
  std::vector<std::pair<MsgId, DeliverableEntry>> by_id;

  // Copies travel through snapshots; they drop the derived at view (the
  // receiver rebuilds it lazily if it ever runs timed) so the hot-path
  // copy is the one flat by_id buffer. Moves keep it.
  DeliverableBucket() = default;
  DeliverableBucket(const DeliverableBucket& o) : by_id(o.by_id) {}
  DeliverableBucket& operator=(const DeliverableBucket& o) {
    by_id = o.by_id;
    by_at_.clear();
    at_valid_ = false;
    return *this;
  }
  DeliverableBucket(DeliverableBucket&&) = default;
  DeliverableBucket& operator=(DeliverableBucket&&) = default;

  std::size_t size() const { return by_id.size(); }
  bool empty() const { return by_id.empty(); }
  bool contains(MsgId id) const {
    auto it = lower_bound(id);
    return it != by_id.end() && it->first == id;
  }
  /// Earliest ready time in the bucket (bucket must be nonempty).
  VirtualTime min_at() const { return at_view().front().first; }

  /// (at, id) ascending; rebuilt on first use after a mutation.
  const std::vector<std::pair<VirtualTime, MsgId>>& at_view() const {
    if (!at_valid_) {
      by_at_.clear();
      by_at_.reserve(by_id.size());
      for (const auto& [id, e] : by_id) by_at_.emplace_back(e.at, id);
      std::sort(by_at_.begin(), by_at_.end());
      at_valid_ = true;
    }
    return by_at_;
  }

  void add(MsgId id, DeliverableEntry e) {
    // Ids are assigned monotonically, so inserts land at the back in the
    // common case and the sorted insert degenerates to a push_back.
    by_id.insert(lower_bound(id), {id, e});
    at_valid_ = false;
  }

  /// Empty the bucket keeping its capacity (rebuild reuse).
  void clear() {
    by_id.clear();
    at_valid_ = false;
  }

  /// Remove `id` if present; returns whether it was.
  bool remove(MsgId id) {
    auto it = lower_bound(id);
    if (it == by_id.end() || it->first != id) return false;
    by_id.erase(it);
    at_valid_ = false;
    return true;
  }

 private:
  std::vector<std::pair<MsgId, DeliverableEntry>>::const_iterator
  lower_bound(MsgId id) const {
    return std::lower_bound(
        by_id.begin(), by_id.end(), id,
        [](const auto& p, MsgId v) { return p.first < v; });
  }
  std::vector<std::pair<MsgId, DeliverableEntry>>::iterator
  lower_bound(MsgId id) {
    return std::lower_bound(
        by_id.begin(), by_id.end(), id,
        [](const auto& p, MsgId v) { return p.first < v; });
  }

  mutable std::vector<std::pair<VirtualTime, MsgId>> by_at_;
  mutable bool at_valid_ = false;
};

/// dst -> deliverable bucket; empty buckets are erased so iterating the
/// index touches only destinations that actually have deliverable traffic.
using DeliverableIndex = std::map<ProcessId, DeliverableBucket>;

/// Observer of deliverable-set deltas. While the deliverable index is
/// live, SimNetwork publishes an add/remove for every change to "which
/// message may be delivered next" (submit, take, drop, duplicate, mutate,
/// reinject). When the whole in-flight state is replaced (restore / load)
/// the index is merely invalidated — no deltas fire — and the consumer
/// detects the rebuild through deliv_epoch() and resyncs wholesale. The
/// World maintains its enabled-event index from exactly this protocol —
/// see docs/PERF.md for the invalidation contract.
class DeliverableListener {
 public:
  virtual ~DeliverableListener() = default;
  virtual void on_deliverable_add(ProcessId dst, MsgId id,
                                  const DeliverableEntry& e) = 0;
  virtual void on_deliverable_remove(ProcessId dst, MsgId id) = 0;
};

/// An immutable capture of in-flight network state. Per-message buffers
/// are *shared* with the live network (pending messages are immutable:
/// SimNetwork::mutate replaces a message, it never edits one in place), so
/// taking a snapshot is O(pending) pointer copies — no re-serialization.
/// Carries the channel digest caches warm at capture time, so restoring a
/// snapshot re-warms the network's digest pipeline instead of chilling it.
struct NetSnapshot {
  using ChannelKey = std::pair<ProcessId, ProcessId>;

  NetworkOptions options;
  Rng rng;
  MsgId next_id = 1;
  /// Blocked (src,dst) links (the partition mask), ascending key.
  std::vector<ChannelKey> blocked_links;
  /// Pending messages, ascending id. Flat sorted vectors instead of maps:
  /// a trail-frontier explorer retains one NetSnapshot per live anchor,
  /// and the map/deque representation cost ~48 B of node overhead per
  /// entry (plus ~600 B of deque blocks per channel) that a flat copy of
  /// the same data doesn't — capture iterates the live maps in order, so
  /// building the vectors is one pass, and restore rebuilds the maps with
  /// an end hint at the same O(entries) cost as the old wholesale map
  /// copy.
  std::vector<std::pair<MsgId, std::shared_ptr<const Message>>> messages;
  /// Channel queues in FIFO order, ascending channel key.
  std::vector<std::pair<ChannelKey, std::vector<MsgId>>> channels;
  NetStats stats;
  /// Digest caches valid for this snapshot's content (adopted on
  /// restore), ascending channel key.
  std::vector<std::pair<ChannelKey, std::uint64_t>> channel_digests;
  std::optional<std::uint64_t> digest_memo;
  /// Order-independent accumulator over pending message content digests
  /// (see SimNetwork::content_digest_acc), adopted on restore.
  std::uint64_t content_acc = 0;

  /// Approximate retained size (payload bytes plus per-message overhead);
  /// shared buffers are charged in full — callers that track sharing
  /// dedupe by message pointer instead.
  std::uint64_t size_bytes() const;

  /// Publish this snapshot across threads (parallel explorer): marks every
  /// shared message so delivery on any thread copies instead of moving.
  /// Memoized per snapshot object.
  void share_across_threads() const;

 private:
  SharedMark xt_marked_;
};

class SimNetwork {
 public:
  /// A directed (src,dst) link, the unit of the partition mask.
  using LinkKey = std::pair<ProcessId, ProcessId>;

  explicit SimNetwork(NetworkOptions options = {});

  const NetworkOptions& options() const { return options_; }

  /// Submit a message; assigns Message::id. Loss policy may drop or
  /// duplicate it (duplicates get fresh ids). Returns the assigned id, or
  /// nullopt if the policy dropped the message.
  std::optional<MsgId> submit(Message msg);

  /// Ids currently eligible for delivery, in deterministic (ascending id
  /// within channel-order) sequence. FIFO mode: one per nonempty channel.
  /// Recomputed from scratch per call — this is the verification oracle
  /// for the incremental deliverable index below, mirroring the
  /// digest/digest_uncached split.
  std::vector<MsgId> deliverable() const;

  /// The incrementally maintained deliverable set, bucketed by
  /// destination: updated in O(log) at every submit/take/drop/duplicate/
  /// mutate/reinject while live, and *invalidated* (not copied) when the
  /// whole in-flight state is replaced (restore / load) — the accessors
  /// below rebuild it lazily on first use afterwards, so the explorer's
  /// restore-per-transition loop pays one rebuild per expansion at most
  /// and a live run pays none. Contains the same ids as deliverable(),
  /// keyed with their ready times, regardless of whether the destination
  /// can currently receive (receivability is the World's concern — it
  /// masks whole buckets by process lifecycle state).
  const DeliverableIndex& deliv_index() const {
    ensure_deliv_index();
    return deliv_index_;
  }

  /// Bucket for one destination (nullptr when it has no deliverable
  /// traffic) and its size; O(log buckets).
  const DeliverableBucket* deliv_bucket(ProcessId dst) const {
    ensure_deliv_index();
    auto it = deliv_index_.find(dst);
    return it == deliv_index_.end() ? nullptr : &it->second;
  }
  std::size_t deliv_bucket_size(ProcessId dst) const {
    const DeliverableBucket* b = deliv_bucket(dst);
    return b ? b->size() : 0;
  }

  /// Rebuild the deliverable index now if a restore/load invalidated it.
  /// Idempotent and cheap when already valid; bumps deliv_epoch() on an
  /// actual rebuild.
  void ensure_deliv_index() const;

  /// False between a wholesale state replacement and the next rebuild.
  /// While false, mutations skip index upkeep entirely (no deltas fire).
  bool deliv_index_valid() const { return deliv_valid_; }

  /// Incremented on every wholesale index rebuild. A consumer mirroring
  /// the index through deltas compares epochs to detect that it must
  /// resync from scratch instead.
  std::uint64_t deliv_epoch() const { return deliv_epoch_; }

  /// Install the deliverable-delta observer (one per network; the owning
  /// World). Pass nullptr to detach.
  void set_deliverable_listener(DeliverableListener* l) { listener_ = l; }

  /// All in-flight messages (deliverable or queued behind channel heads).
  std::vector<const Message*> pending() const;

  std::size_t pending_count() const { return messages_.size(); }

  /// Apply an extra delivery delay to a pending message (timeout-fault
  /// injection / the kDelayMessage model action): clones the immutable
  /// message with `latency += extra` and refreshes its deliverable entry.
  /// Returns false if the message is gone.
  bool delay(MsgId id, VirtualTime extra);

  // --- link-reachability mask (partitions) ---------------------------------
  /// A blocked (src,dst) link defers its traffic: pending messages on the
  /// link stay pending (they still count as in-flight — the Healer's
  /// quiescence question is unchanged by a partition) but leave the
  /// deliverable set until the link heals. Cut/heal publish incremental
  /// index deltas like any other deliverable-set change, so the World's
  /// enabled-event index mirrors the mask without a rebuild.
  /// Returns whether the call changed the mask.
  bool cut_link(ProcessId src, ProcessId dst);
  bool heal_link(ProcessId src, ProcessId dst);
  /// Heal every blocked link; returns how many were blocked.
  std::size_t heal_all_links();
  bool link_blocked(ProcessId src, ProcessId dst) const {
    return blocked_.count({src, dst}) != 0;
  }
  std::size_t blocked_link_count() const { return blocked_.size(); }
  const std::set<LinkKey>& blocked_links() const { return blocked_; }
  /// Order-sensitive digest of the mask (folded into the world's canonical
  /// digest so partitioned states never dedup against unpartitioned ones).
  std::uint64_t links_digest() const;

  /// In-flight non-control messages destined to `dst`, maintained
  /// incrementally. Unlike deliv_bucket_size this also counts messages
  /// queued behind FIFO channel heads — which is exactly the quiescence
  /// question the Healer's update-point check asks. Bit-identical to
  /// inflight_to_uncached() by contract.
  std::uint64_t inflight_to(ProcessId dst) const {
    auto it = inflight_.find(dst);
    return it == inflight_.end() ? 0 : it->second;
  }

  /// From-scratch recount over the pending map; verification oracle for
  /// tests, mirroring the digest/digest_uncached split.
  std::uint64_t inflight_to_uncached(ProcessId dst) const;

  const Message* peek(MsgId id) const;

  /// Remove and return a deliverable message. Throws if not deliverable.
  Message take(MsgId id);

  /// Force-drop a pending message (fault injection / speculation abort).
  bool drop(MsgId id, bool forced = true);

  /// Duplicate a pending message in place (fault injection); returns new id.
  std::optional<MsgId> duplicate(MsgId id);

  /// Drop every pending message tainted by `spec` (speculation abort path).
  std::size_t drop_tainted(SpecId spec);

  /// Remove `spec` from the taint sets of all pending messages (commit path).
  std::size_t scrub_taint(SpecId spec);

  /// Re-inject a logged message after a rollback (message-logging recovery).
  /// Bypasses the loss policy; assigns a fresh id which is returned.
  MsgId reinject(Message msg);

  /// Mutate a pending message (fault injection: corruption). The pending
  /// object is immutable (snapshots may share it), so this clones it, runs
  /// `fn` on the clone, and swaps the clone in. `fn` must not change the
  /// routing identity (id/src/dst) — rerouting is drop + submit. Returns
  /// false if the message is gone.
  bool mutate(MsgId id, const std::function<void(Message&)>& fn);

  const NetStats& stats() const { return stats_; }

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

  /// O(pending) pointer-sharing capture of the in-flight state. Repeated
  /// calls with no intervening mutation return the same shared snapshot.
  std::shared_ptr<const NetSnapshot> snapshot() const;

  /// Restore to a snapshot's exact state. A restore to the snapshot that
  /// already describes the current state is a no-op (pointer equality via
  /// the snapshot cache), which is what makes the explorer's
  /// restore-then-apply loop O(changed state).
  void restore(const std::shared_ptr<const NetSnapshot>& snap);

  /// Digest of in-flight state (part of the world digest). Incremental:
  /// folds per-channel digests cached until a channel is touched
  /// (enqueue / deliver / drop / mutate / scrub / load), each of which
  /// folds the per-message state-digest memos that are warm for every
  /// pending message. Bit-identical to digest_uncached() by contract.
  std::uint64_t digest() const;

  /// From-scratch recompute bypassing the channel caches and the message
  /// memos. Verification oracle for tests and bench/fig9_digest.
  std::uint64_t digest_uncached() const;

  /// Order-independent digest of the in-flight *content* multiset: the
  /// wrapping sum of mix64(content_digest) over all pending messages,
  /// maintained incrementally at every enqueue/remove/replace. This is
  /// what World::mc_digest folds for the network share of the canonical
  /// state — O(1) per call instead of re-sorting per-message digests.
  /// Bit-identical to content_digest_acc_uncached() by contract.
  std::uint64_t content_digest_acc() const { return content_acc_; }

  /// From-scratch recompute bypassing the accumulator and the per-message
  /// memos. Verification oracle for tests.
  std::uint64_t content_digest_acc_uncached() const;

  // --- replay-warmed message objects (driven by rt::World) -----------------
  /// While a deterministically keyed event executes (rt::World::dispatch
  /// brackets it with begin/end), every message enqueued is keyed by
  /// (event key, enqueue ordinal) against a small direct-mapped ring: a
  /// re-execution of the same prefix re-derives the same key and — after a
  /// full field-equality check, so reuse is bit-exact by construction, not
  /// by hash — shares the previously allocated immutable Message object
  /// instead of duplicating it. Sibling trail-frontier anchors then hold
  /// the same message pointers for replay-created traffic, which is where
  /// most of a trail frontier's memory went. Bounded retention:
  /// kWarmRingSlots shared messages, overwritten direct-mapped.
  void begin_warm_step(std::uint64_t key) {
    warm_step_key_ = warm_on_ ? key : 0;
    warm_ordinal_ = 0;
  }
  void end_warm_step() { warm_step_key_ = 0; }
  /// Toggle the ring (rt::World::set_replay_warm forwards); clears it.
  void set_replay_warm(bool on);
  /// Messages served shared from the ring (observability for tests).
  std::uint64_t warm_hits() const { return warm_hits_; }

 private:
  using ChannelKey = std::pair<ProcessId, ProcessId>;

  bool is_deliverable(MsgId id) const;
  void enqueue(Message msg);
  VirtualTime draw_latency();
  /// Share from the warm ring when an identical message was created under
  /// the same replay key before; else allocate and publish. See
  /// begin_warm_step.
  std::shared_ptr<const Message> warm_or_make(Message&& msg);

  /// Deliverable-index deltas (publish to the listener); no-ops while the
  /// index is invalidated. idx_add_head re-adds the new head of a FIFO
  /// channel after its old head left.
  void idx_add(ProcessId dst, MsgId id, const DeliverableEntry& e);
  void idx_remove(ProcessId dst, MsgId id);
  void idx_add_head(const std::deque<MsgId>& q);
  /// Drop the index (wholesale state replacement; rebuilt lazily).
  void idx_invalidate();

  /// Maintain the per-destination in-flight counters (non-control only).
  void inflight_add(const Message& m);
  void inflight_sub(const Message& m);

  /// Any state changed (stats/RNG included): drop the whole-network memo
  /// and the snapshot cache.
  void touch();
  /// A channel's queue or a message in it changed: additionally drop that
  /// channel's cached digest.
  void touch_channel(const ChannelKey& key);

  std::uint64_t digest_impl(bool cached) const;
  std::uint64_t channel_digest(const std::deque<MsgId>& q, bool cached) const;

  NetworkOptions options_;
  Rng rng_;
  MsgId next_id_ = 1;
  /// Pending messages, immutable and shareable with snapshots.
  std::map<MsgId, std::shared_ptr<const Message>> messages_;
  std::map<ChannelKey, std::deque<MsgId>> channels_;  // fifo order per channel
  /// Blocked links (the partition mask); see cut_link.
  std::set<LinkKey> blocked_;
  NetStats stats_;
  /// Incremental content-multiset accumulator (see content_digest_acc).
  std::uint64_t content_acc_ = 0;
  /// dst -> in-flight non-control message count (see inflight_to).
  /// Rebuilt from the message map on load/restore; zero entries erased.
  std::map<ProcessId, std::uint64_t> inflight_;
  /// Incremental deliverable index (see deliv_index()); mutable for the
  /// lazy rebuild under const accessors, like the digest memos.
  mutable DeliverableIndex deliv_index_;
  mutable bool deliv_valid_ = true;
  mutable std::uint64_t deliv_epoch_ = 0;
  DeliverableListener* listener_ = nullptr;
  /// Per-channel digest cache; presence of a key == valid.
  mutable std::map<ChannelKey, std::uint64_t> channel_digest_cache_;
  mutable std::optional<std::uint64_t> digest_memo_;
  /// The snapshot describing the current state, if one is warm.
  mutable std::shared_ptr<const NetSnapshot> snap_cache_;

  /// Replay-warm message ring (see begin_warm_step). Direct-mapped: the
  /// slot is the key's low bits, so lookup and insert are one probe; a
  /// colliding insert simply evicts (sharing degrades, correctness can't —
  /// reuse requires full equality).
  static constexpr std::size_t kWarmRingSlots = 2048;
  struct WarmMsgSlot {
    std::uint64_t key = 0;
    std::shared_ptr<const Message> msg;
  };
  bool warm_on_ = true;
  std::uint64_t warm_step_key_ = 0;
  std::uint64_t warm_ordinal_ = 0;
  std::uint64_t warm_hits_ = 0;
  std::vector<WarmMsgSlot> warm_ring_;
};

}  // namespace fixd::net
