// The simulated network connecting processes.
//
// The network is the system's central source of nondeterminism: *which*
// pending message is delivered next is the scheduler's choice, and the set
// of choices the network exposes is its delivery discipline:
//
//  - reliable FIFO:  per (src,dst) channel order is preserved; the
//    deliverable set is the head of each nonempty channel (MPI-like).
//  - reordering:     any pending message may be delivered (fully async).
//  - lossy:          seeded drop/duplicate applied at submit time, on top of
//    either discipline — deterministic given the seed, so runs replay.
//
// The Investigator model-checks over exactly this deliverable set, and can
// additionally install *environment models* (mc/sysmodel.hpp) that turn each
// pending message into deliver/drop/duplicate actions — the paper's "swap
// the real communication actions for models" (§4.3).
//
// All state (pending messages, channel queues, loss RNG) is serializable so
// world snapshots capture in-flight traffic.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "net/message.hpp"

namespace fixd::net {

struct NetStats {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_policy = 0;   ///< dropped by loss policy
  std::uint64_t dropped_forced = 0;   ///< dropped by fault injection / aborts
  std::uint64_t duplicated = 0;
  std::uint64_t bytes_submitted = 0;
  std::uint64_t bytes_delivered = 0;
};

/// Configuration for a simulated network.
struct NetworkOptions {
  bool fifo = true;        ///< per-channel FIFO vs arbitrary reorder
  double drop_prob = 0.0;  ///< iid drop probability at submit
  double dup_prob = 0.0;   ///< iid duplicate probability at submit
  /// Per-message delivery latency drawn uniformly from [min, max] (virtual
  /// time). Jitter makes timed-mode runs reorder across channels.
  VirtualTime latency_min = 1;
  VirtualTime latency_max = 1;
  std::uint64_t seed = 0x5eedf00dull;

  static NetworkOptions reliable_fifo() { return {}; }
  static NetworkOptions reordering(VirtualTime lat_min = 1,
                                   VirtualTime lat_max = 4) {
    NetworkOptions o;
    o.fifo = false;
    o.latency_min = lat_min;
    o.latency_max = lat_max;
    return o;
  }
  static NetworkOptions lossy(double drop, double dup, std::uint64_t seed,
                              bool fifo = true) {
    NetworkOptions o;
    o.fifo = fifo;
    o.drop_prob = drop;
    o.dup_prob = dup;
    o.seed = seed;
    return o;
  }
};

/// An immutable capture of in-flight network state. Per-message buffers
/// are *shared* with the live network (pending messages are immutable:
/// SimNetwork::mutate replaces a message, it never edits one in place), so
/// taking a snapshot is O(pending) pointer copies — no re-serialization.
/// Carries the channel digest caches warm at capture time, so restoring a
/// snapshot re-warms the network's digest pipeline instead of chilling it.
struct NetSnapshot {
  using ChannelKey = std::pair<ProcessId, ProcessId>;

  NetworkOptions options;
  Rng rng;
  MsgId next_id = 1;
  std::map<MsgId, std::shared_ptr<const Message>> messages;
  std::map<ChannelKey, std::deque<MsgId>> channels;
  NetStats stats;
  /// Digest caches valid for this snapshot's content (adopted on restore).
  std::map<ChannelKey, std::uint64_t> channel_digests;
  std::optional<std::uint64_t> digest_memo;
  /// Order-independent accumulator over pending message content digests
  /// (see SimNetwork::content_digest_acc), adopted on restore.
  std::uint64_t content_acc = 0;

  /// Approximate retained size (payload bytes plus per-message overhead);
  /// shared buffers are charged in full — callers that track sharing
  /// dedupe by message pointer instead.
  std::uint64_t size_bytes() const;

  /// Publish this snapshot across threads (parallel explorer): marks every
  /// shared message so delivery on any thread copies instead of moving.
  /// Memoized per snapshot object.
  void share_across_threads() const;

 private:
  SharedMark xt_marked_;
};

class SimNetwork {
 public:
  explicit SimNetwork(NetworkOptions options = {});

  const NetworkOptions& options() const { return options_; }

  /// Submit a message; assigns Message::id. Loss policy may drop or
  /// duplicate it (duplicates get fresh ids). Returns the assigned id, or
  /// nullopt if the policy dropped the message.
  std::optional<MsgId> submit(Message msg);

  /// Ids currently eligible for delivery, in deterministic (ascending id
  /// within channel-order) sequence. FIFO mode: one per nonempty channel.
  std::vector<MsgId> deliverable() const;

  /// All in-flight messages (deliverable or queued behind channel heads).
  std::vector<const Message*> pending() const;

  std::size_t pending_count() const { return messages_.size(); }

  const Message* peek(MsgId id) const;

  /// Remove and return a deliverable message. Throws if not deliverable.
  Message take(MsgId id);

  /// Force-drop a pending message (fault injection / speculation abort).
  bool drop(MsgId id, bool forced = true);

  /// Duplicate a pending message in place (fault injection); returns new id.
  std::optional<MsgId> duplicate(MsgId id);

  /// Drop every pending message tainted by `spec` (speculation abort path).
  std::size_t drop_tainted(SpecId spec);

  /// Remove `spec` from the taint sets of all pending messages (commit path).
  std::size_t scrub_taint(SpecId spec);

  /// Re-inject a logged message after a rollback (message-logging recovery).
  /// Bypasses the loss policy; assigns a fresh id which is returned.
  MsgId reinject(Message msg);

  /// Mutate a pending message (fault injection: corruption). The pending
  /// object is immutable (snapshots may share it), so this clones it, runs
  /// `fn` on the clone, and swaps the clone in. `fn` must not change the
  /// routing identity (id/src/dst) — rerouting is drop + submit. Returns
  /// false if the message is gone.
  bool mutate(MsgId id, const std::function<void(Message&)>& fn);

  const NetStats& stats() const { return stats_; }

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

  /// O(pending) pointer-sharing capture of the in-flight state. Repeated
  /// calls with no intervening mutation return the same shared snapshot.
  std::shared_ptr<const NetSnapshot> snapshot() const;

  /// Restore to a snapshot's exact state. A restore to the snapshot that
  /// already describes the current state is a no-op (pointer equality via
  /// the snapshot cache), which is what makes the explorer's
  /// restore-then-apply loop O(changed state).
  void restore(const std::shared_ptr<const NetSnapshot>& snap);

  /// Digest of in-flight state (part of the world digest). Incremental:
  /// folds per-channel digests cached until a channel is touched
  /// (enqueue / deliver / drop / mutate / scrub / load), each of which
  /// folds the per-message state-digest memos that are warm for every
  /// pending message. Bit-identical to digest_uncached() by contract.
  std::uint64_t digest() const;

  /// From-scratch recompute bypassing the channel caches and the message
  /// memos. Verification oracle for tests and bench/fig9_digest.
  std::uint64_t digest_uncached() const;

  /// Order-independent digest of the in-flight *content* multiset: the
  /// wrapping sum of mix64(content_digest) over all pending messages,
  /// maintained incrementally at every enqueue/remove/replace. This is
  /// what World::mc_digest folds for the network share of the canonical
  /// state — O(1) per call instead of re-sorting per-message digests.
  /// Bit-identical to content_digest_acc_uncached() by contract.
  std::uint64_t content_digest_acc() const { return content_acc_; }

  /// From-scratch recompute bypassing the accumulator and the per-message
  /// memos. Verification oracle for tests.
  std::uint64_t content_digest_acc_uncached() const;

 private:
  using ChannelKey = std::pair<ProcessId, ProcessId>;

  bool is_deliverable(MsgId id) const;
  void enqueue(Message msg);
  VirtualTime draw_latency();

  /// Any state changed (stats/RNG included): drop the whole-network memo
  /// and the snapshot cache.
  void touch();
  /// A channel's queue or a message in it changed: additionally drop that
  /// channel's cached digest.
  void touch_channel(const ChannelKey& key);

  std::uint64_t digest_impl(bool cached) const;
  std::uint64_t channel_digest(const std::deque<MsgId>& q, bool cached) const;

  NetworkOptions options_;
  Rng rng_;
  MsgId next_id_ = 1;
  /// Pending messages, immutable and shareable with snapshots.
  std::map<MsgId, std::shared_ptr<const Message>> messages_;
  std::map<ChannelKey, std::deque<MsgId>> channels_;  // fifo order per channel
  NetStats stats_;
  /// Incremental content-multiset accumulator (see content_digest_acc).
  std::uint64_t content_acc_ = 0;
  /// Per-channel digest cache; presence of a key == valid.
  mutable std::map<ChannelKey, std::uint64_t> channel_digest_cache_;
  mutable std::optional<std::uint64_t> digest_memo_;
  /// The snapshot describing the current state, if one is warm.
  mutable std::shared_ptr<const NetSnapshot> snap_cache_;
};

}  // namespace fixd::net
