#include "net/network.hpp"

#include <algorithm>
#include <bit>

#include "common/hash.hpp"

namespace fixd::net {

std::uint64_t NetSnapshot::size_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [id, m] : messages) n += m->retained_bytes();
  for (const auto& [key, q] : channels) n += q.size() * sizeof(MsgId);
  return n;
}

void NetSnapshot::share_across_threads() const {
  if (xt_marked_.test_and_mark()) return;
  for (const auto& [id, m] : messages) m->mark_cross_thread();
}

namespace {

/// The accumulator mixes each content digest before summing so that the
/// wrapping sum stays collision-resistant for multisets (raw sums cancel
/// structured digests too easily); mix64 is bijective, so distinct
/// multisets keep distinct term sets.
std::uint64_t acc_term(std::uint64_t content_digest) {
  return mix64(content_digest);
}

}  // namespace

SimNetwork::SimNetwork(NetworkOptions options)
    : options_(options), rng_(options.seed) {}

void SimNetwork::touch() {
  digest_memo_.reset();
  snap_cache_.reset();
}

void SimNetwork::touch_channel(const ChannelKey& key) {
  channel_digest_cache_.erase(key);
  touch();
}

void SimNetwork::idx_add(ProcessId dst, MsgId id, const DeliverableEntry& e) {
  if (!deliv_valid_) return;
  deliv_index_[dst].add(id, e);
  if (listener_) listener_->on_deliverable_add(dst, id, e);
}

void SimNetwork::idx_remove(ProcessId dst, MsgId id) {
  if (!deliv_valid_) return;
  auto it = deliv_index_.find(dst);
  if (it == deliv_index_.end() || !it->second.remove(id)) return;
  if (it->second.empty()) deliv_index_.erase(it);
  if (listener_) listener_->on_deliverable_remove(dst, id);
}

void SimNetwork::idx_add_head(const std::deque<MsgId>& q) {
  if (!deliv_valid_ || q.empty()) return;
  const Message& m = *messages_.at(q.front());
  if (link_blocked(m.src, m.dst)) return;  // deferred behind the partition
  idx_add(m.dst, m.id, {m.sent_at + m.latency, m.control});
}

void SimNetwork::inflight_add(const Message& m) {
  if (!m.control) ++inflight_[m.dst];
}

void SimNetwork::inflight_sub(const Message& m) {
  if (m.control) return;
  auto it = inflight_.find(m.dst);
  FIXD_CHECK_MSG(it != inflight_.end() && it->second > 0,
                 "inflight counter underflow");
  if (--it->second == 0) inflight_.erase(it);
}

std::uint64_t SimNetwork::inflight_to_uncached(ProcessId dst) const {
  std::uint64_t n = 0;
  for (const auto& [id, m] : messages_) {
    if (m->dst == dst && !m->control) ++n;
  }
  return n;
}

void SimNetwork::idx_invalidate() {
  // Flag-only: this rides the explorer's restore-per-transition path, and
  // most invalidations are superseded by the next one before any enabled-
  // set query happens (sibling transitions). ensure_deliv_index() clears.
  deliv_valid_ = false;
}

void SimNetwork::ensure_deliv_index() const {
  if (deliv_valid_) return;
  // Rebuild in place: empty the buckets but keep their storage (and the
  // map nodes for recurring destinations) — the explorer rebuilds once
  // per expansion over near-identical destination sets, so steady-state
  // rebuilds allocate nothing.
  for (auto& [dst, b] : deliv_index_) b.clear();
  if (options_.fifo) {
    for (const auto& [key, q] : channels_) {
      if (q.empty() || blocked_.count(key)) continue;
      const Message& m = *messages_.at(q.front());
      deliv_index_[m.dst].add(m.id, {m.sent_at + m.latency, m.control});
    }
  } else {
    for (const auto& [id, m] : messages_) {
      if (link_blocked(m->src, m->dst)) continue;
      deliv_index_[m->dst].add(id, {m->sent_at + m->latency, m->control});
    }
  }
  std::erase_if(deliv_index_, [](const auto& kv) {
    return kv.second.empty();
  });
  deliv_valid_ = true;
  ++deliv_epoch_;  // delta-mirroring consumers must resync wholesale
}

std::shared_ptr<const Message> SimNetwork::warm_or_make(Message&& msg) {
  if (warm_step_key_ == 0) {
    // Created non-const (as everywhere): take()'s uniquely-owned move-out
    // path sheds const, which is only defined for non-const objects.
    return std::make_shared<Message>(std::move(msg));
  }
  if (warm_ring_.empty()) warm_ring_.resize(kWarmRingSlots);
  const std::uint64_t k =
      hash_combine(warm_step_key_, ++warm_ordinal_);
  WarmMsgSlot& slot = warm_ring_[static_cast<std::size_t>(k) &
                                 (kWarmRingSlots - 1)];
  if (slot.key == k && slot.msg) {
    // Reuse only on full equality — the key narrows the search, the
    // compare decides, so a collision can never share wrong content.
    const Message& c = *slot.msg;
    if (c.id == msg.id && c.src == msg.src && c.dst == msg.dst &&
        c.tag == msg.tag && c.sent_at == msg.sent_at &&
        c.latency == msg.latency && c.lamport == msg.lamport &&
        c.control == msg.control && c.vclock == msg.vclock &&
        c.spec_taints == msg.spec_taints && c.payload == msg.payload) {
      ++warm_hits_;
      return slot.msg;
    }
  }
  std::shared_ptr<const Message> sp =
      std::make_shared<Message>(std::move(msg));
  slot = {k, sp};
  return sp;
}

void SimNetwork::set_replay_warm(bool on) {
  warm_on_ = on;
  warm_step_key_ = 0;
  warm_ring_.clear();
  warm_hits_ = 0;
}

void SimNetwork::enqueue(Message msg) {
  MsgId id = msg.id;
  // Every pending message carries warm digest memos, so state hashing over
  // the in-flight traffic never re-hashes payloads.
  msg.warm_digest_memo();
  content_acc_ += acc_term(msg.content_digest());
  inflight_add(msg);
  ChannelKey key{msg.src, msg.dst};
  auto& q = channels_[key];
  q.push_back(id);
  touch_channel(key);
  // FIFO: the message is deliverable only when it heads its channel;
  // reordering: every pending message is deliverable. A blocked link
  // defers either way.
  if ((!options_.fifo || q.size() == 1) && !blocked_.count(key)) {
    idx_add(msg.dst, id, {msg.sent_at + msg.latency, msg.control});
  }
  messages_.emplace(id, warm_or_make(std::move(msg)));
}

std::optional<MsgId> SimNetwork::submit(Message msg) {
  ++stats_.submitted;
  stats_.bytes_submitted += msg.payload.size();

  // Control-plane traffic bypasses the loss policy: the fault-response
  // protocol must be reliable for FixD itself to function.
  const bool lossy_eligible = !msg.control;

  if (lossy_eligible && options_.drop_prob > 0.0 &&
      rng_.next_bool(options_.drop_prob)) {
    ++stats_.dropped_policy;
    touch();  // stats and RNG advanced even though nothing was enqueued
    return std::nullopt;
  }

  msg.id = next_id_++;
  msg.latency = draw_latency();
  MsgId id = msg.id;

  bool dup = lossy_eligible && options_.dup_prob > 0.0 &&
             rng_.next_bool(options_.dup_prob);
  if (dup) {
    Message copy = msg;
    copy.id = next_id_++;
    copy.latency = draw_latency();
    ++stats_.duplicated;
    enqueue(std::move(copy));
  }
  enqueue(std::move(msg));
  return id;
}

VirtualTime SimNetwork::draw_latency() {
  if (options_.latency_max <= options_.latency_min)
    return options_.latency_min;
  return options_.latency_min +
         rng_.next_below(options_.latency_max - options_.latency_min + 1);
}

bool SimNetwork::is_deliverable(MsgId id) const {
  auto it = messages_.find(id);
  if (it == messages_.end()) return false;
  if (link_blocked(it->second->src, it->second->dst)) return false;
  if (!options_.fifo) return true;
  const auto& q = channels_.at({it->second->src, it->second->dst});
  return !q.empty() && q.front() == id;
}

std::vector<MsgId> SimNetwork::deliverable() const {
  std::vector<MsgId> out;
  if (options_.fifo) {
    for (const auto& [key, q] : channels_) {
      if (!q.empty() && !blocked_.count(key)) out.push_back(q.front());
    }
    std::sort(out.begin(), out.end());
  } else {
    out.reserve(messages_.size());
    for (const auto& [id, m] : messages_) {
      if (!link_blocked(m->src, m->dst)) out.push_back(id);
    }
  }
  return out;
}

std::vector<const Message*> SimNetwork::pending() const {
  std::vector<const Message*> out;
  out.reserve(messages_.size());
  for (const auto& [id, m] : messages_) out.push_back(m.get());
  return out;
}

const Message* SimNetwork::peek(MsgId id) const {
  auto it = messages_.find(id);
  return it == messages_.end() ? nullptr : it->second.get();
}

Message SimNetwork::take(MsgId id) {
  FIXD_CHECK_MSG(is_deliverable(id),
                 "take: message not deliverable: " + std::to_string(id));
  auto it = messages_.find(id);
  std::shared_ptr<const Message> sp = std::move(it->second);
  messages_.erase(it);
  ChannelKey key{sp->src, sp->dst};
  auto& q = channels_[key];
  auto qit = std::find(q.begin(), q.end(), id);
  FIXD_CHECK(qit != q.end());
  q.erase(qit);
  touch_channel(key);
  idx_remove(sp->dst, id);
  if (options_.fifo) idx_add_head(q);  // the next message becomes the head
  content_acc_ -= acc_term(sp->content_digest());
  inflight_sub(*sp);
  ++stats_.delivered;
  stats_.bytes_delivered += sp->payload.size();
  if (sp.use_count() == 1 && !sp->cross_thread()) {
    // Sole owner (no live snapshot shares the buffer, and the buffer never
    // crossed a thread boundary): move the payload out. The object was
    // created non-const (make_shared<Message>), so shedding const on the
    // uniquely-owned instance is well-defined.
    return std::move(const_cast<Message&>(*sp));
  }
  return *sp;  // shared with a snapshot or another thread: deliver a copy
}

bool SimNetwork::drop(MsgId id, bool forced) {
  auto it = messages_.find(id);
  if (it == messages_.end()) return false;
  ChannelKey key{it->second->src, it->second->dst};
  content_acc_ -= acc_term(it->second->content_digest());
  inflight_sub(*it->second);
  const ProcessId dst = it->second->dst;
  auto& q = channels_[key];
  const bool was_head = !q.empty() && q.front() == id;
  auto qit = std::find(q.begin(), q.end(), id);
  if (qit != q.end()) q.erase(qit);
  messages_.erase(it);
  touch_channel(key);
  if (!options_.fifo || was_head) {
    idx_remove(dst, id);
    if (options_.fifo) idx_add_head(q);
  }
  if (forced) {
    ++stats_.dropped_forced;
  } else {
    ++stats_.dropped_policy;
  }
  return true;
}

std::optional<MsgId> SimNetwork::duplicate(MsgId id) {
  auto it = messages_.find(id);
  if (it == messages_.end()) return std::nullopt;
  Message copy = *it->second;
  copy.id = next_id_++;
  ++stats_.duplicated;
  MsgId nid = copy.id;
  enqueue(std::move(copy));
  return nid;
}

std::size_t SimNetwork::drop_tainted(SpecId spec) {
  std::vector<MsgId> victims;
  for (const auto& [id, m] : messages_) {
    if (std::find(m->spec_taints.begin(), m->spec_taints.end(), spec) !=
        m->spec_taints.end()) {
      victims.push_back(id);
    }
  }
  for (MsgId id : victims) drop(id, /*forced=*/true);
  return victims.size();
}

std::size_t SimNetwork::scrub_taint(SpecId spec) {
  std::size_t n = 0;
  for (auto& [id, sp] : messages_) {
    auto it = std::find(sp->spec_taints.begin(), sp->spec_taints.end(), spec);
    if (it == sp->spec_taints.end()) continue;
    // Copy-on-write: snapshots sharing the old buffer keep the taint.
    content_acc_ -= acc_term(sp->content_digest());
    Message m = *sp;
    m.spec_taints.erase(m.spec_taints.begin() +
                        (it - sp->spec_taints.begin()));
    m.warm_digest_memo();
    content_acc_ += acc_term(m.content_digest());
    touch_channel({m.src, m.dst});
    sp = std::make_shared<Message>(std::move(m));
    ++n;
  }
  return n;
}

bool SimNetwork::mutate(MsgId id, const std::function<void(Message&)>& fn) {
  auto it = messages_.find(id);
  if (it == messages_.end()) return false;
  Message m = *it->second;  // copy-on-write; snapshots keep the original
  fn(m);
  FIXD_CHECK_MSG(m.id == id && m.src == it->second->src &&
                     m.dst == it->second->dst,
                 "mutate must not change routing identity (drop + submit)");
  content_acc_ -= acc_term(it->second->content_digest());
  m.warm_digest_memo();  // re-pin after the mutation
  content_acc_ += acc_term(m.content_digest());
  if (it->second->control != m.control) {
    inflight_sub(*it->second);
    inflight_add(m);
  }
  touch_channel({m.src, m.dst});
  // Refresh the deliverable entry: the mutation may have changed the
  // ready time (sent_at/latency) or the control flag.
  if (deliv_valid_) {
    auto bit = deliv_index_.find(m.dst);
    if (bit != deliv_index_.end() && bit->second.contains(id)) {
      idx_remove(m.dst, id);
      idx_add(m.dst, id, {m.sent_at + m.latency, m.control});
    }
  }
  it->second = std::make_shared<Message>(std::move(m));
  return true;
}

bool SimNetwork::delay(MsgId id, VirtualTime extra) {
  // mutate() already does everything delaying needs: copy-on-write of the
  // immutable pending object, digest upkeep, and the deliverable-entry
  // refresh that republishes the new ready time to the enabled index.
  return mutate(id, [extra](Message& m) { m.latency += extra; });
}

bool SimNetwork::cut_link(ProcessId src, ProcessId dst) {
  if (!blocked_.insert({src, dst}).second) return false;
  // Retract the link's deliverable entries: FIFO exposes only the channel
  // head, reordering exposes the whole queue. The messages themselves stay
  // pending (deferred, not lost) and keep their in-flight counts.
  auto cit = channels_.find({src, dst});
  if (cit != channels_.end() && !cit->second.empty()) {
    if (options_.fifo) {
      idx_remove(dst, cit->second.front());
    } else {
      for (MsgId id : cit->second) idx_remove(dst, id);
    }
  }
  touch();
  return true;
}

bool SimNetwork::heal_link(ProcessId src, ProcessId dst) {
  if (blocked_.erase({src, dst}) == 0) return false;
  auto cit = channels_.find({src, dst});
  if (cit != channels_.end() && !cit->second.empty()) {
    if (options_.fifo) {
      idx_add_head(cit->second);
    } else if (deliv_valid_) {
      for (MsgId id : cit->second) {
        const Message& m = *messages_.at(id);
        idx_add(dst, id, {m.sent_at + m.latency, m.control});
      }
    }
  }
  touch();
  return true;
}

std::size_t SimNetwork::heal_all_links() {
  std::vector<LinkKey> keys(blocked_.begin(), blocked_.end());
  for (const LinkKey& k : keys) heal_link(k.first, k.second);
  return keys.size();
}

std::uint64_t SimNetwork::links_digest() const {
  if (blocked_.empty()) return 0;
  Hasher h;
  h.update_u64(blocked_.size());
  for (const auto& [s, d] : blocked_) {
    h.update_u64(s);
    h.update_u64(d);
  }
  return h.digest();
}

MsgId SimNetwork::reinject(Message msg) {
  msg.id = next_id_++;
  MsgId id = msg.id;
  ++stats_.submitted;
  stats_.bytes_submitted += msg.payload.size();
  enqueue(std::move(msg));
  return id;
}

void SimNetwork::save(BinaryWriter& w) const {
  w.write_bool(options_.fifo);
  w.write_f64(options_.drop_prob);
  w.write_f64(options_.dup_prob);
  w.write_u64(options_.latency_min);
  w.write_u64(options_.latency_max);
  w.write_u64(options_.seed);
  rng_.save(w);
  w.write_u64(next_id_);
  w.write_varint(messages_.size());
  for (const auto& [id, m] : messages_) m->save(w);
  w.write_varint(channels_.size());
  for (const auto& [key, q] : channels_) {
    w.write_u32(key.first);
    w.write_u32(key.second);
    w.write_varint(q.size());
    for (MsgId id : q) w.write_u64(id);
  }
  // Stats are part of the observable run and must restore with the state
  // so that rolled-back executions do not double-count.
  w.write_u64(stats_.submitted);
  w.write_u64(stats_.delivered);
  w.write_u64(stats_.dropped_policy);
  w.write_u64(stats_.dropped_forced);
  w.write_u64(stats_.duplicated);
  w.write_u64(stats_.bytes_submitted);
  w.write_u64(stats_.bytes_delivered);
  w.write_varint(blocked_.size());
  for (const auto& [s, d] : blocked_) {
    w.write_u32(s);
    w.write_u32(d);
  }
}

void SimNetwork::load(BinaryReader& r) {
  options_.fifo = r.read_bool();
  options_.drop_prob = r.read_f64();
  options_.dup_prob = r.read_f64();
  options_.latency_min = r.read_u64();
  options_.latency_max = r.read_u64();
  options_.seed = r.read_u64();
  rng_.load(r);
  next_id_ = r.read_u64();
  messages_.clear();
  content_acc_ = 0;
  inflight_.clear();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  for (std::size_t i = 0; i < n; ++i) {
    Message m;
    m.load(r);
    m.warm_digest_memo();  // restore the pending-message memo invariant
    content_acc_ += acc_term(m.content_digest());
    inflight_add(m);
    MsgId id = m.id;
    messages_.emplace(id, std::make_shared<Message>(std::move(m)));
  }
  channels_.clear();
  std::size_t nc = static_cast<std::size_t>(r.read_varint());
  for (std::size_t i = 0; i < nc; ++i) {
    ProcessId a = r.read_u32();
    ProcessId b = r.read_u32();
    std::size_t qn = static_cast<std::size_t>(r.read_varint());
    auto& q = channels_[{a, b}];
    for (std::size_t j = 0; j < qn; ++j) q.push_back(r.read_u64());
  }
  stats_.submitted = r.read_u64();
  stats_.delivered = r.read_u64();
  stats_.dropped_policy = r.read_u64();
  stats_.dropped_forced = r.read_u64();
  stats_.duplicated = r.read_u64();
  stats_.bytes_submitted = r.read_u64();
  stats_.bytes_delivered = r.read_u64();
  blocked_.clear();
  std::size_t nb = static_cast<std::size_t>(r.read_varint());
  for (std::size_t i = 0; i < nb; ++i) {
    ProcessId s = r.read_u32();
    ProcessId d = r.read_u32();
    blocked_.insert(blocked_.end(), {s, d});
  }
  channel_digest_cache_.clear();
  touch();
  idx_invalidate();
}

std::shared_ptr<const NetSnapshot> SimNetwork::snapshot() const {
  if (!snap_cache_) {
    auto s = std::make_shared<NetSnapshot>();
    s->options = options_;
    s->rng = rng_;
    s->next_id = next_id_;
    // The live maps iterate in key order, so the flat vectors come out
    // sorted in one pass (restore relies on that for its end-hint
    // rebuild).
    s->messages.reserve(messages_.size());
    for (const auto& [id, m] : messages_) s->messages.emplace_back(id, m);
    s->channels.reserve(channels_.size());
    for (const auto& [key, q] : channels_) {
      s->channels.emplace_back(
          key, std::vector<MsgId>(q.begin(), q.end()));
    }
    s->stats = stats_;
    s->blocked_links.assign(blocked_.begin(), blocked_.end());
    s->channel_digests.reserve(channel_digest_cache_.size());
    for (const auto& [key, d] : channel_digest_cache_) {
      s->channel_digests.emplace_back(key, d);
    }
    s->digest_memo = digest_memo_;
    s->content_acc = content_acc_;
    snap_cache_ = std::move(s);
  }
  return snap_cache_;
}

void SimNetwork::restore(const std::shared_ptr<const NetSnapshot>& snap) {
  FIXD_CHECK_MSG(snap != nullptr, "restore: null network snapshot");
  if (snap_cache_ == snap) return;  // current state already matches
  options_ = snap->options;
  rng_ = snap->rng;
  next_id_ = snap->next_id;
  // The snapshot's vectors are key-sorted, so inserting with an end hint
  // rebuilds each map in O(entries) — the same cost the old wholesale
  // map-to-map copy paid.
  messages_.clear();
  inflight_.clear();
  for (const auto& [id, m] : snap->messages) {
    inflight_add(*m);
    messages_.emplace_hint(messages_.end(), id, m);
  }
  channels_.clear();
  for (const auto& [key, q] : snap->channels) {
    channels_.emplace_hint(channels_.end(), key,
                           std::deque<MsgId>(q.begin(), q.end()));
  }
  stats_ = snap->stats;
  blocked_.clear();
  for (const auto& k : snap->blocked_links)
    blocked_.insert(blocked_.end(), k);
  // Adopt whatever was warm at capture (cold stays cold — conservative).
  channel_digest_cache_.clear();
  for (const auto& [key, d] : snap->channel_digests) {
    channel_digest_cache_.emplace_hint(channel_digest_cache_.end(), key, d);
  }
  digest_memo_ = snap->digest_memo;
  content_acc_ = snap->content_acc;
  // The deliverable index is rebuilt lazily at the next enabled-set
  // query, not copied per restore: the explorer restores once per
  // transition but asks "what can fire next?" once per expansion.
  idx_invalidate();
  snap_cache_ = snap;
}

std::uint64_t SimNetwork::channel_digest(const std::deque<MsgId>& q,
                                         bool cached) const {
  Hasher h;
  h.update_u64(q.size());
  for (MsgId id : q) {
    const auto& m = messages_.at(id);
    h.update_u64(cached ? m->state_digest() : m->state_digest_uncached());
  }
  return h.digest();
}

// Digest formula: options, RNG state, id counter, then one digest per
// nonempty channel in key order (covering every pending message's full
// wire state and its queue position), then stats. Empty channel entries
// are skipped so the digest is a function of logical state alone.
std::uint64_t SimNetwork::digest_impl(bool cached) const {
  Hasher h;
  h.update_u64(options_.fifo ? 1 : 0);
  h.update_u64(std::bit_cast<std::uint64_t>(options_.drop_prob));
  h.update_u64(std::bit_cast<std::uint64_t>(options_.dup_prob));
  h.update_u64(options_.latency_min);
  h.update_u64(options_.latency_max);
  h.update_u64(options_.seed);
  h.update_u64(blocked_.size());
  for (const auto& [bs, bd] : blocked_) {
    h.update_u64(bs);
    h.update_u64(bd);
  }
  BinaryWriter rw;
  rng_.save(rw);
  h.update(rw.bytes());
  h.update_u64(next_id_);
  for (const auto& [key, q] : channels_) {
    if (q.empty()) continue;
    h.update_u64(key.first);
    h.update_u64(key.second);
    std::uint64_t cd;
    if (cached) {
      auto it = channel_digest_cache_.find(key);
      if (it == channel_digest_cache_.end()) {
        cd = channel_digest(q, /*cached=*/true);
        channel_digest_cache_.emplace(key, cd);
      } else {
        cd = it->second;
      }
    } else {
      cd = channel_digest(q, /*cached=*/false);
    }
    h.update_u64(cd);
  }
  h.update_u64(stats_.submitted);
  h.update_u64(stats_.delivered);
  h.update_u64(stats_.dropped_policy);
  h.update_u64(stats_.dropped_forced);
  h.update_u64(stats_.duplicated);
  h.update_u64(stats_.bytes_submitted);
  h.update_u64(stats_.bytes_delivered);
  return h.digest();
}

std::uint64_t SimNetwork::digest() const {
  if (!digest_memo_) digest_memo_ = digest_impl(/*cached=*/true);
  return *digest_memo_;
}

std::uint64_t SimNetwork::digest_uncached() const {
  return digest_impl(/*cached=*/false);
}

std::uint64_t SimNetwork::content_digest_acc_uncached() const {
  std::uint64_t acc = 0;
  for (const auto& [id, m] : messages_) {
    acc += acc_term(m->content_digest_uncached());
  }
  return acc;
}

}  // namespace fixd::net
