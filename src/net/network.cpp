#include "net/network.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace fixd::net {

SimNetwork::SimNetwork(NetworkOptions options)
    : options_(options), rng_(options.seed) {}

void SimNetwork::enqueue(Message msg) {
  MsgId id = msg.id;
  // Every pending message carries a warm digest memo, so state hashing
  // over the in-flight multiset never re-hashes payloads.
  msg.warm_digest_memo();
  channels_[{msg.src, msg.dst}].push_back(id);
  messages_.emplace(id, std::move(msg));
}

std::optional<MsgId> SimNetwork::submit(Message msg) {
  ++stats_.submitted;
  stats_.bytes_submitted += msg.payload.size();

  // Control-plane traffic bypasses the loss policy: the fault-response
  // protocol must be reliable for FixD itself to function.
  const bool lossy_eligible = !msg.control;

  if (lossy_eligible && options_.drop_prob > 0.0 &&
      rng_.next_bool(options_.drop_prob)) {
    ++stats_.dropped_policy;
    return std::nullopt;
  }

  msg.id = next_id_++;
  msg.latency = draw_latency();
  MsgId id = msg.id;

  bool dup = lossy_eligible && options_.dup_prob > 0.0 &&
             rng_.next_bool(options_.dup_prob);
  if (dup) {
    Message copy = msg;
    copy.id = next_id_++;
    copy.latency = draw_latency();
    ++stats_.duplicated;
    enqueue(std::move(copy));
  }
  enqueue(std::move(msg));
  return id;
}

VirtualTime SimNetwork::draw_latency() {
  if (options_.latency_max <= options_.latency_min)
    return options_.latency_min;
  return options_.latency_min +
         rng_.next_below(options_.latency_max - options_.latency_min + 1);
}

bool SimNetwork::is_deliverable(MsgId id) const {
  auto it = messages_.find(id);
  if (it == messages_.end()) return false;
  if (!options_.fifo) return true;
  const auto& q = channels_.at({it->second.src, it->second.dst});
  return !q.empty() && q.front() == id;
}

std::vector<MsgId> SimNetwork::deliverable() const {
  std::vector<MsgId> out;
  if (options_.fifo) {
    for (const auto& [key, q] : channels_) {
      if (!q.empty()) out.push_back(q.front());
    }
    std::sort(out.begin(), out.end());
  } else {
    out.reserve(messages_.size());
    for (const auto& [id, m] : messages_) out.push_back(id);
  }
  return out;
}

std::vector<const Message*> SimNetwork::pending() const {
  std::vector<const Message*> out;
  out.reserve(messages_.size());
  for (const auto& [id, m] : messages_) out.push_back(&m);
  return out;
}

const Message* SimNetwork::peek(MsgId id) const {
  auto it = messages_.find(id);
  return it == messages_.end() ? nullptr : &it->second;
}

Message SimNetwork::take(MsgId id) {
  FIXD_CHECK_MSG(is_deliverable(id),
                 "take: message not deliverable: " + std::to_string(id));
  auto it = messages_.find(id);
  Message msg = std::move(it->second);
  messages_.erase(it);
  auto& q = channels_[{msg.src, msg.dst}];
  auto qit = std::find(q.begin(), q.end(), id);
  FIXD_CHECK(qit != q.end());
  q.erase(qit);
  ++stats_.delivered;
  stats_.bytes_delivered += msg.payload.size();
  return msg;
}

bool SimNetwork::drop(MsgId id, bool forced) {
  auto it = messages_.find(id);
  if (it == messages_.end()) return false;
  auto& q = channels_[{it->second.src, it->second.dst}];
  auto qit = std::find(q.begin(), q.end(), id);
  if (qit != q.end()) q.erase(qit);
  messages_.erase(it);
  if (forced) {
    ++stats_.dropped_forced;
  } else {
    ++stats_.dropped_policy;
  }
  return true;
}

std::optional<MsgId> SimNetwork::duplicate(MsgId id) {
  auto it = messages_.find(id);
  if (it == messages_.end()) return std::nullopt;
  Message copy = it->second;
  copy.id = next_id_++;
  ++stats_.duplicated;
  MsgId nid = copy.id;
  enqueue(std::move(copy));
  return nid;
}

std::size_t SimNetwork::drop_tainted(SpecId spec) {
  std::vector<MsgId> victims;
  for (const auto& [id, m] : messages_) {
    if (std::find(m.spec_taints.begin(), m.spec_taints.end(), spec) !=
        m.spec_taints.end()) {
      victims.push_back(id);
    }
  }
  for (MsgId id : victims) drop(id, /*forced=*/true);
  return victims.size();
}

std::size_t SimNetwork::scrub_taint(SpecId spec) {
  std::size_t n = 0;
  for (auto& [id, m] : messages_) {
    auto it = std::find(m.spec_taints.begin(), m.spec_taints.end(), spec);
    if (it != m.spec_taints.end()) {
      m.spec_taints.erase(it);
      ++n;
    }
  }
  return n;
}

bool SimNetwork::mutate(MsgId id, const std::function<void(Message&)>& fn) {
  auto it = messages_.find(id);
  if (it == messages_.end()) return false;
  fn(it->second);
  it->second.warm_digest_memo();  // re-pin after the in-place mutation
  return true;
}

MsgId SimNetwork::reinject(Message msg) {
  msg.id = next_id_++;
  MsgId id = msg.id;
  ++stats_.submitted;
  stats_.bytes_submitted += msg.payload.size();
  enqueue(std::move(msg));
  return id;
}

void SimNetwork::save(BinaryWriter& w) const {
  w.write_bool(options_.fifo);
  w.write_f64(options_.drop_prob);
  w.write_f64(options_.dup_prob);
  w.write_u64(options_.latency_min);
  w.write_u64(options_.latency_max);
  w.write_u64(options_.seed);
  rng_.save(w);
  w.write_u64(next_id_);
  w.write_varint(messages_.size());
  for (const auto& [id, m] : messages_) m.save(w);
  w.write_varint(channels_.size());
  for (const auto& [key, q] : channels_) {
    w.write_u32(key.first);
    w.write_u32(key.second);
    w.write_varint(q.size());
    for (MsgId id : q) w.write_u64(id);
  }
  // Stats are part of the observable run and must restore with the state
  // so that rolled-back executions do not double-count.
  w.write_u64(stats_.submitted);
  w.write_u64(stats_.delivered);
  w.write_u64(stats_.dropped_policy);
  w.write_u64(stats_.dropped_forced);
  w.write_u64(stats_.duplicated);
  w.write_u64(stats_.bytes_submitted);
  w.write_u64(stats_.bytes_delivered);
}

void SimNetwork::load(BinaryReader& r) {
  options_.fifo = r.read_bool();
  options_.drop_prob = r.read_f64();
  options_.dup_prob = r.read_f64();
  options_.latency_min = r.read_u64();
  options_.latency_max = r.read_u64();
  options_.seed = r.read_u64();
  rng_.load(r);
  next_id_ = r.read_u64();
  messages_.clear();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  for (std::size_t i = 0; i < n; ++i) {
    Message m;
    m.load(r);
    m.warm_digest_memo();  // restore the pending-message memo invariant
    MsgId id = m.id;
    messages_.emplace(id, std::move(m));
  }
  channels_.clear();
  std::size_t nc = static_cast<std::size_t>(r.read_varint());
  for (std::size_t i = 0; i < nc; ++i) {
    ProcessId a = r.read_u32();
    ProcessId b = r.read_u32();
    std::size_t qn = static_cast<std::size_t>(r.read_varint());
    auto& q = channels_[{a, b}];
    for (std::size_t j = 0; j < qn; ++j) q.push_back(r.read_u64());
  }
  stats_.submitted = r.read_u64();
  stats_.delivered = r.read_u64();
  stats_.dropped_policy = r.read_u64();
  stats_.dropped_forced = r.read_u64();
  stats_.duplicated = r.read_u64();
  stats_.bytes_submitted = r.read_u64();
  stats_.bytes_delivered = r.read_u64();
}

std::uint64_t SimNetwork::digest() const {
  BinaryWriter w;
  save(w);
  return hash_bytes(w.bytes());
}

}  // namespace fixd::net
