#include "net/message.hpp"

#include "common/hash.hpp"

namespace fixd::net {

void Message::save(BinaryWriter& w) const {
  w.write_u64(id);
  w.write_u32(src);
  w.write_u32(dst);
  w.write_u32(tag);
  w.write_bytes(payload);
  w.write_u64(sent_at);
  w.write_u64(latency);
  w.write_u64(lamport);
  vclock.save(w);
  w.write_pod_vector(spec_taints);
  w.write_bool(control);
}

void Message::load(BinaryReader& r) {
  id = r.read_u64();
  src = r.read_u32();
  dst = r.read_u32();
  tag = r.read_u32();
  payload = r.read_bytes();
  sent_at = r.read_u64();
  latency = r.read_u64();
  lamport = r.read_u64();
  vclock.load(r);
  spec_taints = r.read_pod_vector<SpecId>();
  control = r.read_bool();
  invalidate_digest_memo();
}

std::uint64_t Message::content_digest_uncached() const {
  Hasher h;
  h.update_u64(src);
  h.update_u64(dst);
  h.update_u64(tag);
  h.update(payload);
  return h.digest();
}

std::uint64_t Message::state_digest_uncached() const {
  BinaryWriter w;
  save(w);
  return hash_bytes(w.bytes());
}

std::string Message::brief() const {
  return "msg#" + std::to_string(id) + " " + std::to_string(src) + "->" +
         std::to_string(dst) + " tag=" + std::to_string(tag) + " (" +
         std::to_string(payload.size()) + "B)" +
         (control ? " [ctl]" : "") +
         (spec_taints.empty() ? "" : " [spec]");
}

}  // namespace fixd::net
