// Messages exchanged by processes in the simulated distributed world.
//
// A message carries, besides its payload:
//  - a Lamport stamp and the sender's vector clock (piggybacked, as real
//    causal-logging systems do) — the Scroll and the recovery-line solver
//    depend on them;
//  - the set of speculation ids the sender was executing under when it sent
//    the message ("speculative data", §4.2): receivers are absorbed into
//    those speculations;
//  - a control flag distinguishing FixD's own fault-response protocol
//    messages (Fig. 4) from application traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/serialize.hpp"
#include "common/sync.hpp"
#include "common/types.hpp"

namespace fixd::net {

/// Application-defined message kind; apps use small enums cast to u32.
using Tag = std::uint32_t;

/// Memoized content digest with copy-cold / move-warm semantics: a copied
/// message starts with a cold memo (the copy's public fields may be
/// mutated independently, as fault-injection copy-corrupt paths do), while
/// a move transfers warmth (SimNetwork warms at enqueue, then moves the
/// message into its pending map). Mirrors mem::Page's cache-dropping copy.
struct DigestMemo {
  DigestMemo() = default;
  DigestMemo(const DigestMemo&) {}
  DigestMemo& operator=(const DigestMemo&) {
    valid = false;
    return *this;
  }
  DigestMemo(DigestMemo&& o) noexcept : value(o.value), valid(o.valid) {
    o.valid = false;
  }
  DigestMemo& operator=(DigestMemo&& o) noexcept {
    value = o.value;
    valid = o.valid;
    o.valid = false;
    return *this;
  }

  mutable std::uint64_t value = 0;
  mutable bool valid = false;
};

struct Message {
  MsgId id = 0;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  Tag tag = 0;
  std::vector<std::byte> payload;

  /// Virtual time at which the message was submitted.
  VirtualTime sent_at = 0;
  /// Delivery latency assigned by the network (seeded jitter makes timed
  /// runs genuinely reorder across channels).
  VirtualTime latency = 1;
  /// Sender's Lamport clock after the send event.
  LamportTime lamport = 0;
  /// Sender's vector clock after the send event.
  VectorClock vclock;
  /// Speculations this message is tainted by (sorted, unique).
  std::vector<SpecId> spec_taints;
  /// True for FixD control-plane traffic (fault notify / checkpoint reply).
  bool control = false;

  /// Payload helpers -----------------------------------------------------
  template <typename T>
  static std::vector<std::byte> encode(const T& body) {
    BinaryWriter w;
    body.save(w);
    return w.take();
  }

  template <typename T>
  T decode() const {
    BinaryReader r(payload);
    T body;
    body.load(r);
    return body;
  }

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

  /// Approximate retained memory (object plus owned buffers); used by
  /// snapshot/frontier accounting.
  std::uint64_t retained_bytes() const {
    return sizeof(Message) + payload.size() +
           vclock.size() * sizeof(std::uint64_t) +
           spec_taints.size() * sizeof(SpecId);
  }

  /// Stable content digest (excludes id so retransmissions compare equal).
  ///
  /// Returns the memo when one is warm, else computes from scratch — it
  /// never self-memoizes, and copies start cold (see DigestMemo), so
  /// mutating a free-standing or copied message (public fields) is always
  /// reflected. SimNetwork warms the memo on enqueue and re-warms it in
  /// mutate(), which is what makes the model checker's in-flight multiset
  /// hash a cheap sorted merge: every *pending* message carries a valid
  /// memo, and pending messages are only mutable through
  /// SimNetwork::mutate.
  std::uint64_t content_digest() const {
    return memo_.valid ? memo_.value : content_digest_uncached();
  }

  /// From-scratch recompute bypassing the memo (verification/bench hook).
  std::uint64_t content_digest_uncached() const;

  /// Full-state digest: hash of the complete wire encoding (id, routing,
  /// payload, timing, clocks, taints, control flag). Feeds SimNetwork's
  /// incremental per-channel digests, which need the *entire* message
  /// state, not the id-stable content subset. Same memo discipline as
  /// content_digest: warm for every pending message, copy-cold.
  std::uint64_t state_digest() const {
    return state_memo_.valid ? state_memo_.value : state_digest_uncached();
  }

  /// From-scratch recompute bypassing the memo (verification/bench hook).
  std::uint64_t state_digest_uncached() const;

  /// Precompute and pin both digests (SimNetwork, at enqueue).
  void warm_digest_memo() const {
    memo_.value = content_digest_uncached();
    memo_.valid = true;
    state_memo_.value = state_digest_uncached();
    state_memo_.valid = true;
  }

  /// Drop both memos (deserialization, before an in-place mutation).
  void invalidate_digest_memo() {
    memo_.valid = false;
    state_memo_.valid = false;
  }

  /// Published across threads (a NetSnapshot containing this message
  /// crossed a thread boundary — see common/sync.hpp): SimNetwork::take
  /// then delivers a copy instead of moving the payload out, because the
  /// use_count()==1 fast path cannot order a remote reader's last read
  /// before the local move. Copy-cold like the digest memos.
  void mark_cross_thread() const { xt_.mark(); }
  bool cross_thread() const { return xt_.marked(); }

  std::string brief() const;

  // Memos; public so Message stays an aggregate. Not serialized.
  DigestMemo memo_;
  DigestMemo state_memo_;
  SharedMark xt_;
};

}  // namespace fixd::net
