// Messages exchanged by processes in the simulated distributed world.
//
// A message carries, besides its payload:
//  - a Lamport stamp and the sender's vector clock (piggybacked, as real
//    causal-logging systems do) — the Scroll and the recovery-line solver
//    depend on them;
//  - the set of speculation ids the sender was executing under when it sent
//    the message ("speculative data", §4.2): receivers are absorbed into
//    those speculations;
//  - a control flag distinguishing FixD's own fault-response protocol
//    messages (Fig. 4) from application traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace fixd::net {

/// Application-defined message kind; apps use small enums cast to u32.
using Tag = std::uint32_t;

struct Message {
  MsgId id = 0;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  Tag tag = 0;
  std::vector<std::byte> payload;

  /// Virtual time at which the message was submitted.
  VirtualTime sent_at = 0;
  /// Delivery latency assigned by the network (seeded jitter makes timed
  /// runs genuinely reorder across channels).
  VirtualTime latency = 1;
  /// Sender's Lamport clock after the send event.
  LamportTime lamport = 0;
  /// Sender's vector clock after the send event.
  VectorClock vclock;
  /// Speculations this message is tainted by (sorted, unique).
  std::vector<SpecId> spec_taints;
  /// True for FixD control-plane traffic (fault notify / checkpoint reply).
  bool control = false;

  /// Payload helpers -----------------------------------------------------
  template <typename T>
  static std::vector<std::byte> encode(const T& body) {
    BinaryWriter w;
    body.save(w);
    return w.take();
  }

  template <typename T>
  T decode() const {
    BinaryReader r(payload);
    T body;
    body.load(r);
    return body;
  }

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

  /// Stable content digest (excludes id so retransmissions compare equal).
  std::uint64_t content_digest() const;

  std::string brief() const;
};

}  // namespace fixd::net
