// The TimeoutTuner: self-configuring timeout healing.
//
// Closes the detect -> report -> recover loop for *configuration* bugs:
// when the Investigator's trails implicate a timer (a timeout fired where
// it should not have, or a delivery outlived it), there is often no buggy
// line of code to swap — the timeout value itself undercuts the
// environment. The tuner searches candidate timeout values and synthesizes
// the fix as an ordinary dynamic update (heal/patch.hpp) whose
// StateTransform rewrites the stored configuration, so the Healer's
// machinery (quiescence checks, atomic swap, invariant revalidation)
// applies unchanged.
//
// Search: an exponential ladder doubling from the current value until a
// candidate validates clean, then bisection down to the smallest clean
// value (bounded-delay environments make "clean" monotone in the timeout;
// the bisection assumes that, but every *accepted* value was itself
// validated directly, so a non-monotone site can at worst make the result
// non-minimal, never unsound).
//
// Validation: each candidate is probed on a fresh clone of the base world
// — the patch is applied to the clone, then the Investigator re-explores
// in TIMED mode (SysExploreOptions::abstract_time = false) with the delay
// environment model. Timed mode is essential: abstract time ignores ready
// times and deadlines, so every timeout value behaves identically there;
// only timed exploration can distinguish a timeout that dominates the
// modelled worst-case delay (model_delay_horizon) from one that undercuts
// it. A candidate is accepted only at zero violations.
//
// Determinism: probes are pure functions of (base snapshot, candidate,
// options) — cloning drops hooks, the explorer is deterministic, and the
// ladder/bisection arithmetic has no randomness — so two same-seed runs
// produce byte-identical trajectories (TunerResult::trajectory_digest).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "heal/healer.hpp"
#include "heal/patch.hpp"
#include "mc/sysmodel.hpp"
#include "rt/world.hpp"

namespace fixd::heal {

/// Where a tunable timeout lives: which process type owns it, its current
/// value, and how to build the candidate patch. Applications export these
/// next to their fix patches (e.g. apps::kv_lag_timeout_site).
struct TimeoutSite {
  /// Shows up in reports.
  std::string name;
  /// Process::type_name() owning the timeout.
  std::string target_type;
  /// Version the candidate patches upgrade from.
  std::uint32_t from_version = 1;
  /// Application timer kind backed by this timeout (report metadata; the
  /// tuner itself searches by value, not by kind).
  std::uint32_t timer_kind = 0;
  /// The currently configured value (the ladder's starting rung).
  VirtualTime current = 0;
  /// Builds the dynamic update that sets the timeout to `candidate`.
  std::function<UpdatePatch(VirtualTime candidate)> make_patch;
};

struct TunerOptions {
  /// Give up when the ladder would exceed this.
  VirtualTime max_timeout = 1ull << 14;
  /// Total probe budget (ladder + bisection).
  std::size_t max_probes = 24;
  /// Bisect down to the smallest validating value after the ladder finds
  /// one (off: accept the first ladder hit).
  bool minimize = true;
  /// Exploration options for candidate validation. abstract_time is
  /// forced to false (see file comment); enable model_message_delay (and
  /// friends) here to validate against the adversarial environment.
  mc::SysExploreOptions validate;
  /// Fallback invariant installer when validate.install_invariants is
  /// empty (clones carry no invariants).
  std::function<void(rt::World&)> install_invariants;
};

/// One validated candidate.
struct TunerProbe {
  VirtualTime candidate = 0;
  bool passed = false;          ///< zero violations in timed re-exploration
  std::size_t violations = 0;
  std::uint64_t states = 0;     ///< explored states (probe cost)
};

struct TunerResult {
  bool ok = false;
  /// The accepted (validated-clean) timeout value.
  VirtualTime healed_value = 0;
  /// Every probe in search order — the tuner's full trajectory.
  std::vector<TunerProbe> trajectory;
  /// The synthesized dynamic update for healed_value (valid iff ok).
  UpdatePatch patch;
  std::string error;  ///< set iff !ok
  /// Total states explored across all probes (convergence cost).
  std::uint64_t states_explored() const;
  /// Order-sensitive digest of the trajectory; equal digests mean the two
  /// searches took byte-identical paths (the determinism contract).
  std::uint64_t trajectory_digest() const;
  std::string render() const;
};

class TimeoutTuner {
 public:
  /// `base` is the state to heal from (typically the world the Time
  /// Machine just rolled back). It is cloned per probe, never modified.
  TimeoutTuner(rt::World& base, TimeoutSite site, TunerOptions opts = {});

  TunerResult tune();

 private:
  TunerProbe probe(VirtualTime candidate, std::string& error);

  rt::World& base_;
  TimeoutSite site_;
  TunerOptions opts_;
};

}  // namespace fixd::heal
