#include "heal/timeout_tuner.hpp"

#include "common/hash.hpp"

namespace fixd::heal {

std::uint64_t TunerResult::states_explored() const {
  std::uint64_t total = 0;
  for (const TunerProbe& p : trajectory) total += p.states;
  return total;
}

std::uint64_t TunerResult::trajectory_digest() const {
  Hasher h;
  for (const TunerProbe& p : trajectory) {
    h.update_u64(p.candidate);
    h.update_u64(p.passed ? 1 : 0);
    h.update_u64(p.violations);
    h.update_u64(p.states);
  }
  h.update_u64(ok ? 1 : 0);
  h.update_u64(healed_value);
  return h.digest();
}

std::string TunerResult::render() const {
  std::string s = ok ? "tuned timeout -> " + std::to_string(healed_value)
                     : "tuning failed: " + error;
  s += " (" + std::to_string(trajectory.size()) + " probes:";
  for (const TunerProbe& p : trajectory) {
    s += " " + std::to_string(p.candidate) + (p.passed ? "+" : "-");
  }
  s += ")";
  return s;
}

TimeoutTuner::TimeoutTuner(rt::World& base, TimeoutSite site,
                           TunerOptions opts)
    : base_(base), site_(std::move(site)), opts_(std::move(opts)) {
  FIXD_CHECK_MSG(static_cast<bool>(site_.make_patch),
                 "TimeoutTuner: site has no make_patch");
}

TunerProbe TimeoutTuner::probe(VirtualTime candidate, std::string& error) {
  TunerProbe pr;
  pr.candidate = candidate;

  // Fresh clone per probe: hooks/invariants are dropped, so the candidate
  // patch is evaluated on exactly the rolled-back state and nothing else.
  std::unique_ptr<rt::World> w = base_.clone();

  HealOptions hopts;
  // The candidate changes configuration only — old-state/new-state
  // equivalence holds with traffic in flight, so the usual quiescence
  // precondition is waived for the probe. Invariants are not installed on
  // the clone, so there is nothing to revalidate at swap time either (the
  // timed re-exploration below is the real validation).
  hopts.require_quiescent_inbound = false;
  hopts.revalidate_invariants = false;
  Healer healer(*w, hopts);
  HealReport hr = healer.apply_all(site_.make_patch(candidate));
  if (!hr.ok) {
    error = "candidate " + std::to_string(candidate) +
            " failed to apply: " + hr.error;
    return pr;
  }

  mc::SysExploreOptions vopts = opts_.validate;
  vopts.abstract_time = false;  // timed: the value must gate enabledness
  if (!vopts.install_invariants) {
    vopts.install_invariants = opts_.install_invariants;
  }
  mc::SystemExplorer explorer(*w, vopts);
  mc::SysExploreResult res = explorer.explore();
  pr.violations = res.violations.size();
  pr.states = res.stats.states;
  pr.passed = res.violations.empty();
  return pr;
}

TunerResult TimeoutTuner::tune() {
  TunerResult res;
  std::string error;

  // Rung 0: the current value. If it already validates clean the bug was
  // not (or not only) this timeout — report that rather than "healing"
  // with a no-op.
  VirtualTime lo = site_.current > 0 ? site_.current : 1;
  TunerProbe base = probe(lo, error);
  res.trajectory.push_back(base);
  if (!error.empty()) {
    res.error = error;
    return res;
  }
  if (base.passed) {
    res.error = "current value " + std::to_string(lo) +
                " already validates clean; nothing to tune";
    return res;
  }

  // Exponential ladder: double until a candidate validates clean.
  VirtualTime hi = lo;
  bool found = false;
  while (res.trajectory.size() < opts_.max_probes) {
    if (hi > opts_.max_timeout / 2) break;
    hi *= 2;
    TunerProbe p = probe(hi, error);
    res.trajectory.push_back(p);
    if (!error.empty()) {
      res.error = error;
      return res;
    }
    if (p.passed) {
      found = true;
      break;
    }
    lo = hi;  // highest known-failing rung
  }
  if (!found) {
    res.error = "no timeout <= " + std::to_string(opts_.max_timeout) +
                " validates clean (" + std::to_string(res.trajectory.size()) +
                " probes)";
    return res;
  }

  // Bisect (lo fails, hi passes) down to the smallest clean value. Every
  // move of `hi` is to a directly-validated candidate.
  if (opts_.minimize) {
    while (hi - lo > 1 && res.trajectory.size() < opts_.max_probes) {
      VirtualTime mid = lo + (hi - lo) / 2;
      TunerProbe p = probe(mid, error);
      res.trajectory.push_back(p);
      if (!error.empty()) {
        res.error = error;
        return res;
      }
      if (p.passed) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }

  res.ok = true;
  res.healed_value = hi;
  res.patch = site_.make_patch(hi);
  return res;
}

}  // namespace fixd::heal
