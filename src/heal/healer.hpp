// The Healer (§3.4, Fig. 5): applying a fix to a running system.
//
// Given a rolled-back (or live) world and an UpdatePatch, the Healer:
//   1. checks the update point is safe — by default the target must not be
//      inside any speculation and must have no in-flight inbound traffic
//      (quiescence, the condition under which old-state ≡ new-state
//      equivalence can be established mechanically);
//   2. extracts the old state, runs the state transformer, loads it into a
//      fresh instance of the new behaviour, carries the COW heap across;
//   3. swaps the process objects in place (same pid; clocks/timers survive);
//   4. re-validates invariants; on any failure the swap is rolled back and
//      the report says why (the caller then falls back to restart).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ckpt/speculation.hpp"
#include "heal/patch.hpp"
#include "rt/world.hpp"

namespace fixd::heal {

struct HealOptions {
  /// Refuse the update while messages addressed to the target are in flight.
  bool require_quiescent_inbound = true;
  /// Refuse while the target is a member of an active speculation.
  bool require_no_speculation = true;
  /// Re-run all invariants after the swap; roll the swap back if any fires.
  bool revalidate_invariants = true;
};

struct HealReport {
  bool ok = false;
  std::vector<ProcessId> updated;
  std::string error;  ///< first failure (empty when ok)

  std::string to_string() const {
    if (ok) {
      std::string s = "healed processes:";
      for (ProcessId p : updated) s += " p" + std::to_string(p);
      return s;
    }
    return "heal failed: " + error;
  }
};

class Healer {
 public:
  explicit Healer(rt::World& world, HealOptions opts = {})
      : world_(world), opts_(opts) {}

  /// Why `pid` cannot be updated right now; nullopt = safe.
  std::optional<std::string> check_update_point(
      ProcessId pid, const ckpt::SpeculationManager* specs) const;

  /// Update one process.
  HealReport apply(ProcessId pid, const UpdatePatch& patch,
                   const ckpt::SpeculationManager* specs = nullptr);

  /// Update every process the patch applies to. Fails atomically: either
  /// all applicable processes update or none do.
  HealReport apply_all(const UpdatePatch& patch,
                       const ckpt::SpeculationManager* specs = nullptr);

 private:
  /// Build the updated replacement for the live process; null on failure
  /// (with `error` set).
  std::unique_ptr<rt::Process> build_replacement(ProcessId pid,
                                                 const UpdatePatch& patch,
                                                 std::string& error);

  rt::World& world_;
  HealOptions opts_;
};

}  // namespace fixd::heal
