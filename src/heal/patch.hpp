// Update patches: the unit of dynamic software update (§3.4, §4.4).
//
// A patch targets a process type+version and provides:
//   - a factory for the replacement behaviour (the fixed code),
//   - a state transformer mapping the old serialized root state to the new
//     representation (Ginseng's state transformation contract), and
//   - an optional post-update validator.
//
// The identity transform covers the common case where only code changed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/serialize.hpp"
#include "rt/process.hpp"

namespace fixd::heal {

/// Maps old root-state bytes to new root-state bytes. Returns false when the
/// old state has no equivalent in the new version (update must be refused).
using StateTransform = std::function<bool(BinaryReader&, BinaryWriter&)>;

/// Copies the state verbatim (layout-compatible update).
inline bool identity_transform(BinaryReader& in, BinaryWriter& out) {
  auto rest = in.read_raw(in.remaining());
  out.write_raw(rest);
  return true;
}

struct UpdatePatch {
  /// Process::type_name() this patch applies to.
  std::string target_type;
  /// Versions: applicable iff the live process reports `from_version`.
  std::uint32_t from_version = 1;
  std::uint32_t to_version = 2;
  /// Constructs a fresh instance of the new behaviour (state unloaded).
  std::function<std::unique_ptr<rt::Process>()> factory;
  /// State mapping; identity by default.
  StateTransform transform = identity_transform;
  /// Post-update check on the new process (nullopt = OK).
  std::function<std::optional<std::string>(const rt::Process&)> validate;
  /// Whether the COW heap content carries over to the new process.
  bool carry_heap = true;
  /// Human-readable change description (shows up in FixD reports).
  std::string description;

  bool applies_to(const rt::Process& p) const {
    return p.type_name() == target_type && p.version() == from_version;
  }
};

/// Patches indexed by (type, from_version).
class PatchRegistry {
 public:
  void add(UpdatePatch patch) { patches_.push_back(std::move(patch)); }

  /// First patch applicable to `p`, or nullptr.
  const UpdatePatch* find(const rt::Process& p) const {
    for (const auto& patch : patches_) {
      if (patch.applies_to(p)) return &patch;
    }
    return nullptr;
  }

  std::size_t size() const { return patches_.size(); }
  const std::vector<UpdatePatch>& all() const { return patches_; }

 private:
  std::vector<UpdatePatch> patches_;
};

}  // namespace fixd::heal
