#include "heal/healer.hpp"

namespace fixd::heal {

std::optional<std::string> Healer::check_update_point(
    ProcessId pid, const ckpt::SpeculationManager* specs) const {
  if (opts_.require_quiescent_inbound) {
    // O(1): the network maintains per-destination in-flight counters for
    // non-control traffic (SimNetwork::inflight_to), so the common all-clear
    // answer never rescans pending(). The scan only runs on refusal, to
    // name a concrete offending message in the error.
    if (world_.network().inflight_to(pid) != 0) {
      for (const net::Message* m : world_.network().pending()) {
        if (m->dst == pid && !m->control) {
          return "inbound message in flight (msg#" + std::to_string(m->id) +
                 " from p" + std::to_string(m->src) + ")";
        }
      }
      FIXD_CHECK_MSG(false, "inflight counter disagrees with pending set");
    }
  }
  if (opts_.require_no_speculation && specs != nullptr) {
    auto taints = specs->taints_of(pid);
    if (!taints.empty()) {
      return "process is inside speculation s" + std::to_string(taints[0]);
    }
  }
  return std::nullopt;
}

std::unique_ptr<rt::Process> Healer::build_replacement(
    ProcessId pid, const UpdatePatch& patch, std::string& error) {
  rt::Process& old = world_.process(pid);
  if (!patch.applies_to(old)) {
    error = "patch targets " + patch.target_type + " v" +
            std::to_string(patch.from_version) + ", process p" +
            std::to_string(pid) + " is " + old.type_name() + " v" +
            std::to_string(old.version());
    return nullptr;
  }

  BinaryWriter old_root;
  old.save_root(old_root);

  BinaryWriter new_root;
  BinaryReader in(old_root.bytes());
  if (!patch.transform(in, new_root)) {
    error = "state transform rejected the old state";
    return nullptr;
  }

  std::unique_ptr<rt::Process> fresh = patch.factory();
  if (!fresh) {
    error = "patch factory returned null";
    return nullptr;
  }
  try {
    BinaryReader nr(new_root.bytes());
    fresh->load_root(nr);
  } catch (const FixdError& e) {
    error = std::string("new version rejected transformed state: ") +
            e.what();
    return nullptr;
  }

  if (patch.carry_heap && old.cow_heap() != nullptr &&
      fresh->cow_heap() != nullptr) {
    BinaryWriter hw;
    old.cow_heap()->save(hw);
    BinaryReader hr(hw.bytes());
    fresh->cow_heap()->load(hr);
  }

  if (patch.validate) {
    if (auto err = patch.validate(*fresh)) {
      error = "post-update validation failed: " + *err;
      return nullptr;
    }
  }
  return fresh;
}

HealReport Healer::apply(ProcessId pid, const UpdatePatch& patch,
                         const ckpt::SpeculationManager* specs) {
  HealReport rep;
  if (auto unsafe = check_update_point(pid, specs)) {
    rep.error = "unsafe update point for p" + std::to_string(pid) + ": " +
                *unsafe;
    return rep;
  }
  std::string error;
  auto fresh = build_replacement(pid, patch, error);
  if (!fresh) {
    rep.error = std::move(error);
    return rep;
  }

  auto old = world_.swap_process(pid, std::move(fresh));

  if (opts_.revalidate_invariants) {
    std::size_t before = world_.violations().size();
    world_.recheck_invariants();
    if (world_.violations().size() > before) {
      rep.error = "post-update invariant violation: " +
                  world_.violations().back().to_string();
      // The probe's violations are not real run faults; drop them.
      auto kept = world_.violations();
      kept.resize(before);
      world_.clear_violations();
      for (auto& v : kept) world_.record_violation(std::move(v));
      world_.swap_process(pid, std::move(old));
      return rep;
    }
  }

  rep.ok = true;
  rep.updated.push_back(pid);
  return rep;
}

HealReport Healer::apply_all(const UpdatePatch& patch,
                             const ckpt::SpeculationManager* specs) {
  HealReport rep;
  std::vector<ProcessId> targets;
  for (ProcessId pid = 0; pid < world_.size(); ++pid) {
    if (patch.applies_to(world_.process(pid))) targets.push_back(pid);
  }
  if (targets.empty()) {
    rep.error = "no process matches patch for " + patch.target_type + " v" +
                std::to_string(patch.from_version);
    return rep;
  }

  // Stage 1: safety checks and replacement construction for all targets —
  // nothing is swapped until everything is known-good (atomicity).
  std::vector<std::unique_ptr<rt::Process>> replacements;
  for (ProcessId pid : targets) {
    if (auto unsafe = check_update_point(pid, specs)) {
      rep.error = "unsafe update point for p" + std::to_string(pid) + ": " +
                  *unsafe;
      return rep;
    }
    std::string error;
    auto fresh = build_replacement(pid, patch, error);
    if (!fresh) {
      rep.error = "p" + std::to_string(pid) + ": " + error;
      return rep;
    }
    replacements.push_back(std::move(fresh));
  }

  // Stage 2: swap all.
  std::vector<std::unique_ptr<rt::Process>> olds;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    olds.push_back(
        world_.swap_process(targets[i], std::move(replacements[i])));
  }

  if (opts_.revalidate_invariants) {
    std::size_t before = world_.violations().size();
    world_.recheck_invariants();
    if (world_.violations().size() > before) {
      rep.error = "post-update invariant violation: " +
                  world_.violations().back().to_string();
      auto kept = world_.violations();
      kept.resize(before);
      world_.clear_violations();
      for (auto& v : kept) world_.record_violation(std::move(v));
      for (std::size_t i = 0; i < targets.size(); ++i) {
        world_.swap_process(targets[i], std::move(olds[i]));
      }
      return rep;
    }
  }

  rep.ok = true;
  rep.updated = targets;
  return rep;
}

}  // namespace fixd::heal
