#include "fault/injector.hpp"

#include <utility>

namespace fixd::fault {

std::size_t FaultInjector::add(FaultSpec spec) {
  const std::uint64_t seed = spec.seed;
  Armed a{std::move(spec), Rng(seed), false};
  faults_.push_back(std::move(a));
  return faults_.size() - 1;
}

void FaultInjector::reset() {
  injected_.clear();
  for (Armed& a : faults_) {
    a.rng = Rng(a.spec.seed);
    a.fired = false;
    a.stall_until = 0;
  }
}

bool FaultInjector::should_fire(Armed& a, const rt::World& w,
                                ProcessId event_target) {
  if (a.fired && a.spec.once) return false;
  if (w.step_count() < a.spec.at_step) return false;
  if (a.spec.target != kNoProcess && a.spec.target != event_target)
    return false;
  if (a.spec.probability < 1.0 && !a.rng.next_bool(a.spec.probability))
    return false;
  return true;
}

bool FaultInjector::before_event(rt::World& w, const rt::EventDesc& ev) {
  bool allow = true;
  for (Armed& a : faults_) {
    switch (a.spec.kind) {
      case FaultKind::kCrashStop: {
        // Crash fires on the target's own next event.
        if (ev.pid == (a.spec.target == kNoProcess ? ev.pid : a.spec.target) &&
            should_fire(a, w, ev.pid)) {
          w.set_crashed(ev.pid, true);
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // the event is consumed by the crash
        }
        break;
      }
      case FaultKind::kMessageLoss: {
        if (ev.kind == rt::EventKind::kDeliver &&
            should_fire(a, w, ev.pid)) {
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // suppress => forced drop in the dispatch pipeline
        }
        break;
      }
      case FaultKind::kMessageCorrupt: {
        if (ev.kind == rt::EventKind::kDeliver && a.spec.corrupt_message &&
            should_fire(a, w, ev.pid)) {
          if (w.network().mutate(ev.msg, a.spec.corrupt_message)) {
            a.fired = true;
            injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                                 a.spec.note});
          }
        }
        break;
      }
      case FaultKind::kMessageDuplicate: {
        if (ev.kind == rt::EventKind::kDeliver &&
            should_fire(a, w, ev.pid)) {
          if (w.network().duplicate(ev.msg)) {
            a.fired = true;
            injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                                 a.spec.note});
          }
        }
        break;
      }
      case FaultKind::kStateCorruption: {
        if (a.spec.corrupt_state && should_fire(a, w, ev.pid)) {
          a.spec.corrupt_state(w.process(ev.pid));
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        break;
      }
      case FaultKind::kCustom: {
        if (a.spec.custom && should_fire(a, w, ev.pid)) {
          a.spec.custom(w);
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        break;
      }
      case FaultKind::kMessageDelay: {
        if (ev.kind != rt::EventKind::kDeliver) break;
        const net::Message* m = std::as_const(w).network().peek(ev.msg);
        if (m == nullptr || m->control) break;  // control plane stays timely
        if (!should_fire(a, w, ev.pid)) break;
        const VirtualTime lo = a.spec.delay_min;
        const VirtualTime hi = a.spec.delay_max;
        const VirtualTime extra =
            hi > lo ? lo + a.rng.next_below(hi - lo + 1) : lo;
        // Re-anchor at now: the message may have been ready for a while,
        // and a delay that lands in the past would be dropped as a loss
        // by the dispatch suppression path instead of deferred.
        const VirtualTime cur = m->sent_at + m->latency;
        const VirtualTime target_at = w.now() + extra;
        if (target_at > cur && w.network().delay(ev.msg, target_at - cur)) {
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // deferred, not dropped: stays pending
        }
        break;
      }
      case FaultKind::kStalledPeer: {
        if (a.spec.target == kNoProcess || ev.pid != a.spec.target) break;
        if (a.stall_until != 0 && w.now() >= a.stall_until) {
          a.stall_until = 0;  // window over; may re-fire if !once
        }
        if (a.stall_until == 0) {
          if (!should_fire(a, w, ev.pid)) break;
          a.fired = true;
          a.stall_until = w.now() + a.spec.stall_for;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        // Inside the window: defer real work past the window's end.
        // Control traffic (liveness probes, FixD's own protocol) is still
        // handled — the peer looks alive, it just does nothing useful.
        if (ev.kind == rt::EventKind::kDeliver) {
          const net::Message* m = std::as_const(w).network().peek(ev.msg);
          if (m != nullptr && !m->control) {
            const VirtualTime cur = m->sent_at + m->latency;
            if (a.stall_until > cur &&
                w.network().delay(ev.msg, a.stall_until - cur)) {
              allow = false;
            }
          }
        } else if (ev.kind == rt::EventKind::kTimer) {
          if (w.retime_timer(ev.pid, ev.timer, a.stall_until)) {
            allow = false;
          }
        }
        break;
      }
      case FaultKind::kTimerMutation: {
        if (a.fired && a.spec.once) break;
        if (w.step_count() < a.spec.at_step) break;
        for (ProcessId p = 0; p < w.size(); ++p) {
          if (a.spec.target != kNoProcess && a.spec.target != p) continue;
          const rt::Timer* hit = nullptr;
          for (const rt::Timer& t : w.timers_of(p).view()) {
            if (t.kind == a.spec.timer_kind) {
              hit = &t;
              break;
            }
          }
          if (hit == nullptr) continue;
          if (!should_fire(a, w, p)) break;
          const rt::Timer t = *hit;  // view invalidated by the mutation
          bool ok = false;
          switch (a.spec.timer_op) {
            case TimerOp::kStretch:
              ok = w.retime_timer(p, t.id, t.deadline + a.spec.timer_delta);
              break;
            case TimerOp::kShrink:
              ok = w.retime_timer(
                  p, t.id,
                  t.deadline >= a.spec.timer_delta
                      ? t.deadline - a.spec.timer_delta
                      : 0);
              break;
            case TimerOp::kCancel:
              ok = w.cancel_timer(p, t.id);
              break;
          }
          if (ok) {
            a.fired = true;
            injected_.push_back({a.spec.kind, p, w.step_count(),
                                 a.spec.note});
          }
          break;
        }
        break;
      }
    }
  }
  return allow;
}

}  // namespace fixd::fault
