#include "fault/injector.hpp"

namespace fixd::fault {

std::size_t FaultInjector::add(FaultSpec spec) {
  const std::uint64_t seed = spec.seed;
  Armed a{std::move(spec), Rng(seed), false};
  faults_.push_back(std::move(a));
  return faults_.size() - 1;
}

bool FaultInjector::should_fire(Armed& a, const rt::World& w,
                                ProcessId event_target) {
  if (a.fired && a.spec.once) return false;
  if (w.step_count() < a.spec.at_step) return false;
  if (a.spec.target != kNoProcess && a.spec.target != event_target)
    return false;
  if (a.spec.probability < 1.0 && !a.rng.next_bool(a.spec.probability))
    return false;
  return true;
}

bool FaultInjector::before_event(rt::World& w, const rt::EventDesc& ev) {
  bool allow = true;
  for (Armed& a : faults_) {
    switch (a.spec.kind) {
      case FaultKind::kCrashStop: {
        // Crash fires on the target's own next event.
        if (ev.pid == (a.spec.target == kNoProcess ? ev.pid : a.spec.target) &&
            should_fire(a, w, ev.pid)) {
          w.set_crashed(ev.pid, true);
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // the event is consumed by the crash
        }
        break;
      }
      case FaultKind::kMessageLoss: {
        if (ev.kind == rt::EventKind::kDeliver &&
            should_fire(a, w, ev.pid)) {
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // suppress => forced drop in the dispatch pipeline
        }
        break;
      }
      case FaultKind::kMessageCorrupt: {
        if (ev.kind == rt::EventKind::kDeliver && a.spec.corrupt_message &&
            should_fire(a, w, ev.pid)) {
          if (w.network().mutate(ev.msg, a.spec.corrupt_message)) {
            a.fired = true;
            injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                                 a.spec.note});
          }
        }
        break;
      }
      case FaultKind::kMessageDuplicate: {
        if (ev.kind == rt::EventKind::kDeliver &&
            should_fire(a, w, ev.pid)) {
          if (w.network().duplicate(ev.msg)) {
            a.fired = true;
            injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                                 a.spec.note});
          }
        }
        break;
      }
      case FaultKind::kStateCorruption: {
        if (a.spec.corrupt_state && should_fire(a, w, ev.pid)) {
          a.spec.corrupt_state(w.process(ev.pid));
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        break;
      }
      case FaultKind::kCustom: {
        if (a.spec.custom && should_fire(a, w, ev.pid)) {
          a.spec.custom(w);
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        break;
      }
    }
  }
  return allow;
}

}  // namespace fixd::fault
