#include "fault/injector.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"

namespace fixd::fault {

namespace {

bool in_group(const std::vector<ProcessId>& g, ProcessId p) {
  return std::find(g.begin(), g.end(), p) != g.end();
}

}  // namespace

std::size_t FaultInjector::add(FaultSpec spec) {
  const std::uint64_t seed = spec.seed;
  Armed a{std::move(spec), Rng(seed), false};
  faults_.push_back(std::move(a));
  return faults_.size() - 1;
}

void FaultInjector::reset() {
  injected_.clear();
  for (Armed& a : faults_) {
    a.rng = Rng(a.spec.seed);
    a.fired = false;
    a.stall_until = 0;
    // Partition / restart windows re-arm too. The world-side effects (link
    // mask, crashed flags) are NOT undone here: reset() precedes a replay
    // from a restored snapshot, and the snapshot carries both.
    a.partitioned = false;
    a.heal_at = 0;
    a.restart_at = 0;
    a.restart_pid = kNoProcess;
    a.init_ckpt.reset();
  }
}

bool FaultInjector::replay_pure() const {
  for (const Armed& a : faults_) {
    if (a.spec.kind == FaultKind::kCustom ||
        a.spec.kind == FaultKind::kStateCorruption) {
      return false;
    }
    if (a.spec.kind == FaultKind::kCrashRestart && a.spec.amnesiac) {
      return false;
    }
  }
  return true;
}

std::uint64_t FaultInjector::replay_state_digest() const {
  std::uint64_t h = 0x1fec7ull;  // injector domain tag
  for (const Armed& a : faults_) {
    h = hash_combine(h, a.rng.digest());
    h = hash_combine(h, (a.fired ? 1ull : 0ull) |
                            (a.partitioned ? 2ull : 0ull));
    h = hash_combine(h, a.stall_until);
    h = hash_combine(h, a.heal_at);
    h = hash_combine(h, a.restart_at);
    h = hash_combine(h, static_cast<std::uint64_t>(a.restart_pid));
  }
  return h;
}

bool FaultInjector::should_fire(Armed& a, const rt::World& w,
                                ProcessId event_target) {
  if (a.fired && a.spec.once) return false;
  if (w.step_count() < a.spec.at_step) return false;
  if (a.spec.target != kNoProcess && a.spec.target != event_target)
    return false;
  if (a.spec.probability < 1.0 && !a.rng.next_bool(a.spec.probability))
    return false;
  return true;
}

bool FaultInjector::before_event(rt::World& w, const rt::EventDesc& ev) {
  bool allow = true;
  for (Armed& a : faults_) {
    switch (a.spec.kind) {
      case FaultKind::kCrashStop: {
        // Crash fires on the target's own next event.
        if (ev.pid == (a.spec.target == kNoProcess ? ev.pid : a.spec.target) &&
            should_fire(a, w, ev.pid)) {
          w.set_crashed(ev.pid, true);
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // the event is consumed by the crash
        }
        break;
      }
      case FaultKind::kMessageLoss: {
        if (ev.kind == rt::EventKind::kDeliver &&
            should_fire(a, w, ev.pid)) {
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // suppress => forced drop in the dispatch pipeline
        }
        break;
      }
      case FaultKind::kMessageCorrupt: {
        if (ev.kind == rt::EventKind::kDeliver && a.spec.corrupt_message &&
            should_fire(a, w, ev.pid)) {
          if (w.network().mutate(ev.msg, a.spec.corrupt_message)) {
            a.fired = true;
            injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                                 a.spec.note});
          }
        }
        break;
      }
      case FaultKind::kMessageDuplicate: {
        if (ev.kind == rt::EventKind::kDeliver &&
            should_fire(a, w, ev.pid)) {
          if (w.network().duplicate(ev.msg)) {
            a.fired = true;
            injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                                 a.spec.note});
          }
        }
        break;
      }
      case FaultKind::kStateCorruption: {
        if (a.spec.corrupt_state && should_fire(a, w, ev.pid)) {
          a.spec.corrupt_state(w.process(ev.pid));
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        break;
      }
      case FaultKind::kCustom: {
        if (a.spec.custom && should_fire(a, w, ev.pid)) {
          a.spec.custom(w);
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        break;
      }
      case FaultKind::kMessageDelay: {
        if (ev.kind != rt::EventKind::kDeliver) break;
        const net::Message* m = std::as_const(w).network().peek(ev.msg);
        if (m == nullptr || m->control) break;  // control plane stays timely
        if (!should_fire(a, w, ev.pid)) break;
        const VirtualTime lo = a.spec.delay_min;
        const VirtualTime hi = a.spec.delay_max;
        const VirtualTime extra =
            hi > lo ? lo + a.rng.next_below(hi - lo + 1) : lo;
        // Re-anchor at now: the message may have been ready for a while,
        // and a delay that lands in the past would be dropped as a loss
        // by the dispatch suppression path instead of deferred.
        const VirtualTime cur = m->sent_at + m->latency;
        const VirtualTime target_at = w.now() + extra;
        if (target_at > cur && w.network().delay(ev.msg, target_at - cur)) {
          a.fired = true;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
          allow = false;  // deferred, not dropped: stays pending
        }
        break;
      }
      case FaultKind::kStalledPeer: {
        if (a.spec.target == kNoProcess || ev.pid != a.spec.target) break;
        if (a.stall_until != 0 && w.now() >= a.stall_until) {
          a.stall_until = 0;  // window over; may re-fire if !once
        }
        if (a.stall_until == 0) {
          if (!should_fire(a, w, ev.pid)) break;
          a.fired = true;
          a.stall_until = w.now() + a.spec.stall_for;
          injected_.push_back({a.spec.kind, ev.pid, w.step_count(),
                               a.spec.note});
        }
        // Inside the window: defer real work past the window's end.
        // Control traffic (liveness probes, FixD's own protocol) is still
        // handled — the peer looks alive, it just does nothing useful.
        if (ev.kind == rt::EventKind::kDeliver) {
          const net::Message* m = std::as_const(w).network().peek(ev.msg);
          if (m != nullptr && !m->control) {
            const VirtualTime cur = m->sent_at + m->latency;
            if (a.stall_until > cur &&
                w.network().delay(ev.msg, a.stall_until - cur)) {
              allow = false;
            }
          }
        } else if (ev.kind == rt::EventKind::kTimer) {
          if (w.retime_timer(ev.pid, ev.timer, a.stall_until)) {
            allow = false;
          }
        }
        break;
      }
      case FaultKind::kTimerMutation: {
        if (a.fired && a.spec.once) break;
        if (w.step_count() < a.spec.at_step) break;
        for (ProcessId p = 0; p < w.size(); ++p) {
          if (a.spec.target != kNoProcess && a.spec.target != p) continue;
          const rt::Timer* hit = nullptr;
          for (const rt::Timer& t : w.timers_of(p).view()) {
            if (t.kind == a.spec.timer_kind) {
              hit = &t;
              break;
            }
          }
          if (hit == nullptr) continue;
          if (!should_fire(a, w, p)) break;
          const rt::Timer t = *hit;  // view invalidated by the mutation
          bool ok = false;
          switch (a.spec.timer_op) {
            case TimerOp::kStretch:
              ok = w.retime_timer(p, t.id, t.deadline + a.spec.timer_delta);
              break;
            case TimerOp::kShrink:
              ok = w.retime_timer(
                  p, t.id,
                  t.deadline >= a.spec.timer_delta
                      ? t.deadline - a.spec.timer_delta
                      : 0);
              break;
            case TimerOp::kCancel:
              ok = w.cancel_timer(p, t.id);
              break;
          }
          if (ok) {
            a.fired = true;
            injected_.push_back({a.spec.kind, p, w.step_count(),
                                 a.spec.note});
          }
          break;
        }
        break;
      }
      case FaultKind::kPartition: {
        fire_partition(a, w, ev, allow);
        break;
      }
      case FaultKind::kCrashRestart: {
        fire_crash_restart(a, w, ev, allow);
        break;
      }
    }
  }
  return allow;
}

void FaultInjector::fire_partition(Armed& a, rt::World& w,
                                   const rt::EventDesc& ev, bool& allow) {
  // A due heal deadline re-opens the links before anything else this step.
  if (a.partitioned && a.heal_at != 0 && w.now() >= a.heal_at) {
    for (ProcessId s : a.spec.group_a) {
      for (ProcessId d : a.spec.group_b) {
        w.model_heal_link(s, d);
        if (a.spec.symmetric) w.model_heal_link(d, s);
      }
    }
    a.partitioned = false;
    a.heal_at = 0;
    injected_.push_back({a.spec.kind, kNoProcess, w.step_count(),
                         a.spec.note + " (heal)"});
  }
  if (a.partitioned) return;
  // Fire condition: the cut is global, so the per-process target filter is
  // bypassed by echoing the spec's own target.
  if (!should_fire(a, w, a.spec.target)) return;
  // The event already chosen this step may be a delivery that is about to
  // cross the cut. It must be deferred, not lost: the dispatch suppression
  // path force-drops *ready* deliveries, so push its ready time past `now`
  // first (while its link is still unblocked and indexed), then suppress.
  if (ev.kind == rt::EventKind::kDeliver) {
    const net::Message* m = std::as_const(w).network().peek(ev.msg);
    if (m != nullptr) {
      const bool fwd =
          in_group(a.spec.group_a, m->src) && in_group(a.spec.group_b, m->dst);
      const bool rev =
          a.spec.symmetric && in_group(a.spec.group_b, m->src) &&
          in_group(a.spec.group_a, m->dst);
      if (fwd || rev) {
        const VirtualTime cur = m->sent_at + m->latency;
        if (cur <= w.now()) {
          w.model_delay_message(ev.msg, w.now() + 1 - cur);
        }
        allow = false;
      }
    }
  }
  for (ProcessId s : a.spec.group_a) {
    for (ProcessId d : a.spec.group_b) {
      w.model_cut_link(s, d);
      if (a.spec.symmetric) w.model_cut_link(d, s);
    }
  }
  a.fired = true;
  a.partitioned = true;
  if (a.spec.heal_max > 0) {
    const VirtualTime lo = a.spec.heal_min;
    const VirtualTime hi = a.spec.heal_max;
    const VirtualTime span = hi > lo ? a.rng.next_below(hi - lo + 1) : 0;
    a.heal_at = w.now() + lo + span;
  }
  injected_.push_back({a.spec.kind, kNoProcess, w.step_count(), a.spec.note});
}

void FaultInjector::fire_crash_restart(Armed& a, rt::World& w,
                                       const rt::EventDesc& ev, bool& allow) {
  if (a.spec.target == kNoProcess || a.spec.target >= w.size()) return;
  const ProcessId pid = a.spec.target;
  // Armed-time capture: the state an amnesiac restart forgets back to is
  // whatever the process held the first time the injector saw the world.
  if (a.spec.amnesiac && !a.init_ckpt && !w.is_crashed(pid)) {
    a.init_ckpt = w.capture_process(pid, /*cow=*/true);
  }
  // A due restart deadline resurrects the process before anything else.
  if (a.restart_pid != kNoProcess && w.now() >= a.restart_at) {
    const ProcessId r = a.restart_pid;
    if (a.spec.amnesiac && a.init_ckpt) {
      w.restore_process(r, *a.init_ckpt);
      w.set_crashed(r, false);
    } else {
      w.model_restart_process(r);
    }
    a.restart_pid = kNoProcess;
    a.restart_at = 0;
    injected_.push_back({a.spec.kind, r, w.step_count(),
                         a.spec.note + " (restart)"});
  }
  if (a.restart_pid != kNoProcess) return;  // still down, waiting to restart
  // Crash fires on the target's own next event (kCrashStop semantics).
  if (ev.pid != pid || w.is_crashed(pid)) return;
  if (!should_fire(a, w, ev.pid)) return;
  w.set_crashed(pid, true);
  a.fired = true;
  const VirtualTime lo = a.spec.restart_min;
  const VirtualTime hi = a.spec.restart_max;
  const VirtualTime span = hi > lo ? a.rng.next_below(hi - lo + 1) : 0;
  a.restart_at = w.now() + lo + span;
  a.restart_pid = pid;
  injected_.push_back({a.spec.kind, pid, w.step_count(), a.spec.note});
  allow = false;  // the event is consumed by the crash
}

}  // namespace fixd::fault
