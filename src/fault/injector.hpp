// Deterministic fault injection.
//
// The evaluation needs faults on demand: crash a replica at step 40, drop
// the third vote message, corrupt a token payload, flip a byte of process
// state. The injector is a StepInterceptor whose specs have *deterministic*
// triggers (step thresholds / event counts / seeded coin flips), so an
// injected run is reproducible — which is what lets the Scroll replay runs
// that include failures.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "rt/hooks.hpp"
#include "rt/world.hpp"

namespace fixd::fault {

enum class FaultKind : std::uint8_t {
  kCrashStop = 0,     ///< target stops handling events permanently
  kMessageLoss,       ///< suppress a delivery to the target
  kMessageCorrupt,    ///< mutate a message about to be delivered to target
  kMessageDuplicate,  ///< duplicate a message about to be delivered
  kStateCorruption,   ///< mutate the target's state in place
  kCustom,            ///< arbitrary action on the world
};

inline const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashStop: return "crash-stop";
    case FaultKind::kMessageLoss: return "message-loss";
    case FaultKind::kMessageCorrupt: return "message-corrupt";
    case FaultKind::kMessageDuplicate: return "message-duplicate";
    case FaultKind::kStateCorruption: return "state-corruption";
    case FaultKind::kCustom: return "custom";
  }
  return "?";
}

struct FaultSpec {
  FaultKind kind = FaultKind::kCrashStop;
  /// Target process (kNoProcess = any; for message faults: the destination).
  ProcessId target = kNoProcess;
  /// Eligible from this world step on.
  std::uint64_t at_step = 0;
  /// Fire at most once (false: every eligible opportunity).
  bool once = true;
  /// Probability of firing at each eligible opportunity.
  double probability = 1.0;
  std::uint64_t seed = 0xfa1757ull;
  /// For kStateCorruption.
  std::function<void(rt::Process&)> corrupt_state;
  /// For kMessageCorrupt.
  std::function<void(net::Message&)> corrupt_message;
  /// For kCustom.
  std::function<void(rt::World&)> custom;
  /// Shows up in reports.
  std::string note;
};

struct InjectionEvent {
  FaultKind kind;
  ProcessId target;
  std::uint64_t step;
  std::string note;
};

class FaultInjector final : public rt::StepInterceptor {
 public:
  FaultInjector() = default;

  /// Register a fault; returns its index.
  std::size_t add(FaultSpec spec);

  void attach(rt::World& w) { w.add_interceptor(this); }
  void detach(rt::World& w) { w.remove_interceptor(this); }

  bool before_event(rt::World& w, const rt::EventDesc& ev) override;

  const std::vector<InjectionEvent>& injected() const { return injected_; }
  std::size_t fired_count() const { return injected_.size(); }
  void reset_history() { injected_.clear(); }

 private:
  struct Armed {
    FaultSpec spec;
    Rng rng;
    bool fired = false;
  };

  bool should_fire(Armed& a, const rt::World& w, ProcessId event_target);

  std::vector<Armed> faults_;
  std::vector<InjectionEvent> injected_;
};

}  // namespace fixd::fault
