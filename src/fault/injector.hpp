// Deterministic fault injection.
//
// The evaluation needs faults on demand: crash a replica at step 40, drop
// the third vote message, corrupt a token payload, flip a byte of process
// state. The injector is a StepInterceptor whose specs have *deterministic*
// triggers (step thresholds / event counts / seeded coin flips), so an
// injected run is reproducible — which is what lets the Scroll replay runs
// that include failures.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "rt/hooks.hpp"
#include "rt/world.hpp"

namespace fixd::fault {

enum class FaultKind : std::uint8_t {
  kCrashStop = 0,     ///< target stops handling events permanently
  kMessageLoss,       ///< suppress a delivery to the target
  kMessageCorrupt,    ///< mutate a message about to be delivered to target
  kMessageDuplicate,  ///< duplicate a message about to be delivered
  kStateCorruption,   ///< mutate the target's state in place
  kCustom,            ///< arbitrary action on the world
  kMessageDelay,      ///< defer a delivery by a seeded extra delay
  kStalledPeer,       ///< alive-but-unresponsive window: control traffic
                      ///< still acked, real work deferred past the window
  kTimerMutation,     ///< stretch/shrink/cancel an armed timer by kind
  kPartition,         ///< cut the links between two process groups; traffic
                      ///< is deferred (never lost) until an optional seeded
                      ///< heal time re-opens the links
  kCrashRestart,      ///< crash the target, then restart it after a seeded
                      ///< delay — durable (crash-time state) or amnesiac
                      ///< (state captured when the fault armed)
};

inline const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashStop: return "crash-stop";
    case FaultKind::kMessageLoss: return "message-loss";
    case FaultKind::kMessageCorrupt: return "message-corrupt";
    case FaultKind::kMessageDuplicate: return "message-duplicate";
    case FaultKind::kStateCorruption: return "state-corruption";
    case FaultKind::kCustom: return "custom";
    case FaultKind::kMessageDelay: return "message-delay";
    case FaultKind::kStalledPeer: return "stalled-peer";
    case FaultKind::kTimerMutation: return "timer-mutation";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kCrashRestart: return "crash-restart";
  }
  return "?";
}

/// What kTimerMutation does to the matched armed timer.
enum class TimerOp : std::uint8_t {
  kStretch = 0,  ///< deadline += timer_delta (timeout fires late)
  kShrink,       ///< deadline -= timer_delta, floored at 0 (fires early)
  kCancel,       ///< disarm (timeout never fires)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kCrashStop;
  /// Target process (kNoProcess = any; for message faults: the destination).
  ProcessId target = kNoProcess;
  /// Eligible from this world step on.
  std::uint64_t at_step = 0;
  /// Fire at most once (false: every eligible opportunity).
  bool once = true;
  /// Probability of firing at each eligible opportunity.
  double probability = 1.0;
  std::uint64_t seed = 0xfa1757ull;
  /// For kStateCorruption.
  std::function<void(rt::Process&)> corrupt_state;
  /// For kMessageCorrupt.
  std::function<void(net::Message&)> corrupt_message;
  /// For kCustom.
  std::function<void(rt::World&)> custom;
  /// For kMessageDelay: the extra delivery delay is drawn uniformly from
  /// [delay_min, delay_max] (virtual time) and applied relative to the
  /// current virtual time, so a delayed message is never retroactively
  /// ready. Delays gate delivery only in timed mode.
  VirtualTime delay_min = 1;
  VirtualTime delay_max = 1;
  /// For kStalledPeer: length of the unresponsive window (virtual time).
  /// Requires an explicit target process.
  VirtualTime stall_for = 50;
  /// For kTimerMutation: the application timer kind to match, the
  /// operation, and the stretch/shrink amount.
  std::uint32_t timer_kind = 0;
  TimerOp timer_op = TimerOp::kStretch;
  VirtualTime timer_delta = 10;
  /// For kPartition: the two process groups to separate. Every a→b link is
  /// cut; b→a too when `symmetric`. Traffic on cut links is deferred by the
  /// network's link mask, never lost. The heal time is drawn uniformly from
  /// [heal_min, heal_max] relative to the cut; 0/0 = never heals by itself
  /// (the recovery ladder or an explicit model_heal_link must re-open it).
  std::vector<ProcessId> group_a;
  std::vector<ProcessId> group_b;
  bool symmetric = true;
  VirtualTime heal_min = 0;
  VirtualTime heal_max = 0;
  /// For kCrashRestart: restart delay drawn uniformly from
  /// [restart_min, restart_max]; `amnesiac` restarts from the state
  /// captured when the injector first saw the world (losing everything
  /// since), the default durable restart resumes with crash-time state.
  VirtualTime restart_min = 10;
  VirtualTime restart_max = 10;
  bool amnesiac = false;
  /// Shows up in reports.
  std::string note;
};

struct InjectionEvent {
  FaultKind kind;
  ProcessId target;
  std::uint64_t step;
  std::string note;
};

class FaultInjector final : public rt::StepInterceptor {
 public:
  FaultInjector() = default;

  /// Register a fault; returns its index.
  std::size_t add(FaultSpec spec);

  void attach(rt::World& w) { w.add_interceptor(this); }
  void detach(rt::World& w) { w.remove_interceptor(this); }

  bool before_event(rt::World& w, const rt::EventDesc& ev) override;

  /// Replay-warm purity (satellite of docs/ROBUSTNESS.md's purity table):
  /// every built-in kind fires as a pure function of (world state, armed
  /// state, event) — the seeded RNGs are part of the armed state — so the
  /// injector can keep the key chain alive by folding that armed state
  /// into each event key. Specs carrying arbitrary callbacks (kCustom,
  /// kStateCorruption) disable the declaration — their actions cannot be
  /// attested from here — and so do amnesiac kCrashRestart specs, whose
  /// restart state depends on *when* the armed-time capture was taken,
  /// which no per-event digest can encode.
  bool replay_pure() const override;
  std::uint64_t replay_state_digest() const override;

  const std::vector<InjectionEvent>& injected() const { return injected_; }
  std::size_t fired_count() const { return injected_.size(); }

  /// Clear the injection log only. `fired` flags and RNG positions are
  /// kept, so a resumed run does NOT re-fire `once` faults — use reset()
  /// before replaying a rolled-back execution from scratch.
  void reset_history() { injected_.clear(); }

  /// Full re-arm: clear the log, reset `fired` flags and stall windows,
  /// and reseed every per-fault RNG from its spec seed. After reset() a
  /// replay of the same schedule reproduces the identical InjectionEvent
  /// sequence.
  void reset();

 private:
  struct Armed {
    FaultSpec spec;
    Rng rng;
    bool fired = false;
    /// kStalledPeer: end of the active stall window (0 = not stalling).
    VirtualTime stall_until = 0;
    /// kPartition: whether the cut is currently in force, and when it
    /// heals by itself (0 = no scheduled heal).
    bool partitioned = false;
    VirtualTime heal_at = 0;
    /// kCrashRestart: pending restart deadline and its target (kNoProcess
    /// = no restart pending), plus the armed-time capture for amnesiac
    /// restarts.
    VirtualTime restart_at = 0;
    ProcessId restart_pid = kNoProcess;
    std::optional<rt::ProcessCheckpoint> init_ckpt;
  };

  bool should_fire(Armed& a, const rt::World& w, ProcessId event_target);
  void fire_partition(Armed& a, rt::World& w, const rt::EventDesc& ev,
                      bool& allow);
  void fire_crash_restart(Armed& a, rt::World& w, const rt::EventDesc& ev,
                          bool& allow);

  std::vector<Armed> faults_;
  std::vector<InjectionEvent> injected_;
};

}  // namespace fixd::fault
