// The FixD controller: the glue the paper contributes (§3, Fig. 4).
//
// Wires the four components over a running world:
//
//   Scroll        records the run (attached as an observer)
//   Time Machine  checkpoints per policy; rolls back on fault
//   Investigator  explores from the restored state; returns trails
//   Healer        applies a registered patch, or restarts from scratch
//
// run_protected() drives the loop:
//
//   run ──fault──> rollback to a consistent line (failed process pins it)
//        └──────── collect checkpoints+models from the other processes
//                  (the Fig. 4 exchange: serialized ProcessCheckpoints —
//                  round-tripped through the wire format so the cost is
//                  real, and accounted as control-plane traffic)
//        └──────── investigate: SystemExplorer finds violation trails
//        └──────── heal: dynamic update at the rolled-back state; if no
//                  patch applies, restart from the initial state (§3.4's
//                  "simplest option")
//        └──────── resume; repeat up to max_recovery_attempts
//
// Escalation: on the r-th attempt for the same fault, the failed process is
// rolled back r extra checkpoints — "maybe the latest checkpoint is already
// inside the doomed region".
//
// recover() itself is an escalation ladder (RecoveryRung): timeout tuner →
// static patch registry → recovery-line rollback behind the partition onset
// → restart from scratch → graceful degradation. Each rung has a per-run
// budget; every attempt is recorded in FixdReport::ladder. The two
// partition-era rungs (line, degrade) default to budget 0 so the legacy
// tuner→patch→restart behaviour is unchanged unless opted into.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/timemachine.hpp"
#include "heal/healer.hpp"
#include "heal/patch.hpp"
#include "heal/timeout_tuner.hpp"
#include "mc/sysmodel.hpp"
#include "rt/world.hpp"
#include "scroll/scroll.hpp"
#include "svc/client.hpp"

namespace fixd::core {

/// Rungs of the recovery escalation ladder, in the order recover() tries
/// them. A rung runs only while its budget (FixdOptions) has uses left;
/// the recovery-line rung additionally deepens its rollback by one
/// checkpoint per prior use — a deterministic backoff, so the same fault
/// schedule walks the same ladder on every run.
enum class RecoveryRung : std::uint8_t {
  kTimeoutTuner,   ///< synthesize + validate a timeout-configuration patch
  kPatchRegistry,  ///< dynamic update from the static patch registry
  kRecoveryLine,   ///< roll back behind the partition onset, heal the cut
  kRestart,        ///< restart from the initial state (§3.4's simplest option)
  kDegrade,        ///< quarantine the implicated process; resume degraded
};

const char* to_string(RecoveryRung r);

/// One attempted rung, in attempt order, with what happened.
struct RungOutcome {
  RecoveryRung rung = RecoveryRung::kTimeoutTuner;
  bool ok = false;
  std::string detail;
};

struct FixdOptions {
  scroll::LoggingPreset logging = scroll::LoggingPreset::digests();
  ckpt::TimeMachineOptions tm = [] {
    ckpt::TimeMachineOptions o;
    o.cic = true;  // the paper's communication-induced policy (§4.2)
    return o;
  }();
  mc::SysExploreOptions investigate;
  bool attempt_heal = true;
  bool restart_on_heal_failure = true;
  std::size_t max_recovery_attempts = 3;
  /// Registers the application's invariants on investigation worlds.
  std::function<void(rt::World&)> install_invariants;

  /// Timeout healing (heal/timeout_tuner.hpp): when a bug report's trails
  /// implicate timer behaviour (a timer fired, was cancelled, or a
  /// delivery was delayed on the path to the violation) and a timeout
  /// site is registered, recover() runs the TimeoutTuner on the
  /// rolled-back state and applies the synthesized patch on success —
  /// tried before the static patch registry, since a validated
  /// configuration fix is cheaper than a code swap.
  bool attempt_timeout_tuning = false;
  /// The tunable the tuner searches (empty target_type = none registered).
  heal::TimeoutSite timeout_site;
  heal::TunerOptions tuner;

  /// Escalation-ladder budgets: how many times per run_protected() call
  /// each partition-era rung may fire. Both default to 0 (rung disabled)
  /// so existing pipelines keep the tuner→patch→restart behaviour.
  ///
  /// kRecoveryLine rolls every process to a consistent line behind the
  /// partition onset (the oldest send stranded on a blocked link), heals
  /// the cut, and resumes once the restored state passes an invariant
  /// recheck; a bounded re-exploration with the partition model switched
  /// on runs first as recorded evidence.
  std::size_t line_budget = 0;
  /// kDegrade parks the implicated process at its most recent checkpoint,
  /// marks it crashed, and resumes the rest of the system degraded.
  std::size_t degrade_budget = 0;

  /// Remote investigation: when non-empty, the investigate phase is
  /// delegated to a fixdd daemon at this endpoint ("unix:/path" or
  /// "tcp:HOST:PORT") — the controller submits `investigate_job` with an
  /// idempotent request-id derived from (job seed, fault #, attempt), so
  /// a retried recovery never double-runs the search. If the daemon is
  /// unreachable after the retry budget the controller falls back to an
  /// in-process run of the same job and records the degradation in
  /// BugReport::investigated_via and FixdReport::investigate_fallbacks.
  /// Empty (the default) keeps the legacy local SystemExplorer path.
  std::string investigate_endpoint;
  /// The scenario-addressed job the daemon runs on our behalf. The daemon
  /// explores a registered scenario family, not this controller's world_;
  /// the caller is responsible for pointing the spec at the family that
  /// models the protected application.
  svc::JobSpec investigate_job;
  svc::RetryPolicy investigate_retry;
};

/// Fig. 4 exchange accounting.
struct CollectStats {
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t checkpoints_collected = 0;
  std::uint64_t models_collected = 0;
};

struct PhaseBreakdown {
  double run_ms = 0;
  double rollback_ms = 0;
  double collect_ms = 0;
  double investigate_ms = 0;
  double heal_ms = 0;
  double total_ms() const {
    return run_ms + rollback_ms + collect_ms + investigate_ms + heal_ms;
  }
};

struct BugReport {
  rt::Violation violation;
  ckpt::RecoveryLine line;
  CollectStats collect;
  std::vector<mc::SysViolation> trails;
  mc::ExploreStats explore;
  /// How the investigation ran: "local" (legacy in-process explorer),
  /// "daemon" (delegated to fixdd), or "degraded: <reason>" (daemon
  /// configured but unreachable — ran the job in-process instead).
  std::string investigated_via = "local";
  std::string scroll_excerpt;

  std::string render() const;
};

struct FixdReport {
  bool completed = false;
  rt::RunResult final_run;
  std::size_t faults_detected = 0;
  std::size_t heals_applied = 0;
  /// Of heals_applied, how many were TimeoutTuner patches.
  std::size_t timeout_heals = 0;
  /// Every tuner run (successful or not), in recovery order.
  std::vector<heal::TunerResult> tunes;
  std::size_t restarts = 0;
  /// Every rung attempted across all recoveries, in attempt order.
  std::vector<RungOutcome> ladder;
  /// True when the run finished with at least one process quarantined.
  bool degraded = false;
  /// Processes parked by the kDegrade rung (crashed, state frozen at
  /// their last checkpoint).
  std::vector<ProcessId> quarantined;
  std::vector<BugReport> bugs;
  PhaseBreakdown phases;
  std::uint64_t scroll_records = 0;
  std::uint64_t scroll_bytes = 0;
  std::uint64_t work_retained_events = 0;  ///< events preserved by rollbacks
  /// Investigations served by a fixdd daemon vs. fallen back in-process
  /// (daemon configured but unreachable after the retry budget).
  std::size_t remote_investigations = 0;
  std::size_t investigate_fallbacks = 0;

  std::string render() const;
};

class FixdController {
 public:
  FixdController(rt::World& world, FixdOptions opts,
                 heal::PatchRegistry patches = {});
  ~FixdController();

  FixdController(const FixdController&) = delete;
  FixdController& operator=(const FixdController&) = delete;

  /// Run the application under FixD protection.
  FixdReport run_protected(std::uint64_t max_steps = 1ull << 40);

  const scroll::Scroll& the_scroll() const { return scroll_; }
  ckpt::TimeMachine& time_machine() { return tm_; }

 private:
  using Clock = std::chrono::steady_clock;
  static double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  }

  /// The Fig. 4 pipeline for the current violation. Returns the bug report;
  /// `attempt` deepens the rollback.
  BugReport handle_fault(std::size_t attempt, FixdReport& rep);

  /// Walk the escalation ladder; returns true if the run may resume.
  bool recover(const BugReport& bug, FixdReport& rep);

  /// Rung 3 (kRecoveryLine): roll behind the partition onset, heal the
  /// cut links, validate, recheck. Fills `detail` either way.
  bool recover_via_line(const BugReport& bug, std::string& detail);

  /// Rung 5 (kDegrade): quarantine the implicated process.
  bool recover_via_degrade(const BugReport& bug, FixdReport& rep,
                           std::string& detail);

  rt::World& world_;
  FixdOptions opts_;
  heal::PatchRegistry patches_;
  scroll::Scroll scroll_;
  ckpt::TimeMachine tm_;
  rt::WorldSnapshot initial_;
  std::size_t line_uses_ = 0;     ///< kRecoveryLine firings (backoff input)
  std::size_t degrade_uses_ = 0;  ///< kDegrade firings
};

}  // namespace fixd::core
