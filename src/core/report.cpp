#include <sstream>

#include "core/fixd.hpp"

namespace fixd::core {

const char* to_string(RecoveryRung r) {
  switch (r) {
    case RecoveryRung::kTimeoutTuner: return "timeout-tuner";
    case RecoveryRung::kPatchRegistry: return "patch-registry";
    case RecoveryRung::kRecoveryLine: return "recovery-line";
    case RecoveryRung::kRestart: return "restart";
    case RecoveryRung::kDegrade: return "degrade";
  }
  return "?";
}

std::string BugReport::render() const {
  std::ostringstream os;
  os << "=== FixD bug report ===\n";
  os << "violation: " << violation.to_string() << "\n";
  os << "recovery line: rollback depth " << line.line.total_rollback()
     << " checkpoints, " << line.line.total_events_undone()
     << " events undone, " << line.dropped << " in-flight messages dropped, "
     << line.reinjected << " re-injected\n";
  os << "collection: " << collect.control_messages << " control messages, "
     << collect.control_bytes << " bytes, " << collect.checkpoints_collected
     << " checkpoints, " << collect.models_collected << " models\n";
  os << "investigation (" << investigated_via << "): " << explore.states
     << " states, " << explore.transitions << " transitions, "
     << trails.size() << " violating trail(s)"
     << (explore.truncated ? " (budget hit)" : "") << "\n";
  for (std::size_t i = 0; i < trails.size(); ++i) {
    os << "--- trail " << (i + 1) << " (depth " << trails[i].depth
       << "): " << trails[i].violation.to_string() << "\n"
       << trails[i].trail.render();
  }
  if (!scroll_excerpt.empty()) {
    os << "--- scroll excerpt ---\n" << scroll_excerpt;
  }
  return os.str();
}

std::string FixdReport::render() const {
  std::ostringstream os;
  os << "=== FixD run report ===\n";
  os << "completed: " << (completed ? "yes" : "NO") << "\n";
  os << "faults detected: " << faults_detected << ", heals applied: "
     << heals_applied << ", restarts: " << restarts << "\n";
  for (const auto& rung : ladder) {
    os << "ladder: " << to_string(rung.rung) << " "
       << (rung.ok ? "ok" : "FAILED");
    if (!rung.detail.empty()) os << " — " << rung.detail;
    os << "\n";
  }
  if (degraded) {
    os << "DEGRADED: quarantined";
    for (ProcessId p : quarantined) os << " p" << p;
    os << "\n";
  }
  if (remote_investigations + investigate_fallbacks > 0) {
    os << "investigations: " << remote_investigations << " via daemon, "
       << investigate_fallbacks << " degraded in-process\n";
  }
  os << "scroll: " << scroll_records << " records, " << scroll_bytes
     << " bytes\n";
  os << "phases (ms): run " << phases.run_ms << ", rollback "
     << phases.rollback_ms << ", collect " << phases.collect_ms
     << ", investigate " << phases.investigate_ms << ", heal "
     << phases.heal_ms << "\n";
  for (const auto& bug : bugs) {
    os << bug.render();
  }
  return os.str();
}

}  // namespace fixd::core
