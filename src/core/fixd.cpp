#include "core/fixd.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace fixd::core {

namespace {
/// Does any trail step on a violation path involve timer behaviour — a
/// timer event, a modelled timer cancellation, or a modelled delivery
/// delay? That is the signal that the bug may be a timeout-configuration
/// bug rather than a code bug.
bool timer_implicated(const BugReport& bug) {
  for (const mc::SysViolation& sv : bug.trails) {
    for (const mc::SysAction& step : sv.trail.steps) {
      if (step.kind == mc::SysAction::Kind::kCancelTimer ||
          step.kind == mc::SysAction::Kind::kDelayMessage) {
        return true;
      }
      if (step.kind == mc::SysAction::Kind::kRuntime &&
          step.event.kind == rt::EventKind::kTimer) {
        return true;
      }
    }
  }
  return false;
}
}  // namespace

FixdController::FixdController(rt::World& world, FixdOptions opts,
                               heal::PatchRegistry patches)
    : world_(world),
      opts_(std::move(opts)),
      patches_(std::move(patches)),
      scroll_(opts_.logging),
      tm_(world, opts_.tm) {
  FIXD_CHECK_MSG(world_.sealed(), "FixD: world must be sealed");
  world_.set_stop_on_violation(true);
  world_.add_observer(&scroll_);
  tm_.attach();
  initial_ = world_.snapshot(/*cow=*/true);
}

FixdController::~FixdController() {
  world_.remove_observer(&scroll_);
  tm_.detach();
}

FixdReport FixdController::run_protected(std::uint64_t max_steps) {
  FixdReport rep;
  std::size_t attempt = 0;

  while (true) {
    auto t0 = Clock::now();
    rt::RunResult run = world_.run(max_steps);
    rep.phases.run_ms += ms_since(t0);
    rep.final_run = run;

    if (run.reason != rt::StopReason::kViolation) {
      rep.completed = true;
      break;
    }

    ++rep.faults_detected;
    BugReport bug = handle_fault(attempt, rep);
    rep.bugs.push_back(bug);

    if (attempt + 1 >= opts_.max_recovery_attempts) {
      rep.completed = false;
      break;
    }
    if (!recover(rep.bugs.back(), rep)) {
      rep.completed = false;
      break;
    }
    ++attempt;
  }

  rep.scroll_records = scroll_.stats().records;
  rep.scroll_bytes = scroll_.stats().bytes;
  return rep;
}

BugReport FixdController::handle_fault(std::size_t attempt, FixdReport& rep) {
  BugReport bug;
  FIXD_CHECK_MSG(world_.has_violation(), "handle_fault without violation");
  bug.violation = world_.violations().front();

  // --- Phase: roll back to a consistent line (§3.2) ------------------------
  auto t0 = Clock::now();
  ProcessId failed =
      bug.violation.pid == kNoProcess ? 0 : bug.violation.pid;
  // Latest checkpoint strictly before the violation step, deepened by
  // `attempt` on retries.
  const auto& entries = tm_.store(failed).entries();
  std::size_t idx = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].data->step <= bug.violation.step) idx = i;
  }
  idx = (idx > attempt) ? idx - attempt : 0;
  bug.line = tm_.rollback_to(failed, idx);

  // Work retained = events whose effects survive the rollback.
  std::uint64_t retained = 0;
  for (ProcessId p = 0; p < world_.size(); ++p) {
    retained += world_.events_handled(p);
  }
  rep.work_retained_events = retained;
  rep.phases.rollback_ms += ms_since(t0);

  // --- Phase: collect checkpoints + models (Fig. 4) -------------------------
  // Every healthy process replies to the fault notification with (a) a
  // checkpoint consistent with the recovery line — serialized through the
  // wire format and round-tripped, so the cost is the real cost — and (b) a
  // model of its behaviour (here: the implementation itself, per §3.3).
  t0 = Clock::now();
  for (ProcessId p = 0; p < world_.size(); ++p) {
    if (p == failed) continue;
    ++bug.collect.control_messages;  // FAULT_NOTIFY failed -> p
    bug.collect.control_bytes += 16;
    rt::ProcessCheckpoint ckpt = world_.capture_process(p, /*cow=*/false);
    BinaryWriter w;
    ckpt.save(w);
    ++bug.collect.control_messages;  // CKPT_REPLY p -> failed
    bug.collect.control_bytes += w.size();
    // Round-trip: the investigating node reconstructs the checkpoint from
    // wire bytes (catches any non-transmissible state early).
    BinaryReader r(w.bytes());
    rt::ProcessCheckpoint back;
    back.load(r);
    FIXD_CHECK_MSG(back.root == ckpt.root,
                   "checkpoint wire round-trip mismatch");
    ++bug.collect.checkpoints_collected;
    ++bug.collect.models_collected;  // clone_behavior() is the model
  }
  rep.phases.collect_ms += ms_since(t0);

  // --- Phase: investigate (§3.3) --------------------------------------------
  t0 = Clock::now();
  // The violation that triggered us must not leak into the explorer's
  // baseline; the rolled-back state is presumed clean.
  world_.clear_violations();
  bool investigated = false;
  if (!opts_.investigate_endpoint.empty()) {
    // Delegate to the fixdd daemon. The request-id is a pure function of
    // (job seed, fault #, recovery attempt), so if this whole recovery is
    // re-entered the daemon's idempotency ledger hands back the same job
    // instead of double-running it. submit_and_wait_or_degrade falls back
    // to an in-process run of the same job when the daemon stays
    // unreachable past the client's retry budget.
    try {
      svc::Client client(svc::Endpoint::parse(opts_.investigate_endpoint),
                         opts_.investigate_retry);
      const svc::ScenarioRegistry registry =
          svc::ScenarioRegistry::with_builtins();
      const std::uint64_t rid = hash_combine(
          hash_combine(0x696e76657374ull ^ opts_.investigate_job.seed,
                       rep.faults_detected),
          attempt);
      svc::InvestigationOutcome out = svc::submit_and_wait_or_degrade(
          client, registry, opts_.investigate_job, rid);
      bug.trails = out.result.violations;
      bug.explore = out.result.stats;
      if (out.degraded) {
        bug.investigated_via = "degraded: " + out.degraded_reason;
        ++rep.investigate_fallbacks;
      } else {
        bug.investigated_via = "daemon";
        ++rep.remote_investigations;
      }
      investigated = true;
    } catch (const TimeoutError& e) {
      bug.investigated_via = std::string("degraded: ") + e.what();
      ++rep.investigate_fallbacks;
    }
  }
  if (!investigated) {
    mc::SysExploreOptions iopts = opts_.investigate;
    if (!iopts.install_invariants) {
      iopts.install_invariants = opts_.install_invariants;
    }
    mc::SystemExplorer explorer(world_, iopts);
    mc::SysExploreResult res = explorer.explore();
    bug.trails = res.violations;
    bug.explore = res.stats;
  }
  rep.phases.investigate_ms += ms_since(t0);

  bug.scroll_excerpt = scroll_.render(40);
  return bug;
}

bool FixdController::recover(const BugReport& bug, FixdReport& rep) {
  auto t0 = Clock::now();
  auto done = [&](bool ok) {
    rep.phases.heal_ms += ms_since(t0);
    return ok;
  };
  auto attempted = [&](RecoveryRung rung, bool ok, std::string detail) {
    rep.ladder.push_back({rung, ok, std::move(detail)});
  };

  // --- Rung 1: timeout tuner ------------------------------------------------
  if (opts_.attempt_timeout_tuning && !opts_.timeout_site.target_type.empty()
      && timer_implicated(bug)) {
    heal::TunerOptions topts = opts_.tuner;
    if (!topts.install_invariants) {
      topts.install_invariants = opts_.install_invariants;
    }
    heal::TimeoutTuner tuner(world_, opts_.timeout_site, topts);
    heal::TunerResult tr = tuner.tune();
    const bool tuned = tr.ok;
    const heal::UpdatePatch patch = tr.patch;
    rep.tunes.push_back(std::move(tr));
    if (tuned) {
      heal::HealOptions hopts;
      // A configuration-only update: old-state/new-state equivalence holds
      // with traffic in flight, so the rolled-back (mid-run) state is an
      // acceptable update point.
      hopts.require_quiescent_inbound = false;
      heal::Healer healer(world_, hopts);
      heal::HealReport hr = healer.apply_all(patch);
      if (hr.ok) {
        ++rep.heals_applied;
        ++rep.timeout_heals;
        world_.clear_violations();
        tm_.reset();  // old-config checkpoints are not valid restore points
        attempted(RecoveryRung::kTimeoutTuner, true, patch.description);
        return done(true);
      }
      attempted(RecoveryRung::kTimeoutTuner, false,
                "tuned patch failed to apply");
    } else {
      attempted(RecoveryRung::kTimeoutTuner, false,
                "no validated timeout configuration found");
    }
    // Fall through: escalate.
  }

  // --- Rung 2: static patch registry ----------------------------------------
  if (opts_.attempt_heal && patches_.size() > 0) {
    // Pick the patch matching the faulty process (or any process if the
    // violation was global).
    const heal::UpdatePatch* patch = nullptr;
    if (bug.violation.pid != kNoProcess) {
      patch = patches_.find(world_.process(bug.violation.pid));
    }
    if (!patch) {
      for (ProcessId p = 0; p < world_.size() && !patch; ++p) {
        patch = patches_.find(world_.process(p));
      }
    }
    if (patch) {
      heal::Healer healer(world_);
      heal::HealReport hr = healer.apply_all(*patch);
      if (hr.ok) {
        ++rep.heals_applied;
        world_.clear_violations();
        tm_.reset();  // old-version checkpoints are not valid restore points
        attempted(RecoveryRung::kPatchRegistry, true, patch->description);
        return done(true);
      }
      attempted(RecoveryRung::kPatchRegistry, false,
                "patch found but did not apply: " + patch->description);
    } else {
      attempted(RecoveryRung::kPatchRegistry, false,
                "no registered patch matches any live process");
    }
  }

  // --- Rung 3: recovery-line rollback behind the partition onset ------------
  if (line_uses_ < opts_.line_budget) {
    std::string detail;
    const bool ok = recover_via_line(bug, detail);
    attempted(RecoveryRung::kRecoveryLine, ok, std::move(detail));
    if (ok) return done(true);
  }

  // --- Rung 4: restart from scratch -----------------------------------------
  if (opts_.restart_on_heal_failure) {
    // §3.4: "the simplest option ... restarted from the beginning". Apply
    // any applicable patches to the fresh instances so the restart is with
    // corrected code when a fix exists.
    world_.restore(initial_);
    world_.clear_violations();
    if (patches_.size() > 0) {
      heal::Healer healer(world_);
      for (const auto& patch : patches_.all()) {
        healer.apply_all(patch);  // best effort; failure means no such proc
      }
    }
    tm_.reset();
    ++rep.restarts;
    attempted(RecoveryRung::kRestart, true, "restarted from initial state");
    return done(true);
  }

  // --- Rung 5: graceful degradation -----------------------------------------
  if (degrade_uses_ < opts_.degrade_budget) {
    std::string detail;
    const bool ok = recover_via_degrade(bug, rep, detail);
    attempted(RecoveryRung::kDegrade, ok, std::move(detail));
    if (ok) return done(true);
  }

  return done(false);
}

bool FixdController::recover_via_line(const BugReport& bug,
                                      std::string& detail) {
  const std::size_t use = line_uses_++;
  const ProcessId failed =
      bug.violation.pid == kNoProcess ? 0 : bug.violation.pid;

  // Partition-onset proxy: the oldest send stranded behind a blocked link.
  // A message queued on a cut link was sent no later than the cut itself,
  // so rolling behind the earliest of them lands behind the onset — an
  // over-approximation in the backward (safe) direction. With no cut and
  // nothing stranded, the violation time itself bounds the search.
  const net::SimNetwork& net = world_.network();
  VirtualTime onset = bug.violation.at;
  for (const net::Message* m : net.pending()) {
    if (net.link_blocked(m->src, m->dst) && m->sent_at < onset) {
      onset = m->sent_at;
    }
  }

  // Cap EVERY process at its latest checkpoint at-or-behind the onset —
  // not just the implicated one. Post-onset progress that never crossed a
  // channel (a unilateral leader declaration on the starved side of a cut)
  // is causally consistent with any peer state, so a single-process pin
  // would leave it standing. The failed process is deepened by one per
  // prior use of this rung (deterministic backoff).
  std::vector<std::ptrdiff_t> pinned(world_.size(), -1);
  std::size_t failed_idx = 0;
  for (ProcessId p = 0; p < world_.size(); ++p) {
    const auto& entries = tm_.store(p).entries();
    if (entries.empty()) {
      detail = "no checkpoints for p" + std::to_string(p);
      return false;
    }
    std::size_t idx = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].data->at <= onset) idx = i;  // ascending; keep latest
    }
    if (p == failed) {
      idx = (idx > use) ? idx - use : 0;
      failed_idx = idx;
    }
    pinned[p] = static_cast<std::ptrdiff_t>(idx);
  }
  ckpt::RecoveryLine line = tm_.rollback_pinned(pinned);
  const std::size_t idx = failed_idx;

  // Heal the cut: the resumed run models the partition as over. Collected
  // first, then healed through the model wrappers so the replay key chain
  // advances instead of breaking. The injector that cut these links stays
  // in its fired state and will not re-cut.
  std::vector<net::SimNetwork::LinkKey> cuts(net.blocked_links().begin(),
                                             net.blocked_links().end());
  for (const auto& [src, dst] : cuts) world_.model_heal_link(src, dst);
  world_.clear_violations();

  // Validation replay: a bounded exploration from the healed line with the
  // partition/restart models switched on, so adversarial re-cuts are in
  // scope. Evidence for the report, not a gate — the code bug is still
  // reachable under a fresh partition; what gates resumption is the
  // *current* state being invariant-clean.
  mc::SysExploreOptions vopts = opts_.investigate;
  vopts.model_partition = true;
  vopts.model_restart = true;
  if (!vopts.install_invariants) {
    vopts.install_invariants = opts_.install_invariants;
  }
  mc::SystemExplorer explorer(world_, vopts);
  mc::SysExploreResult vres = explorer.explore();

  world_.recheck_invariants();
  if (world_.has_violation()) {
    detail = "rolled p" + std::to_string(failed) + " to checkpoint " +
             std::to_string(idx) + " but invariants still fail";
    return false;
  }
  detail = "rolled back " + std::to_string(line.line.total_rollback()) +
           " checkpoint(s), healed " + std::to_string(cuts.size()) +
           " link(s); validation found " + std::to_string(vres.violations.size()) +
           " trail(s) under re-partition";
  return true;
}

bool FixdController::recover_via_degrade(const BugReport& bug, FixdReport& rep,
                                         std::string& detail) {
  ++degrade_uses_;
  const ProcessId victim =
      bug.violation.pid == kNoProcess ? 0 : bug.violation.pid;

  // Quarantine: park the implicated process at its most recent checkpoint
  // — a pre-violation state — and mark it crashed so it takes no further
  // events. Restoring one process alone is causally inconsistent in
  // general, but a quarantined process never acts on that state again; it
  // only has to stop tripping the invariant.
  const auto& entries = tm_.store(victim).entries();
  if (!entries.empty()) {
    world_.restore_process(victim, *entries.back().data);
  }
  world_.set_crashed(victim, true);
  world_.clear_violations();
  world_.recheck_invariants();
  if (world_.has_violation()) {
    detail = "quarantined p" + std::to_string(victim) +
             " but invariants still fail";
    return false;
  }
  rep.degraded = true;
  rep.quarantined.push_back(victim);
  detail = "quarantined p" + std::to_string(victim) +
           "; resuming with degraded capacity";
  return true;
}

}  // namespace fixd::core
