#include "ckpt/timemachine.hpp"

#include <utility>

#include "common/error.hpp"

namespace fixd::ckpt {

TimeMachine::TimeMachine(rt::World& world, TimeMachineOptions opts)
    : world_(world), opts_(opts) {}

TimeMachine::~TimeMachine() {
  if (attached_) detach();
}

void TimeMachine::attach() {
  FIXD_CHECK_MSG(world_.sealed(), "attach: world must be sealed");
  FIXD_CHECK_MSG(!attached_, "attach: already attached");
  stores_.clear();
  stores_.resize(world_.size(), CheckpointStore(opts_.store_capacity));
  world_.add_interceptor(this);
  world_.add_observer(this);
  attached_ = true;
  for (ProcessId pid = 0; pid < world_.size(); ++pid) {
    take_checkpoint(pid, CkptReason::kInitial);
  }
}

void TimeMachine::detach() {
  if (!attached_) return;
  world_.remove_interceptor(this);
  world_.remove_observer(this);
  attached_ = false;
}

void TimeMachine::reset() {
  FIXD_CHECK_MSG(attached_, "reset: not attached");
  stores_.assign(world_.size(), CheckpointStore(opts_.store_capacity));
  delivered_log_.clear();
  for (ProcessId pid = 0; pid < world_.size(); ++pid) {
    take_checkpoint(pid, CkptReason::kInitial);
  }
}

CheckpointId TimeMachine::take_checkpoint(ProcessId pid, CkptReason reason) {
  FIXD_CHECK_MSG(pid < stores_.size(), "take_checkpoint: bad pid");
  // COW captures go through the world's capture cache: checkpointing a
  // process that is clean since its last capture stores a shared pointer.
  std::shared_ptr<const rt::ProcessCheckpoint> data =
      opts_.cow ? world_.capture_process_shared(pid)
                : std::make_shared<const rt::ProcessCheckpoint>(
                      world_.capture_process(pid, /*cow=*/false));
  CheckpointId id = stores_[pid].push(reason, std::move(data));
  ++stats_.checkpoints;
  switch (reason) {
    case CkptReason::kInitial: ++stats_.ckpt_initial; break;
    case CkptReason::kPeriodic: ++stats_.ckpt_periodic; break;
    case CkptReason::kCic: ++stats_.ckpt_cic; break;
    case CkptReason::kSpecEntry:
    case CkptReason::kManual: ++stats_.ckpt_manual; break;
  }
  return id;
}

void TimeMachine::take_global_checkpoint(CkptReason reason) {
  for (ProcessId pid = 0; pid < world_.size(); ++pid) {
    take_checkpoint(pid, reason);
  }
}

const CheckpointStore& TimeMachine::store(ProcessId pid) const {
  FIXD_CHECK_MSG(pid < stores_.size(), "store: bad pid");
  return stores_[pid];
}

std::uint64_t TimeMachine::retained_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : stores_) n += s.retained_bytes();
  return n;
}

bool TimeMachine::before_event(rt::World& w, const rt::EventDesc& ev) {
  if (opts_.cic) {
    if (ev.kind == rt::EventKind::kDeliver) {
      take_checkpoint(ev.pid, CkptReason::kCic);
    }
    // Const access: the mutable network() accessor breaks the replay key
    // chain, which would defeat this interceptor's purity declaration.
    submitted_before_event_ = std::as_const(w).network().stats().submitted;
  }
  return true;
}

void TimeMachine::after_event(rt::World& w, const rt::EventDesc& ev) {
  if (opts_.cic &&
      std::as_const(w).network().stats().submitted > submitted_before_event_) {
    // The handler sent messages: checkpoint the sender so receivers of
    // those messages never have to domino past this point.
    take_checkpoint(ev.pid, CkptReason::kCic);
  }
  if (opts_.periodic_interval == 0) return;
  std::uint64_t handled = w.events_handled(ev.pid);
  if (handled > 0 && handled % opts_.periodic_interval == 0) {
    take_checkpoint(ev.pid, CkptReason::kPeriodic);
  }
}

void TimeMachine::on_deliver(const rt::World& w, const net::Message& msg) {
  DeliveredRecord rec;
  rec.msg = msg;
  rec.dst_own_after = w.vclock_of(msg.dst)[msg.dst];
  delivered_log_.push_back(std::move(rec));
  if (delivered_log_.size() > opts_.delivered_log_capacity) {
    delivered_log_.pop_front();
  }
}

std::vector<std::vector<VectorClock>> TimeMachine::clock_history() const {
  std::vector<std::vector<VectorClock>> hist(stores_.size());
  for (std::size_t p = 0; p < stores_.size(); ++p) {
    for (const auto& e : stores_[p].entries()) {
      hist[p].push_back(e.data->vclock);
    }
  }
  return hist;
}

RecoveryLine TimeMachine::compute_line() const {
  RecoveryLine rl;
  rl.line = RecoveryLineSolver::solve(clock_history());
  rl.ids.resize(stores_.size());
  for (std::size_t p = 0; p < stores_.size(); ++p) {
    rl.ids[p] = stores_[p].at(rl.line.index[p]).id;
  }
  return rl;
}

RecoveryLine TimeMachine::rollback() {
  RecoveryLine rl = compute_line();
  execute_line(rl);
  return rl;
}

RecoveryLine TimeMachine::rollback_to(ProcessId failed,
                                      std::size_t ckpt_index) {
  FIXD_CHECK_MSG(failed < stores_.size(), "rollback_to: bad pid");
  std::vector<std::ptrdiff_t> pinned(stores_.size(), -1);
  pinned[failed] = static_cast<std::ptrdiff_t>(ckpt_index);
  RecoveryLine rl;
  rl.line = RecoveryLineSolver::solve_pinned(clock_history(), pinned);
  rl.ids.resize(stores_.size());
  for (std::size_t p = 0; p < stores_.size(); ++p) {
    rl.ids[p] = stores_[p].at(rl.line.index[p]).id;
  }
  execute_line(rl);
  return rl;
}

RecoveryLine TimeMachine::rollback_pinned(
    const std::vector<std::ptrdiff_t>& pinned) {
  FIXD_CHECK_MSG(pinned.size() == stores_.size(),
                 "rollback_pinned: pin vector size mismatch");
  RecoveryLine rl;
  rl.line = RecoveryLineSolver::solve_pinned(clock_history(), pinned);
  rl.ids.resize(stores_.size());
  for (std::size_t p = 0; p < stores_.size(); ++p) {
    rl.ids[p] = stores_[p].at(rl.line.index[p]).id;
  }
  execute_line(rl);
  return rl;
}

void TimeMachine::execute_line(RecoveryLine& rl) {
  const std::size_t n = stores_.size();

  // 1. Restore every process to its chosen checkpoint.
  std::vector<const VectorClock*> cut(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    const StoredCheckpoint& sc = stores_[pid].at(rl.line.index[pid]);
    // Shared overload: a process already holding this checkpoint's content
    // is skipped, and the capture cache re-warms for the next checkpoint.
    world_.restore_process(pid, sc.data);
    cut[pid] = &sc.data->vclock;
  }

  // 2. Drop in-flight messages sent after the line (their sends have been
  //    undone; the re-execution will regenerate them).
  std::vector<MsgId> to_drop;
  for (const net::Message* m : world_.network().pending()) {
    if (m->vclock.size() == 0) continue;  // pre-seal traffic (not possible)
    if (m->vclock[m->src] > (*cut[m->src])[m->src]) {
      to_drop.push_back(m->id);
    }
  }
  for (MsgId id : to_drop) world_.network().drop(id, /*forced=*/true);
  rl.dropped = to_drop.size();
  stats_.messages_dropped += to_drop.size();

  // 3. Re-inject logged messages that crossed the line: sent before the
  //    sender's cut, delivered after the receiver's cut. Without this the
  //    rollback would lose them (the classic in-transit message problem).
  std::deque<DeliveredRecord> keep;
  for (const DeliveredRecord& rec : delivered_log_) {
    const net::Message& m = rec.msg;
    bool sent_before_cut = m.vclock[m.src] <= (*cut[m.src])[m.src];
    bool delivered_after_cut = rec.dst_own_after > (*cut[m.dst])[m.dst];
    if (delivered_after_cut) {
      if (sent_before_cut) {
        world_.network().reinject(m);
        ++rl.reinjected;
        ++stats_.messages_reinjected;
      }
      // Either way this delivery has been undone; forget it. Re-deliveries
      // will be logged afresh.
    } else {
      keep.push_back(rec);
    }
  }
  delivered_log_ = std::move(keep);
  rl.reinjected = rl.reinjected;  // (clarity; already accumulated)

  // 4. Checkpoints in the undone future are no longer valid restore points.
  for (ProcessId pid = 0; pid < n; ++pid) {
    stores_[pid].truncate_after(rl.line.index[pid]);
  }

  ++stats_.rollbacks;
}

}  // namespace fixd::ckpt
