#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace fixd::ckpt {

CheckpointId CheckpointStore::push(
    CkptReason reason, std::shared_ptr<const rt::ProcessCheckpoint> data) {
  FIXD_CHECK_MSG(data != nullptr, "push: null checkpoint");
  StoredCheckpoint sc;
  sc.id = next_id_++;
  sc.reason = reason;
  sc.data = std::move(data);
  if (entries_.size() >= capacity_ && capacity_ > 1) {
    // Keep the initial checkpoint pinned at slot 0; rotate the rest.
    // Both paths are O(1) on the deque: evicting slot 1 shifts only the
    // pinned front entry, evicting slot 0 is a pop_front.
    if (entries_.front().reason == CkptReason::kInitial &&
        entries_.size() > 1) {
      entries_.erase(entries_.begin() + 1);
    } else {
      entries_.pop_front();
    }
  }
  entries_.push_back(std::move(sc));
  ++total_pushed_;
  return entries_.back().id;
}

const StoredCheckpoint& CheckpointStore::latest() const {
  FIXD_CHECK_MSG(!entries_.empty(), "checkpoint store is empty");
  return entries_.back();
}

const StoredCheckpoint& CheckpointStore::at(std::size_t index) const {
  FIXD_CHECK_MSG(index < entries_.size(), "checkpoint index out of range");
  return entries_[index];
}

const StoredCheckpoint* CheckpointStore::find(CheckpointId id) const {
  // Ids are assigned monotonically and eviction preserves order, so the
  // deque is always sorted by id.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const StoredCheckpoint& e, CheckpointId v) { return e.id < v; });
  return (it != entries_.end() && it->id == id) ? &*it : nullptr;
}

std::uint64_t CheckpointStore::retained_bytes() const {
  std::uint64_t n = 0;
  std::unordered_set<const rt::ProcessCheckpoint*> seen;
  for (const auto& e : entries_) {
    if (seen.insert(e.data.get()).second) n += e.data->size_bytes();
  }
  return n;
}

void CheckpointStore::truncate_after(std::size_t index) {
  FIXD_CHECK_MSG(index < entries_.size(), "truncate_after out of range");
  entries_.resize(index + 1);
}

}  // namespace fixd::ckpt
