#include "ckpt/checkpoint.hpp"

#include "common/error.hpp"

namespace fixd::ckpt {

CheckpointId CheckpointStore::push(CkptReason reason,
                                   rt::ProcessCheckpoint data) {
  StoredCheckpoint sc;
  sc.id = next_id_++;
  sc.reason = reason;
  sc.data = std::move(data);
  if (entries_.size() >= capacity_ && capacity_ > 1) {
    // Keep the initial checkpoint pinned at slot 0; rotate the rest.
    std::size_t victim = (entries_.front().reason == CkptReason::kInitial &&
                          entries_.size() > 1)
                             ? 1
                             : 0;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  entries_.push_back(std::move(sc));
  ++total_pushed_;
  return entries_.back().id;
}

const StoredCheckpoint& CheckpointStore::latest() const {
  FIXD_CHECK_MSG(!entries_.empty(), "checkpoint store is empty");
  return entries_.back();
}

const StoredCheckpoint& CheckpointStore::at(std::size_t index) const {
  FIXD_CHECK_MSG(index < entries_.size(), "checkpoint index out of range");
  return entries_[index];
}

const StoredCheckpoint* CheckpointStore::find(CheckpointId id) const {
  for (const auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::uint64_t CheckpointStore::retained_bytes() const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) n += e.data.size_bytes();
  return n;
}

void CheckpointStore::truncate_after(std::size_t index) {
  FIXD_CHECK_MSG(index < entries_.size(), "truncate_after out of range");
  entries_.resize(index + 1);
}

}  // namespace fixd::ckpt
