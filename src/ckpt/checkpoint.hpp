// Checkpoint storage: per-process histories of captured states.
//
// Each process accumulates checkpoints (initial, periodic, communication-
// induced, speculation-entry, manual). The store is a pinned-initial ring:
// the initial checkpoint is never evicted (the recovery-line solver's
// backstop), newer ones rotate within the capacity budget.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "rt/world.hpp"

namespace fixd::ckpt {

enum class CkptReason : std::uint8_t {
  kInitial = 0,   ///< taken when the Time Machine attaches
  kPeriodic = 1,  ///< every N events
  kCic = 2,       ///< communication-induced: before a receive (§4.2, Fig. 6)
  kSpecEntry = 3, ///< speculation begin / absorption
  kManual = 4,
};

inline const char* to_string(CkptReason r) {
  switch (r) {
    case CkptReason::kInitial: return "initial";
    case CkptReason::kPeriodic: return "periodic";
    case CkptReason::kCic: return "cic";
    case CkptReason::kSpecEntry: return "spec";
    case CkptReason::kManual: return "manual";
  }
  return "?";
}

struct StoredCheckpoint {
  CheckpointId id = kNoCheckpoint;  ///< per-process, monotonically increasing
  CkptReason reason = CkptReason::kManual;
  /// Shared with the world's capture cache (and other stores) when the
  /// process was clean between captures: consecutive checkpoints of an
  /// unchanged process cost one pointer, not one copy.
  std::shared_ptr<const rt::ProcessCheckpoint> data;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Append a checkpoint; evicts the oldest non-initial entry if full.
  CheckpointId push(CkptReason reason,
                    std::shared_ptr<const rt::ProcessCheckpoint> data);

  /// Convenience for callers holding a checkpoint by value.
  CheckpointId push(CkptReason reason, rt::ProcessCheckpoint data) {
    return push(reason, std::make_shared<const rt::ProcessCheckpoint>(
                            std::move(data)));
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries oldest-to-newest (ascending id: ids are monotonic and
  /// eviction only removes from the front region). A deque so that the
  /// ring's steady-state eviction (pop the oldest rotating entry) is O(1)
  /// instead of a middle-of-vector erase shifting every retained
  /// checkpoint.
  const std::deque<StoredCheckpoint>& entries() const { return entries_; }

  const StoredCheckpoint& latest() const;
  const StoredCheckpoint& at(std::size_t index) const;
  /// Binary search over the id-sorted entries.
  const StoredCheckpoint* find(CheckpointId id) const;

  /// Cumulative storage cost of retained checkpoints; entries sharing one
  /// underlying checkpoint are counted once.
  std::uint64_t retained_bytes() const;

  /// Total checkpoints ever pushed (including evicted).
  std::uint64_t total_pushed() const { return total_pushed_; }

  /// Drop every checkpoint newer than `index` (after a rollback the undone
  /// future must not be restorable).
  void truncate_after(std::size_t index);

 private:
  std::size_t capacity_;
  std::deque<StoredCheckpoint> entries_;
  CheckpointId next_id_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace fixd::ckpt
