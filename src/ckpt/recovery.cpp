#include "ckpt/recovery.hpp"

#include "common/error.hpp"

namespace fixd::ckpt {

bool RecoveryLineSolver::consistent(
    const std::vector<std::vector<VectorClock>>& history,
    const std::vector<std::size_t>& index) {
  const std::size_t n = history.size();
  FIXD_CHECK(index.size() == n);
  for (std::size_t j = 0; j < n; ++j) {
    const VectorClock& cj = history[j][index[j]];
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      const VectorClock& ci = history[i][index[i]];
      if (cj[i] > ci[i]) return false;  // c_j observed i beyond c_i: orphan
    }
  }
  return true;
}

LineResult RecoveryLineSolver::solve(
    const std::vector<std::vector<VectorClock>>& history) {
  return solve_pinned(history,
                      std::vector<std::ptrdiff_t>(history.size(), -1));
}

LineResult RecoveryLineSolver::solve_pinned(
    const std::vector<std::vector<VectorClock>>& history,
    const std::vector<std::ptrdiff_t>& pinned) {
  const std::size_t n = history.size();
  FIXD_CHECK_MSG(pinned.size() == n, "pinned size mismatch");
  LineResult res;
  res.index.resize(n);
  res.rollback_depth.assign(n, 0);
  res.events_undone.assign(n, 0);

  std::vector<std::size_t> latest(n);
  for (std::size_t p = 0; p < n; ++p) {
    FIXD_CHECK_MSG(!history[p].empty(),
                   "process " + std::to_string(p) + " has no checkpoints");
    latest[p] = history[p].size() - 1;
    if (pinned[p] >= 0) {
      FIXD_CHECK_MSG(static_cast<std::size_t>(pinned[p]) < history[p].size(),
                     "pinned index out of range");
      res.index[p] = static_cast<std::size_t>(pinned[p]);
    } else {
      res.index[p] = latest[p];
    }
  }

  // Fixpoint: while some c_j has observed i beyond c_i, move j backwards.
  // Monotone (indices only decrease), hence terminates.
  bool changed = true;
  while (changed) {
    ++res.iterations;
    changed = false;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        if (i == j) continue;
        const VectorClock& ci = history[i][res.index[i]];
        while (history[j][res.index[j]][i] > ci[i]) {
          FIXD_CHECK_MSG(res.index[j] > 0,
                         "no consistent line found (initial checkpoint "
                         "should be all-zero)");
          --res.index[j];
          changed = true;
        }
      }
    }
  }

  for (std::size_t p = 0; p < n; ++p) {
    res.rollback_depth[p] = latest[p] - res.index[p];
    const VectorClock& chosen = history[p][res.index[p]];
    const VectorClock& newest = history[p][latest[p]];
    res.events_undone[p] = newest[p] - chosen[p];
  }
  FIXD_CHECK_MSG(consistent(history, res.index),
                 "solver produced an inconsistent line");
  return res;
}

}  // namespace fixd::ckpt
