// Distributed speculations: communication-induced lightweight checkpointing
// (§4.2, the mechanism proposed for the Time Machine).
//
// A speculation is a computation based on an assumption. Entering one takes
// a lightweight (COW) checkpoint of the initiator. While speculative, the
// process's messages carry the speculation id as a *taint*; any process that
// receives tainted data is absorbed: it checkpoints (before the receive) and
// joins the speculation. Then:
//
//   commit  — the assumption held: entry checkpoints are discarded, taints
//             scrubbed from processes and in-flight messages.
//   abort   — the assumption failed: every member rolls back to its entry
//             checkpoint, in-flight tainted messages are discarded, and each
//             member's on_spec_aborted handler runs (the "different
//             execution path upon rollback").
//
// Aborts cascade: if rolling process p back to speculation S's entry point
// also rewinds p past its absorption into another speculation T, then T's
// record of p is stale and T must abort as well.
//
// Aborts are deferred: a handler that calls ctx.spec_abort keeps executing;
// the world applies rollbacks after the handler returns (rolling back the
// C++ stack mid-handler is not survivable).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rt/hooks.hpp"
#include "rt/world.hpp"

namespace fixd::ckpt {

struct SpecStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t absorptions = 0;
  std::uint64_t rollbacks = 0;          ///< process rollbacks performed
  std::uint64_t cascade_aborts = 0;     ///< aborts triggered by other aborts
  std::uint64_t messages_discarded = 0; ///< tainted in-flight drops
};

class SpeculationManager final : public rt::SpecHooks {
 public:
  SpeculationManager() = default;

  /// Install on a world (sets the world's spec hooks to this).
  void attach(rt::World& world) { world.set_spec_hooks(this); }

  // --- rt::SpecHooks -------------------------------------------------------
  std::vector<SpecId> taints_of(ProcessId pid) const override;
  void before_deliver(rt::World& w, const net::Message& msg) override;
  SpecId begin(rt::World& w, ProcessId pid, std::string assumption) override;
  void commit(rt::World& w, ProcessId pid, SpecId id) override;
  void abort(rt::World& w, ProcessId pid, SpecId id) override;
  void apply_deferred(rt::World& w) override;

  // --- introspection -------------------------------------------------------
  bool active(SpecId id) const { return specs_.count(id) != 0; }
  std::size_t active_count() const { return specs_.size(); }
  /// Members of a speculation in absorption order (owner first).
  std::vector<ProcessId> members_of(SpecId id) const;
  const SpecStats& stats() const { return stats_; }

  /// Entry-checkpoint vector clocks per process — the speculation system's
  /// implicit recovery line (used by bench/fig6 to compare against the
  /// solver's line).
  std::vector<std::vector<VectorClock>> entry_clock_history() const;

 private:
  struct Member {
    ProcessId pid;
    rt::ProcessCheckpoint entry;  ///< state right before joining
  };
  struct Spec {
    SpecId id = kNoSpec;
    ProcessId owner = kNoProcess;
    std::string assumption;
    std::vector<Member> members;  ///< owner first, then absorption order
    bool has_member(ProcessId pid) const {
      for (const auto& m : members)
        if (m.pid == pid) return true;
      return false;
    }
  };

  /// `floor` tracks, per process, the oldest entry checkpoint restored so
  /// far within the current cascade (by capture serial): a member already
  /// rolled back to an older state must not be re-forwarded to a newer one.
  void do_abort(rt::World& w, SpecId id,
                std::map<ProcessId, std::uint64_t>& floor);

  std::map<SpecId, Spec> specs_;
  std::map<ProcessId, std::vector<SpecId>> taints_;
  std::vector<SpecId> deferred_aborts_;
  SpecId next_id_ = 1;
  SpecStats stats_;
};

}  // namespace fixd::ckpt
