#include "ckpt/speculation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fixd::ckpt {

std::vector<SpecId> SpeculationManager::taints_of(ProcessId pid) const {
  auto it = taints_.find(pid);
  if (it == taints_.end()) return {};
  return it->second;
}

void SpeculationManager::before_deliver(rt::World& w,
                                        const net::Message& msg) {
  // Absorption: joining every active speculation tainting the message that
  // the receiver is not yet part of. The entry checkpoint is taken *before*
  // the receive mutates the receiver (Fig. 6: "each process saves a
  // checkpoint before receiving a new message").
  for (SpecId sid : msg.spec_taints) {
    auto it = specs_.find(sid);
    if (it == specs_.end()) continue;  // already committed/aborted
    Spec& spec = it->second;
    if (spec.has_member(msg.dst)) continue;
    Member m;
    m.pid = msg.dst;
    m.entry = w.capture_process(msg.dst, /*cow=*/true);
    spec.members.push_back(std::move(m));
    taints_[msg.dst].push_back(sid);
    ++stats_.absorptions;
    w.notify_spec_event(msg.dst, sid, rt::RuntimeObserver::SpecOp::kAbsorb);
  }
}

SpecId SpeculationManager::begin(rt::World& w, ProcessId pid,
                                 std::string assumption) {
  Spec spec;
  spec.id = next_id_++;
  spec.owner = pid;
  spec.assumption = std::move(assumption);
  Member m;
  m.pid = pid;
  m.entry = w.capture_process(pid, /*cow=*/true);
  spec.members.push_back(std::move(m));
  taints_[pid].push_back(spec.id);
  SpecId id = spec.id;
  specs_.emplace(id, std::move(spec));
  ++stats_.begun;
  w.notify_spec_event(pid, id, rt::RuntimeObserver::SpecOp::kBegin);
  return id;
}

void SpeculationManager::commit(rt::World& w, ProcessId pid, SpecId id) {
  auto it = specs_.find(id);
  FIXD_CHECK_MSG(it != specs_.end(), "commit: unknown speculation");
  FIXD_CHECK_MSG(it->second.owner == pid,
                 "commit: only the owner may validate the assumption");
  // The assumption held: drop entry checkpoints, scrub taints everywhere.
  for (const Member& m : it->second.members) {
    auto& tv = taints_[m.pid];
    std::erase(tv, id);
  }
  w.network().scrub_taint(id);
  specs_.erase(it);
  ++stats_.committed;
  w.notify_spec_event(pid, id, rt::RuntimeObserver::SpecOp::kCommit);
}

void SpeculationManager::abort(rt::World& w, ProcessId pid, SpecId id) {
  auto it = specs_.find(id);
  FIXD_CHECK_MSG(it != specs_.end(), "abort: unknown speculation");
  FIXD_CHECK_MSG(it->second.has_member(pid),
                 "abort: only a member may invalidate the assumption");
  if (std::find(deferred_aborts_.begin(), deferred_aborts_.end(), id) ==
      deferred_aborts_.end()) {
    deferred_aborts_.push_back(id);
  }
  w.notify_spec_event(pid, id, rt::RuntimeObserver::SpecOp::kAbort);
}

void SpeculationManager::apply_deferred(rt::World& w) {
  std::map<ProcessId, std::uint64_t> floor;
  while (!deferred_aborts_.empty()) {
    SpecId id = deferred_aborts_.front();
    deferred_aborts_.erase(deferred_aborts_.begin());
    if (specs_.count(id)) do_abort(w, id, floor);
  }
}

void SpeculationManager::do_abort(rt::World& w, SpecId id,
                                  std::map<ProcessId, std::uint64_t>& floor) {
  Spec spec = std::move(specs_.at(id));
  specs_.erase(id);

  // Roll every member back to its entry checkpoint — unless the member has
  // already been rolled back at least that far by an earlier abort in this
  // cascade (restoring a later entry would resurrect undone state). Entry
  // checkpoints are ordered by their world-unique capture serial.
  for (const Member& m : spec.members) {
    auto it = floor.find(m.pid);
    std::uint64_t current_floor =
        it == floor.end() ? ~0ull : it->second;
    if (m.entry.capture_serial < current_floor) {
      w.restore_process(m.pid, m.entry);
      floor[m.pid] = m.entry.capture_serial;
      ++stats_.rollbacks;
    }
  }

  // Cascade: another speculation T whose member p joined at-or-after p's
  // entry into this speculation has a stale entry checkpoint — T must abort
  // too. Detected by comparing entry step counters.
  for (const Member& m : spec.members) {
    for (auto& [tid, tspec] : specs_) {
      for (const Member& tm : tspec.members) {
        if (tm.pid == m.pid && tm.entry.step >= m.entry.step) {
          if (std::find(deferred_aborts_.begin(), deferred_aborts_.end(),
                        tid) == deferred_aborts_.end()) {
            deferred_aborts_.push_back(tid);
            ++stats_.cascade_aborts;
          }
        }
      }
    }
  }

  // Discard speculative traffic still in flight.
  stats_.messages_discarded += w.network().drop_tainted(id);

  // Clear membership taints.
  for (const Member& m : spec.members) {
    std::erase(taints_[m.pid], id);
  }

  ++stats_.aborted;

  // Alternate execution path, owner first then absorption order.
  for (const Member& m : spec.members) {
    w.notify_spec_aborted(m.pid, id, spec.assumption);
  }
}

std::vector<ProcessId> SpeculationManager::members_of(SpecId id) const {
  std::vector<ProcessId> out;
  auto it = specs_.find(id);
  if (it == specs_.end()) return out;
  for (const auto& m : it->second.members) out.push_back(m.pid);
  return out;
}

std::vector<std::vector<VectorClock>>
SpeculationManager::entry_clock_history() const {
  std::vector<std::vector<VectorClock>> out;
  for (const auto& [id, spec] : specs_) {
    std::vector<VectorClock> clocks;
    for (const auto& m : spec.members) clocks.push_back(m.entry.vclock);
    out.push_back(std::move(clocks));
  }
  return out;
}

}  // namespace fixd::ckpt
