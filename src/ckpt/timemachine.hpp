// The Time Machine (§3.2, Fig. 2): rollback of the distributed application
// to a consistent global state.
//
// Attached to a world, the Time Machine:
//   - takes an initial checkpoint of every process,
//   - takes periodic and/or communication-induced checkpoints per policy,
//   - logs delivered messages (sender-based message logging) so that a
//     rollback can re-inject messages that were in flight across the
//     recovery line,
//   - computes consistent recovery lines over the checkpoint histories
//     (RecoveryLineSolver) and performs the actual rollback: restore each
//     process, drop channel traffic sent after the line, re-inject logged
//     messages delivered after the line.
//
// COW mode keeps checkpoints as shared page tables (cheap); full mode
// serializes (transmissible). bench/fig2_time_machine measures both.
#pragma once

#include <deque>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/recovery.hpp"
#include "rt/hooks.hpp"
#include "rt/world.hpp"

namespace fixd::ckpt {

struct TimeMachineOptions {
  std::size_t store_capacity = 64;
  bool cow = true;
  /// Take a checkpoint of a process every N events it handles (0 = off).
  std::uint64_t periodic_interval = 0;
  /// Communication-induced: checkpoint before every receive (Fig. 6) and
  /// after any event in which the process sent messages. The send-side half
  /// keeps pure senders checkpointed — without it their only checkpoint is
  /// the initial one and every receiver dominoes back to the start.
  bool cic = false;
  /// Delivered-message log capacity (ring).
  std::size_t delivered_log_capacity = 1 << 16;
};

struct TimeMachineStats {
  std::uint64_t checkpoints = 0;
  std::uint64_t ckpt_initial = 0;
  std::uint64_t ckpt_periodic = 0;
  std::uint64_t ckpt_cic = 0;
  std::uint64_t ckpt_manual = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t messages_dropped = 0;    ///< sent-after-line channel drops
  std::uint64_t messages_reinjected = 0; ///< logged deliveries re-injected
};

/// A computed (and possibly executed) recovery line.
struct RecoveryLine {
  LineResult line;
  std::vector<CheckpointId> ids;  ///< chosen checkpoint id per process
  std::size_t dropped = 0;
  std::size_t reinjected = 0;
};

class TimeMachine final : public rt::StepInterceptor,
                          public rt::RuntimeObserver {
 public:
  TimeMachine(rt::World& world, TimeMachineOptions opts = {});
  ~TimeMachine() override;

  TimeMachine(const TimeMachine&) = delete;
  TimeMachine& operator=(const TimeMachine&) = delete;

  /// Hook into the world and take initial checkpoints. World must be sealed.
  void attach();
  void detach();
  bool attached() const { return attached_; }

  const TimeMachineOptions& options() const { return opts_; }

  /// Drop all history (stores + delivered-message log) and re-take initial
  /// checkpoints of the current state. Used after a restart or a dynamic
  /// update: old-version checkpoints are not valid restore points for the
  /// new code, so the updated system starts a fresh checkpoint era.
  void reset();

  /// Manual checkpoint of one process.
  CheckpointId take_checkpoint(ProcessId pid,
                               CkptReason reason = CkptReason::kManual);

  /// Checkpoint every process (a manual global cut; consistent only if the
  /// world is between events, which it is whenever user code runs).
  void take_global_checkpoint(CkptReason reason = CkptReason::kManual);

  const CheckpointStore& store(ProcessId pid) const;

  /// Compute the most recent consistent line without executing it.
  RecoveryLine compute_line() const;

  /// Compute a line with `failed` pinned to its checkpoint `ckpt_index`
  /// (the faulty process chooses how far back it must go; the rest of the
  /// system adapts), then execute the rollback.
  RecoveryLine rollback_to(ProcessId failed, std::size_t ckpt_index);

  /// Compute a line with every process capped at `pinned[p]` (-1 = free,
  /// its latest), then execute the rollback. The escalation ladder's
  /// recovery-line rung uses this to put the whole system behind a
  /// partition onset: one process alone can be consistently restored to a
  /// pre-onset checkpoint while a peer keeps post-onset local progress
  /// (e.g. a unilateral leader declaration) that no channel ever carried.
  RecoveryLine rollback_pinned(const std::vector<std::ptrdiff_t>& pinned);

  /// Roll back to the most recent consistent line.
  RecoveryLine rollback();

  const TimeMachineStats& stats() const { return stats_; }

  /// Total retained checkpoint storage (bytes) across processes.
  std::uint64_t retained_bytes() const;

  // --- rt::StepInterceptor --------------------------------------------------
  bool before_event(rt::World& w, const rt::EventDesc& ev) override;
  void after_event(rt::World& w, const rt::EventDesc& ev) override;

  /// The time machine is a passive interceptor: it captures state but
  /// never changes which event runs or what it does, so the world
  /// trajectory is independent of its internal state. Declaring purity
  /// with the default zero digest keeps replay-warm keying alive while a
  /// time machine is attached (docs/ROBUSTNESS.md, purity table).
  bool replay_pure() const override { return true; }

  // --- rt::RuntimeObserver --------------------------------------------------
  void on_deliver(const rt::World& w, const net::Message& msg) override;

 private:
  struct DeliveredRecord {
    net::Message msg;
    /// Receiver's own vector-clock component right after the delivery.
    std::uint64_t dst_own_after = 0;
  };

  std::vector<std::vector<VectorClock>> clock_history() const;
  void execute_line(RecoveryLine& rl);

  rt::World& world_;
  TimeMachineOptions opts_;
  std::vector<CheckpointStore> stores_;
  std::deque<DeliveredRecord> delivered_log_;
  TimeMachineStats stats_;
  std::uint64_t submitted_before_event_ = 0;
  bool attached_ = false;
};

}  // namespace fixd::ckpt
