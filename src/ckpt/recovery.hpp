// Recovery-line computation: the algorithm behind Fig. 6.
//
// Given each process's checkpoint history (as vector clocks), find the most
// recent *consistent* combination — one checkpoint per process such that no
// checkpoint has observed an event another process's checkpoint has not yet
// performed (no orphan messages):
//
//     consistent({c_0..c_{n-1}})  ⟺  ∀ i,j:  c_j.vclock[i] ≤ c_i.vclock[i]
//
// The solver starts from every process's latest checkpoint and walks
// offending processes backwards to a fixpoint. With *independent* (periodic)
// checkpointing this exhibits the domino effect the paper warns about; with
// communication-induced checkpoints (one before every receive) the latest
// line is consistent after a single process rolls back — the "safe recovery
// line" of Fig. 6. bench/fig6_recovery_lines measures exactly this contrast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace fixd::ckpt {

struct LineResult {
  /// Chosen checkpoint index per process (into the per-process history).
  std::vector<std::size_t> index;
  /// latest_index - chosen_index per process ("how far each rolled back").
  std::vector<std::size_t> rollback_depth;
  /// Own-component events undone per process.
  std::vector<std::uint64_t> events_undone;
  /// Fixpoint iterations (1 = the latest line was already consistent).
  std::uint32_t iterations = 0;

  std::size_t total_rollback() const {
    std::size_t n = 0;
    for (std::size_t d : rollback_depth) n += d;
    return n;
  }
  std::uint64_t total_events_undone() const {
    std::uint64_t n = 0;
    for (std::uint64_t d : events_undone) n += d;
    return n;
  }
};

class RecoveryLineSolver {
 public:
  /// `history[p]` = vector clocks of p's checkpoints, oldest to newest.
  /// Every process must have at least one checkpoint (the initial state,
  /// all-zero clock, is always consistent, so the fixpoint exists).
  ///
  /// `pinned[p]` (optional) caps process p at the given index — "roll back
  /// at least to here". Used for the failed process: it must return to (or
  /// before) the checkpoint it chose; the fixpoint may pull it back further
  /// if its own checkpoint observed sends the others cannot match.
  static LineResult solve(
      const std::vector<std::vector<VectorClock>>& history);

  static LineResult solve_pinned(
      const std::vector<std::vector<VectorClock>>& history,
      const std::vector<std::ptrdiff_t>& pinned);

  /// Check the consistency predicate for a specific selection.
  static bool consistent(const std::vector<std::vector<VectorClock>>& history,
                         const std::vector<std::size_t>& index);
};

}  // namespace fixd::ckpt
