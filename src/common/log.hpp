// Minimal leveled diagnostic logger for the FixD library itself.
//
// This is *library* logging (debugging FixD), entirely separate from the
// Scroll (which records the application under test). Default level is Warn
// so tests and benches stay quiet; set FIXD_LOG=debug|info|warn|error or call
// set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace fixd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global level; reads FIXD_LOG on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

#define FIXD_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(                \
                                       ::fixd::log_level())) {      \
      std::ostringstream fixd_log_os;                               \
      fixd_log_os << expr;                                          \
      ::fixd::detail::log_emit((level), fixd_log_os.str());         \
    }                                                               \
  } while (0)

#define FIXD_DEBUG(expr) FIXD_LOG(::fixd::LogLevel::kDebug, expr)
#define FIXD_INFO(expr) FIXD_LOG(::fixd::LogLevel::kInfo, expr)
#define FIXD_WARN(expr) FIXD_LOG(::fixd::LogLevel::kWarn, expr)
#define FIXD_ERROR(expr) FIXD_LOG(::fixd::LogLevel::kError, expr)

}  // namespace fixd
