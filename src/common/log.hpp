// Minimal leveled diagnostic logger for the FixD library itself.
//
// This is *library* logging (debugging FixD), entirely separate from the
// Scroll (which records the application under test). Default level is Warn
// so tests and benches stay quiet; set FIXD_LOG=debug|info|warn|error or call
// set_log_level().
//
// The emit path is pluggable: set_log_sink() reroutes records (fixdd
// installs a LogRing so its own lifecycle history is ingestible by the
// Scroll/blackbox like any other process — it also still echoes to stderr).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace fixd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

/// Global level; reads FIXD_LOG on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Receives every record that passes the level filter. Must be callable
/// from any thread; keep it cheap (it runs inline at the log site).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replace the global sink (nullptr restores the stderr default).
/// Thread-safe; the previous sink is returned so scoped installs can
/// restore it.
LogSink set_log_sink(LogSink sink);

/// A captured record, in arrival order. `seq` is a global monotonically
/// increasing sequence number (records dropped by ring overwrite leave
/// visible gaps).
struct LogRecord {
  std::uint64_t seq = 0;
  LogLevel level = LogLevel::kInfo;
  std::string msg;
};

/// Bounded thread-safe ring of recent log records — the daemon's flight
/// recorder. Overwrites the oldest record when full; total() keeps
/// counting so overwrites are detectable.
class LogRing {
 public:
  explicit LogRing(std::size_t capacity);

  void append(LogLevel level, const std::string& msg);

  /// Up to `n` most recent records, oldest first.
  std::vector<LogRecord> tail(std::size_t n) const;

  /// Records ever appended (>= what tail() can still return).
  std::uint64_t total() const;

  /// A LogSink that appends to this ring AND echoes to stderr; pass to
  /// set_log_sink(). The ring must outlive the installation.
  LogSink sink();

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> ring_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
};

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

#define FIXD_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(                \
                                       ::fixd::log_level())) {      \
      std::ostringstream fixd_log_os;                               \
      fixd_log_os << expr;                                          \
      ::fixd::detail::log_emit((level), fixd_log_os.str());         \
    }                                                               \
  } while (0)

#define FIXD_DEBUG(expr) FIXD_LOG(::fixd::LogLevel::kDebug, expr)
#define FIXD_INFO(expr) FIXD_LOG(::fixd::LogLevel::kInfo, expr)
#define FIXD_WARN(expr) FIXD_LOG(::fixd::LogLevel::kWarn, expr)
#define FIXD_ERROR(expr) FIXD_LOG(::fixd::LogLevel::kError, expr)

}  // namespace fixd
