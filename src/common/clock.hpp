// Logical clocks: Lamport scalar clocks and vector clocks.
//
// The Scroll stamps every record with both; the Time Machine uses vector
// clocks to decide checkpoint consistency (a recovery line is consistent iff
// no checkpoint's vector clock "sees" an event after another member's cut);
// the global log merge orders records by (lamport, pid).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace fixd {

/// Scalar Lamport clock.
class LamportClock {
 public:
  /// Local event: advance and return the new timestamp.
  LamportTime tick() { return ++time_; }

  /// Merge a received timestamp (on message receipt) and tick.
  LamportTime merge(LamportTime received) {
    time_ = (received > time_ ? received : time_);
    return ++time_;
  }

  LamportTime now() const { return time_; }

  void save(BinaryWriter& w) const { w.write_u64(time_); }
  void load(BinaryReader& r) { time_ = r.read_u64(); }

 private:
  LamportTime time_ = 0;
};

/// Ordering relation between two vector clocks.
enum class CausalOrder {
  kEqual,       ///< identical
  kBefore,      ///< lhs happens-before rhs
  kAfter,       ///< rhs happens-before lhs
  kConcurrent,  ///< neither precedes the other
};

/// Fixed-width vector clock over a world of `size()` processes.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : v_(n, 0) {}

  std::size_t size() const { return v_.size(); }
  std::uint64_t operator[](std::size_t i) const { return v_.at(i); }

  /// Local event at process `pid`.
  void tick(ProcessId pid) { ++v_.at(pid); }

  /// Component-wise max with a received clock, then tick(pid).
  void merge(const VectorClock& other, ProcessId pid) {
    if (other.size() != size())
      throw SerializationError("vector clock size mismatch in merge");
    for (std::size_t i = 0; i < v_.size(); ++i)
      if (other.v_[i] > v_[i]) v_[i] = other.v_[i];
    tick(pid);
  }

  /// Compare causally.
  CausalOrder compare(const VectorClock& other) const;

  /// True iff *this happens-before other (strictly).
  bool happens_before(const VectorClock& other) const {
    return compare(other) == CausalOrder::kBefore;
  }

  bool concurrent_with(const VectorClock& other) const {
    return compare(other) == CausalOrder::kConcurrent;
  }

  bool operator==(const VectorClock& other) const = default;

  void save(BinaryWriter& w) const { w.write_pod_vector(v_); }
  void load(BinaryReader& r) { v_ = r.read_pod_vector<std::uint64_t>(); }

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> v_;
};

}  // namespace fixd
