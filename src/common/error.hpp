// Error types and checking macros used across FixD.
//
// FixD distinguishes programming errors (FIXD_CHECK -> FixdError subclasses,
// these indicate misuse of the library or internal bugs) from *detected
// application faults* (which are first-class values, see rt/invariant.hpp --
// a fault in the application under test is data, not an exception).
#pragma once

#include <stdexcept>
#include <string>
#include <system_error>

namespace fixd {

/// Base class for all errors raised by the FixD library itself.
class FixdError : public std::runtime_error {
 public:
  explicit FixdError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on malformed serialized data (truncated buffer, bad tag...).
class SerializationError : public FixdError {
 public:
  explicit SerializationError(const std::string& what) : FixdError(what) {}
};

/// Raised on invalid configuration (unknown process id, bad parameters...).
class ConfigError : public FixdError {
 public:
  explicit ConfigError(const std::string& what) : FixdError(what) {}
};

/// Raised when a checkpoint/rollback operation cannot be performed.
class CheckpointError : public FixdError {
 public:
  explicit CheckpointError(const std::string& what) : FixdError(what) {}
};

/// Raised when a dynamic update cannot be applied safely.
class UpdateError : public FixdError {
 public:
  explicit UpdateError(const std::string& what) : FixdError(what) {}
};

/// Raised when replay diverges from the recorded scroll.
class ReplayDivergence : public FixdError {
 public:
  explicit ReplayDivergence(const std::string& what) : FixdError(what) {}
};

/// Raised when a filesystem or socket operation fails (ENOSPC, short
/// write, rename failure, connection reset...). Carries the errno value
/// when one applies so callers can branch on the cause — the spill tier
/// and the job journal treat a full disk differently from a bad path.
class IoError : public FixdError {
 public:
  explicit IoError(const std::string& what, int err = 0)
      : FixdError(err != 0
                      ? what + " (" +
                            std::generic_category().message(err) + ")"
                      : what),
        err_(err) {}
  /// The captured errno, or 0 when the failure had no errno.
  int error_code() const { return err_; }

 private:
  int err_ = 0;
};

/// Raised when an operation exceeds its deadline (RPC calls, retry
/// budgets, socket reads). Deliberately distinct from IoError: a timeout
/// is retryable by policy, an IO failure usually is not.
class TimeoutError : public FixdError {
 public:
  explicit TimeoutError(const std::string& what) : FixdError(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw FixdError(std::string("FIXD_CHECK failed: ") + expr + " at " + file +
                  ":" + std::to_string(line) + (msg.empty() ? "" : ": ") + msg);
}
}  // namespace detail

/// Internal invariant check. Throws FixdError on failure (never disabled:
/// the library is a verification tool; silent corruption is worse than cost).
#define FIXD_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr))                                                         \
      ::fixd::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (0)

#define FIXD_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr))                                                         \
      ::fixd::detail::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

}  // namespace fixd
