#include "common/clock.hpp"

namespace fixd {

CausalOrder VectorClock::compare(const VectorClock& other) const {
  if (other.size() != size())
    throw SerializationError("vector clock size mismatch in compare");
  bool le = true;  // this <= other componentwise
  bool ge = true;  // this >= other componentwise
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > other.v_[i]) le = false;
    if (v_[i] < other.v_[i]) ge = false;
  }
  if (le && ge) return CausalOrder::kEqual;
  if (le) return CausalOrder::kBefore;
  if (ge) return CausalOrder::kAfter;
  return CausalOrder::kConcurrent;
}

std::string VectorClock::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v_[i]);
  }
  s += "]";
  return s;
}

}  // namespace fixd
