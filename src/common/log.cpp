#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fixd {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("FIXD_LOG");
  if (!env) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel level) { level_ref() = level; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[fixd:%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace fixd
