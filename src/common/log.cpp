#include "common/log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fixd {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("FIXD_LOG");
  if (!env) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

std::mutex& sink_mu() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_ref() {
  static LogSink sink;  // empty = stderr default
  return sink;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel level) { level_ref() = level; }

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mu());
  LogSink prev = std::move(sink_ref());
  sink_ref() = std::move(sink);
  return prev;
}

LogRing::LogRing(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

void LogRing::append(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  LogRecord rec{next_seq_++, level, msg};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[static_cast<std::size_t>(rec.seq % capacity_)] = std::move(rec);
  }
}

std::vector<LogRecord> LogRing::tail(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out(ring_.begin(), ring_.end());
  std::sort(out.begin(), out.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
  if (out.size() > n) out.erase(out.begin(), out.end() - n);
  return out;
}

std::uint64_t LogRing::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

LogSink LogRing::sink() {
  return [this](LogLevel level, const std::string& msg) {
    append(level, msg);
    std::fprintf(stderr, "[fixd:%s] %s\n", log_level_name(level), msg.c_str());
  };
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(sink_mu());
    sink = sink_ref();
  }
  if (sink) {
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[fixd:%s] %s\n", log_level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace fixd
