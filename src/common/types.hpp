// Core identifier and time types shared by every FixD module.
//
// All ids are plain integral types wrapped in distinct struct tags where the
// distinction matters for correctness (ProcessId vs TimerId vs SpecId);
// elsewhere plain aliases keep the API light.
#pragma once

#include <cstdint>
#include <limits>

namespace fixd {

/// Identifies a process in the distributed world. Dense: 0..N-1.
using ProcessId = std::uint32_t;

/// Virtual time in nanoseconds. The runtime is a discrete-event simulator;
/// this is simulation time, not wall time.
using VirtualTime = std::uint64_t;

/// Monotonically increasing per-world sequence number for messages.
using MsgId = std::uint64_t;

/// Identifies a timer registered by a process.
using TimerId = std::uint64_t;

/// Identifies a speculation (see fixd::ckpt::SpeculationManager).
using SpecId = std::uint64_t;

/// Identifies a checkpoint within a process's checkpoint store.
using CheckpointId = std::uint64_t;

/// Lamport logical timestamp.
using LamportTime = std::uint64_t;

/// A sentinel "no process" value.
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// A sentinel "no checkpoint" value.
inline constexpr CheckpointId kNoCheckpoint =
    std::numeric_limits<CheckpointId>::max();

/// A sentinel "no speculation" value.
inline constexpr SpecId kNoSpec = std::numeric_limits<SpecId>::max();

}  // namespace fixd
