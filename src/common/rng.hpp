// Deterministic pseudo-random number generation.
//
// Determinism is the foundation of the whole system: the Scroll records RNG
// draws, replay must reproduce them bit-for-bit, and the model checker needs
// reproducible schedules. Therefore we implement the generator ourselves
// (xoshiro256**) instead of relying on std::mt19937 distribution behaviour,
// and the full generator state is serializable (checkpointed with a process).
#pragma once

#include <array>
#include <cstdint>

#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace fixd {

/// splitmix64 generator; used to seed xoshiro and for cheap one-off streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state, fully serializable.
class Rng {
 public:
  Rng() : Rng(0x5eedull) {}

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply-shift; rejection loop for exact uniformity.
    while (true) {
      std::uint64_t x = next_u64();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double p) { return next_double() < p; }

  /// Cheap state fingerprint (not a draw); used by replay-warm state
  /// digests so generator position participates in event keys.
  std::uint64_t digest() const {
    std::uint64_t h = 0;
    for (auto s : state_) h = hash_combine(h, s);
    return h;
  }

  void save(BinaryWriter& w) const {
    for (auto s : state_) w.write_u64(s);
  }

  void load(BinaryReader& r) {
    for (auto& s : state_) s = r.read_u64();
  }

  bool operator==(const Rng& other) const = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fixd
