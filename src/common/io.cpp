#include "common/io.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <random>
#include <system_error>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace fixd {

namespace fs = std::filesystem;

namespace io_testing {

namespace {
// -1 = disarmed; 0 = fail the next checked write; n > 0 = fail after n more.
std::atomic<int> g_fail_countdown{-1};
}  // namespace

void fail_after_writes(int n) { g_fail_countdown.store(n); }

bool consume_write_fault() {
  int cur = g_fail_countdown.load(std::memory_order_relaxed);
  while (cur >= 0) {
    if (g_fail_countdown.compare_exchange_weak(cur, cur - 1)) {
      if (cur == 0) return true;  // this write fails; injector disarms
      return false;
    }
  }
  return false;
}

}  // namespace io_testing

namespace io_detail {

void checked_fwrite(const void* data, std::size_t n, std::FILE* f,
                    const std::filesystem::path& path, const char* what) {
  if (io_testing::consume_write_fault()) {
    throw IoError(std::string(what) + ": injected write failure for " +
                      path.string(),
                  ENOSPC);
  }
  errno = 0;
  if (std::fwrite(data, 1, n, f) != n) {
    throw IoError(std::string(what) + ": short write to " + path.string(),
                  errno);
  }
}

void flush_and_sync(std::FILE* f, const std::filesystem::path& path) {
  errno = 0;
  if (std::fflush(f) != 0) {
    throw IoError("flush failed for " + path.string(), errno);
  }
  errno = 0;
  if (::fsync(fileno(f)) != 0) {
    throw IoError("fsync failed for " + path.string(), errno);
  }
}

}  // namespace io_detail

namespace {

constexpr std::uint32_t kRunMagic = 0x50535846;  // "FXSP" little-endian
constexpr std::uint32_t kRunVersion = 1;
constexpr std::uint64_t kRunHeaderBytes = 16;  // magic u32 + version u32 + count u64

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// ScratchDir

ScratchDir ScratchDir::create(const fs::path& parent, std::string_view prefix) {
  std::error_code ec;
  fs::path base = parent.empty() ? fs::temp_directory_path(ec) : parent;
  if (ec) throw IoError("ScratchDir: no usable temp directory", ec.value());
  fs::create_directories(base, ec);  // ok if it already exists
  std::random_device rd;
  std::uint64_t nonce = (std::uint64_t(rd()) << 32) ^ rd();
  for (int attempt = 0; attempt < 16; ++attempt, ++nonce) {
    fs::path candidate =
        base / (std::string(prefix) + "-" + hex64(nonce * 0x9e3779b97f4a7c15ULL));
    ec.clear();
    if (fs::create_directory(candidate, ec) && !ec) {
      ScratchDir d;
      d.path_ = std::move(candidate);
      return d;
    }
  }
  throw IoError("ScratchDir: could not create a unique directory under " +
                base.string());
}

ScratchDir& ScratchDir::operator=(ScratchDir&& other) noexcept {
  if (this != &other) {
    remove_now();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void ScratchDir::remove_now() noexcept {
  if (path_.empty()) return;
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort: never throw on a cleanup path
  path_.clear();
}

// ---------------------------------------------------------------------------
// SortedRunWriter

SortedRunWriter::SortedRunWriter(fs::path final_path)
    : final_(std::move(final_path)) {
  tmp_ = final_;
  tmp_ += ".tmp";
  errno = 0;
  f_ = std::fopen(tmp_.string().c_str(), "wb");
  if (f_ == nullptr) {
    throw IoError("SortedRunWriter: cannot open " + tmp_.string(), errno);
  }
  // Placeholder header; finish() rewrites it with the real count.
  BinaryWriter w;
  w.write_u32(kRunMagic);
  w.write_u32(kRunVersion);
  w.write_u64(0);
  try {
    io_detail::checked_fwrite(w.bytes().data(), w.bytes().size(), f_, tmp_,
                              "SortedRunWriter header");
  } catch (...) {
    std::fclose(f_);
    f_ = nullptr;
    throw;
  }
}

SortedRunWriter::~SortedRunWriter() {
  if (f_ != nullptr) {  // finish() never ran: abandon the temp file
    std::fclose(f_);
    std::error_code ec;
    fs::remove(tmp_, ec);
  }
}

void SortedRunWriter::append(const std::uint64_t* keys, std::size_t n) {
  FIXD_CHECK(f_ != nullptr);
  if (n == 0) return;
  BinaryWriter w;
  w.reserve(n * 8);
  for (std::size_t i = 0; i < n; ++i) {
    FIXD_CHECK_MSG(count_ == 0 || keys[i] > last_,
                   "SortedRunWriter: keys must be strictly increasing");
    if (count_ % kSortedRunFenceStride == 0) fence_.push_back(keys[i]);
    w.write_u64(keys[i]);
    last_ = keys[i];
    ++count_;
  }
  io_detail::checked_fwrite(w.bytes().data(), w.bytes().size(), f_, tmp_,
                            "SortedRunWriter append");
}

SortedRunWriter::Finished SortedRunWriter::finish() {
  FIXD_CHECK(f_ != nullptr);
  BinaryWriter w;
  w.write_u32(kRunMagic);
  w.write_u32(kRunVersion);
  w.write_u64(count_);
  try {
    errno = 0;
    if (std::fseek(f_, 0, SEEK_SET) != 0) {
      throw IoError("SortedRunWriter: seek failed for " + tmp_.string(),
                    errno);
    }
    io_detail::checked_fwrite(w.bytes().data(), w.bytes().size(), f_, tmp_,
                              "SortedRunWriter finish");
    errno = 0;
    if (std::fflush(f_) != 0) {
      throw IoError("SortedRunWriter: flush failed for " + tmp_.string(),
                    errno);
    }
  } catch (...) {
    std::fclose(f_);
    f_ = nullptr;
    std::error_code rm;
    fs::remove(tmp_, rm);
    throw;
  }
  std::fclose(f_);
  f_ = nullptr;
  std::error_code ec;
  fs::rename(tmp_, final_, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp_, rm);
    throw IoError("SortedRunWriter: rename to " + final_.string() + " failed",
                  ec.value());
  }
  Finished out;
  out.count = count_;
  out.file_bytes = kRunHeaderBytes + count_ * 8;
  out.fence = std::move(fence_);
  return out;
}

// ---------------------------------------------------------------------------
// SortedRunReader

SortedRunReader::SortedRunReader(fs::path path, std::vector<std::uint64_t> fence)
    : path_(std::move(path)), fence_(std::move(fence)) {
  errno = 0;
  f_ = std::fopen(path_.string().c_str(), "rb");
  if (f_ == nullptr) {
    throw IoError("SortedRunReader: cannot open " + path_.string(), errno);
  }
  std::byte hdr[kRunHeaderBytes];
  if (std::fread(hdr, 1, sizeof(hdr), f_) != sizeof(hdr)) {
    std::fclose(f_);
    f_ = nullptr;
    throw SerializationError("SortedRunReader: truncated header in " +
                             path_.string());
  }
  BinaryReader r({hdr, sizeof(hdr)});
  std::uint32_t magic = r.read_u32();
  std::uint32_t version = r.read_u32();
  count_ = r.read_u64();
  if (magic != kRunMagic || version != kRunVersion) {
    std::fclose(f_);
    f_ = nullptr;
    throw SerializationError("SortedRunReader: bad magic/version in " +
                             path_.string());
  }
  file_bytes_ = kRunHeaderBytes + count_ * 8;
  std::size_t want_fence =
      (count_ + kSortedRunFenceStride - 1) / kSortedRunFenceStride;
  if (fence_.size() != want_fence) {
    std::fclose(f_);
    f_ = nullptr;
    throw SerializationError("SortedRunReader: fence/count mismatch in " +
                             path_.string());
  }
}

SortedRunReader::~SortedRunReader() {
  if (f_ != nullptr) std::fclose(f_);
}

void SortedRunReader::read_block(std::uint64_t first_entry, std::size_t n,
                                 std::vector<std::uint64_t>& out) {
  out.resize(n);
  std::vector<std::byte> raw(n * 8);
  bool ok = std::fseek(f_, static_cast<long>(kRunHeaderBytes + first_entry * 8),
                       SEEK_SET) == 0 &&
            std::fread(raw.data(), 1, raw.size(), f_) == raw.size();
  FIXD_CHECK_MSG(ok, "SortedRunReader: block read failed in " + path_.string());
  BinaryReader r({raw.data(), raw.size()});
  for (std::size_t i = 0; i < n; ++i) out[i] = r.read_u64();
}

bool SortedRunReader::contains(std::uint64_t key) {
  if (count_ == 0 || fence_.empty() || key < fence_.front()) return false;
  // Last fence entry <= key owns the block that could contain it.
  auto it = std::upper_bound(fence_.begin(), fence_.end(), key);
  std::size_t block = static_cast<std::size_t>(it - fence_.begin()) - 1;
  std::uint64_t first = std::uint64_t(block) * kSortedRunFenceStride;
  std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(kSortedRunFenceStride, count_ - first));
  read_block(first, n, block_);
  return std::binary_search(block_.begin(), block_.end(), key);
}

void SortedRunReader::seek_start() { cursor_ = 0; }

bool SortedRunReader::next_chunk(std::vector<std::uint64_t>& out,
                                 std::size_t max) {
  out.clear();
  if (cursor_ >= count_ || max == 0) return false;
  std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(max, count_ - cursor_));
  read_block(cursor_, n, out);
  cursor_ += n;
  return true;
}

std::vector<std::uint64_t> SortedRunReader::read_all() {
  std::vector<std::uint64_t> all, chunk;
  all.reserve(static_cast<std::size_t>(count_));
  seek_start();
  while (next_chunk(chunk, 1 << 14)) all.insert(all.end(), chunk.begin(), chunk.end());
  return all;
}

}  // namespace fixd
