// 64-bit streaming hash used for model-checker state dedup and run digests.
//
// The hash is a simple multiply-xor construction (FNV-1a over 8-byte lanes
// with a splitmix64 finalizer). It is NOT cryptographic; it only needs good
// avalanche behaviour so that distinct world states rarely collide in the
// visited set. Collisions are safe-for-soundness in the explorer's default
// mode (a collision can only cause missed states, which the tests bound) and
// the engine offers an exact mode that stores full state bytes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace fixd {

/// splitmix64 finalizer: excellent avalanche, cheap.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Combine two 64-bit hashes (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

/// Streaming hasher over arbitrary bytes.
class Hasher {
 public:
  explicit Hasher(std::uint64_t seed = 0x46697844ull /* "FixD" */)
      : state_(mix64(seed)) {}

  Hasher& update(std::span<const std::byte> bytes) {
    std::uint64_t lane = 0;
    std::size_t i = 0;
    for (const std::byte b : bytes) {
      lane |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b))
              << (8 * (i % 8));
      if (++i % 8 == 0) {
        state_ = hash_combine(state_, lane);
        lane = 0;
      }
    }
    if (i % 8 != 0) state_ = hash_combine(state_, lane ^ (i % 8));
    len_ += bytes.size();
    return *this;
  }

  Hasher& update_u64(std::uint64_t v) {
    state_ = hash_combine(state_, v);
    len_ += 8;
    return *this;
  }

  Hasher& update_string(std::string_view s) {
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    return update({p, s.size()});
  }

  /// Final digest; includes total length so prefixes don't collide trivially.
  std::uint64_t digest() const { return hash_combine(state_, len_); }

 private:
  std::uint64_t state_;
  std::uint64_t len_ = 0;
};

/// One-shot hash of a byte span.
inline std::uint64_t hash_bytes(std::span<const std::byte> bytes,
                                std::uint64_t seed = 0x46697844ull) {
  return Hasher(seed).update(bytes).digest();
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span.
///
/// Distinct in purpose from Hasher: CRC is the *integrity* check on stored
/// and transmitted frames (the job journal and the service wire codec),
/// where guaranteed detection of small burst errors matters; Hasher is the
/// *identity* hash for in-memory state dedup. Chainable: pass the previous
/// return value as `crc` to continue over a split buffer.
inline std::uint32_t crc32(std::span<const std::byte> bytes,
                           std::uint32_t crc = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  for (const std::byte b : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace fixd
