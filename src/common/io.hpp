// Scratch-directory lifecycle and sorted-run spill files.
//
// The beyond-RAM explorer (mc/tiered_visited.hpp) spills cold visited-set
// shards to disk as sorted u64 runs. Two concerns live here because they are
// generic, not model-checker specific, and item 3 on the roadmap (multi-
// machine exploration) will reuse the same on-disk artifacts:
//
//  * ScratchDir — a per-run temporary directory with RAII recursive cleanup.
//    Every spill file a search creates lives under exactly one ScratchDir, so
//    any exit path (normal completion, violation-found early return, an
//    exception unwinding through the explorer) removes all of them. Covered
//    by tests/test_mc_spill.cpp.
//
//  * SortedRunWriter / SortedRunReader — an append-once, probe-many file of
//    strictly-increasing u64 keys in the BinaryWriter encoding (little-endian
//    fixed width, 16-byte header: magic "FXSP", version, count). The writer
//    builds an in-memory fence index (first key of every kFenceStride-entry
//    block) while streaming, so a reader probe is one binary search over the
//    fence plus one ~4 KiB block read — no per-probe full-file scan and no
//    resident copy of the run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <vector>

namespace fixd {

namespace io_testing {

/// Deterministic IO fault injection for regression tests: after `n` more
/// successful checked writes, the next one fails as if the device were
/// full (IoError carrying ENOSPC). Pass a negative value to disable.
/// Process-global and meant for single-threaded test setup; production
/// code never calls this.
void fail_after_writes(int n);

/// True when the injector decides the current write should fail
/// (and consumes one countdown tick per call while armed).
bool consume_write_fault();

}  // namespace io_testing

namespace io_detail {

/// fwrite that surfaces short writes and injected faults as IoError
/// (errno preserved; ENOSPC for injected faults). `what` names the
/// operation for the error message.
void checked_fwrite(const void* data, std::size_t n, std::FILE* f,
                    const std::filesystem::path& path, const char* what);

/// fflush + fsync(fileno(f)); IoError on failure. The journal's
/// durability point — a crash after this call cannot lose the bytes.
void flush_and_sync(std::FILE* f, const std::filesystem::path& path);

}  // namespace io_detail

/// A uniquely-named temporary directory removed (recursively) on destruction.
///
/// Move-only. A default-constructed ScratchDir owns nothing; create() makes
/// the directory eagerly so a failure surfaces at setup time, not mid-spill.
class ScratchDir {
 public:
  ScratchDir() = default;

  /// Create `<parent>/<prefix>-<random hex>`. An empty `parent` means
  /// std::filesystem::temp_directory_path(). Throws IoError on failure.
  static ScratchDir create(const std::filesystem::path& parent,
                           std::string_view prefix);

  ~ScratchDir() { remove_now(); }

  ScratchDir(ScratchDir&& other) noexcept { *this = std::move(other); }
  ScratchDir& operator=(ScratchDir&& other) noexcept;
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  bool valid() const { return !path_.empty(); }
  const std::filesystem::path& path() const { return path_; }

  /// Recursively delete the directory now (idempotent; never throws —
  /// cleanup runs on destructor paths).
  void remove_now() noexcept;

 private:
  std::filesystem::path path_;
};

/// Entries per fence-index block: 512 keys = 4 KiB of file per probe read.
inline constexpr std::size_t kSortedRunFenceStride = 512;

/// Streaming writer for a sorted u64 run. Keys must arrive strictly
/// increasing across all append() calls; finish() patches the header count
/// and atomically renames the temp file into place.
class SortedRunWriter {
 public:
  /// Opens `<final_path>.tmp` for writing. Throws IoError on failure.
  explicit SortedRunWriter(std::filesystem::path final_path);
  ~SortedRunWriter();

  SortedRunWriter(const SortedRunWriter&) = delete;
  SortedRunWriter& operator=(const SortedRunWriter&) = delete;

  /// Append a batch of keys (strictly increasing, and greater than every
  /// previously appended key). Throws FixdError on unsorted input (a
  /// programming error) and IoError on a failed or short write (ENOSPC,
  /// torn device...).
  void append(const std::uint64_t* keys, std::size_t n);

  struct Finished {
    std::uint64_t count = 0;
    std::uint64_t file_bytes = 0;
    std::vector<std::uint64_t> fence;  // first key of each block
  };

  /// Flush, patch the header, rename into place, and return the fence index.
  Finished finish();

 private:
  std::FILE* f_ = nullptr;
  std::filesystem::path tmp_, final_;
  std::uint64_t count_ = 0;
  std::uint64_t last_ = 0;
  std::vector<std::uint64_t> fence_;
};

/// Random-probe + sequential-scan reader over a finished sorted run.
///
/// Callers pass the fence index returned by the writer (the file itself
/// stays fence-free: the index is cheap to keep resident — one key per 4 KiB
/// of spilled data — and rebuilding it would mean a full-file scan on open).
/// Not internally synchronized: the tiered visited set guards each run with
/// its stripe mutex.
class SortedRunReader {
 public:
  /// Opens the run and validates the header. Throws FixdError/
  /// SerializationError on a missing or malformed file.
  SortedRunReader(std::filesystem::path path, std::vector<std::uint64_t> fence);
  ~SortedRunReader();

  SortedRunReader(const SortedRunReader&) = delete;
  SortedRunReader& operator=(const SortedRunReader&) = delete;

  std::uint64_t count() const { return count_; }
  std::uint64_t file_bytes() const { return file_bytes_; }
  const std::filesystem::path& path() const { return path_; }

  /// Exact membership probe: fence binary search + one block read.
  bool contains(std::uint64_t key);

  /// Restart the sequential cursor used by next_chunk().
  void seek_start();

  /// Read up to `max` keys in order into `out` (cleared first). Returns
  /// false when the cursor is exhausted and no keys were produced.
  bool next_chunk(std::vector<std::uint64_t>& out, std::size_t max);

  /// Convenience: the whole run, in order (test/merge-tail helper).
  std::vector<std::uint64_t> read_all();

 private:
  void read_block(std::uint64_t first_entry, std::size_t n,
                  std::vector<std::uint64_t>& out);

  std::FILE* f_ = nullptr;
  std::filesystem::path path_;
  std::vector<std::uint64_t> fence_;
  std::uint64_t count_ = 0;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t cursor_ = 0;  // next entry index for next_chunk()
  std::vector<std::uint64_t> block_;  // probe scratch
};

}  // namespace fixd
