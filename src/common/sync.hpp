// Small concurrency helpers for the COW substrate.
//
// The parallel Investigator (mc/sysmodel) shards its frontier across worker
// threads that exchange WorldSnapshots: a snapshot captured on one worker's
// scratch world is restored onto another's. The snapshot object graph
// (ProcessCheckpoint, HeapSnapshot pages, NetSnapshot messages) is immutable
// once captured, so cross-thread *reads* are safe by construction — but two
// mutation paths need care:
//
//  1. Lazy digest memos on shared immutable objects (Page::digest_cache):
//     concurrent readers may race to fill the memo. Those fields are
//     atomics; racing writers store identical values.
//  2. "Unique again, mutate in place" optimizations keyed on
//     shared_ptr::use_count() (PagedHeap::own_page, SimNetwork::take): once
//     an object has been visible to another thread, the refcount alone
//     cannot order the remote thread's last *read* before a local in-place
//     *write* (use_count() is a relaxed load). Such objects carry a
//     SharedMark set when the containing snapshot is published to another
//     thread; a marked object is copied, never mutated in place.
#pragma once

#include <atomic>

namespace fixd {

/// A set-once "this object has been published across threads" flag.
///
/// Copy/move semantics are deliberately *cold*: a copy is a fresh private
/// object (nobody else holds it yet), so it starts unmarked — the same
/// discipline as net::DigestMemo. Marking an already-marked object is a
/// cheap no-op, which lets containers memoize whole-subtree marking.
struct SharedMark {
  SharedMark() = default;
  SharedMark(const SharedMark&) {}
  SharedMark& operator=(const SharedMark&) { return *this; }
  SharedMark(SharedMark&&) noexcept {}
  SharedMark& operator=(SharedMark&&) noexcept { return *this; }

  void mark() const { v.store(true, std::memory_order_release); }
  /// Idempotent test-and-set; returns true when already marked.
  bool test_and_mark() const {
    return v.exchange(true, std::memory_order_acq_rel);
  }
  bool marked() const { return v.load(std::memory_order_acquire); }

  mutable std::atomic<bool> v{false};
};

}  // namespace fixd
