// Out-of-line pieces of common/serialize.hpp: the CRC framing shared by
// the service wire codec and the job journal. (The BinaryWriter/Reader
// core stays header-only.)
#include "common/serialize.hpp"

#include <array>

#include "common/hash.hpp"

namespace fixd {

void write_crc_frame(BinaryWriter& w, std::uint32_t magic,
                     std::span<const std::byte> payload) {
  w.write_u32(magic);
  w.write_u32(static_cast<std::uint32_t>(payload.size()));
  w.write_u32(crc32(payload));
  w.write_raw(payload);
}

std::pair<std::uint32_t, std::uint32_t> parse_crc_frame_header(
    std::span<const std::byte> header, std::uint32_t magic,
    std::size_t max_payload) {
  if (header.size() != kCrcFrameHeaderBytes) {
    throw SerializationError("crc frame: short header (" +
                             std::to_string(header.size()) + " bytes)");
  }
  BinaryReader r(header);
  const std::uint32_t got_magic = r.read_u32();
  if (got_magic != magic) {
    throw SerializationError("crc frame: bad magic 0x" +
                             std::to_string(got_magic));
  }
  const std::uint32_t len = r.read_u32();
  if (len > max_payload) {
    throw SerializationError("crc frame: oversize payload (" +
                             std::to_string(len) + " > " +
                             std::to_string(max_payload) + " bytes)");
  }
  const std::uint32_t crc = r.read_u32();
  return {len, crc};
}

void check_crc_payload(std::span<const std::byte> payload,
                       std::uint32_t expected_crc) {
  if (crc32(payload) != expected_crc) {
    throw SerializationError("crc frame: checksum mismatch");
  }
}

std::vector<std::byte> read_crc_frame(BinaryReader& r, std::uint32_t magic,
                                      std::size_t max_payload) {
  std::array<std::byte, kCrcFrameHeaderBytes> hdr;
  std::memcpy(hdr.data(), r.read_raw(kCrcFrameHeaderBytes).data(),
              kCrcFrameHeaderBytes);
  const auto [len, crc] = parse_crc_frame_header(hdr, magic, max_payload);
  std::span<const std::byte> payload = r.read_raw(len);
  check_crc_payload(payload, crc);
  return std::vector<std::byte>(payload.begin(), payload.end());
}

}  // namespace fixd
