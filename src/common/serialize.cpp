// serialize.hpp is header-only; this translation unit exists so the library
// has at least one object file and to fail fast if the header is not
// self-contained.
#include "common/serialize.hpp"
