// Compact, bounds-checked binary serialization.
//
// Every piece of state that the Time Machine checkpoints, the Scroll records,
// or the Investigator hashes flows through these two classes, so the encoding
// must be (a) deterministic — identical logical state produces identical
// bytes, which is what state-hashing dedup in the model checker relies on —
// and (b) strictly bounds checked — a truncated checkpoint must fail loudly
// (SerializationError), never read garbage.
//
// Encoding: little-endian fixed width for sized integers written with
// write_u*/write_i*; LEB128-style varints for lengths; length-prefixed byte
// strings. Floating point is bit-cast to the same-width integer.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace fixd {

/// Appends binary data to an internal byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Reserve capacity up front when the caller knows the rough size.
  void reserve(std::size_t n) { buf_.reserve(n); }

  void write_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void write_u16(std::uint16_t v) { write_le(v); }
  void write_u32(std::uint32_t v) { write_le(v); }
  void write_u64(std::uint64_t v) { write_le(v); }
  void write_i32(std::int32_t v) { write_le(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_le(static_cast<std::uint64_t>(v)); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

  /// LEB128 unsigned varint; used for all lengths/counts.
  void write_varint(std::uint64_t v) {
    while (v >= 0x80) {
      write_u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    write_u8(static_cast<std::uint8_t>(v));
  }

  /// Raw bytes, no length prefix (caller must know the size on read).
  void write_raw(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed byte string.
  void write_bytes(std::span<const std::byte> bytes) {
    write_varint(bytes.size());
    write_raw(bytes);
  }

  void write_string(std::string_view s) {
    write_varint(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    write_raw({p, s.size()});
  }

  template <typename T, typename Fn>
  void write_vector(const std::vector<T>& v, Fn&& per_element) {
    write_varint(v.size());
    for (const T& e : v) per_element(*this, e);
  }

  /// Vector of trivially-copyable elements (PODs) written verbatim.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_pod_vector(const std::vector<T>& v) {
    write_varint(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    write_raw({p, v.size() * sizeof(T)});
  }

  template <typename K, typename V, typename KFn, typename VFn>
  void write_map(const std::map<K, V>& m, KFn&& kf, VFn&& vf) {
    write_varint(m.size());
    for (const auto& [k, v] : m) {
      kf(*this, k);
      vf(*this, v);
    }
  }

  template <typename T, typename Fn>
  void write_optional(const std::optional<T>& o, Fn&& fn) {
    write_bool(o.has_value());
    if (o) fn(*this, *o);
  }

  const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  template <typename T>
  void write_le(T v) {
    static_assert(std::is_unsigned_v<T>);
    if constexpr (std::endian::native == std::endian::little) {
      // Bulk append: one resize + memcpy instead of a byte-at-a-time loop.
      // Every checkpoint, scroll record, and digest funnels through here.
      const std::size_t at = buf_.size();
      buf_.resize(at + sizeof(T));
      std::memcpy(buf_.data() + at, &v, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
      }
    }
  }

  std::vector<std::byte> buf_;
};

/// Reads binary data from a non-owning byte span with strict bounds checks.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) : data_(data) {}
  explicit BinaryReader(const std::vector<std::byte>& data)
      : data_(data.data(), data.size()) {}

  std::uint8_t read_u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t read_u16() { return read_le<std::uint16_t>(); }
  std::uint32_t read_u32() { return read_le<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_le<std::uint64_t>(); }
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  bool read_bool() { return read_u8() != 0; }
  double read_f64() { return std::bit_cast<double>(read_u64()); }

  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift >= 64) throw SerializationError("varint too long");
      std::uint8_t b = read_u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }

  /// Raw bytes view (zero copy); valid while the underlying buffer lives.
  std::span<const std::byte> read_raw(std::size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::vector<std::byte> read_bytes() {
    std::size_t n = checked_len(read_varint());
    auto s = read_raw(n);
    return {s.begin(), s.end()};
  }

  std::string read_string() {
    std::size_t n = checked_len(read_varint());
    auto s = read_raw(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  template <typename T, typename Fn>
  std::vector<T> read_vector(Fn&& per_element) {
    std::size_t n = checked_len(read_varint());
    std::vector<T> v;
    v.reserve(std::min<std::size_t>(n, 4096));
    for (std::size_t i = 0; i < n; ++i) v.push_back(per_element(*this));
    return v;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_pod_vector() {
    std::size_t n = checked_len(read_varint());
    if (n > data_.size() / sizeof(T) + 1)
      throw SerializationError("pod vector length exceeds buffer");
    auto s = read_raw(n * sizeof(T));
    std::vector<T> v(n);
    if (n) std::memcpy(v.data(), s.data(), s.size());
    return v;
  }

  template <typename K, typename V, typename KFn, typename VFn>
  std::map<K, V> read_map(KFn&& kf, VFn&& vf) {
    std::size_t n = checked_len(read_varint());
    std::map<K, V> m;
    for (std::size_t i = 0; i < n; ++i) {
      K k = kf(*this);
      V v = vf(*this);
      m.emplace(std::move(k), std::move(v));
    }
    return m;
  }

  template <typename T, typename Fn>
  std::optional<T> read_optional(Fn&& fn) {
    if (!read_bool()) return std::nullopt;
    return fn(*this);
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n)
      throw SerializationError("buffer underrun: need " + std::to_string(n) +
                               " bytes, have " +
                               std::to_string(data_.size() - pos_));
  }

  std::size_t checked_len(std::uint64_t n) const {
    if (n > data_.size() - pos_)
      throw SerializationError("declared length " + std::to_string(n) +
                               " exceeds remaining buffer");
    return static_cast<std::size_t>(n);
  }

  template <typename T>
  T read_le() {
    need(sizeof(T));
    T v = 0;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_.data() + pos_, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
      }
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Convenience: serialize a value that provides `void save(BinaryWriter&)`.
template <typename T>
std::vector<std::byte> to_bytes(const T& value) {
  BinaryWriter w;
  value.save(w);
  return w.take();
}

/// Convenience: deserialize a default-constructible value providing
/// `void load(BinaryReader&)`.
template <typename T>
T from_bytes(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  T value;
  value.load(r);
  return value;
}

// --- CRC framing ------------------------------------------------------------
//
// Length+CRC framing shared by the service wire codec (src/svc/wire.hpp)
// and the job journal (src/svc/journal.hpp):
//
//   [u32 magic][u32 payload_len][u32 crc32(payload)][payload bytes]
//
// A frame is either read back whole and intact or rejected: bad magic,
// an oversize length, a truncated payload, and a CRC mismatch all raise
// SerializationError. A torn tail (partial fsync'd append, severed
// socket) therefore reads as a clean error, never as garbage data.

inline constexpr std::size_t kCrcFrameHeaderBytes = 12;

/// Appends one CRC frame to `w`.
void write_crc_frame(BinaryWriter& w, std::uint32_t magic,
                     std::span<const std::byte> payload);

/// Reads and validates one CRC frame, returning the payload bytes.
/// `max_payload` bounds the declared length so a corrupt header cannot
/// trigger a huge allocation. Throws SerializationError on any mismatch.
std::vector<std::byte> read_crc_frame(BinaryReader& r, std::uint32_t magic,
                                      std::size_t max_payload);

/// Parses a CRC frame header from exactly kCrcFrameHeaderBytes bytes and
/// returns {payload_len, expected_crc}. Used by the socket transport,
/// which must learn the payload length before it can read the payload.
std::pair<std::uint32_t, std::uint32_t> parse_crc_frame_header(
    std::span<const std::byte> header, std::uint32_t magic,
    std::size_t max_payload);

/// Validates a payload read separately from its header (socket path).
void check_crc_payload(std::span<const std::byte> payload,
                       std::uint32_t expected_crc);

}  // namespace fixd
