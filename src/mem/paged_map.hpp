// Open-addressing hash map stored entirely inside a PagedHeap.
//
// Why this exists: for copy-on-write checkpoints to pay off, the application
// state must live in COW-snapshottable memory. PagedMap gives the example
// applications (notably the replicated KV store) a realistic mutable data
// structure whose every byte is captured by HeapSnapshot — so a checkpoint
// of a 16 MB store costs page-table copies, not 16 MB of serialization.
//
// K and V must be trivially copyable. Linear probing with tombstones;
// resize at 70% occupancy. All metadata lives in the heap, so the map object
// holds only {allocator, header offset} and survives heap restore untouched.
//
// Header block layout (allocated via HeapAlloc):
//   [0x00] capacity   (u64, power of two)
//   [0x08] live count (u64)
//   [0x10] tombstones (u64)
//   [0x18] slots off  (u64)
// Slot layout (stride = 1 + sizeof(K) + sizeof(V)):
//   [0]            state: 0 empty, 1 full, 2 tombstone
//   [1]            key bytes
//   [1+sizeof(K)]  value bytes
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>

#include "common/hash.hpp"
#include "mem/heap_alloc.hpp"

namespace fixd::mem {

template <typename K, typename V>
  requires std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>
class PagedMap {
 public:
  static constexpr std::uint64_t kHeaderBytes = 0x20;
  static constexpr std::uint64_t kStride = 1 + sizeof(K) + sizeof(V);
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTomb = 2;

  /// Create a fresh map with the given initial capacity (rounded to pow2).
  /// The allocator is held by value (it is a stateless view over the heap).
  static PagedMap create(HeapAlloc alloc, std::uint64_t initial_capacity = 16) {
    std::uint64_t cap = 16;
    while (cap < initial_capacity) cap *= 2;
    std::uint64_t header = alloc.allocate(kHeaderBytes);
    std::uint64_t slots = alloc.allocate(cap * kStride);
    PagedHeap& h = alloc.heap();
    h.store<std::uint64_t>(header + 0x00, cap);
    h.store<std::uint64_t>(header + 0x08, 0);
    h.store<std::uint64_t>(header + 0x10, 0);
    h.store<std::uint64_t>(header + 0x18, slots);
    return PagedMap(alloc, header);
  }

  /// Re-open a map created earlier in this heap (offsets are stable across
  /// snapshot/restore, so callers typically persist `header_offset`).
  static PagedMap open(HeapAlloc alloc, std::uint64_t header_offset) {
    return PagedMap(alloc, header_offset);
  }

  std::uint64_t header_offset() const { return header_; }
  std::uint64_t size() const { return heap().template load<std::uint64_t>(header_ + 0x08); }
  std::uint64_t capacity() const { return heap().template load<std::uint64_t>(header_); }

  /// Insert or overwrite. Returns true if the key was new.
  bool put(const K& key, const V& value) {
    maybe_grow();
    std::uint64_t cap = capacity();
    std::uint64_t slots = slots_off();
    std::uint64_t idx = probe_start(key, cap);
    std::uint64_t first_tomb = kNoSlot;
    for (std::uint64_t step = 0; step < cap; ++step) {
      std::uint64_t off = slots + ((idx + step) & (cap - 1)) * kStride;
      std::uint8_t state = heap().template load<std::uint8_t>(off);
      if (state == kEmpty) {
        std::uint64_t target = (first_tomb != kNoSlot) ? first_tomb : off;
        write_slot(target, key, value, first_tomb != kNoSlot);
        bump_count(+1);
        return true;
      }
      if (state == kTomb) {
        if (first_tomb == kNoSlot) first_tomb = off;
        continue;
      }
      if (key_at(off) == key) {
        heap().store(off + 1 + sizeof(K), value);
        return false;
      }
    }
    // Table full of tombstones; reuse one (guaranteed present here).
    FIXD_CHECK_MSG(first_tomb != kNoSlot, "PagedMap probe exhausted");
    write_slot(first_tomb, key, value, true);
    bump_count(+1);
    return true;
  }

  std::optional<V> get(const K& key) const {
    std::uint64_t cap = capacity();
    std::uint64_t slots = slots_off();
    std::uint64_t idx = probe_start(key, cap);
    for (std::uint64_t step = 0; step < cap; ++step) {
      std::uint64_t off = slots + ((idx + step) & (cap - 1)) * kStride;
      std::uint8_t state = heap().template load<std::uint8_t>(off);
      if (state == kEmpty) return std::nullopt;
      if (state == kFull && key_at(off) == key)
        return heap().template load<V>(off + 1 + sizeof(K));
    }
    return std::nullopt;
  }

  bool contains(const K& key) const { return get(key).has_value(); }

  /// Remove; returns true if present.
  bool erase(const K& key) {
    std::uint64_t cap = capacity();
    std::uint64_t slots = slots_off();
    std::uint64_t idx = probe_start(key, cap);
    for (std::uint64_t step = 0; step < cap; ++step) {
      std::uint64_t off = slots + ((idx + step) & (cap - 1)) * kStride;
      std::uint8_t state = heap().template load<std::uint8_t>(off);
      if (state == kEmpty) return false;
      if (state == kFull && key_at(off) == key) {
        heap().template store<std::uint8_t>(off, kTomb);
        bump_count(-1);
        bump_tombs(+1);
        return true;
      }
    }
    return false;
  }

  /// Visit every live entry. `fn(const K&, const V&)`.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t cap = capacity();
    std::uint64_t slots = slots_off();
    for (std::uint64_t i = 0; i < cap; ++i) {
      std::uint64_t off = slots + i * kStride;
      if (heap().template load<std::uint8_t>(off) == kFull) {
        fn(key_at(off), heap().template load<V>(off + 1 + sizeof(K)));
      }
    }
  }

 private:
  static constexpr std::uint64_t kNoSlot = ~0ull;

  PagedMap(HeapAlloc alloc, std::uint64_t header)
      : alloc_(alloc), header_(header) {}

  PagedHeap& heap() const { return const_cast<HeapAlloc&>(alloc_).heap(); }
  std::uint64_t slots_off() const {
    return heap().template load<std::uint64_t>(header_ + 0x18);
  }
  std::uint64_t tombstones() const {
    return heap().template load<std::uint64_t>(header_ + 0x10);
  }

  static std::uint64_t probe_start(const K& key, std::uint64_t cap) {
    const auto* p = reinterpret_cast<const std::byte*>(&key);
    return hash_bytes({p, sizeof(K)}) & (cap - 1);
  }

  K key_at(std::uint64_t slot_off) const {
    return heap().template load<K>(slot_off + 1);
  }

  void write_slot(std::uint64_t off, const K& key, const V& value,
                  bool was_tomb) {
    heap().template store<std::uint8_t>(off, kFull);
    heap().store(off + 1, key);
    heap().store(off + 1 + sizeof(K), value);
    if (was_tomb) bump_tombs(-1);
  }

  void bump_count(std::int64_t d) {
    heap().template store<std::uint64_t>(header_ + 0x08, size() + d);
  }
  void bump_tombs(std::int64_t d) {
    heap().template store<std::uint64_t>(header_ + 0x10, tombstones() + d);
  }

  void maybe_grow() {
    std::uint64_t cap = capacity();
    if ((size() + tombstones()) * 10 < cap * 7) return;
    std::uint64_t new_cap = cap * 2;
    std::uint64_t old_slots = slots_off();
    std::uint64_t new_slots = alloc_.allocate(new_cap * kStride);
    // Write new geometry, then reinsert from the old slot array.
    heap().template store<std::uint64_t>(header_ + 0x00, new_cap);
    heap().template store<std::uint64_t>(header_ + 0x08, 0);
    heap().template store<std::uint64_t>(header_ + 0x10, 0);
    heap().template store<std::uint64_t>(header_ + 0x18, new_slots);
    for (std::uint64_t i = 0; i < cap; ++i) {
      std::uint64_t off = old_slots + i * kStride;
      if (heap().template load<std::uint8_t>(off) == kFull) {
        K k = key_at(off);
        V v = heap().template load<V>(off + 1 + sizeof(K));
        put_fresh(k, v);
      }
    }
    alloc_.release(old_slots);
  }

  /// Insert into a table known to have free space and no duplicate.
  void put_fresh(const K& key, const V& value) {
    std::uint64_t cap = capacity();
    std::uint64_t slots = slots_off();
    std::uint64_t idx = probe_start(key, cap);
    for (std::uint64_t step = 0; step < cap; ++step) {
      std::uint64_t off = slots + ((idx + step) & (cap - 1)) * kStride;
      if (heap().template load<std::uint8_t>(off) == kEmpty) {
        write_slot(off, key, value, false);
        bump_count(+1);
        return;
      }
    }
    FIXD_CHECK_MSG(false, "put_fresh: no free slot");
  }

  HeapAlloc alloc_;
  std::uint64_t header_;
};

}  // namespace fixd::mem
