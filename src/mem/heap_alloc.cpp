#include "mem/heap_alloc.hpp"

#include <algorithm>
#include <vector>

namespace fixd::mem {

HeapAlloc HeapAlloc::format(PagedHeap& heap) {
  if (heap.size() < kHeaderSize) heap.resize(heap.page_size());
  HeapAlloc a(heap);
  a.write_u64(0x00, kMagic);
  a.write_u64(0x08, kHeaderSize);  // bump
  a.write_u64(0x10, kNull);        // free list
  a.write_u64(0x18, 0);            // live blocks
  return a;
}

HeapAlloc HeapAlloc::attach(PagedHeap& heap) {
  HeapAlloc a(heap);
  FIXD_CHECK_MSG(heap.size() >= kHeaderSize && a.read_u64(0x00) == kMagic,
                 "heap is not formatted for HeapAlloc");
  return a;
}

void HeapAlloc::ensure_capacity(std::uint64_t needed_end) {
  if (needed_end <= heap_->size()) return;
  std::uint64_t target = std::max<std::uint64_t>(heap_->size() * 2,
                                                 heap_->page_size());
  while (target < needed_end) target *= 2;
  heap_->resize(target);
}

std::uint64_t HeapAlloc::allocate(std::uint64_t n) {
  const std::uint64_t size = std::max<std::uint64_t>((n + 7) & ~7ull, 8);

  // First-fit over the free list.
  std::uint64_t prev = kNull;
  std::uint64_t cur = read_u64(0x10);
  while (cur != kNull) {
    std::uint64_t cur_size = read_u64(cur - 8);
    std::uint64_t next = read_u64(cur);
    if (cur_size >= size) {
      if (prev == kNull) {
        write_u64(0x10, next);
      } else {
        write_u64(prev, next);
      }
      heap_->fill_zero(cur, cur_size);
      write_u64(0x18, read_u64(0x18) + 1);
      return cur;
    }
    prev = cur;
    cur = next;
  }

  // Bump allocation.
  std::uint64_t bump = read_u64(0x08);
  std::uint64_t payload = bump + 8;
  ensure_capacity(payload + size);
  write_u64(bump, size);  // header: payload size
  // Fresh space is already zero (heap zero-fills growth).
  write_u64(0x08, payload + size);
  write_u64(0x18, read_u64(0x18) + 1);
  return payload;
}

void HeapAlloc::release(std::uint64_t payload_offset) {
  FIXD_CHECK_MSG(payload_offset >= kHeaderSize + 8 &&
                     payload_offset < heap_->size(),
                 "release: bad offset");
  std::uint64_t head = read_u64(0x10);
  write_u64(payload_offset, head);
  write_u64(0x10, payload_offset);
  std::uint64_t live = read_u64(0x18);
  FIXD_CHECK_MSG(live > 0, "release with zero live blocks");
  write_u64(0x18, live - 1);
}

std::uint64_t HeapAlloc::block_size(std::uint64_t payload_offset) const {
  return read_u64(payload_offset - 8);
}

std::uint64_t HeapAlloc::live_blocks() const { return read_u64(0x18); }
std::uint64_t HeapAlloc::bump() const { return read_u64(0x08); }

}  // namespace fixd::mem
