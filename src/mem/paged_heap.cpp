#include "mem/paged_heap.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/hash.hpp"

namespace fixd::mem {

namespace {

/// Digest of one page's full content, memoized on the page. Pages shared
/// between a heap and its snapshots are immutable (COW discipline), so the
/// cached value stays valid for every holder; concurrent holders may race
/// to fill the memo, which is benign (identical values, atomic fields).
std::uint64_t full_page_digest(const Page& p) {
  if (!p.digest_valid.load(std::memory_order_acquire)) {
    p.digest_cache.store(hash_bytes({p.bytes.data(), p.bytes.size()}),
                         std::memory_order_relaxed);
    p.digest_valid.store(true, std::memory_order_release);
  }
  return p.digest_cache.load(std::memory_order_relaxed);
}

/// Shared digest formula for heaps and snapshots: the logical size followed
/// by one per-page digest for every page covering logical bytes. The last
/// (possibly partial) page is hashed over its logical prefix only and is
/// never cached, so digests stay a function of logical content alone.
std::uint64_t content_digest_impl(std::size_t page_size,
                                  std::uint64_t logical_size,
                                  const std::vector<PagePtr>& pages,
                                  std::uint64_t zero_page_digest,
                                  bool use_cache) {
  Hasher h;
  h.update_u64(logical_size);
  for (std::size_t i = 0; i < pages.size(); ++i) {
    std::uint64_t start = static_cast<std::uint64_t>(i) * page_size;
    if (start >= logical_size) break;
    std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size, logical_size - start));
    std::uint64_t pd;
    if (!pages[i]) {
      pd = (len == page_size && use_cache) ? zero_page_digest
                                           : zeros_digest(len);
    } else if (len == page_size) {
      pd = use_cache ? full_page_digest(*pages[i])
                     : hash_bytes({pages[i]->data(), len});
    } else {
      pd = hash_bytes({pages[i]->data(), len});
    }
    h.update_u64(pd);
  }
  return h.digest();
}

}  // namespace

std::uint64_t zeros_digest(std::size_t len) {
  // Chunked feed of a static zero buffer. The chunk size is a multiple of
  // the Hasher's 8-byte lane, so chunked updates equal one contiguous one.
  static constexpr std::size_t kChunk = 4096;
  static const std::array<std::byte, kChunk> kZeros{};
  Hasher h;
  std::size_t left = len;
  while (left > 0) {
    std::size_t n = std::min(left, kChunk);
    h.update({kZeros.data(), n});
    left -= n;
  }
  return h.digest();
}

std::size_t HeapSnapshot::resident_pages() const {
  std::size_t n = 0;
  for (const auto& p : pages_)
    if (p) ++n;
  return n;
}

std::uint64_t HeapSnapshot::digest() const {
  if (!digest_valid_) {
    digest_cache_ = content_digest_impl(page_size_, logical_size_, pages_,
                                        zero_page_digest_, /*use_cache=*/true);
    digest_valid_ = true;
  }
  return digest_cache_;
}

void HeapSnapshot::share_across_threads() const {
  // Pin the snapshot digest while still single-threaded: after publication
  // several workers may call digest() concurrently, and the plain memo
  // must be read-only by then. The fold below also warms the per-page
  // memos, so remote heaps digest shared pages without re-hashing.
  (void)digest();
  for (const auto& p : pages_) {
    if (p) p->shared_xt.mark();
  }
}

void HeapSnapshot::save(BinaryWriter& w) const {
  w.write_varint(page_size_);
  w.write_varint(logical_size_);
  w.write_varint(pages_.size());
  for (const auto& p : pages_) {
    if (p) {
      w.write_bool(true);
      w.write_raw({p->data(), p->size()});
    } else {
      w.write_bool(false);
    }
  }
}

PagedHeap::PagedHeap(std::size_t page_size) : page_size_(page_size) {
  FIXD_CHECK_MSG(page_size_ >= 16, "page size too small");
  zero_page_digest_ = zeros_digest(page_size_);
}

void PagedHeap::resize(std::uint64_t new_size) {
  std::size_t new_pages =
      static_cast<std::size_t>((new_size + page_size_ - 1) / page_size_);
  if (new_size < logical_size_) {
    // Zero the now-dead tail of the last surviving page so that content
    // digests are a function of logical content only.
    if (new_pages > 0 && new_size % page_size_ != 0) {
      std::size_t last = new_pages - 1;
      if (last < pages_.size() && pages_[last]) {
        Page& p = own_page(last);
        std::size_t keep = static_cast<std::size_t>(new_size % page_size_);
        std::fill(p.bytes.begin() + keep, p.bytes.end(), std::byte{0});
      }
    }
  }
  pages_.resize(new_pages);
  logical_size_ = new_size;
  digest_valid_ = false;
}

void PagedHeap::read(std::uint64_t offset, std::span<std::byte> out) const {
  FIXD_CHECK_MSG(offset + out.size() <= logical_size_,
                 "heap read out of bounds");
  std::size_t done = 0;
  while (done < out.size()) {
    std::size_t idx = static_cast<std::size_t>((offset + done) / page_size_);
    std::size_t in_page = static_cast<std::size_t>((offset + done) % page_size_);
    std::size_t n = std::min(out.size() - done, page_size_ - in_page);
    if (pages_[idx]) {
      std::memcpy(out.data() + done, pages_[idx]->data() + in_page, n);
    } else {
      std::memset(out.data() + done, 0, n);
    }
    done += n;
  }
}

Page& PagedHeap::own_page(std::size_t idx) {
  PagePtr& slot = pages_.at(idx);
  if (!slot) {
    slot = std::make_shared<Page>(page_size_);
    ++stats_.pages_materialized;
    ++dirty_since_snapshot_;
  } else if (slot.use_count() > 1 || slot->shared_xt.marked()) {
    // COW clone. The shared_xt arm covers pages that were once published
    // to another thread: even at use_count()==1 an in-place write could
    // race the remote thread's last reads (no happens-before through the
    // refcount), so such pages are immutable forever.
    slot = std::make_shared<Page>(*slot);  // the copy-on-write copy
    ++stats_.pages_cowed;
    stats_.bytes_cowed += page_size_;
    ++dirty_since_snapshot_;
  }
  // The caller is about to mutate: drop both the page digest (covers the
  // uniquely-owned in-place case; fresh/COW copies start invalid anyway)
  // and the whole-heap memo.
  slot->digest_valid.store(false, std::memory_order_relaxed);
  digest_valid_ = false;
  return *slot;
}

void PagedHeap::write(std::uint64_t offset, std::span<const std::byte> in) {
  FIXD_CHECK_MSG(offset + in.size() <= logical_size_,
                 "heap write out of bounds");
  std::size_t done = 0;
  while (done < in.size()) {
    std::size_t idx = static_cast<std::size_t>((offset + done) / page_size_);
    std::size_t in_page = static_cast<std::size_t>((offset + done) % page_size_);
    std::size_t n = std::min(in.size() - done, page_size_ - in_page);
    Page& p = own_page(idx);
    std::memcpy(p.data() + in_page, in.data() + done, n);
    done += n;
  }
}

void PagedHeap::fill_zero(std::uint64_t offset, std::uint64_t len) {
  FIXD_CHECK_MSG(offset + len <= logical_size_, "heap fill out of bounds");
  std::uint64_t done = 0;
  while (done < len) {
    std::size_t idx = static_cast<std::size_t>((offset + done) / page_size_);
    std::size_t in_page = static_cast<std::size_t>((offset + done) % page_size_);
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(len - done, page_size_ - in_page));
    if (in_page == 0 && n == page_size_) {
      // Whole-page zero: drop back to the implicit zero page.
      if (pages_[idx]) {
        pages_[idx].reset();
        ++dirty_since_snapshot_;
        digest_valid_ = false;
      }
    } else if (pages_[idx]) {
      Page& p = own_page(idx);
      std::memset(p.data() + in_page, 0, n);
    }
    done += n;
  }
}

HeapSnapshot PagedHeap::snapshot() {
  HeapSnapshot s;
  s.page_size_ = page_size_;
  s.logical_size_ = logical_size_;
  s.pages_ = pages_;  // shares every page; future writes will COW
  s.zero_page_digest_ = zero_page_digest_;
  if (digest_valid_) {
    s.digest_cache_ = digest_cache_;
    s.digest_valid_ = true;
  }
  ++stats_.snapshots;
  dirty_since_snapshot_ = 0;
  return s;
}

void PagedHeap::restore(const HeapSnapshot& snap) {
  FIXD_CHECK_MSG(snap.page_size_ == page_size_,
                 "snapshot page size mismatch");
  pages_ = snap.pages_;
  logical_size_ = snap.logical_size_;
  if (snap.digest_valid_) {
    digest_cache_ = snap.digest_cache_;
    digest_valid_ = true;
  } else {
    digest_valid_ = false;
  }
  ++stats_.restores;
  dirty_since_snapshot_ = 0;
}

PagedHeap PagedHeap::deep_copy() const {
  PagedHeap out(page_size_);
  out.logical_size_ = logical_size_;
  out.pages_.resize(pages_.size());
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    // Page's copy constructor drops the digest cache: a deep copy serves as
    // the from-scratch baseline in benches and equivalence tests.
    if (pages_[i]) out.pages_[i] = std::make_shared<Page>(*pages_[i]);
  }
  return out;
}

std::uint64_t PagedHeap::digest() const {
  if (!digest_valid_) {
    digest_cache_ = content_digest_impl(page_size_, logical_size_, pages_,
                                        zero_page_digest_, /*use_cache=*/true);
    digest_valid_ = true;
  }
  return digest_cache_;
}

std::uint64_t PagedHeap::digest_uncached() const {
  return content_digest_impl(page_size_, logical_size_, pages_,
                             zero_page_digest_, /*use_cache=*/false);
}

namespace {

/// Static zero block backing comparisons against implicit zero pages.
constexpr std::size_t kZeroBlock = 4096;
const std::array<std::byte, kZeroBlock> kZeroBytes{};

/// True iff `n` bytes at `p` are all zero (chunked memcmp, no allocation).
bool all_zero(const std::byte* p, std::size_t n) {
  while (n > 0) {
    std::size_t c = std::min(n, kZeroBlock);
    if (std::memcmp(p, kZeroBytes.data(), c) != 0) return false;
    p += c;
    n -= c;
  }
  return true;
}

}  // namespace

bool PagedHeap::content_equals(const PagedHeap& other) const {
  if (logical_size_ != other.logical_size_) return false;

  if (page_size_ == other.page_size_) {
    // Page-aligned fast path: shared page pointers are equal by
    // construction (COW never mutates a shared page); warm page digests
    // fast-path the *inequality* direction only — equal digests still
    // byte-compare, so this stays an exact oracle (independent of the
    // digest caches it is used to verify) — and no scratch buffers or
    // full-heap serialization are needed.
    for (std::size_t i = 0; i < pages_.size(); ++i) {
      std::uint64_t start = static_cast<std::uint64_t>(i) * page_size_;
      if (start >= logical_size_) break;
      std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(page_size_, logical_size_ - start));
      const Page* a = pages_[i].get();
      const Page* b = i < other.pages_.size() ? other.pages_[i].get()
                                              : nullptr;
      if (a == b) continue;  // shared page, or both implicit zero
      if (!a || !b) {
        const Page* r = a ? a : b;  // the resident side vs implicit zeros
        if (len == page_size_ &&
            r->digest_valid.load(std::memory_order_acquire) &&
            r->digest_cache.load(std::memory_order_relaxed) !=
                zero_page_digest_) {
          return false;
        }
        if (!all_zero(r->data(), len)) return false;
        continue;
      }
      if (len == page_size_ &&
          a->digest_valid.load(std::memory_order_acquire) &&
          b->digest_valid.load(std::memory_order_acquire) &&
          a->digest_cache.load(std::memory_order_relaxed) !=
              b->digest_cache.load(std::memory_order_relaxed)) {
        return false;
      }
      if (std::memcmp(a->data(), b->data(), len) != 0) return false;
    }
    return true;
  }

  // Mismatched page sizes: stream-compare directly over the underlying
  // pages (zero pages compare against the static zero block).
  std::uint64_t off = 0;
  while (off < logical_size_) {
    std::size_t ia = static_cast<std::size_t>(off / page_size_);
    std::size_t ib = static_cast<std::size_t>(off / other.page_size_);
    std::size_t ra = page_size_ - static_cast<std::size_t>(off % page_size_);
    std::size_t rb = other.page_size_ -
                     static_cast<std::size_t>(off % other.page_size_);
    std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        std::min({ra, rb, kZeroBlock}), logical_size_ - off));
    const Page* a = pages_[ia].get();
    const Page* b = other.pages_[ib].get();
    const std::byte* pa =
        a ? a->data() + static_cast<std::size_t>(off % page_size_)
          : kZeroBytes.data();
    const std::byte* pb =
        b ? b->data() + static_cast<std::size_t>(off % other.page_size_)
          : kZeroBytes.data();
    if (std::memcmp(pa, pb, n) != 0) return false;
    off += n;
  }
  return true;
}

void PagedHeap::save(BinaryWriter& w) const {
  w.write_varint(page_size_);
  w.write_varint(logical_size_);
  w.write_varint(pages_.size());
  for (const auto& p : pages_) {
    if (p) {
      w.write_bool(true);
      w.write_raw({p->data(), p->size()});
    } else {
      w.write_bool(false);
    }
  }
}

void PagedHeap::load(BinaryReader& r) {
  std::size_t ps = static_cast<std::size_t>(r.read_varint());
  FIXD_CHECK_MSG(ps >= 16, "bad serialized page size");
  if (ps != page_size_) {
    page_size_ = ps;
    zero_page_digest_ = zeros_digest(page_size_);
  }
  logical_size_ = r.read_varint();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  pages_.assign(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    if (r.read_bool()) {
      auto span = r.read_raw(page_size_);
      auto page = std::make_shared<Page>(page_size_);
      std::memcpy(page->data(), span.data(), span.size());
      pages_[i] = std::move(page);
    }
  }
  dirty_since_snapshot_ = 0;
  digest_valid_ = false;
}

}  // namespace fixd::mem
