// Paged copy-on-write heap: the substrate for lightweight checkpoints.
//
// The paper's Time Machine relies on "lightweight, incremental checkpoints of
// processes" built with "a copy-on-write mechanism" (§4.2). This class is
// that mechanism, in user space: a byte-addressable heap split into fixed
// pages, where a snapshot copies only the page *table* (shared_ptr per page)
// and writes after a snapshot clone only the touched pages.
//
//   PagedHeap h(4096);
//   h.resize(1 << 20);
//   h.store<std::uint64_t>(0, 42);
//   HeapSnapshot snap = h.snapshot();   // O(#pages) pointer copies
//   h.store<std::uint64_t>(0, 43);      // copies exactly one page
//   h.restore(snap);                    // h.load<std::uint64_t>(0) == 42
//
// Pages may be null, meaning all-zero: sparse heaps snapshot for free.
// A process that keeps its state here gets incremental checkpoints without
// any serialization; processes with out-of-heap state use the full
// serializing checkpointer (ckpt/full.hpp) — Fig. 2's bench compares both.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/sync.hpp"

namespace fixd::mem {

/// One fixed-size page. Immutable once shared (copy-on-write discipline is
/// enforced by PagedHeap: it only mutates pages with use_count()==1).
///
/// Each page carries a lazily computed content digest so that whole-heap
/// digests cost O(pages touched since the last digest), not O(total bytes).
/// Invalidation rides the COW discipline: PagedHeap::own_page is the single
/// funnel through which page bytes are mutated, and it drops the cache; a
/// copied page (COW clone or deep copy) starts with no cache, because a COW
/// clone is about to be written and a deep copy must recompute from scratch.
struct Page {
  explicit Page(std::size_t n, std::byte fill = std::byte{0})
      : bytes(n, fill) {}
  Page(const Page& other) : bytes(other.bytes) {}
  Page& operator=(const Page&) = delete;

  std::size_t size() const { return bytes.size(); }
  std::byte* data() { return bytes.data(); }
  const std::byte* data() const { return bytes.data(); }

  std::vector<std::byte> bytes;
  /// Lazily memoized content digest. Atomic because shared pages may be
  /// digested concurrently by several worker heaps/snapshots (the parallel
  /// explorer); racing fillers store identical values, and the
  /// release-store on `digest_valid` publishes the relaxed value store.
  mutable std::atomic<std::uint64_t> digest_cache{0};
  mutable std::atomic<bool> digest_valid{false};
  /// Set when a snapshot containing this page is published to another
  /// thread (see common/sync.hpp): a marked page is cloned on write even
  /// when use_count() has returned to 1, because the refcount alone cannot
  /// order a remote reader's last read before a local in-place write.
  SharedMark shared_xt;
};
using PagePtr = std::shared_ptr<Page>;

/// Digest of `len` zero bytes, computed without materializing a buffer.
std::uint64_t zeros_digest(std::size_t len);

/// Cheap, immutable snapshot of a heap: shares pages with the live heap.
class HeapSnapshot {
 public:
  HeapSnapshot() = default;

  std::uint64_t logical_size() const { return logical_size_; }
  std::size_t page_size() const { return page_size_; }
  std::size_t page_count() const { return pages_.size(); }

  /// Number of pages actually materialized (non-zero).
  std::size_t resident_pages() const;

  /// The shared page table (null slots are implicit zero pages). Pages are
  /// immutable once shared; exposed read-only for retained-memory
  /// accounting that dedupes by page pointer.
  const std::vector<PagePtr>& pages() const { return pages_; }

  /// Content digest (zero pages hash as zeros). Snapshots are immutable, so
  /// the value is computed once and memoized; the per-page digests it folds
  /// are shared with the live heap via the Page objects themselves.
  std::uint64_t digest() const;

  /// Publish this snapshot across threads: pin the snapshot digest (so the
  /// plain memo is never written after publication) and mark every resident
  /// page, forcing future writers to COW instead of mutating in place.
  /// Idempotent and cheap to repeat (pages re-marked atomically); callers
  /// that hold the snapshot behind a shared checkpoint memoize the call.
  void share_across_threads() const;

  /// Serialize the snapshot's content. The format is identical to
  /// PagedHeap::save, so PagedHeap::load can restore from it — used when a
  /// checkpoint must be materialized for transmission (Fig. 4 protocol).
  void save(BinaryWriter& w) const;

 private:
  friend class PagedHeap;
  std::size_t page_size_ = 0;
  std::uint64_t logical_size_ = 0;
  std::vector<PagePtr> pages_;
  std::uint64_t zero_page_digest_ = 0;  // copied from the heap at snapshot()
  mutable std::uint64_t digest_cache_ = 0;
  mutable bool digest_valid_ = false;
};

/// Counters describing checkpoint work; reset never happens implicitly.
struct HeapStats {
  std::uint64_t pages_cowed = 0;       ///< pages cloned due to copy-on-write
  std::uint64_t bytes_cowed = 0;       ///< bytes copied by those clones
  std::uint64_t pages_materialized = 0;///< zero pages turned into real pages
  std::uint64_t snapshots = 0;         ///< snapshots taken
  std::uint64_t restores = 0;          ///< restores performed
};

/// Byte-addressable heap with page-granular copy-on-write snapshots.
class PagedHeap {
 public:
  static constexpr std::size_t kDefaultPageSize = 4096;

  explicit PagedHeap(std::size_t page_size = kDefaultPageSize);

  std::size_t page_size() const { return page_size_; }
  std::uint64_t size() const { return logical_size_; }
  std::size_t page_count() const { return pages_.size(); }

  /// Grow or shrink the logical size. Growth zero-fills; shrink drops pages.
  void resize(std::uint64_t new_size);

  /// Read `out.size()` bytes starting at `offset`. Bounds checked.
  void read(std::uint64_t offset, std::span<std::byte> out) const;

  /// Write bytes starting at `offset`, cloning shared pages (COW).
  void write(std::uint64_t offset, std::span<const std::byte> in);

  /// Typed load/store of trivially copyable values.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T load(std::uint64_t offset) const {
    T v;
    read(offset, {reinterpret_cast<std::byte*>(&v), sizeof(T)});
    return v;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void store(std::uint64_t offset, const T& v) {
    write(offset, {reinterpret_cast<const std::byte*>(&v), sizeof(T)});
  }

  /// Zero a byte range (may drop whole pages back to the implicit zero page).
  void fill_zero(std::uint64_t offset, std::uint64_t len);

  /// Take an O(#pages) snapshot sharing all current pages.
  HeapSnapshot snapshot();

  /// Restore the heap to a snapshot's exact content (O(#pages) pointer copies).
  void restore(const HeapSnapshot& snap);

  /// Pages mutated (cowed or materialized) since the last snapshot() call.
  std::uint64_t dirty_pages_since_snapshot() const {
    return dirty_since_snapshot_;
  }

  /// Deep copy: every resident page duplicated. This is the "traditional
  /// full checkpoint" baseline against which COW is benchmarked.
  PagedHeap deep_copy() const;

  /// Content digest over logical bytes (zero pages included as zeros).
  /// Incremental: folds per-page digests that are cached on the pages and
  /// invalidated by copy-on-write, so a call after k page mutations hashes
  /// only those k pages. Repeated calls with no mutation are O(1) via a
  /// whole-heap memo. Bit-identical to digest_uncached() by contract
  /// (enforced by tests/test_digest_cache.cpp).
  std::uint64_t digest() const;

  /// From-scratch recompute bypassing every cache. Verification hook for
  /// the invalidation tests and the baseline side of bench/fig9_digest.
  std::uint64_t digest_uncached() const;

  /// True iff both heaps have identical logical content.
  bool content_equals(const PagedHeap& other) const;

  const HeapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Full serialization (used by the full-checkpoint baseline and the
  /// world snapshot). Zero pages are encoded as absent.
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  /// Ensure pages_[idx] exists and is uniquely owned; returns mutable page.
  Page& own_page(std::size_t idx);

  std::size_t page_size_;
  std::uint64_t logical_size_ = 0;
  std::vector<PagePtr> pages_;
  std::uint64_t dirty_since_snapshot_ = 0;
  HeapStats stats_;
  /// Digest of one all-zero page, precomputed at construction so sparse
  /// heaps never hash (or allocate) a scratch zero page per digest call.
  std::uint64_t zero_page_digest_ = 0;
  mutable std::uint64_t digest_cache_ = 0;
  mutable bool digest_valid_ = false;
};

}  // namespace fixd::mem
