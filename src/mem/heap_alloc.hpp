// A simple allocator whose metadata lives *inside* a PagedHeap.
//
// Checkpoint correctness requires that restoring a heap snapshot restores the
// allocator too; keeping the bump pointer and free list in heap memory makes
// that automatic — the allocator object itself is stateless apart from the
// heap reference.
//
// Design: 8-byte aligned blocks, a first-fit singly-linked free list, and a
// bump pointer for fresh space. No coalescing (workloads here are
// steady-state hash tables; fragmentation is bounded by block-size reuse,
// and the tests check the free-list reuse path).
//
// Layout:
//   [0x00] magic            (u64)
//   [0x08] bump pointer     (u64)  next never-allocated offset
//   [0x10] free list head   (u64)  0 == empty
//   [0x18] live block count (u64)
//   [0x20...] blocks: payload-size header (u64) followed by the payload.
//             Free blocks store the next-free offset in payload[0..8).
#pragma once

#include <cstdint>

#include "mem/paged_heap.hpp"

namespace fixd::mem {

class HeapAlloc {
 public:
  static constexpr std::uint64_t kMagic = 0x4658444d454d3031ull;  // "FXDMEM01"
  static constexpr std::uint64_t kHeaderSize = 0x20;
  static constexpr std::uint64_t kNull = 0;

  /// Initialize allocator metadata in a (fresh or reused) heap.
  static HeapAlloc format(PagedHeap& heap);

  /// Attach to a heap previously formatted (e.g. after restore or load).
  static HeapAlloc attach(PagedHeap& heap);

  /// Allocate `n` payload bytes (rounded up to 8); returns payload offset.
  /// The payload is zero-filled.
  std::uint64_t allocate(std::uint64_t n);

  /// Release a block previously returned by allocate().
  void release(std::uint64_t payload_offset);

  /// Payload size of a live or free block.
  std::uint64_t block_size(std::uint64_t payload_offset) const;

  std::uint64_t live_blocks() const;
  std::uint64_t bump() const;

  PagedHeap& heap() { return *heap_; }
  const PagedHeap& heap() const { return *heap_; }

 private:
  explicit HeapAlloc(PagedHeap& heap) : heap_(&heap) {}

  std::uint64_t read_u64(std::uint64_t off) const {
    return heap_->load<std::uint64_t>(off);
  }
  void write_u64(std::uint64_t off, std::uint64_t v) {
    heap_->store<std::uint64_t>(off, v);
  }
  void ensure_capacity(std::uint64_t needed_end);

  PagedHeap* heap_;
};

}  // namespace fixd::mem
