// fixdd RPC client: deadline + jittered-backoff retries + graceful
// degradation.
//
// Retry contract (docs/SERVICE.md):
//   * Every attempt gets its own connection and a per-attempt deadline.
//     A timed-out attempt abandons its connection (the daemon sees EOF),
//     so a dropped response can never wedge either side.
//   * Backoff between attempts is exponential with deterministic jitter
//     — hash_combine(jitter_seed, attempt) mapped to [0.5, 1.5) — so
//     tests replay exact retry schedules and a thundering herd of
//     clients with distinct seeds decorrelates.
//   * A total budget bounds the whole call. Exhausting attempts or the
//     budget throws TimeoutError — which submit_and_wait_or_degrade
//     catches to run the investigation in-process instead (graceful
//     degradation, flagged `degraded`, never an error).
//   * Safe to retry by design: requests carry the idempotency request_id,
//     so a retried submit whose first try actually executed returns the
//     same job (`duplicate=true`) instead of double-running.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "svc/jobd.hpp"
#include "svc/transport.hpp"
#include "svc/wire.hpp"

namespace fixd::svc {

struct RetryPolicy {
  std::uint32_t max_attempts = 5;
  std::uint64_t rpc_timeout_ms = 1000;  ///< per-attempt deadline
  std::uint64_t base_backoff_ms = 5;
  std::uint64_t max_backoff_ms = 200;
  std::uint64_t total_budget_ms = 5000;  ///< whole-call ceiling
  std::uint64_t jitter_seed = 1;
};

/// Backoff before attempt `attempt` (1-based; attempt 1 has none).
/// Deterministic in (policy, attempt). Exposed for tests.
std::uint64_t backoff_ms(const RetryPolicy& p, std::uint32_t attempt);

class Client {
 public:
  Client(Endpoint ep, RetryPolicy policy)
      : ep_(std::move(ep)), policy_(policy) {}

  /// One RPC with the full retry ladder. Throws TimeoutError when the
  /// budget/attempts are exhausted without a response.
  Response call(Request req);

  /// Number of attempts the last call() used (observability/tests).
  std::uint32_t last_attempts() const { return last_attempts_; }

  const RetryPolicy& policy() const { return policy_; }
  const Endpoint& endpoint() const { return ep_; }

 private:
  Endpoint ep_;
  RetryPolicy policy_;
  std::uint32_t last_attempts_ = 0;
};

/// Outcome of the submit→poll→result ladder, degraded or not.
struct InvestigationOutcome {
  JobResultMsg result;
  bool degraded = false;  ///< daemon unreachable; ran in-process
  std::string degraded_reason;
};

/// Submit `spec` to the daemon and wait for the result, falling back to an
/// in-process run (same run_investigation code — results are comparable by
/// construction) when the daemon is unreachable past the retry budget.
/// `request_id` is the idempotency token: reusing one never double-runs.
/// `poll_interval_ms` paces the status/result polling loop.
InvestigationOutcome submit_and_wait_or_degrade(
    Client& client, const ScenarioRegistry& registry, const JobSpec& spec,
    std::uint64_t request_id, std::uint64_t poll_interval_ms = 20,
    std::uint64_t wait_budget_ms = 60000);

}  // namespace fixd::svc
