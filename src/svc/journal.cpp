#include "svc/journal.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <set>

namespace fixd::svc {

namespace {

std::filesystem::path wal_path(const std::filesystem::path& dir,
                               std::uint64_t job_id) {
  return dir / ("job-" + std::to_string(job_id) + ".wal");
}

std::filesystem::path run_path(const std::filesystem::path& dir,
                               std::uint64_t job_id, std::uint64_t seq) {
  return dir / ("job-" + std::to_string(job_id) + "-ckpt-" +
                std::to_string(seq) + ".run");
}

}  // namespace

void RunManifest::save(BinaryWriter& w) const {
  w.write_string(file);
  w.write_u64(count);
  w.write_pod_vector(fence);
}

void RunManifest::load(BinaryReader& r) {
  file = r.read_string();
  count = r.read_u64();
  fence = r.read_pod_vector<std::uint64_t>();
}

void JournalRecord::save(BinaryWriter& w) const {
  w.write_u8(static_cast<std::uint8_t>(type));
  switch (type) {
    case JournalRecordType::kSubmitted:
      w.write_u64(request_id);
      w.write_u64(job_id);
      spec.save(w);
      break;
    case JournalRecordType::kAttemptStarted:
      w.write_u32(generation);
      break;
    case JournalRecordType::kCheckpoint:
      w.write_u64(checkpoint_seq);
      visited.save(w);
      w.write_vector(frontier, [](BinaryWriter& ww, const mc::Trail& t) {
        t.save(ww);
      });
      stats.save(w);
      w.write_vector(violations,
                     [](BinaryWriter& ww, const mc::SysViolation& v) {
                       v.save(ww);
                     });
      break;
    case JournalRecordType::kCompleted:
      result.save(w);
      break;
    case JournalRecordType::kCancelled:
      break;
  }
}

void JournalRecord::load(BinaryReader& r) {
  const std::uint8_t t = r.read_u8();
  if (t > static_cast<std::uint8_t>(JournalRecordType::kCancelled)) {
    throw SerializationError("journal: bad record type " + std::to_string(t));
  }
  type = static_cast<JournalRecordType>(t);
  switch (type) {
    case JournalRecordType::kSubmitted:
      request_id = r.read_u64();
      job_id = r.read_u64();
      spec.load(r);
      break;
    case JournalRecordType::kAttemptStarted:
      generation = r.read_u32();
      break;
    case JournalRecordType::kCheckpoint:
      checkpoint_seq = r.read_u64();
      visited.load(r);
      frontier = r.read_vector<mc::Trail>([](BinaryReader& rr) {
        mc::Trail tr;
        tr.load(rr);
        return tr;
      });
      stats.load(r);
      violations = r.read_vector<mc::SysViolation>([](BinaryReader& rr) {
        mc::SysViolation v;
        v.load(rr);
        return v;
      });
      break;
    case JournalRecordType::kCompleted:
      result.load(r);
      break;
    case JournalRecordType::kCancelled:
      break;
  }
}

JobJournal::JobJournal(std::filesystem::path dir, std::uint64_t job_id)
    : dir_(std::move(dir)), path_(wal_path(dir_, job_id)), job_id_(job_id) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw IoError("journal: create_directories " + dir_.string(), ec.value());
  }
  errno = 0;
  f_ = std::fopen(path_.c_str(), "ab");
  if (f_ == nullptr) {
    throw IoError("journal: open " + path_.string(), errno);
  }
}

JobJournal::~JobJournal() {
  if (f_ != nullptr) std::fclose(f_);
}

void JobJournal::append(const JournalRecord& rec) {
  BinaryWriter payload;
  rec.save(payload);
  BinaryWriter frame;
  write_crc_frame(frame, kJournalMagic, payload.bytes());
  const auto bytes = frame.bytes();
  io_detail::checked_fwrite(bytes.data(), bytes.size(), f_, path_,
                            "journal append");
  io_detail::flush_and_sync(f_, path_);
}

RunManifest JobJournal::write_visited_run(
    std::uint64_t checkpoint_seq, const std::vector<std::uint64_t>& keys) {
  const std::filesystem::path p = run_path(dir_, job_id_, checkpoint_seq);
  SortedRunWriter writer(p);
  if (!keys.empty()) writer.append(keys.data(), keys.size());
  SortedRunWriter::Finished fin = writer.finish();
  RunManifest m;
  m.file = p.filename().string();
  m.count = fin.count;
  m.fence = std::move(fin.fence);
  return m;
}

std::vector<std::uint64_t> JobJournal::load_visited_run(
    const RunManifest& m) const {
  SortedRunReader reader(dir_ / m.file, m.fence);
  return reader.read_all();
}

void JobJournal::remove_files(const std::filesystem::path& dir,
                              std::uint64_t job_id) {
  std::error_code ec;
  const std::string stem = "job-" + std::to_string(job_id);
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == stem + ".wal" ||
        (name.rfind(stem + "-ckpt-", 0) == 0 &&
         name.size() > 4 && name.substr(name.size() - 4) == ".run")) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::optional<RecoveredJob> recover_job(const std::filesystem::path& dir,
                                        std::uint64_t job_id) {
  const std::filesystem::path p = wal_path(dir, job_id);
  errno = 0;
  std::FILE* f = std::fopen(p.c_str(), "rb");
  if (f == nullptr) return std::nullopt;

  RecoveredJob out;
  out.job_id = job_id;
  bool saw_submitted = false;
  std::set<std::uint64_t> submitted_ids;

  for (;;) {
    std::array<std::byte, kCrcFrameHeaderBytes> header;
    const std::size_t got = std::fread(header.data(), 1, header.size(), f);
    if (got != header.size()) break;  // clean end or torn header: stop
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    try {
      const auto parsed =
          parse_crc_frame_header(header, kJournalMagic, kMaxFramePayload);
      len = parsed.first;
      crc = parsed.second;
    } catch (const SerializationError&) {
      break;  // garbled header: treat as torn tail
    }
    std::vector<std::byte> payload(len);
    if (len > 0 && std::fread(payload.data(), 1, len, f) != len) {
      break;  // payload torn mid-frame
    }
    JournalRecord rec;
    try {
      check_crc_payload(payload, crc);
      BinaryReader r(payload);
      rec.load(r);
    } catch (const SerializationError&) {
      break;  // CRC mismatch or truncated encoding: torn tail
    }

    switch (rec.type) {
      case JournalRecordType::kSubmitted:
        if (!submitted_ids.insert(rec.request_id).second || saw_submitted) {
          std::fclose(f);
          throw SerializationError(
              "journal: duplicate kSubmitted for request " +
              std::to_string(rec.request_id) + " in job " +
              std::to_string(job_id) + " — idempotency ledger violated");
        }
        saw_submitted = true;
        out.request_id = rec.request_id;
        out.spec = rec.spec;
        break;
      case JournalRecordType::kAttemptStarted:
        ++out.attempts;
        break;
      case JournalRecordType::kCheckpoint:
        out.last_checkpoint = std::move(rec);
        ++out.checkpoints;
        break;
      case JournalRecordType::kCompleted:
        out.result = std::move(rec.result);
        break;
      case JournalRecordType::kCancelled:
        out.cancelled = true;
        break;
    }
  }
  std::fclose(f);
  if (!saw_submitted) return std::nullopt;
  return out;
}

std::vector<std::uint64_t> list_journaled_jobs(
    const std::filesystem::path& dir) {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("job-", 0) == 0 &&
        name.size() > 8 && name.substr(name.size() - 4) == ".wal") {
      try {
        out.push_back(std::stoull(name.substr(4, name.size() - 8)));
      } catch (const std::exception&) {
        // not ours; skip
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fixd::svc
