#include "svc/wire.hpp"

namespace fixd::svc {

const char* to_string(RpcKind k) {
  switch (k) {
    case RpcKind::kPing:
      return "ping";
    case RpcKind::kSubmit:
      return "submit";
    case RpcKind::kStatus:
      return "status";
    case RpcKind::kCancel:
      return "cancel";
    case RpcKind::kResult:
      return "result";
    case RpcKind::kTailLog:
      return "tail-log";
    case RpcKind::kShutdown:
      return "shutdown";
  }
  return "?";
}

const char* to_string(RpcStatus s) {
  switch (s) {
    case RpcStatus::kOk:
      return "ok";
    case RpcStatus::kNotFound:
      return "not-found";
    case RpcStatus::kBadRequest:
      return "bad-request";
    case RpcStatus::kRetryLater:
      return "retry-later";
    case RpcStatus::kShuttingDown:
      return "shutting-down";
    case RpcStatus::kError:
      return "error";
  }
  return "?";
}

const char* to_string(JobPhase p) {
  switch (p) {
    case JobPhase::kQueued:
      return "queued";
    case JobPhase::kRunning:
      return "running";
    case JobPhase::kDone:
      return "done";
    case JobPhase::kFailed:
      return "failed";
    case JobPhase::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

template <typename E>
E checked_enum(std::uint8_t raw, E max, const char* what) {
  if (raw > static_cast<std::uint8_t>(max)) {
    throw SerializationError(std::string(what) + ": bad tag " +
                             std::to_string(raw));
  }
  return static_cast<E>(raw);
}

}  // namespace

void JobSpec::save(BinaryWriter& w) const {
  w.write_string(scenario);
  w.write_u32(n);
  w.write_u32(static_cast<std::uint32_t>(version));
  w.write_u8(static_cast<std::uint8_t>(order));
  w.write_bool(trail_frontier);
  w.write_u32(workers);
  w.write_u64(max_states);
  w.write_u32(max_depth);
  w.write_u64(max_violations);
  w.write_u64(seed);
  w.write_bool(model_message_loss);
  w.write_bool(model_message_duplication);
  w.write_u64(checkpoint_states);
}

void JobSpec::load(BinaryReader& r) {
  scenario = r.read_string();
  n = r.read_u32();
  version = static_cast<std::int32_t>(r.read_u32());
  order = checked_enum(r.read_u8(), mc::SearchOrder::kRandomWalk,
                       "JobSpec.order");
  trail_frontier = r.read_bool();
  workers = r.read_u32();
  max_states = r.read_u64();
  max_depth = r.read_u32();
  max_violations = r.read_u64();
  seed = r.read_u64();
  model_message_loss = r.read_bool();
  model_message_duplication = r.read_bool();
  checkpoint_states = r.read_u64();
}

void JobStatusMsg::save(BinaryWriter& w) const {
  w.write_u64(job_id);
  w.write_u8(static_cast<std::uint8_t>(phase));
  w.write_u32(attempts);
  w.write_u64(states);
  w.write_u64(transitions);
  w.write_u64(violations);
  w.write_u64(checkpoints);
  w.write_bool(resumed);
  w.write_string(error);
}

void JobStatusMsg::load(BinaryReader& r) {
  job_id = r.read_u64();
  phase = checked_enum(r.read_u8(), JobPhase::kCancelled, "JobStatusMsg.phase");
  attempts = r.read_u32();
  states = r.read_u64();
  transitions = r.read_u64();
  violations = r.read_u64();
  checkpoints = r.read_u64();
  resumed = r.read_bool();
  error = r.read_string();
}

void JobResultMsg::save(BinaryWriter& w) const {
  w.write_u64(job_id);
  w.write_bool(complete);
  w.write_bool(degraded);
  w.write_bool(resumed);
  w.write_u32(attempts);
  stats.save(w);
  w.write_vector(violations, [](BinaryWriter& ww, const mc::SysViolation& v) {
    v.save(ww);
  });
  w.write_u64(visited_count);
  w.write_u64(visited_digest);
  w.write_u64(trail_digest);
}

void JobResultMsg::load(BinaryReader& r) {
  job_id = r.read_u64();
  complete = r.read_bool();
  degraded = r.read_bool();
  resumed = r.read_bool();
  attempts = r.read_u32();
  stats.load(r);
  violations = r.read_vector<mc::SysViolation>([](BinaryReader& rr) {
    mc::SysViolation v;
    v.load(rr);
    return v;
  });
  visited_count = r.read_u64();
  visited_digest = r.read_u64();
  trail_digest = r.read_u64();
}

void Request::save(BinaryWriter& w) const {
  w.write_u64(request_id);
  w.write_u64(deadline_ms);
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_u64(job_id);
  w.write_u64(arg);
  spec.save(w);
}

void Request::load(BinaryReader& r) {
  request_id = r.read_u64();
  deadline_ms = r.read_u64();
  kind = checked_enum(r.read_u8(), RpcKind::kShutdown, "Request.kind");
  job_id = r.read_u64();
  arg = r.read_u64();
  spec.load(r);
}

void Response::save(BinaryWriter& w) const {
  w.write_u64(request_id);
  w.write_u8(static_cast<std::uint8_t>(status));
  w.write_string(error);
  w.write_u64(job_id);
  w.write_bool(duplicate);
  status_msg.save(w);
  result.save(w);
  w.write_vector(log_lines, [](BinaryWriter& ww, const std::string& s) {
    ww.write_string(s);
  });
}

void Response::load(BinaryReader& r) {
  request_id = r.read_u64();
  status = checked_enum(r.read_u8(), RpcStatus::kError, "Response.status");
  error = r.read_string();
  job_id = r.read_u64();
  duplicate = r.read_bool();
  status_msg.load(r);
  result.load(r);
  log_lines = r.read_vector<std::string>(
      [](BinaryReader& rr) { return rr.read_string(); });
}

}  // namespace fixd::svc
