#include "svc/jobd.hpp"

#include <algorithm>
#include <chrono>

#include "apps/leader_election.hpp"
#include "apps/token_ring.hpp"
#include "apps/two_phase_commit.hpp"
#include "common/hash.hpp"
#include "rt/world.hpp"

namespace fixd::svc {

// ---------------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------------

void ScenarioRegistry::add(ScenarioFamily fam) {
  fams_[fam.name] = std::move(fam);
}

const ScenarioFamily* ScenarioRegistry::find(const std::string& name) const {
  const auto it = fams_.find(name);
  return it == fams_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(fams_.size());
  for (const auto& [k, v] : fams_) out.push_back(k);
  return out;
}

ScenarioRegistry ScenarioRegistry::with_builtins() {
  ScenarioRegistry reg;
  reg.add({"two-pc",
           [](std::uint32_t n, std::int32_t version) {
             apps::TwoPcConfig cfg;
             cfg.total_txns = 1;  // bounded state space per job
             return apps::make_two_pc_world(n, version, cfg);
           },
           apps::install_two_pc_invariants});
  reg.add({"token-ring",
           [](std::uint32_t n, std::int32_t version) {
             apps::TokenRingConfig cfg;
             cfg.target_rounds = 1;
             return apps::make_token_ring_world(n, version, cfg);
           },
           apps::install_token_ring_invariants});
  reg.add({"election",
           [](std::uint32_t n, std::int32_t version) {
             return apps::make_election_world(n, version);
           },
           apps::install_election_invariants});
  return reg;
}

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

std::uint64_t visited_digest(const std::vector<std::uint64_t>& visited) {
  Hasher h;
  h.update_u64(visited.size());
  for (const std::uint64_t v : visited) h.update_u64(v);
  return h.digest();
}

std::uint64_t trail_digest(const std::vector<mc::SysViolation>& violations,
                           std::uint32_t workers) {
  if (workers <= 1) {
    // Sequential searches produce a fully deterministic ordered trail
    // list: digest everything, order-sensitively.
    Hasher h;
    h.update_u64(violations.size());
    for (const mc::SysViolation& v : violations) {
      h.update_string(v.violation.to_string());
      h.update_string(v.trail.render());
      h.update_u64(v.depth);
    }
    return h.digest();
  }
  // Parallel searches: the violation multiset is deterministic, the trail
  // taken to each violation is not. Digest the sorted identity records.
  std::vector<std::string> records;
  records.reserve(violations.size());
  for (const mc::SysViolation& v : violations) {
    records.push_back(v.violation.invariant + "|" +
                      std::to_string(v.violation.pid) + "|" +
                      v.violation.detail);
  }
  std::sort(records.begin(), records.end());
  Hasher h;
  h.update_u64(records.size());
  for (const std::string& r : records) h.update_string(r);
  return h.digest();
}

// ---------------------------------------------------------------------------
// Sliced investigation runner
// ---------------------------------------------------------------------------

namespace {

/// Merge one slice's stats into the job's accumulated stats. Counters sum;
/// peaks max; end-of-run gauges take the latest slice's value.
void accumulate_stats(mc::ExploreStats& acc, const mc::ExploreStats& s) {
  acc.states += s.states;
  acc.transitions += s.transitions;
  acc.duplicates += s.duplicates;
  acc.max_depth = std::max(acc.max_depth, s.max_depth);
  acc.truncated = acc.truncated || s.truncated;
  acc.wall_ms += s.wall_ms;
  acc.digest_ms += s.digest_ms;
  acc.snapshot_ms += s.snapshot_ms;
  acc.peak_frontier_bytes = std::max(acc.peak_frontier_bytes,
                                     s.peak_frontier_bytes);
  acc.peak_frontier_bytes_max_worker = std::max(
      acc.peak_frontier_bytes_max_worker, s.peak_frontier_bytes_max_worker);
  acc.visited_resident_bytes = s.visited_resident_bytes;
  acc.visited_peak_resident_bytes = std::max(acc.visited_peak_resident_bytes,
                                             s.visited_peak_resident_bytes);
  acc.visited_spilled_bytes = s.visited_spilled_bytes;
  acc.spilled_bytes += s.spilled_bytes;
  acc.bloom_fp_rate = s.bloom_fp_rate;
  acc.anchor_evictions += s.anchor_evictions;
  acc.anchor_recomputes += s.anchor_recomputes;
  acc.replayed_actions += s.replayed_actions;
  acc.workers = std::max(acc.workers, s.workers);
  acc.steals += s.steals;
  acc.sleep_reexpansions += s.sleep_reexpansions;
  acc.por_deferred += s.por_deferred;
  acc.por_backtracks += s.por_backtracks;
}

mc::SysExploreOptions options_for(const ScenarioFamily& fam,
                                  const JobSpec& spec) {
  mc::SysExploreOptions o;
  o.order = spec.order;
  o.trail_frontier = spec.trail_frontier;
  o.anchor_interval = 4;
  o.workers = spec.workers;
  o.max_depth = spec.max_depth;
  o.seed = spec.seed;
  o.model_message_loss = spec.model_message_loss;
  o.model_message_duplication = spec.model_message_duplication;
  o.dedup = true;
  o.collect_visited = true;
  o.install_invariants = fam.install_invariants;
  return o;
}

}  // namespace

JobResultMsg run_investigation(const ScenarioFamily& fam, const JobSpec& spec,
                               const CheckpointState* resume,
                               const RunCallbacks& cb) {
  if (spec.order != mc::SearchOrder::kBfs &&
      spec.order != mc::SearchOrder::kDfs) {
    throw ConfigError("job: only bfs/dfs searches are sliceable");
  }
  std::unique_ptr<rt::World> world = fam.make(spec.n, spec.version);

  CheckpointState state;
  if (resume != nullptr) state = *resume;

  JobResultMsg out;
  out.resumed = resume != nullptr && state.slices > 0;

  for (;;) {
    if (cb.should_cancel && cb.should_cancel()) {
      // Abandoned mid-run: report what has accumulated, not complete.
      break;
    }
    mc::SysExploreOptions iopts = options_for(fam, spec);

    // Remaining budgets for this slice. The accumulated `states` counter
    // matches the uninterrupted run's exactly (resume preseeds are not
    // re-counted), so remaining = spec budget - accumulated.
    if (state.stats.states >= spec.max_states ||
        state.violations.size() >= spec.max_violations) {
      break;
    }
    iopts.max_states = spec.max_states - state.stats.states;
    iopts.max_violations = spec.max_violations - state.violations.size();

    // Pause roughly every checkpoint_states newly-visited states. The
    // threshold is per-slice (each slice's stats start at zero), so every
    // slice is guaranteed forward progress before it can pause.
    if (spec.checkpoint_states > 0) {
      const std::uint64_t threshold = spec.checkpoint_states;
      iopts.pause_check = [threshold](const mc::ExploreStats& s) {
        return s.states >= threshold;
      };
      iopts.capture_frontier = true;
    }

    if (state.slices > 0) {
      iopts.resume_from_checkpoint = true;
      iopts.resume_visited = state.visited;
      iopts.resume_frontier = state.frontier;
    }

    mc::SystemExplorer explorer(*world, iopts);
    mc::SysExploreResult res = explorer.explore();

    // res.visited is the FULL visited set (preseed included), already
    // sorted; the per-slice stats cover only this slice's new work.
    state.visited = std::move(res.visited);
    state.frontier = std::move(res.frontier);
    accumulate_stats(state.stats, res.stats);
    for (mc::SysViolation& v : res.violations) {
      state.violations.push_back(std::move(v));
    }
    ++state.slices;

    if (cb.heartbeat) cb.heartbeat();

    if (!res.paused || state.frontier.empty()) {
      // Terminal: the search completed (or hit a budget / filled its
      // violation quota). A pause with an empty frontier is completion —
      // there is nothing left to expand.
      out.complete = true;
      break;
    }

    if (cb.on_checkpoint && !cb.on_checkpoint(state)) {
      // Fenced (a newer attempt owns the job) or draining: stop quietly.
      break;
    }
  }

  out.stats = state.stats;
  out.violations = std::move(state.violations);
  out.visited_count = state.visited.size();
  out.visited_digest = svc::visited_digest(state.visited);
  out.trail_digest = svc::trail_digest(out.violations, spec.workers);
  return out;
}

// ---------------------------------------------------------------------------
// JobManager
// ---------------------------------------------------------------------------

JobManager::JobManager(ScenarioRegistry registry, JobManagerOptions opts,
                       LogRing* log)
    : registry_(std::move(registry)), opts_(std::move(opts)), log_(log) {
  std::error_code ec;
  std::filesystem::create_directories(opts_.state_dir, ec);
  if (ec) {
    throw IoError("jobd: create state dir " + opts_.state_dir.string(),
                  ec.value());
  }
  const std::uint32_t n = std::max<std::uint32_t>(1, opts_.worker_threads);
  workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

JobManager::~JobManager() { shutdown(); }

void JobManager::log_event(LogLevel level, const std::string& msg) {
  if (log_ != nullptr) log_->append(level, msg);
}

SubmitOutcome JobManager::submit(std::uint64_t request_id,
                                 const JobSpec& spec) {
  if (registry_.find(spec.scenario) == nullptr) {
    throw ConfigError("jobd: unknown scenario '" + spec.scenario + "'");
  }
  std::unique_lock<std::mutex> lk(mu_);
  // Idempotency ledger first: a retried submit maps to the original job,
  // no second execution, ever.
  if (const auto it = request_ledger_.find(request_id);
      it != request_ledger_.end()) {
    return {it->second, /*duplicate=*/true};
  }
  const std::uint64_t id = next_job_id_++;
  Job& job = jobs_[id];
  job.id = id;
  job.request_id = request_id;
  job.spec = spec;
  job.phase = JobPhase::kQueued;
  job.journal = std::make_unique<JobJournal>(opts_.state_dir, id);
  JournalRecord rec;
  rec.type = JournalRecordType::kSubmitted;
  rec.request_id = request_id;
  rec.job_id = id;
  rec.spec = spec;
  job.journal->append(rec);  // durable before acknowledged
  request_ledger_[request_id] = id;
  queue_.push_back(id);
  log_event(LogLevel::kInfo, "job " + std::to_string(id) + " submitted (" +
                                 spec.scenario + " n=" +
                                 std::to_string(spec.n) + " v=" +
                                 std::to_string(spec.version) + ")");
  cv_.notify_one();
  return {id, /*duplicate=*/false};
}

std::optional<JobStatusMsg> JobManager::status(std::uint64_t job_id) const {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = it->second;
  JobStatusMsg msg;
  msg.job_id = job.id;
  msg.phase = job.phase;
  msg.attempts = job.attempts;
  msg.states = job.ckpt.stats.states;
  msg.transitions = job.ckpt.stats.transitions;
  msg.violations = job.ckpt.violations.size();
  msg.checkpoints = job.checkpoints;
  msg.resumed = job.resumed;
  msg.error = job.error;
  if (job.result) {
    msg.states = job.result->stats.states;
    msg.transitions = job.result->stats.transitions;
    msg.violations = job.result->violations.size();
  }
  return msg;
}

bool JobManager::cancel(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  Job& job = it->second;
  if (job.phase == JobPhase::kDone || job.phase == JobPhase::kFailed ||
      job.phase == JobPhase::kCancelled) {
    return true;  // already terminal; cancel is idempotent
  }
  job.cancel_requested = true;
  if (job.phase == JobPhase::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), job_id),
                 queue_.end());
    job.phase = JobPhase::kCancelled;
    JournalRecord rec;
    rec.type = JournalRecordType::kCancelled;
    job.journal->append(rec);
  }
  log_event(LogLevel::kInfo, "job " + std::to_string(job_id) + " cancel " +
                                 (job.phase == JobPhase::kCancelled
                                      ? "(immediate)"
                                      : "requested"));
  return true;
}

std::optional<JobResultMsg> JobManager::result(std::uint64_t job_id) const {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || !it->second.result) return std::nullopt;
  return it->second.result;
}

std::size_t JobManager::recover() {
  std::vector<std::uint64_t> requeued;
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (const std::uint64_t id : list_journaled_jobs(opts_.state_dir)) {
      if (jobs_.count(id) != 0) continue;
      std::optional<RecoveredJob> rec = recover_job(opts_.state_dir, id);
      if (!rec) continue;
      Job& job = jobs_[id];
      job.id = id;
      job.request_id = rec->request_id;
      job.spec = rec->spec;
      job.attempts = rec->attempts;
      job.checkpoints = rec->checkpoints;
      job.journal = std::make_unique<JobJournal>(opts_.state_dir, id);
      request_ledger_[rec->request_id] = id;
      next_job_id_ = std::max(next_job_id_, id + 1);
      if (rec->result) {
        job.phase = rec->cancelled ? JobPhase::kCancelled : JobPhase::kDone;
        job.result = std::move(rec->result);
        continue;
      }
      if (rec->cancelled) {
        job.phase = JobPhase::kCancelled;
        continue;
      }
      if (rec->last_checkpoint) {
        JournalRecord& ck = *rec->last_checkpoint;
        job.ckpt.visited = job.journal->load_visited_run(ck.visited);
        job.ckpt.frontier = std::move(ck.frontier);
        job.ckpt.stats = ck.stats;
        job.ckpt.violations = std::move(ck.violations);
        job.ckpt.slices = ck.checkpoint_seq + 1;
        job.has_ckpt = true;
      }
      job.phase = JobPhase::kQueued;
      job.resumed = true;
      queue_.push_back(id);
      requeued.push_back(id);
    }
    cv_.notify_all();
  }
  for (const std::uint64_t id : requeued) {
    log_event(LogLevel::kInfo,
              "job " + std::to_string(id) + " recovered from journal" +
                  " and requeued");
  }
  return requeued.size();
}

std::size_t JobManager::supervise_tick() {
  std::vector<std::uint64_t> expired;
  {
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t now = now_ms();
    for (auto& [id, job] : jobs_) {
      if (job.phase != JobPhase::kRunning || !job.running) continue;
      if (now - job.last_heartbeat <= opts_.lease_ms) continue;
      // Lease lapsed: fence the current attempt (its generation token is
      // now stale; late checkpoint/completion writes will be rejected)
      // and requeue from the last durable state.
      ++job.generation;
      job.running = false;
      job.phase = JobPhase::kQueued;
      queue_.push_back(id);
      expired.push_back(id);
    }
    if (!expired.empty()) cv_.notify_all();
  }
  for (const std::uint64_t id : expired) {
    log_event(LogLevel::kWarn,
              "job " + std::to_string(id) +
                  " lease expired; fencing stale attempt and rescheduling");
  }
  return expired.size();
}

void JobManager::test_stall_job(std::uint64_t job_id, bool stalled) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it != jobs_.end()) it->second.stalled = stalled;
}

void JobManager::shutdown() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (draining_.exchange(true)) return;
    cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (supervisor_.joinable()) supervisor_.join();
}

void JobManager::worker_loop() {
  for (;;) {
    std::uint64_t job_id = 0;
    std::uint32_t my_gen = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return draining_.load() || !queue_.empty(); });
      if (draining_.load()) return;
      job_id = queue_.front();
      queue_.erase(queue_.begin());
      Job& job = jobs_[job_id];
      ++job.attempts;
      job.phase = JobPhase::kRunning;
      job.running = true;
      job.last_heartbeat = now_ms();
      my_gen = job.generation;
      JournalRecord rec;
      rec.type = JournalRecordType::kAttemptStarted;
      rec.generation = my_gen;
      job.journal->append(rec);
    }
    execute(job_id, my_gen);
  }
}

void JobManager::supervisor_loop() {
  // Lease checks at a fraction of the lease so a dead worker is detected
  // within ~1.25 leases worst case.
  const std::uint64_t period =
      std::max<std::uint64_t>(10, opts_.lease_ms / 4);
  while (!draining_.load()) {
    supervise_tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(period));
  }
}

void JobManager::execute(std::uint64_t job_id, std::uint32_t my_gen) {
  const ScenarioFamily* fam = nullptr;
  JobSpec spec;
  CheckpointState start;
  bool has_start = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    Job& job = jobs_[job_id];
    spec = job.spec;
    if (job.has_ckpt) {
      start = job.ckpt;  // copy: the zombie/fenced race means the map's
                         // copy must stay independent of this attempt
      has_start = true;
    }
  }
  fam = registry_.find(spec.scenario);
  if (fam == nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    Job& job = jobs_[job_id];
    job.phase = JobPhase::kFailed;
    job.error = "unknown scenario " + spec.scenario;
    job.running = false;
    return;
  }

  RunCallbacks cb;
  cb.heartbeat = [this, job_id, my_gen] {
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return;
    Job& job = it->second;
    // A stalled worker (test hook) keeps computing but stops refreshing
    // its lease — exactly what a wedged thread looks like from outside.
    if (job.generation == my_gen && !job.stalled) {
      job.last_heartbeat = now_ms();
    }
  };
  cb.should_cancel = [this, job_id, my_gen] {
    if (draining_.load()) return true;
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return true;
    return it->second.cancel_requested || it->second.generation != my_gen;
  };
  cb.on_checkpoint = [this, job_id, my_gen](const CheckpointState& st) {
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    Job& job = it->second;
    if (job.generation != my_gen) {
      log_event(LogLevel::kWarn,
                "job " + std::to_string(job_id) +
                    " stale-generation checkpoint rejected (fenced)");
      return false;  // zombie attempt: its durable writes are rejected
    }
    // Durability order: run file (fsynced by SortedRunWriter::finish)
    // BEFORE the WAL record that references it.
    JournalRecord rec;
    rec.type = JournalRecordType::kCheckpoint;
    rec.checkpoint_seq = st.slices - 1;
    rec.visited = job.journal->write_visited_run(st.slices - 1, st.visited);
    rec.frontier = st.frontier;
    rec.stats = st.stats;
    rec.violations = st.violations;
    job.journal->append(rec);
    job.ckpt = st;
    job.has_ckpt = true;
    ++job.checkpoints;
    return true;
  };

  JobResultMsg res;
  std::string error;
  try {
    res = run_investigation(*fam, spec, has_start ? &start : nullptr, cb);
  } catch (const FixdError& e) {
    error = e.what();
  }

  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (job.generation != my_gen) {
    log_event(LogLevel::kWarn, "job " + std::to_string(job_id) +
                                   " stale-generation completion discarded");
    return;  // fenced: a newer attempt owns the job now
  }
  job.running = false;
  if (!error.empty()) {
    job.phase = JobPhase::kFailed;
    job.error = error;
    log_event(LogLevel::kError,
              "job " + std::to_string(job_id) + " failed: " + error);
    return;
  }
  if (job.cancel_requested) {
    job.phase = JobPhase::kCancelled;
    JournalRecord rec;
    rec.type = JournalRecordType::kCancelled;
    job.journal->append(rec);
    log_event(LogLevel::kInfo, "job " + std::to_string(job_id) + " cancelled");
    return;
  }
  if (!res.complete) {
    // Parked mid-run (drain): stays queued-on-journal; next recover()
    // resumes it. Do not publish a partial result.
    job.phase = JobPhase::kQueued;
    return;
  }
  res.job_id = job_id;
  res.attempts = job.attempts;
  res.resumed = res.resumed || job.resumed;
  JournalRecord rec;
  rec.type = JournalRecordType::kCompleted;
  rec.result = res;
  job.journal->append(rec);
  job.result = std::move(res);
  job.phase = JobPhase::kDone;
  log_event(LogLevel::kInfo,
            "job " + std::to_string(job_id) + " done: states=" +
                std::to_string(job.result->stats.states) + " violations=" +
                std::to_string(job.result->violations.size()) +
                " attempts=" + std::to_string(job.attempts));
}

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

Daemon::Daemon(DaemonOptions opts)
    : opts_(opts),
      log_(opts.log_capacity),
      listener_(opts.endpoint),
      jobs_(ScenarioRegistry::with_builtins(),
            JobManagerOptions{opts.state_dir, opts.worker_threads,
                              opts.lease_ms},
            &log_),
      shim_(opts.shim) {}

Daemon::~Daemon() { stop(); }

void Daemon::stop() {
  stop_.store(true);
  jobs_.shutdown();
}

Response Daemon::dispatch(const Request& req) {
  Response rsp;
  rsp.request_id = req.request_id;
  try {
    switch (req.kind) {
      case RpcKind::kPing:
        break;
      case RpcKind::kSubmit: {
        if (jobs_.draining()) {
          rsp.status = RpcStatus::kShuttingDown;
          rsp.error = "daemon is draining";
          break;
        }
        const SubmitOutcome out = jobs_.submit(req.request_id, req.spec);
        rsp.job_id = out.job_id;
        rsp.duplicate = out.duplicate;
        break;
      }
      case RpcKind::kStatus: {
        if (auto st = jobs_.status(req.job_id)) {
          rsp.status_msg = *st;
        } else {
          rsp.status = RpcStatus::kNotFound;
          rsp.error = "unknown job " + std::to_string(req.job_id);
        }
        break;
      }
      case RpcKind::kCancel:
        if (!jobs_.cancel(req.job_id)) {
          rsp.status = RpcStatus::kNotFound;
          rsp.error = "unknown job " + std::to_string(req.job_id);
        }
        break;
      case RpcKind::kResult: {
        if (auto res = jobs_.result(req.job_id)) {
          rsp.result = *res;
        } else {
          rsp.status = RpcStatus::kNotFound;
          rsp.error = "no result for job " + std::to_string(req.job_id);
        }
        break;
      }
      case RpcKind::kTailLog: {
        const std::size_t n =
            req.arg == 0 ? 32 : static_cast<std::size_t>(req.arg);
        for (const LogRecord& r : log_.tail(n)) {
          rsp.log_lines.push_back(std::string(log_level_name(r.level)) + " " +
                                  r.msg);
        }
        break;
      }
      case RpcKind::kShutdown:
        stop_.store(true);
        break;
    }
  } catch (const ConfigError& e) {
    rsp.status = RpcStatus::kBadRequest;
    rsp.error = e.what();
  } catch (const FixdError& e) {
    rsp.status = RpcStatus::kError;
    rsp.error = e.what();
  }
  return rsp;
}

void Daemon::serve() {
  recovered_ = jobs_.recover();
  log_.append(LogLevel::kInfo,
              "fixdd serving on " + listener_.endpoint().to_string() +
                  " (recovered " + std::to_string(recovered_) + " jobs)");
  while (!stop_.load()) {
    std::optional<Conn> conn = listener_.accept(now_ms() + 200);
    if (!conn) continue;
    // One connection at a time: RPC handling is cheap (job execution is on
    // the manager's workers) and a sequential loop keeps fault-shim
    // injection points deterministic. A client that abandons the
    // connection (timeout/retry) produces EOF and frees the loop.
    while (!stop_.load()) {
      std::optional<std::vector<std::byte>> payload;
      try {
        payload = conn->recv_frame(now_ms() + 1000);
      } catch (const TimeoutError&) {
        break;  // idle/abandoned connection; go accept another
      } catch (const FixdError&) {
        break;  // torn frame or socket error: drop the connection
      }
      if (!payload) break;  // clean EOF

      Request req;
      try {
        req = decode_payload<Request>(*payload);
      } catch (const SerializationError& e) {
        log_.append(LogLevel::kWarn,
                    std::string("rpc: undecodable request: ") + e.what());
        break;
      }

      // Fault shim: one verdict per request, at the respond point — the
      // request has already executed, which is exactly the ambiguity a
      // retry must survive (and why submits are idempotent).
      Response rsp = dispatch(req);
      FaultVerdict verdict = shim_.next();
      if (verdict == FaultVerdict::kDrop) {
        log_.append(LogLevel::kDebug, "shim: dropping response for request " +
                                          std::to_string(req.request_id));
        continue;
      }
      if (verdict == FaultVerdict::kSever) {
        log_.append(LogLevel::kDebug, "shim: severing connection on request " +
                                          std::to_string(req.request_id));
        break;
      }
      if (verdict == FaultVerdict::kDelay) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(shim_.delay_ms()));
      }
      try {
        conn->send_frame(encode_frame(rsp), now_ms() + 2000);
      } catch (const FixdError&) {
        break;  // peer gone mid-response
      }
      if (req.kind == RpcKind::kShutdown) break;
    }
  }
  log_.append(LogLevel::kInfo, "fixdd stopping");
  jobs_.shutdown();
}

}  // namespace fixd::svc
