#include "svc/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/hash.hpp"
#include "svc/wire.hpp"

namespace fixd::svc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw IoError("transport: fcntl(O_NONBLOCK)", errno);
  }
}

/// Block until fd is ready for `events` or the deadline passes.
/// Returns false on deadline expiry.
bool wait_ready(int fd, short events, std::uint64_t deadline) {
  for (;;) {
    const std::uint64_t now = now_ms();
    if (now >= deadline) return false;
    const std::uint64_t budget = deadline - now;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1,
                          static_cast<int>(budget > 60000 ? 60000 : budget));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw IoError("transport: poll", errno);
    }
    if (rc > 0) return true;
  }
}

double parse_fraction(const std::string& v, const std::string& spec) {
  try {
    const double d = std::stod(v);
    if (d < 0.0 || d > 1.0) throw std::out_of_range("range");
    return d;
  } catch (const std::exception&) {
    throw ConfigError("fault shim: bad probability '" + v + "' in '" + spec +
                      "'");
  }
}

}  // namespace

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw ConfigError("endpoint: empty unix path");
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw ConfigError("endpoint: unix path too long: " + ep.path);
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw ConfigError("endpoint: expected tcp:HOST:PORT, got " + spec);
    }
    ep.host = rest.substr(0, colon);
    try {
      const unsigned long p = std::stoul(rest.substr(colon + 1));
      if (p > 65535) throw std::out_of_range("port");
      ep.port = static_cast<std::uint16_t>(p);
    } catch (const std::exception&) {
      throw ConfigError("endpoint: bad port in " + spec);
    }
    return ep;
  }
  throw ConfigError("endpoint: expected unix:/path or tcp:HOST:PORT, got " +
                    spec);
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

FaultShimSpec FaultShimSpec::parse(const std::string& spec) {
  FaultShimSpec out;
  if (spec.empty()) return out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("fault shim: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "seed") {
      out.seed = std::stoull(val);
    } else if (key == "drop") {
      out.drop = parse_fraction(val, spec);
    } else if (key == "sever") {
      out.sever = parse_fraction(val, spec);
    } else if (key == "delay") {
      // delay=P:MS — probability and added latency together.
      const std::size_t sep = val.find(':');
      if (sep == std::string::npos) {
        throw ConfigError("fault shim: delay needs P:MS, got '" + val + "'");
      }
      out.delay = parse_fraction(val.substr(0, sep), spec);
      out.delay_ms = static_cast<std::uint32_t>(std::stoul(val.substr(sep + 1)));
    } else {
      throw ConfigError("fault shim: unknown key '" + key + "'");
    }
  }
  if (out.drop + out.sever + out.delay > 1.0) {
    throw ConfigError("fault shim: drop+sever+delay must be <= 1");
  }
  return out;
}

FaultVerdict FaultShim::next() {
  const std::uint64_t c = counter_++;
  const std::uint64_t h = hash_combine(spec_.seed ^ 0x66617573686d31ull, c);
  // Map to [0,1) and carve the interval: [0,drop) drop, [drop,drop+sever)
  // sever, [drop+sever,drop+sever+delay) delay, rest clean.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  if (u < spec_.drop) return FaultVerdict::kDrop;
  if (u < spec_.drop + spec_.sever) return FaultVerdict::kSever;
  if (u < spec_.drop + spec_.sever + spec_.delay) return FaultVerdict::kDelay;
  return FaultVerdict::kNone;
}

Conn::Conn(int fd) : fd_(fd) {
  if (fd_ >= 0) set_nonblocking(fd_);
}

Conn::~Conn() { close(); }

Conn::Conn(Conn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::send_frame(const std::vector<std::byte>& frame,
                      std::uint64_t deadline) {
  FIXD_CHECK_MSG(valid(), "send_frame on closed connection");
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_ready(fd_, POLLOUT, deadline)) {
        throw TimeoutError("transport: send deadline exceeded");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw IoError("transport: send", errno);
  }
}

bool Conn::read_exact(std::byte* dst, std::size_t n, std::uint64_t deadline,
                      bool eof_ok_at_start) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t got = ::recv(fd_, dst + off, n - off, 0);
    if (got > 0) {
      off += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      if (off == 0 && eof_ok_at_start) return false;
      throw SerializationError(
          "transport: connection closed mid-frame (torn frame)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_ready(fd_, POLLIN, deadline)) {
        throw TimeoutError("transport: recv deadline exceeded");
      }
      continue;
    }
    if (errno == EINTR) continue;
    // A peer reset at a frame boundary reads the same as a clean close:
    // the caller treats both as "peer gone".
    if (off == 0 && eof_ok_at_start && (errno == ECONNRESET)) return false;
    throw IoError("transport: recv", errno);
  }
  return true;
}

std::optional<std::vector<std::byte>> Conn::recv_frame(std::uint64_t deadline) {
  FIXD_CHECK_MSG(valid(), "recv_frame on closed connection");
  std::array<std::byte, kCrcFrameHeaderBytes> header;
  if (!read_exact(header.data(), header.size(), deadline,
                  /*eof_ok_at_start=*/true)) {
    return std::nullopt;
  }
  const auto [len, crc] =
      parse_crc_frame_header(header, kWireMagic, kMaxFramePayload);
  std::vector<std::byte> payload(len);
  if (len > 0) {
    read_exact(payload.data(), payload.size(), deadline,
               /*eof_ok_at_start=*/false);
  }
  check_crc_payload(payload, crc);
  return payload;
}

Listener::Listener(const Endpoint& ep) : ep_(ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw IoError("listener: socket(AF_UNIX)", errno);
    ::unlink(ep.path.c_str());  // stale socket from a crashed daemon
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw IoError("listener: bind " + ep.path, err);
    }
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw IoError("listener: socket(AF_INET)", errno);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd_);
      fd_ = -1;
      throw ConfigError("listener: bad host " + ep.host);
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw IoError("listener: bind " + ep.to_string(), err);
    }
    if (ep.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        ep_.port = ntohs(bound.sin_port);
      }
    }
  }
  if (::listen(fd_, 64) < 0) {
    const int err = errno;
    close();
    throw IoError("listener: listen", err);
  }
  set_nonblocking(fd_);
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (ep_.kind == Endpoint::Kind::kUnix) ::unlink(ep_.path.c_str());
  }
}

std::optional<Conn> Listener::accept(std::uint64_t deadline) {
  FIXD_CHECK_MSG(fd_ >= 0, "accept on closed listener");
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) return Conn(cfd);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_ready(fd_, POLLIN, deadline)) return std::nullopt;
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw IoError("listener: accept", errno);
  }
}

Conn connect(const Endpoint& ep, std::uint64_t deadline) {
  int fd = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw IoError("connect: socket(AF_UNIX)", errno);
    set_nonblocking(fd);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return Conn(fd);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw IoError("connect: socket(AF_INET)", errno);
    set_nonblocking(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw ConfigError("connect: bad host " + ep.host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return Conn(fd);
    }
  }
  if (errno != EINPROGRESS && errno != EAGAIN) {
    const int err = errno;
    ::close(fd);
    throw IoError("connect: " + ep.to_string(), err);
  }
  if (!wait_ready(fd, POLLOUT, deadline)) {
    ::close(fd);
    throw TimeoutError("connect: deadline exceeded for " + ep.to_string());
  }
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 || soerr != 0) {
    ::close(fd);
    throw IoError("connect: " + ep.to_string(),
                  soerr != 0 ? soerr : errno);
  }
  return Conn(fd);
}

}  // namespace fixd::svc
