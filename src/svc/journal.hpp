// Durable write-ahead journal for investigation jobs.
//
// One journal file per job (`job-<id>.wal` under the daemon's state dir),
// a sequence of CRC frames (kJournalMagic) appended with fsync. Record
// order IS the protocol:
//
//   kSubmitted      — job spec + idempotency request_id (exactly one)
//   kAttemptStarted — a lease generation began (one per attempt)
//   kCheckpoint     — a pause point: frontier trails + visited-run
//                     manifest + accumulated stats. The visited run file
//                     (`job-<id>-ckpt-<seq>.run`, SortedRunWriter format)
//                     is written AND fsynced BEFORE this record is
//                     appended, so a checkpoint record never references
//                     bytes that could be lost by a crash.
//   kCompleted      — terminal result (stats + violations + digests)
//   kCancelled      — terminal, user-requested
//
// Recovery replays records in order and stops at the FIRST bad frame
// (torn tail from a mid-append crash reads as a clean end, never as
// corruption — the job simply resumes from its last durable checkpoint).
// A second kSubmitted with the same request_id throws: the journal is the
// idempotency ledger, one execution per request-id.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "mc/engine.hpp"
#include "mc/trail.hpp"
#include "svc/wire.hpp"

namespace fixd::svc {

/// Where a checkpoint's visited set lives on disk.
struct RunManifest {
  std::string file;  ///< path relative to the journal's directory
  std::uint64_t count = 0;
  std::vector<std::uint64_t> fence;

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);
};

enum class JournalRecordType : std::uint8_t {
  kSubmitted = 0,
  kAttemptStarted,
  kCheckpoint,
  kCompleted,
  kCancelled,
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kSubmitted;
  // kSubmitted
  std::uint64_t request_id = 0;
  std::uint64_t job_id = 0;
  JobSpec spec;
  // kAttemptStarted
  std::uint32_t generation = 0;
  // kCheckpoint
  std::uint64_t checkpoint_seq = 0;
  RunManifest visited;
  std::vector<mc::Trail> frontier;
  mc::ExploreStats stats;               // accumulated across slices so far
  std::vector<mc::SysViolation> violations;  // accumulated so far
  // kCompleted
  JobResultMsg result;
  // kCancelled: no extra payload

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);
};

/// Append-only WAL for one job. Not internally synchronized — the JobManager
/// serializes access per job.
class JobJournal {
 public:
  /// Opens (creating or appending) `dir/job-<id>.wal`.
  JobJournal(std::filesystem::path dir, std::uint64_t job_id);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Encode, append as one CRC frame, fsync. Throws IoError on failure:
  /// durability is the point, a silent drop would void the resume proof.
  void append(const JournalRecord& rec);

  const std::filesystem::path& path() const { return path_; }

  /// Write `keys` (sorted ascending, deduped) as a SortedRun next to the
  /// journal and fsync the directory entry, returning the manifest to embed
  /// in a kCheckpoint record. Must be called BEFORE append() of that record.
  RunManifest write_visited_run(std::uint64_t checkpoint_seq,
                                const std::vector<std::uint64_t>& keys);

  /// Load a visited run referenced by a recovered manifest.
  std::vector<std::uint64_t> load_visited_run(const RunManifest& m) const;

  /// Delete this job's journal + run files (terminal cleanup).
  static void remove_files(const std::filesystem::path& dir,
                           std::uint64_t job_id);

 private:
  std::filesystem::path dir_;
  std::filesystem::path path_;
  std::uint64_t job_id_ = 0;
  std::FILE* f_ = nullptr;
};

/// Result of replaying one job's journal.
struct RecoveredJob {
  std::uint64_t job_id = 0;
  std::uint64_t request_id = 0;
  JobSpec spec;
  std::uint32_t attempts = 0;  ///< kAttemptStarted count
  std::optional<JournalRecord> last_checkpoint;
  std::optional<JobResultMsg> result;  ///< set iff kCompleted seen
  bool cancelled = false;
  std::uint64_t checkpoints = 0;
};

/// Replay `dir/job-<id>.wal`. Stops cleanly at the first torn/garbled
/// frame. Returns nullopt if the file is missing or holds no complete
/// kSubmitted record. Throws SerializationError on a duplicate kSubmitted
/// (the idempotency invariant is broken — refuse to guess).
std::optional<RecoveredJob> recover_job(const std::filesystem::path& dir,
                                        std::uint64_t job_id);

/// All job ids with a journal file under `dir` (sorted ascending).
std::vector<std::uint64_t> list_journaled_jobs(
    const std::filesystem::path& dir);

}  // namespace fixd::svc
