// Job management for fixdd: scenario registry, sliced investigation runner,
// lease-supervised execution, and the daemon serve loop.
//
// The durable unit is a JobSpec (scenario name + parameters), never a live
// world: the registry rebuilds the world deterministically, so a journal +
// spec + checkpoint fully determine the rest of the search. That is what
// makes `kill -9` recoverable — and testable: a resumed job's visited-set
// and trail digests must equal an uninterrupted run's byte for byte
// (tests/test_svc.cpp pins this at randomized kill points).
//
// Robustness mechanisms here:
//   * Idempotency: submit() consults the request-id ledger first; a
//     duplicate submit returns the existing job id with `duplicate` set
//     and never enqueues a second execution.
//   * Leases: a running attempt owns a (job, generation) lease and
//     heartbeats it from the runner's per-slice callback. supervise_tick()
//     declares an attempt dead when its lease lapses, bumps the
//     generation (fencing the zombie — its late checkpoint/completion
//     writes are rejected), journals a new attempt, and requeues the job
//     from the last durable checkpoint.
//   * Durability: every checkpoint hits the WAL (visited run fsynced
//     before the record referencing it) before the search continues.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "mc/sysmodel.hpp"
#include "svc/journal.hpp"
#include "svc/transport.hpp"
#include "svc/wire.hpp"

namespace fixd::rt {
class World;
}

namespace fixd::svc {

/// A named, deterministic world family the daemon can investigate.
struct ScenarioFamily {
  std::string name;
  std::function<std::unique_ptr<rt::World>(std::uint32_t n, std::int32_t
                                               version)>
      make;
  std::function<void(rt::World&)> install_invariants;
};

class ScenarioRegistry {
 public:
  void add(ScenarioFamily fam);
  const ScenarioFamily* find(const std::string& name) const;
  std::vector<std::string> names() const;

  /// two-pc, token-ring, election — the in-tree app models, single-txn
  /// configurations so a job's state space is bounded.
  static ScenarioRegistry with_builtins();

 private:
  std::map<std::string, ScenarioFamily> fams_;
};

/// Accumulated search state at a pause point — exactly what a kCheckpoint
/// journal record carries, and exactly what a resume slice needs.
struct CheckpointState {
  std::vector<std::uint64_t> visited;  ///< sorted canonical digests
  std::vector<mc::Trail> frontier;
  mc::ExploreStats stats;  ///< accumulated across slices
  std::vector<mc::SysViolation> violations;
  std::uint64_t slices = 0;
};

/// Canonical digest of a visited set (order-independent by construction:
/// input must be sorted, which SysExploreResult::visited guarantees).
std::uint64_t visited_digest(const std::vector<std::uint64_t>& visited);

/// Canonical digest of reported violations. For a sequential search the
/// trail order and contents are deterministic, so the digest covers the
/// full ordered trails. Parallel searches report a deterministic violation
/// *multiset* but path-dependent trails/depths, so the digest covers the
/// sorted (invariant, pid, detail) records only — the strongest claim the
/// parallel determinism contract supports.
std::uint64_t trail_digest(const std::vector<mc::SysViolation>& violations,
                           std::uint32_t workers);

struct RunCallbacks {
  /// Called once per slice boundary — doubles as the lease heartbeat.
  std::function<void()> heartbeat;
  /// Checked between slices; true stops the run (cancel / fenced / drain).
  std::function<bool()> should_cancel;
  /// Called with the accumulated state after each paused slice. Return
  /// false to abandon the run (stale generation). A null callback means
  /// "no durability" (the degraded in-process path).
  std::function<bool(const CheckpointState&)> on_checkpoint;
};

/// Run one investigation as a sequence of pause/resume slices of roughly
/// `spec.checkpoint_states` states each. Pure with respect to the spec:
/// the same spec (resumed from any checkpoint or not) converges to the
/// same visited set and violations as one uninterrupted run. Used by the
/// daemon's workers AND the client's in-process degradation fallback, so
/// degraded results are comparable by construction.
JobResultMsg run_investigation(const ScenarioFamily& fam, const JobSpec& spec,
                               const CheckpointState* resume,
                               const RunCallbacks& cb);

struct SubmitOutcome {
  std::uint64_t job_id = 0;
  bool duplicate = false;
};

struct JobManagerOptions {
  std::filesystem::path state_dir;
  std::uint32_t worker_threads = 2;
  std::uint64_t lease_ms = 2000;
};

class JobManager {
 public:
  JobManager(ScenarioRegistry registry, JobManagerOptions opts,
             LogRing* log = nullptr);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Idempotent by request_id: a repeat returns the original job with
  /// duplicate=true. Throws ConfigError for an unknown scenario.
  SubmitOutcome submit(std::uint64_t request_id, const JobSpec& spec);
  std::optional<JobStatusMsg> status(std::uint64_t job_id) const;
  /// True if the job existed and is now cancelled (or already terminal).
  bool cancel(std::uint64_t job_id);
  std::optional<JobResultMsg> result(std::uint64_t job_id) const;

  /// Replay every journal under state_dir; re-publishes terminal results
  /// and requeues incomplete jobs from their last checkpoint. Returns the
  /// number of jobs requeued. Call before serving.
  std::size_t recover();

  /// Declare dead any running attempt whose lease lapsed; fence + requeue.
  /// Returns the number of attempts declared dead. Runs automatically from
  /// an internal supervisor thread; exposed for deterministic tests.
  std::size_t supervise_tick();

  /// Stop accepting work and join workers. Running slices finish; their
  /// next checkpoint parks the job (it will resume on next recover()).
  void shutdown();
  bool draining() const { return draining_.load(); }

  std::uint64_t lease_ms() const { return opts_.lease_ms; }

  /// Test hook: while stalled, the job's heartbeats stop refreshing the
  /// lease (the worker keeps running) — simulates a wedged worker so the
  /// supervisor/fencing path is testable without killing threads.
  void test_stall_job(std::uint64_t job_id, bool stalled);

 private:
  struct Job {
    std::uint64_t id = 0;
    std::uint64_t request_id = 0;
    JobSpec spec;
    JobPhase phase = JobPhase::kQueued;
    std::uint32_t generation = 0;  ///< current lease owner's token
    std::uint32_t attempts = 0;
    std::uint64_t last_heartbeat = 0;  ///< now_ms() of last lease refresh
    bool running = false;              ///< an attempt thread is executing
    bool cancel_requested = false;
    bool resumed = false;
    bool stalled = false;  ///< test hook (see test_stall_job)
    std::uint64_t checkpoints = 0;
    CheckpointState ckpt;
    bool has_ckpt = false;
    std::optional<JobResultMsg> result;
    std::string error;
    std::unique_ptr<JobJournal> journal;
  };

  void worker_loop();
  void supervisor_loop();
  void execute(std::uint64_t job_id, std::uint32_t my_gen);
  void log_event(LogLevel level, const std::string& msg);

  ScenarioRegistry registry_;
  JobManagerOptions opts_;
  LogRing* log_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Job> jobs_;
  std::map<std::uint64_t, std::uint64_t> request_ledger_;  // req id -> job id
  std::vector<std::uint64_t> queue_;
  std::uint64_t next_job_id_ = 1;
  std::atomic<bool> draining_{false};
  std::vector<std::thread> workers_;
  std::thread supervisor_;
};

struct DaemonOptions {
  Endpoint endpoint;
  std::filesystem::path state_dir;
  FaultShimSpec shim;
  std::uint32_t worker_threads = 2;
  std::uint64_t lease_ms = 2000;
  std::size_t log_capacity = 256;
};

/// The fixdd serve loop: accept → read framed Requests → dispatch to the
/// JobManager → respond (subject to the fault shim). Single-threaded
/// request handling by design — job execution happens on JobManager
/// workers, so the RPC path stays simple and every injected fault hits a
/// deterministic point.
class Daemon {
 public:
  explicit Daemon(DaemonOptions opts);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Blocks until a kShutdown RPC or stop(). Recovers journaled jobs
  /// before accepting.
  void serve();
  void stop();

  const Endpoint& endpoint() const { return listener_.endpoint(); }
  JobManager& jobs() { return jobs_; }
  LogRing& log_ring() { return log_; }
  std::size_t recovered() const { return recovered_; }

 private:
  Response dispatch(const Request& req);

  DaemonOptions opts_;
  LogRing log_;
  Listener listener_;
  JobManager jobs_;
  FaultShim shim_;
  std::atomic<bool> stop_{false};
  std::size_t recovered_ = 0;
};

}  // namespace fixd::svc
