#include "svc/client.hpp"

#include <chrono>
#include <thread>

#include "common/hash.hpp"

namespace fixd::svc {

std::uint64_t backoff_ms(const RetryPolicy& p, std::uint32_t attempt) {
  if (attempt <= 1) return 0;
  // Exponential: base * 2^(attempt-2), capped.
  std::uint64_t base = p.base_backoff_ms;
  for (std::uint32_t i = 2; i < attempt && base < p.max_backoff_ms; ++i) {
    base *= 2;
  }
  base = std::min(base, p.max_backoff_ms);
  // Deterministic jitter in [0.5, 1.5): same (seed, attempt) → same wait,
  // distinct seeds decorrelate concurrent clients.
  const std::uint64_t h = hash_combine(p.jitter_seed, attempt);
  const double factor = 0.5 + static_cast<double>(h >> 11) *
                                  (1.0 / 9007199254740992.0);  // 2^53
  return static_cast<std::uint64_t>(static_cast<double>(base) * factor);
}

Response Client::call(Request req) {
  const std::uint64_t budget_end = now_ms() + policy_.total_budget_ms;
  std::string last_error = "no attempts made";
  last_attempts_ = 0;
  for (std::uint32_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    const std::uint64_t wait = backoff_ms(policy_, attempt);
    if (wait > 0) {
      if (now_ms() + wait >= budget_end) break;  // budget would lapse mid-wait
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    const std::uint64_t deadline =
        std::min(budget_end, now_ms() + policy_.rpc_timeout_ms);
    if (now_ms() >= deadline) break;
    ++last_attempts_;
    try {
      // Fresh connection per attempt: abandoning a timed-out attempt
      // closes its socket, so the daemon's serve loop sees EOF and is
      // never left waiting on a half-dead peer.
      Conn conn = connect(ep_, deadline);
      req.deadline_ms = deadline - now_ms();
      conn.send_frame(encode_frame(req), deadline);
      std::optional<std::vector<std::byte>> payload = conn.recv_frame(deadline);
      if (!payload) {
        last_error = "connection severed before response";
        continue;  // shim kSever / daemon died: retry
      }
      Response rsp = decode_payload<Response>(*payload);
      if (rsp.request_id != req.request_id) {
        last_error = "response for a different request (stale)";
        continue;
      }
      if (rsp.status == RpcStatus::kRetryLater) {
        last_error = "daemon asked to retry: " + rsp.error;
        continue;
      }
      return rsp;
    } catch (const TimeoutError& e) {
      last_error = e.what();  // dropped response / dead daemon: retry
    } catch (const IoError& e) {
      last_error = e.what();  // connect refused / reset: retry
    } catch (const SerializationError& e) {
      last_error = e.what();  // torn frame (severed mid-frame): retry
    }
  }
  throw TimeoutError("rpc " + std::string(to_string(req.kind)) + " to " +
                     ep_.to_string() + " failed after " +
                     std::to_string(last_attempts_) +
                     " attempts: " + last_error);
}

InvestigationOutcome submit_and_wait_or_degrade(
    Client& client, const ScenarioRegistry& registry, const JobSpec& spec,
    std::uint64_t request_id, std::uint64_t poll_interval_ms,
    std::uint64_t wait_budget_ms) {
  InvestigationOutcome out;
  const auto degrade = [&](const std::string& why) {
    const ScenarioFamily* fam = registry.find(spec.scenario);
    if (fam == nullptr) {
      throw ConfigError("degraded run: unknown scenario '" + spec.scenario +
                        "'");
    }
    // Same runner the daemon uses (no durability callbacks), so a
    // degraded result is byte-comparable with a daemon result.
    out.result = run_investigation(*fam, spec, nullptr, RunCallbacks{});
    out.result.degraded = true;
    out.degraded = true;
    out.degraded_reason = why;
    return out;
  };

  std::uint64_t job_id = 0;
  try {
    Request req;
    req.request_id = request_id;
    req.kind = RpcKind::kSubmit;
    req.spec = spec;
    Response rsp = client.call(req);
    if (rsp.status == RpcStatus::kShuttingDown) {
      return degrade("daemon draining: " + rsp.error);
    }
    if (rsp.status != RpcStatus::kOk) {
      throw ConfigError("submit rejected: " + rsp.error);
    }
    job_id = rsp.job_id;
  } catch (const TimeoutError& e) {
    return degrade(e.what());
  }

  const std::uint64_t wait_end = now_ms() + wait_budget_ms;
  for (;;) {
    try {
      Request req;
      req.request_id = request_id ^ 0x726573756c74ull;  // distinct rpc id
      req.kind = RpcKind::kResult;
      req.job_id = job_id;
      Response rsp = client.call(req);
      if (rsp.status == RpcStatus::kOk) {
        out.result = rsp.result;
        return out;
      }
      // kNotFound: still running. Check for a terminal failure so a
      // failed job surfaces as an error, not an endless poll.
      Request sreq;
      sreq.request_id = request_id ^ 0x737461747573ull;
      sreq.kind = RpcKind::kStatus;
      sreq.job_id = job_id;
      Response srsp = client.call(sreq);
      if (srsp.status == RpcStatus::kOk &&
          srsp.status_msg.phase == JobPhase::kFailed) {
        throw ConfigError("job " + std::to_string(job_id) +
                          " failed: " + srsp.status_msg.error);
      }
      if (srsp.status == RpcStatus::kOk &&
          srsp.status_msg.phase == JobPhase::kCancelled) {
        throw ConfigError("job " + std::to_string(job_id) + " was cancelled");
      }
    } catch (const TimeoutError& e) {
      return degrade(e.what());
    }
    if (now_ms() >= wait_end) {
      throw TimeoutError("job " + std::to_string(job_id) +
                         " did not finish within the wait budget");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_interval_ms));
  }
}

}  // namespace fixd::svc
