// Socket transport for fixdd: Unix-domain or loopback-TCP endpoints with
// deadline-bounded frame IO and a deterministic fault shim.
//
// Design rules:
//   * Every blocking operation (connect / accept / read / write) takes an
//     absolute deadline and is implemented with poll(2) on a non-blocking
//     fd, so a dead peer costs at most the caller's deadline — never a
//     hung daemon thread. Deadline expiry throws TimeoutError; the RPC
//     client catches it and retries with backoff.
//   * Frames are the CRC frames of common/serialize (wire.hpp magic). A
//     torn or garbled frame throws SerializationError; clean EOF before
//     any header byte returns nullopt so "peer closed" is not an error.
//   * The fault shim is seeded and counts injection points, so a test run
//     with the same seed sees the same drops/delays/severs — fault testing
//     without flaky sleeps.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace fixd::svc {

/// Where a daemon listens / a client connects. `unix:/path/sock` or
/// `tcp:127.0.0.1:PORT` (loopback only; multi-machine is out of scope —
/// see ROADMAP).
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix = 0, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;             ///< kUnix: socket path
  std::string host = "127.0.0.1";  ///< kTcp
  std::uint16_t port = 0;          ///< kTcp (0 = kernel-assigned)

  static Endpoint parse(const std::string& spec);  ///< throws ConfigError
  std::string to_string() const;
};

/// Deterministic transport-fault injection. Verdicts are pure functions of
/// (seed, injection counter): run the same scripted client against the
/// same seed and the same requests get dropped/delayed/severed.
struct FaultShimSpec {
  std::uint64_t seed = 0;
  double drop = 0.0;        ///< P(server never responds to a request)
  double sever = 0.0;       ///< P(connection closed instead of responding)
  double delay = 0.0;       ///< P(response delayed by delay_ms)
  std::uint32_t delay_ms = 0;

  bool enabled() const { return drop > 0 || sever > 0 || delay > 0; }
  /// "drop=0.2,sever=0.1,delay=0.3:25,seed=7" (any subset, any order).
  static FaultShimSpec parse(const std::string& spec);  ///< throws ConfigError
};

enum class FaultVerdict : std::uint8_t { kNone = 0, kDrop, kSever, kDelay };

class FaultShim {
 public:
  explicit FaultShim(FaultShimSpec spec) : spec_(spec) {}

  /// Next injection-point verdict. Thread-compatible: the daemon serve
  /// loop is the only caller.
  FaultVerdict next();
  std::uint32_t delay_ms() const { return spec_.delay_ms; }
  std::uint64_t decisions() const { return counter_; }

 private:
  FaultShimSpec spec_;
  std::uint64_t counter_ = 0;
};

/// Monotonic clock in ms, for deadlines. (Wall time is never used for
/// control flow anywhere in the service layer.)
std::uint64_t now_ms();

/// One connected stream. Move-only; closes on destruction.
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd);
  ~Conn();
  Conn(Conn&& other) noexcept;
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Write a whole pre-encoded frame. Throws TimeoutError past the
  /// deadline, IoError on socket failure.
  void send_frame(const std::vector<std::byte>& frame,
                  std::uint64_t deadline_ms_abs);

  /// Read one whole frame payload (header validated, CRC checked).
  /// Returns nullopt on clean EOF at a frame boundary. Throws
  /// SerializationError on a torn/garbled frame, TimeoutError past the
  /// deadline, IoError on socket failure.
  std::optional<std::vector<std::byte>> recv_frame(
      std::uint64_t deadline_ms_abs);

 private:
  /// Reads exactly n bytes; false on EOF before the first byte,
  /// SerializationError on EOF mid-buffer (torn frame).
  bool read_exact(std::byte* dst, std::size_t n, std::uint64_t deadline,
                  bool eof_ok_at_start);

  int fd_ = -1;
};

class Listener {
 public:
  /// Binds and listens; for kUnix unlinks a stale socket file first; for
  /// kTcp port 0, the kernel-assigned port is readable via endpoint().
  explicit Listener(const Endpoint& ep);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one connection; nullopt if the deadline passes first.
  std::optional<Conn> accept(std::uint64_t deadline_ms_abs);
  const Endpoint& endpoint() const { return ep_; }
  void close();

 private:
  int fd_ = -1;
  Endpoint ep_;
};

/// Connect with a deadline. Throws TimeoutError / IoError.
Conn connect(const Endpoint& ep, std::uint64_t deadline_ms_abs);

}  // namespace fixd::svc
