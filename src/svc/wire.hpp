// fixdd wire codec: typed, CRC-framed RPC messages.
//
// Every message crosses the transport as one CRC frame
// (common/serialize.hpp): [u32 magic][u32 len][u32 crc32(payload)][payload],
// payload = the BinaryWriter encoding of Request or Response. The framing
// gives the daemon the two properties the robustness ladder needs:
//
//   * a severed/garbled connection reads as a clean SerializationError,
//     never as a half-parsed message, and
//   * the identical frame bytes double as journal records (the job journal
//     reuses write_crc_frame with its own magic), so "what went over the
//     wire" and "what is durable" share one encoder.
//
// Contract (docs/SERVICE.md): every Request carries a client-chosen
// idempotency `request_id` and a per-attempt `deadline_ms` budget hint.
// Responses echo the request_id so a client can reject stale replies after
// a retry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "mc/engine.hpp"
#include "mc/trail.hpp"

namespace fixd::svc {

inline constexpr std::uint32_t kWireMagic = 0x50525846;    // "FXRP"
inline constexpr std::uint32_t kJournalMagic = 0x4c4a5846;  // "FXJL"
inline constexpr std::uint32_t kWireVersion = 1;
/// Upper bound on one frame's payload; a corrupt header cannot force a
/// larger allocation.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

enum class RpcKind : std::uint8_t {
  kPing = 0,
  kSubmit,    ///< enqueue an investigation job (idempotent by request_id)
  kStatus,    ///< job phase + live progress counters
  kCancel,    ///< request cancellation at the next checkpoint boundary
  kResult,    ///< final result (kNotFound until the job is terminal)
  kTailLog,   ///< recent daemon log records from the ring sink
  kShutdown,  ///< graceful stop: park running jobs at their next checkpoint
};

enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kNotFound,      ///< unknown job id, or result not available yet
  kBadRequest,    ///< spec validation failed (detail in `error`)
  kRetryLater,    ///< transient; client should back off and retry
  kShuttingDown,  ///< daemon is draining; submits are refused
  kError,         ///< server-side failure (detail in `error`)
};

enum class JobPhase : std::uint8_t {
  kQueued = 0,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

const char* to_string(RpcKind k);
const char* to_string(RpcStatus s);
const char* to_string(JobPhase p);

/// What to investigate, scenario-addressed: the daemon rebuilds the world
/// deterministically from the registered family + (n, version), so a job
/// spec — not a serialized world — is the durable unit. Restricted to the
/// sliceable explorer configuration (kBfs/kDfs, dedup on, no por/sleep
/// sets); see SysExploreOptions' pause/resume contract.
struct JobSpec {
  std::string scenario = "two-pc";
  std::uint32_t n = 3;           ///< world size (processes/replicas)
  std::int32_t version = 1;      ///< family version (1 = buggy, 2 = fixed)
  mc::SearchOrder order = mc::SearchOrder::kBfs;
  bool trail_frontier = false;
  std::uint32_t workers = 1;
  std::uint64_t max_states = 200000;
  std::uint32_t max_depth = 80;
  std::uint64_t max_violations = 64;
  std::uint64_t seed = 42;
  bool model_message_loss = false;
  bool model_message_duplication = false;
  /// Durable-checkpoint cadence: pause and journal roughly every N new
  /// states per slice. The crash-restart identity proof relies on slice
  /// boundaries being deterministic, which this is (sequential orders).
  std::uint64_t checkpoint_states = 512;

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);
};

/// Live progress for kStatus.
struct JobStatusMsg {
  std::uint64_t job_id = 0;
  JobPhase phase = JobPhase::kQueued;
  std::uint32_t attempts = 0;   ///< lease generations started
  std::uint64_t states = 0;     ///< accumulated across slices
  std::uint64_t transitions = 0;
  std::uint64_t violations = 0;
  std::uint64_t checkpoints = 0;  ///< durable checkpoints journaled
  bool resumed = false;           ///< recovered from the journal on restart
  std::string error;              ///< kFailed detail

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);
};

/// Final result for kResult — also what the in-process degradation path
/// produces, byte-compatible by construction (same JobRunner code).
struct JobResultMsg {
  std::uint64_t job_id = 0;
  bool complete = false;
  bool degraded = false;  ///< produced by the in-process fallback
  bool resumed = false;   ///< at least one slice ran after a journal recovery
  std::uint32_t attempts = 1;
  mc::ExploreStats stats;
  std::vector<mc::SysViolation> violations;
  std::uint64_t visited_count = 0;
  /// Hash over the sorted visited canonical digests (jobd::visited_digest).
  std::uint64_t visited_digest = 0;
  /// Canonical violation digest (jobd::trail_digest): ordered trails for
  /// workers == 1, order-insensitive violation records for workers > 1.
  std::uint64_t trail_digest = 0;

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);
};

struct Request {
  std::uint64_t request_id = 0;   ///< idempotency token, client-chosen
  std::uint64_t deadline_ms = 0;  ///< per-attempt budget hint (0 = none)
  RpcKind kind = RpcKind::kPing;
  std::uint64_t job_id = 0;  ///< kStatus / kCancel / kResult
  std::uint64_t arg = 0;     ///< kTailLog: max records
  JobSpec spec;              ///< kSubmit

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);
};

struct Response {
  std::uint64_t request_id = 0;  ///< echoes the request
  RpcStatus status = RpcStatus::kOk;
  std::string error;
  std::uint64_t job_id = 0;  ///< kSubmit: assigned (or deduped) job id
  bool duplicate = false;    ///< kSubmit: request_id had already executed
  JobStatusMsg status_msg;   ///< kStatus
  JobResultMsg result;       ///< kResult
  std::vector<std::string> log_lines;  ///< kTailLog

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);
};

/// One whole frame (header + payload) for a message with save().
template <typename Msg>
std::vector<std::byte> encode_frame(const Msg& m) {
  BinaryWriter payload;
  payload.write_u32(kWireVersion);
  m.save(payload);
  BinaryWriter frame;
  write_crc_frame(frame, kWireMagic, payload.bytes());
  return frame.take();
}

/// Decode a payload previously framed by encode_frame (the transport has
/// already stripped and validated the frame header/CRC).
template <typename Msg>
Msg decode_payload(std::span<const std::byte> payload) {
  BinaryReader r(payload);
  const std::uint32_t version = r.read_u32();
  if (version != kWireVersion) {
    throw SerializationError("wire: unsupported version " +
                             std::to_string(version));
  }
  Msg m;
  m.load(r);
  return m;
}

}  // namespace fixd::svc
