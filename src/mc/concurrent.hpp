// Concurrency primitives for the parallel SystemExplorer (mc/sysmodel).
//
// The parallel explorer shards the frontier across worker threads, each
// owning a private scratch world. Two shared structures coordinate them:
//
//  - StripedVisitedSet: the canonical-state dedup set, lock-striped so
//    concurrent inserts of (well-mixed) digests rarely contend. Insertion
//    is linearizable per stripe; exactly one worker wins each digest, so
//    every unique state is expanded exactly once — the property the
//    differential tests (tests/test_mc_parallel.cpp) pin against the
//    sequential explorer.
//
//  - StealableDeque: a per-worker frontier deque. The owner pushes and
//    pops at its preferred end (back for DFS, front for BFS); idle workers
//    steal from the opposite end, which preserves the owner's local order
//    and hands thieves the coarsest-grained work. A plain mutex guards
//    each deque: the owner touches it once per node, so contention is
//    bounded by steal traffic, and the lock gives the happens-before edge
//    that publishes a node's COW snapshot graph to the stealing thread.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/hash.hpp"

namespace fixd::mc {

/// Lock-striped set of 64-bit state digests.
class StripedVisitedSet {
 public:
  explicit StripedVisitedSet(std::size_t stripes = 64) {
    // Round up to a power of two so stripe selection is a mask.
    std::size_t n = 1;
    while (n < stripes) n <<= 1;
    stripes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
    mask_ = n - 1;
  }

  /// Insert a digest; true iff it was not present (the caller owns the
  /// state and must expand it).
  bool insert(std::uint64_t h) {
    Stripe& s = *stripes_[stripe_of(h)];
    std::lock_guard<std::mutex> lk(s.mu);
    return s.set.insert(h).second;
  }

  /// Sorted copy of the whole set (test/differential hook; call after the
  /// workers have joined).
  std::vector<std::uint64_t> sorted_contents() const {
    std::vector<std::uint64_t> out;
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lk(s->mu);
      out.insert(out.end(), s->set.begin(), s->set.end());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_set<std::uint64_t> set;
  };

  std::size_t stripe_of(std::uint64_t h) const {
    // Digests are already well mixed; fold the high bits in anyway so a
    // biased low byte cannot serialize the stripes.
    return static_cast<std::size_t>(mix64(h)) & mask_;
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
};

/// A mutex-guarded deque supporting owner pop at either end plus stealing
/// from the opposite end. T must be movable.
template <typename T>
class StealableDeque {
 public:
  void push_back(T&& v) {
    std::lock_guard<std::mutex> lk(mu_);
    q_.push_back(std::move(v));
  }

  /// Owner pop for DFS (LIFO) order.
  bool pop_back(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    out = std::move(q_.back());
    q_.pop_back();
    return true;
  }

  /// Owner pop for BFS (FIFO) order.
  bool pop_front(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  /// Thief pop: the end opposite the owner's (`owner_lifo` says which end
  /// the owner uses), so stealing disturbs the owner's order least.
  bool steal(T& out, bool owner_lifo) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    if (owner_lifo) {
      out = std::move(q_.front());
      q_.pop_front();
    } else {
      out = std::move(q_.back());
      q_.pop_back();
    }
    return true;
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> q_;
};

}  // namespace fixd::mc
