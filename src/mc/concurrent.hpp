// Concurrency primitives for the parallel SystemExplorer (mc/sysmodel).
//
// The parallel explorer shards the frontier across worker threads, each
// owning a private scratch world. The shared structures coordinating them:
//
//  - CompactDigestSet / StripedVisitedSet: the canonical-state dedup set.
//    The storage is a compact open-addressing table of raw u64 digests
//    (~10 bytes per entry at the 0.7 load factor vs ~40+ for a node-based
//    unordered_set) — the visited set is the one explorer structure that
//    only ever grows in-RAM, so its bytes are reported
//    (`visited_resident_bytes`) and kept small; under a
//    `visited_budget_bytes` the tiered wrapper (mc/tiered_visited.hpp)
//    spills cold shards to disk. The striped wrapper lock-stripes inserts
//    so concurrent
//    (well-mixed) digests rarely contend. Insertion is linearizable per
//    stripe; exactly one worker wins each digest, so every unique state is
//    expanded exactly once — the property the differential tests
//    (tests/test_mc_parallel.cpp) pin against the sequential explorer.
//
//  - StealableDeque: a per-worker frontier deque. The owner pushes and
//    pops at its preferred end (back for DFS, front for BFS); idle workers
//    steal from the opposite end, which preserves the owner's local order
//    and hands thieves the coarsest-grained work. A plain mutex guards
//    each deque: the owner touches it once per node, so contention is
//    bounded by steal traffic, and the lock gives the happens-before edge
//    that publishes a node's COW snapshot graph to the stealing thread.
//
//  - PriorityShard: a per-worker max-heap for kPriority searches, with a
//    lock-free top-priority hint. Workers keep the heuristic *best-effort
//    global*: before popping locally they compare their own top against
//    every other shard's hint and take from the best-looking shard. Hints
//    are published without the shard lock, so a worker can momentarily
//    pick a slightly worse node than the true global best — the search
//    stays exhaustive and the visited set provably identical (pop order
//    never changes *which* states a dedup'd search visits, only when);
//    only the heuristic's tie-breaking differs from the old single
//    mutex-guarded global heap, which serialized every push and pop.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"

namespace fixd::mc {

/// Open-addressing set of 64-bit state digests: a flat power-of-two slot
/// array with linear probing, grown at a 0.7 load factor. Digests are
/// hasher outputs (already well mixed), so the raw value indexes the
/// table; 0 is the empty sentinel and the (astronomically rare) digest 0
/// is carried in a side flag. No tombstones — the visited set never
/// erases.
class CompactDigestSet {
 public:
  /// Insert a digest; true iff it was not present.
  bool insert(std::uint64_t h) {
    if (h == 0) {
      if (has_zero_) return false;
      has_zero_ = true;
      return true;
    }
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == h) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = h;
    ++size_;
    return true;
  }

  /// Membership probe without insertion (the tiered set's hot-tier check).
  bool contains(std::uint64_t h) const {
    if (h == 0) return has_zero_;
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == h) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  /// Extract every stored digest in ascending order and reset the table to
  /// empty, releasing its memory — the spill path of the tiered visited set
  /// (mc/tiered_visited.hpp) drains cold shards to disk with this.
  std::vector<std::uint64_t> take_sorted() {
    std::vector<std::uint64_t> out;
    out.reserve(size());
    for_each([&out](std::uint64_t v) { out.push_back(v); });
    std::sort(out.begin(), out.end());
    slots_.clear();
    slots_.shrink_to_fit();
    size_ = 0;
    has_zero_ = false;
    return out;
  }

  std::size_t size() const { return size_ + (has_zero_ ? 1 : 0); }

  /// Retained table bytes (the `visited_resident_bytes` stat).
  std::uint64_t bytes() const {
    return sizeof(*this) + slots_.capacity() * sizeof(std::uint64_t);
  }

  /// Visit every stored digest (unordered).
  template <typename F>
  void for_each(F&& f) const {
    if (has_zero_) f(std::uint64_t{0});
    for (std::uint64_t v : slots_) {
      if (v != 0) f(v);
    }
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(cap, 0);
    const std::size_t mask = cap - 1;
    for (std::uint64_t v : old) {
      if (v == 0) continue;
      std::size_t i = static_cast<std::size_t>(v) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = v;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  bool has_zero_ = false;
};

/// Lock-striped set of 64-bit state digests over compact tables.
class StripedVisitedSet {
 public:
  explicit StripedVisitedSet(std::size_t stripes = 64) {
    // Round up to a power of two so stripe selection is a mask.
    std::size_t n = 1;
    while (n < stripes) n <<= 1;
    stripes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
    mask_ = n - 1;
  }

  /// Insert a digest; true iff it was not present (the caller owns the
  /// state and must expand it).
  bool insert(std::uint64_t h) {
    Stripe& s = *stripes_[stripe_of(h)];
    std::lock_guard<std::mutex> lk(s.mu);
    return s.set.insert(h);
  }

  /// Total retained bytes across stripes (the `visited_resident_bytes`
  /// stat; call with the workers quiescent or joined for an exact figure).
  std::uint64_t bytes() const {
    std::uint64_t n = 0;
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lk(s->mu);
      n += s->set.bytes();
    }
    return n;
  }

  /// Sorted copy of the whole set (test/differential hook; call after the
  /// workers have joined).
  std::vector<std::uint64_t> sorted_contents() const {
    std::vector<std::uint64_t> out;
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lk(s->mu);
      s->set.for_each([&out](std::uint64_t v) { out.push_back(v); });
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    CompactDigestSet set;
  };

  std::size_t stripe_of(std::uint64_t h) const {
    // Stripe selection re-mixes so a biased low byte cannot serialize the
    // stripes; the in-stripe table probes on the raw digest, so the two
    // index streams stay independent.
    return static_cast<std::size_t>(mix64(h)) & mask_;
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
};

/// The visited set for sleep_sets + dedup searches: digest -> the sorted
/// sleep-key signature the state was (last) expanded with. Sleep sets and
/// digest dedup are individually sound but unsound composed naively: the
/// first path to reach a state explores only the children outside *its*
/// sleep set, and a later path arriving with a different sleep set would
/// be pruned as a duplicate even though it still owes the children that
/// are outside its own sleep set but inside the stored one. `visit`
/// decides atomically (one stripe lock covers membership and signature):
///
///   - absent            -> kNew: first arrival, signature stored.
///   - arriving ⊇ stored -> kPrune: everything the arrival would explore
///                          (complement of its sleep set) was already
///                          explored (complement of the stored one).
///   - otherwise         -> kReexpand: the caller re-expands the state
///                          with stored ∩ arriving (written back to both
///                          `keys` and the table). The stored signature
///                          shrinks strictly on every re-expansion, so the
///                          process terminates.
///
/// The single lock per operation is what makes the parallel path safe: a
/// plain visited-set insert followed by a separate signature lookup would
/// let a second worker observe "duplicate" before the first worker had
/// stored its signature, and prune unsoundly.
class StripedSleepVisited {
 public:
  enum class Verdict { kNew, kPrune, kReexpand };

  explicit StripedSleepVisited(std::size_t stripes = 64) {
    std::size_t n = 1;
    while (n < stripes) n <<= 1;
    stripes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
    mask_ = n - 1;
  }

  /// `keys` is the arriving node's sorted sleep-key signature; on
  /// kReexpand it is replaced by the intersection to expand with. When
  /// `released` is non-null, kReexpand also reports the keys the stored
  /// signature slept but the intersection no longer does — the actions the
  /// earlier expansion skipped on a coverage claim the new arrival path
  /// cannot make. A POR search must re-seed exactly those (via pending
  /// requests); without POR the re-expansion runs them naturally because
  /// the child's smaller sleep set no longer skips them.
  Verdict visit(std::uint64_t digest, std::vector<std::uint64_t>& keys,
                std::vector<std::uint64_t>* released = nullptr) {
    Stripe& s = *stripes_[stripe_of(digest)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(digest);
    if (it == s.map.end()) {
      s.map.emplace(digest, keys);
      return Verdict::kNew;
    }
    const std::vector<std::uint64_t>& stored = it->second;
    if (std::includes(keys.begin(), keys.end(), stored.begin(),
                      stored.end())) {
      return Verdict::kPrune;
    }
    std::vector<std::uint64_t> inter;
    std::set_intersection(stored.begin(), stored.end(), keys.begin(),
                          keys.end(), std::back_inserter(inter));
    if (released != nullptr) {
      released->clear();
      std::set_difference(stored.begin(), stored.end(), inter.begin(),
                          inter.end(), std::back_inserter(*released));
    }
    it->second = inter;
    keys = std::move(inter);
    return Verdict::kReexpand;
  }

  std::uint64_t bytes() const {
    std::uint64_t n = 0;
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lk(s->mu);
      n += sizeof(Stripe);
      for (const auto& [d, keys] : s->map) {
        n += sizeof(d) + sizeof(keys) + keys.capacity() * sizeof(keys[0]);
      }
    }
    return n;
  }

  /// Sorted digests (the collect_visited hook; call with workers joined).
  std::vector<std::uint64_t> sorted_contents() const {
    std::vector<std::uint64_t> out;
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lk(s->mu);
      for (const auto& [d, keys] : s->map) out.push_back(d);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> map;
  };

  std::size_t stripe_of(std::uint64_t h) const {
    return static_cast<std::size_t>(mix64(h)) & mask_;
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
};

/// Per-state expansion records for dynamic POR: digest -> {the enabled
/// action keys at that state, the keys already run from it, the keys
/// requested by race detection but not yet run}. One stripe lock covers
/// every transition of a record, so the sequential explorer and all
/// parallel workers share the same code path. The lifecycle:
///
///   begin_expand  -> called when a node materializing the state is
///                    expanded; registers the enabled set on first
///                    expansion and drains the pending requests.
///   commit_done   -> marks the keys the expansion selected to run
///                    (called at selection time, before execution, so a
///                    concurrent race request cannot double-push).
///   request       -> race detection asks the state to also run `key`.
///                    kRegistered means the caller must push a backtrack
///                    node re-materializing the state; kCovered means it
///                    is already done/pending; kNotEnabled tells the race
///                    walk to keep looking for an older ancestor (the
///                    action did not exist there yet — it is causally
///                    downstream of that prefix).
class StripedPorRecords {
 public:
  enum class Request { kRegistered, kCovered, kNotEnabled, kNoRecord };

  explicit StripedPorRecords(std::size_t stripes = 64) {
    std::size_t n = 1;
    while (n < stripes) n <<= 1;
    stripes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
    mask_ = n - 1;
  }

  /// `enabled_sorted` is the state's full enabled key set (deterministic
  /// per digest, so every expansion presents the same set). Drains pending
  /// requests into `take`; `first` reports whether this is the state's
  /// first expansion.
  void begin_expand(std::uint64_t digest,
                    const std::vector<std::uint64_t>& enabled_sorted,
                    std::vector<std::uint64_t>& take, bool& first) {
    Stripe& s = *stripes_[stripe_of(digest)];
    std::lock_guard<std::mutex> lk(s.mu);
    Record& r = s.map[digest];
    first = !r.expanded;
    if (first) {
      r.enabled = enabled_sorted;
      r.expanded = true;
    }
    take = std::move(r.pending);
    r.pending.clear();
  }

  /// Record the selected keys as run (sorted-unique merge).
  void commit_done(std::uint64_t digest,
                   const std::vector<std::uint64_t>& keys) {
    Stripe& s = *stripes_[stripe_of(digest)];
    std::lock_guard<std::mutex> lk(s.mu);
    Record& r = s.map[digest];
    std::vector<std::uint64_t> merged;
    merged.reserve(r.done.size() + keys.size());
    std::vector<std::uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    std::set_union(r.done.begin(), r.done.end(), sorted.begin(),
                   sorted.end(), std::back_inserter(merged));
    r.done = std::move(merged);
  }

  /// Force `key` onto the state's work list regardless of expansion
  /// status. Used when a sleep-set re-expansion releases keys the stored
  /// expansion skipped: unlike request(), the state may not have a record
  /// yet (its first frontier node can still be queued), so this creates
  /// one in the unexpanded state and the eventual begin_expand drains it.
  /// No-op if the key is already done or pending.
  void seed_pending(std::uint64_t digest, std::uint64_t key) {
    Stripe& s = *stripes_[stripe_of(digest)];
    std::lock_guard<std::mutex> lk(s.mu);
    Record& r = s.map[digest];
    if (std::binary_search(r.done.begin(), r.done.end(), key) ||
        std::find(r.pending.begin(), r.pending.end(), key) !=
            r.pending.end()) {
      return;
    }
    r.pending.push_back(key);
  }

  Request request(std::uint64_t digest, std::uint64_t key) {
    Stripe& s = *stripes_[stripe_of(digest)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(digest);
    if (it == s.map.end() || !it->second.expanded) return Request::kNoRecord;
    Record& r = it->second;
    if (!std::binary_search(r.enabled.begin(), r.enabled.end(), key)) {
      return Request::kNotEnabled;
    }
    if (std::binary_search(r.done.begin(), r.done.end(), key) ||
        std::find(r.pending.begin(), r.pending.end(), key) !=
            r.pending.end()) {
      return Request::kCovered;
    }
    r.pending.push_back(key);
    return Request::kRegistered;
  }

 private:
  struct Record {
    std::vector<std::uint64_t> enabled;  // sorted
    std::vector<std::uint64_t> done;     // sorted
    std::vector<std::uint64_t> pending;  // unsorted, small
    bool expanded = false;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Record> map;
  };

  std::size_t stripe_of(std::uint64_t h) const {
    return static_cast<std::size_t>(mix64(h)) & mask_;
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
};

/// A mutex-guarded deque supporting owner pop at either end plus stealing
/// from the opposite end. T must be movable.
template <typename T>
class StealableDeque {
 public:
  void push_back(T&& v) {
    std::lock_guard<std::mutex> lk(mu_);
    q_.push_back(std::move(v));
  }

  /// Owner pop for DFS (LIFO) order.
  bool pop_back(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    out = std::move(q_.back());
    q_.pop_back();
    return true;
  }

  /// Owner pop for BFS (FIFO) order.
  bool pop_front(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  /// Thief pop: the end opposite the owner's (`owner_lifo` says which end
  /// the owner uses), so stealing disturbs the owner's order least.
  bool steal(T& out, bool owner_lifo) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    if (owner_lifo) {
      out = std::move(q_.front());
      q_.pop_front();
    } else {
      out = std::move(q_.back());
      q_.pop_back();
    }
    return true;
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> q_;
};

/// One worker's shard of the best-effort sharded priority frontier: a
/// mutex-guarded binary max-heap of (priority, T) plus an atomic hint
/// publishing the current top priority (-inf when empty). Owners push to
/// their own shard; any worker pops the top of whichever shard's hint
/// looks best (see the header comment for the ordering guarantee). The
/// shard mutex provides the happens-before edge publishing a node's COW
/// snapshot graph to a stealing thread, exactly like StealableDeque's.
template <typename T>
class PriorityShard {
 public:
  void push(double pri, T&& v) {
    std::lock_guard<std::mutex> lk(mu_);
    heap_.push_back(Entry{pri, std::move(v)});
    std::push_heap(heap_.begin(), heap_.end(), less);
    top_.store(heap_.front().pri, std::memory_order_relaxed);
  }

  /// Pop the shard's best node (owner pop and thief steal are the same
  /// operation: the top is both the owner's preferred node and the
  /// coarsest-grained work to hand a thief).
  bool pop_top(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), less);
    out = std::move(heap_.back().v);
    heap_.pop_back();
    top_.store(heap_.empty() ? kEmptyHint : heap_.front().pri,
               std::memory_order_relaxed);
    return true;
  }

  /// Lock-free view of the top priority; kEmptyHint when (probably)
  /// empty. May be momentarily stale — callers treat it as a routing
  /// hint, never as ground truth (pop_top re-checks under the lock).
  double top_hint() const { return top_.load(std::memory_order_relaxed); }

  static constexpr double kEmptyHint =
      -std::numeric_limits<double>::infinity();

 private:
  struct Entry {
    double pri;
    T v;
  };
  static bool less(const Entry& a, const Entry& b) { return a.pri < b.pri; }

  mutable std::mutex mu_;
  std::vector<Entry> heap_;
  std::atomic<double> top_{kEmptyHint};
};

}  // namespace fixd::mc
