// ModelD's guarded-command front end (§4.3, Fig. 7).
//
// "The model checking engine is based on a guarded command model, where the
// behavior of the system is described by a set of guarded commands that can
// be chosen for execution any time."
//
// A GuardedModel<S> is: an initial state, a set of named actions
// (guard: S -> bool, effect: S -> S), and a set of invariants. The engine
// (mc/engine.hpp) explores the induced transition system. Two ModelD
// features the paper leans on are first-class here:
//
//  - dynamic action sets: actions can be added/enabled/disabled between (or
//    during, via ActionSetEditor) explorations — "the ability to dynamically
//    change the set of actions available to the model checking engine";
//  - customizable search order — "the ability to customize the search order
//    for the state graph" (see ExploreOptions::order / priority).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace fixd::mc {

template <typename S>
struct GuardedAction {
  std::string name;
  std::function<bool(const S&)> guard;
  std::function<void(S&)> effect;
  bool enabled = true;
};

template <typename S>
struct ModelInvariant {
  std::string name;
  /// nullopt = holds; string = violation detail.
  std::function<std::optional<std::string>(const S&)> check;
};

/// Default state hasher for states providing save(BinaryWriter&).
template <typename S>
std::uint64_t hash_by_serialization(const S& s) {
  BinaryWriter w;
  s.save(w);
  return hash_bytes(w.bytes());
}

template <typename S>
class GuardedModel {
 public:
  using HashFn = std::function<std::uint64_t(const S&)>;

  GuardedModel(S initial, HashFn hash)
      : initial_(std::move(initial)), hash_(std::move(hash)) {
    FIXD_CHECK_MSG(hash_ != nullptr, "GuardedModel: null hash fn");
  }

  /// Convenience for serializable states.
  static GuardedModel with_serial_hash(S initial) {
    return GuardedModel(std::move(initial), &hash_by_serialization<S>);
  }

  /// Register an action; returns its handle.
  std::size_t add_action(std::string name, std::function<bool(const S&)> guard,
                         std::function<void(S&)> effect) {
    GuardedAction<S> a;
    a.name = std::move(name);
    a.guard = std::move(guard);
    a.effect = std::move(effect);
    actions_.push_back(std::move(a));
    return actions_.size() - 1;
  }

  /// Enable/disable an action (dynamic action-set mutation).
  void set_enabled(std::size_t handle, bool enabled) {
    FIXD_CHECK_MSG(handle < actions_.size(), "bad action handle");
    actions_[handle].enabled = enabled;
  }

  bool is_enabled(std::size_t handle) const {
    FIXD_CHECK_MSG(handle < actions_.size(), "bad action handle");
    return actions_[handle].enabled;
  }

  void add_invariant(std::string name,
                     std::function<std::optional<std::string>(const S&)> fn) {
    invariants_.push_back({std::move(name), std::move(fn)});
  }

  const S& initial() const { return initial_; }
  void set_initial(S s) { initial_ = std::move(s); }

  const std::vector<GuardedAction<S>>& actions() const { return actions_; }
  const std::vector<ModelInvariant<S>>& invariants() const {
    return invariants_;
  }

  std::uint64_t hash_state(const S& s) const { return hash_(s); }

  /// Indices of actions whose guard holds in `s` (enabled ones only).
  std::vector<std::size_t> fireable(const S& s) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      if (actions_[i].enabled && actions_[i].guard(s)) out.push_back(i);
    }
    return out;
  }

  /// First violated invariant in `s`, if any.
  std::optional<std::pair<std::string, std::string>> violated(
      const S& s) const {
    for (const auto& inv : invariants_) {
      if (auto r = inv.check(s)) return std::make_pair(inv.name, *r);
    }
    return std::nullopt;
  }

 private:
  S initial_;
  HashFn hash_;
  std::vector<GuardedAction<S>> actions_;
  std::vector<ModelInvariant<S>> invariants_;
};

}  // namespace fixd::mc
