// A library of general-purpose guarded models.
//
// §4.5 (future work): "develop a set of general-purpose models designed to
// integrate with ModelD in order to imitate the behavior of common and
// well-known components of the environment". This header provides the
// classics — both as ready substrates for environment modeling and as
// engine workloads with known state counts and known bugs:
//
//   dining_philosophers(n)    deadlock when every philosopher holds one
//                             fork (found via the no-progress invariant)
//   peterson_mutex()          Peterson's algorithm (verifies), plus the
//                             broken variant without the turn variable
//   bounded_channel(cap)      a FIFO channel model with overflow invariant
#pragma once

#include <array>
#include <cstdint>

#include "mc/guarded.hpp"

namespace fixd::mc::models {

// --- dining philosophers ------------------------------------------------------

struct PhilosopherState {
  // fork[i]: 0 free, else 1 + holder index. phase[i]: 0 thinking,
  // 1 holds left, 2 eating.
  std::array<std::uint8_t, 8> fork{};
  std::array<std::uint8_t, 8> phase{};
  std::uint8_t n = 0;
  std::uint64_t meals = 0;

  void save(BinaryWriter& w) const {
    for (auto f : fork) w.write_u8(f);
    for (auto p : phase) w.write_u8(p);
    w.write_u8(n);
    // meals deliberately excluded from the hash-relevant encoding? No —
    // include: progress counting is part of the modeled state.
    w.write_u64(meals);
  }
};

/// The classic left-fork-first protocol: deadlocks when all n hold their
/// left fork. `max_meals` bounds the state space.
inline GuardedModel<PhilosopherState> dining_philosophers(
    std::uint8_t n, std::uint64_t max_meals = 2) {
  FIXD_CHECK_MSG(n >= 2 && n <= 8, "2..8 philosophers");
  PhilosopherState init;
  init.n = n;
  auto m = GuardedModel<PhilosopherState>::with_serial_hash(init);

  for (std::uint8_t i = 0; i < n; ++i) {
    const std::uint8_t left = i;
    const std::uint8_t right = static_cast<std::uint8_t>((i + 1) % n);
    m.add_action(
        "p" + std::to_string(i) + ".take-left",
        [i, left, max_meals](const PhilosopherState& s) {
          return s.phase[i] == 0 && s.fork[left] == 0 &&
                 s.meals < max_meals;
        },
        [i, left](PhilosopherState& s) {
          s.fork[left] = static_cast<std::uint8_t>(1 + i);
          s.phase[i] = 1;
        });
    m.add_action(
        "p" + std::to_string(i) + ".take-right",
        [i, right](const PhilosopherState& s) {
          return s.phase[i] == 1 && s.fork[right] == 0;
        },
        [i, right](PhilosopherState& s) {
          s.fork[right] = static_cast<std::uint8_t>(1 + i);
          s.phase[i] = 2;
        });
    m.add_action(
        "p" + std::to_string(i) + ".put-down",
        [i](const PhilosopherState& s) { return s.phase[i] == 2; },
        [i, left, right](PhilosopherState& s) {
          s.fork[left] = 0;
          s.fork[right] = 0;
          s.phase[i] = 0;
          ++s.meals;
        });
  }

  // Deadlock: everyone holds exactly their left fork.
  m.add_invariant(
      "no-deadlock",
      [n](const PhilosopherState& s) -> std::optional<std::string> {
        for (std::uint8_t i = 0; i < n; ++i) {
          if (s.phase[i] != 1) return std::nullopt;
        }
        return "circular wait: every philosopher holds one fork";
      });
  return m;
}

/// The standard fix: the last philosopher picks the right fork first.
inline GuardedModel<PhilosopherState> dining_philosophers_fixed(
    std::uint8_t n, std::uint64_t max_meals = 2) {
  auto m = dining_philosophers(n, max_meals);
  // Retire the last philosopher's buggy order; inject the asymmetric one.
  // Actions are laid out 3 per philosopher: [take-left, take-right, put].
  const std::size_t base = static_cast<std::size_t>(n - 1) * 3;
  m.set_enabled(base + 0, false);
  m.set_enabled(base + 1, false);
  const std::uint8_t i = static_cast<std::uint8_t>(n - 1);
  const std::uint8_t left = i;
  const std::uint8_t right = 0;
  m.add_action(
      "p" + std::to_string(i) + ".take-right-first",
      [i, right, max_meals](const PhilosopherState& s) {
        return s.phase[i] == 0 && s.fork[right] == 0 && s.meals < max_meals;
      },
      [i, right](PhilosopherState& s) {
        s.fork[right] = static_cast<std::uint8_t>(1 + i);
        s.phase[i] = 1;
      });
  m.add_action(
      "p" + std::to_string(i) + ".take-left-second",
      [i, left](const PhilosopherState& s) {
        return s.phase[i] == 1 && s.fork[left] == 0;
      },
      [i, left](PhilosopherState& s) {
        s.fork[left] = static_cast<std::uint8_t>(1 + i);
        s.phase[i] = 2;
      });
  return m;
}

// --- Peterson's mutual exclusion ------------------------------------------------

struct PetersonState {
  std::uint8_t flag0 = 0, flag1 = 0;
  std::uint8_t turn = 0;
  std::uint8_t pc0 = 0, pc1 = 0;
  std::uint8_t in_cs0 = 0, in_cs1 = 0;
  std::uint64_t entries = 0;

  void save(BinaryWriter& w) const {
    w.write_u8(flag0);
    w.write_u8(flag1);
    w.write_u8(turn);
    w.write_u8(pc0);
    w.write_u8(pc1);
    w.write_u8(in_cs0);
    w.write_u8(in_cs1);
    w.write_u64(entries);
  }
};

namespace detail {
inline void add_mutex_invariant(GuardedModel<PetersonState>& m) {
  m.add_invariant("mutual-exclusion",
                  [](const PetersonState& s) -> std::optional<std::string> {
                    if (s.in_cs0 && s.in_cs1)
                      return "both processes in the critical section";
                    return std::nullopt;
                  });
}
}  // namespace detail

/// Peterson's algorithm (correct: flag + turn + gated entry). Verifies.
///
/// `use_turn=false` returns the broken check-then-act variant: each process
/// first *checks* the other's flag, then sets its own and enters — the
/// classic TOCTOU race in which both pass the check before either flag is
/// visible.
inline GuardedModel<PetersonState> peterson_mutex(bool use_turn = true,
                                                  std::uint64_t max_entries =
                                                      2) {
  auto m = GuardedModel<PetersonState>::with_serial_hash(PetersonState{});

  auto add_safe_proc = [&](int me) {
    auto flag_of = [me](PetersonState& s) -> std::uint8_t& {
      return me == 0 ? s.flag0 : s.flag1;
    };
    auto pc_of = [me](PetersonState& s) -> std::uint8_t& {
      return me == 0 ? s.pc0 : s.pc1;
    };
    auto cs_of = [me](PetersonState& s) -> std::uint8_t& {
      return me == 0 ? s.in_cs0 : s.in_cs1;
    };
    auto pc_val = [me](const PetersonState& s) {
      return me == 0 ? s.pc0 : s.pc1;
    };
    auto other_flag = [me](const PetersonState& s) {
      return me == 0 ? s.flag1 : s.flag0;
    };

    m.add_action(
        "p" + std::to_string(me) + ".request",
        [pc_val, max_entries](const PetersonState& s) {
          return pc_val(s) == 0 && s.entries < max_entries;
        },
        [flag_of, pc_of, me](PetersonState& s) {
          flag_of(s) = 1;
          s.turn = static_cast<std::uint8_t>(1 - me);
          pc_of(s) = 1;
        });
    m.add_action(
        "p" + std::to_string(me) + ".enter",
        [pc_val, other_flag, me](const PetersonState& s) {
          return pc_val(s) == 1 &&
                 (other_flag(s) == 0 || s.turn == me);
        },
        [pc_of, cs_of](PetersonState& s) {
          pc_of(s) = 2;
          cs_of(s) = 1;
          ++s.entries;
        });
    m.add_action(
        "p" + std::to_string(me) + ".exit",
        [pc_val](const PetersonState& s) { return pc_val(s) == 2; },
        [flag_of, pc_of, cs_of](PetersonState& s) {
          flag_of(s) = 0;
          pc_of(s) = 0;
          cs_of(s) = 0;
        });
  };

  auto add_racy_proc = [&](int me) {
    auto flag_of = [me](PetersonState& s) -> std::uint8_t& {
      return me == 0 ? s.flag0 : s.flag1;
    };
    auto pc_of = [me](PetersonState& s) -> std::uint8_t& {
      return me == 0 ? s.pc0 : s.pc1;
    };
    auto cs_of = [me](PetersonState& s) -> std::uint8_t& {
      return me == 0 ? s.in_cs0 : s.in_cs1;
    };
    auto pc_val = [me](const PetersonState& s) {
      return me == 0 ? s.pc0 : s.pc1;
    };
    auto other_flag = [me](const PetersonState& s) {
      return me == 0 ? s.flag1 : s.flag0;
    };

    // BUG: check the other's flag BEFORE publishing our own intent.
    m.add_action(
        "p" + std::to_string(me) + ".check",
        [pc_val, other_flag, max_entries](const PetersonState& s) {
          return pc_val(s) == 0 && other_flag(s) == 0 &&
                 s.entries < max_entries;
        },
        [pc_of](PetersonState& s) { pc_of(s) = 1; });
    m.add_action(
        "p" + std::to_string(me) + ".set-flag",
        [pc_val](const PetersonState& s) { return pc_val(s) == 1; },
        [flag_of, pc_of](PetersonState& s) {
          flag_of(s) = 1;
          pc_of(s) = 2;
        });
    m.add_action(
        "p" + std::to_string(me) + ".enter",
        [pc_val](const PetersonState& s) { return pc_val(s) == 2; },
        [pc_of, cs_of](PetersonState& s) {
          pc_of(s) = 3;
          cs_of(s) = 1;
          ++s.entries;
        });
    m.add_action(
        "p" + std::to_string(me) + ".exit",
        [pc_val](const PetersonState& s) { return pc_val(s) == 3; },
        [flag_of, pc_of, cs_of](PetersonState& s) {
          flag_of(s) = 0;
          pc_of(s) = 0;
          cs_of(s) = 0;
        });
  };

  if (use_turn) {
    add_safe_proc(0);
    add_safe_proc(1);
  } else {
    add_racy_proc(0);
    add_racy_proc(1);
  }
  detail::add_mutex_invariant(m);
  return m;
}

// --- bounded FIFO channel ----------------------------------------------------------

struct ChannelState {
  std::array<std::uint8_t, 16> buf{};
  std::uint8_t head = 0, count = 0;
  std::uint8_t cap = 0;
  std::uint8_t next_send = 0, next_recv = 0;
  std::uint64_t delivered = 0;

  void save(BinaryWriter& w) const {
    for (auto b : buf) w.write_u8(b);
    w.write_u8(head);
    w.write_u8(count);
    w.write_u8(cap);
    w.write_u8(next_send);
    w.write_u8(next_recv);
    w.write_u64(delivered);
  }
};

/// A bounded FIFO channel as an environment model: send (guarded by
/// capacity unless `unchecked`), receive (checks FIFO order via sequence
/// stamps). The `unchecked` variant violates the overflow invariant.
inline GuardedModel<ChannelState> bounded_channel(std::uint8_t cap,
                                                  bool unchecked = false,
                                                  std::uint8_t messages = 6) {
  FIXD_CHECK_MSG(cap >= 1 && cap <= 15, "capacity 1..15");
  ChannelState init;
  init.cap = cap;
  auto m = GuardedModel<ChannelState>::with_serial_hash(init);

  m.add_action(
      "send",
      [unchecked, messages](const ChannelState& s) {
        if (s.next_send >= messages) return false;
        return unchecked || s.count < s.cap;
      },
      [](ChannelState& s) {
        std::uint8_t slot =
            static_cast<std::uint8_t>((s.head + s.count) % s.buf.size());
        s.buf[slot] = ++s.next_send;  // payload = sequence number
        ++s.count;
      });
  m.add_action(
      "recv", [](const ChannelState& s) { return s.count > 0; },
      [](ChannelState& s) {
        std::uint8_t v = s.buf[s.head];
        s.buf[s.head] = 0;
        s.head = static_cast<std::uint8_t>((s.head + 1) % s.buf.size());
        --s.count;
        // FIFO check folded into state: mismatches freeze next_recv.
        if (v == s.next_recv + 1) ++s.next_recv;
        ++s.delivered;
      });

  m.add_invariant("no-overflow",
                  [](const ChannelState& s) -> std::optional<std::string> {
                    if (s.count > s.cap)
                      return "channel holds " + std::to_string(s.count) +
                             " > cap " + std::to_string(s.cap);
                    return std::nullopt;
                  });
  m.add_invariant("fifo-order",
                  [](const ChannelState& s) -> std::optional<std::string> {
                    if (s.delivered > s.next_recv)
                      return "out-of-order or lost delivery";
                    return std::nullopt;
                  });
  return m;
}

}  // namespace fixd::mc::models
