// The ModelD back-end engine: state-space exploration over guarded models.
//
// "The back-end component is responsible for performing the actual state
// transitions, keeping track of the visited execution paths (calculating the
// reachability graph), and verifying that no user-specified invariants are
// violated." (§4.3)
//
// Search orders (the "customize the search order" feature):
//   kDfs        depth-first, cheap frontier, long counterexamples
//   kBfs        breadth-first, shortest counterexamples
//   kPriority   best-first by a user heuristic (ModelD's heuristic search)
//   kRandomWalk repeated seeded walks with restarts (no visited set)
//
// The engine records the reachability graph as (parent, action) links so a
// violation's full trail is reconstructible without storing states.
#pragma once

#include <algorithm>
#include <chrono>
#include <deque>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "mc/guarded.hpp"

namespace fixd::mc {

enum class SearchOrder { kDfs, kBfs, kPriority, kRandomWalk };

inline const char* to_string(SearchOrder o) {
  switch (o) {
    case SearchOrder::kDfs: return "dfs";
    case SearchOrder::kBfs: return "bfs";
    case SearchOrder::kPriority: return "priority";
    case SearchOrder::kRandomWalk: return "random-walk";
  }
  return "?";
}

struct ExploreStats {
  std::uint64_t states = 0;       ///< unique states visited
  std::uint64_t transitions = 0;  ///< actions executed
  std::uint64_t duplicates = 0;   ///< transitions into already-seen states
  std::uint64_t max_depth = 0;
  bool truncated = false;  ///< a budget (states/depth) was exhausted
  double wall_ms = 0.0;    ///< total explore() wall time
  double digest_ms = 0.0;  ///< wall time spent hashing states for dedup
  double snapshot_ms = 0.0;  ///< wall time spent capturing frontier states
  /// Peak retained frontier memory, shared buffers (COW checkpoints,
  /// message payloads) counted once (SystemExplorer only). Exact for
  /// sequential searches; with workers > 1 it is the sum of per-worker
  /// meter peaks — an upper bound (worker peaks need not be simultaneous,
  /// buffers shared across workers are charged once per worker, and
  /// stolen nodes — deque or priority-shard — stay charged on the worker
  /// that pushed them).
  std::uint64_t peak_frontier_bytes = 0;
  /// Parallel searches: the largest single-worker contribution to the
  /// peak_frontier_bytes sum (0 when workers == 1).
  std::uint64_t peak_frontier_bytes_max_worker = 0;
  /// Retained *resident* bytes of the visited (dedup) set at the end of
  /// the search — the one explorer structure that only grows in RAM unless
  /// a `visited_budget_bytes` lets it spill (SystemExplorer graph
  /// searches; 0 for random walks and dedup-off runs).
  std::uint64_t visited_resident_bytes = 0;
  /// High-water mark of visited_resident_bytes over the run — what the
  /// `visited_budget_bytes` resident-memory gate is checked against
  /// (equal to the final resident bytes when nothing spilled).
  std::uint64_t visited_peak_resident_bytes = 0;
  /// Bytes of the visited set living on disk at the end of the search
  /// (sorted spill runs; 0 unless `visited_budget_bytes` forced a spill).
  std::uint64_t visited_spilled_bytes = 0;
  /// Cumulative spill IO written over the run (re-merges count every
  /// generation, so this can exceed visited_spilled_bytes).
  std::uint64_t spilled_bytes = 0;
  /// Bloom-filter false positives / queries for the tiered visited set
  /// (each false positive costs one disk probe, never correctness).
  double bloom_fp_rate = 0.0;
  /// Trail-frontier anchors whose snapshot was dropped under
  /// `frontier_budget_bytes`, and evicted anchors rebuilt on demand by
  /// root-anchored replay (a rebuilt anchor can serve many pops).
  std::uint64_t anchor_evictions = 0;
  std::uint64_t anchor_recomputes = 0;
  /// Actions re-executed to rebuild popped states from their anchors
  /// (trail-frontier mode only; 0 in snapshot mode).
  std::uint64_t replayed_actions = 0;
  /// Worker threads that ran the search (1 = sequential). When > 1,
  /// digest_ms/snapshot_ms are CPU time summed across workers, so they can
  /// legitimately exceed wall_ms.
  std::uint64_t workers = 1;
  /// Frontier nodes a worker took from another worker's shard (deque
  /// steal, or a priority-shard pop routed to a better-looking victim;
  /// parallel SystemExplorer only; load-balance observability).
  std::uint64_t steals = 0;
  /// Sleep+dedup soundness repairs: duplicate states re-expanded because
  /// they were re-reached with a sleep set that was not a superset of the
  /// stored one (SystemExplorer, sleep_sets && dedup only).
  std::uint64_t sleep_reexpansions = 0;
  /// Dynamic POR: enabled actions deferred at expansion (not part of the
  /// chosen source set) and backtrack nodes pushed by race detection
  /// (SystemExplorer, por only).
  std::uint64_t por_deferred = 0;
  std::uint64_t por_backtracks = 0;

  /// Exploration throughput (the Investigator's headline number).
  double states_per_sec() const {
    return wall_ms > 0.0 ? static_cast<double>(states) / wall_ms * 1000.0
                         : 0.0;
  }

  // Wire form (service job journal / RPC results). Field-by-field in
  // declaration order; extend both sides together.
  void save(BinaryWriter& w) const {
    w.write_u64(states);
    w.write_u64(transitions);
    w.write_u64(duplicates);
    w.write_u64(max_depth);
    w.write_bool(truncated);
    w.write_f64(wall_ms);
    w.write_f64(digest_ms);
    w.write_f64(snapshot_ms);
    w.write_u64(peak_frontier_bytes);
    w.write_u64(peak_frontier_bytes_max_worker);
    w.write_u64(visited_resident_bytes);
    w.write_u64(visited_peak_resident_bytes);
    w.write_u64(visited_spilled_bytes);
    w.write_u64(spilled_bytes);
    w.write_f64(bloom_fp_rate);
    w.write_u64(anchor_evictions);
    w.write_u64(anchor_recomputes);
    w.write_u64(replayed_actions);
    w.write_u64(workers);
    w.write_u64(steals);
    w.write_u64(sleep_reexpansions);
    w.write_u64(por_deferred);
    w.write_u64(por_backtracks);
  }

  void load(BinaryReader& r) {
    states = r.read_u64();
    transitions = r.read_u64();
    duplicates = r.read_u64();
    max_depth = r.read_u64();
    truncated = r.read_bool();
    wall_ms = r.read_f64();
    digest_ms = r.read_f64();
    snapshot_ms = r.read_f64();
    peak_frontier_bytes = r.read_u64();
    peak_frontier_bytes_max_worker = r.read_u64();
    visited_resident_bytes = r.read_u64();
    visited_peak_resident_bytes = r.read_u64();
    visited_spilled_bytes = r.read_u64();
    spilled_bytes = r.read_u64();
    bloom_fp_rate = r.read_f64();
    anchor_evictions = r.read_u64();
    anchor_recomputes = r.read_u64();
    replayed_actions = r.read_u64();
    workers = r.read_u64();
    steals = r.read_u64();
    sleep_reexpansions = r.read_u64();
    por_deferred = r.read_u64();
    por_backtracks = r.read_u64();
  }
};

struct ModelViolation {
  std::string invariant;
  std::string detail;
  std::vector<std::string> trail;  ///< action names from the initial state
  std::size_t depth = 0;
};

struct ExploreResult {
  ExploreStats stats;
  std::vector<ModelViolation> violations;
  bool found_violation() const { return !violations.empty(); }
};

/// Default `max_states` caps. The two explorers deliberately differ:
/// abstract-model states (Explorer<S>) are tens of bytes hashed in
/// nanoseconds, so a ~1M-state default costs ~10 MB of visited set; a
/// SystemExplorer state is a whole COW world whose expansion costs
/// microseconds and whose frontier snapshot can run to kilobytes, so its
/// default stays an order of magnitude lower. Beyond-RAM runs raise the
/// SystemExplorer cap explicitly alongside `visited_budget_bytes` /
/// `frontier_budget_bytes` (docs/PERF.md Layer 9).
inline constexpr std::size_t kDefaultModelMaxStates = 1 << 20;
inline constexpr std::size_t kDefaultSysMaxStates = 200000;

struct ExploreOptions {
  SearchOrder order = SearchOrder::kBfs;
  std::size_t max_states = kDefaultModelMaxStates;
  std::size_t max_depth = 1 << 20;
  std::size_t max_violations = 1;  ///< stop after this many violations
  std::uint64_t seed = 42;         ///< random-walk seed
  std::size_t walk_restarts = 64;  ///< random-walk budget
};

template <typename S>
class Explorer {
 public:
  using PriorityFn = std::function<double(const S&)>;

  explicit Explorer(const GuardedModel<S>& model, ExploreOptions opts = {})
      : model_(model), opts_(opts) {}

  /// Heuristic for kPriority (higher explored first).
  void set_priority(PriorityFn fn) { priority_ = std::move(fn); }

  ExploreResult explore() {
    auto t0 = std::chrono::steady_clock::now();
    ExploreResult res = opts_.order == SearchOrder::kRandomWalk
                            ? random_walk()
                            : graph_search();
    res.stats.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return res;
  }

 private:
  struct Node {
    S state;
    std::size_t meta;   ///< index into meta_ (trail reconstruction)
    std::size_t depth;
    double priority = 0.0;
  };
  struct Meta {
    std::size_t parent;      ///< index into meta_; npos for root
    std::size_t action_idx;  ///< action taken from parent
  };
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Hash a state for the visited set, charging the time to digest_ms.
  /// Sampled 1-in-64 and scaled: abstract states hash in nanoseconds, so
  /// per-call clock reads would dominate the thing being measured.
  static constexpr std::uint64_t kHashSampleMask = 63;
  std::uint64_t timed_hash(const S& s, ExploreStats& stats) const {
    if ((hash_count_++ & kHashSampleMask) != 0) return model_.hash_state(s);
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t h = model_.hash_state(s);
    stats.digest_ms += std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count() *
                       static_cast<double>(kHashSampleMask + 1);
    return h;
  }

  std::vector<std::string> trail_of(std::size_t meta_idx) const {
    std::vector<std::string> t;
    while (meta_idx != kNpos) {
      const Meta& m = meta_[meta_idx];
      if (m.parent == kNpos && m.action_idx == kNpos) break;
      t.push_back(model_.actions()[m.action_idx].name);
      meta_idx = m.parent;
    }
    std::reverse(t.begin(), t.end());
    return t;
  }

  void check_state(const S& s, std::size_t meta_idx, std::size_t depth,
                   ExploreResult& res) {
    if (auto v = model_.violated(s)) {
      ModelViolation mv;
      mv.invariant = v->first;
      mv.detail = v->second;
      mv.trail = trail_of(meta_idx);
      mv.depth = depth;
      res.violations.push_back(std::move(mv));
    }
  }

  ExploreResult graph_search() {
    ExploreResult res;
    std::unordered_set<std::uint64_t> visited;

    auto cmp = [](const Node& a, const Node& b) {
      return a.priority < b.priority;  // max-heap by priority
    };
    std::priority_queue<Node, std::vector<Node>, decltype(cmp)> pq(cmp);
    std::deque<Node> fifo;  // BFS front / DFS back

    meta_.clear();
    meta_.push_back({kNpos, kNpos});
    Node root{model_.initial(), 0, 0, 0.0};
    visited.insert(timed_hash(root.state, res.stats));
    ++res.stats.states;
    check_state(root.state, 0, 0, res);
    if (res.violations.size() >= opts_.max_violations) return res;

    if (opts_.order == SearchOrder::kPriority) {
      if (priority_) root.priority = priority_(root.state);
      pq.push(std::move(root));
    } else {
      fifo.push_back(std::move(root));
    }

    while (true) {
      Node cur;
      if (opts_.order == SearchOrder::kPriority) {
        if (pq.empty()) break;
        cur = pq.top();
        pq.pop();
      } else if (opts_.order == SearchOrder::kBfs) {
        if (fifo.empty()) break;
        cur = std::move(fifo.front());
        fifo.pop_front();
      } else {  // DFS
        if (fifo.empty()) break;
        cur = std::move(fifo.back());
        fifo.pop_back();
      }

      if (cur.depth >= opts_.max_depth) {
        res.stats.truncated = true;
        continue;
      }

      for (std::size_t ai : model_.fireable(cur.state)) {
        S next = cur.state;
        model_.actions()[ai].effect(next);
        ++res.stats.transitions;
        std::uint64_t h = timed_hash(next, res.stats);
        if (!visited.insert(h).second) {
          ++res.stats.duplicates;
          continue;
        }
        ++res.stats.states;
        meta_.push_back({cur.meta, ai});
        std::size_t mi = meta_.size() - 1;
        std::size_t depth = cur.depth + 1;
        res.stats.max_depth = std::max<std::uint64_t>(res.stats.max_depth,
                                                      depth);
        check_state(next, mi, depth, res);
        if (res.violations.size() >= opts_.max_violations) return res;
        if (res.stats.states >= opts_.max_states) {
          res.stats.truncated = true;
          return res;
        }
        Node child{std::move(next), mi, depth, 0.0};
        if (opts_.order == SearchOrder::kPriority) {
          if (priority_) child.priority = priority_(child.state);
          pq.push(std::move(child));
        } else {
          fifo.push_back(std::move(child));
        }
      }
    }
    return res;
  }

  ExploreResult random_walk() {
    ExploreResult res;
    Rng rng(opts_.seed);
    for (std::size_t walk = 0; walk < opts_.walk_restarts; ++walk) {
      S cur = model_.initial();
      std::vector<std::string> trail;
      ++res.stats.states;
      for (std::size_t d = 0; d < opts_.max_depth; ++d) {
        if (auto v = model_.violated(cur)) {
          ModelViolation mv;
          mv.invariant = v->first;
          mv.detail = v->second;
          mv.trail = trail;
          mv.depth = d;
          res.violations.push_back(std::move(mv));
          break;
        }
        auto fire = model_.fireable(cur);
        if (fire.empty()) break;
        std::size_t ai = fire[rng.next_below(fire.size())];
        model_.actions()[ai].effect(cur);
        trail.push_back(model_.actions()[ai].name);
        ++res.stats.transitions;
        ++res.stats.states;
        res.stats.max_depth = std::max<std::uint64_t>(res.stats.max_depth,
                                                      d + 1);
      }
      if (res.violations.size() >= opts_.max_violations) break;
    }
    return res;
  }

  const GuardedModel<S>& model_;
  ExploreOptions opts_;
  PriorityFn priority_;
  std::vector<Meta> meta_;
  mutable std::uint64_t hash_count_ = 0;
};

}  // namespace fixd::mc
