// Tiered visited set: bounded-resident state dedup for beyond-RAM searches.
//
// The plain visited set (CompactDigestSet / StripedVisitedSet) only ever
// grows, which caps `max_states` at whatever fits in RAM. TieredVisitedSet
// keeps exact dedup semantics under a fixed resident budget
// (`SysExploreOptions::visited_budget_bytes`) with three tiers:
//
//   1. Bloom front filter (AtomicBloom, ~half the budget). Fed on every
//      successful insert. Once a stripe has spilled, a Bloom "definitely
//      not present" answers the common miss path without touching disk.
//   2. Hot exact tier: the same lock-striped CompactDigestSet shards as the
//      in-RAM set, so the parallel path keeps its striping and per-stripe
//      linearizability.
//   3. Cold exact tier: when the hot tier exceeds its share of the budget,
//      the coldest stripes (least-recently-touched) drain to disk as sorted
//      u64 runs (common/io.hpp, BinaryWriter encoding) under the per-run
//      ScratchDir. Each stripe owns at most one run; a re-spill streams a
//      merge of the old run with the newly drained shard, so resident cost
//      stays O(chunk), not O(spilled).
//
// Insert protocol per stripe (under the stripe mutex, so inserts stay
// linearizable per stripe and exactly-one-winner is preserved):
//   - stripe never spilled      -> plain hot insert (Bloom is fed, not asked).
//   - Bloom says "not present"  -> definitely new anywhere: hot insert.
//   - Bloom says "maybe"        -> check hot shard, then probe the stripe's
//     disk run (fence index + one ~4 KiB block read: rehydrate-on-maybe).
//     Found nowhere -> a Bloom false positive, counted in `bloom_fp_rate`.
//
// The Bloom filter is *advisory only* — every "maybe" is resolved by an
// exact tier, so false positives cost a disk probe, never correctness.
// tests/test_mc_spill.cpp pins spill-on/off `sorted_contents()` set identity
// under randomized churn at 1 and 4 threads.
//
// Not covered: the sleep-signature visited map (StripedSleepVisited) is a
// digest->signature *map* with in-place weakening, not an insert-only set;
// it stays in RAM even under a budget (documented in docs/PERF.md Layer 9).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.hpp"
#include "common/io.hpp"
#include "mc/concurrent.hpp"

namespace fixd::mc {

/// Fixed-size Bloom filter over atomic words: lock-free add/query from any
/// worker. Double hashing (h1 = raw digest, h2 = mix64 | 1) derives
/// kProbes bit positions, the standard Kirsch-Mitzenmacher scheme.
class AtomicBloom {
 public:
  /// Rounds `bytes` down to a power of two >= 64 bytes.
  explicit AtomicBloom(std::uint64_t bytes);

  void add(std::uint64_t h) {
    std::uint64_t h2 = mix64(h) | 1;
    for (int i = 0; i < kProbes; ++i) {
      std::uint64_t bit = (h + std::uint64_t(i) * h2) & bit_mask_;
      words_[bit >> 6].fetch_or(std::uint64_t{1} << (bit & 63),
                                std::memory_order_relaxed);
    }
  }

  bool maybe_contains(std::uint64_t h) const {
    std::uint64_t h2 = mix64(h) | 1;
    for (int i = 0; i < kProbes; ++i) {
      std::uint64_t bit = (h + std::uint64_t(i) * h2) & bit_mask_;
      if ((words_[bit >> 6].load(std::memory_order_relaxed) &
           (std::uint64_t{1} << (bit & 63))) == 0) {
        return false;
      }
    }
    return true;
  }

  std::uint64_t bytes() const { return words_.size() * 8; }

  static constexpr int kProbes = 4;

 private:
  std::vector<std::atomic<std::uint64_t>> words_;
  std::uint64_t bit_mask_;  // bit count - 1 (bit count is a power of two)
};

/// Budget-bounded exact visited set (see file comment for the design).
/// insert() is safe from any number of threads; the byte/rate accessors are
/// exact once callers are quiescent (same contract as StripedVisitedSet).
class TieredVisitedSet {
 public:
  /// `budget_bytes` bounds Bloom + hot tier residency (> 0; a zero budget
  /// means "don't use this class" and is rejected). Spill runs are created
  /// under `scratch`, which must outlive the set.
  TieredVisitedSet(std::uint64_t budget_bytes, std::filesystem::path scratch,
                   std::size_t stripes = 64);
  ~TieredVisitedSet();

  TieredVisitedSet(const TieredVisitedSet&) = delete;
  TieredVisitedSet& operator=(const TieredVisitedSet&) = delete;

  /// Insert a digest; true iff it was not present in any tier (the caller
  /// owns the state and must expand it — exactly one caller wins each h).
  bool insert(std::uint64_t h);

  /// Resident footprint now: Bloom + hot shards + fence indexes.
  std::uint64_t resident_bytes() const;
  /// High-water resident footprint over the run (approximate under
  /// concurrency: updated outside the stripe locks).
  std::uint64_t peak_resident_bytes() const {
    return peak_resident_.load(std::memory_order_relaxed);
  }
  /// Bytes currently on disk across all stripe runs.
  std::uint64_t spilled_bytes() const {
    return spilled_now_.load(std::memory_order_relaxed);
  }
  /// Cumulative bytes ever written by spill merges (IO volume, not state).
  std::uint64_t spill_bytes_written() const {
    return spill_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t spill_events() const {
    return spill_events_.load(std::memory_order_relaxed);
  }

  std::uint64_t bloom_queries() const {
    return bloom_queries_.load(std::memory_order_relaxed);
  }
  /// False positives / queries; 0 when nothing ever spilled (no queries).
  double bloom_fp_rate() const;

  std::uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Every digest across both tiers, sorted (test/differential hook — the
  /// result is O(total states), deliberately unbounded by the budget).
  std::vector<std::uint64_t> sorted_contents();

 private:
  struct Stripe {
    std::mutex mu;
    CompactDigestSet hot;
    std::unique_ptr<SortedRunReader> run;  // at most one sorted run on disk
    std::filesystem::path run_path;
    int generation = 0;  // names successive run files uniquely
    // Read without the stripe lock by the spill victim scan:
    std::atomic<std::uint64_t> last_touch{0};
    std::atomic<std::uint64_t> hot_bytes{0};
    std::atomic<std::uint64_t> fence_bytes{0};
  };

  std::size_t stripe_of(std::uint64_t h) const {
    return static_cast<std::size_t>(mix64(h)) & mask_;
  }
  void note_peak();
  void maybe_spill();
  void spill_stripe(Stripe& s);

  std::filesystem::path scratch_;
  std::unique_ptr<AtomicBloom> bloom_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
  std::uint64_t exact_budget_ = 0;  // budget minus the Bloom's share

  std::mutex spill_mu_;  // serializes victim selection + spilling
  std::atomic<std::uint64_t> tick_{1};
  std::atomic<std::uint64_t> resident_{0};  // hot + fence bytes (not Bloom)
  std::atomic<std::uint64_t> peak_resident_{0};
  std::atomic<std::uint64_t> spilled_now_{0};
  std::atomic<std::uint64_t> spill_written_{0};
  std::atomic<std::uint64_t> spill_events_{0};
  std::atomic<std::uint64_t> size_{0};
  std::atomic<std::uint64_t> bloom_queries_{0};
  std::atomic<std::uint64_t> bloom_maybes_{0};
  std::atomic<std::uint64_t> bloom_fps_{0};
};

}  // namespace fixd::mc
