#include "mc/sysmodel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/hash.hpp"
#include "common/io.hpp"
#include "mc/concurrent.hpp"
#include "mc/tiered_visited.hpp"

namespace fixd::mc {

namespace {

using SteadyClock = std::chrono::steady_clock;

double ms_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

/// mc_digest deliberately abstracts virtual time away (canonical dedup).
/// In timed exploration the *relative* readiness layout — how far each
/// pending delivery and armed timer is from now — decides which actions
/// are co-enabled, so the dedup digest must fold it in or states that
/// differ only by a delay would collapse into each other and the delayed
/// subtree would be pruned. Order-independent wrapping sum, keyed by
/// content (not path-dependent ids), relative to now (not absolute time,
/// which grows monotonically and would make every state unique).
std::uint64_t readiness_digest(const rt::World& w) {
  std::uint64_t acc = 0;
  const VirtualTime now = w.now();
  for (const net::Message* m : w.network().pending()) {
    const VirtualTime at = m->sent_at + m->latency;
    const VirtualTime rel = at > now ? at - now : 0;
    acc += mix64(hash_combine(mix64(m->content_digest()), rel));
  }
  for (ProcessId p = 0; p < w.size(); ++p) {
    for (const rt::Timer& t : w.timers_of(p).view()) {
      const VirtualTime rel = t.deadline > now ? t.deadline - now : 0;
      acc += mix64(hash_combine(hash_combine(p, t.kind), rel));
    }
  }
  return acc;
}

/// Time one state-digest call and charge it to stats.digest_ms.
std::uint64_t timed_mc_digest(rt::World& w, ExploreStats& stats,
                              bool abstract_time) {
  auto t0 = SteadyClock::now();
  std::uint64_t d = w.mc_digest();
  if (!abstract_time) d = hash_combine(d, readiness_digest(w));
  stats.digest_ms += ms_since(t0);
  return d;
}

}  // namespace

/// The indirection between frontier nodes and their shared snapshot (see
/// the declaration comment in sysmodel.hpp). Untracked anchors are
/// immutable after publication, so `snap` is read lock-free exactly like
/// the old direct shared_ptr<const WorldSnapshot> field. Tracked anchors
/// (budgeted trail mode) hand every `snap` transition to the
/// AnchorRegistry's mutex.
struct SystemExplorer::Anchor {
  /// The materialized state; null while evicted (tracked anchors only).
  std::shared_ptr<const rt::WorldSnapshot> snap;
  /// Root-relative rebuild recipe: the path chain at the anchor point and
  /// its action count. Only filled for tracked anchors — untracked ones
  /// are never evicted, so they never need rebuilding.
  const PathNode* path = nullptr;
  std::uint32_t depth = 0;
  std::uint32_t slot = 0;   ///< registry slot index (tracked only)
  bool tracked = false;     ///< registered with the registry (evictable)
  bool pinned = false;      ///< the root anchor: never evicted
  std::atomic<bool> ref{false};  ///< clock reference bit (second chance)
  std::uint64_t est_bytes = 0;   ///< registry accounting at admit time
};

/// Residency bookkeeping for evictable trail-mode anchors. One mutex
/// guards every tracked anchor's `snap` transitions plus the clock state —
/// eviction is rare relative to node pops (each anchor serves up to
/// anchor_interval children), so a single lock does not serialize the
/// workers the way a per-node lock would.
///
/// Accounting: an anchor's charge is its snapshot's size_bytes() — an
/// upper bound, since COW interiors may be shared with sibling anchors or
/// the live worlds. An anchor that dies (all its nodes popped) while
/// resident keeps its charge until the clock next sweeps its slot; the
/// transient over-count only makes eviction more eager, never lets the
/// budget be exceeded unnoticed. peak_resident() therefore bounds true
/// anchor residency from above.
class SystemExplorer::AnchorRegistry {
 public:
  explicit AnchorRegistry(std::uint64_t budget) : budget_(budget) {}

  /// The pinned root anchor every rebuild replays from. Must be called
  /// before any worker starts; `snap` stays immutable afterwards.
  void set_root(std::shared_ptr<Anchor> a) {
    a->pinned = true;
    root_ = std::move(a);
  }
  const std::shared_ptr<const rt::WorldSnapshot>& root_snap() const {
    return root_->snap;
  }

  /// Register a freshly snapshotted anchor as evictable.
  void admit(const std::shared_ptr<Anchor>& a) {
    std::lock_guard<std::mutex> lk(mu_);
    a->tracked = true;
    a->ref.store(true, std::memory_order_relaxed);
    a->est_bytes = a->snap->size_bytes();
    a->slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back({a, a->est_bytes});
    resident_ += a->est_bytes;
    peak_ = std::max(peak_, resident_);
    evict_to_budget_locked();
  }

  /// The anchor's snapshot if resident (marks it recently used), else null
  /// — the caller must rebuild and install().
  std::shared_ptr<const rt::WorldSnapshot> acquire(Anchor& a) {
    std::lock_guard<std::mutex> lk(mu_);
    if (a.snap) a.ref.store(true, std::memory_order_relaxed);
    return a.snap;
  }

  /// Re-install a rebuilt snapshot. If a concurrent rebuild won the race
  /// the argument is dropped (the states are bit-identical by replay
  /// determinism, so either winner is correct).
  void install(Anchor& a, std::shared_ptr<const rt::WorldSnapshot> s) {
    std::lock_guard<std::mutex> lk(mu_);
    if (a.snap) return;
    a.snap = std::move(s);
    a.ref.store(true, std::memory_order_relaxed);
    a.est_bytes = a.snap->size_bytes();
    slots_[a.slot].charged = a.est_bytes;
    resident_ += a.est_bytes;
    peak_ = std::max(peak_, resident_);
    evict_to_budget_locked();
  }

  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lk(mu_);
    return evictions_;
  }
  std::uint64_t peak_resident() const {
    std::lock_guard<std::mutex> lk(mu_);
    return peak_;
  }

 private:
  struct Slot {
    std::weak_ptr<Anchor> wp;
    /// Mirror of the anchor's currently-counted bytes, so an expired slot
    /// (anchor died while resident) can still be refunded.
    std::uint64_t charged = 0;
  };

  /// Clock (second-chance) sweep: clear a set ref bit on first encounter,
  /// evict on the second. Two full passes bound the scan — after one pass
  /// every surviving ref bit is clear, so the second pass must evict
  /// unless everything is dead, pinned, or already evicted.
  void evict_to_budget_locked() {
    std::size_t scanned = 0;
    const std::size_t bound = slots_.size() * 2 + 1;
    while (resident_ > budget_ && !slots_.empty() && scanned++ < bound) {
      if (hand_ >= slots_.size()) hand_ = 0;
      Slot& sl = slots_[hand_++];
      std::shared_ptr<Anchor> a = sl.wp.lock();
      if (!a) {  // anchor died; refund whatever it still had charged
        resident_ -= sl.charged;
        sl.charged = 0;
        continue;
      }
      if (!a->snap || a->pinned) continue;
      if (a->ref.load(std::memory_order_relaxed)) {
        a->ref.store(false, std::memory_order_relaxed);
        continue;
      }
      a->snap.reset();
      resident_ -= sl.charged;
      sl.charged = 0;
      ++evictions_;
    }
  }

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::size_t hand_ = 0;
  std::uint64_t budget_;
  std::uint64_t resident_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t evictions_ = 0;
  std::shared_ptr<Anchor> root_;
};

/// Peak-frontier accounting with sharing awareness: every buffer a node
/// can reach — its snapshot shell, COW checkpoints, heap pages, message
/// objects, the net table — is charged once per unique pointer
/// (pointer-keyed refcounts), so snapshot-mode and trail-mode numbers are
/// honestly comparable and entries shared across sibling anchors by the
/// replay-warm machinery show up as real savings. The variant Node has
/// exactly one snapshot field, so a single node can no longer reach the
/// same checkpoint through two routes (the old snap-vs-anchor shape
/// could, and double-counted the per-node proc-table term for it); the
/// refcounts still dedupe any aliasing *across* nodes. The sequential
/// search keeps one exact meter. The parallel search gives each worker a
/// private meter (Node::owner tags the pusher): a worker charges at push
/// and refunds only nodes it both pushed and popped, so the rare stolen
/// node (deque or priority shard) stays charged on its victim's meter —
/// per-worker peaks are upper bounds with slack bounded by steal
/// traffic, and the merged peak_frontier_bytes (sum of peaks) bounds the
/// run's shared-aware peak from above with no cross-thread meter access.
/// Budgeted trail mode (frontier_budget_bytes > 0) splits the accounting:
/// anchor snapshots may be evicted/rebuilt concurrently by the
/// AnchorRegistry, which tracks their residency itself, so the meter is
/// told not to dereference them (charge_snapshots = false) and charges
/// only node shells and sleep sets; peak_frontier_bytes then reports
/// meter peak + registry peak. The Anchor struct itself rides in the
/// not-metered bucket alongside shared_ptr control blocks (it is ~40
/// bytes per anchor_interval-node cohort), keeping unbudgeted trail
/// accounting byte-identical to the pre-anchor representation.
class SystemExplorer::FrontierMeter {
 public:
  void set_charge_snapshots(bool v) { charge_snapshots_ = v; }
  void push(const Node& n) {
    cur_ += node_cost(n, +1);
    if (cur_ > peak_) peak_ = cur_;
  }
  void pop(const Node& n) { cur_ -= node_cost(n, -1); }
  std::uint64_t peak() const { return peak_; }

 private:
  /// Charge `bytes` when `p` first enters the frontier, refund when the
  /// last reference leaves. Returns the delta actually applied.
  std::uint64_t charge(const void* p, std::uint64_t bytes, int dir) {
    if (!p) return 0;
    if (dir > 0) return refs_[p]++ == 0 ? bytes : 0;
    auto it = refs_.find(p);
    if (it == refs_.end()) return 0;
    if (--it->second > 0) return 0;
    refs_.erase(it);
    return bytes;
  }

  std::uint64_t snapshot_cost(const rt::WorldSnapshot& s, int dir) {
    std::uint64_t n = 0;
    for (const auto& p : s.procs) {
      if (!p) continue;
      // size_bytes covers root/info plus the COW page *table*; the
      // resident page content is charged per unique page so diverged
      // pages pinned only by the frontier show up honestly.
      n += charge(p.get(), p->size_bytes(), dir);
      if (p->heap_snap) {
        for (const auto& page : p->heap_snap->pages()) {
          if (page) n += charge(page.get(), page->size(), dir);
        }
      }
    }
    if (s.net) {
      for (const auto& [id, m] : s.net->messages) {
        n += charge(m.get(), m->retained_bytes(), dir);
      }
      std::uint64_t table = sizeof(net::NetSnapshot);
      for (const auto& [key, q] : s.net->channels) {
        table += sizeof(key) + q.size() * sizeof(MsgId);
      }
      n += charge(s.net.get(), table, dir);
    }
    return n;
  }

  std::uint64_t node_cost(const Node& n, int dir) {
    std::uint64_t c = sizeof(Node);
    if (n.sleep) {
      c += sizeof(*n.sleep) + n.sleep->capacity() * sizeof(SleepEntry);
    }
    std::uint64_t shared = 0;
    // Tracked anchors' snap may be swapped by the registry on another
    // thread, so the budgeted meter never dereferences it; untracked
    // anchors are immutable, exactly like the old direct snapshot field.
    const rt::WorldSnapshot* s =
        (n.state && charge_snapshots_) ? n.state->snap.get() : nullptr;
    if (s) {
      // The snapshot shell (struct + proc pointer table) is itself shared:
      // one per anchor in trail mode (all descendants charge it once), one
      // per node in snapshot mode.
      const std::uint64_t shell =
          sizeof(rt::WorldSnapshot) +
          s->procs.capacity() *
              sizeof(std::shared_ptr<const rt::ProcessCheckpoint>);
      shared += charge(s, shell, dir);
      shared += snapshot_cost(*s, dir);
    }
    return c + shared;
  }

  std::unordered_map<const void*, std::size_t> refs_;
  std::uint64_t cur_ = 0;
  std::uint64_t peak_ = 0;
  bool charge_snapshots_ = true;
};

// ---------------------------------------------------------------------------
// Parallel coordination state
// ---------------------------------------------------------------------------

/// Everything the worker threads share. The visited set and the per-worker
/// deques are individually synchronized; the atomics below carry the
/// global budgets. `active` counts frontier nodes that are queued or being
/// expanded — it is incremented *before* a child is pushed and decremented
/// *after* its expansion finishes, so an idle worker observing active == 0
/// knows the search is complete (no node can reappear).
/// POR bookkeeping for one search: shared expansion records plus the root
/// anchor every backtrack node re-materializes from (root snapshot +
/// deterministic replay of the path prefix — the same machinery trail
/// frontiers use, which is why backtracking works identically in snapshot
/// and trail modes and across workers).
struct SystemExplorer::PorState {
  StripedPorRecords recs;
  /// The root *anchor* (pinned, never evicted) — backtrack nodes point at
  /// it and re-materialize by full-path replay.
  std::shared_ptr<Anchor> root;
};

struct SystemExplorer::Shared {
  StripedVisitedSet visited;
  /// Budgeted dedup (visited_budget_bytes > 0, plain dedup only): the
  /// Bloom-fronted spill-to-disk set used instead of `visited`, with its
  /// per-run scratch directory (RAII: spill files vanish on every exit
  /// path). Same per-stripe linearizability, so exactly-one-winner holds.
  ScratchDir spill_scratch;
  std::unique_ptr<TieredVisitedSet> tiered;
  /// Sleep-signature-aware visited set, used instead of `visited` when
  /// sleep_sets && dedup (the signature decides prune vs re-expand).
  StripedSleepVisited sleepvis;
  PorState por;
  std::atomic<std::uint64_t> states{0};
  std::atomic<std::uint64_t> violation_count{0};
  std::atomic<std::size_t> active{0};
  std::atomic<bool> stop{false};
  /// Clean-boundary pause (opts.pause_check): unlike `stop`, workers do
  /// NOT abandon an in-flight expansion — they finish pushing (or
  /// deduping) every child, then stop popping and return, leaving the
  /// un-expanded frontier parked in the worker deques for capture.
  std::atomic<bool> paused{false};

  /// First worker exception, re-thrown on the coordinating thread after
  /// join (an exception escaping a std::thread would terminate).
  std::mutex err_mu;
  std::string error;

  std::vector<std::unique_ptr<Worker>> workers;
};

/// One worker: a private scratch world (cloned from the investigated
/// state), a stealable frontier shard (deque for kBfs/kDfs, priority
/// shard for kPriority — the old single mutex-guarded global heap
/// serialized every push and pop across workers), and private
/// stats/violations merged by the coordinator after join.
struct SystemExplorer::Worker {
  std::size_t id = 0;
  std::unique_ptr<rt::World> world;
  StealableDeque<Node> deque;
  PriorityShard<Node> pq;
  /// Private frontier meter (owner-paired charges; see FrontierMeter).
  FrontierMeter meter;
  /// This worker's reachability-graph edges. Only the owner appends
  /// (std::deque keeps existing element addresses stable across
  /// push_back); other workers read nodes through raw parent pointers
  /// published by the frontier-deque mutexes. Freed wholesale after join.
  std::deque<PathNode> arena;
  ExploreStats stats;
  std::vector<SysViolation> violations;
};

// ---------------------------------------------------------------------------
// SystemExplorer
// ---------------------------------------------------------------------------

SystemExplorer::SystemExplorer(rt::World& base, SysExploreOptions opts)
    : base_(base), opts_(std::move(opts)) {
  scratch_ = base_.clone();
  scratch_->set_abstract_time(opts_.abstract_time);
  scratch_->set_check_global_invariants(true);
  scratch_->set_stop_on_violation(false);
  if (opts_.install_invariants) opts_.install_invariants(*scratch_);
}

SystemExplorer::~SystemExplorer() = default;

void SystemExplorer::materialize(rt::World& w, const Node& n,
                                 ExploreStats& stats) const {
  // Snapshot mode: n.state is the node's exact state (replay_len == 0).
  // Trail mode: n.state is the anchor; re-execute the suffix after it.
  Anchor& anchor = *n.state;
  if (reg_ && anchor.tracked) {
    std::shared_ptr<const rt::WorldSnapshot> snap = reg_->acquire(anchor);
    if (snap) {
      w.restore(*snap);
    } else {
      // Evicted: rebuild by root-anchored deterministic replay — the same
      // mechanism POR backtrack nodes always use, so eviction cannot
      // change what any node materializes to. The rebuilt snapshot is
      // re-installed so one rebuild serves every node on this anchor.
      std::vector<const SysAction*> prefix(anchor.depth);
      const PathNode* p = anchor.path;
      for (std::size_t i = anchor.depth; i-- > 0;) {
        prefix[i] = &p->action;
        p = p->parent;
      }
      w.restore(*reg_->root_snap());
      w.clear_violations();
      for (const SysAction* a : prefix) apply_action(w, *a);
      w.clear_violations();
      stats.replayed_actions += anchor.depth;
      auto t0 = SteadyClock::now();
      auto fresh =
          std::make_shared<const rt::WorldSnapshot>(w.snapshot(/*cow=*/true));
      if (opts_.workers > 1) fresh->share_across_threads();
      stats.snapshot_ms += ms_since(t0);
      reg_->install(anchor, std::move(fresh));
      ++stats.anchor_recomputes;
      // w already sits at the anchor state; fall through to the suffix.
    }
  } else {
    w.restore(*anchor.snap);
  }
  if (n.replay_len == 0) return;
  // The path chain stores the route youngest-first; collect the suffix,
  // then re-execute oldest-first. Determinism makes this bit-identical to
  // the state captured when the node was created.
  std::vector<const SysAction*> suffix(n.replay_len);
  const PathNode* p = n.path;
  for (std::size_t i = n.replay_len; i-- > 0;) {
    suffix[i] = &p->action;
    p = p->parent;
  }
  w.clear_violations();
  for (const SysAction* a : suffix) apply_action(w, *a);
  // Violations raised along the replayed prefix were recorded when it was
  // first explored; drop the duplicates.
  w.clear_violations();
  stats.replayed_actions += n.replay_len;
}

std::vector<SysAction> SystemExplorer::enabled_actions(
    const rt::World& w) const {
  std::vector<SysAction> out;
  for (const rt::EventDesc& ev : w.enabled_events()) {
    SysAction a;
    a.kind = SysAction::Kind::kRuntime;
    a.event = ev;
    out.push_back(a);
  }
  if (opts_.model_message_loss || opts_.model_message_duplication) {
    // Enumerate from the network's incremental deliverable index (the
    // control flag is cached in the entries, so no per-message lookups);
    // the canonical order is globally ascending message id. The
    // uncached-oracle toggle covers this consumer too, so a bypassed
    // world's whole action set really is index-free.
    std::vector<std::pair<MsgId, bool>> deliv;
    if (w.use_enabled_index()) {
      for (const auto& [dst, b] : w.network().deliv_index()) {
        for (const auto& [id, e] : b.by_id) deliv.emplace_back(id, e.control);
      }
      std::sort(deliv.begin(), deliv.end());
    } else {
      for (MsgId id : w.network().deliverable()) {
        deliv.emplace_back(id, w.network().peek(id)->control);
      }
    }
    for (const auto& [id, control] : deliv) {
      if (control) continue;  // FixD's own protocol stays reliable
      if (opts_.model_message_loss) {
        SysAction a;
        a.kind = SysAction::Kind::kDropMessage;
        a.msg = id;
        out.push_back(a);
      }
      if (opts_.model_message_duplication) {
        SysAction a;
        a.kind = SysAction::Kind::kDupMessage;
        a.msg = id;
        out.push_back(a);
      }
    }
  }
  if (opts_.model_message_delay) {
    std::vector<MsgId> deliv;
    if (w.use_enabled_index()) {
      for (const auto& [dst, b] : w.network().deliv_index()) {
        for (const auto& [id, e] : b.by_id) deliv.push_back(id);
      }
      std::sort(deliv.begin(), deliv.end());
    } else {
      deliv = w.network().deliverable();
    }
    for (MsgId id : deliv) {
      const net::Message* m = w.network().peek(id);
      if (m->control) continue;
      // The horizon bounds the accumulated latency a message can pick up
      // through delay actions, keeping timed exploration finite — without
      // it, enough stacked delays beat any finite timeout and the tuner
      // could never converge.
      if (m->latency >= opts_.model_delay_horizon) continue;
      SysAction a;
      a.kind = SysAction::Kind::kDelayMessage;
      a.msg = id;
      a.delay = opts_.model_delay_quantum;
      out.push_back(a);
    }
  }
  if (opts_.model_timer_mutation) {
    // Cancel actions derive from the enabled timer events already in
    // `out`, so cached and uncached enumeration agree automatically.
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i].kind != SysAction::Kind::kRuntime) continue;
      if (out[i].event.kind != rt::EventKind::kTimer) continue;
      SysAction a;
      a.kind = SysAction::Kind::kCancelTimer;
      a.event = out[i].event;
      out.push_back(a);
    }
  }
  if (opts_.model_partition) {
    // Heal actions: every blocked link (the mask is a sorted set, so the
    // canonical order is free). Cut actions: every distinct unblocked link
    // with pending traffic, gated by the simultaneous-cut bound — cutting
    // an idle link is a no-op until traffic appears, and enumerating only
    // loaded links keeps the branching factor proportional to the
    // in-flight footprint. Both derive from pending()/blocked_links(),
    // not the deliverable index, so the uncached-oracle toggle cannot
    // change this consumer's view.
    for (const auto& [s, d] : w.network().blocked_links()) {
      SysAction a;
      a.kind = SysAction::Kind::kHealLinks;
      a.src = s;
      a.dst = d;
      out.push_back(a);
    }
    if (w.network().blocked_link_count() < opts_.max_cut_links) {
      std::vector<std::pair<ProcessId, ProcessId>> links;
      for (const net::Message* m : w.network().pending()) {
        if (w.network().link_blocked(m->src, m->dst)) continue;
        links.emplace_back(m->src, m->dst);
      }
      std::sort(links.begin(), links.end());
      links.erase(std::unique(links.begin(), links.end()), links.end());
      for (const auto& [s, d] : links) {
        SysAction a;
        a.kind = SysAction::Kind::kPartitionLinks;
        a.src = s;
        a.dst = d;
        out.push_back(a);
      }
    }
  }
  if (opts_.model_restart) {
    for (ProcessId p = 0; p < w.size(); ++p) {
      if (!w.is_crashed(p)) continue;
      SysAction a;
      a.kind = SysAction::Kind::kRestartProcess;
      a.event.kind = rt::EventKind::kStart;  // unused; pid is the payload
      a.event.pid = p;
      out.push_back(a);
    }
  }
  return out;
}

void SystemExplorer::apply_action(rt::World& w, const SysAction& a) {
  switch (a.kind) {
    case SysAction::Kind::kRuntime:
      w.execute_event(a.event);
      break;
    case SysAction::Kind::kDropMessage:
      // The model_* wrappers advance the replay-warm key chain (the
      // raw network() accessor would break it — these are legitimate
      // replayed trail actions, not exogenous surgery).
      w.model_drop_message(a.msg);
      break;
    case SysAction::Kind::kDupMessage:
      w.model_duplicate_message(a.msg);
      break;
    case SysAction::Kind::kDelayMessage:
      w.model_delay_message(a.msg, a.delay);
      break;
    case SysAction::Kind::kCancelTimer:
      w.model_cancel_timer(a.event.pid, a.event.timer);
      break;
    case SysAction::Kind::kPartitionLinks:
      w.model_cut_link(a.src, a.dst);
      break;
    case SysAction::Kind::kHealLinks:
      w.model_heal_link(a.src, a.dst);
      break;
    case SysAction::Kind::kRestartProcess:
      w.model_restart_process(a.event.pid);
      break;
  }
}

namespace {

/// Nonzero token for a specific (pid, timer) pair. A hash collision only
/// makes two distinct timers look dependent — conservative, never wrong.
std::uint64_t timer_token(ProcessId pid, TimerId timer) {
  return hash_combine(static_cast<std::uint64_t>(pid) + 1, timer) | 1;
}

}  // namespace

ActionFootprint SystemExplorer::footprint(const rt::World& w,
                                          const SysAction& a) {
  ActionFootprint f;
  // Resolve a message id against the live network: the message's channel
  // is part of the footprint because channels are FIFO — two actions on
  // the same directed link are order-sensitive even when they touch
  // different messages (dropping the head changes what is deliverable).
  auto channel_of = [&](MsgId id) {
    const net::Message* m = w.network().peek(id);
    if (m != nullptr) {
      f.link_src = m->src;
      f.link_dst = m->dst;
    } else {
      // Unknown message (stale enumeration — should not happen): collide
      // with every process rather than silently commute.
      f.procs = ~std::uint64_t{0};
    }
    f.msg = id;
  };
  switch (a.kind) {
    case SysAction::Kind::kRuntime:
      f.procs = ActionFootprint::proc_bit(a.event.pid);
      if (a.event.kind == rt::EventKind::kDeliver) {
        // The delivery consumes a specific message from a specific
        // channel; the handler's own mutations stay inside procs (sends
        // only append, and race detection covers the conflicts they
        // create downstream).
        f.msg = a.event.msg;
        const net::Message* m = w.network().peek(a.event.msg);
        if (m != nullptr) {
          f.link_src = m->src;
          f.link_dst = m->dst;
        } else {
          f.procs = ~std::uint64_t{0};
        }
      } else if (a.event.kind == rt::EventKind::kTimer) {
        f.timer = timer_token(a.event.pid, a.event.timer);
      }
      break;
    case SysAction::Kind::kCancelTimer:
      // Touches only the timer's owning process, like the timer event.
      f.procs = ActionFootprint::proc_bit(a.event.pid);
      f.timer = timer_token(a.event.pid, a.event.timer);
      break;
    case SysAction::Kind::kRestartProcess:
      // Touches only the restarted process (its local state and every
      // delivery/timer the crash was masking — those carry the same pid).
      f.procs = ActionFootprint::proc_bit(a.event.pid);
      break;
    case SysAction::Kind::kDropMessage:
    case SysAction::Kind::kDupMessage:
    case SysAction::Kind::kDelayMessage:
      channel_of(a.msg);
      break;
    case SysAction::Kind::kPartitionLinks:
    case SysAction::Kind::kHealLinks:
      // A cut/heal gates enabledness for everything on its directed link
      // (delivery, drop, dup, delay — all carry the link), and both move
      // the global blocked-link count that bounds further cut enumeration
      // (max_cut_links), so any two cut/heal actions are mutually
      // dependent via the budget. The old scalar fingerprint collapsed
      // these to one value that `fa != fb` then declared independent of
      // every delivery — the inverse of the intended conservatism. The
      // destination's *local state* is untouched (a cut defers traffic,
      // never loses it), so procs stays empty: a cut commutes with
      // deliveries on other links even toward the same process.
      f.link_src = a.src;
      f.link_dst = a.dst;
      f.cut_budget = true;
      break;
  }
  return f;
}

std::uint64_t SystemExplorer::action_key(const SysAction& a) {
  Hasher h;
  h.update_u64(static_cast<std::uint64_t>(a.kind));
  h.update_u64(static_cast<std::uint64_t>(a.event.kind));
  h.update_u64(a.event.pid);
  h.update_u64(a.event.msg);
  h.update_u64(a.event.timer);
  h.update_u64(a.msg);
  h.update_u64(a.delay);
  h.update_u64(a.src);
  h.update_u64(a.dst);
  return h.digest();
}

bool SystemExplorer::is_slept(const Node& cur, std::uint64_t key) {
  if (!cur.sleep) return false;
  for (const SleepEntry& e : *cur.sleep) {
    if (e.key == key) return true;
  }
  return false;
}

std::unique_ptr<std::vector<SystemExplorer::SleepEntry>>
SystemExplorer::child_sleep(const Node& cur,
                            const std::vector<SysAction>& actions,
                            const std::vector<ActionFootprint>& fps,
                            const std::vector<std::uint64_t>& keys,
                            const std::vector<std::size_t>& run,
                            std::size_t pos) {
  (void)actions;
  const ActionFootprint& afp = fps[run[pos]];
  std::vector<SleepEntry> sleep;
  // Inherit the parent's surviving entries: a slept action stays covered
  // only while the branch taken commutes with it.
  if (cur.sleep) {
    for (const SleepEntry& e : *cur.sleep) {
      if (independent(e.fp, afp)) sleep.push_back(e);
    }
  }
  // Earlier branches of this expansion: their subtrees cover the child's
  // reorderings of any action that commutes with the branch taken.
  for (std::size_t p = 0; p < pos; ++p) {
    const std::size_t j = run[p];
    if (independent(fps[j], afp)) sleep.push_back({keys[j], fps[j]});
  }
  if (sleep.empty()) return nullptr;
  return std::make_unique<std::vector<SleepEntry>>(std::move(sleep));
}

std::vector<std::size_t> SystemExplorer::source_closure(
    const std::vector<ActionFootprint>& fps,
    const std::vector<std::size_t>& seeds) {
  std::vector<char> in(fps.size(), 0);
  std::vector<std::size_t> stack;
  for (std::size_t s : seeds) {
    if (s < fps.size() && !in[s]) {
      in[s] = 1;
      stack.push_back(s);
    }
  }
  // Dependency closure: within one class, actions can disable each other
  // (dropping the message a delivery would consume, a cut blocking its
  // link, a delivery cancelling a same-process timer), so partial
  // exploration of a class is not sound — the source set takes whole
  // classes, and only disjoint classes are deferred.
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    for (std::size_t j = 0; j < fps.size(); ++j) {
      if (!in[j] && !independent(fps[i], fps[j])) {
        in[j] = 1;
        stack.push_back(j);
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    if (in[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> SystemExplorer::por_select(
    PorState& ps, std::uint64_t digest,
    const std::vector<SysAction>& actions,
    const std::vector<ActionFootprint>& fps,
    const std::vector<std::uint64_t>& keys, const Node& cur,
    ExploreStats& stats) const {
  std::vector<std::uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint64_t> take;
  bool first = false;
  ps.recs.begin_expand(digest, sorted, take, first);

  std::vector<std::size_t> seeds;
  for (std::uint64_t k : take) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == k) {
        seeds.push_back(i);
        break;
      }
    }
  }
  if (first) {
    // Seed the first non-slept action; an all-slept state owes nothing
    // (every branch is covered by an earlier sibling).
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (!is_slept(cur, keys[i])) {
        seeds.push_back(i);
        break;
      }
    }
  }
  if (seeds.empty()) return {};
  std::vector<std::size_t> sel = source_closure(fps, seeds);
  stats.por_deferred += actions.size() - sel.size();
  // Mark the selection done *before* executing it, so a race request
  // arriving concurrently sees these keys covered instead of pushing a
  // redundant backtrack node.
  std::vector<std::uint64_t> sel_keys;
  sel_keys.reserve(sel.size());
  for (std::size_t i : sel) {
    if (!is_slept(cur, keys[i])) sel_keys.push_back(keys[i]);
  }
  ps.recs.commit_done(digest, sel_keys);
  return sel;
}

void SystemExplorer::por_race_detect(PorState& ps, const Node& cur,
                                     const ActionFootprint& fa,
                                     std::uint64_t akey,
                                     std::vector<Node>& backtracks,
                                     ExploreStats& stats) const {
  const PathNode* e = cur.path;
  std::uint32_t d = cur.depth;
  while (e != nullptr && d > 0) {
    --d;  // depth of e's pre-state
    if (!independent(fa, e->fp)) {
      const auto req = ps.recs.request(e->pre_digest, akey);
      if (req == StripedPorRecords::Request::kRegistered) {
        // Reverse the race: re-expand e's pre-state running `akey` there.
        // The node re-materializes from the root anchor by replaying the
        // path prefix, so it is valid in both frontier modes.
        Node b;
        b.state = ps.root;
        b.path = e->parent;
        b.replay_len = d;
        b.depth = d;
        backtracks.push_back(std::move(b));
        ++stats.por_backtracks;
        return;
      }
      if (req != StripedPorRecords::Request::kNotEnabled) return;
      // kNotEnabled: the action did not exist at this ancestor (its
      // message/timer is causally downstream of this prefix, or its link
      // was blocked) — the reversal may still be possible at an older
      // state, so keep walking.
    }
    e = e->parent;
  }
}

Trail SystemExplorer::trail_of(const PathNode* path) {
  Trail t;
  for (const PathNode* p = path; p != nullptr; p = p->parent) {
    t.steps.push_back(p->action);
  }
  std::reverse(t.steps.begin(), t.steps.end());
  return t;
}

void SystemExplorer::check_pause_resume_options() const {
  if (!opts_.pause_check && !opts_.capture_frontier &&
      !opts_.resume_from_checkpoint) {
    return;
  }
  if (opts_.order != SearchOrder::kBfs && opts_.order != SearchOrder::kDfs) {
    throw ConfigError(
        "pause/resume: only kBfs/kDfs graph searches are sliceable "
        "(kPriority/kRandomWalk pop order is not checkpoint-stable)");
  }
  if (!opts_.dedup) {
    throw ConfigError(
        "pause/resume requires dedup: visited-set identity "
        "(preseed ∪ reachable-from-frontier) is the resume contract");
  }
  if (opts_.sleep_sets || opts_.por) {
    throw ConfigError(
        "pause/resume: sleep_sets/por carry traversal-order-sensitive "
        "state that a checkpoint does not capture");
  }
  if (opts_.resume_from_checkpoint && opts_.resume_visited.empty()) {
    throw ConfigError(
        "resume_from_checkpoint requires the checkpoint's visited set "
        "(it must include the root digest)");
  }
}

std::vector<SystemExplorer::Node> SystemExplorer::resume_nodes(
    const std::shared_ptr<Anchor>& root_anchor,
    std::deque<PathNode>& arena) const {
  std::vector<Node> out;
  out.reserve(opts_.resume_frontier.size());
  for (const Trail& t : opts_.resume_frontier) {
    const PathNode* parent = nullptr;
    for (const SysAction& a : t.steps) {
      arena.push_back({parent, a, ActionFootprint{}, 0});
      parent = &arena.back();
    }
    Node nd;
    nd.state = root_anchor;
    nd.path = parent;
    nd.replay_len = static_cast<std::uint32_t>(t.steps.size());
    nd.depth = static_cast<std::uint32_t>(t.steps.size());
    out.push_back(std::move(nd));
  }
  return out;
}

SysExploreResult SystemExplorer::explore() {
  auto t0 = SteadyClock::now();
  check_pause_resume_options();
  SysExploreResult res;
  // Anchor eviction needs a replay recipe per node, which only trail-mode
  // graph searches have; snapshot mode ignores the frontier budget.
  reg_.reset();
  if (opts_.frontier_budget_bytes > 0 && opts_.trail_frontier &&
      opts_.order != SearchOrder::kRandomWalk) {
    reg_ = std::make_unique<AnchorRegistry>(opts_.frontier_budget_bytes);
  }
  if (opts_.order == SearchOrder::kRandomWalk) {
    res = random_walk();
  } else if (opts_.workers > 1) {
    res = graph_search_parallel();
  } else {
    res = graph_search();
  }
  res.stats.wall_ms = ms_since(t0);
  return res;
}

bool SystemExplorer::probe_root(SysExploreResult& res) {
  // Probe the investigated state itself first — the violation might
  // already hold (e.g. the Time Machine rolled back insufficiently far).
  scratch_->clear_violations();
  scratch_->recheck_invariants();
  ++res.stats.states;
  for (const rt::Violation& v : scratch_->violations()) {
    res.violations.push_back({v, Trail{}, 0});
  }
  scratch_->clear_violations();
  return res.violations.size() < opts_.max_violations;
}

SysExploreResult SystemExplorer::graph_search() {
  SysExploreResult res;
  CompactDigestSet visited;
  // Sleep+dedup needs the visited set to remember the sleep signature a
  // state was expanded with (see StripedSleepVisited); the plain digest
  // set stays for every other configuration.
  const bool use_sleepvis = opts_.sleep_sets && opts_.dedup;
  StripedSleepVisited sleepvis;
  // Budgeted dedup: the Bloom-fronted spill-to-disk set replaces the
  // in-RAM table. The sleep-signature map is a weakening *map*, not an
  // insert-only set, so it is not spillable and ignores the budget.
  const bool use_tier =
      opts_.dedup && !use_sleepvis && opts_.visited_budget_bytes > 0;
  ScratchDir spill_scratch;
  std::unique_ptr<TieredVisitedSet> tiered;
  if (use_tier) {
    spill_scratch = ScratchDir::create(opts_.spill_dir, "fixd-spill");
    tiered = std::make_unique<TieredVisitedSet>(opts_.visited_budget_bytes,
                                                spill_scratch.path());
  }
  auto visited_insert = [&](std::uint64_t h) {
    return use_tier ? tiered->insert(h) : visited.insert(h);
  };
  PorState por;
  std::vector<Node> backtracks;
  std::deque<PathNode> arena;  // reachability-graph edges, freed at return

  // kPriority frontier: a plain binary heap of (priority, Node) so pops
  // move the node out (std::priority_queue::top forces a copy, and Node
  // is move-only now that its sleep set lives behind a unique_ptr).
  struct HeapEntry {
    double pri;
    Node n;
  };
  auto heap_less = [](const HeapEntry& a, const HeapEntry& b) {
    return a.pri < b.pri;
  };
  std::vector<HeapEntry> pq;
  std::deque<Node> fifo;

  // Resume slices do not re-probe (or re-count) the root: the first slice
  // already did, and the checkpointed stats accumulate across slices.
  if (!opts_.resume_from_checkpoint && !probe_root(res)) return res;

  FrontierMeter meter;
  meter.set_charge_snapshots(reg_ == nullptr);

  Node root;
  root.depth = 0;
  {
    auto t0 = SteadyClock::now();
    root.state = std::make_shared<Anchor>();
    root.state->snap = std::make_shared<const rt::WorldSnapshot>(
        scratch_->snapshot(/*cow=*/true));
    res.stats.snapshot_ms += ms_since(t0);
  }
  if (reg_) reg_->set_root(root.state);
  if (opts_.dedup) {
    if (opts_.resume_from_checkpoint) {
      // Preseed with the checkpoint's visited set (root digest included);
      // children re-reaching pre-crash states dedup against it exactly as
      // the uninterrupted run deduped against its own history.
      for (std::uint64_t h : opts_.resume_visited) visited_insert(h);
    } else {
      const std::uint64_t h =
          timed_mc_digest(*scratch_, res.stats, opts_.abstract_time);
      if (use_sleepvis) {
        std::vector<std::uint64_t> none;  // the root has no sleep set
        sleepvis.visit(h, none);
      } else {
        visited_insert(h);
      }
    }
  }
  if (opts_.por) por.root = root.state;

  auto push_frontier = [&](Node&& nd, double pri) {
    meter.push(nd);
    if (opts_.order == SearchOrder::kPriority) {
      pq.push_back({pri, std::move(nd)});
      std::push_heap(pq.begin(), pq.end(), heap_less);
    } else {
      fifo.push_back(std::move(nd));
    }
  };

  if (opts_.resume_from_checkpoint) {
    // Re-plant the captured frontier in captured order: push_back then
    // BFS pop_front / DFS pop_back reproduces the uninterrupted run's pop
    // sequence exactly.
    for (Node& nd : resume_nodes(root.state, arena)) {
      push_frontier(std::move(nd), 0.0);
    }
  } else {
    double pri = opts_.order == SearchOrder::kPriority && opts_.priority
                     ? opts_.priority(*scratch_)
                     : 0.0;
    push_frontier(std::move(root), pri);
  }

  auto finish = [&]() {
    res.stats.peak_frontier_bytes = meter.peak();
    if (reg_) {
      // Meter (node shells) + registry (resident anchor snapshots); see
      // the FrontierMeter comment for why budgeted mode splits these.
      res.stats.peak_frontier_bytes += reg_->peak_resident();
      res.stats.anchor_evictions = reg_->evictions();
    }
    if (opts_.dedup) {
      if (use_tier) {
        res.stats.visited_resident_bytes = tiered->resident_bytes();
        res.stats.visited_peak_resident_bytes = tiered->peak_resident_bytes();
        res.stats.visited_spilled_bytes = tiered->spilled_bytes();
        res.stats.spilled_bytes = tiered->spill_bytes_written();
        res.stats.bloom_fp_rate = tiered->bloom_fp_rate();
      } else {
        res.stats.visited_resident_bytes =
            use_sleepvis ? sleepvis.bytes() : visited.bytes();
        res.stats.visited_peak_resident_bytes =
            res.stats.visited_resident_bytes;
      }
    }
    if (opts_.collect_visited) {
      if (use_sleepvis) {
        res.visited = sleepvis.sorted_contents();
      } else if (use_tier) {
        res.visited = tiered->sorted_contents();
      } else {
        visited.for_each(
            [&](std::uint64_t v) { res.visited.push_back(v); });
        std::sort(res.visited.begin(), res.visited.end());
      }
    }
  };

  while (true) {
    // Pause only with work left: a pause on an empty frontier would read
    // as a resumable checkpoint when the search is in fact complete.
    if (opts_.pause_check &&
        !(opts_.order == SearchOrder::kPriority ? pq.empty() : fifo.empty()) &&
        opts_.pause_check(res.stats)) {
      res.paused = true;
      break;
    }
    Node cur;
    if (opts_.order == SearchOrder::kPriority) {
      if (pq.empty()) break;
      std::pop_heap(pq.begin(), pq.end(), heap_less);
      cur = std::move(pq.back().n);
      pq.pop_back();
    } else if (opts_.order == SearchOrder::kBfs) {
      if (fifo.empty()) break;
      cur = std::move(fifo.front());
      fifo.pop_front();
    } else {
      if (fifo.empty()) break;
      cur = std::move(fifo.back());
      fifo.pop_back();
    }
    meter.pop(cur);

    if (cur.depth >= opts_.max_depth) {
      res.stats.truncated = true;
      continue;
    }

    materialize(*scratch_, cur, res.stats);
    std::vector<SysAction> actions = enabled_actions(*scratch_);

    // Trail mode: when the children's replay distance would reach the
    // interval, snapshot the parent state (scratch_ holds it right now)
    // once and re-anchor cur on it — every child then hangs one action
    // off this shared anchor (one anchor per expanded node, not per
    // child), and the per-action materialize calls below replay nothing.
    // Snapshot mode re-anchors whenever replay_len > 0: the only such
    // nodes are POR backtracks (root anchor + full-path replay), and one
    // snapshot here beats replaying the prefix once per child.
    if (!actions.empty() &&
        (opts_.trail_frontier ? cur.replay_len + 1 >= opts_.anchor_interval
                              : cur.replay_len > 0)) {
      auto t0 = SteadyClock::now();
      auto anchor = std::make_shared<Anchor>();
      anchor->snap = std::make_shared<const rt::WorldSnapshot>(
          scratch_->snapshot(/*cow=*/true));
      res.stats.snapshot_ms += ms_since(t0);
      if (reg_) {
        // Evictable: record the root-relative rebuild recipe first.
        anchor->path = cur.path;
        anchor->depth = cur.depth;
        reg_->admit(anchor);
      }
      cur.state = std::move(anchor);
      cur.replay_len = 0;
    }

    // Keys and footprints are computed against the pre-state (footprints
    // peek queued messages to resolve channels), before any action runs.
    const std::size_t n_act = actions.size();
    std::vector<std::uint64_t> keys(n_act);
    std::vector<ActionFootprint> fps(n_act);
    for (std::size_t i = 0; i < n_act; ++i) {
      keys[i] = action_key(actions[i]);
      fps[i] = footprint(*scratch_, actions[i]);
    }

    std::uint64_t cur_digest = 0;
    std::vector<std::size_t> run;
    if (opts_.por && n_act > 0) {
      cur_digest =
          timed_mc_digest(*scratch_, res.stats, opts_.abstract_time);
      run = por_select(por, cur_digest, actions, fps, keys, cur, res.stats);
    } else {
      run.resize(n_act);
      for (std::size_t i = 0; i < n_act; ++i) run[i] = i;
    }

    for (std::size_t pos = 0; pos < run.size(); ++pos) {
      const std::size_t i = run[pos];
      const SysAction& a = actions[i];
      const std::uint64_t akey = keys[i];
      const ActionFootprint& afp = fps[i];

      if (opts_.sleep_sets && is_slept(cur, akey)) continue;

      materialize(*scratch_, cur, res.stats);
      scratch_->clear_violations();
      apply_action(*scratch_, a);
      ++res.stats.transitions;

      if (opts_.por) {
        por_race_detect(por, cur, afp, akey, backtracks, res.stats);
        for (Node& b : backtracks) push_frontier(std::move(b), 0.0);
        backtracks.clear();
      }

      arena.push_back({cur.path, a, afp, cur_digest});
      const PathNode* path = &arena.back();
      std::size_t depth = cur.depth + 1;

      if (!scratch_->violations().empty()) {
        for (const rt::Violation& v : scratch_->violations()) {
          res.violations.push_back({v, trail_of(path), depth});
          if (res.violations.size() >= opts_.max_violations) {
            finish();
            return res;
          }
        }
      }

      auto sleep = opts_.sleep_sets
                       ? child_sleep(cur, actions, fps, keys, run, pos)
                       : nullptr;

      bool reexpand_child = false;
      if (opts_.dedup) {
        std::uint64_t h =
            timed_mc_digest(*scratch_, res.stats, opts_.abstract_time);
        if (use_sleepvis) {
          std::vector<std::uint64_t> skeys;
          if (sleep) {
            skeys.reserve(sleep->size());
            for (const SleepEntry& e : *sleep) skeys.push_back(e.key);
            std::sort(skeys.begin(), skeys.end());
          }
          std::vector<std::uint64_t> released;
          const auto verdict =
              sleepvis.visit(h, skeys, opts_.por ? &released : nullptr);
          if (verdict == StripedSleepVisited::Verdict::kPrune) {
            ++res.stats.duplicates;
            arena.pop_back();  // never published; nothing references it
            continue;
          }
          if (verdict == StripedSleepVisited::Verdict::kReexpand) {
            // Duplicate state, but the stored expansion ran with a sleep
            // set that is not a subset of this arrival's — its coverage
            // claim does not hold for this path. Re-expand with the
            // intersection; no fresh state is counted.
            ++res.stats.duplicates;
            ++res.stats.sleep_reexpansions;
            reexpand_child = true;
            if (sleep) {
              sleep->erase(
                  std::remove_if(sleep->begin(), sleep->end(),
                                 [&](const SleepEntry& e) {
                                   return !std::binary_search(
                                       skeys.begin(), skeys.end(), e.key);
                                 }),
                  sleep->end());
              if (sleep->empty()) sleep.reset();
            }
            // POR selection at the re-expanded node seeds from pending —
            // force the released keys onto its work list, or the
            // re-expansion would find nothing to run.
            for (std::uint64_t k : released) por.recs.seed_pending(h, k);
          }
        } else if (!visited_insert(h)) {
          ++res.stats.duplicates;
          arena.pop_back();  // never published; nothing references it
          continue;
        }
      }
      if (!reexpand_child) {
        ++res.stats.states;
        res.stats.max_depth =
            std::max<std::uint64_t>(res.stats.max_depth, depth);
        if (res.stats.states >= opts_.max_states) {
          res.stats.truncated = true;
          finish();
          return res;
        }
      }

      Node child;
      child.path = path;
      child.depth = static_cast<std::uint32_t>(depth);
      if (!opts_.trail_frontier) {
        auto t0 = SteadyClock::now();
        child.state = std::make_shared<Anchor>();
        child.state->snap = std::make_shared<const rt::WorldSnapshot>(
            scratch_->snapshot(/*cow=*/true));
        res.stats.snapshot_ms += ms_since(t0);
      } else {
        // The expansion loop re-anchored the parent when its children
        // would exceed the interval, so extending by one is always valid.
        child.state = cur.state;
        child.replay_len = cur.replay_len + 1;
      }
      child.sleep = std::move(sleep);
      double pri = 0.0;
      if (opts_.order == SearchOrder::kPriority && opts_.priority) {
        pri = opts_.priority(*scratch_);
      }
      push_frontier(std::move(child), pri);
    }
  }
  if (res.paused && opts_.capture_frontier) {
    // Front-to-back deque order: resume's push_back sequence restores the
    // identical pop order for both kBfs (pop_front) and kDfs (pop_back).
    // Capture happens ONLY at a pause — a budget truncation returns
    // mid-expansion and would lose the popped node's unexpanded children.
    for (const Node& nd : fifo) res.frontier.push_back(trail_of(nd.path));
  }
  finish();
  return res;
}

// ---------------------------------------------------------------------------
// Parallel graph search
// ---------------------------------------------------------------------------

// expand() re-states the sequential expansion loop's *control flow*
// (re-anchoring, violation/dedup/budget order): graph_search() is the
// trusted oracle the differential suite (tests/test_mc_parallel.cpp)
// compares this code against, and sharing the whole body would make that
// comparison vacuous. The *reduction semantics*, however — footprints,
// is_slept, child_sleep inherit/extend, POR selection and race detection —
// live in shared helpers on purpose: an independence rule that drifted
// between the sequential and parallel paths would be an unsoundness the
// differential could only catch by luck, so that logic has exactly one
// definition. Any control-flow change here must be mirrored in
// graph_search(), and the differential tests enforce the equivalence.
void SystemExplorer::expand(Shared& sh, Worker& me, Node cur) {
  rt::World& w = *me.world;
  ExploreStats& stats = me.stats;
  const bool use_sleepvis = opts_.sleep_sets && opts_.dedup;
  std::vector<Node> backtracks;

  if (cur.depth >= opts_.max_depth) {
    stats.truncated = true;
    return;
  }

  materialize(w, cur, stats);
  std::vector<SysAction> actions = enabled_actions(w);

  // Re-anchoring, as in the sequential search (snapshot mode re-anchors
  // POR backtrack nodes, the only replay_len > 0 nodes it produces); the
  // fresh anchor is marked shared because any child may be stolen.
  if (!actions.empty() &&
      (opts_.trail_frontier ? cur.replay_len + 1 >= opts_.anchor_interval
                            : cur.replay_len > 0)) {
    auto t0 = SteadyClock::now();
    auto snap = std::make_shared<const rt::WorldSnapshot>(
        w.snapshot(/*cow=*/true));
    snap->share_across_threads();
    stats.snapshot_ms += ms_since(t0);
    auto anchor = std::make_shared<Anchor>();
    anchor->snap = std::move(snap);
    if (reg_) {
      anchor->path = cur.path;
      anchor->depth = cur.depth;
      reg_->admit(anchor);
    }
    cur.state = std::move(anchor);
    cur.replay_len = 0;
  }

  // Keys and footprints against the pre-state, as in graph_search().
  const std::size_t n_act = actions.size();
  std::vector<std::uint64_t> keys(n_act);
  std::vector<ActionFootprint> fps(n_act);
  for (std::size_t i = 0; i < n_act; ++i) {
    keys[i] = action_key(actions[i]);
    fps[i] = footprint(w, actions[i]);
  }

  std::uint64_t cur_digest = 0;
  std::vector<std::size_t> run;
  if (opts_.por && n_act > 0) {
    cur_digest = timed_mc_digest(w, stats, opts_.abstract_time);
    run = por_select(sh.por, cur_digest, actions, fps, keys, cur, stats);
  } else {
    run.resize(n_act);
    for (std::size_t i = 0; i < n_act; ++i) run[i] = i;
  }

  // active must rise before a node becomes visible, so an idle worker can
  // never observe "no work anywhere" while a child is in flight. Meter
  // pairing follows the deque rule: the pusher charged, only the pusher
  // refunds (worker_loop).
  auto push_local = [&](Node&& nd, double pri) {
    nd.owner = static_cast<std::uint32_t>(me.id);
    sh.active.fetch_add(1);
    me.meter.push(nd);
    if (opts_.order == SearchOrder::kPriority) {
      me.pq.push(pri, std::move(nd));
    } else {
      me.deque.push_back(std::move(nd));
    }
  };

  for (std::size_t pos = 0; pos < run.size(); ++pos) {
    if (sh.stop.load(std::memory_order_acquire)) return;
    const std::size_t i = run[pos];
    const SysAction& a = actions[i];
    const std::uint64_t akey = keys[i];
    const ActionFootprint& afp = fps[i];

    if (opts_.sleep_sets && is_slept(cur, akey)) continue;

    materialize(w, cur, stats);
    w.clear_violations();
    apply_action(w, a);
    ++stats.transitions;

    if (opts_.por) {
      por_race_detect(sh.por, cur, afp, akey, backtracks, stats);
      for (Node& b : backtracks) push_local(std::move(b), 0.0);
      backtracks.clear();
    }

    std::size_t depth = cur.depth + 1;
    const PathNode* path = nullptr;

    if (!w.violations().empty()) {
      me.arena.push_back({cur.path, a, afp, cur_digest});
      path = &me.arena.back();
      for (const rt::Violation& v : w.violations()) {
        me.violations.push_back({v, trail_of(path), depth});
        if (sh.violation_count.fetch_add(1) + 1 >= opts_.max_violations) {
          sh.stop.store(true, std::memory_order_release);
          return;
        }
      }
    }

    auto sleep = opts_.sleep_sets
                     ? child_sleep(cur, actions, fps, keys, run, pos)
                     : nullptr;

    bool reexpand_child = false;
    if (opts_.dedup) {
      std::uint64_t h = timed_mc_digest(w, stats, opts_.abstract_time);
      if (use_sleepvis) {
        std::vector<std::uint64_t> skeys;
        if (sleep) {
          skeys.reserve(sleep->size());
          for (const SleepEntry& e : *sleep) skeys.push_back(e.key);
          std::sort(skeys.begin(), skeys.end());
        }
        std::vector<std::uint64_t> released;
        const auto verdict =
            sh.sleepvis.visit(h, skeys, opts_.por ? &released : nullptr);
        if (verdict == StripedSleepVisited::Verdict::kPrune) {
          ++stats.duplicates;
          // The edge (if allocated for the violation trail above) was
          // never published to a frontier node; the Trail copied its
          // actions.
          if (path) me.arena.pop_back();
          continue;
        }
        if (verdict == StripedSleepVisited::Verdict::kReexpand) {
          // Duplicate state whose stored expansion slept actions this
          // arrival path does not cover; re-expand with the intersection
          // (see graph_search()).
          ++stats.duplicates;
          ++stats.sleep_reexpansions;
          reexpand_child = true;
          if (sleep) {
            sleep->erase(
                std::remove_if(sleep->begin(), sleep->end(),
                               [&](const SleepEntry& e) {
                                 return !std::binary_search(
                                     skeys.begin(), skeys.end(), e.key);
                               }),
                sleep->end());
            if (sleep->empty()) sleep.reset();
          }
          for (std::uint64_t k : released) sh.por.recs.seed_pending(h, k);
        }
      } else if (!(sh.tiered ? sh.tiered->insert(h) : sh.visited.insert(h))) {
        ++stats.duplicates;
        // The edge (if allocated for the violation trail above) was never
        // published to a frontier node; the Trail copied its actions.
        if (path) me.arena.pop_back();
        continue;
      }
    }
    if (!reexpand_child) {
      stats.max_depth = std::max<std::uint64_t>(stats.max_depth, depth);
      // The shared counter is the budget authority (per-worker counts
      // would race past it); it already includes the root.
      if (sh.states.fetch_add(1) + 1 >= opts_.max_states) {
        stats.truncated = true;
        sh.stop.store(true, std::memory_order_release);
        return;
      }
    }

    Node child;
    if (!path) {
      me.arena.push_back({cur.path, a, afp, cur_digest});
      path = &me.arena.back();
    }
    child.path = path;
    child.depth = static_cast<std::uint32_t>(depth);
    if (!opts_.trail_frontier) {
      auto t0 = SteadyClock::now();
      child.state = std::make_shared<Anchor>();
      child.state->snap = std::make_shared<const rt::WorldSnapshot>(
          w.snapshot(/*cow=*/true));
      // Publish before the push below makes the node stealable.
      child.state->snap->share_across_threads();
      stats.snapshot_ms += ms_since(t0);
    } else {
      child.state = cur.state;
      child.replay_len = cur.replay_len + 1;
    }
    child.sleep = std::move(sleep);
    double pri = 0.0;
    if (opts_.order == SearchOrder::kPriority && opts_.priority) {
      // Own shard; other workers route their pops here when this shard's
      // top hint looks best.
      pri = opts_.priority(w);
    }
    push_local(std::move(child), pri);
  }
}

void SystemExplorer::worker_loop(Shared& sh, Worker& me) {
  const bool lifo = opts_.order == SearchOrder::kDfs;
  const std::size_t n = sh.workers.size();
  std::size_t idle_rounds = 0;
  while (true) {
    if (sh.stop.load(std::memory_order_acquire)) return;
    // Clean-boundary pause: checked BEFORE popping, so a paused worker
    // parks its remaining frontier untouched (in-flight expansions on
    // other workers still complete and push their children). pause_check
    // doubles as the lease heartbeat, so it is polled on idle iterations
    // too. The probe's `states` is the slice-wide shared total — states
    // are counted in sh.states, not per worker, and the checkpoint
    // threshold is defined over the whole slice's progress.
    if (sh.paused.load(std::memory_order_acquire)) return;
    if (opts_.pause_check) {
      ExploreStats probe = me.stats;
      probe.states = sh.states.load(std::memory_order_relaxed);
      if (opts_.pause_check(probe)) {
        sh.paused.store(true, std::memory_order_release);
        return;
      }
    }
    Node cur;
    bool got = false;
    if (opts_.order == SearchOrder::kPriority) {
      // Best-effort global best-first over the per-worker shards: compare
      // the own shard's top with every other shard's lock-free hint and
      // pop from the best-looking one. Hints can be momentarily stale, so
      // this may briefly pick a worse node than the true global best —
      // which changes pop order only, never the visited set (differential
      // tests) — and a failed routed pop falls back to the own shard,
      // then to a full sweep (a hint can also be stale-empty).
      double bestp = me.pq.top_hint();
      std::size_t best = me.id;
      for (std::size_t k = 1; k < n; ++k) {
        const std::size_t vid = (me.id + k) % n;
        const double hp = sh.workers[vid]->pq.top_hint();
        if (hp > bestp) {
          bestp = hp;
          best = vid;
        }
      }
      if (best != me.id && sh.workers[best]->pq.pop_top(cur)) {
        got = true;
        ++me.stats.steals;
      }
      if (!got) got = me.pq.pop_top(cur);
      for (std::size_t k = 1; k < n && !got; ++k) {
        got = sh.workers[(me.id + k) % n]->pq.pop_top(cur);
        if (got) ++me.stats.steals;
      }
    } else {
      got = lifo ? me.deque.pop_back(cur) : me.deque.pop_front(cur);
      if (!got) {
        for (std::size_t k = 1; k < n && !got; ++k) {
          got = sh.workers[(me.id + k) % n]->deque.steal(cur, lifo);
        }
        if (got) ++me.stats.steals;
      }
    }
    if (got && cur.owner == me.id) {
      // Refund only nodes this worker's meter charged; a stolen node
      // stays charged on its victim (the merged peak is an upper bound).
      me.meter.pop(cur);
    }
    if (!got) {
      if (sh.active.load(std::memory_order_acquire) == 0) return;
      // Back off when repeatedly idle: spinning at full speed would burn
      // a core per idle worker and, in kPriority mode, contend the shared
      // heap mutex against the workers still making progress.
      if (++idle_rounds < 16) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min<std::size_t>(idle_rounds, 200)));
      }
      continue;
    }
    idle_rounds = 0;
    try {
      expand(sh, me, std::move(cur));
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lk(sh.err_mu);
        if (sh.error.empty()) sh.error = e.what();
      }
      sh.stop.store(true, std::memory_order_release);
      sh.active.fetch_sub(1);
      return;
    }
    sh.active.fetch_sub(1);
  }
}

SysExploreResult SystemExplorer::graph_search_parallel() {
  SysExploreResult res;
  if (!opts_.resume_from_checkpoint && !probe_root(res)) return res;

  const std::size_t n_workers = std::max<std::size_t>(1, opts_.workers);
  Shared sh;

  // One COW snapshot of the investigated state, shared by the root node
  // and every worker world; marked before any thread exists so in-place
  // mutation of its buffers is off for good.
  auto root_ws = std::make_shared<const rt::WorldSnapshot>(
      scratch_->snapshot(/*cow=*/true));
  root_ws->share_across_threads();
  auto root_anchor = std::make_shared<Anchor>();
  root_anchor->snap = root_ws;
  if (reg_) reg_->set_root(root_anchor);
  const bool use_sleepvis = opts_.sleep_sets && opts_.dedup;
  if (opts_.dedup && !use_sleepvis && opts_.visited_budget_bytes > 0) {
    sh.spill_scratch = ScratchDir::create(opts_.spill_dir, "fixd-spill");
    sh.tiered = std::make_unique<TieredVisitedSet>(
        opts_.visited_budget_bytes, sh.spill_scratch.path());
  }
  if (opts_.dedup) {
    if (opts_.resume_from_checkpoint) {
      for (std::uint64_t h : opts_.resume_visited) {
        if (sh.tiered) {
          sh.tiered->insert(h);
        } else {
          sh.visited.insert(h);
        }
      }
    } else {
      const std::uint64_t h =
          timed_mc_digest(*scratch_, res.stats, opts_.abstract_time);
      if (use_sleepvis) {
        std::vector<std::uint64_t> none;  // the root has no sleep set
        sh.sleepvis.visit(h, none);
      } else if (sh.tiered) {
        sh.tiered->insert(h);
      } else {
        sh.visited.insert(h);
      }
    }
  }
  if (opts_.por) sh.por.root = root_anchor;
  sh.states.store(res.stats.states);  // the probed root
  // Root violations count against the budget exactly as in the
  // sequential search.
  sh.violation_count.store(res.violations.size());

  Node root;
  root.depth = 0;
  // Both modes share the one root snapshot object (snapshot mode nodes
  // are "anchor + zero replay" in the unified representation).
  root.state = root_anchor;

  for (std::size_t i = 0; i < n_workers; ++i) {
    auto wk = std::make_unique<Worker>();
    wk->id = i;
    wk->world = scratch_->clone_from_snapshot(*root_ws);
    if (opts_.install_invariants) opts_.install_invariants(*wk->world);
    wk->meter.set_charge_snapshots(reg_ == nullptr);
    sh.workers.push_back(std::move(wk));
  }

  if (opts_.resume_from_checkpoint) {
    // Re-plant the checkpoint frontier round-robin. Path chains go into
    // worker 0's arena (pre-thread, so single-writer holds); readers
    // reach them through the frontier-deque mutexes as usual. kPriority
    // is rejected by check_pause_resume_options, so deques suffice.
    std::vector<Node> nodes = resume_nodes(root_anchor, sh.workers[0]->arena);
    sh.active.store(nodes.size());
    std::size_t wi = 0;
    for (Node& nd : nodes) {
      nd.owner = static_cast<std::uint32_t>(wi);
      sh.workers[wi]->meter.push(nd);
      sh.workers[wi]->deque.push_back(std::move(nd));
      wi = (wi + 1) % n_workers;
    }
  } else {
    sh.active.store(1);
    root.owner = 0;
    sh.workers[0]->meter.push(root);
    if (opts_.order == SearchOrder::kPriority) {
      double pri = opts_.priority ? opts_.priority(*scratch_) : 0.0;
      sh.workers[0]->pq.push(pri, std::move(root));
    } else {
      sh.workers[0]->deque.push_back(std::move(root));
    }
  }

  {
    std::vector<std::thread> threads;
    threads.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) {
      threads.emplace_back([this, &sh, i] { worker_loop(sh, *sh.workers[i]); });
    }
    for (auto& t : threads) t.join();
  }
  if (!sh.error.empty()) {
    throw FixdError("parallel explorer worker failed: " + sh.error);
  }

  // Merge. The shared counter is the state total (root included); timing
  // counters sum across workers (CPU time, can exceed wall time).
  res.stats.states = sh.states.load();
  for (const auto& wk : sh.workers) {
    res.stats.transitions += wk->stats.transitions;
    res.stats.duplicates += wk->stats.duplicates;
    res.stats.max_depth =
        std::max(res.stats.max_depth, wk->stats.max_depth);
    res.stats.truncated = res.stats.truncated || wk->stats.truncated;
    res.stats.digest_ms += wk->stats.digest_ms;
    res.stats.snapshot_ms += wk->stats.snapshot_ms;
    res.stats.replayed_actions += wk->stats.replayed_actions;
    res.stats.anchor_recomputes += wk->stats.anchor_recomputes;
    res.stats.steals += wk->stats.steals;
    res.stats.sleep_reexpansions += wk->stats.sleep_reexpansions;
    res.stats.por_deferred += wk->stats.por_deferred;
    res.stats.por_backtracks += wk->stats.por_backtracks;
    // Sum-of-peaks upper bound plus the largest single-worker share.
    res.stats.peak_frontier_bytes += wk->meter.peak();
    res.stats.peak_frontier_bytes_max_worker =
        std::max(res.stats.peak_frontier_bytes_max_worker, wk->meter.peak());
    for (auto& v : wk->violations) res.violations.push_back(std::move(v));
  }
  res.stats.workers = n_workers;
  // Violations arrive in nondeterministic worker order; re-sort into a
  // stable shape (shallowest first, ties by invariant name). The count may
  // exceed max_violations by the few found concurrently with the stop.
  std::stable_sort(res.violations.begin(), res.violations.end(),
                   [](const SysViolation& a, const SysViolation& b) {
                     if (a.depth != b.depth) return a.depth < b.depth;
                     return a.violation.invariant < b.violation.invariant;
                   });
  if (reg_) {
    res.stats.peak_frontier_bytes += reg_->peak_resident();
    res.stats.anchor_evictions = reg_->evictions();
  }
  if (opts_.dedup) {
    if (sh.tiered) {
      res.stats.visited_resident_bytes = sh.tiered->resident_bytes();
      res.stats.visited_peak_resident_bytes =
          sh.tiered->peak_resident_bytes();
      res.stats.visited_spilled_bytes = sh.tiered->spilled_bytes();
      res.stats.spilled_bytes = sh.tiered->spill_bytes_written();
      res.stats.bloom_fp_rate = sh.tiered->bloom_fp_rate();
    } else {
      res.stats.visited_resident_bytes =
          use_sleepvis ? sh.sleepvis.bytes() : sh.visited.bytes();
      res.stats.visited_peak_resident_bytes =
          res.stats.visited_resident_bytes;
    }
  }
  if (opts_.collect_visited) {
    res.visited = use_sleepvis  ? sh.sleepvis.sorted_contents()
                  : sh.tiered ? sh.tiered->sorted_contents()
                              : sh.visited.sorted_contents();
  }
  // A pause that raced a hard stop (budget/violation cap) is NOT a clean
  // boundary — stop abandons in-flight children — so it is not reported
  // as paused and nothing is captured.
  res.paused = sh.paused.load() && !sh.stop.load();
  if (res.paused && opts_.capture_frontier) {
    for (auto& wk : sh.workers) {
      Node nd;
      while (wk->deque.pop_front(nd)) {
        res.frontier.push_back(trail_of(nd.path));
      }
    }
  }
  return res;
}

// Walks are embarrassingly parallel: each is an independent seeded
// trajectory from the investigated root. The per-walk RNG is derived from
// (seed, walk index) — never shared across walks — so sharding the walk
// budget over workers cannot change any trajectory: workers == k runs
// exactly the walks workers == 1 runs (violations are re-sorted into walk
// order). The only divergence is the early stop: a parallel run may
// finish the few walks in flight when the violation budget fills, so it
// can report slightly more walks' worth of violations than a sequential
// run that stopped between walks.
SysExploreResult SystemExplorer::random_walk() {
  SysExploreResult res;

  rt::WorldSnapshot root = scratch_->snapshot(/*cow=*/true);

  /// One walk on `w`, appending (walk-tagged) violations to `out`.
  auto run_walk = [&](rt::World& w, std::deque<PathNode>& arena,
                      std::size_t walk, ExploreStats& stats,
                      std::vector<std::pair<std::size_t, SysViolation>>& out)
      -> std::size_t {
    Rng rng(hash_combine(opts_.seed, walk));
    w.restore(root);
    w.clear_violations();
    std::size_t found = 0;
    const PathNode* cur_path = nullptr;
    for (std::size_t d = 0; d < opts_.max_depth; ++d) {
      auto actions = enabled_actions(w);
      if (actions.empty()) break;
      const SysAction& a = actions[rng.next_below(actions.size())];
      apply_action(w, a);
      ++stats.transitions;
      ++stats.states;
      arena.push_back({cur_path, a});
      cur_path = &arena.back();
      stats.max_depth = std::max<std::uint64_t>(stats.max_depth, d + 1);
      if (!w.violations().empty()) {
        for (const rt::Violation& v : w.violations()) {
          out.push_back({walk, {v, trail_of(cur_path), d + 1}});
          ++found;
        }
        break;
      }
    }
    return found;
  };

  const std::size_t n_workers = std::min<std::size_t>(
      std::max<std::size_t>(1, opts_.workers),
      std::max<std::size_t>(1, opts_.walk_restarts));

  std::vector<std::pair<std::size_t, SysViolation>> tagged;
  if (n_workers <= 1) {
    std::deque<PathNode> arena;
    std::size_t found = 0;
    for (std::size_t walk = 0; walk < opts_.walk_restarts; ++walk) {
      found += run_walk(*scratch_, arena, walk, res.stats, tagged);
      if (found >= opts_.max_violations) break;
    }
  } else {
    root.share_across_threads();
    std::atomic<std::size_t> next_walk{0};
    std::atomic<std::size_t> violation_count{0};
    std::atomic<bool> stop{false};
    std::mutex err_mu;
    std::string error;

    struct WalkWorker {
      std::unique_ptr<rt::World> world;
      std::deque<PathNode> arena;
      ExploreStats stats;
      std::vector<std::pair<std::size_t, SysViolation>> violations;
    };
    std::vector<WalkWorker> workers(n_workers);
    for (auto& wk : workers) {
      wk.world = scratch_->clone_from_snapshot(root);
      if (opts_.install_invariants) opts_.install_invariants(*wk.world);
    }

    {
      std::vector<std::thread> threads;
      threads.reserve(n_workers);
      for (std::size_t i = 0; i < n_workers; ++i) {
        threads.emplace_back([&, i] {
          WalkWorker& me = workers[i];
          try {
            while (!stop.load(std::memory_order_acquire)) {
              std::size_t walk = next_walk.fetch_add(1);
              if (walk >= opts_.walk_restarts) return;
              std::size_t found = run_walk(*me.world, me.arena, walk,
                                           me.stats, me.violations);
              if (found > 0 && violation_count.fetch_add(found) + found >=
                                   opts_.max_violations) {
                stop.store(true, std::memory_order_release);
              }
            }
          } catch (const std::exception& e) {
            {
              std::lock_guard<std::mutex> lk(err_mu);
              if (error.empty()) error = e.what();
            }
            stop.store(true, std::memory_order_release);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    if (!error.empty()) {
      throw FixdError("parallel random walk worker failed: " + error);
    }

    for (auto& wk : workers) {
      res.stats.transitions += wk.stats.transitions;
      res.stats.states += wk.stats.states;
      res.stats.max_depth = std::max(res.stats.max_depth, wk.stats.max_depth);
      for (auto& v : wk.violations) tagged.push_back(std::move(v));
    }
    // Walks complete in nondeterministic worker order; walk-index order is
    // the sequential report order.
    std::stable_sort(tagged.begin(), tagged.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }
  res.stats.workers = n_workers;
  res.violations.reserve(tagged.size());
  for (auto& [walk, v] : tagged) res.violations.push_back(std::move(v));
  return res;
}

std::vector<rt::Violation> SystemExplorer::replay_trail(
    rt::World& base, const Trail& trail,
    const std::function<void(rt::World&)>& install_invariants,
    bool abstract_time) {
  auto w = base.clone();
  w->set_abstract_time(abstract_time);
  w->set_check_global_invariants(true);
  w->set_stop_on_violation(false);
  if (install_invariants) install_invariants(*w);
  w->clear_violations();
  try {
    for (const SysAction& a : trail.steps) {
      apply_action(*w, a);
    }
  } catch (const FixdError&) {
    return {};  // trail not executable => did not reproduce
  }
  return w->violations();
}

}  // namespace fixd::mc
