#include "mc/sysmodel.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.hpp"

namespace fixd::mc {

namespace {

using SteadyClock = std::chrono::steady_clock;

double ms_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

/// Time one state-digest call and charge it to stats.digest_ms.
std::uint64_t timed_mc_digest(rt::World& w, ExploreStats& stats) {
  auto t0 = SteadyClock::now();
  std::uint64_t d = w.mc_digest();
  stats.digest_ms += ms_since(t0);
  return d;
}

}  // namespace

/// Peak-frontier accounting with sharing awareness: COW checkpoint and
/// message buffers referenced by several frontier nodes are charged once
/// (pointer-keyed refcounts), so snapshot-mode and trail-mode numbers are
/// honestly comparable.
class SystemExplorer::FrontierMeter {
 public:
  void push(const Node& n) {
    cur_ += node_cost(n, +1);
    if (cur_ > peak_) peak_ = cur_;
  }
  void pop(const Node& n) { cur_ -= node_cost(n, -1); }
  std::uint64_t peak() const { return peak_; }

 private:
  /// Charge `bytes` when `p` first enters the frontier, refund when the
  /// last reference leaves. Returns the delta actually applied.
  std::uint64_t charge(const void* p, std::uint64_t bytes, int dir) {
    if (!p) return 0;
    if (dir > 0) return refs_[p]++ == 0 ? bytes : 0;
    auto it = refs_.find(p);
    if (it == refs_.end()) return 0;
    if (--it->second > 0) return 0;
    refs_.erase(it);
    return bytes;
  }

  std::uint64_t snapshot_cost(const rt::WorldSnapshot& s, int dir) {
    std::uint64_t n = 0;
    for (const auto& p : s.procs) {
      if (!p) continue;
      // size_bytes covers root/info plus the COW page *table*; the
      // resident page content is charged per unique page so diverged
      // pages pinned only by the frontier show up honestly.
      n += charge(p.get(), p->size_bytes(), dir);
      if (p->heap_snap) {
        for (const auto& page : p->heap_snap->pages()) {
          if (page) n += charge(page.get(), page->size(), dir);
        }
      }
    }
    if (s.net) {
      for (const auto& [id, m] : s.net->messages) {
        n += charge(m.get(), m->retained_bytes(), dir);
      }
      std::uint64_t table = sizeof(net::NetSnapshot);
      for (const auto& [key, q] : s.net->channels) {
        table += sizeof(key) + q.size() * sizeof(MsgId);
      }
      n += charge(s.net.get(), table, dir);
    }
    return n;
  }

  std::uint64_t node_cost(const Node& n, int dir) {
    std::uint64_t c = sizeof(Node) + n.sleep.size() * sizeof(SleepEntry) +
                      n.snap.procs.size() * sizeof(void*);
    std::uint64_t shared = snapshot_cost(n.snap, dir);
    if (n.anchor) shared += snapshot_cost(*n.anchor, dir);
    return c + shared;
  }

  std::unordered_map<const void*, std::size_t> refs_;
  std::uint64_t cur_ = 0;
  std::uint64_t peak_ = 0;
};

SystemExplorer::SystemExplorer(rt::World& base, SysExploreOptions opts)
    : base_(base), opts_(std::move(opts)) {
  scratch_ = base_.clone();
  scratch_->set_abstract_time(true);
  scratch_->set_check_global_invariants(true);
  scratch_->set_stop_on_violation(false);
  if (opts_.install_invariants) opts_.install_invariants(*scratch_);
}

SystemExplorer::~SystemExplorer() = default;

void SystemExplorer::materialize(const Node& n, ExploreStats& stats) {
  if (!opts_.trail_frontier) {
    scratch_->restore(n.snap);
    return;
  }
  scratch_->restore(*n.anchor);
  if (n.replay_len == 0) return;
  // The meta_ chain stores the path youngest-first; collect the suffix,
  // then re-execute oldest-first. Determinism makes this bit-identical to
  // the state captured when the node was created.
  std::vector<const SysAction*> suffix(n.replay_len);
  std::size_t mi = n.meta;
  for (std::size_t i = n.replay_len; i-- > 0;) {
    suffix[i] = &meta_[mi].action;
    mi = meta_[mi].parent;
  }
  scratch_->clear_violations();
  for (const SysAction* a : suffix) apply_action(*scratch_, *a);
  // Violations raised along the replayed prefix were recorded when it was
  // first explored; drop the duplicates.
  scratch_->clear_violations();
  stats.replayed_actions += n.replay_len;
}

void SystemExplorer::capture_node(Node& child, const Node& parent,
                                  ExploreStats& stats) {
  if (!opts_.trail_frontier) {
    auto t0 = SteadyClock::now();
    child.snap = scratch_->snapshot(/*cow=*/true);
    stats.snapshot_ms += ms_since(t0);
    return;
  }
  // The expansion loop re-anchored the parent when its children would
  // exceed the interval, so extending the trail by one is always valid.
  child.anchor = parent.anchor;
  child.replay_len = parent.replay_len + 1;
}

std::vector<SysAction> SystemExplorer::enabled_actions(rt::World& w) const {
  std::vector<SysAction> out;
  for (const rt::EventDesc& ev : w.enabled_events()) {
    SysAction a;
    a.kind = SysAction::Kind::kRuntime;
    a.event = ev;
    out.push_back(a);
  }
  if (opts_.model_message_loss || opts_.model_message_duplication) {
    for (MsgId id : w.network().deliverable()) {
      const net::Message* m = w.network().peek(id);
      if (m->control) continue;  // FixD's own protocol stays reliable
      if (opts_.model_message_loss) {
        SysAction a;
        a.kind = SysAction::Kind::kDropMessage;
        a.msg = id;
        out.push_back(a);
      }
      if (opts_.model_message_duplication) {
        SysAction a;
        a.kind = SysAction::Kind::kDupMessage;
        a.msg = id;
        out.push_back(a);
      }
    }
  }
  return out;
}

void SystemExplorer::apply_action(rt::World& w, const SysAction& a) {
  switch (a.kind) {
    case SysAction::Kind::kRuntime:
      w.execute_event(a.event);
      break;
    case SysAction::Kind::kDropMessage:
      w.network().drop(a.msg, /*forced=*/true);
      break;
    case SysAction::Kind::kDupMessage:
      w.network().duplicate(a.msg);
      break;
  }
}

std::uint32_t SystemExplorer::fingerprint(const SysAction& a) {
  switch (a.kind) {
    case SysAction::Kind::kRuntime:
      return a.event.pid;
    case SysAction::Kind::kDropMessage:
    case SysAction::Kind::kDupMessage:
      // Touches the channel toward the message's destination; we cannot
      // cheaply know dst here, so callers pass the world-resolved value via
      // action construction order. Conservative: treat as touching the
      // whole network => dependent with everything (fingerprint collision).
      return 0xffffffffu;
  }
  return 0xffffffffu;
}

std::uint64_t SystemExplorer::action_key(const SysAction& a) {
  Hasher h;
  h.update_u64(static_cast<std::uint64_t>(a.kind));
  h.update_u64(static_cast<std::uint64_t>(a.event.kind));
  h.update_u64(a.event.pid);
  h.update_u64(a.event.msg);
  h.update_u64(a.event.timer);
  h.update_u64(a.msg);
  return h.digest();
}

Trail SystemExplorer::trail_of(std::size_t meta_idx) const {
  Trail t;
  while (meta_idx != kNpos) {
    const Meta& m = meta_[meta_idx];
    if (m.parent == kNpos && meta_idx == 0) break;
    t.steps.push_back(m.action);
    meta_idx = m.parent;
  }
  std::reverse(t.steps.begin(), t.steps.end());
  return t;
}

SysExploreResult SystemExplorer::explore() {
  auto t0 = SteadyClock::now();
  SysExploreResult res = opts_.order == SearchOrder::kRandomWalk
                             ? random_walk()
                             : graph_search();
  res.stats.wall_ms = ms_since(t0);
  return res;
}

SysExploreResult SystemExplorer::graph_search() {
  SysExploreResult res;
  std::unordered_set<std::uint64_t> visited;

  auto cmp = [](const Node& a, const Node& b) {
    return a.priority < b.priority;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> pq(cmp);
  std::deque<Node> fifo;

  meta_.clear();
  meta_.push_back({kNpos, SysAction{}});

  // Root: probe the investigated state itself first — the violation might
  // already hold (e.g. the Time Machine rolled back insufficiently far).
  scratch_->clear_violations();
  scratch_->recheck_invariants();
  ++res.stats.states;
  for (const rt::Violation& v : scratch_->violations()) {
    res.violations.push_back({v, Trail{}, 0});
  }
  scratch_->clear_violations();
  if (res.violations.size() >= opts_.max_violations) return res;

  FrontierMeter meter;

  Node root;
  root.meta = 0;
  root.depth = 0;
  {
    auto t0 = SteadyClock::now();
    if (opts_.trail_frontier) {
      root.anchor = std::make_shared<const rt::WorldSnapshot>(
          scratch_->snapshot(/*cow=*/true));
    } else {
      root.snap = scratch_->snapshot(/*cow=*/true);
    }
    res.stats.snapshot_ms += ms_since(t0);
  }
  if (opts_.dedup) visited.insert(timed_mc_digest(*scratch_, res.stats));

  meter.push(root);
  if (opts_.order == SearchOrder::kPriority) {
    if (opts_.priority) root.priority = opts_.priority(*scratch_);
    pq.push(std::move(root));
  } else {
    fifo.push_back(std::move(root));
  }

  while (true) {
    Node cur;
    if (opts_.order == SearchOrder::kPriority) {
      if (pq.empty()) break;
      cur = pq.top();
      pq.pop();
    } else if (opts_.order == SearchOrder::kBfs) {
      if (fifo.empty()) break;
      cur = std::move(fifo.front());
      fifo.pop_front();
    } else {
      if (fifo.empty()) break;
      cur = std::move(fifo.back());
      fifo.pop_back();
    }
    meter.pop(cur);

    if (cur.depth >= opts_.max_depth) {
      res.stats.truncated = true;
      continue;
    }

    materialize(cur, res.stats);
    std::vector<SysAction> actions = enabled_actions(*scratch_);

    // Trail mode: when the children's replay distance would reach the
    // interval, snapshot the parent state (scratch_ holds it right now)
    // once and re-anchor cur on it — every child then hangs one action
    // off this shared anchor (one anchor per expanded node, not per
    // child), and the per-action materialize calls below replay nothing.
    if (opts_.trail_frontier &&
        cur.replay_len + 1 >= opts_.anchor_interval && !actions.empty()) {
      auto t0 = SteadyClock::now();
      cur.anchor = std::make_shared<const rt::WorldSnapshot>(
          scratch_->snapshot(/*cow=*/true));
      cur.replay_len = 0;
      res.stats.snapshot_ms += ms_since(t0);
    }

    for (std::size_t i = 0; i < actions.size(); ++i) {
      const SysAction& a = actions[i];
      const std::uint64_t akey = action_key(a);
      const std::uint32_t afp = fingerprint(a);

      if (opts_.sleep_sets) {
        bool slept = false;
        for (const SleepEntry& e : cur.sleep) {
          if (e.key == akey) {
            slept = true;
            break;
          }
        }
        if (slept) continue;
      }

      materialize(cur, res.stats);
      scratch_->clear_violations();
      apply_action(*scratch_, a);
      ++res.stats.transitions;

      meta_.push_back({cur.meta, a});
      std::size_t mi = meta_.size() - 1;
      std::size_t depth = cur.depth + 1;

      if (!scratch_->violations().empty()) {
        for (const rt::Violation& v : scratch_->violations()) {
          res.violations.push_back({v, trail_of(mi), depth});
          if (res.violations.size() >= opts_.max_violations) {
            res.stats.peak_frontier_bytes = meter.peak();
            return res;
          }
        }
      }

      if (opts_.dedup) {
        std::uint64_t h = timed_mc_digest(*scratch_, res.stats);
        if (!visited.insert(h).second) {
          ++res.stats.duplicates;
          meta_.pop_back();
          continue;
        }
      }
      ++res.stats.states;
      res.stats.max_depth =
          std::max<std::uint64_t>(res.stats.max_depth, depth);
      if (res.stats.states >= opts_.max_states) {
        res.stats.truncated = true;
        res.stats.peak_frontier_bytes = meter.peak();
        return res;
      }

      Node child;
      child.meta = mi;
      child.depth = depth;
      capture_node(child, cur, res.stats);
      if (opts_.sleep_sets) {
        for (const SleepEntry& e : cur.sleep) {
          if (independent(e.fp, afp)) child.sleep.push_back(e);
        }
        for (std::size_t j = 0; j < i; ++j) {
          std::uint32_t fpj = fingerprint(actions[j]);
          if (independent(fpj, afp)) {
            child.sleep.push_back({action_key(actions[j]), fpj});
          }
        }
      }
      meter.push(child);
      if (opts_.order == SearchOrder::kPriority) {
        if (opts_.priority) child.priority = opts_.priority(*scratch_);
        pq.push(std::move(child));
      } else {
        fifo.push_back(std::move(child));
      }
    }
  }
  res.stats.peak_frontier_bytes = meter.peak();
  return res;
}

SysExploreResult SystemExplorer::random_walk() {
  SysExploreResult res;
  Rng rng(opts_.seed);
  meta_.clear();
  meta_.push_back({kNpos, SysAction{}});

  rt::WorldSnapshot root = scratch_->snapshot(/*cow=*/true);
  for (std::size_t walk = 0; walk < opts_.walk_restarts; ++walk) {
    scratch_->restore(root);
    scratch_->clear_violations();
    std::size_t cur_meta = 0;
    for (std::size_t d = 0; d < opts_.max_depth; ++d) {
      auto actions = enabled_actions(*scratch_);
      if (actions.empty()) break;
      const SysAction& a = actions[rng.next_below(actions.size())];
      apply_action(*scratch_, a);
      ++res.stats.transitions;
      ++res.stats.states;
      meta_.push_back({cur_meta, a});
      cur_meta = meta_.size() - 1;
      res.stats.max_depth =
          std::max<std::uint64_t>(res.stats.max_depth, d + 1);
      if (!scratch_->violations().empty()) {
        for (const rt::Violation& v : scratch_->violations()) {
          res.violations.push_back({v, trail_of(cur_meta), d + 1});
        }
        break;
      }
    }
    if (res.violations.size() >= opts_.max_violations) break;
  }
  return res;
}

std::vector<rt::Violation> SystemExplorer::replay_trail(
    rt::World& base, const Trail& trail,
    const std::function<void(rt::World&)>& install_invariants) {
  auto w = base.clone();
  w->set_abstract_time(true);
  w->set_check_global_invariants(true);
  w->set_stop_on_violation(false);
  if (install_invariants) install_invariants(*w);
  w->clear_violations();
  try {
    for (const SysAction& a : trail.steps) {
      apply_action(*w, a);
    }
  } catch (const FixdError&) {
    return {};  // trail not executable => did not reproduce
  }
  return w->violations();
}

}  // namespace fixd::mc
