// Trails and bug reports: the Investigator's output.
//
// §3.3: the Investigator "returns a set of trails that lead to invariant
// violations". A Trail is the exact action sequence from the investigated
// state to the violation; it re-executes deterministically (tested), which
// is what makes it a *bug report* rather than a guess.
#pragma once

#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "rt/event.hpp"
#include "rt/invariant.hpp"

namespace fixd::mc {

/// One transition label in a system-level trail.
struct SysAction {
  enum class Kind : std::uint8_t {
    kRuntime = 0,     ///< a runtime event (start / deliver / timer)
    kDropMessage,     ///< environment model: the network loses a message
    kDupMessage,      ///< environment model: the network duplicates a message
    kDelayMessage,    ///< environment model: a delivery is deferred (timed)
    kCancelTimer,     ///< environment model: an armed timeout never fires
    kPartitionLinks,  ///< environment model: cut one directed link (traffic
                      ///< on it is deferred, never lost)
    kHealLinks,       ///< environment model: re-open one cut link
    kRestartProcess,  ///< environment model: durable restart of a crashed
                      ///< process (resumes with crash-time state)
  };

  Kind kind = Kind::kRuntime;
  rt::EventDesc event;      ///< kRuntime / kCancelTimer / kRestartProcess
  MsgId msg = 0;            ///< kDropMessage / kDupMessage / kDelayMessage
  VirtualTime delay = 0;    ///< kDelayMessage: extra virtual time
  ProcessId src = kNoProcess;  ///< kPartitionLinks / kHealLinks
  ProcessId dst = kNoProcess;  ///< kPartitionLinks / kHealLinks

  std::string describe() const {
    switch (kind) {
      case Kind::kRuntime:
        return event.to_string();
      case Kind::kDropMessage:
        return "env:drop(msg#" + std::to_string(msg) + ")";
      case Kind::kDupMessage:
        return "env:dup(msg#" + std::to_string(msg) + ")";
      case Kind::kDelayMessage:
        return "env:delay(msg#" + std::to_string(msg) + ",+" +
               std::to_string(delay) + ")";
      case Kind::kCancelTimer:
        return "env:cancel-timer(t#" + std::to_string(event.timer) + "@p" +
               std::to_string(event.pid) + ")";
      case Kind::kPartitionLinks:
        return "env:cut(p" + std::to_string(src) + "->p" +
               std::to_string(dst) + ")";
      case Kind::kHealLinks:
        return "env:heal(p" + std::to_string(src) + "->p" +
               std::to_string(dst) + ")";
      case Kind::kRestartProcess:
        return "env:restart(p" + std::to_string(event.pid) + ")";
    }
    return "?";
  }

  void save(BinaryWriter& w) const {
    w.write_u8(static_cast<std::uint8_t>(kind));
    event.save(w);
    w.write_varint(msg);
    w.write_varint(delay);
    w.write_u32(src);
    w.write_u32(dst);
  }

  void load(BinaryReader& r) {
    const std::uint8_t k = r.read_u8();
    if (k > static_cast<std::uint8_t>(Kind::kRestartProcess)) {
      throw SerializationError("SysAction: bad kind tag " + std::to_string(k));
    }
    kind = static_cast<Kind>(k);
    event.load(r);
    msg = r.read_varint();
    delay = r.read_varint();
    src = r.read_u32();
    dst = r.read_u32();
  }
};

struct Trail {
  std::vector<SysAction> steps;

  std::size_t length() const { return steps.size(); }

  std::string render() const {
    std::string out;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      out += "  " + std::to_string(i + 1) + ". " + steps[i].describe() + "\n";
    }
    return out;
  }

  void save(BinaryWriter& w) const {
    w.write_vector(steps,
                   [](BinaryWriter& ww, const SysAction& a) { a.save(ww); });
  }

  void load(BinaryReader& r) {
    steps = r.read_vector<SysAction>([](BinaryReader& rr) {
      SysAction a;
      a.load(rr);
      return a;
    });
  }
};

/// A violation found by the system explorer, with its trail.
struct SysViolation {
  rt::Violation violation;
  Trail trail;
  std::size_t depth = 0;

  std::string render() const {
    return violation.to_string() + "\n" + trail.render();
  }

  void save(BinaryWriter& w) const {
    violation.save(w);
    trail.save(w);
    w.write_varint(depth);
  }

  void load(BinaryReader& r) {
    violation.load(r);
    trail.load(r);
    depth = static_cast<std::size_t>(r.read_varint());
  }
};

}  // namespace fixd::mc
