// The SystemExplorer: model checking *real implementations* (§4.3).
//
// "The main difference is that we want to be able to exhaustively analyze
// the behavior of real programs rather than that of abstract models."
//
// The explorer clones a world (the state restored by the Time Machine) and
// exhaustively explores the interleavings of its enabled events:
// every pending message delivery, every armed timer, every pending start is
// a transition. States are deduplicated by the world's canonical digest.
//
// Environment modeling (Fig. 4: "certain parts of the environment ... must
// be modeled internally"; §4.3: "swap out the real communication actions,
// replace those with models"): with model_message_loss / _duplication, each
// pending message additionally yields drop / duplicate transitions — the
// lossy network model replaces the seeded live policy.
//
// Invariants are functions, not state, so they cannot be cloned with the
// world; the caller supplies an installer that registers them on any world
// (the example apps export exactly such installers).
#pragma once

#include <functional>
#include <memory>

#include "mc/engine.hpp"
#include "mc/trail.hpp"
#include "rt/world.hpp"

namespace fixd::mc {

struct SysExploreOptions {
  SearchOrder order = SearchOrder::kBfs;
  std::size_t max_states = 200000;
  std::size_t max_depth = 10000;
  std::size_t max_violations = 1;
  std::uint64_t seed = 42;
  std::size_t walk_restarts = 64;

  /// Environment models (swapping real network actions for modelled ones).
  bool model_message_loss = false;
  bool model_message_duplication = false;

  /// Timeout environment models. With model_message_delay, every pending
  /// non-control message whose accumulated latency is still below
  /// model_delay_horizon additionally yields a kDelayMessage action
  /// (ready time += model_delay_quantum). With model_timer_mutation,
  /// every enabled timer event additionally yields a kCancelTimer action
  /// ("the timeout never fires"). Both are meant for *timed* exploration
  /// (abstract_time = false): abstract time ignores ready times, so a
  /// delay cannot change what is enabled there. The horizon keeps the
  /// timed state space finite and is a pure function of world state, so
  /// cached and uncached enumeration agree by construction.
  bool model_message_delay = false;
  bool model_timer_mutation = false;
  VirtualTime model_delay_quantum = 8;
  VirtualTime model_delay_horizon = 32;

  /// Partition-family environment models, all pure functions of world
  /// state (cached and uncached enumeration agree by construction). With
  /// model_partition, every unblocked directed link currently carrying
  /// pending traffic yields a kPartitionLinks cut action — bounded by
  /// max_cut_links simultaneously blocked links, the partition analogue
  /// of the delay horizon — and every blocked link yields a kHealLinks
  /// action. With model_restart, every crashed process yields a
  /// kRestartProcess action (the durable restart: the process resumes
  /// with its crash-time state; amnesiac restarts depend on a historical
  /// checkpoint and are injector territory, not model actions).
  bool model_partition = false;
  bool model_restart = false;
  std::size_t max_cut_links = 2;

  /// Exploration time semantics. Abstract (default): every pending
  /// message and armed timer is enabled regardless of virtual time — the
  /// Investigator's usual view, where timer/message races are maximal.
  /// Timed (false): enabledness gates on ready times and deadlines, which
  /// is what makes the *value* of a timeout behaviorally meaningful —
  /// the TimeoutTuner validates candidate timeouts in timed mode. Timed
  /// dedup additionally folds the relative readiness layout into the
  /// canonical digest (mc_digest abstracts virtual time away).
  bool abstract_time = true;

  /// State deduplication via canonical digests (on = reachability graph;
  /// off = full tree — the ablation in bench/ablation_por).
  bool dedup = true;

  /// Sleep-set partial-order reduction: prunes redundant orderings of
  /// commuting events (events at different processes commute in this
  /// runtime). Sound for state-local invariants; see DESIGN.md.
  bool sleep_sets = false;

  /// Trail-based frontier (graph searches only): nodes store a shared
  /// anchor snapshot plus the action path from it, re-executed
  /// deterministically on pop, instead of one snapshot per node. Cuts
  /// frontier memory from O(nodes × world) to O(nodes) + one anchor per
  /// `anchor_interval` depth — SimGrid-style stateful re-execution; this
  /// is what pushes BFS past the frontier-memory feasibility wall.
  /// Requires deterministic handlers (the runtime's standing contract).
  bool trail_frontier = false;
  /// Take a fresh anchor snapshot once a node's replay distance from its
  /// anchor reaches this many actions (trades replay time for memory).
  std::size_t anchor_interval = 8;

  /// Worker threads. 1 = the sequential explorer. For graph searches
  /// (kDfs/kBfs/kPriority) the frontier is sharded across workers (one
  /// private scratch world each, work-stealing deques — per-worker
  /// best-effort-top priority heaps for kPriority — and a lock-striped
  /// visited set). kRandomWalk shards the walk budget instead: each walk
  /// draws from an RNG derived from (seed, walk index), so any worker
  /// count runs the exact same trajectories — results match the
  /// sequential walk modulo the early stop when max_violations fills
  /// mid-flight.
  ///
  /// Determinism contract (tested by tests/test_mc_parallel.cpp): with
  /// dedup on, no sleep sets, and budgets that don't truncate, the
  /// parallel search visits exactly the sequential explorer's canonical
  /// state set and state/transition counts; violations are reported as an
  /// unordered set (stably re-sorted by depth), and every reported trail
  /// replays on a fresh sequential world. Sleep-set pruning and truncated
  /// budgets are traversal-order-sensitive, so only the *soundness* of the
  /// result (a subset of the reachable graph) is guaranteed for them.
  /// Priority/install_invariants callbacks must be thread-safe (stateless
  /// lambdas are; every in-tree installer qualifies). kPriority's pop
  /// order is best-effort global across the per-worker heaps (stale top
  /// hints can momentarily pick a worse node); the visited-set contract
  /// above holds regardless, because pop order never changes *which*
  /// states a dedup'd exhaustive search visits.
  std::size_t workers = 1;

  /// Test hook: return the visited canonical-digest set (sorted) in
  /// SysExploreResult::visited — the differential suites compare parallel
  /// against sequential with this.
  bool collect_visited = false;

  /// Heuristic for kPriority order (higher first).
  std::function<double(const rt::World&)> priority;

  /// Registers invariants (and anything else detection needs) on a world.
  std::function<void(rt::World&)> install_invariants;
};

struct SysExploreResult {
  ExploreStats stats;
  std::vector<SysViolation> violations;
  /// Sorted visited canonical digests (only when opts.collect_visited).
  std::vector<std::uint64_t> visited;
  bool found_violation() const { return !violations.empty(); }
};

class SystemExplorer {
 public:
  /// `base` is the state to investigate (typically just rolled back by the
  /// Time Machine). It is cloned; the original world is not modified.
  SystemExplorer(rt::World& base, SysExploreOptions opts);
  ~SystemExplorer();

  SysExploreResult explore();

  /// Re-execute a trail on a fresh clone of `base`; returns the violations
  /// observed at the end (empty = the trail did not reproduce).
  /// `abstract_time` must match the exploration that produced the trail.
  static std::vector<rt::Violation> replay_trail(
      rt::World& base, const Trail& trail,
      const std::function<void(rt::World&)>& install_invariants,
      bool abstract_time = true);

 private:
  /// A slept action: identity key plus the commutation fingerprint needed
  /// to decide whether it survives into a child's sleep set.
  struct SleepEntry {
    std::uint64_t key;
    std::uint32_t fp;
  };

  /// One reachability-graph edge, parent-linked toward the root (null at
  /// the root). Edges live in append-only arenas (a std::deque per search
  /// — per *worker* in the parallel search), so addresses are stable,
  /// nodes are immutable once another node or frontier entry points at
  /// them, and teardown is a flat bulk free after the workers have joined
  /// — no refcount traffic on the hot path, no recursive destruction on
  /// deep chains, and no cross-thread writes for TSan to flag. Cross-
  /// worker reads of another arena's nodes are published by the frontier-
  /// deque mutexes (a node is only reachable through a pushed frontier
  /// entry). The owner may pop its newest, never-published edge (the
  /// duplicate-target case, exactly like the old meta arena).
  struct PathNode {
    const PathNode* parent;
    SysAction action;
  };

  /// A frontier node, variant-compressed to 48 bytes: one shared-snapshot
  /// field serves both frontier representations (snapshot mode: the
  /// node's exact captured state, replay_len == 0 always; trail mode: the
  /// nearest ancestor anchor plus `replay_len` actions read off the path
  /// chain and re-executed on pop). The old shape carried an inline
  /// WorldSnapshot shell *and* an anchor pointer (~136 bytes, the shell
  /// empty in trail mode), a priority that only kPriority reads (now
  /// stored in the heap entries), and an inline sleep vector that is
  /// empty unless sleep sets are on (now one pointer, null when empty).
  /// Unifying the two state fields also removes the meter's snap-vs-
  /// anchor aliasing hazard structurally: there is exactly one route from
  /// a node to its snapshot graph, and every buffer behind it is charged
  /// once by pointer identity. Move-only: frontier containers and the
  /// priority shards move nodes, never copy them.
  struct Node {
    /// Snapshot mode: this node's state. Trail mode: its anchor; a node
    /// with replay_len == 0 *is* its anchor.
    std::shared_ptr<const rt::WorldSnapshot> state;
    /// The action path from the investigated root to this node (arena
    /// storage owned by the search that created the node).
    const PathNode* path = nullptr;
    /// Sleep set (sleep-set POR only; null == empty — the common case
    /// costs one pointer, not an inline vector).
    std::unique_ptr<std::vector<SleepEntry>> sleep;
    /// Trail mode: actions to re-execute from `state` (0 in snapshot mode).
    std::uint32_t replay_len = 0;
    std::uint32_t depth = 0;
    /// Parallel searches: index of the worker that pushed this node, so
    /// frontier-meter refunds pair with the meter that charged it.
    std::uint32_t owner = 0;
  };

  class FrontierMeter;
  struct Shared;
  struct Worker;

  /// Bring `w` to `n`'s state: restore its snapshot and (trail mode)
  /// deterministically re-execute the replay suffix.
  void materialize(rt::World& w, const Node& n, ExploreStats& stats) const;

  std::vector<SysAction> enabled_actions(const rt::World& w) const;
  static void apply_action(rt::World& w, const SysAction& a);
  /// Process-touched fingerprint; actions with different fingerprints
  /// (different target processes) commute in this runtime.
  static std::uint32_t fingerprint(const SysAction& a);
  /// Stable identity of an action within a subtree (msg/timer ids persist
  /// until consumed).
  static std::uint64_t action_key(const SysAction& a);
  static bool independent(std::uint32_t fa, std::uint32_t fb) {
    return fa != fb;
  }

  static Trail trail_of(const PathNode* path);
  /// Probe the investigated state itself (the violation might already
  /// hold); returns false when the violation budget is already exhausted.
  bool probe_root(SysExploreResult& res);
  SysExploreResult graph_search();
  SysExploreResult graph_search_parallel();
  void worker_loop(Shared& sh, Worker& me);
  void expand(Shared& sh, Worker& me, Node cur);
  SysExploreResult random_walk();

  rt::World& base_;
  SysExploreOptions opts_;
  std::unique_ptr<rt::World> scratch_;
};

}  // namespace fixd::mc
