// The SystemExplorer: model checking *real implementations* (§4.3).
//
// "The main difference is that we want to be able to exhaustively analyze
// the behavior of real programs rather than that of abstract models."
//
// The explorer clones a world (the state restored by the Time Machine) and
// exhaustively explores the interleavings of its enabled events:
// every pending message delivery, every armed timer, every pending start is
// a transition. States are deduplicated by the world's canonical digest.
//
// Environment modeling (Fig. 4: "certain parts of the environment ... must
// be modeled internally"; §4.3: "swap out the real communication actions,
// replace those with models"): with model_message_loss / _duplication, each
// pending message additionally yields drop / duplicate transitions — the
// lossy network model replaces the seeded live policy.
//
// Invariants are functions, not state, so they cannot be cloned with the
// world; the caller supplies an installer that registers them on any world
// (the example apps export exactly such installers).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "mc/engine.hpp"
#include "mc/trail.hpp"
#include "rt/world.hpp"

namespace fixd::mc {

/// The exact resource set a transition reads or writes — the basis for
/// commutation. Two actions are independent iff their footprints are
/// disjoint in every component:
///
///   - `procs`: processes whose local state (heap, timers, crash flag) the
///     action mutates or whose enabled set it gates. Bitmask; pids >= 63
///     collapse onto bit 63 (conservative: all high pids collide).
///   - `link`: the directed channel the action consumes from, appends to,
///     blocks, or heals. FIFO channels make same-channel actions
///     order-sensitive even when they touch different messages.
///   - `msg`: the specific message consumed/dropped/duplicated/delayed
///     (0 = none; real MsgIds start at 1).
///   - `timer`: the specific (pid, timer) an action fires or cancels
///     (0 = none).
///   - `cut_budget`: partition cuts and heals both move the global
///     blocked-link count that gates further cut enumeration
///     (max_cut_links), so any two of them are mutually dependent.
///
/// Deliberately NOT in the footprint: message *sends*. A handler can send
/// to any process, so tracking send targets statically would make every
/// pair of deliveries dependent. Sends only ever append (enable), never
/// disable, and the canonical digest is content-keyed, so handler
/// executions at distinct processes still commute up to digest — new
/// conflicts created by sends are caught dynamically by the explorer's
/// race detection (por), not statically here.
struct ActionFootprint {
  std::uint64_t procs = 0;
  std::uint32_t link_src = kNoProcess;
  std::uint32_t link_dst = kNoProcess;
  MsgId msg = 0;
  std::uint64_t timer = 0;
  bool cut_budget = false;

  bool has_link() const { return link_src != kNoProcess; }

  static std::uint64_t proc_bit(ProcessId p) {
    return std::uint64_t{1} << (p < 63 ? p : 63);
  }
};

struct SysExploreOptions {
  SearchOrder order = SearchOrder::kBfs;
  std::size_t max_states = kDefaultSysMaxStates;
  std::size_t max_depth = 10000;
  std::size_t max_violations = 1;
  std::uint64_t seed = 42;
  std::size_t walk_restarts = 64;

  /// Environment models (swapping real network actions for modelled ones).
  bool model_message_loss = false;
  bool model_message_duplication = false;

  /// Timeout environment models. With model_message_delay, every pending
  /// non-control message whose accumulated latency is still below
  /// model_delay_horizon additionally yields a kDelayMessage action
  /// (ready time += model_delay_quantum). With model_timer_mutation,
  /// every enabled timer event additionally yields a kCancelTimer action
  /// ("the timeout never fires"). Both are meant for *timed* exploration
  /// (abstract_time = false): abstract time ignores ready times, so a
  /// delay cannot change what is enabled there. The horizon keeps the
  /// timed state space finite and is a pure function of world state, so
  /// cached and uncached enumeration agree by construction.
  bool model_message_delay = false;
  bool model_timer_mutation = false;
  VirtualTime model_delay_quantum = 8;
  VirtualTime model_delay_horizon = 32;

  /// Partition-family environment models, all pure functions of world
  /// state (cached and uncached enumeration agree by construction). With
  /// model_partition, every unblocked directed link currently carrying
  /// pending traffic yields a kPartitionLinks cut action — bounded by
  /// max_cut_links simultaneously blocked links, the partition analogue
  /// of the delay horizon — and every blocked link yields a kHealLinks
  /// action. With model_restart, every crashed process yields a
  /// kRestartProcess action (the durable restart: the process resumes
  /// with its crash-time state; amnesiac restarts depend on a historical
  /// checkpoint and are injector territory, not model actions).
  bool model_partition = false;
  bool model_restart = false;
  std::size_t max_cut_links = 2;

  /// Exploration time semantics. Abstract (default): every pending
  /// message and armed timer is enabled regardless of virtual time — the
  /// Investigator's usual view, where timer/message races are maximal.
  /// Timed (false): enabledness gates on ready times and deadlines, which
  /// is what makes the *value* of a timeout behaviorally meaningful —
  /// the TimeoutTuner validates candidate timeouts in timed mode. Timed
  /// dedup additionally folds the relative readiness layout into the
  /// canonical digest (mc_digest abstracts virtual time away).
  bool abstract_time = true;

  /// State deduplication via canonical digests (on = reachability graph;
  /// off = full tree — the ablation in bench/ablation_por).
  bool dedup = true;

  /// Sleep-set partial-order reduction: prunes redundant orderings of
  /// commuting events. Independence is exact disjointness of per-action
  /// resource footprints (ActionFootprint): process set, directed
  /// channel, message id, timer id, and the partition cut budget — valid
  /// for delivery/timer/crash-restart/delay/partition/heal actions in
  /// both abstract and timed mode. Composed with dedup, a re-reached
  /// state whose new sleep set is not a superset of the stored one is
  /// re-expanded with the intersection (stats.sleep_reexpansions), so
  /// sleep+dedup reaches the same violation set as dedup alone (pinned
  /// by tests/test_mc_por.cpp).
  bool sleep_sets = false;

  /// Dynamic partial-order reduction (DPOR-style source sets + backtrack
  /// points). At each first expansion the explorer runs only one
  /// dependency-closed class of the enabled actions (the source set) and
  /// defers the rest; every executed transition is then checked for races
  /// against the footprints along its path, and a race re-expands the
  /// ancestor state with the deferred action (a root-anchored backtrack
  /// node — works in snapshot and trail frontier modes and in the
  /// parallel expand() path alike). Soundness: deferred actions are
  /// independent of the explored suffix until a race fires, so every
  /// violation of a *stable* predicate (one that keeps holding once
  /// reached, e.g. conflicting-decision or divergence invariants) is
  /// still reached; a transient predicate that flickers only inside a
  /// commuted segment may be observed at fewer intermediate states. The
  /// differential suites (tests/test_mc_por.cpp) pin: same violation set
  /// as por=off, strictly fewer visited states on 2pc n>=4; see
  /// docs/PERF.md Layer 8 for the full argument.
  bool por = false;

  /// Trail-based frontier (graph searches only): nodes store a shared
  /// anchor snapshot plus the action path from it, re-executed
  /// deterministically on pop, instead of one snapshot per node. Cuts
  /// frontier memory from O(nodes × world) to O(nodes) + one anchor per
  /// `anchor_interval` depth — SimGrid-style stateful re-execution; this
  /// is what pushes BFS past the frontier-memory feasibility wall.
  /// Requires deterministic handlers (the runtime's standing contract).
  bool trail_frontier = false;
  /// Take a fresh anchor snapshot once a node's replay distance from its
  /// anchor reaches this many actions (trades replay time for memory).
  std::size_t anchor_interval = 8;

  /// Worker threads. 1 = the sequential explorer. For graph searches
  /// (kDfs/kBfs/kPriority) the frontier is sharded across workers (one
  /// private scratch world each, work-stealing deques — per-worker
  /// best-effort-top priority heaps for kPriority — and a lock-striped
  /// visited set). kRandomWalk shards the walk budget instead: each walk
  /// draws from an RNG derived from (seed, walk index), so any worker
  /// count runs the exact same trajectories — results match the
  /// sequential walk modulo the early stop when max_violations fills
  /// mid-flight.
  ///
  /// Determinism contract (tested by tests/test_mc_parallel.cpp): with
  /// dedup on, no sleep sets, and budgets that don't truncate, the
  /// parallel search visits exactly the sequential explorer's canonical
  /// state set and state/transition counts; violations are reported as an
  /// unordered set (stably re-sorted by depth), and every reported trail
  /// replays on a fresh sequential world. Sleep-set pruning, por, and
  /// truncated budgets are traversal-order-sensitive, so for them the
  /// guarantee is soundness (a subset of the reachable graph) plus the
  /// reduction property (same violation set as the unreduced search,
  /// pinned differentially per worker count) — not visited-set identity.
  /// Priority/install_invariants callbacks must be thread-safe (stateless
  /// lambdas are; every in-tree installer qualifies). kPriority's pop
  /// order is best-effort global across the per-worker heaps (stale top
  /// hints can momentarily pick a worse node); the visited-set contract
  /// above holds regardless, because pop order never changes *which*
  /// states a dedup'd exhaustive search visits.
  std::size_t workers = 1;

  /// Beyond-RAM budgets (0 = unbounded, the historical behavior; see
  /// docs/PERF.md Layer 9 and mc/tiered_visited.hpp).
  ///
  /// visited_budget_bytes bounds the *resident* dedup set: half funds a
  /// Bloom front filter, half the hot exact shards; cold shards spill to
  /// sorted runs on disk and are probed back on Bloom "maybe"s. Dedup
  /// semantics stay exact — exactly one path wins each digest — so the
  /// visited set is identical to the unbounded run's. Applies to graph
  /// searches with dedup on; the sleep-signature visited map (sleep_sets
  /// && dedup) is a weakening map, not an insert-only set, and stays
  /// resident regardless.
  std::uint64_t visited_budget_bytes = 0;
  /// frontier_budget_bytes bounds resident trail-mode anchor snapshots: a
  /// clock evictor drops the WorldSnapshot of cold anchors (the node
  /// shells, paths, and sleep sets stay), and materialize() rebuilds an
  /// evicted anchor by root-anchored deterministic replay — the same
  /// mechanism POR backtrack nodes always use, so eviction is safe by
  /// construction. Requires trail_frontier; ignored in snapshot mode
  /// (snapshot-mode nodes have no replay recipe).
  std::uint64_t frontier_budget_bytes = 0;
  /// Parent directory for the per-run spill scratch dir (empty = the
  /// system temp dir). The scratch dir is removed on every exit path,
  /// including violation-found early returns (RAII; tested).
  std::string spill_dir;

  /// Test hook: return the visited canonical-digest set (sorted) in
  /// SysExploreResult::visited — the differential suites compare parallel
  /// against sequential with this.
  bool collect_visited = false;

  /// Heuristic for kPriority order (higher first).
  std::function<double(const rt::World&)> priority;

  /// Registers invariants (and anything else detection needs) on a world.
  std::function<void(rt::World&)> install_invariants;

  // --- Pause / capture / resume (the service layer's durability hooks) ----
  //
  // A dedup'd exhaustive graph search has an order-independent final
  // visited set: preseed ∪ reachable-from-frontier. That makes a search
  // *sliceable* — stop at a clean node boundary, capture {visited,
  // frontier-as-trails}, and a later explorer (even in a fresh process)
  // resumes to the identical final visited set; sequential BFS/DFS
  // additionally preserve the exact pop order, so violation trails come
  // back byte-identical. src/svc/jobd.cpp builds durable, kill -9
  // survivable investigation jobs on exactly this contract.
  //
  // Supported only for graph searches (kBfs/kDfs) with dedup on and
  // sleep_sets/por off (those carry traversal-order-sensitive extra
  // state); explore() throws ConfigError otherwise.

  /// Polled once per frontier pop (per worker when workers > 1 — must be
  /// thread-safe then). The stats it receives carry the slice-wide
  /// `states` total (shared across workers) with the polling worker's
  /// other counters, so a `states >= N` threshold means the same thing
  /// at any worker count. Returning
  /// true pauses the search at the current clean node boundary:
  /// in-flight expansions complete (their children are pushed or deduped,
  /// never dropped), then SysExploreResult::paused is set. Also the
  /// service heartbeat: jobd's lease supervision feeds off these calls.
  std::function<bool(const ExploreStats&)> pause_check;

  /// On pause, drain the remaining frontier into SysExploreResult::
  /// frontier as root-relative trails (deque order, front first, workers
  /// in id order). Nodes are captured as {action path from the root},
  /// which is exactly what resume_frontier accepts.
  bool capture_frontier = false;

  /// Resume a previously paused search instead of starting from the root:
  /// the root state is NOT re-probed or re-counted, resume_visited
  /// preseeds the dedup set (it must contain the root digest), and
  /// resume_frontier's trails are re-planted as root-anchored frontier
  /// nodes in order. The base world passed to the constructor must be the
  /// same state the original search started from.
  bool resume_from_checkpoint = false;
  std::vector<std::uint64_t> resume_visited;
  std::vector<Trail> resume_frontier;
};

struct SysExploreResult {
  ExploreStats stats;
  std::vector<SysViolation> violations;
  /// Sorted visited canonical digests (only when opts.collect_visited).
  std::vector<std::uint64_t> visited;
  /// True when pause_check stopped the search at a clean node boundary
  /// (never set by budget truncation or a filled violation budget).
  bool paused = false;
  /// The un-expanded frontier at pause time (only when opts.capture_frontier).
  std::vector<Trail> frontier;
  bool found_violation() const { return !violations.empty(); }
};

class SystemExplorer {
 public:
  /// `base` is the state to investigate (typically just rolled back by the
  /// Time Machine). It is cloned; the original world is not modified.
  SystemExplorer(rt::World& base, SysExploreOptions opts);
  ~SystemExplorer();

  SysExploreResult explore();

  /// Re-execute a trail on a fresh clone of `base`; returns the violations
  /// observed at the end (empty = the trail did not reproduce).
  /// `abstract_time` must match the exploration that produced the trail.
  static std::vector<rt::Violation> replay_trail(
      rt::World& base, const Trail& trail,
      const std::function<void(rt::World&)>& install_invariants,
      bool abstract_time = true);

  /// Exact resource footprint of `a` in `w`'s current state (message ids
  /// are resolved against the live network, so call it at enumeration
  /// time). Public because the POR regression tests exercise it directly.
  static ActionFootprint footprint(const rt::World& w, const SysAction& a);
  /// Exact commutation test: disjointness in every footprint component.
  static bool independent(const ActionFootprint& a, const ActionFootprint& b) {
    if (a.procs & b.procs) return false;
    if (a.cut_budget && b.cut_budget) return false;
    if (a.has_link() && a.link_src == b.link_src && a.link_dst == b.link_dst) {
      return false;
    }
    if (a.msg != 0 && a.msg == b.msg) return false;
    if (a.timer != 0 && a.timer == b.timer) return false;
    return true;
  }

 private:
  /// A slept action: identity key plus the commutation footprint needed
  /// to decide whether it survives into a child's sleep set.
  struct SleepEntry {
    std::uint64_t key;
    ActionFootprint fp;
  };

  /// One reachability-graph edge, parent-linked toward the root (null at
  /// the root). Edges live in append-only arenas (a std::deque per search
  /// — per *worker* in the parallel search), so addresses are stable,
  /// nodes are immutable once another node or frontier entry points at
  /// them, and teardown is a flat bulk free after the workers have joined
  /// — no refcount traffic on the hot path, no recursive destruction on
  /// deep chains, and no cross-thread writes for TSan to flag. Cross-
  /// worker reads of another arena's nodes are published by the frontier-
  /// deque mutexes (a node is only reachable through a pushed frontier
  /// entry). The owner may pop its newest, never-published edge (the
  /// duplicate-target case, exactly like the old meta arena).
  struct PathNode {
    const PathNode* parent;
    SysAction action;
    /// Footprint of `action` in its pre-state and the pre-state's
    /// canonical digest — the race-detection walk (por) compares a new
    /// transition's footprint against these to find the nearest dependent
    /// ancestor and address its expansion record. Filled only when
    /// opts_.por is on (zero otherwise; arena nodes are not frontier
    /// memory, so the growth is not metered against the fig3 gate).
    ActionFootprint fp;
    std::uint64_t pre_digest = 0;
  };

  /// An anchor: the indirection between frontier nodes and their shared
  /// WorldSnapshot. In unbudgeted runs it is a thin immutable wrapper
  /// (snap never changes after construction, read lock-free). Under
  /// frontier_budget_bytes, tracked trail-mode anchors become *evictable*:
  /// the AnchorRegistry may drop `snap` (keeping the replay recipe — the
  /// root-relative path and depth), and materialize() rebuilds it by
  /// deterministic replay from the pinned root anchor. One Anchor is
  /// shared by every node hanging off it, so the recipe is paid per
  /// anchor, not per node, and sizeof(Node) stays 48.
  struct Anchor;

  /// A frontier node, variant-compressed to 48 bytes: one shared-anchor
  /// field serves both frontier representations (snapshot mode: the
  /// node's exact captured state, replay_len == 0 always; trail mode: the
  /// nearest ancestor anchor plus `replay_len` actions read off the path
  /// chain and re-executed on pop). The old shape carried an inline
  /// WorldSnapshot shell *and* an anchor pointer (~136 bytes, the shell
  /// empty in trail mode), a priority that only kPriority reads (now
  /// stored in the heap entries), and an inline sleep vector that is
  /// empty unless sleep sets are on (now one pointer, null when empty).
  /// Unifying the two state fields also removes the meter's snap-vs-
  /// anchor aliasing hazard structurally: there is exactly one route from
  /// a node to its snapshot graph, and every buffer behind it is charged
  /// once by pointer identity. Move-only: frontier containers and the
  /// priority shards move nodes, never copy them.
  struct Node {
    /// Snapshot mode: this node's state. Trail mode: its anchor; a node
    /// with replay_len == 0 *is* its anchor.
    std::shared_ptr<Anchor> state;
    /// The action path from the investigated root to this node (arena
    /// storage owned by the search that created the node).
    const PathNode* path = nullptr;
    /// Sleep set (sleep-set POR only; null == empty — the common case
    /// costs one pointer, not an inline vector).
    std::unique_ptr<std::vector<SleepEntry>> sleep;
    /// Trail mode: actions to re-execute from `state` (0 in snapshot mode).
    std::uint32_t replay_len = 0;
    std::uint32_t depth = 0;
    /// Parallel searches: index of the worker that pushed this node, so
    /// frontier-meter refunds pair with the meter that charged it.
    std::uint32_t owner = 0;
  };

  class FrontierMeter;
  class AnchorRegistry;
  struct Shared;
  struct Worker;

  /// Bring `w` to `n`'s state: restore its anchor snapshot — rebuilding it
  /// first by root-anchored replay if the registry evicted it — and (trail
  /// mode) deterministically re-execute the replay suffix.
  void materialize(rt::World& w, const Node& n, ExploreStats& stats) const;

  std::vector<SysAction> enabled_actions(const rt::World& w) const;
  static void apply_action(rt::World& w, const SysAction& a);
  /// Stable identity of an action within a subtree (msg/timer ids persist
  /// until consumed).
  static std::uint64_t action_key(const SysAction& a);

  /// True when `key` is in cur's sleep set (the action's subtree is
  /// covered by an earlier sibling branch).
  static bool is_slept(const Node& cur, std::uint64_t key);

  /// The sleep set a child created via run[pos] inherits: surviving
  /// entries of the parent's sleep set plus every earlier branch of this
  /// expansion (run[0..pos)), both filtered by independence with the
  /// child's action. One implementation shared by the sequential and
  /// parallel expansion paths, so the independence semantics cannot drift
  /// between them. Returns null for an empty set.
  static std::unique_ptr<std::vector<SleepEntry>> child_sleep(
      const Node& cur, const std::vector<SysAction>& actions,
      const std::vector<ActionFootprint>& fps,
      const std::vector<std::uint64_t>& keys,
      const std::vector<std::size_t>& run, std::size_t pos);

  /// Source-set selection (por): the dependency-closed class of enabled
  /// actions containing every seed index, computed over `fps`. Returns
  /// the selected indices (ascending); everything else is deferred.
  static std::vector<std::size_t> source_closure(
      const std::vector<ActionFootprint>& fps,
      const std::vector<std::size_t>& seeds);

  /// POR bookkeeping shared by one search: the per-state expansion
  /// records plus the root anchor that backtrack nodes re-materialize
  /// from (defined in sysmodel.cpp).
  struct PorState;

  /// Pick the indices this expansion runs: drains the state's pending
  /// backtrack requests, seeds the first non-slept action on a first
  /// visit, closes over dependency classes, and marks the selection done.
  std::vector<std::size_t> por_select(PorState& ps, std::uint64_t digest,
                                      const std::vector<SysAction>& actions,
                                      const std::vector<ActionFootprint>& fps,
                                      const std::vector<std::uint64_t>& keys,
                                      const Node& cur,
                                      ExploreStats& stats) const;

  /// Race detection for one executed transition: walk cur's path nearest-
  /// first for a dependent ancestor where the action was enabled but not
  /// run, register it there, and append a root-anchored backtrack node.
  void por_race_detect(PorState& ps, const Node& cur,
                       const ActionFootprint& fa, std::uint64_t akey,
                       std::vector<Node>& backtracks,
                       ExploreStats& stats) const;

  static Trail trail_of(const PathNode* path);
  /// Re-plant checkpoint trails (opts_.resume_frontier) as root-anchored
  /// frontier nodes, in order: each trail's actions become a PathNode
  /// chain in `arena`, and the node replays from the root anchor on
  /// materialize — the same mechanism as POR backtrack nodes, so no new
  /// replay machinery. The first expansion re-anchors them per the
  /// standard rules.
  std::vector<Node> resume_nodes(const std::shared_ptr<Anchor>& root_anchor,
                                 std::deque<PathNode>& arena) const;
  /// Validates the pause/capture/resume option contract (ConfigError).
  void check_pause_resume_options() const;
  /// Probe the investigated state itself (the violation might already
  /// hold); returns false when the violation budget is already exhausted.
  bool probe_root(SysExploreResult& res);
  SysExploreResult graph_search();
  SysExploreResult graph_search_parallel();
  void worker_loop(Shared& sh, Worker& me);
  void expand(Shared& sh, Worker& me, Node cur);
  SysExploreResult random_walk();

  rt::World& base_;
  SysExploreOptions opts_;
  std::unique_ptr<rt::World> scratch_;
  /// Anchor residency bookkeeping; non-null only for budgeted trail-mode
  /// graph searches (created per explore(); defined in sysmodel.cpp).
  std::unique_ptr<AnchorRegistry> reg_;
};

}  // namespace fixd::mc
