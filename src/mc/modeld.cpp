// ModelD is header-only (templates); this TU verifies the headers are
// self-contained and anchors the library.
#include "mc/modeld.hpp"
#include "mc/engine.hpp"
#include "mc/guarded.hpp"
#include "mc/models.hpp"
#include "mc/trail.hpp"
