// ModelD is header-only (templates); this TU verifies the headers are
// self-contained and anchors the library. The daemonized form of ModelD
// (investigations as journaled, lease-supervised jobs) lives in src/svc —
// included here so a stale svc header breaks this anchor TU, not a user.
#include "mc/modeld.hpp"
#include "mc/engine.hpp"
#include "mc/guarded.hpp"
#include "mc/models.hpp"
#include "mc/trail.hpp"
#include "svc/jobd.hpp"
