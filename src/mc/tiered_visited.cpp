#include "mc/tiered_visited.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace fixd::mc {

namespace {

// Below this the Bloom filter is all-collisions noise; below ~a shard's
// header the exact tier cannot hold even empty tables. Tiny test budgets
// still work — they just spill constantly, which is the point of the tests.
constexpr std::uint64_t kMinBloomBytes = 64;
constexpr std::size_t kMergeChunk = 1 << 14;  // 16K keys = 128 KiB per buffer

std::uint64_t floor_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

AtomicBloom::AtomicBloom(std::uint64_t bytes) {
  std::uint64_t b = std::max(bytes, kMinBloomBytes);
  std::uint64_t words = floor_pow2(b) / 8;
  words_ = std::vector<std::atomic<std::uint64_t>>(words);
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  bit_mask_ = words * 64 - 1;
}

TieredVisitedSet::TieredVisitedSet(std::uint64_t budget_bytes,
                                   std::filesystem::path scratch,
                                   std::size_t stripes)
    : scratch_(std::move(scratch)) {
  FIXD_CHECK_MSG(budget_bytes > 0, "TieredVisitedSet needs a positive budget");
  // Half the budget to the Bloom filter, half to the exact hot tier. The
  // Bloom share is what keeps the false-positive rate down once most states
  // live on disk (sizing math in docs/PERF.md Layer 9); the hot share is
  // what amortizes spill IO. An even split keeps both within 2x of optimal
  // across the workloads the bench gates.
  std::uint64_t bloom_share = std::max(budget_bytes / 2, kMinBloomBytes);
  bloom_ = std::make_unique<AtomicBloom>(bloom_share);
  exact_budget_ =
      budget_bytes > bloom_->bytes() ? budget_bytes - bloom_->bytes() : 1;
  std::size_t n = 1;
  while (n < stripes) n <<= 1;
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  mask_ = n - 1;
}

TieredVisitedSet::~TieredVisitedSet() = default;

bool TieredVisitedSet::insert(std::uint64_t h) {
  Stripe& s = *stripes_[stripe_of(h)];
  bool fresh;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.last_touch.store(tick_.fetch_add(1, std::memory_order_relaxed),
                       std::memory_order_relaxed);
    if (s.run != nullptr) {
      bloom_queries_.fetch_add(1, std::memory_order_relaxed);
      if (!bloom_->maybe_contains(h)) {
        // Definitely in no tier: the Bloom has seen every insert.
        fresh = s.hot.insert(h);
      } else {
        bloom_maybes_.fetch_add(1, std::memory_order_relaxed);
        if (s.hot.contains(h) || s.run->contains(h)) {
          fresh = false;
        } else {
          bloom_fps_.fetch_add(1, std::memory_order_relaxed);
          fresh = s.hot.insert(h);
        }
      }
    } else {
      fresh = s.hot.insert(h);
    }
    if (fresh) {
      bloom_->add(h);
      std::uint64_t nb = s.hot.bytes();
      std::uint64_t ob = s.hot_bytes.exchange(nb, std::memory_order_relaxed);
      if (nb != ob) resident_.fetch_add(nb - ob, std::memory_order_relaxed);
      size_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (fresh) {
    note_peak();
    maybe_spill();
  }
  return fresh;
}

void TieredVisitedSet::note_peak() {
  std::uint64_t cur = resident_bytes();
  std::uint64_t prev = peak_resident_.load(std::memory_order_relaxed);
  while (cur > prev && !peak_resident_.compare_exchange_weak(
                           prev, cur, std::memory_order_relaxed)) {
  }
}

std::uint64_t TieredVisitedSet::resident_bytes() const {
  return bloom_->bytes() + resident_.load(std::memory_order_relaxed);
}

double TieredVisitedSet::bloom_fp_rate() const {
  std::uint64_t q = bloom_queries_.load(std::memory_order_relaxed);
  if (q == 0) return 0.0;
  return double(bloom_fps_.load(std::memory_order_relaxed)) / double(q);
}

void TieredVisitedSet::maybe_spill() {
  if (resident_.load(std::memory_order_relaxed) <= exact_budget_) return;
  // One spiller at a time; anyone else keeps exploring — the budget is a
  // target the evictor converges to, not a hard wall on every insert.
  if (!spill_mu_.try_lock()) return;
  std::lock_guard<std::mutex> lk(spill_mu_, std::adopt_lock);
  // Drain to half the exact budget (hysteresis) so a hot run of inserts
  // does not re-trigger a merge per insert.
  while (resident_.load(std::memory_order_relaxed) > exact_budget_ / 2) {
    Stripe* victim = nullptr;
    std::uint64_t coldest = ~std::uint64_t{0};
    for (auto& sp : stripes_) {
      if (sp->hot_bytes.load(std::memory_order_relaxed) <=
          sizeof(CompactDigestSet)) {
        continue;  // empty shard: nothing to drain
      }
      std::uint64_t t = sp->last_touch.load(std::memory_order_relaxed);
      if (t < coldest) {
        coldest = t;
        victim = sp.get();
      }
    }
    if (victim == nullptr) break;  // all shards empty; fences alone remain
    spill_stripe(*victim);
  }
}

void TieredVisitedSet::spill_stripe(Stripe& s) {
  std::lock_guard<std::mutex> lk(s.mu);
  std::vector<std::uint64_t> batch = s.hot.take_sorted();
  if (batch.empty()) {  // raced with another drain; fix accounting and go
    std::uint64_t nb = s.hot.bytes();
    std::uint64_t ob = s.hot_bytes.exchange(nb, std::memory_order_relaxed);
    resident_.fetch_add(nb - ob, std::memory_order_relaxed);
    return;
  }
  std::size_t idx = 0;
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    if (stripes_[i].get() == &s) idx = i;
  }
  std::filesystem::path next =
      scratch_ / ("stripe-" + std::to_string(idx) + "-g" +
                  std::to_string(++s.generation) + ".run");
  SortedRunWriter w(next);
  if (s.run == nullptr) {
    w.append(batch.data(), batch.size());
  } else {
    // Streaming two-way merge: old run (chunked) x new batch (in RAM).
    s.run->seek_start();
    std::vector<std::uint64_t> chunk, out;
    out.reserve(kMergeChunk);
    std::size_t bi = 0;
    while (s.run->next_chunk(chunk, kMergeChunk)) {
      for (std::uint64_t v : chunk) {
        while (bi < batch.size() && batch[bi] < v) out.push_back(batch[bi++]);
        // batch[bi] == v cannot happen: the hot shard only admitted keys
        // absent from the run (checked under this same stripe lock).
        out.push_back(v);
        if (out.size() >= kMergeChunk) {
          w.append(out.data(), out.size());
          out.clear();
        }
      }
    }
    while (bi < batch.size()) {
      out.push_back(batch[bi++]);
      if (out.size() >= kMergeChunk) {
        w.append(out.data(), out.size());
        out.clear();
      }
    }
    w.append(out.data(), out.size());
  }
  SortedRunWriter::Finished fin = w.finish();
  std::uint64_t old_file = s.run ? s.run->file_bytes() : 0;
  std::filesystem::path old_path = s.run ? s.run->path() : std::filesystem::path{};
  std::uint64_t fence_b = fin.fence.size() * 8;
  s.run = std::make_unique<SortedRunReader>(next, std::move(fin.fence));
  s.run_path = next;
  if (!old_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(old_path, ec);
  }
  // Accounting: hot bytes drop to the empty-shard floor, fences replace the
  // previous generation's, the disk grows by the merged run delta.
  std::uint64_t nb = s.hot.bytes();
  std::uint64_t ob = s.hot_bytes.exchange(nb, std::memory_order_relaxed);
  std::uint64_t of = s.fence_bytes.exchange(fence_b, std::memory_order_relaxed);
  resident_.fetch_add(nb + fence_b - ob - of, std::memory_order_relaxed);
  spilled_now_.fetch_add(fin.file_bytes - old_file, std::memory_order_relaxed);
  spill_written_.fetch_add(fin.file_bytes, std::memory_order_relaxed);
  spill_events_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> TieredVisitedSet::sorted_contents() {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (auto& sp : stripes_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    sp->hot.for_each([&out](std::uint64_t v) { out.push_back(v); });
    if (sp->run != nullptr) {
      std::vector<std::uint64_t> run = sp->run->read_all();
      out.insert(out.end(), run.begin(), run.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fixd::mc
