// ModelD: the named model checker contributed by the paper (Fig. 7).
//
// The original ModelD has two components: a Camlp4 syntax extension
// (front end) and a guarded-command exploration engine (back end). Here the
// front end is a fluent C++ builder — the closest native analogue of a
// syntax extension — and the back end is mc/engine.hpp.
//
//   auto m = ModelD<State>::build(initial)
//              .action("inc", guard, effect)
//              .invariant("bounded", check)
//              .done();
//   auto result = m.check({.order = SearchOrder::kBfs});
//
// The feature the paper highlights — "inject actions that divert the
// execution of a program using an updated version of the actions" (§4.4,
// the Healer's ModelD path) — is exposed as inject_action / retire_action:
// the action set can be edited between explorations, and the engine picks
// up the new behaviour.
//
// ModelD also runs as a *service*: the fixdd daemon (src/svc/jobd.hpp,
// tools/fixdd.cpp) hosts investigation jobs over registered scenario
// families — crash-survivable (fsync'd journal + checkpointed resume),
// lease-supervised, addressed by idempotent request-ids over the CRC-framed
// RPC in src/svc/wire.hpp. `fixdctl` is the thin CLI; FixdController can
// delegate its investigate phase to the daemon via
// FixdOptions::investigate_endpoint. See docs/SERVICE.md.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "mc/engine.hpp"
#include "mc/guarded.hpp"

namespace fixd::mc {

template <typename S>
class ModelD {
 public:
  class Builder {
   public:
    explicit Builder(S initial)
        : model_(GuardedModel<S>::with_serial_hash(std::move(initial))) {}

    Builder& action(std::string name, std::function<bool(const S&)> guard,
                    std::function<void(S&)> effect) {
      model_.add_action(std::move(name), std::move(guard), std::move(effect));
      return *this;
    }

    /// Unconditional action.
    Builder& action(std::string name, std::function<void(S&)> effect) {
      model_.add_action(
          std::move(name), [](const S&) { return true; }, std::move(effect));
      return *this;
    }

    Builder& invariant(std::string name,
                       std::function<std::optional<std::string>(const S&)> f) {
      model_.add_invariant(std::move(name), std::move(f));
      return *this;
    }

    /// Boolean-predicate convenience: violation when pred is false.
    Builder& always(std::string name, std::function<bool(const S&)> pred) {
      std::string n = name;
      model_.add_invariant(
          std::move(name),
          [pred = std::move(pred), n](const S& s) -> std::optional<std::string> {
            if (pred(s)) return std::nullopt;
            return "predicate '" + n + "' is false";
          });
      return *this;
    }

    ModelD done() { return ModelD(std::move(model_)); }

   private:
    GuardedModel<S> model_;
  };

  static Builder build(S initial) { return Builder(std::move(initial)); }

  /// Run the back-end engine with the given options.
  ExploreResult check(ExploreOptions opts = {},
                      typename Explorer<S>::PriorityFn priority = nullptr) {
    Explorer<S> ex(model_, opts);
    if (priority) ex.set_priority(std::move(priority));
    return ex.explore();
  }

  /// Dynamic action-set mutation: add an action to the live model.
  /// Returns the handle (usable with retire_action / restore_action).
  std::size_t inject_action(std::string name,
                            std::function<bool(const S&)> guard,
                            std::function<void(S&)> effect) {
    return model_.add_action(std::move(name), std::move(guard),
                             std::move(effect));
  }

  /// Disable an action (e.g. the buggy version, after injecting the fix).
  void retire_action(std::size_t handle) { model_.set_enabled(handle, false); }
  void restore_action(std::size_t handle) { model_.set_enabled(handle, true); }

  /// Reset the state the next exploration starts from (resume-from-
  /// checkpoint exploration).
  void set_initial(S s) { model_.set_initial(std::move(s)); }

  GuardedModel<S>& model() { return model_; }
  const GuardedModel<S>& model() const { return model_; }

 private:
  explicit ModelD(GuardedModel<S> m) : model_(std::move(m)) {}
  GuardedModel<S> model_;
};

}  // namespace fixd::mc
