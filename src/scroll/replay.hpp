// Deterministic replay and divergence detection.
//
// Replay drives a *fresh* world (same processes, same options) with a
// ReplayScheduler built from a recorded scroll's schedule, while a second
// scroll records the re-execution. Comparing the two scrolls record by
// record yields either "identical run" or the exact first point of
// divergence — the Jockey/Flashback capability (§2.3) on our substrate.
//
// A RecordedEnvSource can replace the live environment during replay
// ("re-running the application in the absence of the remote entities"):
// environment reads are answered from the recording instead of the model.
#pragma once

#include <optional>
#include <string>

#include "rt/hooks.hpp"
#include "rt/world.hpp"
#include "scroll/scroll.hpp"

namespace fixd::scroll {

/// Feeds recorded environment-read values back during replay.
class RecordedEnvSource final : public rt::EnvSource {
 public:
  explicit RecordedEnvSource(const Scroll& recorded);

  std::optional<std::uint64_t> next_env(ProcessId pid,
                                        std::string_view key) override;

  /// Number of recorded reads not yet consumed.
  std::size_t remaining() const;

 private:
  struct Read {
    ProcessId pid;
    std::string key;
    std::uint64_t value;
  };
  std::vector<Read> reads_;
  std::size_t cursor_ = 0;
};

struct ReplayReport {
  bool ok = false;
  std::uint64_t steps = 0;
  std::uint64_t final_digest = 0;   ///< world digest after replay
  std::string divergence;          ///< empty when ok
  std::size_t divergence_index = 0;///< record index of first mismatch

  std::string to_string() const {
    if (ok) {
      return "replay ok: " + std::to_string(steps) + " steps, digest " +
             std::to_string(final_digest);
    }
    return "replay DIVERGED at record " + std::to_string(divergence_index) +
           ": " + divergence;
  }
};

class ReplayEngine {
 public:
  /// Replay `recorded` against `fresh` (a world constructed identically to
  /// the recorded one, not yet run). Installs a ReplayScheduler and a
  /// verification scroll; returns the comparison.
  ///
  /// `use_recorded_env=true` answers env reads from the recording (black-box
  /// environment); false re-runs the live env model (which is deterministic,
  /// so both should agree unless the environment model changed).
  static ReplayReport replay(rt::World& fresh, const Scroll& recorded,
                             bool use_recorded_env = true);

  /// Compare two scrolls; nullopt when they match, else (index, message).
  static std::optional<std::pair<std::size_t, std::string>> compare(
      const Scroll& a, const Scroll& b);
};

}  // namespace fixd::scroll
