#include "scroll/scroll.hpp"

#include <algorithm>

namespace fixd::scroll {

std::string ScrollRecord::to_string() const {
  std::string head = "#" + std::to_string(seq) + " p" + std::to_string(pid) +
                     " L" + std::to_string(lamport) + " ";
  switch (kind) {
    case RecordKind::kEvent:
      return head + "EVENT " + event.to_string();
    case RecordKind::kSend:
      return head + "SEND msg#" + std::to_string(msg) + " digest=" +
             std::to_string(digest) +
             (msg == 0 ? " (dropped by loss policy)" : "");
    case RecordKind::kDeliver:
      return head + "DELIVER msg#" + std::to_string(msg) +
             " digest=" + std::to_string(digest);
    case RecordKind::kRng:
      return head + "RNG " + std::to_string(value);
    case RecordKind::kTimeRead:
      return head + "TIME " + std::to_string(value);
    case RecordKind::kEnvRead:
      return head + "ENV " + text + "=" + std::to_string(value);
    case RecordKind::kAnnotation:
      return head + "NOTE " + text;
    case RecordKind::kSpec: {
      static const char* ops[] = {"BEGIN", "COMMIT", "ABORT", "ABSORB"};
      return head + "SPEC " + ops[spec_op % 4] + " s" + std::to_string(spec) +
             (text.empty() ? "" : " [" + text + "]");
    }
  }
  return head + "?";
}

void Scroll::push(ScrollRecord rec) {
  rec.seq = next_seq_++;
  BinaryWriter w;
  rec.save(w);
  stats_.bytes += w.size();
  ++stats_.records;
  ++stats_.by_kind[static_cast<std::size_t>(rec.kind)];
  records_.push_back(std::move(rec));
}

void Scroll::on_event(const rt::World& w, const rt::EventDesc& ev) {
  if (!preset_.schedule) return;
  ScrollRecord r;
  r.kind = RecordKind::kEvent;
  r.pid = ev.pid;
  r.lamport = w.lamport_of(ev.pid);
  r.event = ev;
  push(std::move(r));
}

void Scroll::on_send(const rt::World& w, const net::Message& msg) {
  if (!preset_.sends) return;
  ScrollRecord r;
  r.kind = RecordKind::kSend;
  r.pid = msg.src;
  r.lamport = w.lamport_of(msg.src);
  r.msg = msg.id;
  r.peer = msg.dst;
  r.tag = msg.tag;
  r.digest = msg.content_digest();
  if (preset_.payloads) r.payload = msg.payload;
  push(std::move(r));
}

void Scroll::on_deliver(const rt::World& w, const net::Message& msg) {
  if (!preset_.delivers) return;
  ScrollRecord r;
  r.kind = RecordKind::kDeliver;
  r.pid = msg.dst;
  r.lamport = w.lamport_of(msg.dst);
  r.msg = msg.id;
  r.peer = msg.src;
  r.tag = msg.tag;
  r.digest = msg.content_digest();
  if (preset_.payloads) r.payload = msg.payload;
  push(std::move(r));
}

void Scroll::on_rng(const rt::World& w, ProcessId pid, std::uint64_t value) {
  if (!preset_.rng) return;
  ScrollRecord r;
  r.kind = RecordKind::kRng;
  r.pid = pid;
  r.lamport = w.lamport_of(pid);
  r.value = value;
  push(std::move(r));
}

void Scroll::on_time_read(const rt::World& w, ProcessId pid, VirtualTime t) {
  if (!preset_.time_reads) return;
  ScrollRecord r;
  r.kind = RecordKind::kTimeRead;
  r.pid = pid;
  r.lamport = w.lamport_of(pid);
  r.value = t;
  push(std::move(r));
}

void Scroll::on_env_read(const rt::World& w, ProcessId pid,
                         const std::string& key, std::uint64_t value) {
  if (!preset_.env_reads) return;
  ScrollRecord r;
  r.kind = RecordKind::kEnvRead;
  r.pid = pid;
  r.lamport = w.lamport_of(pid);
  r.text = key;
  r.value = value;
  push(std::move(r));
}

void Scroll::on_annotation(const rt::World& w, ProcessId pid,
                           const std::string& note) {
  if (!preset_.annotations) return;
  ScrollRecord r;
  r.kind = RecordKind::kAnnotation;
  r.pid = pid;
  r.lamport = w.lamport_of(pid);
  r.text = note;
  push(std::move(r));
}

void Scroll::on_spec(const rt::World& w, ProcessId pid, SpecId spec,
                     SpecOp op) {
  if (!preset_.spec_events) return;
  ScrollRecord r;
  r.kind = RecordKind::kSpec;
  r.pid = pid;
  r.lamport = w.lamport_of(pid);
  r.spec = spec;
  r.spec_op = static_cast<std::uint8_t>(op);
  push(std::move(r));
}

void Scroll::clear() {
  records_.clear();
  stats_ = {};
  next_seq_ = 0;
}

std::vector<const ScrollRecord*> Scroll::for_process(ProcessId pid) const {
  std::vector<const ScrollRecord*> out;
  for (const auto& r : records_) {
    if (r.pid == pid) out.push_back(&r);
  }
  return out;
}

std::vector<rt::EventDesc> Scroll::schedule() const {
  std::vector<rt::EventDesc> out;
  for (const auto& r : records_) {
    if (r.kind == RecordKind::kEvent) out.push_back(r.event);
  }
  return out;
}

std::vector<const ScrollRecord*> Scroll::total_order() const {
  std::vector<const ScrollRecord*> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(&r);
  std::stable_sort(out.begin(), out.end(),
                   [](const ScrollRecord* a, const ScrollRecord* b) {
                     if (a->lamport != b->lamport)
                       return a->lamport < b->lamport;
                     if (a->pid != b->pid) return a->pid < b->pid;
                     return a->seq < b->seq;
                   });
  return out;
}

std::string Scroll::render(std::size_t max_records) const {
  std::string out;
  std::size_t n = std::min(max_records, records_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out += records_[i].to_string();
    out += "\n";
  }
  if (n < records_.size()) {
    out += "... (" + std::to_string(records_.size() - n) + " more)\n";
  }
  return out;
}

void Scroll::save(BinaryWriter& w) const {
  w.write_bool(preset_.schedule);
  w.write_bool(preset_.rng);
  w.write_bool(preset_.time_reads);
  w.write_bool(preset_.env_reads);
  w.write_bool(preset_.sends);
  w.write_bool(preset_.delivers);
  w.write_bool(preset_.payloads);
  w.write_bool(preset_.annotations);
  w.write_bool(preset_.spec_events);
  w.write_varint(next_seq_);
  w.write_varint(records_.size());
  for (const auto& r : records_) r.save(w);
}

void Scroll::load(BinaryReader& r) {
  preset_.schedule = r.read_bool();
  preset_.rng = r.read_bool();
  preset_.time_reads = r.read_bool();
  preset_.env_reads = r.read_bool();
  preset_.sends = r.read_bool();
  preset_.delivers = r.read_bool();
  preset_.payloads = r.read_bool();
  preset_.annotations = r.read_bool();
  preset_.spec_events = r.read_bool();
  next_seq_ = r.read_varint();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  records_.clear();
  records_.reserve(n);
  stats_ = {};
  for (std::size_t i = 0; i < n; ++i) {
    ScrollRecord rec;
    rec.load(r);
    BinaryWriter sz;
    rec.save(sz);
    stats_.bytes += sz.size();
    ++stats_.records;
    ++stats_.by_kind[static_cast<std::size_t>(rec.kind)];
    records_.push_back(std::move(rec));
  }
}

void Scroll::truncate(std::size_t n) {
  if (n >= records_.size()) return;
  records_.resize(n);
  stats_ = {};
  for (const auto& rec : records_) {
    BinaryWriter sz;
    rec.save(sz);
    stats_.bytes += sz.size();
    ++stats_.records;
    ++stats_.by_kind[static_cast<std::size_t>(rec.kind)];
  }
}

}  // namespace fixd::scroll
