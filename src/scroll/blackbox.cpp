#include "scroll/blackbox.hpp"

namespace fixd::scroll {

BlackBoxTranscript BlackBoxTranscript::extract(const Scroll& scroll,
                                               ProcessId remote) {
  BlackBoxTranscript t;
  t.remote_ = remote;
  for (const auto& r : scroll.records()) {
    // The remote's sends appear as kSend records with pid == remote; the
    // remote's receives appear as kDeliver records with pid == remote.
    if (r.kind == RecordKind::kSend && r.pid == remote) {
      Interaction i;
      i.outbound = true;
      i.peer = r.peer;
      i.tag = r.tag;
      i.payload = r.payload;
      i.digest = r.digest;
      t.log_.push_back(std::move(i));
    } else if (r.kind == RecordKind::kDeliver && r.pid == remote) {
      Interaction i;
      i.outbound = false;
      i.peer = r.peer;
      i.tag = r.tag;
      i.payload = r.payload;
      i.digest = r.digest;
      t.log_.push_back(std::move(i));
    }
  }
  return t;
}

bool BlackBoxTranscript::has_payloads() const {
  for (const auto& i : log_) {
    if (!i.payload.empty()) return true;
  }
  return log_.empty();
}

void BlackBoxTranscript::save(BinaryWriter& w) const {
  w.write_u32(remote_);
  w.write_varint(log_.size());
  for (const auto& i : log_) i.save(w);
}

void BlackBoxTranscript::load(BinaryReader& r) {
  remote_ = r.read_u32();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  log_.clear();
  log_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Interaction it;
    it.load(r);
    log_.push_back(std::move(it));
  }
}

ScriptedProcess::ScriptedProcess(BlackBoxTranscript transcript)
    : transcript_(std::move(transcript)) {}

void ScriptedProcess::on_start(rt::Context& ctx) { pump(ctx); }

void ScriptedProcess::on_message(rt::Context& ctx, const net::Message& msg) {
  const auto& log = transcript_.interactions();
  if (cursor_ < log.size() && !log[cursor_].outbound) {
    if (log[cursor_].digest == msg.content_digest()) {
      ++cursor_;
    } else {
      // The live run deviated from the transcript; note it and move on so
      // the investigation is not wedged (the model is best-effort).
      ++mismatches_;
      ++cursor_;
    }
  }
  pump(ctx);
}

void ScriptedProcess::pump(rt::Context& ctx) {
  const auto& log = transcript_.interactions();
  while (cursor_ < log.size() && log[cursor_].outbound) {
    const Interaction& i = log[cursor_];
    // Peer/tag travel inside the recorded payload when the scroll kept
    // payloads; digest-only transcripts cannot be replayed outbound.
    if (!i.payload.empty() || i.peer != kNoProcess) {
      ProcessId dst = i.peer;
      if (dst == kNoProcess) break;  // insufficient recording; stop pumping
      ctx.send(dst, i.tag, i.payload);
    }
    ++cursor_;
  }
}

void ScriptedProcess::save_root(BinaryWriter& w) const {
  transcript_.save(w);
  w.write_varint(cursor_);
  w.write_u64(mismatches_);
}

void ScriptedProcess::load_root(BinaryReader& r) {
  transcript_.load(r);
  cursor_ = static_cast<std::size_t>(r.read_varint());
  mismatches_ = r.read_u64();
}

}  // namespace fixd::scroll
