// The Scroll: "a common place where all or most of the components of our
// distributed application can record their actions and that may be used for
// playback or execution path investigation" (§3.1, Fig. 1).
//
// Implemented as a RuntimeObserver: attach it to a world and it records
// according to its LoggingPreset. Three presets matter:
//
//   nondet_only()  the paper's Scroll — schedule choices + nondeterministic
//                  outcomes (rng/time/env). Minimal bytes; sufficient for
//                  deterministic replay.
//   digests()      adds send/deliver content digests — enables divergence
//                  *detection* (not just replay) at small extra cost.
//   full()         liblog-style baseline: everything, including full message
//                  payloads. What you pay when you log at the libc boundary
//                  without knowing what is deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rt/hooks.hpp"
#include "rt/world.hpp"
#include "scroll/record.hpp"

namespace fixd::scroll {

struct LoggingPreset {
  bool schedule = true;   ///< kEvent records (required for replay)
  bool rng = true;        ///< RNG outcomes
  bool time_reads = true; ///< ctx.now() outcomes
  bool env_reads = true;  ///< environment outcomes
  bool sends = false;     ///< send records (digest)
  bool delivers = false;  ///< deliver records (digest)
  bool payloads = false;  ///< store full payload bytes in send/deliver
  bool annotations = true;
  bool spec_events = true;

  /// The paper's Scroll: nondeterministic actions and their outcomes only.
  static LoggingPreset nondet_only() { return {}; }

  /// Scroll plus interaction digests (divergence checking).
  static LoggingPreset digests() {
    LoggingPreset p;
    p.sends = true;
    p.delivers = true;
    return p;
  }

  /// liblog-style: record every interaction with full payloads.
  static LoggingPreset full() {
    LoggingPreset p;
    p.sends = true;
    p.delivers = true;
    p.payloads = true;
    return p;
  }
};

struct ScrollStats {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;  ///< serialized size of all records
  std::array<std::uint64_t, 8> by_kind{};
};

class Scroll final : public rt::RuntimeObserver {
 public:
  explicit Scroll(LoggingPreset preset = LoggingPreset::nondet_only())
      : preset_(preset) {}

  const LoggingPreset& preset() const { return preset_; }

  // --- RuntimeObserver taps ------------------------------------------------
  void on_event(const rt::World& w, const rt::EventDesc& ev) override;
  void on_send(const rt::World& w, const net::Message& msg) override;
  void on_deliver(const rt::World& w, const net::Message& msg) override;
  void on_rng(const rt::World& w, ProcessId pid, std::uint64_t value) override;
  void on_time_read(const rt::World& w, ProcessId pid,
                    VirtualTime t) override;
  void on_env_read(const rt::World& w, ProcessId pid, const std::string& key,
                   std::uint64_t value) override;
  void on_annotation(const rt::World& w, ProcessId pid,
                     const std::string& note) override;
  void on_spec(const rt::World& w, ProcessId pid, SpecId spec,
               SpecOp op) override;

  // --- access ---------------------------------------------------------------
  const std::vector<ScrollRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear();

  /// Records of one process, in capture order.
  std::vector<const ScrollRecord*> for_process(ProcessId pid) const;

  /// The executed schedule: EventDescs of all kEvent records.
  std::vector<rt::EventDesc> schedule() const;

  /// Records sorted into the global total order (lamport, pid, seq): the
  /// "globally consistent run" reconstruction of §2.2.
  std::vector<const ScrollRecord*> total_order() const;

  /// Retained/serialized sizes (the Fig. 1 cost metric).
  ScrollStats stats() const { return stats_; }

  /// Human-readable trace (bug-report appendix).
  std::string render(std::size_t max_records = 200) const;

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

  /// Truncate to the first `n` records (used to cut a scroll at a
  /// checkpoint when assembling an investigation context).
  void truncate(std::size_t n);

 private:
  void push(ScrollRecord rec);

  LoggingPreset preset_;
  std::vector<ScrollRecord> records_;
  ScrollStats stats_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fixd::scroll
