// Scroll records: one entry per observed action.
//
// "It is important to notice that only nondeterministic actions (involving
// other components) and their outcome need to be recorded by the Scroll"
// (§3.1). In this runtime the nondeterministic actions are: the schedule
// choice (which event ran), RNG draws, time reads, and environment reads.
// Everything else (sends, delivered payloads) is a deterministic consequence
// and is recorded only in the richer logging presets — that difference is
// exactly what bench/fig1_scroll measures against the liblog-style
// full-payload baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "rt/event.hpp"

namespace fixd::scroll {

enum class RecordKind : std::uint8_t {
  kEvent = 0,      ///< schedule choice: the event that executed
  kSend = 1,       ///< message submitted (id 0 = dropped by loss policy)
  kDeliver = 2,    ///< message handed to a process
  kRng = 3,        ///< random_u64 outcome
  kTimeRead = 4,   ///< ctx.now() outcome
  kEnvRead = 5,    ///< environment read outcome
  kAnnotation = 6, ///< user note
  kSpec = 7,       ///< speculation begin/commit/abort/absorb
};

struct ScrollRecord {
  RecordKind kind = RecordKind::kEvent;
  std::uint64_t seq = 0;      ///< global capture order
  ProcessId pid = kNoProcess; ///< acting process
  LamportTime lamport = 0;    ///< acting process's Lamport clock at capture

  rt::EventDesc event;                ///< kEvent
  MsgId msg = 0;                      ///< kSend / kDeliver
  ProcessId peer = kNoProcess;        ///< other endpoint (send/deliver)
  std::uint32_t tag = 0;              ///< message tag (send/deliver)
  std::uint64_t digest = 0;           ///< content digest (send/deliver)
  std::uint64_t value = 0;            ///< rng / time / env outcome
  std::string text;                   ///< env key / annotation / assumption
  std::vector<std::byte> payload;     ///< full payload (liblog preset only)
  SpecId spec = kNoSpec;              ///< kSpec
  std::uint8_t spec_op = 0;           ///< rt::RuntimeObserver::SpecOp

  void save(BinaryWriter& w) const {
    w.write_u8(static_cast<std::uint8_t>(kind));
    w.write_varint(seq);
    w.write_u32(pid);
    w.write_varint(lamport);
    event.save(w);
    w.write_varint(msg);
    w.write_u32(peer);
    w.write_u32(tag);
    w.write_u64(digest);
    w.write_u64(value);
    w.write_string(text);
    w.write_bytes(payload);
    w.write_u64(spec);
    w.write_u8(spec_op);
  }

  void load(BinaryReader& r) {
    kind = static_cast<RecordKind>(r.read_u8());
    seq = r.read_varint();
    pid = r.read_u32();
    lamport = r.read_varint();
    event.load(r);
    msg = r.read_varint();
    peer = r.read_u32();
    tag = r.read_u32();
    digest = r.read_u64();
    value = r.read_u64();
    text = r.read_string();
    payload = r.read_bytes();
    spec = r.read_u64();
    spec_op = r.read_u8();
  }

  /// Identity comparison used by the divergence detector: two runs agree at
  /// a record if kind, pid and outcome match (seq/lamport are derived).
  bool matches(const ScrollRecord& o) const {
    if (kind != o.kind || pid != o.pid) return false;
    switch (kind) {
      case RecordKind::kEvent:
        return event.same_identity(o.event);
      case RecordKind::kSend:
      case RecordKind::kDeliver:
        return digest == o.digest;
      case RecordKind::kRng:
      case RecordKind::kTimeRead:
        return value == o.value;
      case RecordKind::kEnvRead:
        return value == o.value && text == o.text;
      case RecordKind::kAnnotation:
        return text == o.text;
      case RecordKind::kSpec:
        return spec_op == o.spec_op;
    }
    return false;
  }

  std::string to_string() const;
};

}  // namespace fixd::scroll
