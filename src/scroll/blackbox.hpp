// Black-box modeling of remote components.
//
// §2.2: "An alternative to requiring the logs of all entities in the system
// is to record the interaction between the local component and a remote one
// and treat the remote entity as a black box defined only by the interaction
// with the local component."
//
// BlackBoxTranscript extracts, from a digest-or-richer scroll, the
// interaction a given remote process had with the rest of the system: the
// sequence of messages it emitted and absorbed. ScriptedProcess then *plays*
// that transcript as a stand-in process — the Investigator uses it when a
// component's implementation is unavailable (Fig. 4's "models for some of
// the external components").
#pragma once

#include <string>
#include <vector>

#include "rt/process.hpp"
#include "scroll/scroll.hpp"

namespace fixd::scroll {

/// One observed interaction at the black box boundary.
struct Interaction {
  bool outbound = false;  ///< true: remote sent this; false: remote received
  ProcessId peer = kNoProcess;
  net::Tag tag = 0;
  std::vector<std::byte> payload;  ///< empty if only digests were recorded
  std::uint64_t digest = 0;

  void save(BinaryWriter& w) const {
    w.write_bool(outbound);
    w.write_u32(peer);
    w.write_u32(tag);
    w.write_bytes(payload);
    w.write_u64(digest);
  }
  void load(BinaryReader& r) {
    outbound = r.read_bool();
    peer = r.read_u32();
    tag = r.read_u32();
    payload = r.read_bytes();
    digest = r.read_u64();
  }
};

class BlackBoxTranscript {
 public:
  /// Extract the interactions of `remote` from a scroll recorded with at
  /// least the digests() preset (payloads preset enables full replay).
  static BlackBoxTranscript extract(const Scroll& scroll, ProcessId remote);

  const std::vector<Interaction>& interactions() const { return log_; }
  ProcessId remote() const { return remote_; }
  bool has_payloads() const;

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  ProcessId remote_ = kNoProcess;
  std::vector<Interaction> log_;
};

/// A stand-in process that plays a transcript: it re-emits the remote's
/// recorded sends in order, advancing past recorded receives as matching
/// messages arrive. Requires a transcript with payloads.
class ScriptedProcess final : public rt::ProcessBase<ScriptedProcess> {
 public:
  ScriptedProcess() = default;
  explicit ScriptedProcess(BlackBoxTranscript transcript);

  void on_start(rt::Context& ctx) override;
  void on_message(rt::Context& ctx, const net::Message& msg) override;

  void save_root(BinaryWriter& w) const override;
  void load_root(BinaryReader& r) override;

  std::string type_name() const override { return "scripted"; }

  /// True when every recorded interaction has been played.
  bool exhausted() const { return cursor_ >= transcript_.interactions().size(); }
  std::size_t cursor() const { return cursor_; }

 private:
  /// Emit all outbound interactions at the cursor.
  void pump(rt::Context& ctx);

  BlackBoxTranscript transcript_;
  std::size_t cursor_ = 0;
  std::uint64_t mismatches_ = 0;
};

}  // namespace fixd::scroll
