#include "scroll/replay.hpp"

#include <memory>

namespace fixd::scroll {

RecordedEnvSource::RecordedEnvSource(const Scroll& recorded) {
  for (const auto& r : recorded.records()) {
    if (r.kind == RecordKind::kEnvRead) {
      reads_.push_back({r.pid, r.text, r.value});
    }
  }
}

std::optional<std::uint64_t> RecordedEnvSource::next_env(
    ProcessId pid, std::string_view key) {
  if (cursor_ >= reads_.size()) {
    throw ReplayDivergence("env read beyond recorded scroll (p" +
                           std::to_string(pid) + ", key=" + std::string(key) +
                           ")");
  }
  const Read& r = reads_[cursor_];
  if (r.pid != pid || r.key != key) {
    throw ReplayDivergence("env read mismatch: recorded p" +
                           std::to_string(r.pid) + "/" + r.key + ", replay p" +
                           std::to_string(pid) + "/" + std::string(key));
  }
  ++cursor_;
  return r.value;
}

std::size_t RecordedEnvSource::remaining() const {
  return reads_.size() - cursor_;
}

std::optional<std::pair<std::size_t, std::string>> ReplayEngine::compare(
    const Scroll& a, const Scroll& b) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!a.records()[i].matches(b.records()[i])) {
      return std::make_pair(
          i, "recorded: " + a.records()[i].to_string() +
                 " | replayed: " + b.records()[i].to_string());
    }
  }
  if (a.size() != b.size()) {
    return std::make_pair(n, "length mismatch: recorded " +
                                 std::to_string(a.size()) + ", replayed " +
                                 std::to_string(b.size()));
  }
  return std::nullopt;
}

ReplayReport ReplayEngine::replay(rt::World& fresh, const Scroll& recorded,
                                  bool use_recorded_env) {
  ReplayReport rep;

  auto schedule = recorded.schedule();
  const std::uint64_t schedule_len = schedule.size();
  fresh.set_scheduler(
      std::make_unique<rt::ReplayScheduler>(std::move(schedule)));

  Scroll verify(recorded.preset());
  fresh.add_observer(&verify);

  std::unique_ptr<RecordedEnvSource> env;
  if (use_recorded_env) {
    env = std::make_unique<RecordedEnvSource>(recorded);
    fresh.set_env_source(env.get());
  }

  try {
    // Execute exactly as many events as were recorded; stop early if the
    // world quiesces (which would itself be a divergence, caught below).
    for (std::uint64_t i = 0; i < schedule_len; ++i) {
      if (!fresh.step()) break;
      ++rep.steps;
    }
  } catch (const ReplayDivergence& e) {
    fresh.remove_observer(&verify);
    fresh.set_env_source(nullptr);
    rep.ok = false;
    rep.divergence = e.what();
    rep.divergence_index = verify.size();
    return rep;
  }

  fresh.remove_observer(&verify);
  fresh.set_env_source(nullptr);

  auto diff = compare(recorded, verify);
  if (diff) {
    rep.ok = false;
    rep.divergence_index = diff->first;
    rep.divergence = diff->second;
  } else {
    rep.ok = true;
    rep.final_digest = fresh.digest();
  }
  return rep;
}

}  // namespace fixd::scroll
