// Schedulers: the policy choosing which enabled event executes next.
//
// Given the enabled-event set computed by the world, a scheduler picks one.
// Everything else in the run is deterministic, so the scheduler choice
// sequence *is* the schedule — the Scroll records it, replay feeds it back,
// and adversarial schedules are just different policies:
//
//   FifoScheduler    earliest-ready-first; the "natural" schedule a real
//                    deployment would most likely take.
//   RandomScheduler  uniform seeded choice; schedule fuzzing.
//   ReplayScheduler  follows a recorded identity sequence; throws
//                    ReplayDivergence when the run stops matching.
//   ScriptScheduler  follows an explicit index script (used by tests and by
//                    Investigator trail re-execution).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "rt/event.hpp"

namespace fixd::rt {

class World;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Choose an index into `enabled` (non-empty).
  virtual std::size_t choose(const std::vector<EventDesc>& enabled,
                             const World& world) = 0;

  virtual std::string name() const = 0;
};

/// Deterministic earliest-first schedule: min (at, kind, pid, msg, timer).
class FifoScheduler final : public Scheduler {
 public:
  std::size_t choose(const std::vector<EventDesc>& enabled,
                     const World& world) override;
  std::string name() const override { return "fifo"; }
};

/// Uniform random choice from a seeded generator.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::size_t choose(const std::vector<EventDesc>& enabled,
                     const World& world) override;
  std::string name() const override { return "random"; }

 private:
  Rng rng_;
};

/// Follows a recorded sequence of event identities.
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(std::vector<EventDesc> script)
      : script_(script.begin(), script.end()) {}

  std::size_t choose(const std::vector<EventDesc>& enabled,
                     const World& world) override;
  std::string name() const override { return "replay"; }

  bool exhausted() const { return script_.empty(); }
  std::size_t remaining() const { return script_.size(); }

 private:
  std::deque<EventDesc> script_;
};

}  // namespace fixd::rt
