// process.hpp is header-only (interfaces); this TU anchors the vtables so
// every consumer does not emit its own copy.
#include "rt/process.hpp"

namespace fixd::rt {
// Intentionally empty: Context and Process are pure interfaces.
}  // namespace fixd::rt
