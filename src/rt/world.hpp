// The World: a deterministic discrete-event simulation of a distributed
// system.
//
// A world owns N processes, the network between them, per-process logical
// clocks / RNGs / timers, and a scheduler. One call to step() executes one
// event (start, message delivery, or timer expiry) through a fixed pipeline:
//
//   interceptors.before_event       (fault injection, CIC checkpointing)
//   observers.on_event              (the Scroll's schedule record)
//   spec_hooks.before_deliver       (speculation absorption, §4.2)
//   clock merges -> handler runs    (the application code)
//   spec_hooks.apply_deferred       (speculation aborts -> rollbacks)
//   invariant checks                (fault detection)
//   interceptors.after_event
//
// Determinism contract: given the same processes, options, scheduler and
// hooks, two runs produce bit-identical state (tested by digest equality).
// The only nondeterminism is the scheduler's choice among enabled events —
// which is exactly what the Scroll records and the Investigator explores.
#pragma once

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "net/network.hpp"
#include "rt/event.hpp"
#include "rt/hooks.hpp"
#include "rt/invariant.hpp"
#include "rt/process.hpp"
#include "rt/scheduler.hpp"
#include "rt/timer.hpp"

namespace fixd::rt {

struct WorldOptions {
  net::NetworkOptions net;
  /// Root seed; per-process RNG seeds are derived from it.
  std::uint64_t seed = 1;
  /// Seed of the default environment model (ctx.env_read values).
  std::uint64_t env_seed = 7;
  /// Abstract-time mode: every pending message and armed timer is enabled
  /// (the Investigator's view). Timed mode: events gate on virtual time.
  bool abstract_time = false;
  /// run() stops as soon as a violation is recorded.
  bool stop_on_violation = true;
  /// Evaluate global invariants after every event (omniscient testing mode).
  bool check_global_invariants = true;
};

/// Cached per-process digest components (the `full` one feeds
/// World::digest, the `mc` one World::mc_digest). Carried by checkpoints
/// so that restoring re-warms the world's digest cache instead of
/// invalidating it — the Investigator's restore-then-apply loop would
/// otherwise re-serialize every process per transition. The memo describes
/// the checkpoint's content, so adopting it on restore is correct no
/// matter what the world looked like before. Not serialized (a
/// deserialized checkpoint restores cold).
struct ProcDigestMemo {
  std::uint64_t full = 0;
  std::uint64_t mc = 0;
  bool full_valid = false;
  bool mc_valid = false;
};

/// A captured process state; cheap when `heap_snap` is used (COW pages).
struct ProcessCheckpoint {
  std::vector<std::byte> root;                  ///< Process::save_root bytes
  std::optional<mem::HeapSnapshot> heap_snap;   ///< COW capture (in-memory)
  std::vector<std::byte> heap_bytes;            ///< full capture (serialized)
  std::vector<std::byte> info;                  ///< clocks, rng, timers, flags
  VectorClock vclock;
  LamportTime lamport = 0;
  VirtualTime at = 0;
  std::uint64_t step = 0;
  /// World-unique, monotonically increasing capture id. Distinguishes
  /// captures taken within the same event (where clocks tie); the
  /// speculation cascade logic orders entry checkpoints by it.
  std::uint64_t capture_serial = 0;
  /// Digest components valid for this checkpoint's content (if they were
  /// warm at capture time); adopted by restore_process.
  ProcDigestMemo digest_memo;

  /// Approximate retained size: serialized bytes plus COW page-table cost.
  std::uint64_t size_bytes() const;

  /// Publish this checkpoint across threads (parallel explorer): pins the
  /// heap snapshot digest and marks its pages so writers COW instead of
  /// mutating in place. Memoized — repeat calls on a shared entry are O(1).
  void share_across_threads() const;

  /// Wire format (materializes COW heap content; used by the Fig. 4
  /// checkpoint-collection protocol).
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  SharedMark xt_marked_;
};

/// A captured global state: every process plus in-flight network traffic.
///
/// Copy-on-write across snapshots: per-process entries are shared
/// `ProcessCheckpoint`s reused from the world's capture cache whenever the
/// process is clean since its last capture, and the network entry shares
/// immutable per-message buffers (net::NetSnapshot). In the explorer's
/// restore-then-apply loop, capturing a child state after one event
/// re-captures exactly the one touched process plus the touched channels —
/// the capture dual of the incremental digest.
struct WorldSnapshot {
  std::vector<std::shared_ptr<const ProcessCheckpoint>> procs;
  std::shared_ptr<const net::NetSnapshot> net;
  VirtualTime now = 0;
  std::uint64_t step = 0;
  /// Globally unique capture identity (assigned by World::snapshot; 0 for
  /// hand-built snapshots). Restoring seeds the replay-warm key chain from
  /// it: deterministic re-executions from the same snapshot object derive
  /// the same per-event keys, which is what lets sibling trail replays
  /// share their captures. Copies keep the serial — identical content, so
  /// the keys stay content-faithful. Not serialized.
  std::uint64_t serial = 0;

  /// Approximate retained size; shared entries are charged in full (see
  /// ProcessCheckpoint::size_bytes). Callers that account for sharing
  /// dedupe by entry pointer.
  std::uint64_t size_bytes() const;

  /// Publish this snapshot across threads: every process checkpoint and
  /// the network snapshot are marked so the receiving thread's world can
  /// restore and mutate without racing the capturing thread (the parallel
  /// explorer calls this before pushing a frontier node other workers may
  /// steal). Amortized O(entries not yet marked).
  void share_across_threads() const;
};

/// The deterministic default environment model: the value a process reads
/// for (key, nth-read). Exposed so tests and workload builders can predict
/// environment inputs for a given seed.
std::uint64_t default_env_value(std::uint64_t env_seed, ProcessId pid,
                                std::string_view key, std::uint64_t count);

enum class StopReason { kQuiescent, kAllHalted, kMaxSteps, kViolation };

struct RunResult {
  StopReason reason = StopReason::kQuiescent;
  std::uint64_t steps = 0;
};

class World : private net::DeliverableListener {
 public:
  explicit World(WorldOptions opts = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- construction -------------------------------------------------------
  /// Add a process before seal(); returns its id (dense, in add order).
  ProcessId add_process(std::unique_ptr<Process> p);

  /// Freeze membership; initializes vector clocks. Idempotent.
  void seal();
  bool sealed() const { return sealed_; }

  // --- accessors ----------------------------------------------------------
  const WorldOptions& options() const { return opts_; }

  /// Switch between timed and abstract-time enabled-event semantics (the
  /// Investigator explores in abstract time so timeout races are visible).
  void set_abstract_time(bool on) { opts_.abstract_time = on; }

  /// Toggle omniscient global-invariant checking after every event.
  void set_check_global_invariants(bool on) {
    opts_.check_global_invariants = on;
  }

  /// Toggle stop-on-violation for run().
  void set_stop_on_violation(bool on) { opts_.stop_on_violation = on; }
  std::size_t size() const { return procs_.size(); }
  /// Mutable access conservatively marks the process digest-dirty (the
  /// Healer's in-place patches and the fault injector's state corruption go
  /// through here). Mutating a process through a stashed pointer bypasses
  /// the digest cache — see docs/PERF.md for the full contract.
  Process& process(ProcessId pid);
  const Process& process(ProcessId pid) const;

  /// Typed access; throws ConfigError on type mismatch.
  template <typename T>
  T& process_as(ProcessId pid) {
    auto* p = dynamic_cast<T*>(&process(pid));
    if (!p) throw ConfigError("process_as: type mismatch for p" +
                              std::to_string(pid));
    return *p;
  }
  template <typename T>
  const T& process_as(ProcessId pid) const {
    // Routed through the const accessor: read-only typed access must not
    // mark the process digest-dirty.
    auto* p = dynamic_cast<const T*>(&process(pid));
    if (!p) throw ConfigError("process_as: type mismatch for p" +
                              std::to_string(pid));
    return *p;
  }

  /// Replace a process object in place (the Healer's dynamic update).
  /// The new process keeps the same pid; runtime info (clocks, timers)
  /// is preserved. Returns the old process.
  std::unique_ptr<Process> swap_process(ProcessId pid,
                                        std::unique_ptr<Process> fresh);

  /// Mutable network access conservatively breaks the replay-warm key
  /// chain (direct surgery makes later states no longer a pure function of
  /// (snapshot, dispatched events)); use the model_* wrappers below when
  /// the mutation is itself a deterministic replayed action.
  net::SimNetwork& network() {
    replay_break();
    return net_;
  }
  const net::SimNetwork& network() const { return net_; }

  /// Environment-model network actions (the Investigator's drop/duplicate
  /// transitions). Semantically identical to network().drop/duplicate but
  /// advance the replay-warm key chain instead of breaking it, so trails
  /// containing them stay warmable.
  bool model_drop_message(MsgId id);
  std::optional<MsgId> model_duplicate_message(MsgId id);

  /// Timeout-class environment-model actions: defer a pending delivery by
  /// `extra` virtual time / cancel an armed timer. Like drop/duplicate
  /// above they advance the replay-warm key chain instead of breaking it.
  /// Delays gate enabledness only in timed mode (abstract time ignores
  /// ready times by construction).
  bool model_delay_message(MsgId id, VirtualTime extra);
  bool model_cancel_timer(ProcessId pid, TimerId id);

  /// Partition-family environment-model actions: cut / heal one directed
  /// link, or restart a crashed process. Pure functions of world state
  /// (restart resumes with the crash-time state — the *durable* restart;
  /// amnesiac restarts need an initial checkpoint, which is injector
  /// territory), advancing the replay-warm key chain like the message
  /// models. Cut/heal return whether the mask changed; restart returns
  /// false when the process is not crashed.
  bool model_cut_link(ProcessId src, ProcessId dst);
  bool model_heal_link(ProcessId src, ProcessId dst);
  bool model_restart_process(ProcessId pid);

  /// Exogenous timer surgery (timeout-fault injection: stretch/shrink an
  /// armed timeout, or disarm it). Breaks the replay-warm chain like other
  /// out-of-band mutations. Returns false when the timer is not armed.
  bool retime_timer(ProcessId pid, TimerId id, VirtualTime new_deadline);
  bool cancel_timer(ProcessId pid, TimerId id);

  VirtualTime now() const { return now_; }
  std::uint64_t step_count() const { return step_; }
  const VectorClock& vclock_of(ProcessId pid) const;
  LamportTime lamport_of(ProcessId pid) const;
  const TimerQueue& timers_of(ProcessId pid) const;

  bool is_started(ProcessId pid) const { return info(pid).started; }
  bool is_crashed(ProcessId pid) const { return info(pid).crashed; }
  bool is_halted(ProcessId pid) const { return info(pid).halted; }
  void set_crashed(ProcessId pid, bool crashed);
  std::uint64_t events_handled(ProcessId pid) const {
    return info(pid).handled;
  }

  // --- hooks ----------------------------------------------------------------
  void add_observer(RuntimeObserver* obs);
  void remove_observer(RuntimeObserver* obs);
  void add_interceptor(StepInterceptor* ic);
  void remove_interceptor(StepInterceptor* ic);
  void set_spec_hooks(SpecHooks* hooks) { spec_hooks_ = hooks; }
  SpecHooks* spec_hooks() const { return spec_hooks_; }
  void set_env_source(EnvSource* src) { env_source_ = src; }
  void set_scheduler(std::unique_ptr<Scheduler> s);
  Scheduler& scheduler() { return *scheduler_; }

  // --- invariants & violations ---------------------------------------------
  InvariantRegistry& invariants() { return invariants_; }
  const InvariantRegistry& invariants() const { return invariants_; }
  const std::vector<Violation>& violations() const { return violations_; }
  bool has_violation() const { return !violations_.empty(); }
  void clear_violations() { violations_.clear(); }
  void record_violation(Violation v);

  /// Evaluate every registered invariant against the current state and
  /// record any violations (used to probe a freshly restored state).
  void recheck_invariants();

  // --- execution --------------------------------------------------------------
  /// Events currently eligible to run (deterministic order).
  ///
  /// Materialized from the incrementally maintained enabled-event index:
  /// the network publishes deliverable-message deltas, timer mutations and
  /// process lifecycle flips resync their per-process buckets, so this
  /// call touches only processes that actually have enabled events — it
  /// never rescans all processes/messages/timers. In timed mode the
  /// ready/warp selection runs over the buckets' at-keyed orderings
  /// instead of filtering a fully built candidate set. Bit-identical
  /// (order included) to enabled_events_uncached() by contract.
  std::vector<EventDesc> enabled_events() const;

  /// From-scratch rescan of processes, deliverable messages, and armed
  /// timers, bypassing the enabled-event index. Verification oracle for
  /// tests and bench/fig9_digest, exactly like the digest layers.
  std::vector<EventDesc> enabled_events_uncached() const;

  /// Verification hook: when off, enabled_events()/quiescent() route
  /// through the uncached rescan (the index keeps being maintained), and
  /// index consumers like the explorer's environment-model action
  /// enumeration fall back to their rescan paths too. The differential
  /// explorer tests flip this to prove the index changes no visited
  /// state set.
  void set_use_enabled_index(bool on) { use_enabled_index_ = on; }
  bool use_enabled_index() const { return use_enabled_index_; }

  /// Execute one scheduler-chosen event. False iff no event is enabled.
  bool step();

  /// Run until quiescent / all halted / a violation (if configured) /
  /// max_steps executed.
  RunResult run(std::uint64_t max_steps = ~0ull);

  /// Execute a specific enabled event (the Investigator's transition).
  void execute_event(const EventDesc& ev);

  /// True iff no event is enabled. O(1) from the enabled-event index
  /// counters (in timed mode a nonempty candidate set always yields a
  /// nonempty ready set via the time warp, so the counters decide both
  /// modes).
  bool quiescent() const;
  bool all_halted() const;

  // --- state capture ------------------------------------------------------------
  /// Capture one process. `cow=true` uses the heap page-table snapshot
  /// (cheap); `cow=false` fully serializes (transmissible). Always a fresh
  /// capture with a fresh `capture_serial` (the speculation cascade needs
  /// unique serials); snapshot() goes through the shared variant below.
  ProcessCheckpoint capture_process(ProcessId pid, bool cow = true);

  /// COW capture through the per-process capture cache: returns the cached
  /// checkpoint when the process is clean since its last capture (the
  /// cached entry keeps its original capture_serial/at/step — the content
  /// is identical, only the capture moment is earlier), else captures
  /// fresh and re-warms the cache.
  std::shared_ptr<const ProcessCheckpoint> capture_process_shared(
      ProcessId pid);

  /// Restore one process (state + clocks + timers). The network is NOT
  /// touched: reconciling channels is the Time Machine's job.
  void restore_process(ProcessId pid, const ProcessCheckpoint& ckpt);

  /// Shared-checkpoint restore: a no-op when the process already holds
  /// exactly this checkpoint's content (capture-cache pointer equality),
  /// and re-warms the capture cache afterwards so the next snapshot()
  /// shares instead of re-capturing.
  void restore_process(ProcessId pid,
                       const std::shared_ptr<const ProcessCheckpoint>& ckpt);

  WorldSnapshot snapshot(bool cow = true);
  void restore(const WorldSnapshot& snap);

  // --- replay-warmed captures ---------------------------------------------
  /// Toggle replay warming (default on). While on, a deterministic
  /// re-execution after restore(WorldSnapshot) keys every dispatched
  /// event against the snapshot's identity; capture_process_shared then
  /// reuses the bit-identical shared checkpoint a previous replay of the
  /// same prefix produced (and SimNetwork reuses replay-created message
  /// objects the same way), so sibling trail-frontier anchors share
  /// entries instead of deep-copying identical content. Any mutation
  /// outside dispatched events (process()/set_crashed/swap/network()
  /// surgery/spec aborts) breaks the chain; spec hooks or an env source
  /// disable keying entirely, and so does any interceptor that does not
  /// declare replay purity (StepInterceptor::replay_pure — pure
  /// interceptors fold a state digest into each event key instead).
  /// Toggling clears all warm state.
  void set_replay_warm(bool on);
  bool replay_warm() const { return replay_warm_on_; }
  /// Captures served from / inserted into the replay-warm ring
  /// (observability; tests assert the machinery engages).
  std::uint64_t replay_warm_hits() const { return warm_hits_; }
  std::uint64_t replay_warm_misses() const { return warm_misses_; }

  /// Verification oracle: true iff the capture cache entry for `pid` (and
  /// therefore anything replay warming may have put there) describes the
  /// live process bit-exactly — root bytes, runtime info bytes, and heap
  /// content compared in full. A cold cache is trivially consistent. The
  /// replay-warm property suites call this after every materialization.
  bool verify_capture_cache(ProcessId pid) const;

  /// Clone the entire world (processes, network, clocks). Hooks, observers
  /// and invariants are NOT cloned; the clone gets a FIFO scheduler.
  std::unique_ptr<World> clone();

  /// Clone the world's *behavior* (process objects, options) and restore
  /// the given snapshot into it. Const and cache-free, so one thread can
  /// stamp out N worker worlds from one shared COW snapshot (mark it with
  /// WorldSnapshot::share_across_threads first when the clones will run on
  /// different threads). `snap` must have been captured from a world with
  /// the same process set.
  std::unique_ptr<World> clone_from_snapshot(const WorldSnapshot& snap) const;

  /// Exact state digest: changes iff any state byte changes. Includes
  /// clocks, ids and stats — two runs match iff they are bit-identical.
  ///
  /// Incremental: per-process components are cached and invalidated by the
  /// event pipeline (handler ran, restore, crash/start flag, swap), so one
  /// event costs O(changed state) to re-digest, not O(total state).
  std::uint64_t digest() const;

  /// Canonical digest for model-checker deduplication: abstracts away
  /// path-dependent bookkeeping (virtual time, Lamport/vector clocks,
  /// message ids, network statistics) while covering all decision-relevant
  /// state (process roots, heaps, flags, RNGs, armed timer kinds, the
  /// multiset of in-flight message contents). Incrementally cached like
  /// digest(); this is the Investigator's per-transition hot path.
  std::uint64_t mc_digest() const;

  /// From-scratch recomputations bypassing every cache (per-process, heap
  /// page, message memo). Bit-identical to digest()/mc_digest() by
  /// contract; verification hooks for tests and bench/fig9_digest.
  std::uint64_t digest_uncached() const;
  std::uint64_t mc_digest_uncached() const;

  /// Invoked by ckpt::SpeculationManager after rolling a process back, to
  /// run its alternate-path handler.
  void notify_spec_aborted(ProcessId pid, SpecId spec,
                           const std::string& assumption);

  /// Forward a speculation lifecycle event to the observers (the Scroll).
  void notify_spec_event(ProcessId pid, SpecId spec,
                         RuntimeObserver::SpecOp op);

  /// Total sends/deliveries executed (convenience for benches).
  const net::NetStats& net_stats() const { return net_.stats(); }

 private:
  struct ProcInfo {
    LamportClock lamport;
    VectorClock vclock;
    Rng rng;
    TimerQueue timers;
    std::uint64_t env_count = 0;
    std::uint64_t handled = 0;
    bool started = false;
    bool crashed = false;
    bool halted = false;

    void save(BinaryWriter& w) const;
    void load(BinaryReader& r);
  };

  class Ctx;
  friend class Ctx;

  ProcInfo& info(ProcessId pid);
  const ProcInfo& info(ProcessId pid) const;

  /// Drop the cached digest components and the cached capture of `pid`.
  /// Called by every mutation path: dispatch (handler/suppression),
  /// restore_process, swap_process, set_crashed, notify_spec_aborted,
  /// seal, and mutable process access.
  void mark_state_dirty(ProcessId pid) {
    if (pid < dcache_.size()) {
      dcache_[pid].full_valid = false;
      dcache_[pid].mc_valid = false;
      ckpt_cache_[pid].reset();
      // The content is about to change, so it no longer matches the last
      // replay key; dispatch re-establishes the key after the event.
      warm_key_[pid] = 0;
    }
  }

  // --- replay-warm key chain ----------------------------------------------
  /// An exogenous mutation happened: downstream states are no longer a
  /// pure function of (restored snapshot, dispatched events), so the key
  /// chain dies until the next full-snapshot restore re-seeds it.
  void replay_break() { replay_acc_ = 0; }
  /// True iff every attached interceptor declares replay purity (see
  /// StepInterceptor::replay_pure); vacuously true with none attached.
  bool interceptors_pure() const {
    for (const StepInterceptor* ic : interceptors_) {
      if (!ic->replay_pure()) return false;
    }
    return true;
  }
  /// True while dispatched events may be keyed: warming on and no hook
  /// whose state lives outside world snapshots — except interceptors that
  /// declare themselves pure functions of (world state, own state, event);
  /// dispatch folds their state digests into each event key, so their
  /// influence is part of the chain instead of invalidating it.
  bool replay_keyable() const {
    return replay_warm_on_ && replay_acc_ != 0 && interceptors_pure() &&
           spec_hooks_ == nullptr && env_source_ == nullptr;
  }
  /// Look up / publish the capture for `pid` under its current warm key.
  std::shared_ptr<const ProcessCheckpoint> warm_lookup(ProcessId pid) const;
  void warm_insert(ProcessId pid,
                   const std::shared_ptr<const ProcessCheckpoint>& ckpt);

  // --- enabled-event index ------------------------------------------------
  /// Sorted flat set of process ids. Process counts are small and
  /// membership flips ride the explorer's per-transition path, so a flat
  /// vector (binary-search insert/erase, no node allocations) beats a
  /// tree set.
  class PidSet {
   public:
    void insert(ProcessId pid) {
      auto it = std::lower_bound(v_.begin(), v_.end(), pid);
      if (it == v_.end() || *it != pid) v_.insert(it, pid);
    }
    void erase(ProcessId pid) {
      auto it = std::lower_bound(v_.begin(), v_.end(), pid);
      if (it != v_.end() && *it == pid) v_.erase(it);
    }
    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }
    auto begin() const { return v_.begin(); }
    auto end() const { return v_.end(); }

   private:
    std::vector<ProcessId> v_;
  };

  /// Per-process cached contributions to the enabled-event index: which
  /// aggregate sets the process is a member of and how many events it
  /// currently contributes. The cache is what lets one resync adjust the
  /// global counters without rescanning other processes.
  struct EIdxProc {
    bool start = false;       ///< member of eidx_starts_
    bool deliv = false;       ///< member of eidx_deliv_procs_
    bool timer = false;       ///< member of eidx_timer_procs_
    std::size_t delivs = 0;   ///< contribution to eidx_n_delivs_
    std::size_t timers = 0;   ///< contribution to eidx_n_timers_
  };

  bool start_eligible(const ProcInfo& pi) const {
    return !pi.started && !pi.crashed && !pi.halted;
  }
  bool deliv_eligible(const ProcInfo& pi) const {
    // A halted process still receives (it just initiates nothing).
    return pi.started && !pi.crashed;
  }
  bool timer_eligible(const ProcInfo& pi) const {
    return pi.started && !pi.crashed && !pi.halted;
  }

  /// Resync one process's index contributions after its start flag /
  /// lifecycle flags / deliverable bucket / timer set changed. Each is
  /// O(log processes-with-events); callers use the narrowest one that
  /// covers the mutation (see docs/PERF.md for the site table). Const
  /// (mutable index state) because the lazy resync below runs under the
  /// const enabled_events()/quiescent() — same idiom as the digest memos.
  void eidx_sync_start(ProcessId pid) const;
  void eidx_sync_delivs(ProcessId pid) const;
  void eidx_sync_timers(ProcessId pid) const;
  void eidx_sync_proc(ProcessId pid) const {
    eidx_sync_start(pid);
    eidx_sync_delivs(pid);
    eidx_sync_timers(pid);
  }

  /// Bring the index current before materialization: rebuilds the
  /// network's deliverable index if a restore/load invalidated it, and
  /// re-derives per-process contributions when either a process restore
  /// invalidated the aggregates (eidx_valid_) or the network index was
  /// rebuilt wholesale (epoch mismatch). O(1) when nothing was
  /// invalidated, which is every call in a live run.
  void eidx_ensure() const;

  // net::DeliverableListener (the network's deliverable-set deltas).
  void on_deliverable_add(ProcessId dst, MsgId id,
                          const net::DeliverableEntry& e) override;
  void on_deliverable_remove(ProcessId dst, MsgId id) override;

  /// True iff ckpt_cache_[pid] still describes the process bit-exactly.
  /// The dirty bit covers every World-mediated mutation; heap content can
  /// additionally change through a stashed PagedHeap pointer, so the
  /// heap's self-invalidating digest arbitrates that case.
  bool capture_cache_valid(ProcessId pid) const;

  std::uint64_t proc_full_digest(ProcessId pid) const;
  std::uint64_t proc_mc_digest(ProcessId pid) const;
  std::uint64_t digest_impl(bool cached) const;
  std::uint64_t mc_digest_impl(bool cached) const;

  void dispatch(const EventDesc& ev);
  void run_handler(ProcessId pid, const std::function<void(Context&)>& body);
  void check_invariants(ProcessId pid, const EventDesc& ev);
  std::uint64_t default_env_value(ProcessId pid, std::string_view key,
                                  std::uint64_t count) const;

  WorldOptions opts_;
  bool sealed_ = false;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<ProcInfo> infos_;
  net::SimNetwork net_;
  std::unique_ptr<Scheduler> scheduler_;
  InvariantRegistry invariants_;
  std::vector<Violation> violations_;
  std::vector<RuntimeObserver*> observers_;
  std::vector<StepInterceptor*> interceptors_;
  SpecHooks* spec_hooks_ = nullptr;
  EnvSource* env_source_ = nullptr;
  VirtualTime now_ = 0;
  std::uint64_t step_ = 0;
  std::uint64_t capture_seq_ = 0;  // never restored: stays world-unique
  bool in_handler_ = false;
  mutable std::vector<ProcDigestMemo> dcache_;
  /// Per-process capture cache: the shared checkpoint describing the
  /// process's current state, reset by mark_state_dirty and re-warmed by
  /// capture_process_shared / shared restore_process. This is what makes
  /// WorldSnapshot capture O(changed processes).
  std::vector<std::shared_ptr<const ProcessCheckpoint>> ckpt_cache_;
  /// Reused serialization scratch for digest computation (avoids one
  /// BinaryWriter allocation per process per digest call).
  mutable BinaryWriter digest_scratch_;

  // --- replay-warm state (see set_replay_warm) ----------------------------
  bool replay_warm_on_ = true;
  /// Running key of the deterministic event prefix executed since the last
  /// restore(WorldSnapshot): H(snapshot serial, event identities...).
  /// 0 = no pure-replay base (never restored, or broken by an exogenous
  /// mutation).
  std::uint64_t replay_acc_ = 0;
  /// Per process: the key of the last keyed event that mutated it (its
  /// content is the deterministic function of that key), 0 when unknown.
  /// Zeroed by mark_state_dirty, re-set by dispatch after the event.
  std::vector<std::uint64_t> warm_key_;
  /// Per process: small ring of recent (key → shared capture) pairs. A
  /// sibling replay of the same prefix re-derives the same key and shares
  /// the checkpoint instead of capturing a bit-identical copy. Bounded
  /// retention: kReplayWarmSlots entries per process, FIFO eviction.
  static constexpr std::size_t kReplayWarmSlots = 16;
  struct ReplayWarmSlot {
    std::uint64_t key = 0;
    std::shared_ptr<const ProcessCheckpoint> ckpt;
  };
  struct ReplayWarmRing {
    std::array<ReplayWarmSlot, kReplayWarmSlots> slots;
    std::uint8_t next = 0;
  };
  mutable std::vector<ReplayWarmRing> warm_ring_;
  mutable std::uint64_t warm_hits_ = 0;
  mutable std::uint64_t warm_misses_ = 0;

  /// Enabled-event index aggregates (see EIdxProc): the sorted sets hold
  /// exactly the processes that contribute enabled events of each kind,
  /// so materialization iterates contributors only, and the counters make
  /// quiescent() O(1). Maintained by the eidx_sync_* resyncs; timer and
  /// deliverable buckets themselves live in the TimerQueues and the
  /// network's deliverable index — the world holds no per-event copies.
  mutable std::vector<EIdxProc> eidx_;
  mutable PidSet eidx_starts_;
  mutable PidSet eidx_deliv_procs_;
  mutable PidSet eidx_timer_procs_;
  mutable std::size_t eidx_n_delivs_ = 0;
  mutable std::size_t eidx_n_timers_ = 0;
  /// Last network deliverable-index epoch the aggregates were derived
  /// against; a mismatch in eidx_ensure() triggers the wholesale resync.
  mutable std::uint64_t eidx_net_epoch_ = 0;
  /// False after a process restore: contributions may be stale across the
  /// board, so the per-site resyncs early-out (O(1) on the explorer's
  /// restore-per-transition path) and eidx_ensure() resyncs everyone at
  /// the next materialization. Live runs never clear it.
  mutable bool eidx_valid_ = true;
  bool use_enabled_index_ = true;
};

}  // namespace fixd::rt
