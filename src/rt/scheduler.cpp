#include "rt/scheduler.hpp"

#include <tuple>

#include "common/error.hpp"

namespace fixd::rt {

namespace {
auto order_key(const EventDesc& e) {
  return std::make_tuple(e.at, static_cast<int>(e.kind), e.pid, e.msg,
                         e.timer);
}
}  // namespace

std::size_t FifoScheduler::choose(const std::vector<EventDesc>& enabled,
                                  const World&) {
  FIXD_CHECK(!enabled.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < enabled.size(); ++i) {
    if (order_key(enabled[i]) < order_key(enabled[best])) best = i;
  }
  return best;
}

std::size_t RandomScheduler::choose(const std::vector<EventDesc>& enabled,
                                    const World&) {
  FIXD_CHECK(!enabled.empty());
  return static_cast<std::size_t>(rng_.next_below(enabled.size()));
}

std::size_t ReplayScheduler::choose(const std::vector<EventDesc>& enabled,
                                    const World&) {
  FIXD_CHECK(!enabled.empty());
  if (script_.empty())
    throw ReplayDivergence("replay script exhausted but events remain");
  const EventDesc want = script_.front();
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i].same_identity(want)) {
      script_.pop_front();
      return i;
    }
  }
  throw ReplayDivergence("recorded event " + want.to_string() +
                         " is not enabled at this point of the replay");
}

}  // namespace fixd::rt
