// Invariants and violations: fault detection as data.
//
// FixD treats an application fault as a first-class value (a Violation), not
// an exception: the whole point of the pipeline is to catch it, roll back,
// and investigate. Local invariants run against one process after each of
// its events; global invariants run against the whole world after every
// event (the simulator's omniscient view — used by tests and by the
// Investigator; the distributed control protocol in core/ relies only on
// local detection, as a real deployment must).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace fixd::rt {

class World;
class Process;

struct Violation {
  std::string invariant;  ///< registered name, or "local:<reason>"
  ProcessId pid = kNoProcess;  ///< detecting process (kNoProcess for global)
  std::string detail;
  VirtualTime at = 0;
  LamportTime lamport = 0;
  std::uint64_t step = 0;  ///< world step index at detection

  std::string to_string() const {
    std::string who = pid == kNoProcess ? std::string("global")
                                        : "p" + std::to_string(pid);
    return "[" + invariant + "] " + who + " step=" + std::to_string(step) +
           " t=" + std::to_string(at) + (detail.empty() ? "" : ": " + detail);
  }

  void save(BinaryWriter& w) const {
    w.write_string(invariant);
    w.write_u32(pid);
    w.write_string(detail);
    w.write_varint(at);
    w.write_varint(lamport);
    w.write_varint(step);
  }

  void load(BinaryReader& r) {
    invariant = r.read_string();
    pid = r.read_u32();
    detail = r.read_string();
    at = r.read_varint();
    lamport = r.read_varint();
    step = r.read_varint();
  }
};

/// A check returns nullopt when the invariant holds, else a description.
using LocalCheck = std::function<std::optional<std::string>(const Process&)>;
using GlobalCheck = std::function<std::optional<std::string>(const World&)>;

class InvariantRegistry {
 public:
  /// Check `fn` against process `pid` after each of its events.
  void add_local(std::string name, ProcessId pid, LocalCheck fn) {
    locals_.push_back({std::move(name), pid, std::move(fn)});
  }

  /// Check against the whole world after every event.
  void add_global(std::string name, GlobalCheck fn) {
    globals_.push_back({std::move(name), std::move(fn)});
  }

  struct Local {
    std::string name;
    ProcessId pid;
    LocalCheck fn;
  };
  struct Global {
    std::string name;
    GlobalCheck fn;
  };

  const std::vector<Local>& locals() const { return locals_; }
  const std::vector<Global>& globals() const { return globals_; }
  std::size_t size() const { return locals_.size() + globals_.size(); }

 private:
  std::vector<Local> locals_;
  std::vector<Global> globals_;
};

}  // namespace fixd::rt
