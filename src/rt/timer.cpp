#include "rt/timer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fixd::rt {

namespace {
bool timer_less(const Timer& a, const Timer& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.id < b.id;
}
}  // namespace

TimerId TimerQueue::arm(VirtualTime now, VirtualTime delay,
                        std::uint32_t kind) {
  Timer t{next_id_++, now + delay, kind};
  auto it = std::lower_bound(timers_.begin(), timers_.end(), t, timer_less);
  timers_.insert(it, t);
  return t.id;
}

bool TimerQueue::cancel(TimerId id) {
  auto it = std::find_if(timers_.begin(), timers_.end(),
                         [&](const Timer& t) { return t.id == id; });
  if (it == timers_.end()) return false;
  timers_.erase(it);
  return true;
}

std::size_t TimerQueue::cancel_by_kind(std::uint32_t kind) {
  std::size_t before = timers_.size();
  std::erase_if(timers_, [&](const Timer& t) { return t.kind == kind; });
  return before - timers_.size();
}

Timer TimerQueue::take(TimerId id) {
  auto it = std::find_if(timers_.begin(), timers_.end(),
                         [&](const Timer& t) { return t.id == id; });
  FIXD_CHECK_MSG(it != timers_.end(), "take: timer not armed");
  Timer t = *it;
  timers_.erase(it);
  return t;
}

bool TimerQueue::retime(TimerId id, VirtualTime new_deadline) {
  auto it = std::find_if(timers_.begin(), timers_.end(),
                         [&](const Timer& t) { return t.id == id; });
  if (it == timers_.end()) return false;
  Timer t = *it;
  timers_.erase(it);
  t.deadline = new_deadline;
  auto pos = std::lower_bound(timers_.begin(), timers_.end(), t, timer_less);
  timers_.insert(pos, t);
  return true;
}

const Timer* TimerQueue::find(TimerId id) const {
  auto it = std::find_if(timers_.begin(), timers_.end(),
                         [&](const Timer& t) { return t.id == id; });
  return it == timers_.end() ? nullptr : &*it;
}

std::vector<Timer> TimerQueue::armed() const { return timers_; }

std::optional<VirtualTime> TimerQueue::earliest_deadline() const {
  if (timers_.empty()) return std::nullopt;
  return timers_.front().deadline;
}

void TimerQueue::save(BinaryWriter& w) const {
  w.write_u64(next_id_);
  w.write_varint(timers_.size());
  for (const Timer& t : timers_) {
    w.write_u64(t.id);
    w.write_u64(t.deadline);
    w.write_u32(t.kind);
  }
}

void TimerQueue::load(BinaryReader& r) {
  next_id_ = r.read_u64();
  std::size_t n = static_cast<std::size_t>(r.read_varint());
  timers_.clear();
  timers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Timer t;
    t.id = r.read_u64();
    t.deadline = r.read_u64();
    t.kind = r.read_u32();
    timers_.push_back(t);
  }
}

}  // namespace fixd::rt
