// Event descriptors: the unit of scheduling, recording, and exploration.
//
// A run of the distributed world is a sequence of events; the *only*
// nondeterminism in the system is which enabled event executes next. That
// makes an EventDesc simultaneously:
//   - the scheduler's choice (rt/scheduler.hpp),
//   - the Scroll's schedule record (scroll/record.hpp), and
//   - the Investigator's transition label (mc/sysmodel.hpp).
#pragma once

#include <string>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace fixd::rt {

enum class EventKind : std::uint8_t {
  kStart = 0,    ///< process bootstrap (on_start)
  kDeliver = 1,  ///< message delivery (on_message)
  kTimer = 2,    ///< timer expiry (on_timer)
};

struct EventDesc {
  EventKind kind = EventKind::kStart;
  ProcessId pid = kNoProcess;  ///< the process that executes the handler
  MsgId msg = 0;               ///< for kDeliver
  TimerId timer = 0;           ///< for kTimer
  VirtualTime at = 0;          ///< time the event becomes ready

  /// Identity comparison ignoring readiness time: replay matches events by
  /// identity because ready-times can shift when the environment is modeled.
  bool same_identity(const EventDesc& o) const {
    return kind == o.kind && pid == o.pid && msg == o.msg && timer == o.timer;
  }

  bool operator==(const EventDesc& o) const = default;

  void save(BinaryWriter& w) const {
    w.write_u8(static_cast<std::uint8_t>(kind));
    w.write_u32(pid);
    w.write_u64(msg);
    w.write_u64(timer);
    w.write_u64(at);
  }

  void load(BinaryReader& r) {
    kind = static_cast<EventKind>(r.read_u8());
    pid = r.read_u32();
    msg = r.read_u64();
    timer = r.read_u64();
    at = r.read_u64();
  }

  std::string to_string() const {
    switch (kind) {
      case EventKind::kStart:
        return "start(p" + std::to_string(pid) + ")";
      case EventKind::kDeliver:
        return "deliver(p" + std::to_string(pid) + ", msg#" +
               std::to_string(msg) + ")";
      case EventKind::kTimer:
        return "timer(p" + std::to_string(pid) + ", t" +
               std::to_string(timer) + ")";
    }
    return "?";
  }
};

}  // namespace fixd::rt
