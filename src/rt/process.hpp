// The Process abstraction: what a distributed application implements.
//
// A process is an event-driven state machine. All interaction with the
// world — sending, timers, time, randomness, environment reads, speculation
// control, fault reporting — goes through the Context passed into every
// handler. This narrow surface is deliberate: it is the system's "libc
// boundary". Everything nondeterministic crosses it, which is what lets the
// Scroll record it (§3.1), the Time Machine checkpoint around it (§3.2), and
// the Investigator enumerate it (§3.3).
//
// State contract:
//  - save_root/load_root must (de)serialize ALL process state that is not
//    stored in the optional COW heap. A process whose bulk state lives in
//    cow_heap() gets page-granular incremental checkpoints; root state is
//    assumed small.
//  - clone_behavior() returns a fresh process of the same type+version; it
//    is the "model of its behavior" a process ships to the Investigator
//    (Fig. 4: "this model does not have to be abstract; it could simply be
//    the implementation of the process itself").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "mem/paged_heap.hpp"
#include "net/message.hpp"
#include "rt/timer.hpp"

namespace fixd::rt {

/// The syscall surface available inside process handlers.
class Context {
 public:
  virtual ~Context() = default;

  virtual ProcessId self() const = 0;
  virtual std::size_t world_size() const = 0;

  /// Current virtual time. Recorded by the Scroll (nondeterministic read).
  virtual VirtualTime now() = 0;

  /// Deterministic per-process RNG draw. Recorded by the Scroll.
  virtual std::uint64_t random_u64() = 0;

  /// Modeled environment read (disk/sensor/config — the parts "not under
  /// the direct control of the FixD environment", Fig. 4). Recorded.
  virtual std::uint64_t env_read(std::string_view key) = 0;

  /// Send a message. Speculative taints are attached automatically.
  virtual void send(ProcessId dst, net::Tag tag,
                    std::vector<std::byte> payload) = 0;

  /// Typed send helper for payload structs with save(BinaryWriter&).
  template <typename T>
  void send_body(ProcessId dst, net::Tag tag, const T& body) {
    send(dst, tag, net::Message::encode(body));
  }

  /// Arm a timer firing `delay` virtual ns from now.
  virtual TimerId set_timer(VirtualTime delay, std::uint32_t kind = 0) = 0;
  virtual bool cancel_timer(TimerId id) = 0;
  /// Cancel all of this process's timers of `kind`. Prefer kind-based timer
  /// management in application state (ids are path-dependent; storing them
  /// defeats model-checker state dedup).
  virtual std::size_t cancel_timers(std::uint32_t kind) = 0;

  /// Begin a speculation based on `assumption`; takes a lightweight
  /// checkpoint (§4.2). No-op id if no speculation manager is attached.
  virtual SpecId spec_begin(std::string_view assumption) = 0;
  /// Validate the assumption: discard the checkpoint, clear taints.
  virtual void spec_commit(SpecId id) = 0;
  /// Invalidate: after this handler returns, every absorbed process rolls
  /// back and on_spec_aborted runs (the "different execution path").
  virtual void spec_abort(SpecId id) = 0;

  /// Free-form note recorded in the Scroll.
  virtual void annotate(std::string note) = 0;

  /// Local fault detection: records a violation and (by default) stops the
  /// run so the FixD pipeline can take over.
  virtual void report_fault(std::string reason) = 0;

  /// Declare this process finished (no more timers/starts expected).
  virtual void halt() = 0;
};

/// Base class for application processes.
class Process {
 public:
  virtual ~Process() = default;

  ProcessId id() const { return id_; }

  // --- handlers ----------------------------------------------------------
  virtual void on_start(Context& ctx) { (void)ctx; }
  virtual void on_message(Context& ctx, const net::Message& msg) = 0;
  virtual void on_timer(Context& ctx, const Timer& timer) {
    (void)ctx;
    (void)timer;
  }
  /// Alternate execution path after a speculation this process was absorbed
  /// in (or initiated) aborted and state was rolled back.
  virtual void on_spec_aborted(Context& ctx, SpecId spec,
                               const std::string& assumption) {
    (void)ctx;
    (void)spec;
    (void)assumption;
  }

  // --- state -------------------------------------------------------------
  virtual void save_root(BinaryWriter& w) const = 0;
  virtual void load_root(BinaryReader& r) = 0;

  /// Non-null if bulk state lives in a COW heap (mem/paged_heap.hpp).
  virtual mem::PagedHeap* cow_heap() { return nullptr; }
  const mem::PagedHeap* cow_heap() const {
    return const_cast<Process*>(this)->cow_heap();
  }

  // --- identity ----------------------------------------------------------
  virtual std::string type_name() const = 0;
  /// Behaviour version; bumped by dynamic updates (heal/).
  virtual std::uint32_t version() const { return 1; }

  /// Fresh instance of the same behaviour (see file comment).
  virtual std::unique_ptr<Process> clone_behavior() const = 0;

 private:
  friend class World;
  ProcessId id_ = kNoProcess;
};

/// CRTP helper providing clone_behavior via the copy constructor.
template <typename Derived>
class ProcessBase : public Process {
 public:
  std::unique_ptr<Process> clone_behavior() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

}  // namespace fixd::rt
