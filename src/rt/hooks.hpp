// Extension interfaces the runtime exposes to the other FixD components.
//
// The runtime (rt) must not depend on the Scroll, Time Machine, or fault
// injector — they depend on it. These interfaces invert the dependency:
//  - RuntimeObserver:   passive taps (the Scroll, statistics, tracing)
//  - StepInterceptor:   active pre/post hooks (fault injection, CIC policy)
//  - SpecHooks:         speculation lifecycle (implemented by ckpt)
//  - EnvSource:         environment-read values (replay feeds recordings)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"
#include "rt/event.hpp"

namespace fixd::rt {

class World;

/// Passive observation of everything nondeterministic that happens.
/// Callbacks fire in deterministic order within a deterministic run.
class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;

  /// An event was chosen for execution (before any handler runs).
  virtual void on_event(const World& w, const EventDesc& ev) {
    (void)w;
    (void)ev;
  }
  virtual void on_send(const World& w, const net::Message& msg) {
    (void)w;
    (void)msg;
  }
  virtual void on_deliver(const World& w, const net::Message& msg) {
    (void)w;
    (void)msg;
  }
  virtual void on_rng(const World& w, ProcessId pid, std::uint64_t value) {
    (void)w;
    (void)pid;
    (void)value;
  }
  virtual void on_time_read(const World& w, ProcessId pid, VirtualTime t) {
    (void)w;
    (void)pid;
    (void)t;
  }
  virtual void on_env_read(const World& w, ProcessId pid,
                           const std::string& key, std::uint64_t value) {
    (void)w;
    (void)pid;
    (void)key;
    (void)value;
  }
  virtual void on_annotation(const World& w, ProcessId pid,
                             const std::string& note) {
    (void)w;
    (void)pid;
    (void)note;
  }
  enum class SpecOp : std::uint8_t { kBegin, kCommit, kAbort, kAbsorb };
  virtual void on_spec(const World& w, ProcessId pid, SpecId spec, SpecOp op) {
    (void)w;
    (void)pid;
    (void)spec;
    (void)op;
  }
};

/// Active interception of the step pipeline.
class StepInterceptor {
 public:
  virtual ~StepInterceptor() = default;

  /// Called before the event's handler. Return false to suppress the event
  /// (it is consumed but the handler does not run) — crash/hang injection.
  virtual bool before_event(World& w, const EventDesc& ev) {
    (void)w;
    (void)ev;
    return true;
  }

  /// Called after the handler and deferred speculation ops.
  virtual void after_event(World& w, const EventDesc& ev) {
    (void)w;
    (void)ev;
  }

  /// Replay-warm purity declaration. An interceptor that returns true
  /// promises its behaviour is a pure function of (world state, its own
  /// state, the event) — no wall clocks, no external randomness — and that
  /// replay_state_digest() covers every bit of that own state. The world
  /// then folds the digest into the replay key chain instead of disabling
  /// keying (docs/ROBUSTNESS.md, purity table): two executions reaching
  /// the same (world, interceptor) state derive the same keys and may
  /// share captures; a state divergence changes the digest and splits the
  /// chain. Default: impure — keying stays disabled while attached.
  virtual bool replay_pure() const { return false; }
  virtual std::uint64_t replay_state_digest() const { return 0; }
};

/// Speculation lifecycle, implemented by ckpt::SpeculationManager.
class SpecHooks {
 public:
  virtual ~SpecHooks() = default;

  /// Speculations `pid` currently executes under (taints for its sends).
  virtual std::vector<SpecId> taints_of(ProcessId pid) const = 0;

  /// Called before the receive handler runs; performs absorption and any
  /// communication-induced checkpointing.
  virtual void before_deliver(World& w, const net::Message& msg) = 0;

  virtual SpecId begin(World& w, ProcessId pid, std::string assumption) = 0;
  virtual void commit(World& w, ProcessId pid, SpecId id) = 0;
  /// Request an abort; the world applies it after the current handler.
  virtual void abort(World& w, ProcessId pid, SpecId id) = 0;
  /// Apply deferred aborts (called by the world post-handler).
  virtual void apply_deferred(World& w) = 0;
};

/// Source of environment-read values. The default is a deterministic
/// seeded model owned by the world; replay installs a recorded source.
class EnvSource {
 public:
  virtual ~EnvSource() = default;
  /// Return the value for this read, or nullopt to fall back to the
  /// world's default model.
  virtual std::optional<std::uint64_t> next_env(ProcessId pid,
                                                std::string_view key) = 0;
};

}  // namespace fixd::rt
