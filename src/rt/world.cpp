#include "rt/world.hpp"

#include <algorithm>
#include <atomic>

#include "common/hash.hpp"

namespace fixd::rt {

namespace {

/// World-wide unique WorldSnapshot serials (cross-thread: parallel
/// explorer workers snapshot concurrently).
std::atomic<std::uint64_t> g_snapshot_serial{0};

/// Seed of a replay-warm key chain for one snapshot identity.
std::uint64_t replay_chain_seed(std::uint64_t serial) {
  return hash_combine(0x52e91a77c0ffeeull, serial);
}

/// Fold one dispatched event's identity into the chain. The identity
/// (kind + pid + msg + timer) pins the transition exactly: ids are unique
/// while pending/armed, so equal keys mean equal deterministic prefixes.
std::uint64_t replay_fold_event(std::uint64_t acc, const EventDesc& ev) {
  acc = hash_combine(acc, static_cast<std::uint64_t>(ev.kind));
  acc = hash_combine(acc, ev.pid);
  acc = hash_combine(acc, ev.msg);
  return hash_combine(acc, ev.timer);
}

}  // namespace

// ---------------------------------------------------------------------------
// ProcessCheckpoint
// ---------------------------------------------------------------------------

std::uint64_t ProcessCheckpoint::size_bytes() const {
  std::uint64_t n = root.size() + info.size();
  if (heap_snap) {
    // COW cost: the page table (one pointer per page), not the content.
    n += heap_snap->page_count() * sizeof(void*);
  }
  n += heap_bytes.size();
  return n;
}

void ProcessCheckpoint::share_across_threads() const {
  if (xt_marked_.test_and_mark()) return;
  if (heap_snap) heap_snap->share_across_threads();
}

void ProcessCheckpoint::save(BinaryWriter& w) const {
  w.write_bytes(root);
  w.write_bytes(info);
  vclock.save(w);
  w.write_u64(lamport);
  w.write_u64(at);
  w.write_u64(step);
  w.write_u64(capture_serial);
  if (heap_snap) {
    w.write_bool(true);
    BinaryWriter hw;
    heap_snap->save(hw);
    w.write_bytes(hw.bytes());
  } else if (!heap_bytes.empty()) {
    w.write_bool(true);
    w.write_bytes(heap_bytes);
  } else {
    w.write_bool(false);
  }
}

void ProcessCheckpoint::load(BinaryReader& r) {
  root = r.read_bytes();
  info = r.read_bytes();
  vclock.load(r);
  lamport = r.read_u64();
  at = r.read_u64();
  step = r.read_u64();
  capture_serial = r.read_u64();
  digest_memo = {};  // deserialized checkpoints restore cold
  heap_snap.reset();
  heap_bytes.clear();
  if (r.read_bool()) heap_bytes = r.read_bytes();
}

// ---------------------------------------------------------------------------
// WorldSnapshot
// ---------------------------------------------------------------------------

std::uint64_t WorldSnapshot::size_bytes() const {
  std::uint64_t n = 0;
  for (const auto& p : procs) {
    if (p) n += p->size_bytes();
  }
  if (net) n += net->size_bytes();
  return n;
}

void WorldSnapshot::share_across_threads() const {
  for (const auto& p : procs) {
    if (p) p->share_across_threads();
  }
  if (net) net->share_across_threads();
}

// ---------------------------------------------------------------------------
// World::ProcInfo
// ---------------------------------------------------------------------------

void World::ProcInfo::save(BinaryWriter& w) const {
  lamport.save(w);
  vclock.save(w);
  rng.save(w);
  timers.save(w);
  w.write_u64(env_count);
  w.write_u64(handled);
  w.write_bool(started);
  w.write_bool(crashed);
  w.write_bool(halted);
}

void World::ProcInfo::load(BinaryReader& r) {
  lamport.load(r);
  vclock.load(r);
  rng.load(r);
  timers.load(r);
  env_count = r.read_u64();
  handled = r.read_u64();
  started = r.read_bool();
  crashed = r.read_bool();
  halted = r.read_bool();
}

// ---------------------------------------------------------------------------
// Context implementation
// ---------------------------------------------------------------------------

class World::Ctx final : public Context {
 public:
  Ctx(World& w, ProcessId pid) : w_(w), pid_(pid) {}

  ProcessId self() const override { return pid_; }
  std::size_t world_size() const override { return w_.size(); }

  VirtualTime now() override {
    for (auto* o : w_.observers_) o->on_time_read(w_, pid_, w_.now_);
    return w_.now_;
  }

  std::uint64_t random_u64() override {
    std::uint64_t v = w_.infos_[pid_].rng.next_u64();
    for (auto* o : w_.observers_) o->on_rng(w_, pid_, v);
    return v;
  }

  std::uint64_t env_read(std::string_view key) override {
    auto& pi = w_.infos_[pid_];
    std::optional<std::uint64_t> fed;
    if (w_.env_source_) fed = w_.env_source_->next_env(pid_, key);
    std::uint64_t val =
        fed ? *fed : w_.default_env_value(pid_, key, pi.env_count);
    ++pi.env_count;
    std::string k(key);
    for (auto* o : w_.observers_) o->on_env_read(w_, pid_, k, val);
    return val;
  }

  void send(ProcessId dst, net::Tag tag,
            std::vector<std::byte> payload) override {
    FIXD_CHECK_MSG(dst < w_.size(), "send: destination out of range");
    auto& pi = w_.infos_[pid_];
    net::Message m;
    m.src = pid_;
    m.dst = dst;
    m.tag = tag;
    m.payload = std::move(payload);
    m.sent_at = w_.now_;
    pi.lamport.tick();
    m.lamport = pi.lamport.now();
    pi.vclock.tick(pid_);
    m.vclock = pi.vclock;
    if (w_.spec_hooks_) m.spec_taints = w_.spec_hooks_->taints_of(pid_);

    if (w_.observers_.empty()) {
      w_.net_.submit(std::move(m));
    } else {
      net::Message copy = m;
      auto id = w_.net_.submit(std::move(m));
      copy.id = id.value_or(0);  // 0: dropped by the loss policy at submit
      for (auto* o : w_.observers_) o->on_send(w_, copy);
    }
  }

  TimerId set_timer(VirtualTime delay, std::uint32_t kind) override {
    TimerId id = w_.infos_[pid_].timers.arm(w_.now_, delay, kind);
    w_.eidx_sync_timers(pid_);
    return id;
  }

  bool cancel_timer(TimerId id) override {
    bool ok = w_.infos_[pid_].timers.cancel(id);
    if (ok) w_.eidx_sync_timers(pid_);
    return ok;
  }

  std::size_t cancel_timers(std::uint32_t kind) override {
    std::size_t n = w_.infos_[pid_].timers.cancel_by_kind(kind);
    if (n > 0) w_.eidx_sync_timers(pid_);
    return n;
  }

  SpecId spec_begin(std::string_view assumption) override {
    if (!w_.spec_hooks_) return kNoSpec;
    return w_.spec_hooks_->begin(w_, pid_, std::string(assumption));
  }

  void spec_commit(SpecId id) override {
    if (w_.spec_hooks_) w_.spec_hooks_->commit(w_, pid_, id);
  }

  void spec_abort(SpecId id) override {
    if (w_.spec_hooks_) w_.spec_hooks_->abort(w_, pid_, id);
  }

  void annotate(std::string note) override {
    for (auto* o : w_.observers_) o->on_annotation(w_, pid_, note);
  }

  void report_fault(std::string reason) override {
    Violation v;
    v.invariant = "local";
    v.pid = pid_;
    v.detail = std::move(reason);
    v.at = w_.now_;
    v.lamport = w_.infos_[pid_].lamport.now();
    v.step = w_.step_;
    w_.record_violation(std::move(v));
  }

  void halt() override {
    auto& pi = w_.infos_[pid_];
    pi.halted = true;
    pi.timers.clear();
    w_.eidx_sync_proc(pid_);
  }

 private:
  World& w_;
  ProcessId pid_;
};

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(WorldOptions opts)
    : opts_(opts),
      net_(opts.net),
      scheduler_(std::make_unique<FifoScheduler>()) {
  // The enabled-event index consumes the network's deliverable deltas.
  net_.set_deliverable_listener(this);
}

World::~World() = default;

ProcessId World::add_process(std::unique_ptr<Process> p) {
  FIXD_CHECK_MSG(!sealed_, "add_process after seal");
  FIXD_CHECK_MSG(p != nullptr, "add_process: null");
  ProcessId pid = static_cast<ProcessId>(procs_.size());
  p->id_ = pid;
  procs_.push_back(std::move(p));
  ProcInfo pi;
  pi.rng = Rng(hash_combine(opts_.seed, pid));
  infos_.push_back(std::move(pi));
  dcache_.push_back({});
  ckpt_cache_.push_back(nullptr);
  warm_key_.push_back(0);
  warm_ring_.emplace_back();
  eidx_.push_back({});
  return pid;
}

void World::seal() {
  if (sealed_) return;
  sealed_ = true;
  for (auto& pi : infos_) pi.vclock = VectorClock(procs_.size());
  for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
    mark_state_dirty(pid);
    eidx_sync_proc(pid);  // builds the enabled-event index from scratch
  }
}

Process& World::process(ProcessId pid) {
  FIXD_CHECK_MSG(pid < procs_.size(), "bad process id");
  // Conservative: the caller may mutate the process through this reference
  // (fault injection's corrupt_state, the Healer's patches, test pokes).
  // An external mutation also ends replay purity for *downstream* state
  // (later handlers observe its effects), hence the chain break.
  mark_state_dirty(pid);
  replay_break();
  return *procs_[pid];
}

const Process& World::process(ProcessId pid) const {
  FIXD_CHECK_MSG(pid < procs_.size(), "bad process id");
  return *procs_[pid];
}

std::unique_ptr<Process> World::swap_process(ProcessId pid,
                                             std::unique_ptr<Process> fresh) {
  FIXD_CHECK_MSG(pid < procs_.size(), "swap_process: bad id");
  FIXD_CHECK_MSG(fresh != nullptr, "swap_process: null");
  FIXD_CHECK_MSG(!in_handler_, "swap_process during a handler");
  fresh->id_ = pid;
  std::swap(procs_[pid], fresh);
  mark_state_dirty(pid);
  replay_break();
  return fresh;  // now holds the old process
}

World::ProcInfo& World::info(ProcessId pid) {
  FIXD_CHECK_MSG(pid < infos_.size(), "bad process id");
  return infos_[pid];
}

const World::ProcInfo& World::info(ProcessId pid) const {
  FIXD_CHECK_MSG(pid < infos_.size(), "bad process id");
  return infos_[pid];
}

const VectorClock& World::vclock_of(ProcessId pid) const {
  return info(pid).vclock;
}

LamportTime World::lamport_of(ProcessId pid) const {
  return info(pid).lamport.now();
}

const TimerQueue& World::timers_of(ProcessId pid) const {
  return info(pid).timers;
}

void World::set_crashed(ProcessId pid, bool crashed) {
  info(pid).crashed = crashed;
  mark_state_dirty(pid);
  replay_break();
  // Crash (or uncrash) enables/masks every bucket of this process at once.
  eidx_sync_proc(pid);
}

void World::add_observer(RuntimeObserver* obs) {
  FIXD_CHECK(obs != nullptr);
  observers_.push_back(obs);
}

void World::remove_observer(RuntimeObserver* obs) {
  std::erase(observers_, obs);
}

void World::add_interceptor(StepInterceptor* ic) {
  FIXD_CHECK(ic != nullptr);
  interceptors_.push_back(ic);
}

void World::remove_interceptor(StepInterceptor* ic) {
  std::erase(interceptors_, ic);
}

void World::set_scheduler(std::unique_ptr<Scheduler> s) {
  FIXD_CHECK(s != nullptr);
  scheduler_ = std::move(s);
}

void World::record_violation(Violation v) {
  violations_.push_back(std::move(v));
}

std::vector<EventDesc> World::enabled_events_uncached() const {
  FIXD_CHECK_MSG(sealed_, "world not sealed");
  std::vector<EventDesc> cand;

  for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
    const ProcInfo& pi = infos_[pid];
    if (pi.crashed || pi.halted) continue;
    if (!pi.started) {
      EventDesc e;
      e.kind = EventKind::kStart;
      e.pid = pid;
      e.at = 0;
      cand.push_back(e);
    }
  }

  for (MsgId id : net_.deliverable()) {
    const net::Message* m = net_.peek(id);
    const ProcInfo& pi = infos_[m->dst];
    if (pi.crashed || !pi.started) continue;  // waits until dst can receive
    EventDesc e;
    e.kind = EventKind::kDeliver;
    e.pid = m->dst;
    e.msg = id;
    e.at = m->sent_at + m->latency;
    cand.push_back(e);
  }

  for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
    const ProcInfo& pi = infos_[pid];
    if (pi.crashed || pi.halted || !pi.started) continue;
    for (const Timer& t : pi.timers.armed()) {
      EventDesc e;
      e.kind = EventKind::kTimer;
      e.pid = pid;
      e.timer = t.id;
      e.at = t.deadline;
      cand.push_back(e);
    }
  }

  if (opts_.abstract_time || cand.empty()) return cand;

  // Timed mode: only events ready at the current time are enabled; if none
  // is, virtual time warps to the earliest upcoming event group.
  std::vector<EventDesc> ready;
  for (const EventDesc& e : cand) {
    if (e.at <= now_) ready.push_back(e);
  }
  if (!ready.empty()) return ready;
  VirtualTime tmin = cand.front().at;
  for (const EventDesc& e : cand) tmin = std::min(tmin, e.at);
  for (const EventDesc& e : cand) {
    if (e.at == tmin) ready.push_back(e);
  }
  return ready;
}

namespace {

/// The canonical enabled-event order the uncached scan produces: starts
/// by pid, then deliveries by ascending message id, then timers by
/// (pid, deadline, id). The timed-mode selection collects ready events
/// bucket by bucket and re-sorts with this key.
bool enabled_order_less(const EventDesc& a, const EventDesc& b) {
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
  switch (a.kind) {
    case EventKind::kStart:
      return a.pid < b.pid;
    case EventKind::kDeliver:
      return a.msg < b.msg;
    case EventKind::kTimer:
      if (a.pid != b.pid) return a.pid < b.pid;
      if (a.at != b.at) return a.at < b.at;
      return a.timer < b.timer;
  }
  return false;
}

EventDesc make_start(ProcessId pid) {
  EventDesc e;
  e.kind = EventKind::kStart;
  e.pid = pid;
  e.at = 0;
  return e;
}

EventDesc make_deliver(ProcessId pid, MsgId id, VirtualTime at) {
  EventDesc e;
  e.kind = EventKind::kDeliver;
  e.pid = pid;
  e.msg = id;
  e.at = at;
  return e;
}

EventDesc make_timer(ProcessId pid, const Timer& t) {
  EventDesc e;
  e.kind = EventKind::kTimer;
  e.pid = pid;
  e.timer = t.id;
  e.at = t.deadline;
  return e;
}

}  // namespace

std::vector<EventDesc> World::enabled_events() const {
  FIXD_CHECK_MSG(sealed_, "world not sealed");
  if (!use_enabled_index_) return enabled_events_uncached();
  eidx_ensure();
  std::vector<EventDesc> out;

  if (opts_.abstract_time) {
    // Materialize the whole index: every contributor set holds exactly
    // the processes with enabled events of that kind, so this loop is
    // O(enabled), never O(world).
    out.reserve(eidx_starts_.size() + eidx_n_delivs_ + eidx_n_timers_);
    for (ProcessId pid : eidx_starts_) out.push_back(make_start(pid));
    const std::size_t deliv_begin = out.size();
    for (ProcessId pid : eidx_deliv_procs_) {
      const net::DeliverableBucket* b = net_.deliv_bucket(pid);
      for (const auto& [id, e] : b->by_id) {
        out.push_back(make_deliver(pid, id, e.at));
      }
    }
    if (eidx_deliv_procs_.size() > 1) {
      // Per-bucket runs are id-sorted; the canonical order is globally
      // ascending message id across destinations.
      std::sort(out.begin() + deliv_begin, out.end(),
                [](const EventDesc& a, const EventDesc& b) {
                  return a.msg < b.msg;
                });
    }
    for (ProcessId pid : eidx_timer_procs_) {
      for (const Timer& t : infos_[pid].timers.view()) {
        out.push_back(make_timer(pid, t));
      }
    }
    return out;
  }

  // Timed mode. The ready set is {e : e.at <= now}; when that is empty,
  // time warps to the earliest upcoming group {e : e.at == tmin}. Both
  // reduce to a prefix scan at a single cutoff over each bucket's
  // at-keyed ordering: since tmin is the global minimum, at <= tmin is
  // the same set as at == tmin.
  if (eidx_starts_.empty() && eidx_n_delivs_ == 0 && eidx_n_timers_ == 0) {
    return out;
  }
  VirtualTime tmin = ~VirtualTime{0};
  if (!eidx_starts_.empty()) tmin = 0;  // start events are ready at 0
  for (ProcessId pid : eidx_deliv_procs_) {
    tmin = std::min(tmin, net_.deliv_bucket(pid)->min_at());
  }
  for (ProcessId pid : eidx_timer_procs_) {
    tmin = std::min(tmin, infos_[pid].timers.view().front().deadline);
  }
  const VirtualTime cutoff = tmin <= now_ ? now_ : tmin;

  for (ProcessId pid : eidx_starts_) out.push_back(make_start(pid));
  for (ProcessId pid : eidx_deliv_procs_) {
    const auto& by_at = net_.deliv_bucket(pid)->at_view();
    for (auto it = by_at.begin(); it != by_at.end() && it->first <= cutoff;
         ++it) {
      out.push_back(make_deliver(pid, it->second, it->first));
    }
  }
  for (ProcessId pid : eidx_timer_procs_) {
    for (const Timer& t : infos_[pid].timers.view()) {
      if (t.deadline > cutoff) break;  // (deadline, id) sorted
      out.push_back(make_timer(pid, t));
    }
  }
  std::sort(out.begin(), out.end(), enabled_order_less);
  return out;
}

bool World::quiescent() const {
  FIXD_CHECK_MSG(sealed_, "world not sealed");
  if (!use_enabled_index_) return enabled_events_uncached().empty();
  eidx_ensure();
  // In timed mode a nonempty candidate set always produces a nonempty
  // ready set (the warp), so the abstract counters decide both modes.
  return eidx_starts_.empty() && eidx_n_delivs_ == 0 && eidx_n_timers_ == 0;
}

bool World::step() {
  auto enabled = enabled_events();
  if (enabled.empty()) return false;
  std::size_t idx = scheduler_->choose(enabled, *this);
  FIXD_CHECK_MSG(idx < enabled.size(), "scheduler chose out of range");
  dispatch(enabled[idx]);
  return true;
}

RunResult World::run(std::uint64_t max_steps) {
  // Note: a world where every process has halted but deliveries are still
  // pending keeps draining them (halted processes handle messages; they
  // just initiate nothing) — stopping early would hide faults that manifest
  // in the last in-flight messages.
  RunResult res;
  while (true) {
    if (opts_.stop_on_violation && has_violation()) {
      res.reason = StopReason::kViolation;
      return res;
    }
    if (res.steps >= max_steps) {
      res.reason = StopReason::kMaxSteps;
      return res;
    }
    if (!step()) {
      res.reason = all_halted() ? StopReason::kAllHalted
                                : StopReason::kQuiescent;
      return res;
    }
    ++res.steps;
  }
}

void World::execute_event(const EventDesc& ev) {
  switch (ev.kind) {
    case EventKind::kStart:
      FIXD_CHECK_MSG(!info(ev.pid).started, "execute: already started");
      break;
    case EventKind::kDeliver:
      FIXD_CHECK_MSG(net_.peek(ev.msg) != nullptr, "execute: no such message");
      break;
    case EventKind::kTimer:
      FIXD_CHECK_MSG(info(ev.pid).timers.find(ev.timer) != nullptr,
                     "execute: timer not armed");
      break;
  }
  dispatch(ev);
}

bool World::all_halted() const {
  for (const auto& pi : infos_) {
    if (!pi.halted && !pi.crashed) return false;
  }
  return !infos_.empty();
}

void World::run_handler(ProcessId pid,
                        const std::function<void(Context&)>& body) {
  Ctx ctx(*this, pid);
  in_handler_ = true;
  try {
    body(ctx);
  } catch (...) {
    in_handler_ = false;
    throw;
  }
  in_handler_ = false;
}

void World::dispatch(const EventDesc& ev) {
  FIXD_CHECK_MSG(!in_handler_, "reentrant dispatch");
  now_ = std::max(now_, ev.at);
  // Every dispatch path below mutates ev.pid's state (flags, clocks,
  // timers, RNG, root, heap); other processes change only through World
  // APIs that mark themselves. The dirty mark must come *after* the
  // before_event interceptors: a CIC checkpoint taken there may warm the
  // capture/digest caches with the (still-unmutated) pre-event state, and
  // marking first would let that warmth survive the handler's mutations.

  // Replay warming: this event extends the deterministic prefix executed
  // since the last snapshot restore, so derive its key up front (sends
  // inside the handler key their messages against it) and commit it at
  // the end — unless something mid-event broke purity (a spec rollback, a
  // hook mutating through the public accessors), in which case the chain
  // is already dead and the key is discarded.
  const std::uint64_t acc0 = replay_acc_;
  std::uint64_t rk = replay_keyable() ? replay_fold_event(acc0, ev) : 0;
  if (rk != 0 && !interceptors_.empty()) {
    // Pure interceptors (replay_keyable admits no other kind) may mutate
    // the world as a deterministic function of their own state; fold that
    // state into the key so equal keys keep meaning equal downstream
    // content even across injected schedules.
    for (const StepInterceptor* ic : interceptors_) {
      rk = hash_combine(rk, ic->replay_state_digest());
    }
  }
  if (rk) {
    net_.begin_warm_step(rk);
  } else {
    // Clear any stale step key (a prior dispatch that ended by
    // exception, or a chain broken mid-event, must not key this event's
    // sends under the old identity).
    net_.end_warm_step();
  }
  const auto commit_replay_key = [&] {
    if (!rk) return;
    net_.end_warm_step();
    if (replay_acc_ == acc0) {
      replay_acc_ = rk;
      warm_key_[ev.pid] = rk;
    }
  };

  bool suppressed = false;
  for (auto* ic : interceptors_) {
    if (!ic->before_event(*this, ev)) {
      suppressed = true;
      break;
    }
  }
  if (suppressed) {
    mark_state_dirty(ev.pid);
    // Consume the event without running its handler (crash/loss injection).
    switch (ev.kind) {
      case EventKind::kStart:
        infos_[ev.pid].started = true;
        eidx_sync_proc(ev.pid);
        break;
      case EventKind::kDeliver: {
        // A timeout fault may have *deferred* this delivery (pushed its
        // ready time past now_) rather than suppressed it; dropping would
        // turn a delay into a loss. Deferred messages stay pending. For
        // every pre-existing fault kind the message is still ready here
        // (enabled events have at <= now_ after the warp), so the drop
        // fires exactly as before.
        const net::Message* m = net_.peek(ev.msg);
        if (m != nullptr && m->sent_at + m->latency <= now_) {
          net_.drop(ev.msg, /*forced=*/true);  // index delta via listener
        }
        break;
      }
      case EventKind::kTimer: {
        // Same for a retimed timer: a deadline now in the future means a
        // fault stretched the timeout, and the timer must stay armed.
        const Timer* t = infos_[ev.pid].timers.find(ev.timer);
        if (t != nullptr && t->deadline <= now_) {
          infos_[ev.pid].timers.cancel(ev.timer);
        }
        eidx_sync_timers(ev.pid);
        break;
      }
    }
    ++step_;
    for (auto* ic : interceptors_) ic->after_event(*this, ev);
    // Reachable while keyed only via pure interceptors (suppression is
    // their doing); the suppression outcome above is a deterministic
    // function of (world, interceptor state, event), all folded into rk.
    commit_replay_key();
    return;
  }

  for (auto* o : observers_) o->on_event(*this, ev);

  mark_state_dirty(ev.pid);
  ProcInfo& pi = infos_[ev.pid];
  switch (ev.kind) {
    case EventKind::kStart: {
      pi.started = true;
      // Unmask before the handler runs: its sends/timer arms must land in
      // an index that already sees the process as started.
      eidx_sync_proc(ev.pid);
      pi.lamport.tick();
      pi.vclock.tick(ev.pid);
      run_handler(ev.pid,
                  [&](Context& c) { procs_[ev.pid]->on_start(c); });
      break;
    }
    case EventKind::kDeliver: {
      if (spec_hooks_) spec_hooks_->before_deliver(*this, *net_.peek(ev.msg));
      net::Message msg = net_.take(ev.msg);
      pi.lamport.merge(msg.lamport);
      pi.vclock.merge(msg.vclock, ev.pid);
      for (auto* o : observers_) o->on_deliver(*this, msg);
      run_handler(ev.pid,
                  [&](Context& c) { procs_[ev.pid]->on_message(c, msg); });
      break;
    }
    case EventKind::kTimer: {
      Timer t = pi.timers.take(ev.timer);
      eidx_sync_timers(ev.pid);
      pi.lamport.tick();
      pi.vclock.tick(ev.pid);
      run_handler(ev.pid,
                  [&](Context& c) { procs_[ev.pid]->on_timer(c, t); });
      break;
    }
  }
  ++pi.handled;
  ++step_;

  if (spec_hooks_) spec_hooks_->apply_deferred(*this);
  check_invariants(ev.pid, ev);
  for (auto* ic : interceptors_) ic->after_event(*this, ev);
  commit_replay_key();
}

void World::recheck_invariants() {
  for (const auto& li : invariants_.locals()) {
    std::vector<ProcessId> targets;
    if (li.pid == kNoProcess) {
      for (ProcessId p = 0; p < procs_.size(); ++p) targets.push_back(p);
    } else {
      targets.push_back(li.pid);
    }
    for (ProcessId target : targets) {
      auto r = li.fn(*procs_[target]);
      if (r) {
        Violation v;
        v.invariant = li.name;
        v.pid = target;
        v.detail = *r;
        v.at = now_;
        v.lamport = infos_[target].lamport.now();
        v.step = step_;
        record_violation(std::move(v));
      }
    }
  }
  for (const auto& gi : invariants_.globals()) {
    auto r = gi.fn(*this);
    if (r) {
      Violation v;
      v.invariant = gi.name;
      v.pid = kNoProcess;
      v.detail = *r;
      v.at = now_;
      v.step = step_;
      record_violation(std::move(v));
    }
  }
}

void World::check_invariants(ProcessId pid, const EventDesc& ev) {
  (void)ev;
  for (const auto& li : invariants_.locals()) {
    ProcessId target = li.pid == kNoProcess ? pid : li.pid;
    if (li.pid != kNoProcess && li.pid != pid) continue;
    auto r = li.fn(*procs_[target]);
    if (r) {
      Violation v;
      v.invariant = li.name;
      v.pid = target;
      v.detail = *r;
      v.at = now_;
      v.lamport = infos_[target].lamport.now();
      v.step = step_;
      record_violation(std::move(v));
    }
  }
  if (opts_.check_global_invariants) {
    for (const auto& gi : invariants_.globals()) {
      auto r = gi.fn(*this);
      if (r) {
        Violation v;
        v.invariant = gi.name;
        v.pid = kNoProcess;
        v.detail = *r;
        v.at = now_;
        v.step = step_;
        record_violation(std::move(v));
      }
    }
  }
}

std::uint64_t default_env_value(std::uint64_t env_seed, ProcessId pid,
                                std::string_view key, std::uint64_t count) {
  Hasher h(env_seed);
  h.update_u64(pid);
  h.update_string(key);
  h.update_u64(count);
  return h.digest();
}

std::uint64_t World::default_env_value(ProcessId pid, std::string_view key,
                                       std::uint64_t count) const {
  return rt::default_env_value(opts_.env_seed, pid, key, count);
}

void World::notify_spec_event(ProcessId pid, SpecId spec,
                              RuntimeObserver::SpecOp op) {
  for (auto* o : observers_) o->on_spec(*this, pid, spec, op);
}

void World::notify_spec_aborted(ProcessId pid, SpecId spec,
                                const std::string& assumption) {
  ProcInfo& pi = infos_[pid];
  mark_state_dirty(pid);
  replay_break();
  pi.lamport.tick();
  pi.vclock.tick(pid);
  run_handler(pid, [&](Context& c) {
    procs_[pid]->on_spec_aborted(c, spec, assumption);
  });
}

// ---------------------------------------------------------------------------
// Enabled-event index maintenance
// ---------------------------------------------------------------------------
//
// Each resync recomputes one process's eligibility and bucket size from
// the authoritative state (flags, TimerQueue, network deliverable index),
// diffs against the cached contribution (EIdxProc), and adjusts the
// global sets/counters by the delta — so a resync never needs to look at
// any other process.

void World::eidx_sync_start(ProcessId pid) const {
  if (pid >= eidx_.size() || !eidx_valid_) return;
  EIdxProc& e = eidx_[pid];
  const bool member = start_eligible(infos_[pid]);
  if (member == e.start) return;
  if (member) {
    eidx_starts_.insert(pid);
  } else {
    eidx_starts_.erase(pid);
  }
  e.start = member;
}

void World::eidx_sync_delivs(ProcessId pid) const {
  if (pid >= eidx_.size() || !eidx_valid_) return;
  // While the network index is invalidated (a restore/load replaced the
  // in-flight state), contributions are deliberately left stale: querying
  // the bucket here would force the rebuild per touched process, and
  // eidx_ensure() resyncs everyone wholesale at the next materialization.
  if (!net_.deliv_index_valid()) return;
  EIdxProc& e = eidx_[pid];
  const std::size_t n =
      deliv_eligible(infos_[pid]) ? net_.deliv_bucket_size(pid) : 0;
  const bool member = n > 0;
  if (member != e.deliv) {
    if (member) {
      eidx_deliv_procs_.insert(pid);
    } else {
      eidx_deliv_procs_.erase(pid);
    }
    e.deliv = member;
  }
  eidx_n_delivs_ += n - e.delivs;
  e.delivs = n;
}

void World::eidx_sync_timers(ProcessId pid) const {
  if (pid >= eidx_.size() || !eidx_valid_) return;
  EIdxProc& e = eidx_[pid];
  const std::size_t n =
      timer_eligible(infos_[pid]) ? infos_[pid].timers.size() : 0;
  const bool member = n > 0;
  if (member != e.timer) {
    if (member) {
      eidx_timer_procs_.insert(pid);
    } else {
      eidx_timer_procs_.erase(pid);
    }
    e.timer = member;
  }
  eidx_n_timers_ += n - e.timers;
  e.timers = n;
}

void World::on_deliverable_add(ProcessId dst, MsgId id,
                               const net::DeliverableEntry& e) {
  (void)id;
  (void)e;
  eidx_sync_delivs(dst);
}

void World::on_deliverable_remove(ProcessId dst, MsgId id) {
  (void)id;
  eidx_sync_delivs(dst);
}

void World::eidx_ensure() const {
  net_.ensure_deliv_index();
  if (eidx_valid_ && eidx_net_epoch_ == net_.deliv_epoch()) return;
  // Something was invalidated wholesale — the network index (restore/
  // load) and/or the per-process contributions (a process restore, which
  // can flip lifecycle flags and so stale all three kinds). Re-derive
  // every process against the current truth. The aggregates stay
  // internally consistent throughout (they always equal the sum of the
  // cached contributions), so per-process resyncs in any order land on
  // the exact index. O(processes · log); once per invalidation burst,
  // not per call.
  eidx_valid_ = true;  // re-arm the per-site resyncs before using them
  for (ProcessId pid = 0; pid < eidx_.size(); ++pid) eidx_sync_proc(pid);
  eidx_net_epoch_ = net_.deliv_epoch();
}

// ---------------------------------------------------------------------------
// State capture
// ---------------------------------------------------------------------------

ProcessCheckpoint World::capture_process(ProcessId pid, bool cow) {
  FIXD_CHECK_MSG(pid < procs_.size(), "capture: bad id");
  ProcessCheckpoint c;
  BinaryWriter rw;
  procs_[pid]->save_root(rw);
  c.root = rw.take();
  if (mem::PagedHeap* h = procs_[pid]->cow_heap()) {
    if (cow) {
      c.heap_snap = h->snapshot();
    } else {
      BinaryWriter hw;
      h->save(hw);
      c.heap_bytes = hw.take();
    }
  }
  BinaryWriter iw;
  infos_[pid].save(iw);
  c.info = iw.take();
  c.vclock = infos_[pid].vclock;
  c.lamport = infos_[pid].lamport.now();
  c.at = now_;
  c.step = step_;
  c.capture_serial = ++capture_seq_;
  // Whatever digest components are warm now describe exactly the content
  // captured above, so the checkpoint can re-warm the cache on restore.
  c.digest_memo = dcache_[pid];
  return c;
}

bool World::capture_cache_valid(ProcessId pid) const {
  const auto& c = ckpt_cache_[pid];
  if (!c) return false;
  if (const mem::PagedHeap* h = procs_[pid]->cow_heap()) {
    // The heap may have been written through a stashed pointer without the
    // world's dirty bit firing; both digests below are memoized, so this
    // check costs O(pages touched since capture), usually O(1).
    if (!c->heap_snap || c->heap_snap->digest() != h->digest()) return false;
  }
  return true;
}

std::shared_ptr<const ProcessCheckpoint> World::warm_lookup(
    ProcessId pid) const {
  const std::uint64_t key = warm_key_[pid];
  for (const ReplayWarmSlot& s : warm_ring_[pid].slots) {
    if (s.key != key || !s.ckpt) continue;
    // The key is content-addressed by construction (determinism makes
    // (snapshot, prefix) → state a function), but a hash collision must
    // degrade to a fresh capture, never a wrong share: validate the cheap
    // invariant fields, and the heap through its self-invalidating digest
    // (which also covers stashed-pointer heap writes the dirty bit
    // misses — the same guard capture_cache_valid uses).
    if (s.ckpt->vclock != infos_[pid].vclock) continue;
    if (s.ckpt->lamport != infos_[pid].lamport.now()) continue;
    if (const mem::PagedHeap* h = procs_[pid]->cow_heap()) {
      if (!s.ckpt->heap_snap || s.ckpt->heap_snap->digest() != h->digest()) {
        continue;
      }
    }
    return s.ckpt;
  }
  return nullptr;
}

void World::warm_insert(ProcessId pid,
                        const std::shared_ptr<const ProcessCheckpoint>& ckpt) {
  ReplayWarmRing& r = warm_ring_[pid];
  r.slots[r.next] = {warm_key_[pid], ckpt};
  r.next = static_cast<std::uint8_t>((r.next + 1) % kReplayWarmSlots);
}

std::shared_ptr<const ProcessCheckpoint> World::capture_process_shared(
    ProcessId pid) {
  FIXD_CHECK_MSG(pid < procs_.size(), "capture: bad id");
  if (capture_cache_valid(pid)) return ckpt_cache_[pid];
  // Replay-warmed path: a previous deterministic replay of the same
  // prefix already captured exactly this content — share its checkpoint
  // instead of allocating a bit-identical copy (this is what makes
  // sibling trail anchors share entries).
  if (replay_warm_on_ && warm_key_[pid] != 0) {
    if (auto hit = warm_lookup(pid)) {
      ++warm_hits_;
      // The hit's memo describes this very content; adopt any component
      // the live cache lost (conservative: valid-only, like restore).
      ProcDigestMemo& d = dcache_[pid];
      if (!d.full_valid && hit->digest_memo.full_valid) {
        d.full = hit->digest_memo.full;
        d.full_valid = true;
      }
      if (!d.mc_valid && hit->digest_memo.mc_valid) {
        d.mc = hit->digest_memo.mc;
        d.mc_valid = true;
      }
      ckpt_cache_[pid] = hit;
      return hit;
    }
    ++warm_misses_;
  }
  auto sp = std::make_shared<const ProcessCheckpoint>(
      capture_process(pid, /*cow=*/true));
  ckpt_cache_[pid] = sp;
  if (replay_warm_on_ && warm_key_[pid] != 0) warm_insert(pid, sp);
  return sp;
}

void World::set_replay_warm(bool on) {
  replay_warm_on_ = on;
  // Toggling either way clears all warm state: rings drop their retained
  // checkpoints, keys die, and the chain re-seeds at the next restore.
  replay_acc_ = 0;
  std::fill(warm_key_.begin(), warm_key_.end(), 0);
  for (ReplayWarmRing& r : warm_ring_) r = ReplayWarmRing{};
  net_.set_replay_warm(on);
}

bool World::model_drop_message(MsgId id) {
  if (replay_keyable()) {
    replay_acc_ = hash_combine(replay_acc_, 0xd40bull ^ mix64(id));
  }
  return net_.drop(id, /*forced=*/true);
}

std::optional<MsgId> World::model_duplicate_message(MsgId id) {
  const std::uint64_t rk =
      replay_keyable() ? hash_combine(replay_acc_, 0xd0b1ull ^ mix64(id)) : 0;
  if (rk) net_.begin_warm_step(rk);
  auto r = net_.duplicate(id);
  if (rk) {
    net_.end_warm_step();
    replay_acc_ = rk;
  }
  return r;
}

bool World::model_delay_message(MsgId id, VirtualTime extra) {
  if (replay_keyable()) {
    replay_acc_ = hash_combine(replay_acc_,
                               0xde1aull ^ hash_combine(mix64(id), extra));
  }
  return net_.delay(id, extra);
}

bool World::model_cancel_timer(ProcessId pid, TimerId id) {
  FIXD_CHECK_MSG(pid < procs_.size(), "model_cancel_timer: bad id");
  const std::uint64_t rk =
      replay_keyable()
          ? hash_combine(replay_acc_, 0xca9cull ^ hash_combine(pid, id))
          : 0;
  mark_state_dirty(pid);
  bool ok = infos_[pid].timers.cancel(id);
  eidx_sync_timers(pid);
  if (rk) {
    // Commit like dispatch does: the new content is the deterministic
    // function of (snapshot, actions...), so sibling replays may share
    // the capture under this key.
    replay_acc_ = rk;
    warm_key_[pid] = rk;
  }
  return ok;
}

bool World::model_cut_link(ProcessId src, ProcessId dst) {
  if (replay_keyable()) {
    replay_acc_ =
        hash_combine(replay_acc_, 0x9a27ull ^ hash_combine(src, dst));
  }
  return net_.cut_link(src, dst);
}

bool World::model_heal_link(ProcessId src, ProcessId dst) {
  if (replay_keyable()) {
    replay_acc_ =
        hash_combine(replay_acc_, 0x4ea1ull ^ hash_combine(src, dst));
  }
  return net_.heal_link(src, dst);
}

bool World::model_restart_process(ProcessId pid) {
  FIXD_CHECK_MSG(pid < procs_.size(), "model_restart_process: bad id");
  if (!infos_[pid].crashed) return false;
  const std::uint64_t rk =
      replay_keyable() ? hash_combine(replay_acc_, 0x4e57ull ^ mix64(pid))
                       : 0;
  mark_state_dirty(pid);
  infos_[pid].crashed = false;
  eidx_sync_proc(pid);
  if (rk) {
    replay_acc_ = rk;
    warm_key_[pid] = rk;
  }
  return true;
}

bool World::retime_timer(ProcessId pid, TimerId id,
                         VirtualTime new_deadline) {
  FIXD_CHECK_MSG(pid < procs_.size(), "retime_timer: bad id");
  replay_break();
  mark_state_dirty(pid);
  bool ok = infos_[pid].timers.retime(id, new_deadline);
  eidx_sync_timers(pid);
  return ok;
}

bool World::cancel_timer(ProcessId pid, TimerId id) {
  FIXD_CHECK_MSG(pid < procs_.size(), "cancel_timer: bad id");
  replay_break();
  mark_state_dirty(pid);
  bool ok = infos_[pid].timers.cancel(id);
  eidx_sync_timers(pid);
  return ok;
}

bool World::verify_capture_cache(ProcessId pid) const {
  FIXD_CHECK_MSG(pid < procs_.size(), "verify: bad id");
  const auto& c = ckpt_cache_[pid];
  if (!c) return true;  // a cold cache is trivially consistent
  BinaryWriter w;
  procs_[pid]->save_root(w);
  auto equals = [](const std::vector<std::byte>& a,
                   const std::vector<std::byte>& b) {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  };
  if (!equals(w.bytes(), c->root)) return false;
  BinaryWriter iw;
  infos_[pid].save(iw);
  if (!equals(iw.bytes(), c->info)) return false;
  if (c->vclock != infos_[pid].vclock) return false;
  if (c->lamport != infos_[pid].lamport.now()) return false;
  const mem::PagedHeap* h = procs_[pid]->cow_heap();
  if (h != nullptr) {
    if (!c->heap_snap && c->heap_bytes.empty()) return false;
    // Bit-exact content compare through the shared wire format (a
    // HeapSnapshot serializes identically to the heap it captured).
    BinaryWriter hw;
    h->save(hw);
    if (c->heap_snap) {
      BinaryWriter sw;
      c->heap_snap->save(sw);
      if (!equals(hw.bytes(), sw.bytes())) return false;
    } else if (!equals(hw.bytes(), c->heap_bytes)) {
      return false;
    }
  }
  return true;
}

void World::restore_process(ProcessId pid, const ProcessCheckpoint& ckpt) {
  FIXD_CHECK_MSG(pid < procs_.size(), "restore: bad id");
  // State motion outside the dispatched-event stream: the replay chain
  // dies here; restore(WorldSnapshot) re-seeds it after the last process.
  replay_break();
  BinaryReader rr(ckpt.root);
  procs_[pid]->load_root(rr);
  mem::PagedHeap* h = procs_[pid]->cow_heap();
  if (ckpt.heap_snap) {
    FIXD_CHECK_MSG(h != nullptr, "restore: checkpoint has heap, process not");
    h->restore(*ckpt.heap_snap);
  } else if (!ckpt.heap_bytes.empty()) {
    FIXD_CHECK_MSG(h != nullptr, "restore: checkpoint has heap, process not");
    BinaryReader hr(ckpt.heap_bytes);
    h->load(hr);
  }
  BinaryReader ir(ckpt.info);
  infos_[pid].load(ir);
  // The restored info may have flipped lifecycle flags and replaced the
  // timer set wholesale. Flag-only invalidation: this rides the
  // explorer's restore-per-transition path, so the full resync is
  // deferred to eidx_ensure() at the next enabled-set materialization.
  eidx_valid_ = false;
  // Adopt the checkpoint's memo: it matches the content just restored
  // (cold components stay cold, which is the conservative direction).
  dcache_[pid] = ckpt.digest_memo;
  // The content changed; a by-value checkpoint cannot re-warm the capture
  // cache (no shared handle) — the shared overload below re-warms it.
  ckpt_cache_[pid].reset();
  warm_key_[pid] = 0;  // content no longer matches any replay key
}

void World::restore_process(
    ProcessId pid, const std::shared_ptr<const ProcessCheckpoint>& ckpt) {
  FIXD_CHECK_MSG(ckpt != nullptr, "restore: null checkpoint");
  if (ckpt_cache_[pid] == ckpt && capture_cache_valid(pid)) {
    return;  // the process already holds exactly this content
  }
  restore_process(pid, *ckpt);
  // Re-warm: the process now holds exactly this checkpoint's content, so
  // the next snapshot() shares the entry instead of re-capturing. Only COW
  // captures qualify — a serialized-heap checkpoint has no page table to
  // validate against, so it restores cold.
  if (ckpt->heap_snap || procs_[pid]->cow_heap() == nullptr) {
    ckpt_cache_[pid] = ckpt;
  }
}

WorldSnapshot World::snapshot(bool cow) {
  WorldSnapshot s;
  s.procs.reserve(procs_.size());
  for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
    if (cow) {
      s.procs.push_back(capture_process_shared(pid));
    } else {
      s.procs.push_back(std::make_shared<const ProcessCheckpoint>(
          capture_process(pid, /*cow=*/false)));
    }
  }
  s.net = net_.snapshot();
  s.now = now_;
  s.step = step_;
  s.serial = g_snapshot_serial.fetch_add(1, std::memory_order_relaxed) + 1;
  return s;
}

void World::restore(const WorldSnapshot& snap) {
  FIXD_CHECK_MSG(snap.procs.size() == procs_.size(),
                 "snapshot process count mismatch");
  for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
    restore_process(pid, snap.procs[pid]);
  }
  net_.restore(snap.net);
  now_ = snap.now;
  step_ = snap.step;
  // Re-seed the replay-warm chain on this snapshot's identity: the world
  // now holds exactly its content, so a deterministic re-execution from
  // here derives content-faithful per-event keys. Hand-built snapshots
  // (serial 0) and disabled warming leave the chain dead.
  replay_acc_ = (replay_warm_on_ && snap.serial != 0)
                    ? replay_chain_seed(snap.serial)
                    : 0;
}

std::unique_ptr<World> World::clone() {
  WorldSnapshot snap = snapshot(/*cow=*/true);
  return clone_from_snapshot(snap);
}

std::unique_ptr<World> World::clone_from_snapshot(
    const WorldSnapshot& snap) const {
  auto w = std::make_unique<World>(opts_);
  for (const auto& p : procs_) w->add_process(p->clone_behavior());
  w->seal();
  w->restore(snap);
  return w;
}

// Per-process component of digest(): root bytes plus full runtime info.
// Serializes into the shared scratch writer (no per-call allocation once
// the buffer has grown to working size).
std::uint64_t World::proc_full_digest(ProcessId pid) const {
  BinaryWriter& w = digest_scratch_;
  Hasher h;
  w.clear();
  procs_[pid]->save_root(w);
  h.update(w.bytes());
  w.clear();
  infos_[pid].save(w);
  h.update(w.bytes());
  return h.digest();
}

// Per-process component of mc_digest(): root bytes plus the canonical
// (path-noise-free) subset of runtime info.
std::uint64_t World::proc_mc_digest(ProcessId pid) const {
  BinaryWriter& w = digest_scratch_;
  Hasher h;
  w.clear();
  procs_[pid]->save_root(w);
  h.update(w.bytes());
  const ProcInfo& pi = infos_[pid];
  h.update_u64((pi.started ? 1 : 0) | (pi.crashed ? 2 : 0) |
               (pi.halted ? 4 : 0));
  w.clear();
  pi.rng.save(w);
  h.update(w.bytes());
  h.update_u64(pi.env_count);
  // Armed timers: kinds in armed order (ids/deadlines are path noise).
  for (const Timer& t : pi.timers.view()) h.update_u64(t.kind);
  return h.digest();
}

std::uint64_t World::digest_impl(bool cached) const {
  Hasher h;
  h.update_u64(now_);
  h.update_u64(step_);
  for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
    std::uint64_t pd;
    if (cached) {
      ProcDigestMemo& e = dcache_[pid];
      if (!e.full_valid) {
        e.full = proc_full_digest(pid);
        e.full_valid = true;
      }
      pd = e.full;
    } else {
      pd = proc_full_digest(pid);
    }
    h.update_u64(pd);
    // The heap digest is folded fresh each call: PagedHeap invalidates
    // itself on every write, so heap content is covered even when the
    // mutation bypassed the World API (e.g. via a stashed reference).
    if (const mem::PagedHeap* heap = procs_[pid]->cow_heap()) {
      h.update_u64(cached ? heap->digest() : heap->digest_uncached());
    }
  }
  h.update_u64(cached ? net_.digest() : net_.digest_uncached());
  return h.digest();
}

std::uint64_t World::mc_digest_impl(bool cached) const {
  Hasher h;
  for (ProcessId pid = 0; pid < procs_.size(); ++pid) {
    std::uint64_t pd;
    if (cached) {
      ProcDigestMemo& e = dcache_[pid];
      if (!e.mc_valid) {
        e.mc = proc_mc_digest(pid);
        e.mc_valid = true;
      }
      pd = e.mc;
    } else {
      pd = proc_mc_digest(pid);
    }
    h.update_u64(pd);
    if (const mem::PagedHeap* heap = procs_[pid]->cow_heap()) {
      h.update_u64(cached ? heap->digest() : heap->digest_uncached());
    }
    h.update_u64(0x7133);  // separator
  }
  // In-flight messages as an order-independent multiset accumulator (the
  // wrapping sum of mixed content digests, maintained incrementally by
  // SimNetwork) — O(1) per call instead of re-sorting per-message digests.
  h.update_u64(cached ? net_.content_digest_acc()
                      : net_.content_digest_acc_uncached());
  // The partition mask gates enabledness, so two states differing only in
  // blocked links must never dedup together.
  h.update_u64(net_.links_digest());
  return h.digest();
}

std::uint64_t World::digest() const { return digest_impl(/*cached=*/true); }

std::uint64_t World::digest_uncached() const {
  return digest_impl(/*cached=*/false);
}

std::uint64_t World::mc_digest() const {
  return mc_digest_impl(/*cached=*/true);
}

std::uint64_t World::mc_digest_uncached() const {
  return mc_digest_impl(/*cached=*/false);
}

}  // namespace fixd::rt
