// Per-process virtual-time timers.
//
// Timers model timeouts — the classic source of distributed races (a timeout
// firing concurrently with the message it was waiting for). In timed mode a
// timer becomes ready when virtual time reaches its deadline; in the
// Investigator's abstract-time mode every armed timer is an enabled action,
// which is precisely how timeout races enter the explored state space.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace fixd::rt {

struct Timer {
  TimerId id = 0;
  VirtualTime deadline = 0;
  /// Application-chosen label so handlers can distinguish timers.
  std::uint32_t kind = 0;
};

/// Ordered collection of armed timers for one process.
class TimerQueue {
 public:
  /// Arm a timer `delay` after `now`; returns its id.
  TimerId arm(VirtualTime now, VirtualTime delay, std::uint32_t kind = 0);

  /// Disarm; returns false if the timer was not armed.
  bool cancel(TimerId id);

  /// Disarm all timers with the given kind; returns how many were removed.
  /// Kind-based timers let applications avoid storing raw TimerIds in their
  /// state, which keeps model-checker state canonicalization effective
  /// (ids are path-dependent counters; kinds are not).
  std::size_t cancel_by_kind(std::uint32_t kind);

  /// Remove a fired timer (must be armed).
  Timer take(TimerId id);

  /// Move an armed timer to a new absolute deadline, preserving id and
  /// kind. Returns false if the timer is not armed. This is the hook the
  /// timeout-fault injector uses to stretch/shrink a pending timeout.
  bool retime(TimerId id, VirtualTime new_deadline);

  const Timer* find(TimerId id) const;

  /// All armed timers, sorted by (deadline, id). Returns a copy; prefer
  /// view() on hot paths.
  std::vector<Timer> armed() const;

  /// Zero-copy view of the armed timers, sorted by (deadline, id). The
  /// sorted order doubles as the at-keyed ordering the timed-mode
  /// enabled-set selection iterates (prefix of ready deadlines).
  const std::vector<Timer>& view() const { return timers_; }

  std::optional<VirtualTime> earliest_deadline() const;

  std::size_t size() const { return timers_.size(); }
  void clear() { timers_.clear(); }

  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  std::vector<Timer> timers_;  // kept sorted by (deadline, id)
  TimerId next_id_ = 1;
};

}  // namespace fixd::rt
