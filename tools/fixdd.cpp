// fixdd — the FixD investigation daemon.
//
// Long-running service hosting investigation jobs over registered scenario
// families, with durable journals, lease supervision, and a deterministic
// transport fault shim. See docs/SERVICE.md.
//
// Usage:
//   fixdd --endpoint unix:/tmp/fixdd.sock --state-dir /var/lib/fixdd
//         [--lease-ms 2000] [--workers 2] [--shim drop=0.2,seed=7]
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "svc/jobd.hpp"

namespace {

fixd::svc::Daemon* g_daemon = nullptr;

void handle_term(int) {
  // SIGTERM = graceful drain. SIGKILL (the crash the journal exists for)
  // never reaches us, by definition.
  if (g_daemon != nullptr) g_daemon->stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --endpoint <unix:/path|tcp:HOST:PORT> "
               "--state-dir <dir> [--lease-ms N] [--workers N] "
               "[--shim SPEC] [--log-capacity N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fixd::svc::DaemonOptions opts;
  std::string endpoint_spec = "unix:/tmp/fixdd.sock";
  opts.state_dir = "/tmp/fixdd-state";
  std::string shim_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--endpoint") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      endpoint_spec = v;
    } else if (arg == "--state-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opts.state_dir = v;
    } else if (arg == "--lease-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opts.lease_ms = std::stoull(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opts.worker_threads = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--shim") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      shim_spec = v;
    } else if (arg == "--log-capacity") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opts.log_capacity = std::stoul(v);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "fixdd: unknown argument %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  try {
    opts.endpoint = fixd::svc::Endpoint::parse(endpoint_spec);
    opts.shim = fixd::svc::FaultShimSpec::parse(shim_spec);
    fixd::svc::Daemon daemon(opts);
    g_daemon = &daemon;
    std::signal(SIGTERM, handle_term);
    std::signal(SIGINT, handle_term);
    // Announce the bound endpoint (tcp port 0 resolves at bind) so
    // scripts can scrape it.
    std::printf("fixdd: serving on %s state-dir=%s\n",
                daemon.endpoint().to_string().c_str(),
                opts.state_dir.c_str());
    std::fflush(stdout);
    daemon.serve();
    g_daemon = nullptr;
  } catch (const fixd::FixdError& e) {
    std::fprintf(stderr, "fixdd: %s\n", e.what());
    return 1;
  }
  return 0;
}
