// fixdctl — thin CLI for fixdd.
//
// Commands (see docs/SERVICE.md):
//   fixdctl --endpoint E ping
//   fixdctl --endpoint E submit [--scenario S] [--n N] [--version V]
//           [--order bfs|dfs] [--workers W] [--trail-frontier]
//           [--checkpoint-states N] [--max-states N] [--max-depth N]
//           [--request-id R]
//   fixdctl --endpoint E status <job-id>
//   fixdctl --endpoint E result <job-id>       # waits until terminal
//   fixdctl --endpoint E cancel <job-id>
//   fixdctl --endpoint E logs [n]
//   fixdctl --endpoint E shutdown
//   fixdctl local <same submit flags>          # in-process, no daemon:
//       prints the identical digest lines — the CI smoke baseline.
//
// `submit` + `result` print digest lines of the form
//   RESULT job=<id> complete=1 degraded=0 resumed=<r> states=<n>
//     violations=<v> visited=<count> visited_digest=<hex> trail_digest=<hex>
// which the crash-restart smoke test compares across daemon restarts.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "svc/client.hpp"

namespace {

using namespace fixd::svc;

int usage() {
  std::fprintf(stderr,
               "usage: fixdctl [--endpoint E] [--retries N] [--budget-ms N] "
               "<ping|submit|status|result|cancel|logs|shutdown|local> ...\n");
  return 2;
}

void print_result_line(const JobResultMsg& r) {
  std::printf("RESULT job=%" PRIu64 " complete=%d degraded=%d resumed=%d "
              "attempts=%u states=%" PRIu64 " violations=%zu "
              "visited=%" PRIu64 " visited_digest=%016" PRIx64
              " trail_digest=%016" PRIx64 "\n",
              r.job_id, r.complete ? 1 : 0, r.degraded ? 1 : 0,
              r.resumed ? 1 : 0, r.attempts, r.stats.states,
              r.violations.size(), r.visited_count, r.visited_digest,
              r.trail_digest);
}

JobSpec parse_spec(int argc, char** argv, int& i) {
  JobSpec spec;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw fixd::ConfigError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scenario") {
      spec.scenario = next();
    } else if (arg == "--n") {
      spec.n = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--version") {
      spec.version = std::stoi(next());
    } else if (arg == "--order") {
      const std::string v = next();
      if (v == "bfs") {
        spec.order = fixd::mc::SearchOrder::kBfs;
      } else if (v == "dfs") {
        spec.order = fixd::mc::SearchOrder::kDfs;
      } else {
        throw fixd::ConfigError("bad --order " + v + " (bfs|dfs)");
      }
    } else if (arg == "--workers") {
      spec.workers = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--trail-frontier") {
      spec.trail_frontier = true;
    } else if (arg == "--checkpoint-states") {
      spec.checkpoint_states = std::stoull(next());
    } else if (arg == "--max-states") {
      spec.max_states = std::stoull(next());
    } else if (arg == "--max-depth") {
      spec.max_depth = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--max-violations") {
      spec.max_violations = std::stoull(next());
    } else if (arg == "--seed") {
      spec.seed = std::stoull(next());
    } else if (arg == "--model-loss") {
      spec.model_message_loss = true;
    } else if (arg == "--model-dup") {
      spec.model_message_duplication = true;
    } else {
      throw fixd::ConfigError("unknown submit flag " + arg);
    }
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint_spec = "unix:/tmp/fixdd.sock";
  RetryPolicy policy;
  std::uint64_t request_id = 0;
  std::uint64_t wait_budget_ms = 120000;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--endpoint" && i + 1 < argc) {
      endpoint_spec = argv[++i];
    } else if (arg == "--retries" && i + 1 < argc) {
      policy.max_attempts = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      policy.total_budget_ms = std::stoull(argv[++i]);
    } else if (arg == "--rpc-timeout-ms" && i + 1 < argc) {
      policy.rpc_timeout_ms = std::stoull(argv[++i]);
    } else if (arg == "--request-id" && i + 1 < argc) {
      request_id = std::stoull(argv[++i]);
    } else if (arg == "--wait-budget-ms" && i + 1 < argc) {
      wait_budget_ms = std::stoull(argv[++i]);
    } else {
      break;
    }
  }
  if (i >= argc) return usage();
  const std::string cmd = argv[i++];

  try {
    if (cmd == "local") {
      // Degraded-mode baseline: run in-process through the exact runner
      // the daemon uses; digests are comparable by construction.
      JobSpec spec = parse_spec(argc, argv, i);
      const ScenarioRegistry registry = ScenarioRegistry::with_builtins();
      const ScenarioFamily* fam = registry.find(spec.scenario);
      if (fam == nullptr) {
        throw fixd::ConfigError("unknown scenario " + spec.scenario);
      }
      JobResultMsg r = run_investigation(*fam, spec, nullptr, RunCallbacks{});
      print_result_line(r);
      return 0;
    }

    Client client(Endpoint::parse(endpoint_spec), policy);
    if (cmd == "ping") {
      Request req;
      req.request_id = request_id != 0 ? request_id : now_ms();
      req.kind = RpcKind::kPing;
      client.call(req);
      std::printf("PONG attempts=%u\n", client.last_attempts());
      return 0;
    }
    if (cmd == "submit") {
      JobSpec spec = parse_spec(argc, argv, i);
      if (request_id == 0) request_id = now_ms();
      Request req;
      req.request_id = request_id;
      req.kind = RpcKind::kSubmit;
      req.spec = spec;
      Response rsp = client.call(req);
      if (rsp.status != RpcStatus::kOk) {
        std::fprintf(stderr, "fixdctl: submit: %s (%s)\n",
                     to_string(rsp.status), rsp.error.c_str());
        return 1;
      }
      std::printf("SUBMITTED job=%" PRIu64 " request=%" PRIu64
                  " duplicate=%d\n",
                  rsp.job_id, request_id, rsp.duplicate ? 1 : 0);
      return 0;
    }
    if (cmd == "status" || cmd == "result" || cmd == "cancel") {
      if (i >= argc) return usage();
      const std::uint64_t job_id = std::stoull(argv[i]);
      Request req;
      req.request_id = now_ms() ^ job_id;
      req.job_id = job_id;
      if (cmd == "status") {
        req.kind = RpcKind::kStatus;
        Response rsp = client.call(req);
        if (rsp.status != RpcStatus::kOk) {
          std::fprintf(stderr, "fixdctl: %s\n", rsp.error.c_str());
          return 1;
        }
        const JobStatusMsg& s = rsp.status_msg;
        std::printf("STATUS job=%" PRIu64 " phase=%s attempts=%u states=%" PRIu64
                    " violations=%" PRIu64 " checkpoints=%" PRIu64
                    " resumed=%d%s%s\n",
                    s.job_id, to_string(s.phase), s.attempts, s.states,
                    s.violations, s.checkpoints, s.resumed ? 1 : 0,
                    s.error.empty() ? "" : " error=",
                    s.error.empty() ? "" : s.error.c_str());
        return 0;
      }
      if (cmd == "cancel") {
        req.kind = RpcKind::kCancel;
        Response rsp = client.call(req);
        if (rsp.status != RpcStatus::kOk) {
          std::fprintf(stderr, "fixdctl: %s\n", rsp.error.c_str());
          return 1;
        }
        std::printf("CANCELLED job=%" PRIu64 "\n", job_id);
        return 0;
      }
      // result: poll until terminal (or wait budget lapses).
      const std::uint64_t wait_end = now_ms() + wait_budget_ms;
      for (;;) {
        req.kind = RpcKind::kResult;
        req.request_id = now_ms() ^ job_id;
        Response rsp = client.call(req);
        if (rsp.status == RpcStatus::kOk) {
          print_result_line(rsp.result);
          return 0;
        }
        if (rsp.status != RpcStatus::kNotFound) {
          std::fprintf(stderr, "fixdctl: %s\n", rsp.error.c_str());
          return 1;
        }
        if (now_ms() >= wait_end) {
          std::fprintf(stderr, "fixdctl: job %" PRIu64 " not terminal in time\n",
                       job_id);
          return 1;
        }
        struct timespec ts = {0, 50 * 1000 * 1000};
        nanosleep(&ts, nullptr);
      }
    }
    if (cmd == "logs") {
      Request req;
      req.request_id = now_ms();
      req.kind = RpcKind::kTailLog;
      req.arg = i < argc ? std::stoull(argv[i]) : 0;
      Response rsp = client.call(req);
      for (const std::string& line : rsp.log_lines) {
        std::printf("%s\n", line.c_str());
      }
      return 0;
    }
    if (cmd == "shutdown") {
      Request req;
      req.request_id = now_ms();
      req.kind = RpcKind::kShutdown;
      client.call(req);
      std::printf("SHUTDOWN acknowledged\n");
      return 0;
    }
    return usage();
  } catch (const fixd::TimeoutError& e) {
    std::fprintf(stderr, "fixdctl: unreachable: %s\n", e.what());
    return 3;  // distinct exit code: scripts distinguish "down" from "error"
  } catch (const fixd::FixdError& e) {
    std::fprintf(stderr, "fixdctl: %s\n", e.what());
    return 1;
  }
}
