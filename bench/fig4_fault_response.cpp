// Figure 4 — Response of the FixD mechanism during fault detection.
//
// End-to-end pipeline cost, per phase: run-until-detection, rollback to a
// consistent line, collection of checkpoints+models from the other
// processes (control-plane messages and bytes — the Fig. 4 exchange),
// investigation, and healing. One row per application, including the
// timeout-fault scenario where recovery is a TimeoutTuner configuration
// heal rather than a registry code swap (docs/ROBUSTNESS.md).
//
// Emits BENCH_fault.json (archived by the scheduled perf workflow).
#include <cstdio>
#include <vector>

#include "apps/elect_split.hpp"
#include "apps/kv_lag.hpp"
#include "apps/kv_store.hpp"
#include "apps/leader_election.hpp"
#include "apps/rep_counter.hpp"
#include "bench_util.hpp"
#include "core/fixd.hpp"
#include "fault/injector.hpp"

namespace {

using namespace fixd;

struct Case {
  const char* name;
  std::function<std::unique_ptr<rt::World>()> make;
  std::function<void(rt::World&)> installer;
  heal::UpdatePatch patch;  ///< registry heal (empty target_type = none)
  mc::SearchOrder order = mc::SearchOrder::kRandomWalk;
  /// Extra controller configuration (timeout tuning, TM policy, ...).
  std::function<void(core::FixdOptions&)> tweak;
  /// Environment misbehaviour driving the fault (attached before the run).
  std::function<void(fault::FaultInjector&)> inject;
};

struct Row {
  const char* name;
  bool completed = false;
  std::size_t faults = 0;
  std::uint64_t detect_step = 0;  ///< world step at first detection
  core::PhaseBreakdown phases;
  std::uint64_t ctl_msgs = 0;
  std::uint64_t ctl_bytes = 0;
  std::size_t heals = 0;
  std::size_t timeout_heals = 0;
  std::size_t restarts = 0;
  std::size_t tuner_probes = 0;
  std::uint64_t tuner_states = 0;
  std::uint64_t healed_value = 0;
  std::size_t line_heals = 0;  ///< successful kRecoveryLine rungs
};

Row run_case(const Case& c) {
  auto w = c.make();
  fault::FaultInjector inj;
  if (c.inject) {
    c.inject(inj);
    inj.attach(*w);
  }
  heal::PatchRegistry patches;
  if (!c.patch.target_type.empty()) patches.add(c.patch);
  core::FixdOptions o;
  o.install_invariants = c.installer;
  o.investigate.order = c.order;
  o.investigate.max_states = 20000;
  o.investigate.max_depth = 160;
  o.investigate.walk_restarts = 64;
  if (c.tweak) c.tweak(o);
  core::FixdController fixd(*w, o, patches);
  core::FixdReport rep = fixd.run_protected();

  Row row;
  row.name = c.name;
  row.completed = rep.completed;
  row.faults = rep.faults_detected;
  row.phases = rep.phases;
  row.heals = rep.heals_applied;
  row.timeout_heals = rep.timeout_heals;
  row.restarts = rep.restarts;
  if (!rep.bugs.empty()) {
    row.detect_step = rep.bugs[0].violation.step;
    row.ctl_msgs = rep.bugs[0].collect.control_messages;
    row.ctl_bytes = rep.bugs[0].collect.control_bytes;
  }
  for (const heal::TunerResult& t : rep.tunes) {
    row.tuner_probes += t.trajectory.size();
    row.tuner_states += t.states_explored();
    if (t.ok) row.healed_value = t.healed_value;
  }
  for (const core::RungOutcome& ro : rep.ladder) {
    if (ro.rung == core::RecoveryRung::kRecoveryLine && ro.ok) {
      ++row.line_heals;
    }
  }
  bench::row("%-14s %5s %6zu %7.1f %8.1f %7.1f %11.1f %7.1f %8llu %9llu",
             c.name, row.completed ? "yes" : "NO", row.faults,
             row.phases.run_ms, row.phases.rollback_ms,
             row.phases.collect_ms, row.phases.investigate_ms,
             row.phases.heal_ms, (unsigned long long)row.ctl_msgs,
             (unsigned long long)row.ctl_bytes);
  return row;
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 4: fault-response pipeline "
              "(detect -> rollback -> collect -> investigate -> heal)\n");

  bench::header("Per-application pipeline phases (ms) and Fig.4 exchange");
  bench::row("%-14s %5s %6s %7s %8s %7s %11s %7s %8s %9s", "app", "done",
             "faults", "run", "rollback", "collect", "investigate", "heal",
             "ctl-msgs", "ctl-bytes");
  bench::rule();

  std::vector<Row> rows;

  Case counter{
      "rep-counter",
      [] { return apps::make_counter_world(4, 1, apps::CounterConfig{6}); },
      apps::install_counter_invariants,
      apps::counter_fix_patch(apps::CounterConfig{6}),
  };
  rows.push_back(run_case(counter));

  Case election{
      "election",
      [] {
        apps::ElectionConfig cfg;
        std::uint64_t seed = apps::find_colliding_env_seed(5, cfg);
        rt::WorldOptions wopts;
        wopts.env_seed = seed;
        return apps::make_election_world(5, 1, cfg, wopts);
      },
      apps::install_election_invariants,
      apps::election_fix_patch(apps::ElectionConfig{}),
  };
  rows.push_back(run_case(election));

  Case kv{
      "kv-store",
      [] {
        apps::KvConfig cfg;
        cfg.total_ops = 40;
        cfg.key_space = 2;
        // A latency pattern known to reorder conflicting writes is found by
        // scanning; use a deterministic scan here too.
        for (std::uint64_t seed = 1; seed <= 200; ++seed) {
          rt::WorldOptions wopts;
          wopts.net = net::NetworkOptions::reordering();
          wopts.net.seed = seed * 7919;
          auto probe = apps::make_kv_world(2, 1, cfg, wopts);
          if (probe->run(100000).reason == rt::StopReason::kViolation) {
            return apps::make_kv_world(2, 1, cfg, wopts);
          }
        }
        return apps::make_kv_world(2, 1, cfg);  // unreachable in practice
      },
      apps::install_kv_invariants,
      apps::kv_fix_patch([] {
        apps::KvConfig cfg;
        cfg.total_ops = 40;
        cfg.key_space = 2;
        return cfg;
      }()),
  };
  rows.push_back(run_case(kv));

  // The timeout-fault scenario: the environment delays one delivery past
  // the seeded (too short) retransmit timeout; recovery is a TimeoutTuner
  // configuration heal, not a registry code swap.
  apps::KvLagConfig lag_cfg;
  lag_cfg.total_ops = 1;
  Case lag{
      "kv-lag(delay)",
      [lag_cfg] { return apps::make_kv_lag_world(2, lag_cfg); },
      apps::install_kv_lag_invariants,
      heal::UpdatePatch{},  // no registry patch: the tuner synthesizes it
      mc::SearchOrder::kBfs,
      [lag_cfg](core::FixdOptions& o) {
        o.investigate.order = mc::SearchOrder::kBfs;
        o.tm.cic = false;  // initial checkpoints: rollback to the start
        o.attempt_timeout_tuning = true;
        o.timeout_site = apps::kv_lag_timeout_site(lag_cfg);
        o.tuner.validate.order = mc::SearchOrder::kBfs;
        o.tuner.validate.abstract_time = false;
        o.tuner.validate.model_message_delay = true;
        o.tuner.validate.max_states = 60000;
      },
      [](fault::FaultInjector& inj) {
        fault::FaultSpec delay;
        delay.kind = fault::FaultKind::kMessageDelay;
        delay.target = 1;
        delay.delay_min = 20;
        delay.delay_max = 20;
        inj.add(delay);
      },
  };
  rows.push_back(run_case(lag));

  // Partition family: a live asymmetric cut split-brains the election.
  // No registry patch applies, so recovery is the ladder's line rung —
  // roll the whole system behind the partition onset, heal the cut,
  // resume (docs/ROBUSTNESS.md, escalation ladder).
  Case split{
      "elect-split(cut)",
      [] { return apps::make_elect_split_world(3, 1); },
      apps::install_elect_split_invariants,
      heal::UpdatePatch{},  // no patch: the line rung heals the cut
      mc::SearchOrder::kBfs,
      [](core::FixdOptions& o) {
        o.investigate.order = mc::SearchOrder::kBfs;
        o.investigate.max_states = 2000;
        o.investigate.max_depth = 30;
        o.investigate.model_partition = true;
        o.line_budget = 2;
        o.restart_on_heal_failure = false;
      },
      [](fault::FaultInjector& inj) {
        fault::FaultSpec cut;
        cut.kind = fault::FaultKind::kPartition;
        cut.group_a = {0};
        cut.group_b = {2};
        cut.symmetric = false;  // the split-brain shape; never self-heals
        inj.add(cut);
      },
  };
  rows.push_back(run_case(split));

  // Crash-restart family: the backup crashes before the op lands, the
  // primary's retransmits pile up while it is down, and the durable
  // restart applies every copy — at-least-once over non-idempotent state.
  // No patch and no timeout site: recovery is the §3.4 restart.
  apps::KvLagConfig cr_cfg;
  cr_cfg.total_ops = 1;
  cr_cfg.retransmit_timeout = 8;
  Case crash_restart{
      "kv-lag(restart)",
      [cr_cfg] { return apps::make_kv_lag_world(2, cr_cfg); },
      apps::install_kv_lag_invariants,
      heal::UpdatePatch{},
      mc::SearchOrder::kBfs,
      [](core::FixdOptions& o) {
        o.investigate.order = mc::SearchOrder::kBfs;
        o.investigate.max_states = 4000;
        o.investigate.max_depth = 60;
        o.investigate.model_restart = true;
        o.tm.cic = false;  // initial checkpoints: rollback to the start
      },
      [](fault::FaultInjector& inj) {
        fault::FaultSpec cr;
        cr.kind = fault::FaultKind::kCrashRestart;
        cr.target = 1;
        cr.at_step = 2;
        cr.restart_min = 25;
        cr.restart_max = 25;
        inj.add(cr);
      },
  };
  rows.push_back(run_case(crash_restart));

  // Machine-readable record (BENCH_fault.json, archived by the scheduled
  // perf workflow): detection latency, phase breakdown, recovery outcome,
  // and tuner convergence cost per scenario.
  FILE* f = std::fopen("BENCH_fault.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"cases\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"app\": \"%s\", \"completed\": %s, \"faults\": %zu, "
          "\"detect_step\": %llu, \"run_ms\": %.2f, \"rollback_ms\": %.2f, "
          "\"collect_ms\": %.2f, \"investigate_ms\": %.2f, "
          "\"heal_ms\": %.2f, \"ctl_msgs\": %llu, \"ctl_bytes\": %llu, "
          "\"heals\": %zu, \"timeout_heals\": %zu, \"restarts\": %zu, "
          "\"line_heals\": %zu, \"tuner_probes\": %zu, "
          "\"tuner_states\": %llu, \"healed_value\": %llu}%s\n",
          r.name, r.completed ? "true" : "false", r.faults,
          (unsigned long long)r.detect_step, r.phases.run_ms,
          r.phases.rollback_ms, r.phases.collect_ms,
          r.phases.investigate_ms, r.phases.heal_ms,
          (unsigned long long)r.ctl_msgs, (unsigned long long)r.ctl_bytes,
          r.heals, r.timeout_heals, r.restarts, r.line_heals,
          r.tuner_probes, (unsigned long long)r.tuner_states,
          (unsigned long long)r.healed_value,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_fault.json\n");
  }

  std::printf(
      "\nShape check (paper): detection is cheap; collection cost scales\n"
      "with checkpoint sizes (bytes column); investigation dominates the\n"
      "pipeline — which is why FixD bounds it with budgets. The kv-lag row\n"
      "recovers by timeout tuning: heals==timeout_heals==1, restarts==0.\n"
      "The elect-split row recovers by the ladder's line rung\n"
      "(line_heals==1, restarts==0); the kv-lag(restart) row by the §3.4\n"
      "restart (restarts==1).\n");
  return 0;
}
