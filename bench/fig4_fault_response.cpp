// Figure 4 — Response of the FixD mechanism during fault detection.
//
// End-to-end pipeline cost, per phase: run-until-detection, rollback to a
// consistent line, collection of checkpoints+models from the other
// processes (control-plane messages and bytes — the Fig. 4 exchange),
// investigation, and healing. One row per application.
#include <cstdio>

#include "apps/kv_store.hpp"
#include "apps/leader_election.hpp"
#include "apps/rep_counter.hpp"
#include "bench_util.hpp"
#include "core/fixd.hpp"

namespace {

using namespace fixd;

struct Case {
  const char* name;
  std::function<std::unique_ptr<rt::World>()> make;
  std::function<void(rt::World&)> installer;
  heal::UpdatePatch patch;
  mc::SearchOrder order = mc::SearchOrder::kRandomWalk;
};

void run_case(const Case& c) {
  auto w = c.make();
  heal::PatchRegistry patches;
  patches.add(c.patch);
  core::FixdOptions o;
  o.install_invariants = c.installer;
  o.investigate.order = c.order;
  o.investigate.max_states = 20000;
  o.investigate.max_depth = 160;
  o.investigate.walk_restarts = 64;
  core::FixdController fixd(*w, o, patches);
  core::FixdReport rep = fixd.run_protected();

  const core::BugReport* bug = rep.bugs.empty() ? nullptr : &rep.bugs[0];
  bench::row("%-14s %5s %6zu %7.1f %8.1f %7.1f %11.1f %7.1f %8llu %9llu",
             c.name, rep.completed ? "yes" : "NO", rep.faults_detected,
             rep.phases.run_ms, rep.phases.rollback_ms,
             rep.phases.collect_ms, rep.phases.investigate_ms,
             rep.phases.heal_ms,
             (unsigned long long)(bug ? bug->collect.control_messages : 0),
             (unsigned long long)(bug ? bug->collect.control_bytes : 0));
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 4: fault-response pipeline "
              "(detect -> rollback -> collect -> investigate -> heal)\n");

  bench::header("Per-application pipeline phases (ms) and Fig.4 exchange");
  bench::row("%-14s %5s %6s %7s %8s %7s %11s %7s %8s %9s", "app", "done",
             "faults", "run", "rollback", "collect", "investigate", "heal",
             "ctl-msgs", "ctl-bytes");
  bench::rule();

  Case counter{
      "rep-counter",
      [] { return apps::make_counter_world(4, 1, apps::CounterConfig{6}); },
      apps::install_counter_invariants,
      apps::counter_fix_patch(apps::CounterConfig{6}),
  };
  run_case(counter);

  Case election{
      "election",
      [] {
        apps::ElectionConfig cfg;
        std::uint64_t seed = apps::find_colliding_env_seed(5, cfg);
        rt::WorldOptions wopts;
        wopts.env_seed = seed;
        return apps::make_election_world(5, 1, cfg, wopts);
      },
      apps::install_election_invariants,
      apps::election_fix_patch(apps::ElectionConfig{}),
  };
  run_case(election);

  Case kv{
      "kv-store",
      [] {
        apps::KvConfig cfg;
        cfg.total_ops = 40;
        cfg.key_space = 2;
        // A latency pattern known to reorder conflicting writes is found by
        // scanning; use a deterministic scan here too.
        for (std::uint64_t seed = 1; seed <= 200; ++seed) {
          rt::WorldOptions wopts;
          wopts.net = net::NetworkOptions::reordering();
          wopts.net.seed = seed * 7919;
          auto probe = apps::make_kv_world(2, 1, cfg, wopts);
          if (probe->run(100000).reason == rt::StopReason::kViolation) {
            return apps::make_kv_world(2, 1, cfg, wopts);
          }
        }
        return apps::make_kv_world(2, 1, cfg);  // unreachable in practice
      },
      apps::install_kv_invariants,
      apps::kv_fix_patch([] {
        apps::KvConfig cfg;
        cfg.total_ops = 40;
        cfg.key_space = 2;
        return cfg;
      }()),
  };
  run_case(kv);

  std::printf(
      "\nShape check (paper): detection is cheap; collection cost scales\n"
      "with checkpoint sizes (bytes column); investigation dominates the\n"
      "pipeline — which is why FixD bounds it with budgets.\n");
  return 0;
}
