// Figure 8 — The characteristics of the techniques and tools discussed in
// the paper: preventive / diagnostic / treatment / comprehensive /
// opportunistic, per technique.
//
// The paper's table is qualitative; this bench *derives* the capability
// marks empirically where a capability is demonstrable:
//
//   preventive  — the technique finds the seeded bug by exploration alone,
//                 before any production run (measured: explorer finds the
//                 token-ring double-token without executing the deployment).
//   diagnostic  — given a faulty production run, the technique yields a
//                 faithful account of it (measured: scroll replay of the
//                 failing run is exact / a violation trail is produced).
//   treatment   — the technique returns the *same* execution to a correct
//                 completion (measured: rollback/update/speculation-abort
//                 completes the workload with invariants intact).
//   comprehensive / opportunistic — whether the technique covers the whole
//                 behaviour space or only the behaviours the one run shows;
//                 classified from how each is invoked (and cross-checked by
//                 the exhaustiveness counters of the explorer).
#include <cstdio>

#include "apps/rep_counter.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "ckpt/timemachine.hpp"
#include "core/fixd.hpp"
#include "heal/healer.hpp"
#include "mc/sysmodel.hpp"
#include "scroll/replay.hpp"

namespace {

using namespace fixd;

// --- capability experiments ---------------------------------------------------

// Exploration finds the seeded scheduling bug with zero production runs.
bool exploration_prevents() {
  apps::TokenRingConfig cfg;
  cfg.target_rounds = 2;
  auto w = apps::make_token_ring_world(3, 1, cfg);
  mc::SysExploreOptions o;
  o.max_states = 60000;
  o.install_invariants = apps::install_token_ring_invariants;
  mc::SystemExplorer ex(*w, o);
  return ex.explore().found_violation();
}

// A recorded faulty run replays exactly (the diagnostic capability).
bool logging_diagnoses() {
  auto w = apps::make_counter_world(3, 1, apps::CounterConfig{4});
  w->set_stop_on_violation(false);
  scroll::Scroll log(scroll::LoggingPreset::digests());
  w->add_observer(&log);
  w->run();
  w->remove_observer(&log);
  if (!w->has_violation()) return false;  // no fault to diagnose
  auto fresh = apps::make_counter_world(3, 1, apps::CounterConfig{4});
  fresh->set_stop_on_violation(false);
  auto rep = scroll::ReplayEngine::replay(*fresh, log);
  return rep.ok;
}

// Checkpoint/rollback alone: recovers state but (without a fix) the same
// deterministic run re-violates => no treatment.
bool rollback_alone_treats() {
  auto w = apps::make_counter_world(3, 1, apps::CounterConfig{4});
  ckpt::TimeMachineOptions topt;
  topt.cic = true;
  ckpt::TimeMachine tm(*w, topt);
  tm.attach();
  if (w->run(100000).reason != rt::StopReason::kViolation) return false;
  ProcessId failed = w->violations().front().pid;
  tm.rollback_to(failed == kNoProcess ? 0 : failed,
                 tm.store(failed == kNoProcess ? 0 : failed).size() - 1);
  w->clear_violations();
  auto res = w->run(100000);
  return res.reason == rt::StopReason::kAllHalted && !w->has_violation();
}

// Dynamic update (with the fix) at a clean restart point: treatment.
bool dynamic_update_treats() {
  auto w = apps::make_counter_world(3, 1, apps::CounterConfig{4});
  heal::Healer healer(*w);
  if (!healer.apply_all(apps::counter_fix_patch(apps::CounterConfig{4})).ok)
    return false;
  auto res = w->run(100000);
  return res.reason == rt::StopReason::kAllHalted && !w->has_violation();
}

// Speculations: the abort path takes the alternate execution and completes.
bool speculation_treats() {
  // Reuses the spec-abort semantics: state rolls back and the alternate
  // path runs; demonstrated by the SpeculationManager stats of a run that
  // aborts and still quiesces.
  class P final : public rt::ProcessBase<P> {
   public:
    void on_start(rt::Context& ctx) override {
      if (ctx.self() == 0) {
        SpecId s = ctx.spec_begin("fast path ok");
        risky = 1;
        ctx.spec_abort(s);  // assumption fails: take the slow path
      }
    }
    void on_spec_aborted(rt::Context&, SpecId, const std::string&) override {
      slow_path = 1;
    }
    void on_message(rt::Context&, const net::Message&) override {}
    void save_root(BinaryWriter& w) const override {
      w.write_u64(risky);
      w.write_u64(slow_path);
    }
    void load_root(BinaryReader& r) override {
      risky = r.read_u64();
      slow_path = r.read_u64();
    }
    std::string type_name() const override { return "spec-demo"; }
    std::uint64_t risky = 0, slow_path = 0;
  };
  rt::World w;
  w.add_process(std::make_unique<P>());
  w.seal();
  ckpt::SpeculationManager specs;
  specs.attach(w);
  w.run(10);
  const auto& p = w.process_as<P>(0);
  return p.risky == 0 && p.slow_path == 1;  // rolled back, alternate ran
}

// The full FixD pipeline: detection + diagnosis + cure, end to end.
struct FixdCaps {
  bool treats = false;
  bool diagnoses = false;
};
FixdCaps fixd_pipeline() {
  auto w = apps::make_counter_world(3, 1, apps::CounterConfig{4});
  heal::PatchRegistry patches;
  patches.add(apps::counter_fix_patch(apps::CounterConfig{4}));
  core::FixdOptions o;
  o.install_invariants = apps::install_counter_invariants;
  o.investigate.order = mc::SearchOrder::kRandomWalk;
  o.investigate.max_depth = 160;
  o.investigate.walk_restarts = 48;
  core::FixdController fixd(*w, o, patches);
  auto rep = fixd.run_protected();
  FixdCaps caps;
  caps.treats = rep.completed && rep.faults_detected > 0;
  caps.diagnoses =
      !rep.bugs.empty() &&
      (!rep.bugs[0].trails.empty() || rep.scroll_records > 0);
  return caps;
}

const char* mark(bool b) { return b ? "Y" : "-"; }

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 8: technique/tool characteristics "
              "matrix (empirically derived)\n");

  bool prevent = exploration_prevents();
  bool diagnose = logging_diagnoses();
  bool cr_treat = rollback_alone_treats();
  bool du_treat = dynamic_update_treats();
  bool s_treat = speculation_treats();
  FixdCaps fixd = fixd_pipeline();

  bench::header("capability experiments");
  bench::row("exploration finds seeded bug pre-deployment : %s",
             prevent ? "yes" : "no");
  bench::row("recorded faulty run replays exactly         : %s",
             diagnose ? "yes" : "no");
  bench::row("rollback alone re-runs into the same bug    : %s",
             cr_treat ? "no (unexpected)" : "yes (no treatment)");
  bench::row("dynamic update completes the workload       : %s",
             du_treat ? "yes" : "no");
  bench::row("speculation abort takes the alternate path  : %s",
             s_treat ? "yes" : "no");
  bench::row("FixD pipeline detects+diagnoses+cures       : %s/%s",
             fixd.diagnoses ? "yes" : "no", fixd.treats ? "yes" : "no");

  bench::header("Figure 8 matrix");
  bench::row("%-28s %10s %10s %9s %13s %13s", "technique / tool",
             "preventive", "diagnostic", "treatment", "comprehensive",
             "opportunistic");
  bench::rule();
  // Techniques
  bench::row("%-28s %10s %10s %9s %13s %13s", "Model Checking (MC)",
             mark(prevent), mark(false), mark(false), mark(prevent),
             mark(false));
  bench::row("%-28s %10s %10s %9s %13s %13s", "Logging (L)", mark(false),
             mark(diagnose), mark(false), mark(false), mark(true));
  bench::row("%-28s %10s %10s %9s %13s %13s", "Checkpoint&Rollback (CR)",
             mark(false), mark(false), mark(cr_treat), mark(false),
             mark(true));
  bench::row("%-28s %10s %10s %9s %13s %13s", "Dynamic Updates (DU)",
             mark(false), mark(false), mark(du_treat), mark(false),
             mark(false));
  bench::row("%-28s %10s %10s %9s %13s %13s", "Speculations (S)",
             mark(false), mark(false), mark(s_treat), mark(false),
             mark(true));
  // Tools
  bench::row("%-28s %10s %10s %9s %13s %13s", "liblog (L & CR)",
             mark(false), mark(diagnose), mark(false), mark(false),
             mark(true));
  bench::row("%-28s %10s %10s %9s %13s %13s", "CMC (MC)", mark(prevent),
             mark(false), mark(false), mark(false), mark(true));
  bench::row("%-28s %10s %10s %9s %13s %13s", "FixD (MC & L & S & DU)",
             mark(prevent), mark(fixd.diagnoses), mark(fixd.treats),
             mark(prevent), mark(true));

  std::printf(
      "\nNotes: marks are measured where demonstrable (see experiments\n"
      "above); comprehensive/opportunistic follow the paper's taxonomy.\n"
      "Deviation from the paper: our CMC-analogue (implementation-level\n"
      "MC) measurably achieves preventive coverage, which the paper's\n"
      "table leaves unmarked; FixD matches the paper's all-capability row.\n");
  return 0;
}
