// Figure 2 — The Time Machine: checkpoint and restore cost.
//
// Compares the paper's lightweight copy-on-write checkpoints (§4.2:
// "speculations use a copy-on-write mechanism to build lightweight,
// incremental checkpoints") against traditional full serialization, across
// state sizes and mutation (dirty-page) rates. google-benchmark binary.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mem/paged_heap.hpp"

namespace {

using namespace fixd;

mem::PagedHeap make_heap(std::uint64_t bytes) {
  mem::PagedHeap h(4096);
  h.resize(bytes);
  Rng rng(42);
  for (std::uint64_t off = 0; off + 8 <= bytes; off += 4096) {
    h.store<std::uint64_t>(off, rng.next_u64());
  }
  return h;
}

// Traditional checkpoint: serialize the whole state.
void BM_FullCheckpoint(benchmark::State& state) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  mem::PagedHeap h = make_heap(bytes);
  std::uint64_t produced = 0;
  for (auto _ : state) {
    BinaryWriter w;
    h.save(w);
    produced += w.size();
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(produced));
  state.counters["state_bytes"] = static_cast<double>(bytes);
}

// COW checkpoint: share the page table; cost is O(pages), not O(bytes).
void BM_CowCheckpoint(benchmark::State& state) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  mem::PagedHeap h = make_heap(bytes);
  std::vector<mem::HeapSnapshot> keep;
  keep.reserve(1024);
  for (auto _ : state) {
    keep.push_back(h.snapshot());
    benchmark::DoNotOptimize(keep.back().page_count());
    if (keep.size() >= 1024) keep.clear();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes));
  state.counters["state_bytes"] = static_cast<double>(bytes);
}

// Steady state: snapshot, then mutate a fraction of pages (the COW tax).
void BM_CowCheckpointWithDirty(benchmark::State& state) {
  const std::uint64_t bytes = 4ull << 20;
  const int dirty_pct = static_cast<int>(state.range(0));
  mem::PagedHeap h = make_heap(bytes);
  Rng rng(7);
  const std::uint64_t pages = bytes / 4096;
  const std::uint64_t dirty = pages * dirty_pct / 100;
  mem::HeapSnapshot prev = h.snapshot();
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < dirty; ++i) {
      std::uint64_t page = rng.next_below(pages);
      h.store<std::uint64_t>(page * 4096, rng.next_u64());
    }
    prev = h.snapshot();  // drops the old snapshot, takes a new one
    benchmark::DoNotOptimize(prev.page_count());
  }
  state.counters["dirty_pct"] = dirty_pct;
  state.counters["pages_cowed_per_iter"] =
      benchmark::Counter(static_cast<double>(h.stats().pages_cowed),
                         benchmark::Counter::kAvgIterations);
}

// Restore cost: COW restore is page-table assignment.
void BM_CowRestore(benchmark::State& state) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  mem::PagedHeap h = make_heap(bytes);
  mem::HeapSnapshot snap = h.snapshot();
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 8; ++i) {
      h.store<std::uint64_t>(rng.next_below(bytes - 8), rng.next_u64());
    }
    state.ResumeTiming();
    h.restore(snap);
  }
  state.counters["state_bytes"] = static_cast<double>(bytes);
}

// Restore from serialized bytes (the traditional path).
void BM_FullRestore(benchmark::State& state) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  mem::PagedHeap h = make_heap(bytes);
  BinaryWriter w;
  h.save(w);
  for (auto _ : state) {
    BinaryReader r(w.bytes());
    h.load(r);
    benchmark::DoNotOptimize(h.page_count());
  }
  state.counters["state_bytes"] = static_cast<double>(bytes);
}

}  // namespace

BENCHMARK(BM_FullCheckpoint)->Range(64 << 10, 16 << 20);
BENCHMARK(BM_CowCheckpoint)->Range(64 << 10, 16 << 20);
BENCHMARK(BM_CowCheckpointWithDirty)->Arg(1)->Arg(5)->Arg(25)->Arg(100);
BENCHMARK(BM_CowRestore)->Range(64 << 10, 16 << 20);
BENCHMARK(BM_FullRestore)->Range(64 << 10, 16 << 20);

BENCHMARK_MAIN();
