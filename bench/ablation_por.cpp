// Ablation A1 — the Investigator's reduction machinery.
//
// DESIGN.md calls out the explorer's reduction choices: canonical-digest
// state deduplication, sleep-set pruning, and dynamic partial-order
// reduction with footprint-exact independence (SysExploreOptions::por).
// This ablation measures each layer: states, transitions, wall time, and
// whether the seeded violation is still found.
//
// Gated (exit code, enforced by the perf workflow):
//   - 2pc v1 n=6, BFS, exhaustive: dedup+sleep+por must visit <= 1/2 the
//     states of dedup alone (the reduction is far larger in practice —
//     POR collapses the prepare/vote interleaving lattice to its
//     dependency classes) at *equal violation coverage* (identical
//     violation-name sets);
//   - two consecutive reduced runs must produce byte-identical violation
//     trails (the reduction is deterministic, so its counterexamples are
//     reproducible artifacts).
// Results land in BENCH_ablation_por.json.
#include <cstdio>
#include <set>
#include <string>

#include "apps/token_ring.hpp"
#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "mc/sysmodel.hpp"

namespace {

using namespace fixd;

struct ConfigResult {
  mc::SysExploreResult res;
  double ms = 0.0;
};

ConfigResult run_config(const char* app, rt::World& w,
                        const std::function<void(rt::World&)>& installer,
                        bool dedup, bool sleep, bool por,
                        std::size_t max_states, std::size_t max_depth = 48) {
  mc::SysExploreOptions o;
  o.order = mc::SearchOrder::kBfs;
  o.max_states = max_states;
  o.max_depth = max_depth;
  o.max_violations = 1u << 20;  // keep exploring: measure coverage, not TTF
  o.dedup = dedup;
  o.sleep_sets = sleep;
  o.por = por;
  o.install_invariants = installer;
  mc::SystemExplorer ex(w, o);
  bench::WallTimer t;
  ConfigResult out;
  out.res = ex.explore();
  out.ms = t.ms();
  bench::row("%-12s %5s %6s %4s %9llu %11llu %7llu %6zu %9.1f", app,
             dedup ? "on" : "off", sleep ? "on" : "off", por ? "on" : "off",
             (unsigned long long)out.res.stats.states,
             (unsigned long long)out.res.stats.transitions,
             (unsigned long long)out.res.stats.duplicates,
             out.res.violations.size(), out.ms);
  return out;
}

std::set<std::string> violation_names(const mc::SysExploreResult& r) {
  std::set<std::string> s;
  for (const auto& v : r.violations) s.insert(v.violation.invariant);
  return s;
}

std::string rendered_trails(const mc::SysExploreResult& r) {
  std::string all;
  for (const auto& v : r.violations) {
    all += v.violation.invariant;
    all += '\n';
    all += v.trail.render();
    all += '\n';
  }
  return all;
}

void sweep_header() {
  bench::row("%-12s %5s %6s %4s %9s %11s %7s %6s %9s", "app", "dedup",
             "sleep", "por", "states", "trans", "dups", "bugs", "ms");
  bench::rule();
}

}  // namespace

int main() {
  std::printf("FixD reproduction — ablation: dedup, sleep sets, and dynamic "
              "partial-order reduction in the Investigator\n");

  bench::header("token-ring v1 (3 procs, seeded double-token bug)");
  sweep_header();
  for (bool dedup : {true, false}) {
    for (int red = 0; red < 3; ++red) {  // off / sleep / sleep+por
      apps::TokenRingConfig cfg;
      cfg.target_rounds = 2;
      auto w = apps::make_token_ring_world(3, 1, cfg);
      run_config("token-ring", *w, apps::install_token_ring_invariants,
                 dedup, red >= 1, red == 2, 20000);
    }
  }

  bench::header("2pc v2 (3 procs, full verification sweep — no bug)");
  sweep_header();
  for (bool dedup : {true, false}) {
    for (int red = 0; red < 3; ++red) {
      apps::TwoPcConfig cfg;
      cfg.total_txns = 1;
      auto w = apps::make_two_pc_world(3, 2, cfg);
      run_config("2pc-v2", *w, apps::install_two_pc_invariants, dedup,
                 red >= 1, red == 2, 60000);
    }
  }

  // --- The gated configuration: 2pc v1 n=6, exhaustive --------------------
  bench::header("2pc v1 (6 procs, presumed-commit bug) — the POR gate");
  sweep_header();
  apps::TwoPcConfig cfg6;
  cfg6.total_txns = 1;
  auto w6 = apps::make_two_pc_world(6, 1, cfg6);
  // max_depth far beyond the protocol diameter: neither side truncates,
  // so the state counts and violation sets are exact.
  auto unreduced = run_config("2pc-v1-n6", *w6, apps::install_two_pc_invariants,
                              /*dedup=*/true, /*sleep=*/false, /*por=*/false,
                              2000000, 1u << 20);
  auto reduced = run_config("2pc-v1-n6", *w6, apps::install_two_pc_invariants,
                            /*dedup=*/true, /*sleep=*/true, /*por=*/true,
                            2000000, 1u << 20);
  auto reduced2 = run_config("2pc-v1-n6", *w6, apps::install_two_pc_invariants,
                             /*dedup=*/true, /*sleep=*/true, /*por=*/true,
                             2000000, 1u << 20);

  const double reduction =
      reduced.res.stats.states > 0
          ? static_cast<double>(unreduced.res.stats.states) /
                static_cast<double>(reduced.res.stats.states)
          : 0.0;
  const bool coverage_equal =
      violation_names(reduced.res) == violation_names(unreduced.res) &&
      !violation_names(reduced.res).empty();
  const bool deterministic =
      rendered_trails(reduced.res) == rendered_trails(reduced2.res) &&
      !reduced.res.violations.empty();

  FILE* f = std::fopen("BENCH_ablation_por.json", "w");
  if (f) {
    std::fprintf(
        f,
        "{\n"
        "  \"config\": \"2pc-v1 n=6 bfs exhaustive\",\n"
        "  \"unreduced_states\": %llu,\n"
        "  \"unreduced_transitions\": %llu,\n"
        "  \"reduced_states\": %llu,\n"
        "  \"reduced_transitions\": %llu,\n"
        "  \"por_deferred\": %llu,\n"
        "  \"por_backtracks\": %llu,\n"
        "  \"sleep_reexpansions\": %llu,\n"
        "  \"states_reduction\": %.3f,\n"
        "  \"coverage_equal\": %s,\n"
        "  \"trails_deterministic\": %s,\n"
        "  \"unreduced_wall_ms\": %.2f,\n"
        "  \"reduced_wall_ms\": %.2f\n"
        "}\n",
        (unsigned long long)unreduced.res.stats.states,
        (unsigned long long)unreduced.res.stats.transitions,
        (unsigned long long)reduced.res.stats.states,
        (unsigned long long)reduced.res.stats.transitions,
        (unsigned long long)reduced.res.stats.por_deferred,
        (unsigned long long)reduced.res.stats.por_backtracks,
        (unsigned long long)reduced.res.stats.sleep_reexpansions,
        reduction, coverage_equal ? "true" : "false",
        deterministic ? "true" : "false", unreduced.ms, reduced.ms);
    std::fclose(f);
    std::printf("\nwrote BENCH_ablation_por.json\n");
  }

  std::printf(
      "\nShape check: dedup collapses the interleaving lattice (orders of\n"
      "magnitude fewer states); sleep sets cut transitions further; POR\n"
      "defers whole independence classes; the seeded violation is found\n"
      "in every configuration.\n\n");

  bool ok = true;
  std::printf("por gate: n=6 states %llu -> %llu = %.1fx reduction "
              "(need >= 2.0x) -> %s\n",
              (unsigned long long)unreduced.res.stats.states,
              (unsigned long long)reduced.res.stats.states, reduction,
              reduction >= 2.0 ? "OK" : "FAIL");
  if (reduction < 2.0) ok = false;
  std::printf("por gate: violation coverage %s (reduced invariant set: {",
              coverage_equal ? "equal" : "DIFFERS");
  for (const auto& nm : violation_names(reduced.res)) {
    std::printf(" %s", nm.c_str());
  }
  std::printf(" }) -> %s\n", coverage_equal ? "OK" : "FAIL");
  if (!coverage_equal) ok = false;
  std::printf("por gate: two reduced runs byte-identical trails -> %s\n",
              deterministic ? "OK" : "FAIL");
  if (!deterministic) ok = false;
  if (unreduced.res.stats.truncated || reduced.res.stats.truncated) {
    std::printf("por gate: truncated run (budget too small) -> FAIL\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
