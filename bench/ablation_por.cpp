// Ablation A1 — the Investigator's reduction machinery.
//
// DESIGN.md calls out two design choices in the explorer: canonical-digest
// state deduplication and sleep-set partial-order reduction. This ablation
// measures each: states, transitions, wall time, and whether the seeded
// violation is still found.
#include <cstdio>

#include "apps/token_ring.hpp"
#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "mc/sysmodel.hpp"

namespace {

using namespace fixd;

void run_config(const char* app, rt::World& w,
                const std::function<void(rt::World&)>& installer, bool dedup,
                bool sleep, std::size_t max_states) {
  mc::SysExploreOptions o;
  o.order = mc::SearchOrder::kBfs;
  o.max_states = max_states;
  o.max_depth = 48;
  o.max_violations = 1u << 20;  // keep exploring: measure coverage, not TTF
  o.dedup = dedup;
  o.sleep_sets = sleep;
  o.install_invariants = installer;
  mc::SystemExplorer ex(w, o);
  bench::WallTimer t;
  auto res = ex.explore();
  double ms = t.ms();
  bench::row("%-12s %5s %6s %9llu %11llu %7llu %6zu %9.1f", app,
             dedup ? "on" : "off", sleep ? "on" : "off",
             (unsigned long long)res.stats.states,
             (unsigned long long)res.stats.transitions,
             (unsigned long long)res.stats.duplicates,
             res.violations.size(), ms);
}

}  // namespace

int main() {
  std::printf("FixD reproduction — ablation: state dedup and sleep-set "
              "partial-order reduction in the Investigator\n");

  bench::header("token-ring v1 (3 procs, seeded double-token bug)");
  bench::row("%-12s %5s %6s %9s %11s %7s %6s %9s", "app", "dedup", "sleep",
             "states", "trans", "dups", "bugs", "ms");
  bench::rule();
  for (bool dedup : {true, false}) {
    for (bool sleep : {false, true}) {
      apps::TokenRingConfig cfg;
      cfg.target_rounds = 2;
      auto w = apps::make_token_ring_world(3, 1, cfg);
      run_config("token-ring", *w, apps::install_token_ring_invariants,
                 dedup, sleep, 20000);
    }
  }

  bench::header("2pc v2 (3 procs, full verification sweep — no bug)");
  bench::row("%-12s %5s %6s %9s %11s %7s %6s %9s", "app", "dedup", "sleep",
             "states", "trans", "dups", "bugs", "ms");
  bench::rule();
  for (bool dedup : {true, false}) {
    for (bool sleep : {false, true}) {
      apps::TwoPcConfig cfg;
      cfg.total_txns = 1;
      auto w = apps::make_two_pc_world(3, 2, cfg);
      run_config("2pc-v2", *w, apps::install_two_pc_invariants, dedup, sleep,
                 60000);
    }
  }

  std::printf(
      "\nShape check: dedup collapses the interleaving lattice (orders of\n"
      "magnitude fewer states); sleep sets cut transitions further; the\n"
      "seeded violation is found in every configuration.\n");
  return 0;
}
