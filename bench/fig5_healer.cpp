// Figure 5 — The Healer: user intervention and dynamic updates fix the
// distributed application.
//
// The paper's two recovery options (§3.4): restart the corrected program
// from the beginning, or roll back to a safe checkpoint and dynamically
// update in place, keeping "computation that was correctly performed while
// executing the faulty program". This bench quantifies the difference:
// total events to completion and work retained, as a function of how far
// into the run the fault strikes.
// The timeout-healing rows quantify the third recovery shape this repo
// adds (docs/ROBUSTNESS.md): when the bug is a configuration value, the
// TimeoutTuner searches and validates a new timeout instead of swapping
// code — the cost is the probe count and the states each validation
// explores. Emits BENCH_heal.json (archived by the perf workflow).
#include <cstdio>
#include <vector>

#include "apps/kv_lag.hpp"
#include "apps/token_ring.hpp"
#include "apps/tpc_stall.hpp"
#include "bench_util.hpp"
#include "ckpt/timemachine.hpp"
#include "fault/injector.hpp"
#include "heal/healer.hpp"
#include "heal/timeout_tuner.hpp"

namespace {

using namespace fixd;

struct Outcome {
  bool ok = false;
  std::uint64_t work_at_fault = 0;
  std::uint64_t work_retained = 0;
  std::uint64_t total_steps = 0;
  double ms = 0;
};

// Run the buggy ring until the injected double-token fault, then recover
// with the chosen strategy and finish the workload.
Outcome run_with_strategy(bool rollback_update, std::uint64_t fault_at,
                          std::uint64_t rounds) {
  apps::TokenRingConfig cfg;
  cfg.target_rounds = rounds;
  cfg.timeout = 50;
  auto w = apps::make_token_ring_world(4, 1, cfg);

  ckpt::TimeMachineOptions topt;
  topt.cic = true;
  ckpt::TimeMachine tm(*w, topt);
  tm.attach();
  rt::WorldSnapshot initial = w->snapshot();

  // The v1 bug needs the timeout race; inject it: force a premature timer by
  // dropping the token once so the timeout regenerates it while the original
  // is re-injected... simpler and fully deterministic: corrupt the state so
  // the invariant trips at `fault_at`.
  fault::FaultInjector inj;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCustom;
  spec.at_step = fault_at;
  spec.custom = [](rt::World& world) {
    // Duplicate the in-flight token: the exact double-token state the v1
    // timeout race produces.
    for (const net::Message* m : world.network().pending()) {
      if (m->tag == apps::kTokenTag) {
        world.network().duplicate(m->id);
        return;
      }
    }
  };
  inj.add(spec);
  inj.attach(*w);

  bench::WallTimer t;
  Outcome out;
  rt::RunResult r1 = w->run(1000000);
  out.total_steps = r1.steps;
  out.work_at_fault = apps::token_ring_total_work(*w);
  if (r1.reason != rt::StopReason::kViolation) {
    // Fault did not trip (e.g. workload ended first): report as-is.
    out.ok = !w->has_violation();
    out.work_retained = out.work_at_fault;
    out.ms = t.ms();
    return out;
  }

  inj.detach(*w);
  heal::PatchRegistry patches;
  auto patch = apps::token_ring_fix_patch(cfg);

  if (rollback_update) {
    ProcessId failed =
        w->violations().front().pid == kNoProcess
            ? 0
            : w->violations().front().pid;
    std::size_t idx = tm.store(failed).size() - 1;
    tm.rollback_to(failed, idx ? idx - 1 : 0);
    w->clear_violations();
    heal::Healer healer(*w, [] {
      heal::HealOptions ho;
      ho.require_quiescent_inbound = false;  // rollback point is consistent
      return ho;
    }());
    heal::HealReport hr = healer.apply_all(patch);
    if (!hr.ok) {
      out.ok = false;
      out.ms = t.ms();
      return out;
    }
    out.work_retained = apps::token_ring_total_work(*w);
  } else {
    w->restore(initial);
    w->clear_violations();
    heal::Healer healer(*w, [] {
      heal::HealOptions ho;
      ho.require_quiescent_inbound = false;
      return ho;
    }());
    (void)healer.apply_all(patch);
    out.work_retained = apps::token_ring_total_work(*w);  // == 0-ish
  }
  tm.reset();

  rt::RunResult r2 = w->run(1000000);
  out.total_steps += r2.steps;
  out.ok = r2.reason == rt::StopReason::kAllHalted && !w->has_violation();
  out.ms = t.ms();
  return out;
}

struct TunerRow {
  const char* scenario;
  bool ok = false;
  std::uint64_t from = 0;
  std::uint64_t healed = 0;
  std::size_t probes = 0;
  std::uint64_t states = 0;
  double ms = 0;
};

mc::SysExploreOptions timed_delay_validate() {
  mc::SysExploreOptions o;
  o.order = mc::SearchOrder::kBfs;
  o.abstract_time = false;
  o.model_message_delay = true;
  o.max_states = 60000;
  return o;
}

TunerRow tune_scenario(const char* name, rt::World& w,
                       heal::TimeoutSite site,
                       std::function<void(rt::World&)> install) {
  heal::TunerOptions topts;
  topts.validate = timed_delay_validate();
  topts.install_invariants = std::move(install);
  bench::WallTimer t;
  heal::TimeoutTuner tuner(w, site, topts);
  heal::TunerResult res = tuner.tune();
  TunerRow row;
  row.scenario = name;
  row.ok = res.ok;
  row.from = site.current;
  row.healed = res.healed_value;
  row.probes = res.trajectory.size();
  row.states = res.states_explored();
  row.ms = t.ms();
  return row;
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 5: the Healer (restart vs "
              "rollback + dynamic update)\n");

  const std::uint64_t rounds = 60;
  bench::header("Token ring, 4 processes, 60 rounds; fault at varying depth");
  bench::row("%-9s %-18s %5s %10s %10s %10s %8s", "fault@", "strategy",
             "ok", "work@fault", "retained", "steps", "ms");
  bench::rule();

  struct StrategyRow {
    std::uint64_t frac;
    bool rollback;
    Outcome o;
  };
  std::vector<StrategyRow> srows;
  for (std::uint64_t frac : {10, 30, 50, 70, 90}) {
    std::uint64_t fault_at = rounds * 4 * frac / 100;  // ~steps into the run
    for (bool rollback : {false, true}) {
      Outcome o = run_with_strategy(rollback, fault_at, rounds);
      bench::row("%7llu%% %-18s %5s %10llu %10llu %10llu %8.1f",
                 (unsigned long long)frac,
                 rollback ? "rollback+update" : "restart",
                 o.ok ? "yes" : "NO",
                 (unsigned long long)o.work_at_fault,
                 (unsigned long long)o.work_retained,
                 (unsigned long long)o.total_steps, o.ms);
      srows.push_back({frac, rollback, o});
    }
  }

  // Timeout healing: the tuner searches the timeout value, validating
  // each candidate by timed re-exploration under the delay model.
  bench::header("Timeout healing (TimeoutTuner): seeded config bugs");
  bench::row("%-12s %4s %6s %7s %7s %10s %8s", "scenario", "ok", "from",
             "healed", "probes", "states", "ms");
  bench::rule();

  std::vector<TunerRow> trows;
  {
    apps::KvLagConfig cfg;
    cfg.total_ops = 1;
    auto w = apps::make_kv_lag_world(2, cfg);
    trows.push_back(tune_scenario("kv-lag", *w,
                                  apps::kv_lag_timeout_site(cfg),
                                  apps::install_kv_lag_invariants));
  }
  {
    apps::TpcStallConfig cfg;
    auto w = apps::make_tpc_stall_world(2, cfg);
    trows.push_back(tune_scenario("tpc-stall", *w,
                                  apps::tpc_stall_timeout_site(cfg),
                                  apps::install_tpc_stall_invariants));
  }
  for (const TunerRow& r : trows) {
    bench::row("%-12s %4s %6llu %7llu %7zu %10llu %8.1f", r.scenario,
               r.ok ? "yes" : "NO", (unsigned long long)r.from,
               (unsigned long long)r.healed, r.probes,
               (unsigned long long)r.states, r.ms);
  }

  // Machine-readable record (BENCH_heal.json): heal success per strategy
  // and depth, plus tuner iterations-to-converge per timeout scenario.
  std::size_t heal_ok = 0;
  for (const auto& s : srows) heal_ok += s.o.ok ? 1 : 0;
  FILE* f = std::fopen("BENCH_heal.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"strategies\": [\n");
    for (std::size_t i = 0; i < srows.size(); ++i) {
      const auto& s = srows[i];
      std::fprintf(f,
                   "    {\"fault_frac\": %llu, \"strategy\": \"%s\", "
                   "\"ok\": %s, \"work_at_fault\": %llu, "
                   "\"work_retained\": %llu, \"total_steps\": %llu, "
                   "\"ms\": %.2f}%s\n",
                   (unsigned long long)s.frac,
                   s.rollback ? "rollback+update" : "restart",
                   s.o.ok ? "true" : "false",
                   (unsigned long long)s.o.work_at_fault,
                   (unsigned long long)s.o.work_retained,
                   (unsigned long long)s.o.total_steps, s.o.ms,
                   i + 1 < srows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"heal_success_rate\": %.3f,\n  \"tuner\": [\n",
                 srows.empty() ? 0.0
                               : (double)heal_ok / (double)srows.size());
    for (std::size_t i = 0; i < trows.size(); ++i) {
      const TunerRow& r = trows[i];
      std::fprintf(f,
                   "    {\"scenario\": \"%s\", \"ok\": %s, \"from\": %llu, "
                   "\"healed_value\": %llu, \"probes\": %zu, "
                   "\"states\": %llu, \"ms\": %.2f}%s\n",
                   r.scenario, r.ok ? "true" : "false",
                   (unsigned long long)r.from, (unsigned long long)r.healed,
                   r.probes, (unsigned long long)r.states, r.ms,
                   i + 1 < trows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_heal.json\n");
  }

  std::printf(
      "\nShape check (paper): rollback+update retains nearly all work done\n"
      "before the fault, so total steps to completion stay flat; restart\n"
      "pays the full re-execution, growing with fault depth. The tuner\n"
      "rows converge in a handful of probes to a validated timeout.\n");
  return 0;
}
