// Figure 5 — The Healer: user intervention and dynamic updates fix the
// distributed application.
//
// The paper's two recovery options (§3.4): restart the corrected program
// from the beginning, or roll back to a safe checkpoint and dynamically
// update in place, keeping "computation that was correctly performed while
// executing the faulty program". This bench quantifies the difference:
// total events to completion and work retained, as a function of how far
// into the run the fault strikes.
#include <cstdio>

#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "ckpt/timemachine.hpp"
#include "fault/injector.hpp"
#include "heal/healer.hpp"

namespace {

using namespace fixd;

struct Outcome {
  bool ok = false;
  std::uint64_t work_at_fault = 0;
  std::uint64_t work_retained = 0;
  std::uint64_t total_steps = 0;
  double ms = 0;
};

// Run the buggy ring until the injected double-token fault, then recover
// with the chosen strategy and finish the workload.
Outcome run_with_strategy(bool rollback_update, std::uint64_t fault_at,
                          std::uint64_t rounds) {
  apps::TokenRingConfig cfg;
  cfg.target_rounds = rounds;
  cfg.timeout = 50;
  auto w = apps::make_token_ring_world(4, 1, cfg);

  ckpt::TimeMachineOptions topt;
  topt.cic = true;
  ckpt::TimeMachine tm(*w, topt);
  tm.attach();
  rt::WorldSnapshot initial = w->snapshot();

  // The v1 bug needs the timeout race; inject it: force a premature timer by
  // dropping the token once so the timeout regenerates it while the original
  // is re-injected... simpler and fully deterministic: corrupt the state so
  // the invariant trips at `fault_at`.
  fault::FaultInjector inj;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCustom;
  spec.at_step = fault_at;
  spec.custom = [](rt::World& world) {
    // Duplicate the in-flight token: the exact double-token state the v1
    // timeout race produces.
    for (const net::Message* m : world.network().pending()) {
      if (m->tag == apps::kTokenTag) {
        world.network().duplicate(m->id);
        return;
      }
    }
  };
  inj.add(spec);
  inj.attach(*w);

  bench::WallTimer t;
  Outcome out;
  rt::RunResult r1 = w->run(1000000);
  out.total_steps = r1.steps;
  out.work_at_fault = apps::token_ring_total_work(*w);
  if (r1.reason != rt::StopReason::kViolation) {
    // Fault did not trip (e.g. workload ended first): report as-is.
    out.ok = !w->has_violation();
    out.work_retained = out.work_at_fault;
    out.ms = t.ms();
    return out;
  }

  inj.detach(*w);
  heal::PatchRegistry patches;
  auto patch = apps::token_ring_fix_patch(cfg);

  if (rollback_update) {
    ProcessId failed =
        w->violations().front().pid == kNoProcess
            ? 0
            : w->violations().front().pid;
    std::size_t idx = tm.store(failed).size() - 1;
    tm.rollback_to(failed, idx ? idx - 1 : 0);
    w->clear_violations();
    heal::Healer healer(*w, [] {
      heal::HealOptions ho;
      ho.require_quiescent_inbound = false;  // rollback point is consistent
      return ho;
    }());
    heal::HealReport hr = healer.apply_all(patch);
    if (!hr.ok) {
      out.ok = false;
      out.ms = t.ms();
      return out;
    }
    out.work_retained = apps::token_ring_total_work(*w);
  } else {
    w->restore(initial);
    w->clear_violations();
    heal::Healer healer(*w, [] {
      heal::HealOptions ho;
      ho.require_quiescent_inbound = false;
      return ho;
    }());
    (void)healer.apply_all(patch);
    out.work_retained = apps::token_ring_total_work(*w);  // == 0-ish
  }
  tm.reset();

  rt::RunResult r2 = w->run(1000000);
  out.total_steps += r2.steps;
  out.ok = r2.reason == rt::StopReason::kAllHalted && !w->has_violation();
  out.ms = t.ms();
  return out;
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 5: the Healer (restart vs "
              "rollback + dynamic update)\n");

  const std::uint64_t rounds = 60;
  bench::header("Token ring, 4 processes, 60 rounds; fault at varying depth");
  bench::row("%-9s %-18s %5s %10s %10s %10s %8s", "fault@", "strategy",
             "ok", "work@fault", "retained", "steps", "ms");
  bench::rule();

  for (std::uint64_t frac : {10, 30, 50, 70, 90}) {
    std::uint64_t fault_at = rounds * 4 * frac / 100;  // ~steps into the run
    for (bool rollback : {false, true}) {
      Outcome o = run_with_strategy(rollback, fault_at, rounds);
      bench::row("%7llu%% %-18s %5s %10llu %10llu %10llu %8.1f",
                 (unsigned long long)frac,
                 rollback ? "rollback+update" : "restart",
                 o.ok ? "yes" : "NO",
                 (unsigned long long)o.work_at_fault,
                 (unsigned long long)o.work_retained,
                 (unsigned long long)o.total_steps, o.ms);
    }
  }

  std::printf(
      "\nShape check (paper): rollback+update retains nearly all work done\n"
      "before the fault, so total steps to completion stay flat; restart\n"
      "pays the full re-execution, growing with fault depth.\n");
  return 0;
}
