// Figure 6 — Safe distributed recovery lines using communication-induced
// checkpointing.
//
// Reproduces the paper's scenario and quantifies the contrast it draws:
// with independent (periodic) checkpoints, a failure can force rollbacks to
// cascade (the domino effect); with communication-induced checkpoints
// (before every receive, the speculation mechanism's policy) the latest
// line is safe and rollback stays local.
#include <cstdio>

#include "apps/elect_split.hpp"
#include "apps/rep_counter.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "ckpt/timemachine.hpp"
#include "core/fixd.hpp"
#include "fault/injector.hpp"

namespace {

using namespace fixd;

struct LineStats {
  double avg_rollback_depth = 0;  ///< checkpoints discarded per process
  double avg_events_undone = 0;   ///< own events undone per process
  double avg_ckpts_per_proc = 0;
  std::uint64_t retained_bytes = 0;
};

LineStats measure(bool cic, std::uint64_t periodic, std::size_t n,
                  std::uint64_t seed, std::uint64_t steps) {
  auto w = apps::make_counter_world(n, 2, apps::CounterConfig{6});
  w->set_scheduler(std::make_unique<rt::RandomScheduler>(seed));
  ckpt::TimeMachineOptions topt;
  topt.cic = cic;
  topt.periodic_interval = periodic;
  ckpt::TimeMachine tm(*w, topt);
  tm.attach();
  w->run(steps);

  // Fail the process with the most recent activity; pin it one checkpoint
  // back (it must discard its latest state).
  ProcessId failed = 0;
  std::size_t idx = tm.store(failed).size() - 1;
  if (idx > 0) --idx;
  std::vector<std::ptrdiff_t> pinned(w->size(), -1);
  pinned[failed] = static_cast<std::ptrdiff_t>(idx);

  std::vector<std::vector<VectorClock>> hist(w->size());
  for (ProcessId p = 0; p < w->size(); ++p) {
    for (const auto& e : tm.store(p).entries())
      hist[p].push_back(e.data->vclock);
  }
  auto line = ckpt::RecoveryLineSolver::solve_pinned(hist, pinned);

  LineStats s;
  double total_ck = 0;
  for (ProcessId p = 0; p < w->size(); ++p) {
    s.avg_rollback_depth += static_cast<double>(line.rollback_depth[p]);
    s.avg_events_undone += static_cast<double>(line.events_undone[p]);
    total_ck += static_cast<double>(tm.store(p).size());
  }
  s.avg_rollback_depth /= static_cast<double>(w->size());
  s.avg_events_undone /= static_cast<double>(w->size());
  s.avg_ckpts_per_proc = total_ck / static_cast<double>(w->size());
  s.retained_bytes = tm.retained_bytes();
  return s;
}

void sweep(const char* label, bool cic, std::uint64_t periodic) {
  for (std::size_t n : {3, 5, 8}) {
    LineStats acc;
    const int kSeeds = 8;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      LineStats s = measure(cic, periodic, n, seed, 40 + n * 8);
      acc.avg_rollback_depth += s.avg_rollback_depth;
      acc.avg_events_undone += s.avg_events_undone;
      acc.avg_ckpts_per_proc += s.avg_ckpts_per_proc;
      acc.retained_bytes += s.retained_bytes;
    }
    bench::row("%-22s %3zu %12.2f %13.2f %11.1f %12llu", label, n,
               acc.avg_rollback_depth / kSeeds,
               acc.avg_events_undone / kSeeds, acc.avg_ckpts_per_proc / kSeeds,
               (unsigned long long)(acc.retained_bytes / kSeeds));
  }
}

void figure6_exact_scenario() {
  bench::header("The exact Fig.6 scenario (3 processes, B fails)");
  // A <- B message early; B -> C message later; B rolls back before its
  // send to C. Naive latest line would leave C having received a message B
  // never sent (orphan) — the unsafe recovery line. The solver must pull C
  // back to the safe line.
  auto vc = [](std::initializer_list<std::uint64_t> xs) {
    VectorClock c(3);
    std::size_t i = 0;
    for (auto x : xs) {
      for (std::uint64_t k = 0; k < x; ++k)
        c.tick(static_cast<ProcessId>(i));
      ++i;
    }
    return c;
  };
  std::vector<std::vector<VectorClock>> hist = {
      {vc({0, 0, 0}), vc({2, 1, 0})},  // A: received B's early message
      {vc({0, 0, 0}), vc({0, 1, 0})},  // B: checkpoint before send to C
      {vc({0, 0, 0}), vc({0, 3, 2})},  // C: received B's later message
  };
  bool naive_safe = ckpt::RecoveryLineSolver::consistent(hist, {1, 1, 1});
  auto line = ckpt::RecoveryLineSolver::solve_pinned(hist, {-1, 1, -1});
  bench::row("naive latest line {A1,B1,C1}: %s",
             naive_safe ? "consistent (unexpected!)" : "UNSAFE (orphan)");
  bench::row("safe line found by solver:   {A%zu,B%zu,C%zu}  (iterations=%u)",
             line.index[0], line.index[1], line.index[2], line.iterations);
  bench::row("  -> C dominoes back to its initial checkpoint, exactly as "
             "drawn in the paper");
}

// The recovery line exercised live, not just solved: an asymmetric cut
// split-brains a three-process election, the registry has no applicable
// patch, and the escalation ladder's line rung rolls the whole system
// behind the partition onset with rollback_pinned, heals the cut, and
// resumes (docs/ROBUSTNESS.md). Reports the TimeMachine's channel-replay
// accounting — the drops and re-injections that keep the restored cut
// consistent — and each rung the ladder climbed.
void live_pipeline_rollback() {
  bench::header("Live pipeline rollback (elect-split under asymmetric cut)");

  auto w = apps::make_elect_split_world(3, 1);
  fault::FaultInjector inj;
  fault::FaultSpec cut;
  cut.kind = fault::FaultKind::kPartition;
  cut.group_a = {0};
  cut.group_b = {2};
  cut.symmetric = false;  // the split-brain shape; never self-heals
  inj.add(cut);
  inj.attach(*w);

  heal::PatchRegistry patches;  // empty: the line rung must carry recovery
  core::FixdOptions o;
  o.install_invariants = apps::install_elect_split_invariants;
  o.investigate.order = mc::SearchOrder::kBfs;
  o.investigate.max_states = 2000;
  o.investigate.max_depth = 30;
  o.investigate.model_partition = true;
  o.line_budget = 2;
  o.restart_on_heal_failure = false;
  core::FixdController fixd(*w, o, patches);
  core::FixdReport rep = fixd.run_protected();

  const ckpt::TimeMachineStats& tms = fixd.time_machine().stats();
  bench::row("completed=%s  faults=%zu  rollbacks=%llu",
             rep.completed ? "yes" : "NO", rep.faults_detected,
             (unsigned long long)tms.rollbacks);
  bench::row("channel replay: dropped=%llu (sent after the line)  "
             "reinjected=%llu (logged deliveries)",
             (unsigned long long)tms.messages_dropped,
             (unsigned long long)tms.messages_reinjected);
  for (const core::RungOutcome& ro : rep.ladder) {
    bench::row("  rung %-14s %-4s %s", core::to_string(ro.rung),
               ro.ok ? "ok" : "FAIL", ro.detail.c_str());
  }
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 6: safe recovery lines, "
              "communication-induced vs independent checkpointing\n");

  figure6_exact_scenario();
  live_pipeline_rollback();

  bench::header(
      "Rollback locality after a failure (avg over 8 random runs)");
  bench::row("%-22s %3s %12s %13s %11s %12s", "checkpoint policy", "N",
             "rb-depth/proc", "undone/proc", "ckpts/proc", "bytes");
  bench::rule();
  sweep("CIC (before receive)", true, 0);
  sweep("periodic/3 (indep)", false, 3);
  sweep("periodic/8 (indep)", false, 8);
  sweep("periodic/16 (indep)", false, 16);

  std::printf(
      "\nShape check (paper): CIC checkpoints always admit a safe line one\n"
      "step back (no domino); sparse independent checkpoints cascade —\n"
      "events undone per process grows with the checkpoint interval.\n");
  return 0;
}
