// Shared helpers for the figure-reproduction benches: wall timing and
// fixed-width table printing, so every bench emits the paper-shaped rows.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace fixd::bench {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void rule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

}  // namespace fixd::bench
