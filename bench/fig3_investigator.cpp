// Figure 3 — The Investigator: exhaustively finding execution paths that
// lead to invariant violations.
//
// Measures state-space exploration from an initial (or restored) state:
// states/transitions explored, wall time, time-to-first-violation, and the
// blowup with process count — the paper's observation that model checking
// a global state space is "often prohibitively expensive, memory-wise ...
// more than 5-10 processes" (§2.1), here made concrete.
#include <cstdio>

#include "apps/token_ring.hpp"
#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "mc/sysmodel.hpp"

namespace {

using namespace fixd;

void header_row() {
  bench::row("%-12s %3s %-8s %9s %11s %7s %8s %9s %8s %8s %9s %10s", "app",
             "N", "order", "states", "trans", "bug?", "depth", "ms",
             "dig.ms", "snap.ms", "peak KiB", "states/s");
}

void explore_row(const char* app, std::size_t n, const char* order_name,
                 mc::SearchOrder order, rt::World& w,
                 const std::function<void(rt::World&)>& installer,
                 std::size_t max_states, bool trail_frontier = false) {
  mc::SysExploreOptions o;
  o.order = order;
  o.max_states = max_states;
  o.max_depth = 80;
  o.walk_restarts = 256;
  o.trail_frontier = trail_frontier;
  o.install_invariants = installer;
  mc::SystemExplorer ex(w, o);
  auto res = ex.explore();
  bench::row("%-12s %3zu %-8s %9llu %11llu %7s %8zu %9.1f %8.1f %8.1f "
             "%9.1f %10.0f",
             app, n, order_name, (unsigned long long)res.stats.states,
             (unsigned long long)res.stats.transitions,
             res.found_violation() ? "YES" : "no",
             res.found_violation() ? res.violations[0].depth : 0,
             res.stats.wall_ms, res.stats.digest_ms, res.stats.snapshot_ms,
             res.stats.peak_frontier_bytes / 1024.0,
             res.stats.states_per_sec());
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 3: the Investigator (exhaustive "
              "path exploration)\n");

  bench::header("Buggy protocols: time-to-first-violation by search order");
  header_row();
  bench::rule();

  struct OrderCase {
    const char* name;
    mc::SearchOrder order;
  } orders[] = {
      {"bfs", mc::SearchOrder::kBfs},
      {"dfs", mc::SearchOrder::kDfs},
      {"random", mc::SearchOrder::kRandomWalk},
  };

  for (const auto& oc : orders) {
    apps::TokenRingConfig cfg;
    cfg.target_rounds = 2;
    auto w = apps::make_token_ring_world(3, 1, cfg);
    explore_row("token-ring", 3, oc.name, oc.order, *w,
                apps::install_token_ring_invariants, 200000);
  }
  for (const auto& oc : orders) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(3, 1, cfg);
    explore_row("2pc", 3, oc.name, oc.order, *w,
                apps::install_two_pc_invariants, 200000);
  }

  bench::header("State-space blowup with process count (fixed verified 2pc)");
  header_row();
  bench::rule();
  for (std::size_t n = 2; n <= 6; ++n) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(n, 2, cfg);
    explore_row("2pc-v2", n, "bfs", mc::SearchOrder::kBfs, *w,
                apps::install_two_pc_invariants, 120000);
  }

  bench::header(
      "Frontier representation at the feasibility wall (2pc n=6, BFS)");
  header_row();
  bench::rule();
  for (bool trail : {false, true}) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(6, 2, cfg);
    explore_row(trail ? "2pc-trail" : "2pc-snap", 6, "bfs",
                mc::SearchOrder::kBfs, *w, apps::install_two_pc_invariants,
                120000, trail);
  }

  bench::header("Exploration from a mid-run (Time Machine restored) state");
  header_row();
  bench::rule();
  {
    apps::TokenRingConfig cfg;
    cfg.target_rounds = 3;
    auto w = apps::make_token_ring_world(4, 1, cfg);
    w->run(8);  // partway in; the Investigator picks up from here
    explore_row("token-ring*", 4, "bfs", mc::SearchOrder::kBfs, *w,
                apps::install_token_ring_invariants, 200000);
  }

  std::printf(
      "\nShape check (paper): exhaustive exploration finds the scheduling\n"
      "bugs plain runs miss; state counts grow steeply with N (the 5-10\n"
      "process feasibility wall); BFS gives the shortest trails.\n");
  return 0;
}
