// Figure 3 — The Investigator: exhaustively finding execution paths that
// lead to invariant violations.
//
// Measures state-space exploration from an initial (or restored) state:
// states/transitions explored, wall time, time-to-first-violation, and the
// blowup with process count — the paper's observation that model checking
// a global state space is "often prohibitively expensive, memory-wise ...
// more than 5-10 processes" (§2.1), here made concrete. Since the
// memory-lean-frontier PR the frontier section also gates the explorer's
// memory trajectory: peak frontier and visited-set bytes for snapshot,
// cold-trail, and (replay-warmed) trail frontiers, against the recorded
// pre-compaction baselines.
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/token_ring.hpp"
#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "mc/sysmodel.hpp"

namespace {

using namespace fixd;

// Pre-compaction (PR 4) sequential-BFS baselines for the frontier-memory
// gate below, measured at the enabled-index PR head on the x86-64 Linux
// CI image (g++, Release, libstdc++): peak_frontier_bytes of the same
// 2pc-v2 sweeps this file runs. Byte peaks are deterministic for a fixed
// ABI (no timing in them), so the gate divides the recorded constant by
// the measured peak and is skipped on non-LP64 platforms where struct
// layouts differ.
constexpr std::uint64_t kPr4TrailPeakN6 = 9650552;
constexpr std::uint64_t kPr4TrailPeakN4 = 101252;
constexpr std::uint64_t kPr4SnapPeakN6 = 10240920;
constexpr double kTrailMemGate = 1.8;  // required n=6 trail reduction

void header_row() {
  bench::row("%-12s %3s %-8s %9s %11s %7s %8s %9s %8s %8s %9s %8s %10s",
             "app", "N", "order", "states", "trans", "bug?", "depth", "ms",
             "dig.ms", "snap.ms", "peak KiB", "vis KiB", "states/s");
}

mc::SysExploreResult explore_row(
    const char* app, std::size_t n, const char* order_name,
    mc::SearchOrder order, rt::World& w,
    const std::function<void(rt::World&)>& installer, std::size_t max_states,
    bool trail_frontier = false, bool replay_warm = true) {
  mc::SysExploreOptions o;
  o.order = order;
  o.max_states = max_states;
  o.max_depth = 80;
  o.walk_restarts = 256;
  o.trail_frontier = trail_frontier;
  o.install_invariants = installer;
  if (!replay_warm) {
    // The cold-trail comparison row: same search, replay warming off on
    // every world the explorer creates (the installer hook reaches them
    // all, like the enabled-index differential).
    o.install_invariants = [installer](rt::World& world) {
      installer(world);
      world.set_replay_warm(false);
    };
  }
  mc::SystemExplorer ex(w, o);
  auto res = ex.explore();
  bench::row("%-12s %3zu %-8s %9llu %11llu %7s %8zu %9.1f %8.1f %8.1f "
             "%9.1f %8.1f %10.0f",
             app, n, order_name, (unsigned long long)res.stats.states,
             (unsigned long long)res.stats.transitions,
             res.found_violation() ? "YES" : "no",
             res.found_violation() ? res.violations[0].depth : 0,
             res.stats.wall_ms, res.stats.digest_ms, res.stats.snapshot_ms,
             res.stats.peak_frontier_bytes / 1024.0,
             res.stats.visited_resident_bytes / 1024.0,
             res.stats.states_per_sec());
  return res;
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 3: the Investigator (exhaustive "
              "path exploration)\n");

  bench::header("Buggy protocols: time-to-first-violation by search order");
  header_row();
  bench::rule();

  struct OrderCase {
    const char* name;
    mc::SearchOrder order;
  } orders[] = {
      {"bfs", mc::SearchOrder::kBfs},
      {"dfs", mc::SearchOrder::kDfs},
      {"random", mc::SearchOrder::kRandomWalk},
  };

  for (const auto& oc : orders) {
    apps::TokenRingConfig cfg;
    cfg.target_rounds = 2;
    auto w = apps::make_token_ring_world(3, 1, cfg);
    explore_row("token-ring", 3, oc.name, oc.order, *w,
                apps::install_token_ring_invariants, 200000);
  }
  for (const auto& oc : orders) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(3, 1, cfg);
    explore_row("2pc", 3, oc.name, oc.order, *w,
                apps::install_two_pc_invariants, 200000);
  }

  bench::header("State-space blowup with process count (fixed verified 2pc)");
  header_row();
  bench::rule();
  for (std::size_t n = 2; n <= 6; ++n) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(n, 2, cfg);
    explore_row("2pc-v2", n, "bfs", mc::SearchOrder::kBfs, *w,
                apps::install_two_pc_invariants, 120000);
  }

  // Frontier-memory comparison: snapshot frontier, cold trail (replay
  // warming off — every re-anchor captures fresh, the PR 4 behavior on
  // the compact node layout), and the default warmed trail, at n=4 and
  // n=6. The three visit the identical state set (asserted), so the
  // peak/visited columns are directly comparable.
  struct FrontierRec {
    std::size_t n;
    const char* mode;
    mc::ExploreStats stats;
  };
  std::vector<FrontierRec> frontier;
  bench::header(
      "Frontier representation at the feasibility wall (2pc, BFS: snapshot "
      "vs cold trail vs replay-warmed trail)");
  header_row();
  bench::rule();
  for (std::size_t n : {std::size_t{4}, std::size_t{6}}) {
    std::uint64_t want_states = 0;
    for (int mode = 0; mode < 3; ++mode) {
      apps::TwoPcConfig cfg;
      cfg.total_txns = 1;
      auto w = apps::make_two_pc_world(n, 2, cfg);
      const bool trail = mode != 0;
      const bool warm = mode == 2;
      const char* name =
          mode == 0 ? "2pc-snap" : (mode == 1 ? "2pc-trail-c" : "2pc-trail");
      auto res = explore_row(name, n, "bfs", mc::SearchOrder::kBfs, *w,
                             apps::install_two_pc_invariants, 120000, trail,
                             warm);
      if (mode == 0) {
        want_states = res.stats.states;
      } else if (res.stats.states != want_states) {
        std::fprintf(stderr,
                     "FATAL: frontier mode visited a different state set\n");
        return 1;
      }
      frontier.push_back({n, name, res.stats});
    }
  }

  // Beyond-RAM row: the same n=6 sweep under a fixed resident budget for
  // the visited set (Bloom front + disk-spilled exact tier) and the trail
  // frontier (clock-evicted anchors, replay-recomputed on demand). The
  // budgeted run must visit exactly the unbounded run's state set — the
  // tier answers membership exactly, eviction only drops recomputable
  // bytes. bench_ablation_spill holds the full >=10x-past-ceiling gates;
  // this row keeps the memory trajectory visible in the figure.
  bench::header(
      "Beyond-RAM exploration (2pc-v2 n=6, BFS, trail frontier, budgeted)");
  bench::row("%-12s %9s %9s %9s %9s %9s %8s %8s %8s", "app", "states",
             "res KiB", "spl KiB", "io KiB", "peak KiB", "fp rate", "evict",
             "recomp");
  bench::rule();
  mc::ExploreStats spill_stats[2];  // [0]=unbounded, [1]=budgeted
  constexpr std::uint64_t kSpillVisitedBudget = 128 * 1024;
  constexpr std::uint64_t kSpillFrontierBudget = 1024 * 1024;
  for (int mode = 0; mode < 2; ++mode) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(6, 2, cfg);
    mc::SysExploreOptions o;
    o.order = mc::SearchOrder::kBfs;
    o.max_states = 120000;
    o.max_depth = 80;
    o.trail_frontier = true;
    o.install_invariants = apps::install_two_pc_invariants;
    if (mode == 1) {
      o.visited_budget_bytes = kSpillVisitedBudget;
      o.frontier_budget_bytes = kSpillFrontierBudget;
    }
    mc::SystemExplorer ex(*w, o);
    auto res = ex.explore();
    spill_stats[mode] = res.stats;
    bench::row("%-12s %9llu %9.1f %9.1f %9.1f %9.1f %8.4f %8llu %8llu",
               mode == 0 ? "2pc-unbnd" : "2pc-budget",
               (unsigned long long)res.stats.states,
               res.stats.visited_resident_bytes / 1024.0,
               res.stats.visited_spilled_bytes / 1024.0,
               res.stats.spilled_bytes / 1024.0,
               res.stats.peak_frontier_bytes / 1024.0,
               res.stats.bloom_fp_rate,
               (unsigned long long)res.stats.anchor_evictions,
               (unsigned long long)res.stats.anchor_recomputes);
  }
  const bool spill_identity =
      spill_stats[0].states == spill_stats[1].states &&
      spill_stats[0].transitions == spill_stats[1].transitions;

  bench::header(
      "Parallel frontier sharding (2pc-v2 n=6, BFS, trail frontier)");
  bench::row("%-12s %3s %9s %11s %9s %7s %9s %10s %8s", "app", "wk",
             "states", "trans", "ms", "steals", "dig.ms", "states/s",
             "speedup");
  bench::rule();
  struct ParRow {
    std::size_t workers;
    mc::ExploreStats stats;
  };
  std::vector<ParRow> prows;
  double base_sps = 0.0;
  for (std::size_t wk : {1u, 2u, 4u, 8u}) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(6, 2, cfg);
    mc::SysExploreOptions o;
    o.order = mc::SearchOrder::kBfs;
    o.max_states = 120000;
    o.max_depth = 80;
    o.trail_frontier = true;
    o.workers = wk;
    o.install_invariants = apps::install_two_pc_invariants;
    mc::SystemExplorer ex(*w, o);
    auto res = ex.explore();
    if (wk == 1) base_sps = res.stats.states_per_sec();
    double speedup =
        base_sps > 0 ? res.stats.states_per_sec() / base_sps : 0.0;
    bench::row("%-12s %3zu %9llu %11llu %9.1f %7llu %9.1f %10.0f %7.2fx",
               "2pc-par", wk, (unsigned long long)res.stats.states,
               (unsigned long long)res.stats.transitions, res.stats.wall_ms,
               (unsigned long long)res.stats.steals, res.stats.digest_ms,
               res.stats.states_per_sec(), speedup);
    prows.push_back({wk, res.stats});
  }

  // Sharded-kPriority scaling: per-worker heaps with best-effort top
  // steal replaced the single mutex-guarded global heap, so the
  // heuristic search shards like the deque orders do. The 4-worker run
  // must visit exactly the 1-worker states (pop order cannot change a
  // dedup'd exhaustive search's set) and show actual cross-shard pops.
  bench::header(
      "Sharded best-effort priority search (2pc-v2 n=5, kPriority)");
  bench::row("%-12s %3s %9s %11s %9s %7s %10s", "app", "wk", "states",
             "trans", "ms", "steals", "states/s");
  bench::rule();
  std::vector<ParRow> krows;
  for (std::size_t wk : {1u, 4u}) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(5, 2, cfg);
    mc::SysExploreOptions o;
    o.order = mc::SearchOrder::kPriority;
    o.max_states = 120000;
    o.max_depth = 80;
    o.workers = wk;
    o.priority = [](const rt::World& world) {
      return static_cast<double>(world.network().pending_count());
    };
    o.install_invariants = apps::install_two_pc_invariants;
    mc::SystemExplorer ex(*w, o);
    auto res = ex.explore();
    bench::row("%-12s %3zu %9llu %11llu %9.1f %7llu %10.0f", "2pc-kpri",
               wk, (unsigned long long)res.stats.states,
               (unsigned long long)res.stats.transitions, res.stats.wall_ms,
               (unsigned long long)res.stats.steals,
               res.stats.states_per_sec());
    krows.push_back({wk, res.stats});
  }

  // Partial-order reduction at the feasibility wall: the buggy 2pc at
  // n=6, exhaustively, with and without footprint-exact DPOR. Equal
  // violation coverage (same invariant set) at a fraction of the states
  // is the figure's punchline — the reduction moves the wall, it does
  // not trade bugs for speed.
  bench::header(
      "Dynamic partial-order reduction (2pc-v1 n=6, BFS, exhaustive)");
  bench::row("%-12s %5s %9s %11s %9s %9s %6s", "app", "por", "states",
             "trans", "deferred", "ms", "bugs");
  bench::rule();
  mc::SysExploreResult por_runs[2];
  std::set<std::string> por_names[2];
  for (int mode = 0; mode < 2; ++mode) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(6, 1, cfg);
    mc::SysExploreOptions o;
    o.order = mc::SearchOrder::kBfs;
    o.max_states = 2000000;
    o.max_depth = 1u << 20;  // exhaustive: nothing truncates
    o.max_violations = ~std::size_t{0};
    o.dedup = true;
    o.sleep_sets = mode == 1;
    o.por = mode == 1;
    o.install_invariants = apps::install_two_pc_invariants;
    mc::SystemExplorer ex(*w, o);
    por_runs[mode] = ex.explore();
    for (const auto& v : por_runs[mode].violations) {
      por_names[mode].insert(v.violation.invariant);
    }
    bench::row("%-12s %5s %9llu %11llu %9llu %9.1f %6zu", "2pc-v1",
               mode == 1 ? "on" : "off",
               (unsigned long long)por_runs[mode].stats.states,
               (unsigned long long)por_runs[mode].stats.transitions,
               (unsigned long long)por_runs[mode].stats.por_deferred,
               por_runs[mode].stats.wall_ms, por_runs[mode].violations.size());
  }
  const double por_reduction =
      por_runs[1].stats.states > 0
          ? static_cast<double>(por_runs[0].stats.states) /
                static_cast<double>(por_runs[1].stats.states)
          : 0.0;
  const bool por_coverage_equal =
      por_names[0] == por_names[1] && !por_names[1].empty();

  bench::header("Exploration from a mid-run (Time Machine restored) state");
  header_row();
  bench::rule();
  {
    apps::TokenRingConfig cfg;
    cfg.target_rounds = 3;
    auto w = apps::make_token_ring_world(4, 1, cfg);
    w->run(8);  // partway in; the Investigator picks up from here
    explore_row("token-ring*", 4, "bfs", mc::SearchOrder::kBfs, *w,
                apps::install_token_ring_invariants, 200000);
  }

  // Machine-readable record (BENCH_fig3.json, archived by the scheduled
  // perf workflow so the scaling AND memory trajectories are inspectable).
  const unsigned hw = std::thread::hardware_concurrency();
  double speedup_4w = 0.0;
  for (const auto& r : prows) {
    if (r.workers == 4 && base_sps > 0) {
      speedup_4w = r.stats.states_per_sec() / base_sps;
    }
  }
  const mc::ExploreStats* trail_n6 = nullptr;
  const mc::ExploreStats* trail_cold_n6 = nullptr;
  for (const auto& f : frontier) {
    if (f.n == 6 && std::string(f.mode) == "2pc-trail") trail_n6 = &f.stats;
    if (f.n == 6 && std::string(f.mode) == "2pc-trail-c") {
      trail_cold_n6 = &f.stats;
    }
  }
  const double trail_mem_reduction =
      trail_n6 && trail_n6->peak_frontier_bytes > 0
          ? static_cast<double>(kPr4TrailPeakN6) /
                static_cast<double>(trail_n6->peak_frontier_bytes)
          : 0.0;
  FILE* f = std::fopen("BENCH_fig3.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"hw_threads\": %u,\n  \"parallel_2pc_n6\": [\n",
                 hw);
    for (std::size_t i = 0; i < prows.size(); ++i) {
      const auto& r = prows[i];
      double speedup =
          base_sps > 0 ? r.stats.states_per_sec() / base_sps : 0.0;
      std::fprintf(f,
                   "    {\"workers\": %zu, \"states\": %llu, "
                   "\"transitions\": %llu, \"wall_ms\": %.2f, "
                   "\"steals\": %llu, \"states_per_sec\": %.0f, "
                   "\"speedup\": %.3f}%s\n",
                   r.workers, (unsigned long long)r.stats.states,
                   (unsigned long long)r.stats.transitions, r.stats.wall_ms,
                   (unsigned long long)r.stats.steals,
                   r.stats.states_per_sec(), speedup,
                   i + 1 < prows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"speedup_4w\": %.3f,\n  \"frontier\": [\n",
                 speedup_4w);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const auto& fr = frontier[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"mode\": \"%s\", "
                   "\"peak_frontier_bytes\": %llu, "
                   "\"visited_resident_bytes\": %llu, "
                   "\"visited_spilled_bytes\": %llu, "
                   "\"states_per_sec\": %.0f}%s\n",
                   fr.n, fr.mode,
                   (unsigned long long)fr.stats.peak_frontier_bytes,
                   (unsigned long long)fr.stats.visited_resident_bytes,
                   (unsigned long long)fr.stats.visited_spilled_bytes,
                   fr.stats.states_per_sec(),
                   i + 1 < frontier.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"pr4_trail_peak_n6\": %llu,\n"
                 "  \"pr4_trail_peak_n4\": %llu,\n"
                 "  \"pr4_snap_peak_n6\": %llu,\n"
                 "  \"trail_mem_reduction_n6\": %.3f,\n"
                 "  \"kpriority_2pc_n5\": [\n",
                 (unsigned long long)kPr4TrailPeakN6,
                 (unsigned long long)kPr4TrailPeakN4,
                 (unsigned long long)kPr4SnapPeakN6, trail_mem_reduction);
    for (std::size_t i = 0; i < krows.size(); ++i) {
      const auto& r = krows[i];
      std::fprintf(f,
                   "    {\"workers\": %zu, \"states\": %llu, "
                   "\"steals\": %llu, \"states_per_sec\": %.0f}%s\n",
                   r.workers, (unsigned long long)r.stats.states,
                   (unsigned long long)r.stats.steals,
                   r.stats.states_per_sec(), i + 1 < krows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"spill_2pc_n6\": {\"visited_budget_bytes\": %llu, "
                 "\"frontier_budget_bytes\": %llu, "
                 "\"states_unbounded\": %llu, \"states_budgeted\": %llu, "
                 "\"visited_resident_bytes\": %llu, "
                 "\"visited_spilled_bytes\": %llu, \"spilled_bytes\": %llu, "
                 "\"bloom_fp_rate\": %.5f, \"anchor_evictions\": %llu, "
                 "\"anchor_recomputes\": %llu, \"identity\": %s},\n",
                 (unsigned long long)kSpillVisitedBudget,
                 (unsigned long long)kSpillFrontierBudget,
                 (unsigned long long)spill_stats[0].states,
                 (unsigned long long)spill_stats[1].states,
                 (unsigned long long)spill_stats[1].visited_resident_bytes,
                 (unsigned long long)spill_stats[1].visited_spilled_bytes,
                 (unsigned long long)spill_stats[1].spilled_bytes,
                 spill_stats[1].bloom_fp_rate,
                 (unsigned long long)spill_stats[1].anchor_evictions,
                 (unsigned long long)spill_stats[1].anchor_recomputes,
                 spill_identity ? "true" : "false");
    std::fprintf(f,
                 "  \"por_2pc_n6\": {\"unreduced_states\": %llu, "
                 "\"reduced_states\": %llu, \"states_reduction\": %.3f, "
                 "\"coverage_equal\": %s}\n}\n",
                 (unsigned long long)por_runs[0].stats.states,
                 (unsigned long long)por_runs[1].stats.states, por_reduction,
                 por_coverage_equal ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_fig3.json\n");
  }

  std::printf(
      "\nShape check (paper): exhaustive exploration finds the scheduling\n"
      "bugs plain runs miss; state counts grow steeply with N (the 5-10\n"
      "process feasibility wall); BFS gives the shortest trails.\n");

  bool ok = true;

  // Frontier-memory gate: the warmed trail frontier must hold the same
  // n=6 state set in <= 1/1.8 of the PR 4 trail frontier's bytes. Byte
  // peaks are deterministic, so this gates everywhere struct layout
  // matches the recorded baseline (LP64).
  if (sizeof(void*) == 8) {
    std::printf("frontier-memory gate: n=6 trail peak %.1f KiB vs PR4 "
                "%.1f KiB -> %.2fx reduction (need >= %.2fx) -> %s\n",
                trail_n6 ? trail_n6->peak_frontier_bytes / 1024.0 : 0.0,
                kPr4TrailPeakN6 / 1024.0, trail_mem_reduction, kTrailMemGate,
                trail_mem_reduction >= kTrailMemGate ? "OK" : "FAIL");
    if (trail_mem_reduction < kTrailMemGate) ok = false;
    if (trail_cold_n6 && trail_n6 &&
        trail_n6->peak_frontier_bytes > trail_cold_n6->peak_frontier_bytes) {
      std::printf("frontier-memory gate: warmed trail (%.1f KiB) must not "
                  "exceed cold trail (%.1f KiB) -> FAIL\n",
                  trail_n6->peak_frontier_bytes / 1024.0,
                  trail_cold_n6->peak_frontier_bytes / 1024.0);
      ok = false;
    }
  } else {
    std::printf("frontier-memory gate skipped: non-LP64 platform, "
                "recorded reduction %.2fx\n",
                trail_mem_reduction);
  }

  // Sharded-kPriority gate: identical visit set at 4 workers (always
  // enforceable — it is deterministic), and actual cross-shard pops on
  // hardware that can interleave workers (recorded elsewhere).
  if (krows.size() == 2) {
    const bool same = krows[0].stats.states == krows[1].stats.states &&
                      krows[0].stats.transitions ==
                          krows[1].stats.transitions;
    std::printf("kPriority gate: 4-worker states %llu vs 1-worker %llu -> "
                "%s; steals %llu%s\n",
                (unsigned long long)krows[1].stats.states,
                (unsigned long long)krows[0].stats.states,
                same ? "OK" : "FAIL",
                (unsigned long long)krows[1].stats.steals,
                hw >= 2 ? (krows[1].stats.steals > 0 ? " (> 0: OK)"
                                                     : " (need > 0: FAIL)")
                        : " (steal gate skipped: 1 hw thread)");
    if (!same) ok = false;
    if (hw >= 2 && krows[1].stats.steals == 0) ok = false;
  }

  // POR gate: footprint-exact DPOR must at least halve the states visited
  // on the buggy 2pc at n=6 while reporting the identical violation set.
  // Both sides are exhaustive and deterministic, so this gates everywhere.
  std::printf("por gate: n=6 states %llu -> %llu = %.1fx reduction (need "
              ">= 2.0x), coverage %s -> %s\n",
              (unsigned long long)por_runs[0].stats.states,
              (unsigned long long)por_runs[1].stats.states, por_reduction,
              por_coverage_equal ? "equal" : "DIFFERS",
              por_reduction >= 2.0 && por_coverage_equal ? "OK" : "FAIL");
  if (por_reduction < 2.0 || !por_coverage_equal) ok = false;
  if (por_runs[0].stats.truncated || por_runs[1].stats.truncated) {
    std::printf("por gate: truncated run (budget too small) -> FAIL\n");
    ok = false;
  }

  // Beyond-RAM gate: the budgeted run must visit exactly the unbounded
  // run's state set (the tier is exact; eviction is recompute-safe), must
  // actually spill, and must actually evict anchors — otherwise the row
  // is not exercising the beyond-RAM machinery. Deterministic, so it
  // gates everywhere.
  std::printf("spill gate: budgeted states %llu vs unbounded %llu "
              "(identity %s), spilled %.1f KiB, evictions %llu -> %s\n",
              (unsigned long long)spill_stats[1].states,
              (unsigned long long)spill_stats[0].states,
              spill_identity ? "OK" : "DIFFERS",
              spill_stats[1].visited_spilled_bytes / 1024.0,
              (unsigned long long)spill_stats[1].anchor_evictions,
              spill_identity && spill_stats[1].visited_spilled_bytes > 0 &&
                      spill_stats[1].anchor_evictions > 0
                  ? "OK"
                  : "FAIL");
  if (!spill_identity || spill_stats[1].visited_spilled_bytes == 0 ||
      spill_stats[1].anchor_evictions == 0) {
    ok = false;
  }

  // Parallel-scaling gate: ≥1.7x states/sec at 4 workers vs 1 on the n=6
  // trail frontier. Only enforced when the hardware can actually run 4
  // workers (single/dual-core machines record the numbers but cannot
  // demonstrate the scaling).
  if (hw >= 4) {
    std::printf("parallel gate (hw=%u): 4-worker speedup %.2fx (need "
                ">= 1.70x) -> %s\n",
                hw, speedup_4w, speedup_4w >= 1.7 ? "OK" : "FAIL");
    if (speedup_4w < 1.7) ok = false;
  } else {
    std::printf("parallel gate skipped: only %u hardware thread(s); "
                "4-worker speedup recorded as %.2fx\n",
                hw, speedup_4w);
  }
  return ok ? 0 : 1;
}
