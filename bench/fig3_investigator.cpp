// Figure 3 — The Investigator: exhaustively finding execution paths that
// lead to invariant violations.
//
// Measures state-space exploration from an initial (or restored) state:
// states/transitions explored, wall time, time-to-first-violation, and the
// blowup with process count — the paper's observation that model checking
// a global state space is "often prohibitively expensive, memory-wise ...
// more than 5-10 processes" (§2.1), here made concrete.
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/token_ring.hpp"
#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "mc/sysmodel.hpp"

namespace {

using namespace fixd;

void header_row() {
  bench::row("%-12s %3s %-8s %9s %11s %7s %8s %9s %8s %8s %9s %10s", "app",
             "N", "order", "states", "trans", "bug?", "depth", "ms",
             "dig.ms", "snap.ms", "peak KiB", "states/s");
}

void explore_row(const char* app, std::size_t n, const char* order_name,
                 mc::SearchOrder order, rt::World& w,
                 const std::function<void(rt::World&)>& installer,
                 std::size_t max_states, bool trail_frontier = false) {
  mc::SysExploreOptions o;
  o.order = order;
  o.max_states = max_states;
  o.max_depth = 80;
  o.walk_restarts = 256;
  o.trail_frontier = trail_frontier;
  o.install_invariants = installer;
  mc::SystemExplorer ex(w, o);
  auto res = ex.explore();
  bench::row("%-12s %3zu %-8s %9llu %11llu %7s %8zu %9.1f %8.1f %8.1f "
             "%9.1f %10.0f",
             app, n, order_name, (unsigned long long)res.stats.states,
             (unsigned long long)res.stats.transitions,
             res.found_violation() ? "YES" : "no",
             res.found_violation() ? res.violations[0].depth : 0,
             res.stats.wall_ms, res.stats.digest_ms, res.stats.snapshot_ms,
             res.stats.peak_frontier_bytes / 1024.0,
             res.stats.states_per_sec());
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 3: the Investigator (exhaustive "
              "path exploration)\n");

  bench::header("Buggy protocols: time-to-first-violation by search order");
  header_row();
  bench::rule();

  struct OrderCase {
    const char* name;
    mc::SearchOrder order;
  } orders[] = {
      {"bfs", mc::SearchOrder::kBfs},
      {"dfs", mc::SearchOrder::kDfs},
      {"random", mc::SearchOrder::kRandomWalk},
  };

  for (const auto& oc : orders) {
    apps::TokenRingConfig cfg;
    cfg.target_rounds = 2;
    auto w = apps::make_token_ring_world(3, 1, cfg);
    explore_row("token-ring", 3, oc.name, oc.order, *w,
                apps::install_token_ring_invariants, 200000);
  }
  for (const auto& oc : orders) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(3, 1, cfg);
    explore_row("2pc", 3, oc.name, oc.order, *w,
                apps::install_two_pc_invariants, 200000);
  }

  bench::header("State-space blowup with process count (fixed verified 2pc)");
  header_row();
  bench::rule();
  for (std::size_t n = 2; n <= 6; ++n) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(n, 2, cfg);
    explore_row("2pc-v2", n, "bfs", mc::SearchOrder::kBfs, *w,
                apps::install_two_pc_invariants, 120000);
  }

  bench::header(
      "Frontier representation at the feasibility wall (2pc n=6, BFS)");
  header_row();
  bench::rule();
  for (bool trail : {false, true}) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(6, 2, cfg);
    explore_row(trail ? "2pc-trail" : "2pc-snap", 6, "bfs",
                mc::SearchOrder::kBfs, *w, apps::install_two_pc_invariants,
                120000, trail);
  }

  bench::header(
      "Parallel frontier sharding (2pc-v2 n=6, BFS, trail frontier)");
  bench::row("%-12s %3s %9s %11s %9s %7s %9s %10s %8s", "app", "wk",
             "states", "trans", "ms", "steals", "dig.ms", "states/s",
             "speedup");
  bench::rule();
  struct ParRow {
    std::size_t workers;
    mc::ExploreStats stats;
  };
  std::vector<ParRow> prows;
  double base_sps = 0.0;
  for (std::size_t wk : {1u, 2u, 4u, 8u}) {
    apps::TwoPcConfig cfg;
    cfg.total_txns = 1;
    auto w = apps::make_two_pc_world(6, 2, cfg);
    mc::SysExploreOptions o;
    o.order = mc::SearchOrder::kBfs;
    o.max_states = 120000;
    o.max_depth = 80;
    o.trail_frontier = true;
    o.workers = wk;
    o.install_invariants = apps::install_two_pc_invariants;
    mc::SystemExplorer ex(*w, o);
    auto res = ex.explore();
    if (wk == 1) base_sps = res.stats.states_per_sec();
    double speedup =
        base_sps > 0 ? res.stats.states_per_sec() / base_sps : 0.0;
    bench::row("%-12s %3zu %9llu %11llu %9.1f %7llu %9.1f %10.0f %7.2fx",
               "2pc-par", wk, (unsigned long long)res.stats.states,
               (unsigned long long)res.stats.transitions, res.stats.wall_ms,
               (unsigned long long)res.stats.steals, res.stats.digest_ms,
               res.stats.states_per_sec(), speedup);
    prows.push_back({wk, res.stats});
  }

  bench::header("Exploration from a mid-run (Time Machine restored) state");
  header_row();
  bench::rule();
  {
    apps::TokenRingConfig cfg;
    cfg.target_rounds = 3;
    auto w = apps::make_token_ring_world(4, 1, cfg);
    w->run(8);  // partway in; the Investigator picks up from here
    explore_row("token-ring*", 4, "bfs", mc::SearchOrder::kBfs, *w,
                apps::install_token_ring_invariants, 200000);
  }

  // Machine-readable parallel-scaling record (BENCH_fig3.json, archived
  // by the scheduled perf workflow so the trajectory is inspectable).
  const unsigned hw = std::thread::hardware_concurrency();
  double speedup_4w = 0.0;
  for (const auto& r : prows) {
    if (r.workers == 4 && base_sps > 0) {
      speedup_4w = r.stats.states_per_sec() / base_sps;
    }
  }
  FILE* f = std::fopen("BENCH_fig3.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"hw_threads\": %u,\n  \"parallel_2pc_n6\": [\n",
                 hw);
    for (std::size_t i = 0; i < prows.size(); ++i) {
      const auto& r = prows[i];
      double speedup =
          base_sps > 0 ? r.stats.states_per_sec() / base_sps : 0.0;
      std::fprintf(f,
                   "    {\"workers\": %zu, \"states\": %llu, "
                   "\"transitions\": %llu, \"wall_ms\": %.2f, "
                   "\"steals\": %llu, \"states_per_sec\": %.0f, "
                   "\"speedup\": %.3f}%s\n",
                   r.workers, (unsigned long long)r.stats.states,
                   (unsigned long long)r.stats.transitions, r.stats.wall_ms,
                   (unsigned long long)r.stats.steals,
                   r.stats.states_per_sec(), speedup,
                   i + 1 < prows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"speedup_4w\": %.3f\n}\n", speedup_4w);
    std::fclose(f);
    std::printf("\nwrote BENCH_fig3.json\n");
  }

  std::printf(
      "\nShape check (paper): exhaustive exploration finds the scheduling\n"
      "bugs plain runs miss; state counts grow steeply with N (the 5-10\n"
      "process feasibility wall); BFS gives the shortest trails.\n");

  // Parallel-scaling gate: ≥1.7x states/sec at 4 workers vs 1 on the n=6
  // trail frontier. Only enforced when the hardware can actually run 4
  // workers (single/dual-core machines record the numbers but cannot
  // demonstrate the scaling).
  if (hw >= 4) {
    std::printf("parallel gate (hw=%u): 4-worker speedup %.2fx (need "
                ">= 1.70x) -> %s\n",
                hw, speedup_4w, speedup_4w >= 1.7 ? "OK" : "FAIL");
    return speedup_4w >= 1.7 ? 0 : 1;
  }
  std::printf("parallel gate skipped: only %u hardware thread(s); "
              "4-worker speedup recorded as %.2fx\n",
              hw, speedup_4w);
  return 0;
}
