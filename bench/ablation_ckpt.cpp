// Ablation A2 — COW checkpoint geometry.
//
// DESIGN.md's checkpointing choice has two knobs: the page size of the COW
// heap and the checkpoint interval. This ablation sweeps both on the
// KV-store workload and reports checkpoint work (pages copied, bytes) and
// retained storage — the trade the Time Machine actually makes.
#include <cstdio>

#include "apps/kv_store.hpp"
#include "bench_util.hpp"
#include "ckpt/timemachine.hpp"
#include "common/rng.hpp"
#include "mem/paged_heap.hpp"

namespace {

using namespace fixd;

void page_size_sweep() {
  bench::header("page-size sweep: 4 MB heap, 400 random 64B writes per "
                "checkpoint, 32 checkpoints");
  bench::row("%-10s %12s %12s %13s %13s %9s", "page", "pages-cowed",
             "bytes-cowed", "cow/ckpt(ms)", "restore(ms)", "waste");
  bench::rule();
  for (std::size_t page : {512u, 1024u, 4096u, 16384u, 65536u}) {
    mem::PagedHeap h(page);
    h.resize(4 << 20);
    Rng rng(7);
    for (std::uint64_t off = 0; off + 8 <= h.size(); off += page)
      h.store<std::uint64_t>(off, rng.next_u64());
    h.reset_stats();

    std::vector<mem::HeapSnapshot> snaps;
    bench::WallTimer t;
    for (int ck = 0; ck < 32; ++ck) {
      snaps.push_back(h.snapshot());
      for (int wr = 0; wr < 400; ++wr) {
        std::uint64_t off = rng.next_below(h.size() - 64);
        std::uint64_t v = rng.next_u64();
        for (int j = 0; j < 8; ++j)
          h.store<std::uint64_t>(off + 8 * j, v + j);
      }
    }
    double ckpt_ms = t.ms() / 32.0;
    t.reset();
    h.restore(snaps.front());
    double restore_ms = t.ms();
    double waste = h.stats().bytes_cowed
                       ? static_cast<double>(h.stats().bytes_cowed) /
                             (32.0 * 400.0 * 64.0)
                       : 0.0;
    bench::row("%-10zu %12llu %12llu %13.3f %13.3f %8.1fx", page,
               (unsigned long long)h.stats().pages_cowed,
               (unsigned long long)h.stats().bytes_cowed, ckpt_ms,
               restore_ms, waste);
  }
}

void interval_sweep() {
  bench::header("checkpoint-interval sweep: kv-store 3 procs, 300 ops");
  bench::row("%-18s %9s %14s %13s %9s", "policy", "ckpts", "retained(KB)",
             "run-ms", "rb-depth");
  bench::rule();
  struct P {
    const char* name;
    bool cic;
    std::uint64_t interval;
  } policies[] = {
      {"cic (every recv)", true, 0}, {"periodic/2", false, 2},
      {"periodic/4", false, 4},      {"periodic/16", false, 16},
      {"periodic/64", false, 64},
  };
  for (const auto& p : policies) {
    apps::KvConfig cfg;
    cfg.total_ops = 300;
    cfg.key_space = 64;
    auto w = apps::make_kv_world(3, 2, cfg);
    ckpt::TimeMachineOptions topt;
    topt.cic = p.cic;
    topt.periodic_interval = p.interval;
    topt.store_capacity = 1 << 12;
    ckpt::TimeMachine tm(*w, topt);
    tm.attach();
    bench::WallTimer t;
    w->run(100000);
    double ms = t.ms();
    auto line = tm.compute_line();
    bench::row("%-18s %9llu %14.1f %13.2f %9zu", p.name,
               (unsigned long long)tm.stats().checkpoints,
               tm.retained_bytes() / 1024.0, ms,
               line.line.total_rollback());
  }
}

}  // namespace

int main() {
  std::printf("FixD reproduction — ablation: COW checkpoint geometry "
              "(page size x checkpoint interval)\n");
  page_size_sweep();
  interval_sweep();
  std::printf(
      "\nShape check: smaller pages copy less per checkpoint but cost more\n"
      "page-table overhead; denser checkpoints raise storage but shrink\n"
      "rollback distance — CIC buys zero-domino lines for the same order\n"
      "of storage as periodic/2.\n");
  return 0;
}
