// Figure 7 — The components of the ModelD model checker.
//
// Micro-benchmarks of the back-end engine: raw state-transition throughput,
// reachability-graph construction, the cost of each search order, and the
// price of the dynamic action-set feature (guard re-evaluation with
// injected actions). google-benchmark binary.
#include <benchmark/benchmark.h>

#include "mc/modeld.hpp"

namespace {

using namespace fixd;
using namespace fixd::mc;

// A family of bounded counter lattices: `n` independent counters, each up
// to `k` — reachable states = (k+1)^n, the classic interleaving lattice.
struct LatticeState {
  std::array<std::uint8_t, 8> c{};
  void save(BinaryWriter& w) const {
    for (auto v : c) w.write_u8(v);
  }
};

GuardedModel<LatticeState> make_lattice(int n, int k) {
  auto m = GuardedModel<LatticeState>::with_serial_hash(LatticeState{});
  for (int i = 0; i < n; ++i) {
    m.add_action(
        "inc" + std::to_string(i),
        [i, k](const LatticeState& s) { return s.c[i] < k; },
        [i](LatticeState& s) { ++s.c[i]; });
  }
  return m;
}

void BM_EngineThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  auto model = make_lattice(n, k);
  std::uint64_t states = 0;
  for (auto _ : state) {
    Explorer<LatticeState> ex(model, {.order = SearchOrder::kBfs});
    auto res = ex.explore();
    states += res.stats.states;
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.counters["states"] = static_cast<double>(states / state.iterations());
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}

void BM_SearchOrder(benchmark::State& state) {
  auto order = static_cast<SearchOrder>(state.range(0));
  auto model = make_lattice(4, 6);  // 2401 states
  for (auto _ : state) {
    ExploreOptions o;
    o.order = order;
    o.max_depth = 64;
    o.walk_restarts = 32;
    Explorer<LatticeState> ex(model, o);
    if (order == SearchOrder::kPriority) {
      ex.set_priority([](const LatticeState& s) {
        double sum = 0;
        for (auto v : s.c) sum += v;
        return sum;
      });
    }
    auto res = ex.explore();
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.SetLabel(to_string(order));
}

// The dynamic action-set feature: exploration cost as injected (enabled but
// never fireable) actions accumulate — the guard-evaluation overhead of
// ModelD's flexibility.
void BM_InjectedActionOverhead(benchmark::State& state) {
  const int injected = static_cast<int>(state.range(0));
  auto model = make_lattice(3, 6);
  for (int i = 0; i < injected; ++i) {
    model.add_action(
        "noop" + std::to_string(i),
        [](const LatticeState&) { return false; },  // never fires
        [](LatticeState&) {});
  }
  for (auto _ : state) {
    Explorer<LatticeState> ex(model, {.order = SearchOrder::kBfs});
    auto res = ex.explore();
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.counters["injected"] = injected;
}

// Invariant-evaluation cost: checks run on every discovered state.
void BM_InvariantCost(benchmark::State& state) {
  const int invariants = static_cast<int>(state.range(0));
  auto model = make_lattice(3, 6);
  for (int i = 0; i < invariants; ++i) {
    model.add_invariant(
        "inv" + std::to_string(i),
        [](const LatticeState& s) -> std::optional<std::string> {
          std::uint32_t sum = 0;
          for (auto v : s.c) sum += v;
          if (sum > 1000) return "impossible";
          return std::nullopt;
        });
  }
  for (auto _ : state) {
    Explorer<LatticeState> ex(model, {.order = SearchOrder::kBfs});
    auto res = ex.explore();
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.counters["invariants"] = invariants;
}

}  // namespace

BENCHMARK(BM_EngineThroughput)
    ->Args({2, 9})    // 100 states
    ->Args({3, 9})    // 1000 states
    ->Args({4, 9})    // 10^4 states
    ->Args({5, 9})    // 10^5 states
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SearchOrder)
    ->Arg(static_cast<int>(SearchOrder::kDfs))
    ->Arg(static_cast<int>(SearchOrder::kBfs))
    ->Arg(static_cast<int>(SearchOrder::kPriority))
    ->Arg(static_cast<int>(SearchOrder::kRandomWalk))
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_InjectedActionOverhead)
    ->Arg(0)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_InvariantCost)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
