// Figure 7 — The components of the ModelD model checker.
//
// Micro-benchmarks of the back-end engine: raw state-transition throughput,
// reachability-graph construction, the cost of each search order, and the
// price of the dynamic action-set feature (guard re-evaluation with
// injected actions). Plus the daemon-mode rows: RPC round-trip latency
// (p50/p99) against an in-process fixdd over a unix socket, clean and under
// the deterministic fault shim, and the checkpoint/resume overhead of
// sliced investigations. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "common/io.hpp"
#include "mc/modeld.hpp"
#include "svc/client.hpp"
#include "svc/jobd.hpp"

namespace {

using namespace fixd;
using namespace fixd::mc;

// A family of bounded counter lattices: `n` independent counters, each up
// to `k` — reachable states = (k+1)^n, the classic interleaving lattice.
struct LatticeState {
  std::array<std::uint8_t, 8> c{};
  void save(BinaryWriter& w) const {
    for (auto v : c) w.write_u8(v);
  }
};

GuardedModel<LatticeState> make_lattice(int n, int k) {
  auto m = GuardedModel<LatticeState>::with_serial_hash(LatticeState{});
  for (int i = 0; i < n; ++i) {
    m.add_action(
        "inc" + std::to_string(i),
        [i, k](const LatticeState& s) { return s.c[i] < k; },
        [i](LatticeState& s) { ++s.c[i]; });
  }
  return m;
}

void BM_EngineThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  auto model = make_lattice(n, k);
  std::uint64_t states = 0;
  for (auto _ : state) {
    Explorer<LatticeState> ex(model, {.order = SearchOrder::kBfs});
    auto res = ex.explore();
    states += res.stats.states;
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.counters["states"] = static_cast<double>(states / state.iterations());
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}

void BM_SearchOrder(benchmark::State& state) {
  auto order = static_cast<SearchOrder>(state.range(0));
  auto model = make_lattice(4, 6);  // 2401 states
  for (auto _ : state) {
    ExploreOptions o;
    o.order = order;
    o.max_depth = 64;
    o.walk_restarts = 32;
    Explorer<LatticeState> ex(model, o);
    if (order == SearchOrder::kPriority) {
      ex.set_priority([](const LatticeState& s) {
        double sum = 0;
        for (auto v : s.c) sum += v;
        return sum;
      });
    }
    auto res = ex.explore();
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.SetLabel(to_string(order));
}

// The dynamic action-set feature: exploration cost as injected (enabled but
// never fireable) actions accumulate — the guard-evaluation overhead of
// ModelD's flexibility.
void BM_InjectedActionOverhead(benchmark::State& state) {
  const int injected = static_cast<int>(state.range(0));
  auto model = make_lattice(3, 6);
  for (int i = 0; i < injected; ++i) {
    model.add_action(
        "noop" + std::to_string(i),
        [](const LatticeState&) { return false; },  // never fires
        [](LatticeState&) {});
  }
  for (auto _ : state) {
    Explorer<LatticeState> ex(model, {.order = SearchOrder::kBfs});
    auto res = ex.explore();
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.counters["injected"] = injected;
}

// Invariant-evaluation cost: checks run on every discovered state.
void BM_InvariantCost(benchmark::State& state) {
  const int invariants = static_cast<int>(state.range(0));
  auto model = make_lattice(3, 6);
  for (int i = 0; i < invariants; ++i) {
    model.add_invariant(
        "inv" + std::to_string(i),
        [](const LatticeState& s) -> std::optional<std::string> {
          std::uint32_t sum = 0;
          for (auto v : s.c) sum += v;
          if (sum > 1000) return "impossible";
          return std::nullopt;
        });
  }
  for (auto _ : state) {
    Explorer<LatticeState> ex(model, {.order = SearchOrder::kBfs});
    auto res = ex.explore();
    benchmark::DoNotOptimize(res.stats.states);
  }
  state.counters["invariants"] = invariants;
}

// --- Daemon-mode rows --------------------------------------------------------

// An in-process fixdd on a unix socket; the benchmark talks to it through
// the real client (framing, CRC, retries) so the measured latency is the
// end-to-end RPC cost, not a function call.
struct DaemonBench {
  explicit DaemonBench(const std::string& shim_spec) {
    scratch = ScratchDir::create("", "fig7-daemon");
    svc::DaemonOptions opts;
    opts.endpoint =
        svc::Endpoint::parse("unix:" + (scratch.path() / "d.sock").string());
    opts.state_dir = (scratch.path() / "state").string();
    opts.shim = svc::FaultShimSpec::parse(shim_spec);
    opts.worker_threads = 1;
    daemon = std::make_unique<svc::Daemon>(opts);
    server = std::thread([this] { daemon->serve(); });
    // Wait for the listener (serve() binds before accepting).
    svc::RetryPolicy warm;
    warm.max_attempts = 50;
    svc::Client probe(opts.endpoint, warm);
    svc::Request req;
    req.request_id = 1;
    req.kind = svc::RpcKind::kPing;
    probe.call(req);
  }

  ~DaemonBench() {
    daemon->stop();
    // Nudge the accept loop awake with one last (ignored) connection.
    try {
      svc::Client poke(daemon->endpoint(), svc::RetryPolicy{.max_attempts = 1});
      svc::Request req;
      req.request_id = 2;
      req.kind = svc::RpcKind::kPing;
      poke.call(req);
    } catch (const FixdError&) {
    }
    server.join();
  }

  ScratchDir scratch;
  std::unique_ptr<svc::Daemon> daemon;
  std::thread server;
};

void report_percentiles(benchmark::State& state, std::vector<double>& us) {
  if (us.empty()) return;
  std::sort(us.begin(), us.end());
  state.counters["p50_us"] = us[us.size() / 2];
  state.counters["p99_us"] = us[std::min(us.size() - 1, us.size() * 99 / 100)];
}

// RPC round-trip: ping over the unix socket. Arg 0 = clean transport,
// arg 1 = fault shim dropping/severing/delaying responses — the retry and
// backoff machinery is the thing being priced.
void BM_DaemonRpcLatency(benchmark::State& state) {
  const bool faulty = state.range(0) != 0;
  DaemonBench d(faulty ? "drop=0.05,sever=0.05,delay=0.1:1,seed=11" : "");
  svc::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_ms = 1;
  policy.rpc_timeout_ms = 200;
  svc::Client client(d.daemon->endpoint(), policy);
  std::vector<double> us;
  std::uint64_t rid = 100;
  for (auto _ : state) {
    svc::Request req;
    req.request_id = ++rid;
    req.kind = svc::RpcKind::kPing;
    const auto t0 = std::chrono::steady_clock::now();
    client.call(req);
    us.push_back(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  report_percentiles(state, us);
  state.SetLabel(faulty ? "shim" : "clean");
}

// Submit→result over the wire: one complete investigation job per
// iteration, unique request-ids so the idempotency ledger never
// short-circuits the work.
void BM_DaemonSubmitResult(benchmark::State& state) {
  DaemonBench d("");
  svc::Client client(d.daemon->endpoint(), svc::RetryPolicy{});
  const svc::ScenarioRegistry registry = svc::ScenarioRegistry::with_builtins();
  svc::JobSpec spec;
  spec.scenario = "two-pc";
  spec.n = 3;
  spec.max_states = 4000;
  spec.checkpoint_states = 0;
  std::uint64_t rid = 1000;
  for (auto _ : state) {
    svc::InvestigationOutcome out =
        svc::submit_and_wait_or_degrade(client, registry, spec, ++rid);
    benchmark::DoNotOptimize(out.result.visited_digest);
    if (out.degraded) state.SkipWithError("degraded: daemon unreachable");
  }
}

// Checkpoint/resume overhead: the same investigation run uninterrupted
// (checkpoint_states = 0) vs sliced every N states with the visited set
// spilled to a SortedRun and the frontier journaled — the durability tax.
void BM_CheckpointedInvestigation(benchmark::State& state) {
  const std::uint64_t every = static_cast<std::uint64_t>(state.range(0));
  const svc::ScenarioRegistry registry = svc::ScenarioRegistry::with_builtins();
  const svc::ScenarioFamily* fam = registry.find("two-pc");
  svc::JobSpec spec;
  spec.scenario = "two-pc";
  spec.n = 4;  // 1008 states: big enough that the slice thresholds fire
  spec.max_states = 20000;
  spec.max_violations = 100000;  // uncapped: measure the full search
  spec.checkpoint_states = every;
  ScratchDir scratch = ScratchDir::create("", "fig7-ckpt");
  std::uint64_t checkpoints = 0;
  for (auto _ : state) {
    svc::JobJournal journal(scratch.path(), 1);
    std::uint64_t seq = 0;
    svc::RunCallbacks cb;
    cb.on_checkpoint = [&](const svc::CheckpointState& ck) {
      svc::JournalRecord rec;
      rec.type = svc::JournalRecordType::kCheckpoint;
      rec.checkpoint_seq = ++seq;
      rec.visited = journal.write_visited_run(seq, ck.visited);
      rec.frontier = ck.frontier;
      rec.stats = ck.stats;
      rec.violations = ck.violations;
      journal.append(rec);
      ++checkpoints;
      return true;
    };
    svc::JobResultMsg r =
        svc::run_investigation(*fam, spec, nullptr, every > 0 ? cb
                                                              : svc::RunCallbacks{});
    benchmark::DoNotOptimize(r.visited_digest);
  }
  state.counters["ckpts"] =
      static_cast<double>(checkpoints / state.iterations());
  state.SetLabel(every == 0 ? "uninterrupted" : "every " +
                                                    std::to_string(every));
}

}  // namespace

BENCHMARK(BM_EngineThroughput)
    ->Args({2, 9})    // 100 states
    ->Args({3, 9})    // 1000 states
    ->Args({4, 9})    // 10^4 states
    ->Args({5, 9})    // 10^5 states
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SearchOrder)
    ->Arg(static_cast<int>(SearchOrder::kDfs))
    ->Arg(static_cast<int>(SearchOrder::kBfs))
    ->Arg(static_cast<int>(SearchOrder::kPriority))
    ->Arg(static_cast<int>(SearchOrder::kRandomWalk))
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_InjectedActionOverhead)
    ->Arg(0)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_InvariantCost)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

BENCHMARK(BM_DaemonRpcLatency)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.5);

BENCHMARK(BM_DaemonSubmitResult)->Unit(benchmark::kMillisecond)->MinTime(0.5);

BENCHMARK(BM_CheckpointedInvestigation)
    ->Arg(0)
    ->Arg(256)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

BENCHMARK_MAIN();
