// Figure 9 (repo-grown) — incremental state digests: the Investigator's
// explore loop is bounded by how fast a world can be hashed after each
// transition. This bench measures the digest pipeline end to end:
//
//   A. PagedHeap::digest after one sparse write per "event", cached
//      (per-page digests + whole-heap memo) vs from-scratch recompute.
//   B. World::mc_digest per executed event on a 16-process heap-backed
//      world with sparse per-event writes — the explore-loop shape.
//   C. SystemExplorer throughput (states/sec) with the time spent hashing
//      states broken out, on a real protocol state space.
//   D. World snapshot + restore per explored node (COW vs deep).
//   E. World::enabled_events per executed event on worlds with deep
//      message/timer backlogs — the incremental enabled-event index vs
//      the from-scratch rescan oracle.
//   F. Trail-frontier re-anchoring with replay-warmed captures vs cold:
//      warming shares the bit-identical checkpoints/messages sibling
//      replays re-create, so anchors stop deep-copying them — gated on
//      the (deterministic) peak-frontier-byte ratio.
//
// Emits BENCH_digest.json next to the binary so the perf trajectory of the
// digest pipeline is tracked from this PR onward.
#include <cstdio>
#include <memory>

#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "mc/sysmodel.hpp"
#include "mem/paged_heap.hpp"
#include "rt/world.hpp"

namespace {

using namespace fixd;
using bench::WallTimer;

// A process whose bulk state lives in a COW heap: each delivery writes one
// 64-byte record at a pseudo-random offset and forwards the token — the
// "large state, sparse per-event writes" shape the digest cache targets.
class HeapProc final : public rt::ProcessBase<HeapProc> {
 public:
  explicit HeapProc(std::uint64_t heap_bytes) : heap_bytes_(heap_bytes) {
    heap_.resize(heap_bytes_);
  }

  void on_start(rt::Context& ctx) override {
    // Pre-touch every page so the heap is fully resident (worst case for a
    // non-incremental digest), then p0 launches the token.
    for (std::uint64_t off = 0; off + 8 <= heap_bytes_; off += 4096)
      heap_.store<std::uint64_t>(off, off ^ 0x5eedull);
    if (ctx.self() == 0) ctx.send(1 % ctx.world_size(), 1, {});
  }

  void on_message(rt::Context& ctx, const net::Message&) override {
    std::byte rec[64];
    std::uint64_t r = ctx.random_u64();
    for (std::size_t i = 0; i < sizeof(rec); ++i)
      rec[i] = static_cast<std::byte>(r >> (8 * (i % 8)));
    heap_.write(r % (heap_bytes_ - sizeof(rec)), rec);
    ++writes_;
    ctx.send((ctx.self() + 1) % ctx.world_size(), 1, {});
  }

  void save_root(BinaryWriter& w) const override {
    w.write_u64(heap_bytes_);
    w.write_u64(writes_);
  }
  void load_root(BinaryReader& r) override {
    heap_bytes_ = r.read_u64();
    writes_ = r.read_u64();
  }
  mem::PagedHeap* cow_heap() override { return &heap_; }
  std::string type_name() const override { return "heap-proc"; }

 private:
  std::uint64_t heap_bytes_;
  std::uint64_t writes_ = 0;
  mem::PagedHeap heap_;
};

struct PairResult {
  double cached_us = 0;
  double uncached_us = 0;
  double speedup() const {
    return cached_us > 0 ? uncached_us / cached_us : 0;
  }
};

// --- A: heap digest ---------------------------------------------------------
PairResult bench_heap_digest(std::uint64_t heap_bytes, int iters) {
  mem::PagedHeap h(4096);
  h.resize(heap_bytes);
  Rng rng(42);
  for (std::uint64_t off = 0; off + 8 <= heap_bytes; off += 4096)
    h.store<std::uint64_t>(off, rng.next_u64());
  mem::HeapSnapshot keep = h.snapshot();  // keeps pages shared (COW live)

  PairResult res;
  std::uint64_t sink = 0;
  WallTimer t;
  for (int i = 0; i < iters; ++i) {
    h.store<std::uint64_t>(rng.next_below(heap_bytes - 8), rng.next_u64());
    sink ^= h.digest();
  }
  res.cached_us = t.ms() * 1000.0 / iters;

  t.reset();
  for (int i = 0; i < iters; ++i) {
    h.store<std::uint64_t>(rng.next_below(heap_bytes - 8), rng.next_u64());
    sink ^= h.digest_uncached();
  }
  res.uncached_us = t.ms() * 1000.0 / iters;

  // Equality spot check (the test suite proves it exhaustively).
  if (h.digest() != h.digest_uncached()) {
    std::fprintf(stderr, "FATAL: cached digest diverged\n");
    std::abort();
  }
  (void)sink;
  (void)keep;
  return res;
}

// --- B: world mc_digest per event ------------------------------------------
PairResult bench_world_digest(std::size_t procs, std::uint64_t heap_bytes,
                              int iters) {
  rt::WorldOptions opts;
  opts.abstract_time = true;
  auto w = std::make_unique<rt::World>(opts);
  for (std::size_t i = 0; i < procs; ++i)
    w->add_process(std::make_unique<HeapProc>(heap_bytes));
  w->seal();
  w->run(procs + 4);  // everyone started, token circulating

  PairResult res;
  std::uint64_t sink = 0;
  WallTimer t;
  for (int i = 0; i < iters; ++i) {
    w->step();  // one event: one 64B write at one process
    sink ^= w->mc_digest();
  }
  double cached_total_ms = t.ms();

  t.reset();
  for (int i = 0; i < iters; ++i) {
    w->step();
    sink ^= w->mc_digest_uncached();
  }
  double uncached_total_ms = t.ms();

  if (w->mc_digest() != w->mc_digest_uncached()) {
    std::fprintf(stderr, "FATAL: world mc_digest diverged\n");
    std::abort();
  }
  (void)sink;
  res.cached_us = cached_total_ms * 1000.0 / iters;
  res.uncached_us = uncached_total_ms * 1000.0 / iters;
  return res;
}

// --- C: explorer throughput -------------------------------------------------
mc::SysExploreResult bench_explorer(std::size_t n, std::size_t max_states,
                                    bool trail) {
  apps::TwoPcConfig cfg;
  cfg.total_txns = 1;
  auto w = apps::make_two_pc_world(n, 2, cfg);
  mc::SysExploreOptions o;
  o.order = mc::SearchOrder::kBfs;
  o.max_states = max_states;
  o.max_depth = 80;
  o.trail_frontier = trail;
  o.install_invariants = apps::install_two_pc_invariants;
  mc::SystemExplorer ex(*w, o);
  return ex.explore();
}

// --- D: world snapshot + restore cycle --------------------------------------
// The explore-loop node cost: step one event, capture the world, restore
// it. Shared/COW capture reuses the per-process capture cache (only the
// one touched process re-serializes) and shares network message buffers;
// deep capture re-serializes every heap and the network per cycle — the
// pre-COW baseline.
PairResult bench_world_snapshot(std::size_t procs, std::uint64_t heap_bytes,
                                int shared_iters, int deep_iters) {
  rt::WorldOptions opts;
  opts.abstract_time = true;
  auto w = std::make_unique<rt::World>(opts);
  for (std::size_t i = 0; i < procs; ++i)
    w->add_process(std::make_unique<HeapProc>(heap_bytes));
  w->seal();
  w->run(procs + 4);

  std::uint64_t want = w->digest();
  WallTimer t;
  for (int i = 0; i < shared_iters; ++i) {
    w->step();
    want = w->digest();
    rt::WorldSnapshot snap = w->snapshot(/*cow=*/true);
    w->restore(snap);
  }
  PairResult res;
  res.cached_us = t.ms() * 1000.0 / shared_iters;
  if (w->digest_uncached() != want) {
    std::fprintf(stderr, "FATAL: COW snapshot/restore diverged\n");
    std::abort();
  }

  t.reset();
  for (int i = 0; i < deep_iters; ++i) {
    w->step();
    want = w->digest();
    rt::WorldSnapshot snap = w->snapshot(/*cow=*/false);
    w->restore(snap);
  }
  res.uncached_us = t.ms() * 1000.0 / deep_iters;
  if (w->digest_uncached() != want) {
    std::fprintf(stderr, "FATAL: deep snapshot/restore diverged\n");
    std::abort();
  }
  return res;
}

// --- F: replay-warmed vs cold trail re-anchoring -----------------------------
// The trail-frontier shape at an anchor boundary: every expanded node
// re-anchors after replaying its suffix, and (cold) captures fresh
// checkpoints and message objects that are bit-identical to its
// siblings'. Replay warming keys those by (anchor, prefix) and shares
// them, so the measured peak frontier drops and re-anchor capture time
// (snapshot_ms) shrinks. Default anchor interval: longer replayed
// suffixes mean more bit-identical sibling re-captures for warming to
// share.
mc::SysExploreResult bench_reanchor(std::size_t n, bool warm) {
  apps::TwoPcConfig cfg;
  cfg.total_txns = 1;
  auto w = apps::make_two_pc_world(n, 2, cfg);
  mc::SysExploreOptions o;
  o.order = mc::SearchOrder::kBfs;
  o.max_states = 60000;
  o.max_depth = 80;
  o.trail_frontier = true;
  o.anchor_interval = 8;
  o.install_invariants = [warm](rt::World& world) {
    apps::install_two_pc_invariants(world);
    world.set_replay_warm(warm);
  };
  mc::SystemExplorer ex(*w, o);
  return ex.explore();
}

// --- E: enabled-event set per executed event --------------------------------
// A process that stands up a deep backlog: a pile of far-future timers
// (kept deep by re-arming on fire) plus circulating ring traffic whose
// queues deepen behind crashed destinations. The enabled set each step is
// tiny (the ready/warp group in timed mode) while the world holds
// thousands of armed timers and queued messages — the shape where the
// incremental index wins and the per-call rescan pays O(world).
class BacklogProc final : public rt::ProcessBase<BacklogProc> {
 public:
  BacklogProc(std::size_t timers, std::size_t sends)
      : timers_(timers), sends_(sends) {}

  void on_start(rt::Context& ctx) override {
    for (std::size_t i = 0; i < timers_; ++i) {
      ctx.set_timer(100000 + 7 * i + ctx.self(),
                    static_cast<std::uint32_t>(i % 8));
    }
    for (std::size_t i = 0; i < sends_; ++i) {
      ctx.send((ctx.self() + 1) % ctx.world_size(), 1, {});
    }
  }

  void on_message(rt::Context& ctx, const net::Message&) override {
    ++handled_;
    ctx.send((ctx.self() + 1) % ctx.world_size(), 1, {});
  }

  void on_timer(rt::Context& ctx, const rt::Timer& t) override {
    ctx.set_timer(100000, t.kind);  // keep the timer backlog deep
  }

  void save_root(BinaryWriter& w) const override {
    w.write_u64(timers_);
    w.write_u64(sends_);
    w.write_u64(handled_);
  }
  void load_root(BinaryReader& r) override {
    timers_ = r.read_u64();
    sends_ = r.read_u64();
    handled_ = r.read_u64();
  }
  std::string type_name() const override { return "backlog-proc"; }

 private:
  std::uint64_t timers_;
  std::uint64_t sends_;
  std::uint64_t handled_ = 0;
};

PairResult bench_enabled_set(std::size_t procs, std::size_t timers_per_proc,
                             std::size_t sends_per_proc, bool abstract_time,
                             int iters) {
  rt::WorldOptions opts;
  opts.abstract_time = abstract_time;
  auto w = std::make_unique<rt::World>(opts);
  for (std::size_t i = 0; i < procs; ++i) {
    w->add_process(
        std::make_unique<BacklogProc>(timers_per_proc, sends_per_proc));
  }
  w->seal();
  w->run(procs);  // everyone started: backlogs armed and circulating
  // Crash a quarter of the processes: their timer buckets mask in O(1)
  // and ring traffic piles up behind their channel heads.
  for (ProcessId pid = 3; pid < procs; pid += 4) w->set_crashed(pid, true);

  // One event executes between measured calls (the explore/run shape),
  // but only the enabled-set call itself is inside the timed region —
  // the gate must compare the two call costs, not step() overhead.
  PairResult res;
  std::uint64_t sink = 0;
  WallTimer t;
  double acc_ms = 0;
  for (int i = 0; i < iters; ++i) {
    w->step();
    t.reset();
    sink ^= w->enabled_events().size();
    acc_ms += t.ms();
  }
  res.cached_us = acc_ms * 1000.0 / iters;

  acc_ms = 0;
  for (int i = 0; i < iters; ++i) {
    w->step();
    t.reset();
    sink ^= w->enabled_events_uncached().size();
    acc_ms += t.ms();
  }
  res.uncached_us = acc_ms * 1000.0 / iters;

  // Exact-equality spot check, order included (the test suite proves it
  // across every mutation path).
  if (w->enabled_events() != w->enabled_events_uncached()) {
    std::fprintf(stderr, "FATAL: enabled-event index diverged\n");
    std::abort();
  }
  (void)sink;
  return res;
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 9: incremental state digests\n");

  bench::header("A. PagedHeap digest after one sparse 64b write per event");
  bench::row("%-10s %12s %14s %9s", "heap", "cached us", "uncached us",
             "speedup");
  bench::rule();
  PairResult heap_small = bench_heap_digest(1 << 20, 2000);
  PairResult heap_big = bench_heap_digest(4 << 20, 800);
  bench::row("%-10s %12.2f %14.2f %8.1fx", "1 MiB", heap_small.cached_us,
             heap_small.uncached_us, heap_small.speedup());
  bench::row("%-10s %12.2f %14.2f %8.1fx", "4 MiB", heap_big.cached_us,
             heap_big.uncached_us, heap_big.speedup());

  bench::header(
      "B. World::mc_digest per executed event (heap-backed processes)");
  bench::row("%-10s %12s %14s %9s", "world", "cached us", "uncached us",
             "speedup");
  bench::rule();
  PairResult world16 = bench_world_digest(16, 1 << 20, 400);
  bench::row("%-10s %12.2f %14.2f %8.1fx", "16p x 1MiB", world16.cached_us,
             world16.uncached_us, world16.speedup());

  bench::header(
      "C. SystemExplorer throughput (2pc n=4, BFS; snapshot vs trail "
      "frontier)");
  bench::row("%-8s %8s %9s %9s %9s %11s %9s", "mode", "states", "wall ms",
             "dig.ms", "snap.ms", "peak KiB", "states/s");
  bench::rule();
  mc::SysExploreResult ex = bench_explorer(4, 60000, /*trail=*/false);
  mc::SysExploreResult ext = bench_explorer(4, 60000, /*trail=*/true);
  for (const auto* r : {&ex, &ext}) {
    bench::row("%-8s %8llu %9.1f %9.1f %9.1f %11.1f %9.0f",
               r == &ex ? "snap" : "trail",
               (unsigned long long)r->stats.states, r->stats.wall_ms,
               r->stats.digest_ms, r->stats.snapshot_ms,
               r->stats.peak_frontier_bytes / 1024.0,
               r->stats.states_per_sec());
  }
  if (ex.stats.states != ext.stats.states ||
      ex.stats.transitions != ext.stats.transitions) {
    std::fprintf(stderr,
                 "FATAL: trail-frontier explored a different state set\n");
    std::abort();
  }

  bench::header(
      "D. World snapshot + restore per explored node (16p x 1MiB heaps)");
  bench::row("%-10s %12s %14s %9s", "world", "shared us", "deep us",
             "speedup");
  bench::rule();
  PairResult snap16 = bench_world_snapshot(16, 1 << 20, 2000, 40);
  bench::row("%-10s %12.2f %14.2f %8.1fx", "16p x 1MiB", snap16.cached_us,
             snap16.uncached_us, snap16.speedup());

  bench::header(
      "E. World::enabled_events per executed event (deep message/timer "
      "backlogs, quarter of procs crashed)");
  bench::row("%-22s %12s %14s %9s", "world", "index us", "uncached us",
             "speedup");
  bench::rule();
  // Timed mode: the ready/warp group is a handful of events while the
  // world holds thousands of armed timers and queued messages — the
  // explore/run hot-path shape the index targets. Gate: >= 5x at 16p.
  PairResult en16 = bench_enabled_set(16, 256, 32, /*abstract=*/false, 2000);
  PairResult en64 = bench_enabled_set(64, 128, 16, /*abstract=*/false, 1000);
  // Abstract mode materializes the whole enabled set (output-sized on
  // both sides); reported for honesty, not gated.
  PairResult en16a = bench_enabled_set(16, 256, 32, /*abstract=*/true, 400);
  bench::row("%-22s %12.2f %14.2f %8.1fx", "16p timed", en16.cached_us,
             en16.uncached_us, en16.speedup());
  bench::row("%-22s %12.2f %14.2f %8.1fx", "64p timed", en64.cached_us,
             en64.uncached_us, en64.speedup());
  bench::row("%-22s %12.2f %14.2f %8.1fx", "16p abstract", en16a.cached_us,
             en16a.uncached_us, en16a.speedup());

  bench::header(
      "F. Trail re-anchoring: replay-warmed vs cold captures (2pc n=5, "
      "BFS, anchor interval 8)");
  bench::row("%-8s %8s %9s %9s %11s %9s", "mode", "states", "wall ms",
             "snap.ms", "peak KiB", "states/s");
  bench::rule();
  mc::SysExploreResult rw = bench_reanchor(5, /*warm=*/true);
  mc::SysExploreResult rc = bench_reanchor(5, /*warm=*/false);
  for (const auto* r : {&rc, &rw}) {
    bench::row("%-8s %8llu %9.1f %9.1f %11.1f %9.0f",
               r == &rc ? "cold" : "warm",
               (unsigned long long)r->stats.states, r->stats.wall_ms,
               r->stats.snapshot_ms,
               r->stats.peak_frontier_bytes / 1024.0,
               r->stats.states_per_sec());
  }
  if (rw.stats.states != rc.stats.states ||
      rw.stats.transitions != rc.stats.transitions) {
    std::fprintf(stderr,
                 "FATAL: replay warming changed the explored state set\n");
    std::abort();
  }
  const double reanchor_mem_ratio =
      rw.stats.peak_frontier_bytes > 0
          ? static_cast<double>(rc.stats.peak_frontier_bytes) /
                static_cast<double>(rw.stats.peak_frontier_bytes)
          : 0.0;
  const double reanchor_snap_ratio =
      rw.stats.snapshot_ms > 0
          ? rc.stats.snapshot_ms / rw.stats.snapshot_ms
          : 0.0;

  // Machine-readable trajectory record.
  FILE* f = std::fopen("BENCH_digest.json", "w");
  if (f) {
    std::fprintf(
        f,
        "{\n"
        "  \"heap_1mib_cached_us\": %.3f,\n"
        "  \"heap_1mib_uncached_us\": %.3f,\n"
        "  \"heap_1mib_speedup\": %.2f,\n"
        "  \"heap_4mib_cached_us\": %.3f,\n"
        "  \"heap_4mib_uncached_us\": %.3f,\n"
        "  \"heap_4mib_speedup\": %.2f,\n"
        "  \"world16_cached_us\": %.3f,\n"
        "  \"world16_uncached_us\": %.3f,\n"
        "  \"world16_speedup\": %.2f,\n"
        "  \"world16_snap_shared_us\": %.3f,\n"
        "  \"world16_snap_deep_us\": %.3f,\n"
        "  \"world16_snap_speedup\": %.2f,\n"
        "  \"explorer_states\": %llu,\n"
        "  \"explorer_wall_ms\": %.2f,\n"
        "  \"explorer_digest_ms\": %.2f,\n"
        "  \"explorer_snapshot_ms\": %.2f,\n"
        "  \"explorer_peak_frontier_bytes\": %llu,\n"
        "  \"explorer_states_per_sec\": %.0f,\n"
        "  \"explorer_visited_resident_bytes\": %llu,\n"
        "  \"explorer_visited_spilled_bytes\": %llu,\n"
        "  \"explorer_trail_wall_ms\": %.2f,\n"
        "  \"explorer_trail_peak_frontier_bytes\": %llu,\n"
        "  \"explorer_trail_states_per_sec\": %.0f,\n"
        "  \"reanchor_cold_peak_frontier_bytes\": %llu,\n"
        "  \"reanchor_warm_peak_frontier_bytes\": %llu,\n"
        "  \"reanchor_mem_ratio\": %.3f,\n"
        "  \"reanchor_cold_snapshot_ms\": %.2f,\n"
        "  \"reanchor_warm_snapshot_ms\": %.2f,\n"
        "  \"reanchor_snapshot_ratio\": %.3f,\n"
        "  \"enabled16_timed_index_us\": %.3f,\n"
        "  \"enabled16_timed_uncached_us\": %.3f,\n"
        "  \"enabled16_timed_speedup\": %.2f,\n"
        "  \"enabled64_timed_index_us\": %.3f,\n"
        "  \"enabled64_timed_uncached_us\": %.3f,\n"
        "  \"enabled64_timed_speedup\": %.2f,\n"
        "  \"enabled16_abstract_index_us\": %.3f,\n"
        "  \"enabled16_abstract_uncached_us\": %.3f,\n"
        "  \"enabled16_abstract_speedup\": %.2f\n"
        "}\n",
        heap_small.cached_us, heap_small.uncached_us, heap_small.speedup(),
        heap_big.cached_us, heap_big.uncached_us, heap_big.speedup(),
        world16.cached_us, world16.uncached_us, world16.speedup(),
        snap16.cached_us, snap16.uncached_us, snap16.speedup(),
        (unsigned long long)ex.stats.states, ex.stats.wall_ms,
        ex.stats.digest_ms, ex.stats.snapshot_ms,
        (unsigned long long)ex.stats.peak_frontier_bytes,
        ex.stats.states_per_sec(),
        (unsigned long long)ex.stats.visited_resident_bytes,
        (unsigned long long)ex.stats.visited_spilled_bytes, ext.stats.wall_ms,
        (unsigned long long)ext.stats.peak_frontier_bytes,
        ext.stats.states_per_sec(),
        (unsigned long long)rc.stats.peak_frontier_bytes,
        (unsigned long long)rw.stats.peak_frontier_bytes,
        reanchor_mem_ratio, rc.stats.snapshot_ms, rw.stats.snapshot_ms,
        reanchor_snap_ratio, en16.cached_us, en16.uncached_us,
        en16.speedup(), en64.cached_us, en64.uncached_us, en64.speedup(),
        en16a.cached_us, en16a.uncached_us, en16a.speedup());
    std::fclose(f);
    std::printf("\nwrote BENCH_digest.json\n");
  }

  std::printf(
      "\nShape check: digesting, capturing, OR asking \"what can fire\n"
      "next?\" after one event costs O(changed state), not O(total state);\n"
      "the trail frontier holds the same state set in a fraction of the\n"
      "memory, and replay warming makes sibling anchors share it. The\n"
      "nonzero exit below is the perf regression gate (world digest >= 5x,\n"
      "snapshot >= 5x, enabled set >= 5x on the 16p timed backlog\n"
      "workload, and warm re-anchoring >= 1.25x less peak frontier than\n"
      "cold — the last is a deterministic byte ratio, not a timing).\n");
  std::printf("section F gate: warm vs cold peak ratio %.2fx (need >= "
              "1.25x), snapshot_ms ratio %.2fx (reported, ungated)\n",
              reanchor_mem_ratio, reanchor_snap_ratio);
  return (world16.speedup() >= 5.0 && snap16.speedup() >= 5.0 &&
          en16.speedup() >= 5.0 && reanchor_mem_ratio >= 1.25)
             ? 0
             : 1;
}
