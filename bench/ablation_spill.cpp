// Ablation A2 — beyond-RAM exploration (the tiered visited set and the
// budgeted trail frontier).
//
// The feasibility wall in Figure 3 is a *memory* wall: the visited set and
// the frontier both grow with the state count, so `max_states` caps at
// whatever fits in RAM. This ablation runs the buggy 2pc at n=6
// exhaustively — a state count >= 10x what the budgeted run's exact hot
// tier could hold resident — and checks that spilling changes the memory
// trajectory and nothing else.
//
// Gated (exit code, enforced by the perf workflow):
//   - beyond-RAM ratio: total states >= 10x the in-RAM ceiling of the
//     budgeted run's exact tier (ceiling = 0.7 load factor over the
//     non-Bloom half of the budget; mirrors mc/tiered_visited.cpp);
//   - visited-set identity: the budgeted runs (1 and 4 workers) return
//     byte-identical sorted digest sets to the unbounded run's;
//   - resident budget held: peak resident visited bytes <= 1.5x the
//     configured budget (the 0.5x slack covers the spill hysteresis
//     window and the per-shard table floor);
//   - Bloom quality: measured false-positive rate <= 0.10 with the run
//     actually spilling (spilled bytes > 0);
//   - frontier budget: the anchor-evicting run visits the identical state
//     set with anchor_evictions > 0 and anchor_recomputes > 0.
// Results land in BENCH_spill.json.
//
// FIXD_SPILL_SMOKE=1 shrinks to n=4 with a few-KiB budget for CI smoke:
// spill/eviction machinery still exercised, but the ratio and resident
// gates are skipped (a few-KiB budget is below the 64-shard table floor,
// so those gates are meaningless there).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "mc/sysmodel.hpp"

namespace {

using namespace fixd;

struct RunResult {
  mc::SysExploreResult res;
  double ms = 0.0;
};

RunResult run_config(const char* label, std::size_t n,
                     std::uint64_t visited_budget,
                     std::uint64_t frontier_budget, std::size_t workers) {
  apps::TwoPcConfig cfg;
  cfg.total_txns = 1;
  auto w = apps::make_two_pc_world(n, 1, cfg);
  mc::SysExploreOptions o;
  o.order = mc::SearchOrder::kBfs;
  o.max_states = 2000000;
  o.max_depth = 1u << 20;  // exhaustive: nothing truncates
  o.max_violations = ~std::size_t{0};
  o.trail_frontier = true;
  o.workers = workers;
  o.visited_budget_bytes = visited_budget;
  o.frontier_budget_bytes = frontier_budget;
  o.collect_visited = true;
  o.install_invariants = apps::install_two_pc_invariants;
  mc::SystemExplorer ex(*w, o);
  bench::WallTimer t;
  RunResult out;
  out.res = ex.explore();
  out.ms = t.ms();
  const auto& s = out.res.stats;
  bench::row("%-14s %2zu %9llu %9.1f %9.1f %9.1f %8.4f %7llu %7llu %9.1f",
             label, workers, (unsigned long long)s.states,
             s.visited_peak_resident_bytes / 1024.0,
             s.visited_spilled_bytes / 1024.0, s.spilled_bytes / 1024.0,
             s.bloom_fp_rate, (unsigned long long)s.anchor_evictions,
             (unsigned long long)s.anchor_recomputes, out.ms);
  return out;
}

// The in-RAM ceiling of the budgeted run's exact tier: keys the non-Bloom
// half of the budget holds at the CompactDigestSet load factor. Mirrors
// the split in mc/tiered_visited.cpp (Bloom takes the power-of-two floor
// of budget/2) and the 0.7 rehash threshold in mc/concurrent.hpp.
std::uint64_t in_ram_ceiling(std::uint64_t budget) {
  std::uint64_t p = 1;
  while (p * 2 <= budget / 2) p *= 2;
  std::uint64_t exact = budget > p ? budget - p : 1;
  return (exact / 8) * 7 / 10;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("FIXD_SPILL_SMOKE") != nullptr;
  const std::size_t n = smoke ? 4 : 6;
  const std::uint64_t visited_budget = smoke ? 8 * 1024 : 128 * 1024;
  const std::uint64_t frontier_budget =
      smoke ? 64 * 1024 : 1024 * 1024;

  std::printf("FixD reproduction — Ablation A2: beyond-RAM exploration "
              "(2pc-v1 n=%zu, BFS, exhaustive%s)\n",
              n, smoke ? ", SMOKE" : "");

  bench::header("Visited tier + frontier budget vs unbounded");
  bench::row("%-14s %2s %9s %9s %9s %9s %8s %7s %7s %9s", "config", "wk",
             "states", "peak KiB", "spl KiB", "io KiB", "fp rate", "evict",
             "recomp", "ms");
  bench::rule();

  RunResult unbounded = run_config("unbounded", n, 0, 0, 1);
  RunResult budgeted = run_config("visited-budget", n, visited_budget, 0, 1);
  RunResult budgeted4 =
      run_config("visited-bgt-4w", n, visited_budget, 0, 4);
  RunResult frontier =
      run_config("both-budgets", n, visited_budget, frontier_budget, 1);

  const std::uint64_t ceiling = in_ram_ceiling(visited_budget);
  const double ratio =
      ceiling > 0
          ? double(unbounded.res.stats.states) / double(ceiling)
          : 0.0;
  const bool identity_1w = budgeted.res.visited == unbounded.res.visited;
  const bool identity_4w = budgeted4.res.visited == unbounded.res.visited;
  const bool identity_fr = frontier.res.visited == unbounded.res.visited;
  const std::uint64_t peak = budgeted.res.stats.visited_peak_resident_bytes;
  const bool spilled = budgeted.res.stats.visited_spilled_bytes > 0;
  const double fp = budgeted.res.stats.bloom_fp_rate;
  const bool evicted = frontier.res.stats.anchor_evictions > 0 &&
                       frontier.res.stats.anchor_recomputes > 0;

  FILE* f = std::fopen("BENCH_spill.json", "w");
  if (f) {
    std::fprintf(
        f,
        "{\n"
        "  \"smoke\": %s,\n"
        "  \"n\": %zu,\n"
        "  \"visited_budget_bytes\": %llu,\n"
        "  \"frontier_budget_bytes\": %llu,\n"
        "  \"in_ram_ceiling_states\": %llu,\n"
        "  \"states\": %llu,\n"
        "  \"beyond_ram_ratio\": %.3f,\n"
        "  \"identity_1w\": %s,\n"
        "  \"identity_4w\": %s,\n"
        "  \"identity_frontier\": %s,\n"
        "  \"peak_resident_bytes\": %llu,\n"
        "  \"visited_spilled_bytes\": %llu,\n"
        "  \"spill_io_bytes\": %llu,\n"
        "  \"bloom_fp_rate\": %.5f,\n"
        "  \"anchor_evictions\": %llu,\n"
        "  \"anchor_recomputes\": %llu,\n"
        "  \"unbounded_ms\": %.1f,\n"
        "  \"budgeted_ms\": %.1f,\n"
        "  \"frontier_ms\": %.1f\n"
        "}\n",
        smoke ? "true" : "false", n, (unsigned long long)visited_budget,
        (unsigned long long)frontier_budget, (unsigned long long)ceiling,
        (unsigned long long)unbounded.res.stats.states, ratio,
        identity_1w ? "true" : "false", identity_4w ? "true" : "false",
        identity_fr ? "true" : "false", (unsigned long long)peak,
        (unsigned long long)budgeted.res.stats.visited_spilled_bytes,
        (unsigned long long)budgeted.res.stats.spilled_bytes, fp,
        (unsigned long long)frontier.res.stats.anchor_evictions,
        (unsigned long long)frontier.res.stats.anchor_recomputes,
        unbounded.ms, budgeted.ms, frontier.ms);
    std::fclose(f);
    std::printf("\nwrote BENCH_spill.json\n");
  }

  bool ok = true;
  std::printf("\n");
  if (!smoke) {
    std::printf("beyond-RAM gate: %llu states vs in-RAM ceiling %llu -> "
                "%.2fx (need >= 10x) -> %s\n",
                (unsigned long long)unbounded.res.stats.states,
                (unsigned long long)ceiling, ratio,
                ratio >= 10.0 ? "OK" : "FAIL");
    if (ratio < 10.0) ok = false;
    std::printf("resident gate: peak %.1f KiB vs budget %.1f KiB (need "
                "<= 1.5x) -> %s\n",
                peak / 1024.0, visited_budget / 1024.0,
                peak <= visited_budget + visited_budget / 2 ? "OK" : "FAIL");
    if (peak > visited_budget + visited_budget / 2) ok = false;
    std::printf("bloom gate: fp rate %.4f (need <= 0.10, spill > 0: %s) "
                "-> %s\n",
                fp, spilled ? "yes" : "NO",
                fp <= 0.10 && spilled ? "OK" : "FAIL");
    if (fp > 0.10 || !spilled) ok = false;
  } else {
    std::printf("smoke mode: ratio/resident/bloom gates skipped "
                "(ratio %.2fx, peak %.1f KiB, fp %.4f, spilled %s)\n",
                ratio, peak / 1024.0, fp, spilled ? "yes" : "no");
    if (!spilled) {
      std::printf("smoke gate: budgeted run never spilled -> FAIL\n");
      ok = false;
    }
  }
  std::printf("identity gate: 1w %s, 4w %s, frontier %s -> %s\n",
              identity_1w ? "OK" : "FAIL", identity_4w ? "OK" : "FAIL",
              identity_fr ? "OK" : "FAIL",
              identity_1w && identity_4w && identity_fr ? "OK" : "FAIL");
  if (!identity_1w || !identity_4w || !identity_fr) ok = false;
  std::printf("eviction gate: evictions %llu, recomputes %llu (need both "
              "> 0) -> %s\n",
              (unsigned long long)frontier.res.stats.anchor_evictions,
              (unsigned long long)frontier.res.stats.anchor_recomputes,
              evicted ? "OK" : "FAIL");
  if (!evicted) ok = false;
  return ok ? 0 : 1;
}
