// Figure 1 — The Scroll: cost of recording the distributed components'
// actions.
//
// The paper's claim: "only nondeterministic actions ... and their outcome
// need to be recorded by the Scroll". This bench quantifies what that buys:
// the Scroll (nondet-only) vs digests vs a liblog-style full-payload log,
// across workloads and message sizes, plus replay fidelity for each preset.
#include <cstdio>

#include "apps/kv_store.hpp"
#include "apps/rep_counter.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "scroll/replay.hpp"

namespace {

using namespace fixd;
using bench::WallTimer;

struct RunCost {
  std::uint64_t events = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  double run_ms = 0;
  bool replay_ok = false;
};

template <typename MakeWorld>
RunCost measure(MakeWorld make, scroll::LoggingPreset preset,
                bool check_replay) {
  RunCost cost;
  auto w = make();
  scroll::Scroll log(preset);
  w->add_observer(&log);
  WallTimer t;
  auto res = w->run(2000000);
  cost.run_ms = t.ms();
  cost.events = res.steps;
  cost.records = log.stats().records;
  cost.bytes = log.stats().bytes;
  w->remove_observer(&log);
  if (check_replay) {
    auto fresh = make();
    auto rep = scroll::ReplayEngine::replay(*fresh, log);
    cost.replay_ok = rep.ok && rep.final_digest == w->digest();
  }
  return cost;
}

template <typename MakeWorld>
void bench_workload(const char* name, MakeWorld make) {
  struct Preset {
    const char* name;
    scroll::LoggingPreset preset;
  } presets[] = {
      {"none (baseline)", [] {
         scroll::LoggingPreset p;
         p.schedule = p.rng = p.time_reads = p.env_reads = false;
         p.annotations = p.spec_events = false;
         return p;
       }()},
      {"Scroll (nondet only)", scroll::LoggingPreset::nondet_only()},
      {"Scroll + digests", scroll::LoggingPreset::digests()},
      {"liblog-style (full)", scroll::LoggingPreset::full()},
  };

  bench::header(std::string("Fig.1 / workload: ") + name);
  bench::row("%-22s %10s %10s %12s %10s %8s", "logging", "events",
             "records", "bytes", "B/event", "replay");
  bench::rule();
  for (const auto& p : presets) {
    bool can_replay = p.preset.schedule;
    RunCost c = measure(make, p.preset, can_replay);
    bench::row("%-22s %10llu %10llu %12llu %10.1f %8s", p.name,
               (unsigned long long)c.events, (unsigned long long)c.records,
               (unsigned long long)c.bytes,
               c.events ? static_cast<double>(c.bytes) / c.events : 0.0,
               can_replay ? (c.replay_ok ? "exact" : "FAIL") : "n/a");
  }
}

}  // namespace

int main() {
  std::printf("FixD reproduction — Figure 1: the Scroll (logging cost and "
              "replay fidelity)\n");

  bench_workload("rep-counter 4p x 16 incs", [] {
    return apps::make_counter_world(4, 2, apps::CounterConfig{16});
  });

  bench_workload("token-ring 5p x 40 rounds", [] {
    apps::TokenRingConfig cfg;
    cfg.target_rounds = 40;
    return apps::make_token_ring_world(5, 2, cfg);
  });

  bench_workload("kv-store 3p x 400 ops (64B values)", [] {
    apps::KvConfig cfg;
    cfg.total_ops = 400;
    cfg.key_space = 64;
    return apps::make_kv_world(3, 2, cfg);
  });

  std::printf(
      "\nShape check (paper): nondet-only logging is a small fraction of\n"
      "full interaction logging yet still replays the run exactly.\n");
  return 0;
}
