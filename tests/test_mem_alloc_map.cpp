// HeapAlloc and PagedMap: allocator behaviour and the map-vs-model property.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "mem/heap_alloc.hpp"
#include "mem/paged_map.hpp"

namespace fixd::mem {
namespace {

TEST(HeapAlloc, FormatAndAttach) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  EXPECT_EQ(a.live_blocks(), 0u);
  HeapAlloc b = HeapAlloc::attach(h);
  EXPECT_EQ(b.live_blocks(), 0u);
}

TEST(HeapAlloc, AttachUnformattedThrows) {
  PagedHeap h;
  h.resize(4096);
  EXPECT_THROW(HeapAlloc::attach(h), FixdError);
}

TEST(HeapAlloc, AllocateZeroed) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  std::uint64_t off = a.allocate(64);
  for (std::uint64_t i = 0; i < 64; i += 8)
    EXPECT_EQ(h.load<std::uint64_t>(off + i), 0u);
  EXPECT_EQ(a.live_blocks(), 1u);
  EXPECT_GE(a.block_size(off), 64u);
}

TEST(HeapAlloc, FreeListReuse) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  std::uint64_t x = a.allocate(100);
  std::uint64_t bump_after_x = a.bump();
  a.release(x);
  std::uint64_t y = a.allocate(80);  // fits in x's freed block
  EXPECT_EQ(y, x);
  EXPECT_EQ(a.bump(), bump_after_x);  // no new space consumed
}

TEST(HeapAlloc, ReusedBlockIsZeroed) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  std::uint64_t x = a.allocate(64);
  h.store<std::uint64_t>(x, 0xdead);
  a.release(x);
  std::uint64_t y = a.allocate(64);
  ASSERT_EQ(y, x);
  EXPECT_EQ(h.load<std::uint64_t>(y), 0u);
}

TEST(HeapAlloc, GrowsHeapOnDemand) {
  PagedHeap h(256);
  HeapAlloc a = HeapAlloc::format(h);
  (void)a.allocate(10000);  // far beyond one page
  EXPECT_GE(h.size(), 10000u);
}

TEST(HeapAlloc, StateSurvivesSnapshotRestore) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  std::uint64_t x = a.allocate(32);
  HeapSnapshot snap = h.snapshot();
  std::uint64_t live_then = a.live_blocks();

  (void)a.allocate(32);
  a.release(x);
  h.restore(snap);

  // Allocator metadata lives in the heap: restored with it.
  EXPECT_EQ(a.live_blocks(), live_then);
  std::uint64_t z = a.allocate(16);
  EXPECT_NE(z, 0u);
}

TEST(PagedMap, BasicPutGetErase) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  auto m = PagedMap<std::uint64_t, std::uint64_t>::create(a);
  EXPECT_TRUE(m.put(1, 100));
  EXPECT_FALSE(m.put(1, 200));  // overwrite
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(200));
  EXPECT_FALSE(m.get(2).has_value());
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 0u);
}

TEST(PagedMap, GrowsPastInitialCapacity) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  auto m = PagedMap<std::uint64_t, std::uint64_t>::create(a, 16);
  for (std::uint64_t k = 0; k < 500; ++k) m.put(k, k * 2);
  EXPECT_EQ(m.size(), 500u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(m.get(k), std::optional<std::uint64_t>(k * 2)) << k;
  }
}

TEST(PagedMap, ReopenAfterRestore) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  auto m = PagedMap<std::uint64_t, std::uint64_t>::create(a);
  m.put(5, 55);
  std::uint64_t off = m.header_offset();
  HeapSnapshot snap = h.snapshot();
  m.put(5, 66);
  m.put(6, 77);
  h.restore(snap);
  auto m2 = PagedMap<std::uint64_t, std::uint64_t>::open(
      HeapAlloc::attach(h), off);
  EXPECT_EQ(m2.get(5), std::optional<std::uint64_t>(55));
  EXPECT_FALSE(m2.get(6).has_value());
}

TEST(PagedMap, ForEachVisitsAllLiveEntries) {
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  auto m = PagedMap<std::uint64_t, std::uint64_t>::create(a);
  for (std::uint64_t k = 0; k < 20; ++k) m.put(k, k);
  m.erase(3);
  m.erase(17);
  std::size_t count = 0;
  std::uint64_t sum = 0;
  m.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    EXPECT_EQ(k, v);
    ++count;
    sum += k;
  });
  EXPECT_EQ(count, 18u);
  EXPECT_EQ(sum, (19 * 20 / 2) - 3 - 17);
}

// Property: PagedMap behaves exactly like std::unordered_map under a random
// op stream (put / get / erase), across seeds.
class MapModelParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapModelParam, MatchesStdMapModel) {
  Rng rng(GetParam());
  PagedHeap h;
  HeapAlloc a = HeapAlloc::format(h);
  auto m = PagedMap<std::uint64_t, std::uint64_t>::create(a);
  std::unordered_map<std::uint64_t, std::uint64_t> model;

  for (int i = 0; i < 3000; ++i) {
    std::uint64_t key = rng.next_below(200);  // collisions guaranteed
    switch (rng.next_below(3)) {
      case 0: {
        std::uint64_t v = rng.next_u64();
        bool fresh = m.put(key, v);
        bool model_fresh = model.find(key) == model.end();
        model[key] = v;
        EXPECT_EQ(fresh, model_fresh);
        break;
      }
      case 1: {
        auto got = m.get(key);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      case 2: {
        bool erased = m.erase(key);
        EXPECT_EQ(erased, model.erase(key) > 0);
        break;
      }
    }
    ASSERT_EQ(m.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapModelParam,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace fixd::mem
