// ModelD engine: guarded models, search orders, dynamic action sets.
#include <gtest/gtest.h>

#include "mc/modeld.hpp"

namespace fixd::mc {
namespace {

// A tiny mutex model: two contenders, a flag each, a naive (buggy)
// lock acquisition that admits both into the critical section.
struct MutexState {
  std::uint8_t flag0 = 0, flag1 = 0;
  std::uint8_t in_cs0 = 0, in_cs1 = 0;
  void save(BinaryWriter& w) const {
    w.write_u8(flag0);
    w.write_u8(flag1);
    w.write_u8(in_cs0);
    w.write_u8(in_cs1);
  }
};

ModelD<MutexState> naive_mutex() {
  return ModelD<MutexState>::build(MutexState{})
      .action("p0.set", [](const MutexState& s) { return !s.flag0; },
              [](MutexState& s) { s.flag0 = 1; })
      .action("p0.enter",
              [](const MutexState& s) { return s.flag0 && !s.in_cs0; },
              [](MutexState& s) { s.in_cs0 = 1; })
      .action("p1.set", [](const MutexState& s) { return !s.flag1; },
              [](MutexState& s) { s.flag1 = 1; })
      .action("p1.enter",
              [](const MutexState& s) { return s.flag1 && !s.in_cs1; },
              [](MutexState& s) { s.in_cs1 = 1; })
      .always("mutual-exclusion",
              [](const MutexState& s) { return !(s.in_cs0 && s.in_cs1); })
      .done();
}

TEST(ModelD, FindsMutualExclusionViolation) {
  auto m = naive_mutex();
  auto res = m.check({.order = SearchOrder::kBfs});
  ASSERT_TRUE(res.found_violation());
  EXPECT_EQ(res.violations[0].invariant, "mutual-exclusion");
  EXPECT_EQ(res.violations[0].depth, 4u);  // BFS: shortest counterexample
}

TEST(ModelD, DfsFindsSameViolationPossiblyDeeper) {
  auto m = naive_mutex();
  auto res = m.check({.order = SearchOrder::kDfs});
  ASSERT_TRUE(res.found_violation());
  EXPECT_GE(res.violations[0].depth, 4u);
}

TEST(ModelD, RandomWalkFindsViolation) {
  auto m = naive_mutex();
  ExploreOptions o;
  o.order = SearchOrder::kRandomWalk;
  o.max_depth = 16;
  o.walk_restarts = 64;
  o.seed = 5;
  auto res = m.check(o);
  EXPECT_TRUE(res.found_violation());
}

TEST(ModelD, PriorityOrderRespectsHeuristic) {
  auto m = naive_mutex();
  // Heuristic: prefer states with more processes in the CS => goal-directed.
  auto res = m.check({.order = SearchOrder::kPriority},
                     [](const MutexState& s) {
                       return static_cast<double>(s.in_cs0 + s.in_cs1);
                     });
  ASSERT_TRUE(res.found_violation());
}

TEST(ModelD, ExhaustiveCountsOnBoundedCounter) {
  // One counter, one increment action with guard < 5: exactly 6 states.
  struct S {
    std::uint32_t x = 0;
    void save(BinaryWriter& w) const { w.write_u32(x); }
  };
  auto m = ModelD<S>::build(S{})
               .action("inc", [](const S& s) { return s.x < 5; },
                       [](S& s) { ++s.x; })
               .done();
  ExploreOptions o;
  o.max_violations = 1;
  auto res = m.check(o);
  EXPECT_FALSE(res.found_violation());
  EXPECT_EQ(res.stats.states, 6u);
  EXPECT_EQ(res.stats.transitions, 5u);
  EXPECT_FALSE(res.stats.truncated);
}

TEST(ModelD, DedupCollapsesDiamond) {
  // Two commuting increments: 4 paths, 4 distinct states (diamond).
  struct S {
    std::uint32_t a = 0, b = 0;
    void save(BinaryWriter& w) const {
      w.write_u32(a);
      w.write_u32(b);
    }
  };
  auto m = ModelD<S>::build(S{})
               .action("a", [](const S& s) { return s.a < 1; },
                       [](S& s) { ++s.a; })
               .action("b", [](const S& s) { return s.b < 1; },
                       [](S& s) { ++s.b; })
               .done();
  auto res = m.check({});
  EXPECT_EQ(res.stats.states, 4u);       // 00, 10, 01, 11
  EXPECT_EQ(res.stats.duplicates, 1u);   // 11 reached twice
}

TEST(ModelD, StateBudgetTruncates) {
  struct S {
    std::uint64_t x = 0;
    void save(BinaryWriter& w) const { w.write_u64(x); }
  };
  auto m = ModelD<S>::build(S{})
               .action("inc", [](S& s) { ++s.x; })
               .done();
  ExploreOptions o;
  o.max_states = 100;
  auto res = m.check(o);
  EXPECT_TRUE(res.stats.truncated);
  EXPECT_EQ(res.stats.states, 100u);
}

TEST(ModelD, DepthBoundTruncates) {
  struct S {
    std::uint64_t x = 0;
    void save(BinaryWriter& w) const { w.write_u64(x); }
  };
  auto m = ModelD<S>::build(S{})
               .action("inc", [](S& s) { ++s.x; })
               .done();
  ExploreOptions o;
  o.max_depth = 10;
  auto res = m.check(o);
  EXPECT_TRUE(res.stats.truncated);
  EXPECT_LE(res.stats.max_depth, 10u);
}

TEST(ModelD, TrailReconstructionReExecutes) {
  auto m = naive_mutex();
  auto res = m.check({.order = SearchOrder::kBfs});
  ASSERT_TRUE(res.found_violation());
  // Re-execute the trail by name and confirm the violation reproduces.
  MutexState s;
  for (const std::string& name : res.violations[0].trail) {
    bool applied = false;
    for (const auto& a : m.model().actions()) {
      if (a.name == name) {
        ASSERT_TRUE(a.guard(s)) << "trail action not enabled: " << name;
        a.effect(s);
        applied = true;
        break;
      }
    }
    ASSERT_TRUE(applied) << name;
  }
  EXPECT_TRUE(s.in_cs0 && s.in_cs1);
}

TEST(ModelD, InjectedActionChangesOutcome) {
  // The Healer's ModelD path (§4.4): retire the buggy action, inject the
  // fixed one, re-check => violation gone.
  auto m = naive_mutex();
  ASSERT_TRUE(m.check({}).found_violation());

  // Retire the unguarded entries (actions 1 and 3) and inject versions that
  // respect the other contender's flag (a correct-enough lock for this
  // model's reachable space).
  m.retire_action(1);
  m.retire_action(3);
  m.inject_action("p0.enter.fixed",
                  [](const MutexState& s) {
                    return s.flag0 && !s.flag1 && !s.in_cs0;
                  },
                  [](MutexState& s) { s.in_cs0 = 1; });
  m.inject_action("p1.enter.fixed",
                  [](const MutexState& s) {
                    return s.flag1 && !s.flag0 && !s.in_cs1;
                  },
                  [](MutexState& s) { s.in_cs1 = 1; });
  auto res = m.check({.max_violations = 4});
  EXPECT_FALSE(res.found_violation());

  // Restoring the buggy actions brings the violation back.
  m.restore_action(1);
  m.restore_action(3);
  EXPECT_TRUE(m.check({}).found_violation());
}

TEST(ModelD, SetInitialResumesFromCheckpoint) {
  auto m = naive_mutex();
  MutexState near_violation;
  near_violation.flag0 = 1;
  near_violation.flag1 = 1;
  near_violation.in_cs0 = 1;
  m.set_initial(near_violation);
  auto res = m.check({.order = SearchOrder::kBfs});
  ASSERT_TRUE(res.found_violation());
  EXPECT_EQ(res.violations[0].depth, 1u);  // one step away
}

TEST(ModelD, MultipleViolationsCollected) {
  auto m = naive_mutex();
  ExploreOptions o;
  o.max_violations = 100;
  auto res = m.check(o);
  EXPECT_GE(res.violations.size(), 1u);
}

}  // namespace
}  // namespace fixd::mc
