// Schedulers: fifo determinism, random seeding, replay matching.
#include <gtest/gtest.h>

#include "apps/rep_counter.hpp"
#include "rt/scheduler.hpp"
#include "rt/world.hpp"
#include "scroll/scroll.hpp"

namespace fixd::rt {
namespace {

using apps::CounterConfig;
using apps::make_counter_world;

TEST(FifoScheduler, PicksEarliestDeterministically) {
  FifoScheduler s;
  std::vector<EventDesc> enabled = {
      {EventKind::kDeliver, 1, 5, 0, 10},
      {EventKind::kDeliver, 0, 3, 0, 4},
      {EventKind::kTimer, 2, 0, 1, 4},
  };
  // Same `at`: deliver (kind 1) beats timer (kind 2); among delivers the
  // smaller at wins outright.
  auto w = make_counter_world(3, 2, CounterConfig{1});
  EXPECT_EQ(s.choose(enabled, *w), 1u);
}

TEST(RandomScheduler, SeedDeterminism) {
  std::vector<EventDesc> enabled(10);
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    enabled[i] = {EventKind::kStart, static_cast<ProcessId>(i), 0, 0, 0};
  }
  auto w = make_counter_world(2, 2, CounterConfig{1});
  RandomScheduler a(7), b(7), c(8);
  std::vector<std::size_t> sa, sb, sc;
  for (int i = 0; i < 50; ++i) {
    sa.push_back(a.choose(enabled, *w));
    sb.push_back(b.choose(enabled, *w));
    sc.push_back(c.choose(enabled, *w));
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(ReplayScheduler, FollowsScript) {
  // Record a run, then replay its schedule on a fresh world: the replayed
  // world must reach the identical final state.
  auto w1 = make_counter_world(3, 2, CounterConfig{2});
  scroll::Scroll log(scroll::LoggingPreset::nondet_only());
  w1->add_observer(&log);
  w1->set_scheduler(std::make_unique<RandomScheduler>(77));
  w1->run();
  w1->remove_observer(&log);

  auto w2 = make_counter_world(3, 2, CounterConfig{2});
  w2->set_scheduler(std::make_unique<ReplayScheduler>(log.schedule()));
  w2->run(log.schedule().size());
  EXPECT_EQ(w1->digest(), w2->digest());
}

TEST(ReplayScheduler, DivergenceThrows) {
  auto w = make_counter_world(3, 2, CounterConfig{2});
  // A script demanding an event that can never be enabled.
  std::vector<EventDesc> script = {
      {EventKind::kDeliver, 0, 424242, 0, 0},
  };
  w->set_scheduler(std::make_unique<ReplayScheduler>(std::move(script)));
  EXPECT_THROW(w->step(), ReplayDivergence);
}

TEST(ReplayScheduler, ExhaustionThrows) {
  auto w = make_counter_world(2, 2, CounterConfig{1});
  w->set_scheduler(std::make_unique<ReplayScheduler>(std::vector<EventDesc>{}));
  EXPECT_THROW(w->step(), ReplayDivergence);
}

class SchedulerSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: the correct counter protocol reaches agreement under any
// schedule; the final mc_digest is schedule-independent.
TEST_P(SchedulerSeedSweep, CorrectProtocolScheduleInsensitive) {
  auto reference = make_counter_world(3, 2, CounterConfig{2});
  reference->run();
  std::uint64_t want = reference->mc_digest();

  auto w = make_counter_world(3, 2, CounterConfig{2});
  w->set_scheduler(std::make_unique<RandomScheduler>(GetParam()));
  RunResult res = w->run();
  EXPECT_EQ(res.reason, StopReason::kAllHalted);
  EXPECT_EQ(w->mc_digest(), want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace fixd::rt
